// Command tracer analyzes span journals written by traced campaigns
// (injector -trace, campaignd -trace) and reports where the time went:
// the fleet's critical path, per-phase time breakdown, per-process
// utilization timelines, lease straggler and re-issue attribution, and
// lane-occupancy-weighted kernel time.
//
// Each argument is one process's span journal (JSONL; non-span events
// are skipped, so the combined campaign journal works as input too).
// Spans are keyed by (file, id) — span ids are only unique within one
// process — and cross-process links arrive as rparent references,
// which resolve against other files' span ids in argument order. Give
// the coordinator's journal first, then the workers', and the
// per-process journals merge into one fleet-wide trace.
//
// The output is byte-stable: the same journals produce the same bytes
// on every run, in both text and -json form. All ordering is by
// explicit sort keys with full tie-breaks; timestamps are read from
// the journals, never from the machine running the analysis.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// rec is one journal line. Span events carry a subset of these fields;
// attribute keys written by the instrumented layers (lease bounds,
// lane counts, attempt numbers) are flattened into the same object.
type rec struct {
	Seq     uint64 `json:"seq"`
	TS      string `json:"ts"`
	Ev      string `json:"ev"`
	Trace   string `json:"trace"`
	Span    uint64 `json:"span"`
	Parent  uint64 `json:"parent"`
	RParent uint64 `json:"rparent"`
	Name    string `json:"name"`
	Proc    string `json:"proc"`
	Outcome string `json:"outcome"`

	// Known span attributes.
	Lease   int64 `json:"lease"`
	Lo      int64 `json:"lo"`
	Hi      int64 `json:"hi"`
	Worker  int64 `json:"worker"`
	Attempt int64 `json:"attempt"`
	Lanes   int64 `json:"lanes"`
}

// span is one reconstructed span.
type span struct {
	file    int    // argument index of the owning journal
	order   int    // global load order (tie-break of last resort)
	id      uint64 // process-local span id
	name    string
	proc    string
	trace   string
	outcome string
	start   rec // the span_start record (attribute access)

	hasStart, hasEnd bool // timestamps present
	startT, endT     time.Time
	closed           bool

	parent   *span
	children []*span // in load order
}

func (s *span) dur() time.Duration { return s.endT.Sub(s.startT) }

// timed reports whether the span has a measurable duration.
func (s *span) timed() bool { return s.closed && s.hasStart && s.hasEnd }

// trace is the merged fleet-wide trace.
type trace struct {
	files []fileInfo
	spans []*span // load order
	roots []*span

	skipped    int // non-span journal events
	orphanEnds int // span_end with no matching open span
	unclosed   int

	hasTimes   bool
	start, end time.Time // trace wall bounds over timed spans
}

type fileInfo struct {
	Path  string `json:"path"`
	Proc  string `json:"proc"`
	Spans int    `json:"spans"`
}

// load reads and links every journal, in argument order.
func load(paths []string) (*trace, error) {
	tr := &trace{}
	byKey := map[[2]uint64]*span{} // (file, id) -> span
	order := 0
	for fi, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		info := fileInfo{Path: path}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 64<<10), 16<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var r rec
			if err := json.Unmarshal(line, &r); err != nil {
				f.Close()
				return nil, fmt.Errorf("%s: bad journal line %q: %v", path, line, err)
			}
			switch r.Ev {
			case "span_start":
				s := &span{
					file: fi, order: order, id: r.Span,
					name: r.Name, proc: r.Proc, trace: r.Trace, start: r,
				}
				order++
				if r.TS != "" {
					t, err := time.Parse(time.RFC3339Nano, r.TS)
					if err != nil {
						f.Close()
						return nil, fmt.Errorf("%s: bad ts %q: %v", path, r.TS, err)
					}
					s.startT, s.hasStart = t, true
				}
				byKey[[2]uint64{uint64(fi), r.Span}] = s
				tr.spans = append(tr.spans, s)
				info.Spans++
				if info.Proc == "" {
					info.Proc = r.Proc
				}
			case "span_end":
				s, ok := byKey[[2]uint64{uint64(fi), r.Span}]
				if !ok || s.closed {
					tr.orphanEnds++
					continue
				}
				s.closed = true
				s.outcome = r.Outcome
				if r.TS != "" {
					t, err := time.Parse(time.RFC3339Nano, r.TS)
					if err != nil {
						f.Close()
						return nil, fmt.Errorf("%s: bad ts %q: %v", path, r.TS, err)
					}
					s.endT, s.hasEnd = t, true
				}
			default:
				tr.skipped++
			}
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		f.Close()
		tr.files = append(tr.files, info)
	}

	// Link: parent within the same file, rparent across files (first
	// matching id in a different file, argument order — span ids are
	// process-local, so cross-file is the only meaning rparent has).
	byID := map[uint64][]*span{}
	for _, s := range tr.spans {
		byID[s.id] = append(byID[s.id], s) // load order: deterministic
	}
	for _, s := range tr.spans {
		if p, ok := byKey[[2]uint64{uint64(s.file), s.start.Parent}]; ok && s.start.Parent != 0 && p != s {
			s.parent = p
		} else if s.start.RParent != 0 {
			for _, cand := range byID[s.start.RParent] {
				if cand.file != s.file {
					s.parent = cand
					break
				}
			}
		}
		if s.parent != nil {
			s.parent.children = append(s.parent.children, s)
		}
	}
	for _, s := range tr.spans {
		if s.parent == nil {
			tr.roots = append(tr.roots, s)
		}
		if !s.closed {
			tr.unclosed++
		}
		if s.timed() {
			if !tr.hasTimes || s.startT.Before(tr.start) {
				tr.start = s.startT
			}
			if !tr.hasTimes || s.endT.After(tr.end) {
				tr.end = s.endT
			}
			tr.hasTimes = true
		}
	}
	return tr, nil
}

// report is the analysis result; the JSON output marshals it directly
// and the text output renders the same data.
type report struct {
	Files      []fileInfo  `json:"files"`
	Traces     []string    `json:"traces"`
	Spans      int         `json:"spans"`
	Unclosed   int         `json:"unclosed"`
	OrphanEnds int         `json:"orphan_ends,omitempty"`
	Skipped    int         `json:"skipped_events"`
	HasTimes   bool        `json:"has_times"`
	WallNs     int64       `json:"wall_ns"`
	Phases     []phaseRow  `json:"phases"`
	Critical   []critRow   `json:"critical_path"`
	Procs      []procRow   `json:"procs"`
	Leases     leaseReport `json:"leases"`
	Kernel     kernelRow   `json:"kernel"`
}

type phaseRow struct {
	Name    string `json:"name"`
	Count   int    `json:"count"`
	TotalNs int64  `json:"total_ns"`
	MinNs   int64  `json:"min_ns"`
	MaxNs   int64  `json:"max_ns"`
}

type critRow struct {
	Depth   int    `json:"depth"`
	Name    string `json:"name"`
	Proc    string `json:"proc"`
	StartNs int64  `json:"start_ns"` // offset from trace start
	DurNs   int64  `json:"dur_ns"`
	Outcome string `json:"outcome,omitempty"`
}

type procRow struct {
	Proc     string `json:"proc"`
	Spans    int    `json:"spans"`
	BusyNs   int64  `json:"busy_ns"`
	UtilPct  float64 `json:"util_pct"`
	Timeline string `json:"timeline"`
}

type leaseReport struct {
	Outcomes   []outcomeRow `json:"outcomes"`
	Reissues   []leaseRow   `json:"reissues"`
	Stragglers []leaseRow   `json:"stragglers"`
}

type outcomeRow struct {
	Outcome string `json:"outcome"`
	Count   int    `json:"count"`
}

type leaseRow struct {
	Lease    int64   `json:"lease"`
	Lo       int64   `json:"lo"`
	Hi       int64   `json:"hi"`
	Worker   int64   `json:"worker"`
	Attempt  int64   `json:"attempt"`
	Outcome  string  `json:"outcome"`
	DurNs    int64   `json:"dur_ns"`
	MsPerRow float64 `json:"ms_per_row"`
}

type kernelRow struct {
	Batches    int     `json:"batches"`
	KernelNs   int64   `json:"kernel_ns"`
	WeightedNs int64   `json:"lane_weighted_ns"`
	LanePct    float64 `json:"lane_occupancy_pct"`
}

// analyze computes every report section from the linked trace.
func analyze(tr *trace) *report {
	rep := &report{
		Files:    tr.files,
		Spans:    len(tr.spans),
		Unclosed: tr.unclosed, OrphanEnds: tr.orphanEnds, Skipped: tr.skipped,
		HasTimes: tr.hasTimes,
	}
	if tr.hasTimes {
		rep.WallNs = tr.end.Sub(tr.start).Nanoseconds()
	}

	// Distinct trace ids, sorted.
	seen := map[string]bool{}
	for _, s := range tr.spans {
		if s.trace != "" && !seen[s.trace] {
			seen[s.trace] = true
			rep.Traces = append(rep.Traces, s.trace)
		}
	}
	sort.Strings(rep.Traces)

	rep.Phases = phaseBreakdown(tr)
	rep.Critical = criticalPath(tr)
	rep.Procs = procUtilization(tr)
	rep.Leases = leaseAttribution(tr)
	rep.Kernel = kernelOccupancy(tr)
	return rep
}

// phaseBreakdown aggregates spans by name: count, and for timed spans
// total/min/max duration. Sorted by total descending, then name.
func phaseBreakdown(tr *trace) []phaseRow {
	idx := map[string]int{}
	var rows []phaseRow
	for _, s := range tr.spans {
		i, ok := idx[s.name]
		if !ok {
			i = len(rows)
			idx[s.name] = i
			rows = append(rows, phaseRow{Name: s.name})
		}
		rows[i].Count++
		if !s.timed() {
			continue
		}
		d := s.dur().Nanoseconds()
		rows[i].TotalNs += d
		if rows[i].MinNs == 0 || d < rows[i].MinNs {
			rows[i].MinNs = d
		}
		if d > rows[i].MaxNs {
			rows[i].MaxNs = d
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].TotalNs != rows[j].TotalNs {
			return rows[i].TotalNs > rows[j].TotalNs
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// criticalPath walks the last-finisher chain: starting from the trace
// root (the earliest-starting root span), each step descends into the
// child that finished last — the child that determined when its parent
// could end. The chain is the lower bound on campaign wall time; the
// fleet cannot finish before it no matter how wide it scales.
func criticalPath(tr *trace) []critRow {
	if !tr.hasTimes {
		return nil
	}
	var root *span
	for _, s := range tr.roots {
		if !s.timed() {
			continue
		}
		if root == nil || s.startT.Before(root.startT) ||
			(s.startT.Equal(root.startT) && (s.file < root.file || (s.file == root.file && s.order < root.order))) {
			root = s
		}
	}
	if root == nil {
		return nil
	}
	var rows []critRow
	for depth, cur := 0, root; cur != nil; depth++ {
		rows = append(rows, critRow{
			Depth: depth, Name: cur.name, Proc: cur.proc,
			StartNs: cur.startT.Sub(tr.start).Nanoseconds(),
			DurNs:   cur.dur().Nanoseconds(),
			Outcome: cur.outcome,
		})
		var next *span
		for _, ch := range cur.children {
			if !ch.timed() {
				continue
			}
			if next == nil || ch.endT.After(next.endT) ||
				(ch.endT.Equal(next.endT) && (ch.file < next.file || (ch.file == next.file && ch.order < next.order))) {
				next = ch
			}
		}
		cur = next
	}
	return rows
}

// procUtilization merges each process's leaf-span intervals (inner
// spans — the ones actually doing work, not waiting on children) and
// renders busy time, utilization against the trace wall, and a
// 40-bucket timeline.
func procUtilization(tr *trace) []procRow {
	type interval struct{ a, b time.Time }
	procIdx := map[string]int{}
	var procs []string
	ivs := map[string][]interval{}
	counts := map[string]int{}
	for _, s := range tr.spans {
		if _, ok := procIdx[s.proc]; !ok {
			procIdx[s.proc] = len(procs)
			procs = append(procs, s.proc)
		}
		counts[s.proc]++
		if len(s.children) == 0 && s.timed() {
			ivs[s.proc] = append(ivs[s.proc], interval{s.startT, s.endT})
		}
	}
	sort.Strings(procs)

	wall := tr.end.Sub(tr.start)
	var rows []procRow
	for _, p := range procs {
		row := procRow{Proc: p, Spans: counts[p]}
		spans := ivs[p]
		sort.Slice(spans, func(i, j int) bool {
			if !spans[i].a.Equal(spans[j].a) {
				return spans[i].a.Before(spans[j].a)
			}
			return spans[i].b.Before(spans[j].b)
		})
		var merged []interval
		for _, iv := range spans {
			if n := len(merged); n > 0 && !iv.a.After(merged[n-1].b) {
				if iv.b.After(merged[n-1].b) {
					merged[n-1].b = iv.b
				}
				continue
			}
			merged = append(merged, iv)
		}
		var busy time.Duration
		for _, iv := range merged {
			busy += iv.b.Sub(iv.a)
		}
		row.BusyNs = busy.Nanoseconds()
		if tr.hasTimes && wall > 0 {
			row.UtilPct = 100 * float64(busy) / float64(wall)
			const buckets = 40
			var b strings.Builder
			for i := 0; i < buckets; i++ {
				b0 := tr.start.Add(wall * time.Duration(i) / buckets)
				b1 := tr.start.Add(wall * time.Duration(i+1) / buckets)
				var cover time.Duration
				for _, iv := range merged {
					lo, hi := iv.a, iv.b
					if lo.Before(b0) {
						lo = b0
					}
					if hi.After(b1) {
						hi = b1
					}
					if hi.After(lo) {
						cover += hi.Sub(lo)
					}
				}
				frac := float64(cover) / float64(b1.Sub(b0))
				switch {
				case frac < 0.01:
					b.WriteByte(' ')
				case frac < 1.0/3:
					b.WriteRune('░')
				case frac < 2.0/3:
					b.WriteRune('▒')
				default:
					b.WriteRune('█')
				}
			}
			row.Timeline = b.String()
		}
		rows = append(rows, row)
	}
	return rows
}

// leaseAttribution reads the coordinator's lease spans: outcome
// counts, every re-issued range (attempt > 1 — each one is a recovery
// from an expiry, failure or dead worker), and the slowest leases by
// per-row time (the stragglers adaptive sizing reacts to).
func leaseAttribution(tr *trace) leaseReport {
	var lr leaseReport
	outcomes := map[string]int{}
	var leases []leaseRow
	for _, s := range tr.spans {
		if s.name != "lease" {
			continue
		}
		out := s.outcome
		if !s.closed {
			out = "open"
		} else if out == "" {
			out = "done"
		}
		outcomes[out]++
		row := leaseRow{
			Lease: s.start.Lease, Lo: s.start.Lo, Hi: s.start.Hi,
			Worker: s.start.Worker, Attempt: s.start.Attempt, Outcome: out,
		}
		if s.timed() {
			row.DurNs = s.dur().Nanoseconds()
			if rows := s.start.Hi - s.start.Lo; rows > 0 {
				row.MsPerRow = float64(row.DurNs) / 1e6 / float64(rows)
			}
		}
		leases = append(leases, row)
	}
	var outs []string
	for o := range outcomes { //det:order collecting before sort
		outs = append(outs, o)
	}
	sort.Strings(outs)
	for _, o := range outs {
		lr.Outcomes = append(lr.Outcomes, outcomeRow{Outcome: o, Count: outcomes[o]})
	}

	for _, l := range leases {
		if l.Attempt > 1 {
			lr.Reissues = append(lr.Reissues, l)
		}
	}
	sort.Slice(lr.Reissues, func(i, j int) bool {
		a, b := lr.Reissues[i], lr.Reissues[j]
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		if a.Attempt != b.Attempt {
			return a.Attempt < b.Attempt
		}
		return a.Lease < b.Lease
	})

	var timed []leaseRow
	for _, l := range leases {
		if l.DurNs > 0 && l.Hi > l.Lo {
			timed = append(timed, l)
		}
	}
	sort.Slice(timed, func(i, j int) bool {
		a, b := timed[i], timed[j]
		if a.MsPerRow != b.MsPerRow {
			return a.MsPerRow > b.MsPerRow
		}
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		return a.Lease < b.Lease
	})
	if len(timed) > 5 {
		timed = timed[:5]
	}
	lr.Stragglers = timed
	return lr
}

// kernelOccupancy weighs batch spans by their lane occupancy: a batch
// of k experiments on the 64-lane kernel costs one batch's wall time
// whether k is 3 or 64, so weighted time Σ dur·lanes/64 against raw
// kernel time Σ dur measures how full the lanes ran.
func kernelOccupancy(tr *trace) kernelRow {
	var k kernelRow
	var weighted float64
	for _, s := range tr.spans {
		if s.name != "batch" || !s.timed() {
			continue
		}
		k.Batches++
		d := s.dur().Nanoseconds()
		k.KernelNs += d
		lanes := s.start.Lanes
		if lanes <= 0 {
			lanes = 1
		}
		if lanes > 64 {
			lanes = 64
		}
		weighted += float64(d) * float64(lanes) / 64
	}
	k.WeightedNs = int64(weighted)
	if k.KernelNs > 0 {
		k.LanePct = 100 * weighted / float64(k.KernelNs)
	}
	return k
}

func ns(v int64) string { return time.Duration(v).String() }

// writeText renders the byte-stable text report.
func writeText(w *bytes.Buffer, rep *report) {
	fmt.Fprintf(w, "trace report: %d file(s), %d span(s), %d unclosed, %d non-span event(s) skipped\n",
		len(rep.Files), rep.Spans, rep.Unclosed, rep.Skipped)
	for _, f := range rep.Files {
		fmt.Fprintf(w, "  %-12s %4d span(s)  %s\n", f.Proc, f.Spans, f.Path)
	}
	if len(rep.Traces) > 0 {
		fmt.Fprintf(w, "  trace id(s): %s\n", strings.Join(rep.Traces, ", "))
	}
	if !rep.HasTimes {
		fmt.Fprintf(w, "  journal has no timestamps: durations, critical path and utilization unavailable\n")
	} else {
		fmt.Fprintf(w, "  wall: %s\n", ns(rep.WallNs))
	}

	fmt.Fprintf(w, "\nphase breakdown (by total time)\n")
	fmt.Fprintf(w, "  %-16s %6s %12s %12s %12s\n", "name", "count", "total", "min", "max")
	for _, p := range rep.Phases {
		fmt.Fprintf(w, "  %-16s %6d %12s %12s %12s\n", p.Name, p.Count, ns(p.TotalNs), ns(p.MinNs), ns(p.MaxNs))
	}

	if len(rep.Critical) > 0 {
		fmt.Fprintf(w, "\ncritical path (last-finisher chain; the wall-time lower bound)\n")
		for _, c := range rep.Critical {
			out := ""
			if c.Outcome != "" {
				out = " [" + c.Outcome + "]"
			}
			fmt.Fprintf(w, "  %s%s (%s) +%s %s%s\n",
				strings.Repeat("  ", c.Depth), c.Name, c.Proc, ns(c.StartNs), ns(c.DurNs), out)
		}
	}

	if rep.HasTimes {
		fmt.Fprintf(w, "\nper-process utilization (leaf-span busy time over trace wall)\n")
		for _, p := range rep.Procs {
			fmt.Fprintf(w, "  %-12s %5.1f%% busy %-12s |%s|\n", p.Proc, p.UtilPct, ns(p.BusyNs), p.Timeline)
		}
	}

	if len(rep.Leases.Outcomes) > 0 {
		fmt.Fprintf(w, "\nlease attribution\n  outcomes:")
		for _, o := range rep.Leases.Outcomes {
			fmt.Fprintf(w, " %s %d", o.Outcome, o.Count)
		}
		fmt.Fprintf(w, "\n")
		if len(rep.Leases.Reissues) > 0 {
			fmt.Fprintf(w, "  re-issued ranges (recovery from expiry/failure/death):\n")
			for _, l := range rep.Leases.Reissues {
				fmt.Fprintf(w, "    [%d,%d) attempt %d worker %d -> %s\n", l.Lo, l.Hi, l.Attempt, l.Worker, l.Outcome)
			}
		}
		if len(rep.Leases.Stragglers) > 0 {
			fmt.Fprintf(w, "  slowest leases (per row):\n")
			for _, l := range rep.Leases.Stragglers {
				fmt.Fprintf(w, "    [%d,%d) worker %d: %s for %d row(s) = %.3f ms/row [%s]\n",
					l.Lo, l.Hi, l.Worker, ns(l.DurNs), l.Hi-l.Lo, l.MsPerRow, l.Outcome)
			}
		}
	}

	if rep.Kernel.Batches > 0 {
		fmt.Fprintf(w, "\nkernel lane occupancy\n")
		fmt.Fprintf(w, "  %d batch(es), kernel time %s, lane-weighted %s, occupancy %.1f%%\n",
			rep.Kernel.Batches, ns(rep.Kernel.KernelNs), ns(rep.Kernel.WeightedNs), rep.Kernel.LanePct)
	}
}

// render produces the full output for one invocation.
func render(paths []string, asJSON bool) ([]byte, error) {
	tr, err := load(paths)
	if err != nil {
		return nil, err
	}
	rep := analyze(tr)
	var buf bytes.Buffer
	if asJSON {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		buf.Write(b)
		buf.WriteByte('\n')
	} else {
		writeText(&buf, rep)
	}
	return buf.Bytes(), nil
}

func main() {
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of text")
	out := flag.String("o", "", "write the report to this file instead of stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tracer [-json] [-o file] span-journal.jsonl ...\n")
		fmt.Fprintf(os.Stderr, "give the coordinator's journal first so cross-process parents resolve.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	b, err := render(flag.Args(), *asJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracer: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tracer: %v\n", err)
			os.Exit(1)
		}
		return
	}
	os.Stdout.Write(b)
}
