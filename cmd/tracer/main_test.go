package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// writeFleetJournals emits a small deterministic two-process trace —
// a coordinator with three leases (one straggling re-issue) and one
// worker whose lease span parents under the coordinator's via rparent
// — through the real telemetry producer, and returns the two paths in
// coordinator-first order.
func writeFleetJournals(t *testing.T) []string {
	t.Helper()
	dir := t.TempDir()
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	now := base
	clock := func() time.Time { return now }
	at := func(d time.Duration) { now = base.Add(d) }

	// Coordinator process.
	cpath := filepath.Join(dir, "coordinator.spans.jsonl")
	cj, err := telemetry.OpenJournal(cpath, clock)
	if err != nil {
		t.Fatal(err)
	}
	coord := telemetry.NewCampaign(nil, nil)
	coord.Tracer = telemetry.NewTracer(cj, "coordinator", telemetry.TraceID("tracer-test"))

	at(0)
	root := coord.StartSpan("dist-campaign")
	coord.SetTraceRoot(root)

	lease := func(id, lo, hi, worker, attempt int64) telemetry.Span {
		return coord.StartSpanAttrs("lease", func(e *telemetry.Enc) {
			e.Int("lease", id)
			e.Int("lo", lo)
			e.Int("hi", hi)
			e.Int("worker", worker)
			e.Int("attempt", attempt)
		})
	}
	at(10 * time.Millisecond)
	l1 := lease(1, 0, 16, 1, 1)
	at(110 * time.Millisecond)
	l1.EndOutcome("done")
	at(110 * time.Millisecond)
	l2 := lease(2, 16, 20, 1, 1)
	at(160 * time.Millisecond)
	l2.EndOutcome("expired")
	at(170 * time.Millisecond)
	l3 := lease(3, 16, 20, 2, 2)
	at(370 * time.Millisecond)
	l3.EndOutcome("done")
	at(400 * time.Millisecond)
	root.End()
	if err := cj.Close(); err != nil {
		t.Fatal(err)
	}

	// Worker process: adopts the trace from the wire and parents its
	// lease span under the coordinator's l1 by raw remote id. Its own
	// span ids restart at 1, so id collisions across files are part of
	// the fixture.
	wpath := filepath.Join(dir, "w1.spans.jsonl")
	wj, err := telemetry.OpenJournal(wpath, clock)
	if err != nil {
		t.Fatal(err)
	}
	work := telemetry.NewCampaign(nil, nil)
	work.Tracer = telemetry.NewTracer(wj, "w1", 0)

	at(12 * time.Millisecond)
	wl := work.StartRemoteSpan("worker-lease", coord.Tracer.TraceHex(), l1.ID(), func(e *telemetry.Enc) {
		e.Int("lease", 1)
		e.Int("lo", 0)
		e.Int("hi", 16)
	})
	work.SetTraceRoot(wl)
	at(20 * time.Millisecond)
	b1 := work.StartSpanInt("batch", "lanes", 64)
	at(60 * time.Millisecond)
	b1.End()
	at(60 * time.Millisecond)
	b2 := work.StartSpanInt("batch", "lanes", 32)
	at(100 * time.Millisecond)
	b2.End()
	at(100 * time.Millisecond)
	ex := work.StartSpanInt("exp", "i", 3)
	at(104 * time.Millisecond)
	ex.EndOutcome("silent")
	at(108 * time.Millisecond)
	wl.EndOutcome("done")
	if err := wj.Close(); err != nil {
		t.Fatal(err)
	}
	return []string{cpath, wpath}
}

// TestReportByteStable: the acceptance bar — identical journals must
// render to identical bytes, in text and JSON, across runs.
func TestReportByteStable(t *testing.T) {
	paths := writeFleetJournals(t)
	for _, asJSON := range []bool{false, true} {
		a, err := render(paths, asJSON)
		if err != nil {
			t.Fatal(err)
		}
		b, err := render(paths, asJSON)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("json=%v: two renders of the same journals differ:\n--- first\n%s\n--- second\n%s", asJSON, a, b)
		}
	}
}

// TestReportContent pins the load-bearing analysis results: critical
// path through the straggling re-issued lease, cross-file rparent
// linking, straggler attribution, outcome counts and lane occupancy.
func TestReportContent(t *testing.T) {
	paths := writeFleetJournals(t)
	b, err := render(paths, false)
	if err != nil {
		t.Fatal(err)
	}
	out := string(b)

	for _, want := range []string{
		// Header: both files, one shared trace id, 400ms wall.
		"2 file(s), 8 span(s), 0 unclosed",
		"wall: 400ms",
		// The critical path descends from the campaign root into the
		// re-issued straggler lease (ends at 370ms), not the first one.
		"dist-campaign (coordinator) +0s 400ms",
		"  lease (coordinator) +170ms 200ms [done]",
		// Straggler attribution: 200ms over 4 rows.
		"[16,20) worker 2: 200ms for 4 row(s) = 50.000 ms/row [done]",
		// The expired lease and the attempt-2 re-issue both surface.
		"outcomes: done 2 expired 1",
		"[16,20) attempt 2 worker 2 -> done",
		// Lane occupancy: 40ms@64 + 40ms@32 lanes = 60ms weighted over
		// 80ms kernel = 75%.
		"2 batch(es), kernel time 80ms, lane-weighted 60ms, occupancy 75.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n--- report\n%s", want, out)
		}
	}

	// Cross-file linking: the worker-lease span resolved its rparent
	// to the coordinator's lease 1 — so the worker's spans sit inside
	// the fleet trace, and w1's leaf busy time is 84ms (two batches
	// plus the exp span) at 21% of the 400ms wall.
	if !strings.Contains(out, "w1") || !strings.Contains(out, "21.0% busy 84ms") {
		t.Errorf("worker utilization row missing or wrong\n--- report\n%s", out)
	}
}

// TestReportNoTimestamps: a clockless journal (the deterministic-test
// configuration) must still load, report counts, and say why durations
// are absent.
func TestReportNoTimestamps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spans.jsonl")
	j, err := telemetry.OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	hub := telemetry.NewCampaign(nil, nil)
	hub.Tracer = telemetry.NewTracer(j, "p", telemetry.TraceID("x"))
	sp := hub.StartSpan("campaign")
	hub.SetTraceRoot(sp)
	hub.StartSpan("phase-a").End()
	sp.End()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := render([]string{path}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "journal has no timestamps") {
		t.Fatalf("missing no-timestamps note:\n%s", b)
	}
	if !strings.Contains(string(b), "1 file(s), 2 span(s), 0 unclosed") {
		t.Fatalf("wrong counts:\n%s", b)
	}
}

// TestReportSkipsCampaignEvents: the tool accepts the combined run
// journal — lifecycle events interleave with spans and are counted,
// not fatal.
func TestReportSkipsCampaignEvents(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	lines := "" +
		`{"seq":1,"ev":"campaign_start","total":4}` + "\n" +
		`{"seq":2,"ev":"span_start","trace":"00000000000000aa","span":1,"name":"campaign","proc":"p"}` + "\n" +
		`{"seq":3,"ev":"exp_finish","i":0,"outcome":"silent"}` + "\n" +
		`{"seq":4,"ev":"span_end","span":1}` + "\n"
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := render([]string{path}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "2 non-span event(s) skipped") {
		t.Fatalf("skip counting wrong:\n%s", b)
	}
}
