// Command netlist exports a memory sub-system implementation (or its
// standalone codec testbench) as structural Verilog, or re-imports such
// a file and reports its zone-extraction summary — the interchange path
// for netlists coming from an external synthesis flow.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/memsys"
	"repro/internal/netlist"
	"repro/internal/zones"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netlist: ")
	design := flag.String("design", "v2", "implementation: v1 or v2")
	codec := flag.Bool("codec", false, "export the standalone codec testbench instead of the full DUT")
	out := flag.String("o", "", "write Verilog to this file (default stdout)")
	parse := flag.String("parse", "", "parse a structural Verilog file and summarize it")
	flag.Parse()

	if *parse != "" {
		f, err := os.Open(*parse)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		n, err := netlist.ParseVerilog(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(n.String())
		a, err := zones.Extract(n, zones.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(a.Summary())
		return
	}

	var cfg memsys.Config
	switch *design {
	case "v1":
		cfg = memsys.V1Config()
	case "v2":
		cfg = memsys.V2Config()
	default:
		log.Fatalf("unknown design %q", *design)
	}
	var n *netlist.Netlist
	var err error
	if *codec {
		n, err = memsys.BuildCodecBench(cfg)
	} else {
		var d *memsys.Design
		d, err = memsys.Build(cfg)
		if d != nil {
			n = d.N
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := n.WriteVerilog(w); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%s)\n", *out, n.String())
	}
}
