// Command fmea runs the SoC-level FMEA over a memory sub-system
// implementation: zone extraction, worksheet computation, IEC 61508
// metrics (DC, SFF, claimable SIL), the per-zone criticality ranking,
// the sensitivity spans, and an optional CSV export of the full sheet.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/fit"
	"repro/internal/memsys"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fmea: ")
	design := flag.String("design", "v2", "implementation: v1 or v2")
	addrWidth := flag.Int("addr", 8, "address width")
	csvPath := flag.String("csv", "", "export the worksheet to this CSV file")
	top := flag.Int("top", 12, "ranking entries to print")
	span := flag.Float64("span", 2, "sensitivity span factor")
	flag.Parse()

	var cfg memsys.Config
	switch *design {
	case "v1":
		cfg = memsys.V1Config()
	case "v2":
		cfg = memsys.V2Config()
	default:
		log.Fatalf("unknown design %q", *design)
	}
	cfg.AddrWidth = *addrWidth
	d, err := memsys.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	a, err := d.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	w := d.Worksheet(a, fit.Default())
	m := w.Totals()

	fmt.Println(a.Summary())
	t := report.NewTable("\nIEC 61508 metrics",
		"λS [FIT]", "λD [FIT]", "λDD [FIT]", "λDU [FIT]", "DC", "SFF", "SIL@HFT0", "SIL@HFT1")
	t.AddRow(m.LambdaS, m.LambdaD, m.LambdaDD, m.LambdaDU,
		m.DC(), m.SFF(), w.SIL(0).String(), w.SIL(1).String())
	fmt.Println(t.Render())

	rt := report.NewTable("Criticality ranking (by undetected dangerous rate)",
		"#", "zone", "λDU [FIT]", "share", "SFF(zone)")
	for i, zr := range w.Ranking() {
		if i >= *top {
			break
		}
		rt.AddRow(i+1, zr.ZoneName, zr.Metrics.LambdaDU, report.Pct(zr.ShareDU), zr.Metrics.SFF())
	}
	fmt.Println(rt.Render())

	sens := w.SpanAssumptions(*span)
	st := report.NewTable("Sensitivity spans", "case", "SFF")
	st.AddRow("baseline", sens.BaseSFF)
	for _, c := range sens.Cases {
		st.AddRow(c.Name, c.SFF)
	}
	fmt.Println(st.Render())
	fmt.Printf("SFF spread across spans: %.4f\n", sens.Spread())

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("worksheet exported to %s (%d rows)\n", *csvPath, len(w.Rows))
	}
}
