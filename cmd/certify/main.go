// Command certify runs the complete assessment flow over both memory
// sub-system implementations (or one of them) and prints the
// certification-style report: metrics, SIL grading against the target,
// sensitivity spans and the full fault-injection validation verdicts.
// The exit code is non-zero when the target SIL is not met.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/frcpu"
	"repro/internal/iec61508"
	"repro/internal/inject"
	"repro/internal/memsys"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("certify: ")
	design := flag.String("design", "both", "implementation: v1, v2, both, cpu or cpu-lockstep")
	addrWidth := flag.Int("addr", 8, "address width for metrics (validation always runs at this size)")
	target := flag.Int("target", 3, "target SIL (1-4)")
	hft := flag.Int("hft", 0, "hardware fault tolerance")
	validate := flag.Bool("validate", false, "run the full fault-injection validation (slow)")
	srs := flag.Bool("srs", false, "also print the Safety Requirements Specification extract")
	transient := flag.Int("transient", 1, "transient experiments per zone")
	permanent := flag.Int("permanent", 1, "permanent experiments per zone")
	flag.Parse()

	opts := core.DefaultOptions()
	opts.TargetSIL = iec61508.SIL(*target)
	opts.HFT = *hft
	opts.RunValidation = *validate
	opts.Plan = inject.PlanConfig{TransientPerZone: *transient, PermanentPerZone: *permanent, Seed: 1}

	var duts []core.DUT
	memDUT := func(cfg memsys.Config) core.DUT {
		cfg.AddrWidth = *addrWidth
		d, err := memsys.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return memsys.NewFlowDUT(d)
	}
	cpuDUT := func(cfg frcpu.Config) core.DUT {
		d, err := frcpu.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return frcpu.NewFlowDUT(d)
	}
	switch *design {
	case "v1":
		duts = []core.DUT{memDUT(memsys.V1Config())}
	case "v2":
		duts = []core.DUT{memDUT(memsys.V2Config())}
	case "both":
		duts = []core.DUT{memDUT(memsys.V1Config()), memDUT(memsys.V2Config())}
	case "cpu":
		duts = []core.DUT{cpuDUT(frcpu.PlainConfig())}
	case "cpu-lockstep":
		duts = []core.DUT{cpuDUT(frcpu.LockstepConfig())}
	default:
		log.Fatalf("unknown design %q", *design)
	}

	// The DRC pre-flight is mandatory: a report that grades SIL over a
	// netlist with error-level findings says so in the report body, and
	// the command refuses the certification exit code.
	allMet := true
	for _, dut := range duts {
		as, err := core.Run(dut, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(as.Report())
		if *srs {
			fmt.Println()
			fmt.Println(as.SRS())
		}
		fmt.Println()
		if !as.DRCClean() {
			log.Printf("%s: DRC pre-flight found %d error-level violation(s); grade is conditional",
				as.Name, as.DRC.Count(drc.Error))
		}
		if !as.CampaignHealthy() {
			log.Printf("%s: validation campaign degraded (%d quarantined, %d aborted); grade is conditional",
				as.Name, as.Validation.Quarantined, as.Validation.AbortedExps)
		}
		allMet = allMet && as.TargetMet && as.DRCClean() && as.CampaignHealthy()
	}
	if !allMet {
		os.Exit(1)
	}
}
