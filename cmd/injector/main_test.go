package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExitCodes pins the documented CI contract for both the campaign
// and worker entry points: 0 success, 1 fatal, 2 usage, 3 quarantined,
// 4 coverage incomplete.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"tiny clean campaign", []string{"-design", "v1", "-addr", "6", "-words", "2", "-transient", "1", "-permanent", "1", "-wide", "2", "-require-coverage=false"}, 0},
		{"tiny campaign fails coverage gate", []string{"-design", "v1", "-addr", "6", "-words", "2", "-transient", "1", "-permanent", "1", "-wide", "2"}, 4},
		{"unknown design", []string{"-design", "nope"}, 2},
		{"unknown flag", []string{"-frobnicate"}, 2},
		{"negative workers", []string{"-design", "v1", "-workers", "-1"}, 2},
		{"lanes out of range", []string{"-design", "v1", "-lanes", "65"}, 2},
		{"resume without checkpoint", []string{"-design", "v1", "-resume"}, 2},
		{"worker without transport", []string{"worker", "-design", "v1"}, 2},
		{"worker with both transports", []string{"worker", "-connect", "127.0.0.1:1", "-stdio"}, 2},
		{"worker lanes out of range", []string{"worker", "-stdio", "-lanes", "0"}, 2},
		{"worker bad heartbeat", []string{"worker", "-stdio", "-heartbeat", "0s"}, 2},
		{"worker unknown flag", []string{"worker", "-frobnicate"}, 2},
		{"worker unknown design", []string{"worker", "-stdio", "-design", "nope"}, 2},
	}
	for _, tc := range cases {
		var out, errb bytes.Buffer
		if got := run(tc.args, &out, &errb); got != tc.want {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, got, tc.want, errb.String())
		}
	}
}

// TestHelpDocumentsExitCodes: --help must exit 0 for both entry points
// and spell out every exit code scripts branch on.
func TestHelpDocumentsExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"--help"}, &out, &errb); got != 0 {
		t.Fatalf("--help: exit %d, want 0", got)
	}
	usage := errb.String()
	for _, want := range []string{
		"Exit codes:",
		"0  success",
		"1  fatal error",
		"2  flag/usage error",
		"3  experiment(s) quarantined",
		"4  campaign coverage incomplete",
	} {
		if !strings.Contains(usage, want) {
			t.Errorf("campaign usage text missing %q:\n%s", want, usage)
		}
	}

	errb.Reset()
	if got := run([]string{"worker", "--help"}, &out, &errb); got != 0 {
		t.Fatalf("worker --help: exit %d, want 0", got)
	}
	usage = errb.String()
	for _, want := range []string{
		"Exit codes:",
		"0  campaign complete",
		"1  fatal error",
		"2  flag/usage error",
	} {
		if !strings.Contains(usage, want) {
			t.Errorf("worker usage text missing %q:\n%s", want, usage)
		}
	}
}

// TestReportGoesToStdout: the campaign report renders on stdout,
// diagnostics on stderr, so pipelines can separate report from noise.
func TestReportGoesToStdout(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-design", "v1", "-addr", "6", "-words", "2", "-transient", "1", "-permanent", "1", "-wide", "2", "-require-coverage=false"}
	if got := run(args, &out, &errb); got != 0 {
		t.Fatalf("exit %d, stderr: %s", got, errb.String())
	}
	if !strings.Contains(out.String(), "coverage: SENS") {
		t.Fatalf("stdout does not look like a campaign report:\n%s", out.String())
	}
}
