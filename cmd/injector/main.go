// Command injector runs the Fig. 4 fault-injection validation campaign
// against a memory sub-system implementation: golden run, operational-
// profile-guided fault list, per-zone measured S/DDF, coverage items,
// effect-table consistency and the cross-check against the worksheet.
//
// With -warmstart N the golden run captures a state snapshot every N
// cycles and each experiment resumes from the snapshot at-or-before its
// injection cycle instead of simulating from cycle 0; the report is
// byte-identical to a cold-start run.
//
// With -lanes L (2..64) each worker runs up to L experiments
// bit-parallel in one machine word on the compiled simulation kernel
// (internal/simc); the report is byte-identical to the serial path for
// any workers x lanes combination.
//
// With -collapse the static fault-analysis pre-pass (internal/
// statfault) runs before the campaign: experiments with a statically
// provable verdict (unobservable cones, untestable constants, golden-
// quiescent forces) skip simulation, and campaign-exact equivalent
// experiments share one simulation with the outcome copied onto every
// class member; the report is byte-identical to an uncollapsed run.
//
// Campaign execution is supervised: per-experiment watchdogs
// (-exp-cycle-budget, -exp-timeout), retry + quarantine of failing
// experiments (-retries), and deterministic checkpoint/resume
// (-checkpoint, -resume) — a resumed campaign's report is byte-
// identical to an uninterrupted run.
//
// Campaign execution is also observable, strictly out-of-band (the
// stdout report stays byte-identical with every option off or on):
// -journal writes a JSONL lifecycle journal (validated by
// tools/checkjournal), -progress prints periodic stderr snapshots
// (done/total, exp/s, worker utilization, retries, quarantines, ETA),
// and -status serves expvar + net/http/pprof + a /progress JSON
// endpoint for live campaigns (binds 127.0.0.1 for a bare ":port").
//
// Exit codes: 0 success; 1 fatal error; 2 flag/usage error;
// 3 experiments quarantined (campaign degraded); 4 campaign coverage
// incomplete (Coverage.Complete() false — the CI gate).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/fit"
	"repro/internal/inject"
	"repro/internal/memsys"
	"repro/internal/report"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run())
}

// run executes the campaign and returns the process exit code; keeping
// os.Exit out of the work path lets the telemetry teardown (journal
// flush, final progress line, status-server close) run on every exit.
func run() int {
	log.SetFlags(0)
	log.SetPrefix("injector: ")
	design := flag.String("design", "v2", "implementation: v1 or v2")
	addrWidth := flag.Int("addr", 6, "address width")
	words := flag.Int("words", 8, "March slice size of the workload")
	transient := flag.Int("transient", 6, "transient experiments per zone")
	permanent := flag.Int("permanent", 3, "permanent experiments per zone")
	wide := flag.Int("wide", 12, "wide/global fault experiments")
	seed := flag.Uint64("seed", 1, "campaign seed")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel campaign workers (1 = serial; results are identical)")
	warmstart := flag.Int("warmstart", 0, "golden snapshot cadence in cycles for warm-started experiments (0 = cold start; results are identical)")
	lanes := flag.Int("lanes", 1, "bit-parallel simulation lanes per worker, 1..64 (compiled kernel; results are identical)")
	collapse := flag.Bool("collapse", false, "static fault-analysis pre-pass: prune statically-provable experiments and simulate one representative per equivalence class (results are identical)")
	tol := flag.Float64("tol", 0.35, "estimate-vs-measured tolerance")
	vcd := flag.String("vcd", "", "record golden + first-undetected-fault waveforms to <prefix>_{golden,faulty}.vcd")
	checkpoint := flag.String("checkpoint", "", "campaign checkpoint file (enables periodic checkpointing)")
	checkpointEvery := flag.Int("checkpoint-every", 16, "completed experiments between checkpoint writes")
	resume := flag.Bool("resume", false, "resume from -checkpoint; the merged report is byte-identical to an uninterrupted run")
	cycleBudget := flag.Int("exp-cycle-budget", 0, "max simulated cycles per experiment (0 = unlimited; exceeding aborts the experiment)")
	expTimeout := flag.Duration("exp-timeout", 0, "max wall-clock per experiment (0 = unlimited; nondeterministic last-resort hang guard)")
	retries := flag.Int("retries", 0, "retry a failing experiment up to N more times before quarantining it")
	requireCoverage := flag.Bool("require-coverage", true, "exit 4 when campaign coverage is incomplete")
	journalPath := flag.String("journal", "", "write the JSONL campaign journal (lifecycle events) to this file")
	progressEvery := flag.Duration("progress", 0, "print periodic campaign progress to stderr at this interval (0 = off)")
	statusAddr := flag.String("status", "", "serve expvar + pprof + /progress on this address (a bare \":port\" binds 127.0.0.1)")
	flag.Parse()

	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "injector: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 0 {
		usageErr("-workers must be >= 0 (0 = serial), got %d", *workers)
	}
	if *warmstart < 0 {
		usageErr("-warmstart must be >= 0 (0 = cold start), got %d", *warmstart)
	}
	if *lanes < 1 || *lanes > 64 {
		usageErr("-lanes must be in 1..64, got %d", *lanes)
	}
	if *cycleBudget < 0 {
		usageErr("-exp-cycle-budget must be >= 0, got %d", *cycleBudget)
	}
	if *expTimeout < 0 {
		usageErr("-exp-timeout must be >= 0, got %v", *expTimeout)
	}
	if *retries < 0 {
		usageErr("-retries must be >= 0, got %d", *retries)
	}
	if *checkpointEvery < 1 {
		usageErr("-checkpoint-every must be >= 1, got %d", *checkpointEvery)
	}
	if *resume && *checkpoint == "" {
		usageErr("-resume requires -checkpoint")
	}
	if *transient < 0 || *permanent < 0 || *wide < 0 {
		usageErr("experiment counts must be >= 0")
	}
	if *progressEvery < 0 {
		usageErr("-progress must be >= 0, got %v", *progressEvery)
	}

	// Telemetry hub: created when any observability flag is on. It is
	// out-of-band by construction — journal to its file, progress to
	// stderr, status over HTTP — so the stdout report bytes never
	// depend on it.
	var tel *telemetry.Campaign
	if *journalPath != "" || *progressEvery > 0 || *statusAddr != "" {
		var journal *telemetry.Journal
		if *journalPath != "" {
			var err error
			journal, err = telemetry.OpenJournal(*journalPath, telemetry.SystemClock)
			if err != nil {
				log.Print(err)
				return 1
			}
		}
		tel = telemetry.NewCampaign(journal, telemetry.SystemClock)
		if *statusAddr != "" {
			srv, err := telemetry.ServeStatus(*statusAddr, tel)
			if err != nil {
				log.Print(err)
				return 1
			}
			log.Printf("status endpoint: http://%s/progress (expvar at /debug/vars, pprof at /debug/pprof/)", srv.Addr)
			defer srv.Close()
		}
		if *progressEvery > 0 {
			rep := telemetry.StartReporter(os.Stderr, tel, *progressEvery)
			defer rep.Stop()
		}
		defer func() {
			if err := journal.Close(); err != nil {
				log.Printf("journal: %v", err)
			}
		}()
	}
	fatal := func(err error) int {
		log.Print(err)
		return 1
	}

	var cfg memsys.Config
	switch *design {
	case "v1":
		cfg = memsys.V1Config()
	case "v2":
		cfg = memsys.V2Config()
	default:
		usageErr("unknown design %q", *design)
	}
	cfg.AddrWidth = *addrWidth
	tel.Phase("build")
	d, err := memsys.Build(cfg)
	if err != nil {
		return fatal(err)
	}
	tel.Phase("zone-extraction")
	a, err := d.Analyze()
	if err != nil {
		return fatal(err)
	}
	target := d.InjectionTargetSeeded(a, d.SeedFaults())
	target.Workers = *workers
	target.SnapshotEvery = *warmstart
	target.Lanes = *lanes
	target.Collapse = *collapse
	target.Supervision = inject.Supervision{
		CycleBudget:     *cycleBudget,
		WallBudget:      *expTimeout,
		Clock:           time.Now,
		Retries:         *retries,
		Quarantine:      true,
		Checkpoint:      *checkpoint,
		CheckpointEvery: *checkpointEvery,
		Resume:          *resume,
	}
	target.Telemetry = tel
	tr := d.ValidationWorkload(*words, *seed)
	fmt.Printf("%s: workload %d cycles, %d zones\n", cfg.Name, tr.Cycles(), len(a.Zones))

	tel.Phase("golden-run")
	g, err := target.RunGolden(tr)
	if err != nil {
		return fatal(err)
	}
	if ok, inactive := g.CompletenessOK(); !ok {
		fmt.Printf("WARNING: workload leaves %d zones untriggered\n", len(inactive))
	} else {
		fmt.Println("workload completeness: PASS (every zone triggered)")
	}

	tel.Phase("plan")
	pcfg := inject.PlanConfig{TransientPerZone: *transient, PermanentPerZone: *permanent, Seed: *seed}
	plan := inject.BuildPlan(a, g, pcfg)
	plan = append(plan, inject.WidePlan(a, g, *wide, *seed+1)...)
	effective := *workers
	if effective == 0 {
		effective = 1
	}
	if *resume {
		log.Printf("resuming from checkpoint %s (plan hash %016x)", *checkpoint, inject.PlanHash(plan))
	}
	fmt.Printf("running %d injection experiments on %d worker(s)...\n", len(plan), effective)
	tel.Phase("campaign")
	rep, err := target.Run(g, plan)
	if err != nil {
		return fatal(err)
	}
	tel.Phase("analysis")

	cov := rep.Coverage
	fmt.Printf("coverage: SENS %s  OBSE %s  DIAG %s  (%d mismatches)\n",
		report.Pct(cov.SensFrac()), report.Pct(cov.ObseFrac()), report.Pct(cov.DiagFrac()), cov.Mismatches)

	t := report.NewTable("\nPer-zone measured outcomes",
		"zone", "exp", "silent", "det-safe", "dang-det", "dang-undet", "S(meas)", "DDF(meas)")
	for _, zm := range rep.ZoneMeasures(a) {
		t.AddRow(zm.Name, zm.Experiments, zm.Silent, zm.DetSafe, zm.DangerDet, zm.DangerUndet,
			zm.SMeasured(), zm.DDFMeasured())
	}
	fmt.Println(t.Render())

	if n := rep.AbortedCount(); n > 0 {
		fmt.Printf("WATCHDOG: %d experiment(s) aborted on budget (counted dangerous-undetected)\n", n)
	}
	if len(rep.Quarantined) > 0 {
		qt := report.NewTable("\nQuarantined experiments (no verdict; counted dangerous-undetected)",
			"plan#", "injection", "attempts", "error")
		for _, q := range rep.Quarantined {
			qt.AddRow(q.PlanIndex, q.Injection.Describe(a), q.Attempts, q.Err)
		}
		fmt.Println(qt.Render())
	}

	w := d.Worksheet(a, fit.Default())
	rows := rep.ValidateWorksheet(a, w, *tol)
	bad := 0
	for _, r := range rows {
		if !r.Within {
			bad++
			flagNote := ""
			if r.Degraded > 0 {
				flagNote = fmt.Sprintf("  [%d experiment(s) without verdict — conservative bound]", r.Degraded)
			}
			fmt.Printf("OVER-CLAIM: %-28s estS=%.2f measS=%.2f estDDF=%.2f measDDF=%.2f%s\n",
				r.Name, r.EstS, r.MeasS, r.EstDDF, r.MeasDDF, flagNote)
		}
	}
	fmt.Printf("worksheet cross-check: %s of %d zones within tolerance (%d over-claims)\n",
		report.Pct(inject.PassFraction(rows)), len(rows), bad)

	if *vcd != "" {
		if err := recordVCDs(*vcd, target, g, rep); err != nil {
			return fatal(err)
		}
	}

	inconsistent := 0
	for _, ec := range rep.CheckEffects(a) {
		if !ec.Consistent {
			inconsistent++
			fmt.Printf("NEW EFFECTS for zone %s: observation points %v not in main/secondary prediction\n",
				ec.Name, ec.Unpredicted)
		}
	}
	if inconsistent == 0 {
		fmt.Println("effect tables consistent with main/secondary analysis: PASS")
	}

	if len(rep.Quarantined) > 0 {
		log.Printf("campaign degraded: %d experiment(s) quarantined", len(rep.Quarantined))
		return 3
	}
	if *requireCoverage && !cov.Complete() {
		log.Printf("campaign coverage incomplete (SENS %s OBSE %s DIAG %s); failing the gate",
			report.Pct(cov.SensFrac()), report.Pct(cov.ObseFrac()), report.Pct(cov.DiagFrac()))
		return 4
	}
	return 0
}

// recordVCDs dumps the golden waveform plus the first dangerous-
// undetected experiment's faulty waveform for debugging.
func recordVCDs(prefix string, target *inject.Target, g *inject.Golden, rep *inject.Report) error {
	write := func(path string, inj *inject.Injection) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := target.RecordVCD(g, inj, f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}
	if err := write(prefix+"_golden.vcd", nil); err != nil {
		return err
	}
	for i := range rep.Results {
		if rep.Results[i].Outcome == inject.DangerousUndetected {
			return write(prefix+"_faulty.vcd", &rep.Results[i].Injection)
		}
	}
	if len(rep.Results) > 0 {
		return write(prefix+"_faulty.vcd", &rep.Results[0].Injection)
	}
	return nil
}
