// Command injector runs the Fig. 4 fault-injection validation campaign
// against a memory sub-system implementation: golden run, operational-
// profile-guided fault list, per-zone measured S/DDF, coverage items,
// effect-table consistency and the cross-check against the worksheet.
//
// Campaign execution is supervised: per-experiment watchdogs
// (-exp-cycle-budget, -exp-timeout), retry + quarantine of failing
// experiments (-retries), and deterministic checkpoint/resume
// (-checkpoint, -resume) — a resumed campaign's report is byte-
// identical to an uninterrupted run.
//
// Exit codes: 0 success; 1 fatal error; 2 flag/usage error;
// 3 experiments quarantined (campaign degraded); 4 campaign coverage
// incomplete (Coverage.Complete() false — the CI gate).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/fit"
	"repro/internal/inject"
	"repro/internal/memsys"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("injector: ")
	design := flag.String("design", "v2", "implementation: v1 or v2")
	addrWidth := flag.Int("addr", 6, "address width")
	words := flag.Int("words", 8, "March slice size of the workload")
	transient := flag.Int("transient", 6, "transient experiments per zone")
	permanent := flag.Int("permanent", 3, "permanent experiments per zone")
	wide := flag.Int("wide", 12, "wide/global fault experiments")
	seed := flag.Uint64("seed", 1, "campaign seed")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel campaign workers (1 = serial; results are identical)")
	tol := flag.Float64("tol", 0.35, "estimate-vs-measured tolerance")
	vcd := flag.String("vcd", "", "record golden + first-undetected-fault waveforms to <prefix>_{golden,faulty}.vcd")
	checkpoint := flag.String("checkpoint", "", "campaign checkpoint file (enables periodic checkpointing)")
	checkpointEvery := flag.Int("checkpoint-every", 16, "completed experiments between checkpoint writes")
	resume := flag.Bool("resume", false, "resume from -checkpoint; the merged report is byte-identical to an uninterrupted run")
	cycleBudget := flag.Int("exp-cycle-budget", 0, "max simulated cycles per experiment (0 = unlimited; exceeding aborts the experiment)")
	expTimeout := flag.Duration("exp-timeout", 0, "max wall-clock per experiment (0 = unlimited; nondeterministic last-resort hang guard)")
	retries := flag.Int("retries", 0, "retry a failing experiment up to N more times before quarantining it")
	requireCoverage := flag.Bool("require-coverage", true, "exit 4 when campaign coverage is incomplete")
	flag.Parse()

	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "injector: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 0 {
		usageErr("-workers must be >= 0 (0 = serial), got %d", *workers)
	}
	if *cycleBudget < 0 {
		usageErr("-exp-cycle-budget must be >= 0, got %d", *cycleBudget)
	}
	if *expTimeout < 0 {
		usageErr("-exp-timeout must be >= 0, got %v", *expTimeout)
	}
	if *retries < 0 {
		usageErr("-retries must be >= 0, got %d", *retries)
	}
	if *checkpointEvery < 1 {
		usageErr("-checkpoint-every must be >= 1, got %d", *checkpointEvery)
	}
	if *resume && *checkpoint == "" {
		usageErr("-resume requires -checkpoint")
	}
	if *transient < 0 || *permanent < 0 || *wide < 0 {
		usageErr("experiment counts must be >= 0")
	}

	var cfg memsys.Config
	switch *design {
	case "v1":
		cfg = memsys.V1Config()
	case "v2":
		cfg = memsys.V2Config()
	default:
		usageErr("unknown design %q", *design)
	}
	cfg.AddrWidth = *addrWidth
	d, err := memsys.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	a, err := d.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	target := d.InjectionTargetSeeded(a, d.SeedFaults())
	target.Workers = *workers
	target.Supervision = inject.Supervision{
		CycleBudget:     *cycleBudget,
		WallBudget:      *expTimeout,
		Clock:           time.Now,
		Retries:         *retries,
		Quarantine:      true,
		Checkpoint:      *checkpoint,
		CheckpointEvery: *checkpointEvery,
		Resume:          *resume,
	}
	tr := d.ValidationWorkload(*words, *seed)
	fmt.Printf("%s: workload %d cycles, %d zones\n", cfg.Name, tr.Cycles(), len(a.Zones))

	g, err := target.RunGolden(tr)
	if err != nil {
		log.Fatal(err)
	}
	if ok, inactive := g.CompletenessOK(); !ok {
		fmt.Printf("WARNING: workload leaves %d zones untriggered\n", len(inactive))
	} else {
		fmt.Println("workload completeness: PASS (every zone triggered)")
	}

	pcfg := inject.PlanConfig{TransientPerZone: *transient, PermanentPerZone: *permanent, Seed: *seed}
	plan := inject.BuildPlan(a, g, pcfg)
	plan = append(plan, inject.WidePlan(a, g, *wide, *seed+1)...)
	effective := *workers
	if effective == 0 {
		effective = 1
	}
	if *resume {
		log.Printf("resuming from checkpoint %s (plan hash %016x)", *checkpoint, inject.PlanHash(plan))
	}
	fmt.Printf("running %d injection experiments on %d worker(s)...\n", len(plan), effective)
	rep, err := target.Run(g, plan)
	if err != nil {
		log.Fatal(err)
	}

	cov := rep.Coverage
	fmt.Printf("coverage: SENS %s  OBSE %s  DIAG %s  (%d mismatches)\n",
		report.Pct(cov.SensFrac()), report.Pct(cov.ObseFrac()), report.Pct(cov.DiagFrac()), cov.Mismatches)

	t := report.NewTable("\nPer-zone measured outcomes",
		"zone", "exp", "silent", "det-safe", "dang-det", "dang-undet", "S(meas)", "DDF(meas)")
	for _, zm := range rep.ZoneMeasures(a) {
		t.AddRow(zm.Name, zm.Experiments, zm.Silent, zm.DetSafe, zm.DangerDet, zm.DangerUndet,
			zm.SMeasured(), zm.DDFMeasured())
	}
	fmt.Println(t.Render())

	if n := rep.AbortedCount(); n > 0 {
		fmt.Printf("WATCHDOG: %d experiment(s) aborted on budget (counted dangerous-undetected)\n", n)
	}
	if len(rep.Quarantined) > 0 {
		qt := report.NewTable("\nQuarantined experiments (no verdict; counted dangerous-undetected)",
			"plan#", "injection", "attempts", "error")
		for _, q := range rep.Quarantined {
			qt.AddRow(q.PlanIndex, q.Injection.Describe(a), q.Attempts, q.Err)
		}
		fmt.Println(qt.Render())
	}

	w := d.Worksheet(a, fit.Default())
	rows := rep.ValidateWorksheet(a, w, *tol)
	bad := 0
	for _, r := range rows {
		if !r.Within {
			bad++
			flagNote := ""
			if r.Degraded > 0 {
				flagNote = fmt.Sprintf("  [%d experiment(s) without verdict — conservative bound]", r.Degraded)
			}
			fmt.Printf("OVER-CLAIM: %-28s estS=%.2f measS=%.2f estDDF=%.2f measDDF=%.2f%s\n",
				r.Name, r.EstS, r.MeasS, r.EstDDF, r.MeasDDF, flagNote)
		}
	}
	fmt.Printf("worksheet cross-check: %s of %d zones within tolerance (%d over-claims)\n",
		report.Pct(inject.PassFraction(rows)), len(rows), bad)

	if *vcd != "" {
		recordVCDs(*vcd, target, g, rep)
	}

	inconsistent := 0
	for _, ec := range rep.CheckEffects(a) {
		if !ec.Consistent {
			inconsistent++
			fmt.Printf("NEW EFFECTS for zone %s: observation points %v not in main/secondary prediction\n",
				ec.Name, ec.Unpredicted)
		}
	}
	if inconsistent == 0 {
		fmt.Println("effect tables consistent with main/secondary analysis: PASS")
	}

	if len(rep.Quarantined) > 0 {
		log.Printf("campaign degraded: %d experiment(s) quarantined", len(rep.Quarantined))
		os.Exit(3)
	}
	if *requireCoverage && !cov.Complete() {
		log.Printf("campaign coverage incomplete (SENS %s OBSE %s DIAG %s); failing the gate",
			report.Pct(cov.SensFrac()), report.Pct(cov.ObseFrac()), report.Pct(cov.DiagFrac()))
		os.Exit(4)
	}
}

// recordVCDs dumps the golden waveform plus the first dangerous-
// undetected experiment's faulty waveform for debugging.
func recordVCDs(prefix string, target *inject.Target, g *inject.Golden, rep *inject.Report) {
	write := func(path string, inj *inject.Injection) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := target.RecordVCD(g, inj, f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	write(prefix+"_golden.vcd", nil)
	for i := range rep.Results {
		if rep.Results[i].Outcome == inject.DangerousUndetected {
			write(prefix+"_faulty.vcd", &rep.Results[i].Injection)
			return
		}
	}
	if len(rep.Results) > 0 {
		write(prefix+"_faulty.vcd", &rep.Results[0].Injection)
	}
}
