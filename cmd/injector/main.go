// Command injector runs the Fig. 4 fault-injection validation campaign
// against a memory sub-system implementation: golden run, operational-
// profile-guided fault list, per-zone measured S/DDF, coverage items,
// effect-table consistency and the cross-check against the worksheet.
//
// With -warmstart N the golden run captures a state snapshot every N
// cycles and each experiment resumes from the snapshot at-or-before its
// injection cycle instead of simulating from cycle 0; the report is
// byte-identical to a cold-start run.
//
// With -lanes L (2..64) each worker runs up to L experiments
// bit-parallel in one machine word on the compiled simulation kernel
// (internal/simc); the report is byte-identical to the serial path for
// any workers x lanes combination.
//
// With -collapse the static fault-analysis pre-pass (internal/
// statfault) runs before the campaign: experiments with a statically
// provable verdict (unobservable cones, untestable constants, golden-
// quiescent forces) skip simulation, and campaign-exact equivalent
// experiments share one simulation with the outcome copied onto every
// class member; the report is byte-identical to an uncollapsed run.
//
// Campaign execution is supervised: per-experiment watchdogs
// (-exp-cycle-budget, -exp-timeout), retry + quarantine of failing
// experiments (-retries), and deterministic checkpoint/resume
// (-checkpoint, -resume) — a resumed campaign's report is byte-
// identical to an uninterrupted run.
//
// Campaign execution is also observable, strictly out-of-band (the
// stdout report stays byte-identical with every option off or on):
// -journal writes a JSONL lifecycle journal (validated by
// tools/checkjournal), -progress prints periodic stderr snapshots
// (done/total, exp/s, worker utilization, retries, quarantines, ETA),
// and -status serves expvar + net/http/pprof + a /progress JSON
// endpoint for live campaigns (binds 127.0.0.1 for a bare ":port").
//
// "injector worker" joins a distributed campaign instead of running
// one: it builds the same campaign locally from the same spec flags,
// connects to a cmd/campaignd coordinator (-connect host:port, or
// -stdio as a subprocess) and runs leased plan ranges through the
// supervised engine until the coordinator says the campaign is done.
//
// Exit codes are the CI contract, documented in --help: 0 success;
// 1 fatal error; 2 flag/usage error; 3 experiments quarantined
// (campaign degraded); 4 campaign coverage incomplete.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"runtime"
	"strconv"
	"time"

	"repro/internal/dist"
	"repro/internal/fit"
	"repro/internal/inject"
	"repro/internal/memsys"
	"repro/internal/report"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches between the standalone campaign and the distributed
// worker mode and returns the process exit code; keeping os.Exit out
// of the work path lets the telemetry teardown (journal flush, final
// progress line, status-server close) run on every exit.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "worker" {
		return runWorker(args[1:], stderr)
	}
	return runCampaign(args, stdout, stderr)
}

// exitCodesHelp is the shared --help exit-code contract.
func exitCodesHelp(w io.Writer) {
	fmt.Fprintln(w, "\nExit codes:")
	fmt.Fprintln(w, "  0  success")
	fmt.Fprintln(w, "  1  fatal error (build, golden run, campaign or I/O failure)")
	fmt.Fprintln(w, "  2  flag/usage error")
	fmt.Fprintln(w, "  3  experiment(s) quarantined (campaign degraded)")
	fmt.Fprintln(w, "  4  campaign coverage incomplete (with -require-coverage)")
}

func runCampaign(args []string, stdout, stderr io.Writer) int {
	lg := log.New(stderr, "injector: ", 0)
	fs := flag.NewFlagSet("injector", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: injector [flags]")
		fmt.Fprintln(stderr, "       injector worker [flags]   (join a cmd/campaignd distributed campaign; see injector worker -h)")
		fmt.Fprintln(stderr, "\nFault-injection validation campaign: golden run, per-zone measured S/DDF,")
		fmt.Fprintln(stderr, "coverage and the cross-check against the FMEA worksheet.")
		exitCodesHelp(stderr)
		fmt.Fprintln(stderr, "\nFlags:")
		fs.PrintDefaults()
	}
	design := fs.String("design", "v2", "implementation: v1 or v2")
	addrWidth := fs.Int("addr", 6, "address width")
	words := fs.Int("words", 8, "March slice size of the workload")
	transient := fs.Int("transient", 6, "transient experiments per zone")
	permanent := fs.Int("permanent", 3, "permanent experiments per zone")
	wide := fs.Int("wide", 12, "wide/global fault experiments")
	seed := fs.Uint64("seed", 1, "campaign seed")
	workers := fs.Int("workers", runtime.NumCPU(), "parallel campaign workers (1 = serial; results are identical)")
	warmstart := fs.Int("warmstart", 0, "golden snapshot cadence in cycles for warm-started experiments (0 = cold start; results are identical)")
	lanes := fs.Int("lanes", 1, "bit-parallel simulation lanes per worker, 1..64 (compiled kernel; results are identical)")
	collapse := fs.Bool("collapse", false, "static fault-analysis pre-pass: prune statically-provable experiments and simulate one representative per equivalence class (results are identical)")
	tol := fs.Float64("tol", 0.35, "estimate-vs-measured tolerance")
	vcd := fs.String("vcd", "", "record golden + first-undetected-fault waveforms to <prefix>_{golden,faulty}.vcd")
	out := fs.String("out", "", "also write the canonical campaign report (the distributed byte-identity surface) to this file")
	checkpoint := fs.String("checkpoint", "", "campaign checkpoint file (enables periodic checkpointing)")
	checkpointEvery := fs.Int("checkpoint-every", 16, "completed experiments between checkpoint writes")
	resume := fs.Bool("resume", false, "resume from -checkpoint; the merged report is byte-identical to an uninterrupted run")
	cycleBudget := fs.Int("exp-cycle-budget", 0, "max simulated cycles per experiment (0 = unlimited; exceeding aborts the experiment)")
	expTimeout := fs.Duration("exp-timeout", 0, "max wall-clock per experiment (0 = unlimited; nondeterministic last-resort hang guard)")
	retries := fs.Int("retries", 0, "retry a failing experiment up to N more times before quarantining it")
	requireCoverage := fs.Bool("require-coverage", true, "exit 4 when campaign coverage is incomplete")
	journalPath := fs.String("journal", "", "write the JSONL campaign journal (lifecycle events) to this file")
	progressEvery := fs.Duration("progress", 0, "print periodic campaign progress to stderr at this interval (0 = off)")
	statusAddr := fs.String("status", "", "serve expvar + pprof + /progress on this address (a bare \":port\" binds 127.0.0.1)")
	tracePath := fs.String("trace", "", "write the JSONL span journal (campaign/phase/exp/batch spans) to this file; analyze with cmd/tracer")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0 // asking for the manual is not a usage error
		}
		return 2
	}

	usageErr := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "injector: "+format+"\n", args...)
		fs.Usage()
		return 2
	}
	switch {
	case *workers < 0:
		return usageErr("-workers must be >= 0 (0 = serial), got %d", *workers)
	case *warmstart < 0:
		return usageErr("-warmstart must be >= 0 (0 = cold start), got %d", *warmstart)
	case *lanes < 1 || *lanes > 64:
		return usageErr("-lanes must be in 1..64, got %d", *lanes)
	case *cycleBudget < 0:
		return usageErr("-exp-cycle-budget must be >= 0, got %d", *cycleBudget)
	case *expTimeout < 0:
		return usageErr("-exp-timeout must be >= 0, got %v", *expTimeout)
	case *retries < 0:
		return usageErr("-retries must be >= 0, got %d", *retries)
	case *checkpointEvery < 1:
		return usageErr("-checkpoint-every must be >= 1, got %d", *checkpointEvery)
	case *resume && *checkpoint == "":
		return usageErr("-resume requires -checkpoint")
	case *transient < 0 || *permanent < 0 || *wide < 0:
		return usageErr("experiment counts must be >= 0")
	case *progressEvery < 0:
		return usageErr("-progress must be >= 0, got %v", *progressEvery)
	}

	// Telemetry hub: created when any observability flag is on. It is
	// out-of-band by construction — journal to its file, progress to
	// stderr, status over HTTP — so the stdout report bytes never
	// depend on it.
	var tel *telemetry.Campaign
	if *journalPath != "" || *progressEvery > 0 || *statusAddr != "" || *tracePath != "" {
		var journal *telemetry.Journal
		if *journalPath != "" {
			var err error
			journal, err = telemetry.OpenJournal(*journalPath, telemetry.SystemClock)
			if err != nil {
				lg.Print(err)
				return 1
			}
		}
		tel = telemetry.NewCampaign(journal, telemetry.SystemClock)
		if *tracePath != "" {
			spans, err := telemetry.OpenJournal(*tracePath, telemetry.SystemClock)
			if err != nil {
				lg.Print(err)
				return 1
			}
			// The trace id is a pure function of the campaign spec, so
			// re-running the same campaign yields the same trace id and
			// journals from repeated runs can be told apart by file, not
			// by accident of process identity.
			tel.Tracer = telemetry.NewTracer(spans, "injector", telemetry.TraceID(
				"injector", *design, strconv.Itoa(*addrWidth), strconv.Itoa(*words),
				strconv.Itoa(*transient), strconv.Itoa(*permanent), strconv.Itoa(*wide),
				strconv.FormatUint(*seed, 10)))
			root := tel.StartSpan("campaign")
			tel.SetTraceRoot(root)
			defer func() {
				tel.PhaseDone()
				root.End()
				if err := spans.Close(); err != nil {
					lg.Printf("trace: %v", err)
				}
			}()
		}
		if *statusAddr != "" {
			srv, err := telemetry.ServeStatus(*statusAddr, tel)
			if err != nil {
				lg.Print(err)
				return 1
			}
			lg.Printf("status endpoint: http://%s/progress (expvar at /debug/vars, pprof at /debug/pprof/)", srv.Addr)
			defer srv.Close()
		}
		if *progressEvery > 0 {
			rep := telemetry.StartReporter(stderr, tel, *progressEvery)
			defer rep.Stop()
		}
		defer func() {
			if err := journal.Close(); err != nil {
				lg.Printf("journal: %v", err)
			}
		}()
	}
	fatal := func(err error) int {
		lg.Print(err)
		return 1
	}

	var cfg memsys.Config
	switch *design {
	case "v1":
		cfg = memsys.V1Config()
	case "v2":
		cfg = memsys.V2Config()
	default:
		return usageErr("unknown design %q", *design)
	}
	cfg.AddrWidth = *addrWidth
	tel.Phase("build")
	d, err := memsys.Build(cfg)
	if err != nil {
		return fatal(err)
	}
	tel.Phase("zone-extraction")
	a, err := d.Analyze()
	if err != nil {
		return fatal(err)
	}
	target := d.InjectionTargetSeeded(a, d.SeedFaults())
	target.Workers = *workers
	target.SnapshotEvery = *warmstart
	target.Lanes = *lanes
	target.Collapse = *collapse
	target.Supervision = inject.Supervision{
		CycleBudget:     *cycleBudget,
		WallBudget:      *expTimeout,
		Clock:           time.Now,
		Retries:         *retries,
		Quarantine:      true,
		Checkpoint:      *checkpoint,
		CheckpointEvery: *checkpointEvery,
		Resume:          *resume,
	}
	target.Telemetry = tel
	tr := d.ValidationWorkload(*words, *seed)
	fmt.Fprintf(stdout, "%s: workload %d cycles, %d zones\n", cfg.Name, tr.Cycles(), len(a.Zones))

	tel.Phase("golden-run")
	g, err := target.RunGolden(tr)
	if err != nil {
		return fatal(err)
	}
	if ok, inactive := g.CompletenessOK(); !ok {
		fmt.Fprintf(stdout, "WARNING: workload leaves %d zones untriggered\n", len(inactive))
	} else {
		fmt.Fprintln(stdout, "workload completeness: PASS (every zone triggered)")
	}

	tel.Phase("plan")
	pcfg := inject.PlanConfig{TransientPerZone: *transient, PermanentPerZone: *permanent, Seed: *seed}
	plan := inject.BuildPlan(a, g, pcfg)
	plan = append(plan, inject.WidePlan(a, g, *wide, *seed+1)...)
	effective := *workers
	if effective == 0 {
		effective = 1
	}
	if *resume {
		lg.Printf("resuming from checkpoint %s (plan hash %016x)", *checkpoint, inject.PlanHash(plan))
	}
	fmt.Fprintf(stdout, "running %d injection experiments on %d worker(s)...\n", len(plan), effective)
	tel.Phase("campaign")
	rep, err := target.Run(g, plan)
	if err != nil {
		return fatal(err)
	}
	tel.Phase("analysis")

	wks := d.Worksheet(a, fit.Default())
	rep.WriteText(stdout, a, wks, *tol)
	if *out != "" {
		var buf bytes.Buffer
		rep.WriteText(&buf, a, wks, *tol)
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			return fatal(err)
		}
	}

	if *vcd != "" {
		if err := recordVCDs(stdout, *vcd, target, g, rep); err != nil {
			return fatal(err)
		}
	}

	if len(rep.Quarantined) > 0 {
		lg.Printf("campaign degraded: %d experiment(s) quarantined", len(rep.Quarantined))
		return 3
	}
	if *requireCoverage && !rep.Coverage.Complete() {
		cov := rep.Coverage
		lg.Printf("campaign coverage incomplete (SENS %s OBSE %s DIAG %s); failing the gate",
			report.Pct(cov.SensFrac()), report.Pct(cov.ObseFrac()), report.Pct(cov.DiagFrac()))
		return 4
	}
	return 0
}

// runWorker joins a distributed campaign: build the same campaign
// locally (the coordinator validates the plan fingerprint at hello),
// then run leased ranges until fin. The protocol runs over TCP
// (-connect) or this process's stdin/stdout (-stdio); in -stdio mode
// every human-readable line goes to stderr.
func runWorker(args []string, stderr io.Writer) int {
	lg := log.New(stderr, "injector worker: ", 0)
	fs := flag.NewFlagSet("injector worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: injector worker (-connect host:port | -stdio) [flags]")
		fmt.Fprintln(stderr, "\nJoin a cmd/campaignd distributed campaign as a worker. The campaign spec")
		fmt.Fprintln(stderr, "flags (-design, -addr, -words, -transient, -permanent, -wide, -seed) must")
		fmt.Fprintln(stderr, "match the coordinator's; the plan fingerprint is validated at connect.")
		fmt.Fprintln(stderr, "\nExit codes:")
		fmt.Fprintln(stderr, "  0  campaign complete (coordinator sent fin)")
		fmt.Fprintln(stderr, "  1  fatal error (build failure, connection loss, coordinator rejection)")
		fmt.Fprintln(stderr, "  2  flag/usage error")
		fmt.Fprintln(stderr, "\nFlags:")
		fs.PrintDefaults()
	}
	connect := fs.String("connect", "", "coordinator address (host:port)")
	stdio := fs.Bool("stdio", false, "speak the protocol on stdin/stdout (subprocess worker)")
	name := fs.String("name", "", "worker name in coordinator logs (default pid<n>)")
	heartbeat := fs.Duration("heartbeat", 2*time.Second, "lease keep-alive cadence (must be well under the coordinator's -lease-ttl)")
	design := fs.String("design", "v2", "implementation: v1 or v2")
	addrWidth := fs.Int("addr", 6, "address width")
	words := fs.Int("words", 8, "March slice size of the workload")
	transient := fs.Int("transient", 6, "transient experiments per zone")
	permanent := fs.Int("permanent", 3, "permanent experiments per zone")
	wide := fs.Int("wide", 12, "wide/global fault experiments")
	seed := fs.Uint64("seed", 1, "campaign seed")
	workers := fs.Int("workers", runtime.NumCPU(), "parallel workers inside one leased range (results are identical)")
	warmstart := fs.Int("warmstart", 0, "golden snapshot cadence in cycles (0 = cold start; results are identical)")
	lanes := fs.Int("lanes", 1, "bit-parallel simulation lanes per worker, 1..64 (results are identical)")
	collapse := fs.Bool("collapse", false, "static fault-analysis pre-pass (results are identical)")
	cycleBudget := fs.Int("exp-cycle-budget", 0, "max simulated cycles per experiment (0 = unlimited)")
	expTimeout := fs.Duration("exp-timeout", 0, "max wall-clock per experiment (0 = unlimited)")
	retries := fs.Int("retries", 0, "retry a failing experiment up to N more times before quarantining it")
	tracePath := fs.String("trace", "", "write the JSONL span journal to this file; lease spans parent under the coordinator's trace (analyze with cmd/tracer)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	usageErr := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "injector worker: "+format+"\n", args...)
		fs.Usage()
		return 2
	}
	switch {
	case (*connect == "") == !*stdio:
		return usageErr("exactly one of -connect and -stdio is required")
	case *workers < 0:
		return usageErr("-workers must be >= 0, got %d", *workers)
	case *warmstart < 0:
		return usageErr("-warmstart must be >= 0, got %d", *warmstart)
	case *lanes < 1 || *lanes > 64:
		return usageErr("-lanes must be in 1..64, got %d", *lanes)
	case *heartbeat <= 0:
		return usageErr("-heartbeat must be > 0, got %v", *heartbeat)
	case *cycleBudget < 0 || *expTimeout < 0 || *retries < 0:
		return usageErr("supervision budgets must be >= 0")
	case *transient < 0 || *permanent < 0 || *wide < 0:
		return usageErr("experiment counts must be >= 0")
	case *design != "v1" && *design != "v2":
		return usageErr("unknown design %q", *design)
	}
	if *name == "" {
		*name = fmt.Sprintf("pid%d", os.Getpid())
	}

	spec := dist.Spec{
		Design:    *design,
		AddrWidth: *addrWidth,
		Words:     *words,
		Transient: *transient,
		Permanent: *permanent,
		Wide:      *wide,
		Seed:      *seed,
		Warmstart: *warmstart,
	}
	c, err := spec.Build()
	if err != nil {
		lg.Print(err)
		return 1
	}
	c.Target.Lanes = *lanes
	c.Target.Collapse = *collapse
	c.Target.Supervision = inject.Supervision{
		CycleBudget: *cycleBudget,
		WallBudget:  *expTimeout,
		Clock:       time.Now,
		Retries:     *retries,
		Quarantine:  true,
	}

	// Tracing: one hub shared between the protocol loop and the
	// injection target, so each leased range's experiment and batch
	// spans nest under the worker-lease span, which in turn parents —
	// across the wire — under the coordinator's lease span. The trace
	// id is seeded from the spec (every process in one campaign derives
	// the same id) and confirmed from the first lease message.
	var tel *telemetry.Campaign
	if *tracePath != "" {
		spans, err := telemetry.OpenJournal(*tracePath, telemetry.SystemClock)
		if err != nil {
			lg.Print(err)
			return 1
		}
		tel = telemetry.NewCampaign(nil, telemetry.SystemClock)
		tel.Tracer = telemetry.NewTracer(spans, *name, spec.TraceID())
		root := tel.StartSpan("worker")
		tel.SetTraceRoot(root)
		defer func() {
			tel.PhaseDone()
			root.End()
			if err := spans.Close(); err != nil {
				lg.Printf("trace: %v", err)
			}
		}()
		c.Target.Telemetry = tel
	}

	var rw io.ReadWriteCloser
	if *stdio {
		rw = stdioConn{os.Stdin, os.Stdout}
	} else {
		conn, err := net.Dial("tcp", *connect)
		if err != nil {
			lg.Print(err)
			return 1
		}
		rw = conn
	}
	lg.Printf("joined campaign as %q (%d experiments in plan)", *name, len(c.Plan))
	err = dist.RunWorker(rw, dist.WorkerConfig{
		Name:      *name,
		Target:    c.Target,
		Golden:    c.Golden,
		Plan:      c.Plan,
		Workers:   *workers,
		Heartbeat: *heartbeat,
		Telemetry: tel,
		Logf:      lg.Printf,
	})
	if err != nil {
		lg.Print(err)
		return 1
	}
	return 0
}

// stdioConn adapts the process's stdin/stdout pipes to the protocol's
// stream interface for subprocess workers.
type stdioConn struct {
	io.Reader
	io.Writer
}

func (stdioConn) Close() error { return nil }

// recordVCDs dumps the golden waveform plus the first dangerous-
// undetected experiment's faulty waveform for debugging.
func recordVCDs(stdout io.Writer, prefix string, target *inject.Target, g *inject.Golden, rep *inject.Report) error {
	write := func(path string, inj *inject.Injection) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := target.RecordVCD(g, inj, f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
		return nil
	}
	if err := write(prefix+"_golden.vcd", nil); err != nil {
		return err
	}
	for i := range rep.Results {
		if rep.Results[i].Outcome == inject.DangerousUndetected {
			return write(prefix+"_faulty.vcd", &rep.Results[i].Injection)
		}
	}
	if len(rep.Results) > 0 {
		return write(prefix+"_faulty.vcd", &rep.Results[0].Injection)
	}
	return nil
}
