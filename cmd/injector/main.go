// Command injector runs the Fig. 4 fault-injection validation campaign
// against a memory sub-system implementation: golden run, operational-
// profile-guided fault list, per-zone measured S/DDF, coverage items,
// effect-table consistency and the cross-check against the worksheet.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro/internal/fit"
	"repro/internal/inject"
	"repro/internal/memsys"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("injector: ")
	design := flag.String("design", "v2", "implementation: v1 or v2")
	addrWidth := flag.Int("addr", 6, "address width")
	words := flag.Int("words", 8, "March slice size of the workload")
	transient := flag.Int("transient", 2, "transient experiments per zone")
	permanent := flag.Int("permanent", 2, "permanent experiments per zone")
	wide := flag.Int("wide", 12, "wide/global fault experiments")
	seed := flag.Uint64("seed", 1, "campaign seed")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel campaign workers (1 = serial; results are identical)")
	tol := flag.Float64("tol", 0.35, "estimate-vs-measured tolerance")
	vcd := flag.String("vcd", "", "record golden + first-undetected-fault waveforms to <prefix>_{golden,faulty}.vcd")
	flag.Parse()

	var cfg memsys.Config
	switch *design {
	case "v1":
		cfg = memsys.V1Config()
	case "v2":
		cfg = memsys.V2Config()
	default:
		log.Fatalf("unknown design %q", *design)
	}
	cfg.AddrWidth = *addrWidth
	d, err := memsys.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	a, err := d.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	target := d.InjectionTargetSeeded(a, d.SeedFaults())
	target.Workers = *workers
	tr := d.ValidationWorkload(*words, *seed)
	fmt.Printf("%s: workload %d cycles, %d zones\n", cfg.Name, tr.Cycles(), len(a.Zones))

	g, err := target.RunGolden(tr)
	if err != nil {
		log.Fatal(err)
	}
	if ok, inactive := g.CompletenessOK(); !ok {
		fmt.Printf("WARNING: workload leaves %d zones untriggered\n", len(inactive))
	} else {
		fmt.Println("workload completeness: PASS (every zone triggered)")
	}

	pcfg := inject.PlanConfig{TransientPerZone: *transient, PermanentPerZone: *permanent, Seed: *seed}
	plan := inject.BuildPlan(a, g, pcfg)
	plan = append(plan, inject.WidePlan(a, g, *wide, *seed+1)...)
	effective := *workers
	if effective == 0 {
		effective = 1
	} else if effective < 0 {
		effective = runtime.NumCPU()
	}
	fmt.Printf("running %d injection experiments on %d worker(s)...\n", len(plan), effective)
	rep, err := target.Run(g, plan)
	if err != nil {
		log.Fatal(err)
	}

	cov := rep.Coverage
	fmt.Printf("coverage: SENS %s  OBSE %s  DIAG %s  (%d mismatches)\n",
		report.Pct(cov.SensFrac()), report.Pct(cov.ObseFrac()), report.Pct(cov.DiagFrac()), cov.Mismatches)

	t := report.NewTable("\nPer-zone measured outcomes",
		"zone", "exp", "silent", "det-safe", "dang-det", "dang-undet", "S(meas)", "DDF(meas)")
	for _, zm := range rep.ZoneMeasures(a) {
		t.AddRow(zm.Name, zm.Experiments, zm.Silent, zm.DetSafe, zm.DangerDet, zm.DangerUndet,
			zm.SMeasured(), zm.DDFMeasured())
	}
	fmt.Println(t.Render())

	w := d.Worksheet(a, fit.Default())
	rows := rep.ValidateWorksheet(a, w, *tol)
	bad := 0
	for _, r := range rows {
		if !r.Within {
			bad++
			fmt.Printf("OVER-CLAIM: %-28s estS=%.2f measS=%.2f estDDF=%.2f measDDF=%.2f\n",
				r.Name, r.EstS, r.MeasS, r.EstDDF, r.MeasDDF)
		}
	}
	fmt.Printf("worksheet cross-check: %s of %d zones within tolerance (%d over-claims)\n",
		report.Pct(inject.PassFraction(rows)), len(rows), bad)

	if *vcd != "" {
		recordVCDs(*vcd, target, g, rep)
	}

	inconsistent := 0
	for _, ec := range rep.CheckEffects(a) {
		if !ec.Consistent {
			inconsistent++
			fmt.Printf("NEW EFFECTS for zone %s: observation points %v not in main/secondary prediction\n",
				ec.Name, ec.Unpredicted)
		}
	}
	if inconsistent == 0 {
		fmt.Println("effect tables consistent with main/secondary analysis: PASS")
	}
}

// recordVCDs dumps the golden waveform plus the first dangerous-
// undetected experiment's faulty waveform for debugging.
func recordVCDs(prefix string, target *inject.Target, g *inject.Golden, rep *inject.Report) {
	write := func(path string, inj *inject.Injection) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := target.RecordVCD(g, inj, f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
	write(prefix+"_golden.vcd", nil)
	for i := range rep.Results {
		if rep.Results[i].Outcome == inject.DangerousUndetected {
			write(prefix+"_faulty.vcd", &rep.Results[i].Injection)
			return
		}
	}
	if len(rep.Results) > 0 {
		write(prefix+"_faulty.vcd", &rep.Results[0].Injection)
	}
}
