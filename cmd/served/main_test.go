package main

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestUsageErrors: bad flags exit 2 without binding anything.
func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-queue", "0"},
		{"-jobs", "0"},
		{"-lanes", "65"},
		{"-no-such-flag"},
	} {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf, nil); code != 2 {
			t.Errorf("run(%v) = %d, want 2\n%s", args, code, errBuf.String())
		}
	}
}

// TestBootSubmitAndDrain boots the daemon on an ephemeral port, submits
// a job over HTTP, then SIGTERMs the process and expects a clean drain:
// the accepted job finishes, the process logs the drain and exits 0.
func TestBootSubmitAndDrain(t *testing.T) {
	var errBuf syncBuffer
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0"}, io.Discard, &errBuf, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Post("http://"+addr+"/jobs", "application/json",
		strings.NewReader(`{"design":"v2","addr_width":6,"words":4}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d\n%s", resp.StatusCode, body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d, want 0\n%s", code, errBuf.String())
		}
	case <-time.After(2 * time.Minute):
		t.Fatalf("daemon never drained\n%s", errBuf.String())
	}
	if log := errBuf.String(); !strings.Contains(log, "drained cleanly") {
		t.Fatalf("log missing clean-drain line:\n%s", log)
	}
}

// syncBuffer guards the log buffer: the daemon goroutine writes while
// the test reads on timeout paths.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
