// Command served is the campaign-as-a-service daemon: it wraps the
// paper's whole assessment flow (netlist → zones → DRC → worksheet →
// injection → certify) behind a long-running HTTP/JSON API.
//
// Submissions (design spec + plan + grading knobs) enter a bounded
// FIFO queue feeding a worker pool over the supervised core.Run
// engine; a full queue answers 429, a duplicate submission is served
// byte-identically from the content-addressed result cache, and every
// job exposes its own live /progress snapshot, report and JSONL span
// journal. SIGTERM drains gracefully: no new submissions, queued and
// running jobs finish, then the process exits 0.
//
// Quick start:
//
//	served -listen :8080 &
//	curl -d '{"design":"v2","validate":true}' http://127.0.0.1:8080/jobs
//	curl http://127.0.0.1:8080/jobs/j1/progress   # poll
//	curl http://127.0.0.1:8080/jobs/j1/report     # byte-identical to cmd/certify
//
// Security posture: like the telemetry status server, served binds
// loopback unless -expose is given — the API is unauthenticated, so
// exposing it beyond loopback is an explicit operator decision.
//
// Exit codes: 0 clean shutdown after drain; 1 fatal error (bind
// failure, drain timeout); 2 flag/usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable daemon body. ready, when non-nil, receives the
// bound address once the listener is up.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	lg := log.New(stderr, "served: ", 0)
	fs := flag.NewFlagSet("served", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: served [flags]")
		fmt.Fprintln(stderr, "\nMulti-tenant assessment daemon: POST /jobs, poll /jobs/{id}/progress,")
		fmt.Fprintln(stderr, "fetch /jobs/{id}/report (byte-identical to cmd/certify).")
		fmt.Fprintln(stderr, "\nExit codes:")
		fmt.Fprintln(stderr, "  0  clean shutdown after graceful drain")
		fmt.Fprintln(stderr, "  1  fatal error (bind failure, serve failure, drain timeout)")
		fmt.Fprintln(stderr, "  2  flag/usage error")
		fmt.Fprintln(stderr, "\nFlags:")
		fs.PrintDefaults()
	}
	listen := fs.String("listen", "127.0.0.1:8080", "listen address (empty and wildcard hosts bind 127.0.0.1 unless -expose)")
	expose := fs.Bool("expose", false, "bind the address exactly as given, wildcard hosts included (the API is unauthenticated)")
	queue := fs.Int("queue", 64, "bounded FIFO submission queue depth (overflow answers 429)")
	jobs := fs.Int("jobs", 1, "job worker pool size (concurrent assessments)")
	engineWorkers := fs.Int("engine-workers", runtime.NumCPU(), "injection-campaign goroutines per job (byte-neutral)")
	lanes := fs.Int("lanes", 1, "word-parallel kernel lanes per job, 1..64 (byte-neutral)")
	collapse := fs.Bool("collapse", false, "static fault-analysis pre-pass per job (byte-neutral)")
	cacheCap := fs.Int("cache", 256, "content-addressed result cache entries (negative disables)")
	jobsCap := fs.Int("jobs-cap", 1024, "job table retention: oldest finished jobs evicted past this many (negative disables)")
	drainTimeout := fs.Duration("drain-timeout", 0, "max wait for running jobs on SIGTERM (0 = wait forever)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	usageErr := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "served: "+format+"\n", args...)
		fs.Usage()
		return 2
	}
	switch {
	case *queue < 1:
		return usageErr("-queue must be >= 1, got %d", *queue)
	case *jobs < 1:
		return usageErr("-jobs must be >= 1, got %d", *jobs)
	case *lanes < 1 || *lanes > 64:
		return usageErr("-lanes must be in 1..64, got %d", *lanes)
	}

	addr := *listen
	if !*expose {
		addr = telemetry.DefaultLoopback(addr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		lg.Printf("listen: %v", err)
		return 1
	}

	srv := serve.New(serve.Config{
		QueueDepth:     *queue,
		Workers:        *jobs,
		EngineWorkers:  *engineWorkers,
		EngineLanes:    *lanes,
		EngineCollapse: *collapse,
		CacheCap:       *cacheCap,
		JobsCap:        *jobsCap,
		Clock:          telemetry.SystemClock,
	})
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	lg.Printf("listening on %s (queue %d, %d job worker(s), %d engine worker(s))",
		ln.Addr(), *queue, *jobs, *engineWorkers)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case sg := <-sig:
		lg.Printf("signal %v: draining (no new submissions; queued and running jobs finish)", sg)
		// Drain with the listener still up: new submissions get 503
		// (ErrDraining) but clients keep polling and can fetch reports
		// for jobs that finish during the drain. Only then stop the
		// HTTP server — gracefully, so a client mid-poll during a
		// routine deploy gets a complete response, not a connection
		// reset; Close only fires if stragglers outlive the deadline.
		drainErr := srv.Drain(*drainTimeout)
		sdCtx, sdCancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := hs.Shutdown(sdCtx); err != nil {
			hs.Close() //nolint:errcheck — deadline passed; sever stragglers
		}
		sdCancel()
		if drainErr != nil {
			lg.Printf("drain: %v", drainErr)
			return 1
		}
		lg.Printf("drained cleanly")
		return 0
	case err := <-errc:
		lg.Printf("serve: %v", err)
		return 1
	}
}
