// Command statfault dumps the static fault-analysis report for a named
// design: the campaign-exact equivalence classes of stuck-at atoms,
// the classic dominance edges, the nets proven constant (whose matching
// stuck-ats are untestable), the nets from which no monitor is
// reachable (whose faults are unobservable) and the forward-cone sizes
// of the class representatives. This is the audit artifact behind the
// -collapse campaign pre-pass: everything the pre-pass prunes or folds
// is enumerable here, without simulating a cycle.
//
// Output is an aligned text summary or stable JSON (-json); both are
// byte-identical across runs of the same design. Exit codes: 0 success,
// 2 usage or build errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/frcpu"
	"repro/internal/memsys"
	"repro/internal/netlist"
	"repro/internal/randckt"
	"repro/internal/statfault"
	"repro/internal/zones"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("statfault", flag.ContinueOnError)
	fs.SetOutput(stderr)
	design := fs.String("design", "v2", "design: v1, v2, cpu, cpu-lockstep or rand")
	addrWidth := fs.Int("addr", 8, "address width for the memory sub-system designs")
	seed := fs.Uint64("seed", 1, "seed for -design rand")
	jsonOut := fs.Bool("json", false, "emit stable JSON instead of text")
	maxList := fs.Int("max-list", 50, "cap on listed classes, dominance edges and untestable atoms")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *maxList < 0 {
		fmt.Fprintln(stderr, "statfault: -max-list must be >= 0")
		return 2
	}
	rep, err := buildReport(*design, *addrWidth, *seed, *maxList)
	if err != nil {
		fmt.Fprintf(stderr, "statfault: %v\n", err)
		return 2
	}
	if *jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "statfault: %v\n", err)
			return 2
		}
		stdout.Write(out)
		io.WriteString(stdout, "\n")
	} else {
		renderText(stdout, rep)
	}
	return 0
}

// classInfo is one non-singleton equivalence class in the report: the
// representative atom, every member, and the representative's forward
// cone-of-influence size (its scheduling weight).
type classInfo struct {
	Rep      string   `json:"rep"`
	Members  []string `json:"members"`
	ConeNets int      `json:"cone_nets"`
}

// reportData is the full audit report. Field order is the JSON order;
// all content is derived deterministically from the netlist, so the
// serialized report is byte-stable across runs.
type reportData struct {
	Design           string      `json:"design"`
	Nets             int         `json:"nets"`
	Gates            int         `json:"gates"`
	FFs              int         `json:"ffs"`
	Zones            int         `json:"zones"`
	Atoms            int         `json:"atoms"`
	Classes          int         `json:"classes"`
	CollapsedAtoms   int         `json:"collapsed_atoms"`
	ConstNets        int         `json:"const_nets"`
	UntestableAtoms  int         `json:"untestable_atoms"`
	UnobservableNets int         `json:"unobservable_nets"`
	DominanceEdges   int         `json:"dominance_edges"`
	ClassList        []classInfo `json:"class_list,omitempty"`
	Untestable       []string    `json:"untestable,omitempty"`
	Dominance        []string    `json:"dominance,omitempty"`
}

func buildReport(design string, addrWidth int, seed uint64, maxList int) (*reportData, error) {
	a, err := buildAnalysis(design, addrWidth, seed)
	if err != nil {
		return nil, err
	}
	sf, err := statfault.New(a)
	if err != nil {
		return nil, err
	}
	n := sf.Netlist()
	atomName := func(at statfault.Atom) string {
		id, v := at.Net()
		p := "0"
		if v {
			p = "1"
		}
		return n.NetName(id) + "/SA" + p
	}
	rep := &reportData{
		Design: design,
		Nets:   len(n.Nets),
		Gates:  len(n.Gates),
		FFs:    len(n.FFs),
		Zones:  len(a.Zones),
		Atoms:  2 * len(n.Nets),
	}
	classes := sf.Classes()
	rep.Classes = len(classes)
	for _, c := range classes {
		rep.CollapsedAtoms += len(c.Members) - 1
	}
	for i, c := range classes {
		if i >= maxList {
			break
		}
		ci := classInfo{Rep: atomName(c.Rep), ConeNets: sf.ConeNets(netOf(c.Rep))}
		for _, m := range c.Members {
			ci.Members = append(ci.Members, atomName(m))
		}
		rep.ClassList = append(rep.ClassList, ci)
	}
	for id := range n.Nets {
		net := netlist.NetID(id)
		if v, ok := sf.ConstNet(net); ok {
			rep.ConstNets++
			rep.UntestableAtoms++
			if len(rep.Untestable) < maxList {
				rep.Untestable = append(rep.Untestable, atomName(statfault.AtomOf(net, v)))
			}
		}
		if !sf.ReachesObs(net) {
			reachesZone := false
			for z := range a.Zones {
				if sf.ReachesZoneEffect(net, z) {
					reachesZone = true
					break
				}
			}
			if !reachesZone {
				rep.UnobservableNets++
			}
		}
	}
	dom := sf.Dominance()
	rep.DominanceEdges = len(dom)
	for i, e := range dom {
		if i >= maxList {
			break
		}
		rep.Dominance = append(rep.Dominance, atomName(e.Dominated)+" dom-by "+atomName(e.Dominator))
	}
	return rep, nil
}

func netOf(at statfault.Atom) netlist.NetID {
	id, _ := at.Net()
	return id
}

func renderText(w io.Writer, r *reportData) {
	fmt.Fprintf(w, "%s: %d nets, %d gates, %d FFs, %d zones\n", r.Design, r.Nets, r.Gates, r.FFs, r.Zones)
	fmt.Fprintf(w, "stuck-at atoms: %d; equivalence classes: %d (%d atoms fold onto a representative)\n",
		r.Atoms, r.Classes, r.CollapsedAtoms)
	fmt.Fprintf(w, "constant nets: %d (%d untestable stuck-at atoms)\n", r.ConstNets, r.UntestableAtoms)
	fmt.Fprintf(w, "monitor-unreachable nets: %d\n", r.UnobservableNets)
	fmt.Fprintf(w, "dominance edges: %d\n", r.DominanceEdges)
	for _, c := range r.ClassList {
		fmt.Fprintf(w, "  class %-24s cone %-5d members %v\n", c.Rep, c.ConeNets, c.Members)
	}
	for _, u := range r.Untestable {
		fmt.Fprintf(w, "  untestable %s\n", u)
	}
	for _, d := range r.Dominance {
		fmt.Fprintf(w, "  %s\n", d)
	}
}

// buildAnalysis assembles the zone analysis for a named design, the
// same design vocabulary as cmd/drc (minus the worksheet, which static
// fault analysis never consults).
func buildAnalysis(design string, addrWidth int, seed uint64) (*zones.Analysis, error) {
	switch design {
	case "v1", "v2":
		cfg := memsys.V1Config()
		if design == "v2" {
			cfg = memsys.V2Config()
		}
		cfg.AddrWidth = addrWidth
		d, err := memsys.Build(cfg)
		if err != nil {
			return nil, err
		}
		return d.Analyze()
	case "cpu", "cpu-lockstep":
		cfg := frcpu.PlainConfig()
		if design == "cpu-lockstep" {
			cfg = frcpu.LockstepConfig()
		}
		d, err := frcpu.Build(cfg)
		if err != nil {
			return nil, err
		}
		return d.Analyze()
	case "rand":
		return zones.Extract(randckt.Generate(randckt.Default(), seed), zones.DefaultConfig())
	default:
		return nil, fmt.Errorf("unknown design %q (want v1, v2, cpu, cpu-lockstep or rand)", design)
	}
}
