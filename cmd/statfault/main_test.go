package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestJSONByteStable: the -json report must serialize to the same
// bytes on every run of the same design — the acceptance contract of
// the audit artifact.
func TestJSONByteStable(t *testing.T) {
	for _, design := range []string{"rand", "v1"} {
		var a, b bytes.Buffer
		if code := run([]string{"-design", design, "-addr", "6", "-json"}, &a, &b); code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", design, code, b.String())
		}
		var c, d bytes.Buffer
		if code := run([]string{"-design", design, "-addr", "6", "-json"}, &c, &d); code != 0 {
			t.Fatalf("%s rerun: exit %d, stderr: %s", design, code, d.String())
		}
		if !bytes.Equal(a.Bytes(), c.Bytes()) {
			t.Fatalf("%s: -json output is not byte-stable across runs", design)
		}
		if a.Len() == 0 || !strings.Contains(a.String(), `"classes"`) {
			t.Fatalf("%s: implausible JSON report: %s", design, a.String())
		}
	}
}

// TestTextReportNonVacuous: the text mode must report a nonzero
// collapse on the v1 case study (buffered datapaths guarantee folds).
func TestTextReportNonVacuous(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-design", "v1", "-addr", "6"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "equivalence classes:") || !strings.Contains(s, "dominance edges:") {
		t.Fatalf("report missing sections:\n%s", s)
	}
}

// TestUsageErrors: unknown designs and bad flags exit 2.
func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-design", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown design: exit %d, want 2", code)
	}
	if code := run([]string{"-max-list", "-1"}, &out, &errb); code != 2 {
		t.Fatalf("negative -max-list: exit %d, want 2", code)
	}
}
