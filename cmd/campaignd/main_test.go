package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExitCodes pins the usage-error contract; the success, kill and
// quarantine paths run as subprocess topologies in the dist-smoke CI
// job and in internal/dist's in-process matrix.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"unknown flag", []string{"-frobnicate"}, 2},
		{"unknown design", []string{"-design", "nope"}, 2},
		{"bad range size", []string{"-range", "0"}, 2},
		{"bad lease ttl", []string{"-lease-ttl", "0s"}, 2},
		{"bad max attempts", []string{"-max-attempts", "0"}, 2},
		{"spawn without worker-bin", []string{"-spawn", "2"}, 2},
		{"no execution path", []string{"-local=false"}, 2},
		{"tiny local-only campaign", []string{"-design", "v1", "-addr", "6", "-words", "2", "-transient", "1", "-permanent", "1", "-wide", "2", "-require-coverage=false"}, 0},
	}
	for _, tc := range cases {
		var out, errb bytes.Buffer
		if got := run(tc.args, &out, &errb); got != tc.want {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, got, tc.want, errb.String())
		}
	}
}

// TestHelpDocumentsExitCodes: --help exits 0 and documents the full
// exit-code contract.
func TestHelpDocumentsExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"--help"}, &out, &errb); got != 0 {
		t.Fatalf("--help: exit %d, want 0", got)
	}
	usage := errb.String()
	for _, want := range []string{
		"Exit codes:",
		"0  success",
		"1  fatal error",
		"2  flag/usage error",
		"3  plan rows quarantined",
		"4  campaign coverage incomplete",
	} {
		if !strings.Contains(usage, want) {
			t.Errorf("usage text missing %q:\n%s", want, usage)
		}
	}
}
