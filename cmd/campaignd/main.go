// Command campaignd coordinates a distributed fault-injection
// campaign: it splits the plan into disjoint index ranges, leases them
// to "injector worker" processes over a line-JSON protocol (TCP via
// -listen, or subprocess pipes via -spawn), revokes and re-issues
// leases when workers die or go silent past the TTL, and merges the
// returned checkpoint records into a report that is byte-identical to
// a single-process serial run — at any cluster size, any kill point,
// any lease schedule.
//
// Robustness is the product: heartbeat-refreshed lease TTLs, capped
// exponential backoff on re-issue, at-least-once execution made safe
// by byte-verifying duplicate range results, quarantine of ranges that
// exhaust their attempt budget (every row conservatively counted
// dangerous-undetected, exit 3), and graceful degradation to local
// in-process execution (-local) when no worker is alive.
//
// The campaign spec flags (-design, -addr, -words, -transient,
// -permanent, -wide, -seed) must match the workers'; a worker with a
// different plan fingerprint is rejected at connect.
//
// Exit codes are the CI contract, documented in --help: 0 success;
// 1 fatal error; 2 flag/usage error; 3 rows quarantined (campaign
// degraded); 4 campaign coverage incomplete.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/inject"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	lg := log.New(stderr, "campaignd: ", 0)
	fs := flag.NewFlagSet("campaignd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: campaignd [flags]")
		fmt.Fprintln(stderr, "\nDistributed campaign coordinator: leases plan ranges to injector workers,")
		fmt.Fprintln(stderr, "survives worker loss, and merges a report byte-identical to a serial run.")
		fmt.Fprintln(stderr, "\nExit codes:")
		fmt.Fprintln(stderr, "  0  success")
		fmt.Fprintln(stderr, "  1  fatal error (build failure, campaign failure, I/O failure)")
		fmt.Fprintln(stderr, "  2  flag/usage error")
		fmt.Fprintln(stderr, "  3  plan rows quarantined (campaign degraded)")
		fmt.Fprintln(stderr, "  4  campaign coverage incomplete (with -require-coverage)")
		fmt.Fprintln(stderr, "\nFlags:")
		fs.PrintDefaults()
	}
	design := fs.String("design", "v2", "implementation: v1 or v2")
	addrWidth := fs.Int("addr", 6, "address width")
	words := fs.Int("words", 8, "March slice size of the workload")
	transient := fs.Int("transient", 6, "transient experiments per zone")
	permanent := fs.Int("permanent", 3, "permanent experiments per zone")
	wide := fs.Int("wide", 12, "wide/global fault experiments")
	seed := fs.Uint64("seed", 1, "campaign seed")
	listen := fs.String("listen", "", "accept TCP workers on this address (a bare \":port\" binds 127.0.0.1)")
	spawn := fs.Int("spawn", 0, "spawn N subprocess workers over stdio pipes")
	workerBin := fs.String("worker-bin", "", "injector binary for -spawn (runs \"<bin> worker -stdio\" with matching spec flags)")
	rangeSize := fs.Int("range", 32, "plan rows per lease")
	leaseTTL := fs.Duration("lease-ttl", 15*time.Second, "lease lifetime without a heartbeat before revocation")
	maxAttempts := fs.Int("max-attempts", 5, "lease attempts per range before the range is quarantined")
	backoffBase := fs.Duration("backoff", 250*time.Millisecond, "re-issue backoff after a failed lease attempt (doubles per attempt)")
	backoffCap := fs.Duration("backoff-cap", 10*time.Second, "re-issue backoff ceiling")
	tick := fs.Duration("tick", 200*time.Millisecond, "scheduler cadence (bounds dead-worker detection latency)")
	local := fs.Bool("local", true, "run ranges in-process while no live worker exists (graceful degradation)")
	workers := fs.Int("workers", runtime.NumCPU(), "parallel workers for -local in-process execution")
	warmstart := fs.Int("warmstart", 0, "golden snapshot cadence for local execution (0 = cold start; results are identical)")
	lanes := fs.Int("lanes", 1, "bit-parallel lanes for local execution, 1..64 (results are identical)")
	collapse := fs.Bool("collapse", false, "static fault-analysis pre-pass for local execution (results are identical)")
	tol := fs.Float64("tol", 0.35, "estimate-vs-measured tolerance")
	out := fs.String("out", "", "also write the canonical campaign report (the distributed byte-identity surface) to this file")
	requireCoverage := fs.Bool("require-coverage", true, "exit 4 when campaign coverage is incomplete")
	journalPath := fs.String("journal", "", "write the JSONL campaign journal to this file")
	progressEvery := fs.Duration("progress", 0, "print periodic campaign progress to stderr at this interval (0 = off)")
	statusAddr := fs.String("status", "", "serve expvar + pprof + /progress on this address")
	tracePath := fs.String("trace", "", "write the coordinator's JSONL span journal to this file; spawned workers write <file>.spawnN (analyze with cmd/tracer)")
	adaptive := fs.Bool("adaptive", false, "latency-driven lease sizing: split pending ranges so one lease carries about -lease-target of work (results are identical)")
	leaseTarget := fs.Duration("lease-target", 0, "target wall time per lease for -adaptive (0 = lease-ttl/4)")
	minRange := fs.Int("min-range", 0, "smallest range -adaptive may split down to (0 = 4)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	usageErr := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "campaignd: "+format+"\n", args...)
		fs.Usage()
		return 2
	}
	switch {
	case *rangeSize < 1:
		return usageErr("-range must be >= 1, got %d", *rangeSize)
	case *leaseTTL <= 0:
		return usageErr("-lease-ttl must be > 0, got %v", *leaseTTL)
	case *maxAttempts < 1:
		return usageErr("-max-attempts must be >= 1, got %d", *maxAttempts)
	case *tick <= 0:
		return usageErr("-tick must be > 0, got %v", *tick)
	case *spawn < 0:
		return usageErr("-spawn must be >= 0, got %d", *spawn)
	case *spawn > 0 && *workerBin == "":
		return usageErr("-spawn requires -worker-bin")
	case *listen == "" && *spawn == 0 && !*local:
		return usageErr("no execution path: need -listen, -spawn or -local")
	case *workers < 0:
		return usageErr("-workers must be >= 0, got %d", *workers)
	case *warmstart < 0:
		return usageErr("-warmstart must be >= 0, got %d", *warmstart)
	case *lanes < 1 || *lanes > 64:
		return usageErr("-lanes must be in 1..64, got %d", *lanes)
	case *transient < 0 || *permanent < 0 || *wide < 0:
		return usageErr("experiment counts must be >= 0")
	case *progressEvery < 0:
		return usageErr("-progress must be >= 0, got %v", *progressEvery)
	case *leaseTarget < 0:
		return usageErr("-lease-target must be >= 0, got %v", *leaseTarget)
	case *minRange < 0:
		return usageErr("-min-range must be >= 0, got %d", *minRange)
	case *design != "v1" && *design != "v2":
		return usageErr("unknown design %q", *design)
	}

	sp := dist.Spec{
		Design:    *design,
		AddrWidth: *addrWidth,
		Words:     *words,
		Transient: *transient,
		Permanent: *permanent,
		Wide:      *wide,
		Seed:      *seed,
		Warmstart: *warmstart,
	}

	var tel *telemetry.Campaign
	if *journalPath != "" || *progressEvery > 0 || *statusAddr != "" || *tracePath != "" {
		var journal *telemetry.Journal
		if *journalPath != "" {
			var err error
			journal, err = telemetry.OpenJournal(*journalPath, telemetry.SystemClock)
			if err != nil {
				lg.Print(err)
				return 1
			}
		}
		tel = telemetry.NewCampaign(journal, telemetry.SystemClock)
		if *tracePath != "" {
			spans, err := telemetry.OpenJournal(*tracePath, telemetry.SystemClock)
			if err != nil {
				lg.Print(err)
				return 1
			}
			// Spec-derived trace id: workers derive the same id locally
			// and every lease message carries it, so the fleet's span
			// journals merge into one trace under cmd/tracer.
			tel.Tracer = telemetry.NewTracer(spans, "coordinator", sp.TraceID())
			root := tel.StartSpan("dist-campaign")
			tel.SetTraceRoot(root)
			defer func() {
				tel.PhaseDone()
				root.End()
				if err := spans.Close(); err != nil {
					lg.Printf("trace: %v", err)
				}
			}()
		}
		if *statusAddr != "" {
			srv, err := telemetry.ServeStatus(*statusAddr, tel)
			if err != nil {
				lg.Print(err)
				return 1
			}
			lg.Printf("status endpoint: http://%s/progress", srv.Addr)
			defer srv.Close()
		}
		if *progressEvery > 0 {
			rep := telemetry.StartReporter(stderr, tel, *progressEvery)
			defer rep.Stop()
		}
		defer func() {
			if err := journal.Close(); err != nil {
				lg.Printf("journal: %v", err)
			}
		}()
	}
	fatal := func(err error) int {
		lg.Print(err)
		return 1
	}

	c, err := sp.Build()
	if err != nil {
		return fatal(err)
	}
	c.Target.Lanes = *lanes
	c.Target.Collapse = *collapse
	c.Target.Supervision = inject.Supervision{Clock: time.Now, Quarantine: true}
	c.Target.Telemetry = tel
	fmt.Fprintf(stdout, "%s: workload %d cycles, %d zones\n", c.Name, c.Trace.Cycles(), len(c.Analysis.Zones))
	fmt.Fprintf(stdout, "distributing %d injection experiments (range size %d, plan hash %016x)...\n",
		len(c.Plan), *rangeSize, inject.PlanHash(c.Plan))

	ccfg := dist.Config{
		Plan:        c.Plan,
		RangeSize:   *rangeSize,
		LeaseTTL:    *leaseTTL,
		MaxAttempts: *maxAttempts,
		BackoffBase: *backoffBase,
		BackoffCap:  *backoffCap,
		Clock:       time.Now,
		Telemetry:   tel,
		Adaptive:    *adaptive,
		TargetLease: *leaseTarget,
		MinRange:    *minRange,
		Logf:        lg.Printf,
	}
	if *local {
		ccfg.LocalRunner = func(lo, hi int) (*inject.Checkpoint, error) {
			return c.Target.RunRange(c.Golden, c.Plan, *workers, lo, hi)
		}
	}
	coord, err := dist.New(ccfg)
	if err != nil {
		return fatal(err)
	}

	// conns tracks live worker connections so shutdown can wait for the
	// fin handshake to drain instead of racing process exit.
	var conns sync.WaitGroup
	if *listen != "" {
		ln, err := net.Listen("tcp", bindLoopback(*listen))
		if err != nil {
			return fatal(err)
		}
		defer ln.Close()
		lg.Printf("accepting workers on %s", ln.Addr())
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				conns.Add(1)
				go func() {
					defer conns.Done()
					if err := coord.Serve(conn); err != nil {
						lg.Printf("worker connection: %v", err)
					}
				}()
			}
		}()
	}

	for i := 0; i < *spawn; i++ {
		if err := spawnWorker(coord, *workerBin, sp, i, *tracePath, &conns, stderr, lg); err != nil {
			return fatal(err)
		}
	}

	ticker := time.NewTicker(*tick)
	defer ticker.Stop()
	for running := true; running; {
		select {
		case <-coord.Done():
			running = false
		case <-ticker.C:
			coord.Tick()
		}
	}
	// Let the fin handshake reach every live worker before tearing the
	// process down; a hung worker only costs the grace period.
	waitTimeout(&conns, 5*time.Second)

	ck, err := coord.Result()
	if err != nil {
		return fatal(err)
	}
	rep, err := c.Target.AssembleReport(c.Plan, ck)
	if err != nil {
		return fatal(err)
	}

	rep.WriteText(stdout, c.Analysis, c.Worksheet, *tol)
	if *out != "" {
		var buf bytes.Buffer
		rep.WriteText(&buf, c.Analysis, c.Worksheet, *tol)
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			return fatal(err)
		}
	}

	if len(rep.Quarantined) > 0 {
		lg.Printf("campaign degraded: %d plan row(s) quarantined (%d range(s))", len(rep.Quarantined), coord.Quarantined())
		return 3
	}
	if *requireCoverage && !rep.Coverage.Complete() {
		lg.Printf("campaign coverage incomplete; failing the gate")
		return 4
	}
	return 0
}

// bindLoopback maps a bare ":port" onto the loopback interface, the
// same convention as the telemetry status server.
func bindLoopback(addr string) string {
	if len(addr) > 0 && addr[0] == ':' {
		return "127.0.0.1" + addr
	}
	return addr
}

// waitTimeout waits for wg, giving up after d.
func waitTimeout(wg *sync.WaitGroup, d time.Duration) {
	ch := make(chan struct{})
	go func() {
		wg.Wait()
		close(ch)
	}()
	select {
	case <-ch:
	case <-time.After(d):
	}
}

// spawnWorker launches one "injector worker -stdio" subprocess with
// spec flags matching the coordinator's and serves the protocol over
// its pipes. The subprocess's stderr is passed through. When the
// coordinator traces, each spawned worker writes its span journal next
// to the coordinator's as <trace>.spawnN.
func spawnWorker(coord *dist.Coordinator, bin string, sp dist.Spec, i int, tracePath string, conns *sync.WaitGroup, stderr io.Writer, lg *log.Logger) error {
	argv := []string{"worker", "-stdio",
		"-name", fmt.Sprintf("spawn%d", i),
		"-design", sp.Design,
		"-addr", strconv.Itoa(sp.AddrWidth),
		"-words", strconv.Itoa(sp.Words),
		"-transient", strconv.Itoa(sp.Transient),
		"-permanent", strconv.Itoa(sp.Permanent),
		"-wide", strconv.Itoa(sp.Wide),
		"-seed", strconv.FormatUint(sp.Seed, 10),
		"-warmstart", strconv.Itoa(sp.Warmstart),
	}
	if tracePath != "" {
		argv = append(argv, "-trace", fmt.Sprintf("%s.spawn%d", tracePath, i))
	}
	cmd := exec.Command(bin, argv...)
	cmd.Stderr = stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	lg.Printf("spawned worker %d (pid %d)", i, cmd.Process.Pid)
	conns.Add(1)
	go func() {
		defer conns.Done()
		if err := coord.Serve(pipeConn{stdout, stdin}); err != nil {
			lg.Printf("spawned worker %d: %v", i, err)
		}
		cmd.Wait()
	}()
	return nil
}

// pipeConn bundles a subprocess's stdout/stdin pipes into the
// protocol's stream interface.
type pipeConn struct {
	io.Reader
	w io.WriteCloser
}

func (p pipeConn) Write(b []byte) (int, error) { return p.w.Write(b) }
func (p pipeConn) Close() error                { return p.w.Close() }
