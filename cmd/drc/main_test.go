package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExitCodes pins the documented CI contract: 0 clean at threshold,
// 1 findings at/above threshold, 2 usage or build errors.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean at default threshold", []string{"-design", "v1", "-addr", "6"}, 0},
		{"warnings reach a warn threshold", []string{"-design", "v1", "-addr", "6", "-severity", "warn"}, 1},
		{"unknown design", []string{"-design", "nope"}, 2},
		{"bad severity", []string{"-design", "v1", "-severity", "loud"}, 2},
		{"unknown flag", []string{"-frobnicate"}, 2},
	}
	for _, tc := range cases {
		var out, errb bytes.Buffer
		if got := run(tc.args, &out, &errb); got != tc.want {
			t.Errorf("%s: exit %d, want %d (stderr: %s)", tc.name, got, tc.want, errb.String())
		}
	}
}

// TestHelpDocumentsExitCodes: --help must exit 0 and its usage text must
// spell out all three exit codes — the contract scripts rely on.
func TestHelpDocumentsExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"--help"}, &out, &errb); got != 0 {
		t.Fatalf("--help: exit %d, want 0", got)
	}
	usage := errb.String()
	for _, want := range []string{
		"Exit codes:",
		"0  clean",
		"1  at least one finding",
		"2  usage error",
	} {
		if !strings.Contains(usage, want) {
			t.Errorf("usage text missing %q:\n%s", want, usage)
		}
	}
}

// TestReportGoesToStdout: findings render on stdout, diagnostics on
// stderr, so shell pipelines can separate report from noise.
func TestReportGoesToStdout(t *testing.T) {
	var out, errb bytes.Buffer
	if got := run([]string{"-design", "v1", "-addr", "6"}, &out, &errb); got != 0 {
		t.Fatalf("exit %d, stderr: %s", got, errb.String())
	}
	if out.Len() == 0 {
		t.Fatal("no report on stdout")
	}
	if errb.Len() != 0 {
		t.Errorf("unexpected stderr on a clean run: %s", errb.String())
	}
}
