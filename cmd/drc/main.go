// Command drc runs the static design-rule-check engine over a design's
// (netlist, zones, worksheet) triple without simulating a cycle: the
// pre-flight gate the certification flow requires before any injection
// campaign spends cycles on an inconsistent design.
//
// Output is an aligned text report or stable JSON (-json). The exit
// code is 1 when any finding reaches the -severity threshold (default
// error), 0 otherwise, and 2 on usage errors — so the command slots
// directly into CI.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/drc"
	"repro/internal/fit"
	"repro/internal/fmea"
	"repro/internal/frcpu"
	"repro/internal/memsys"
	"repro/internal/netlist"
	"repro/internal/randckt"
	"repro/internal/zones"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("drc: ")
	design := flag.String("design", "v2", "design: v1, v2, cpu, cpu-lockstep or rand")
	addrWidth := flag.Int("addr", 8, "address width for the memory sub-system designs")
	seed := flag.Uint64("seed", 1, "seed for -design rand")
	jsonOut := flag.Bool("json", false, "emit stable JSON instead of text")
	sevFlag := flag.String("severity", "error", "exit non-zero at or above this severity (info, warn, error)")
	rulesFlag := flag.String("rules", "", "comma-separated rule IDs to run (default all)")
	skipFlag := flag.String("skip", "", "comma-separated rule IDs to skip")
	corr := flag.Float64("corr", 0, "zone-correlation Jaccard threshold (0 = default)")
	fitTol := flag.Float64("fit-tol", 0, "FIT conservation relative tolerance (0 = default)")
	noWorksheet := flag.Bool("no-worksheet", false, "check only the netlist and zone layers")
	flag.Parse()

	threshold, err := drc.ParseSeverity(*sevFlag)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	cfg := drc.DefaultConfig()
	if *corr > 0 {
		cfg.CorrelationJaccard = *corr
	}
	if *fitTol > 0 {
		cfg.FITTolerance = *fitTol
	}
	cfg.Rules = splitList(*rulesFlag)
	cfg.Skip = splitList(*skipFlag)

	in, err := buildInput(*design, *addrWidth, *seed, !*noWorksheet)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	res, err := drc.Run(in, cfg)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	if *jsonOut {
		out, err := res.JSON()
		if err != nil {
			log.Println(err)
			os.Exit(2)
		}
		os.Stdout.Write(out)
	} else {
		fmt.Print(res.Render())
	}
	if res.CountAtLeast(threshold) > 0 {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// buildInput assembles the check triple for a named design. The rand
// design exercises the netlist and zone layers only: random circuits
// carry no curated worksheet.
func buildInput(design string, addrWidth int, seed uint64, withWorksheet bool) (drc.Input, error) {
	rates := fit.Default()
	var (
		n *netlist.Netlist
		a *zones.Analysis
		w *fmea.Worksheet
	)
	switch design {
	case "v1", "v2":
		cfg := memsys.V1Config()
		if design == "v2" {
			cfg = memsys.V2Config()
		}
		cfg.AddrWidth = addrWidth
		d, err := memsys.Build(cfg)
		if err != nil {
			return drc.Input{}, err
		}
		n = d.N
		if a, err = d.Analyze(); err != nil {
			return drc.Input{}, err
		}
		if withWorksheet {
			w = d.Worksheet(a, rates)
		}
	case "cpu", "cpu-lockstep":
		cfg := frcpu.PlainConfig()
		if design == "cpu-lockstep" {
			cfg = frcpu.LockstepConfig()
		}
		d, err := frcpu.Build(cfg)
		if err != nil {
			return drc.Input{}, err
		}
		n = d.N
		if a, err = d.Analyze(); err != nil {
			return drc.Input{}, err
		}
		if withWorksheet {
			w = d.Worksheet(a, rates)
		}
	case "rand":
		n = randckt.Generate(randckt.Default(), seed)
		var err error
		if a, err = zones.Extract(n, zones.DefaultConfig()); err != nil {
			return drc.Input{}, err
		}
	default:
		return drc.Input{}, fmt.Errorf("unknown design %q (want v1, v2, cpu, cpu-lockstep or rand)", design)
	}
	return drc.Input{Netlist: n, Analysis: a, Worksheet: w, Rates: &rates}, nil
}
