// Command drc runs the static design-rule-check engine over a design's
// (netlist, zones, worksheet) triple without simulating a cycle: the
// pre-flight gate the certification flow requires before any injection
// campaign spends cycles on an inconsistent design.
//
// Output is an aligned text report or stable JSON (-json). The exit
// code is the CI contract, documented in --help:
//
//	0  the design is clean at the -severity threshold
//	1  at least one finding at or above the threshold
//	2  usage error, unknown design, or a build/check failure
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/drc"
	"repro/internal/fit"
	"repro/internal/fmea"
	"repro/internal/frcpu"
	"repro/internal/memsys"
	"repro/internal/netlist"
	"repro/internal/randckt"
	"repro/internal/zones"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("drc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: drc [flags]")
		fmt.Fprintln(stderr, "\nStatic design-rule check over a design's (netlist, zones, worksheet) triple.")
		fmt.Fprintln(stderr, "\nExit codes:")
		fmt.Fprintln(stderr, "  0  clean: no finding at or above the -severity threshold")
		fmt.Fprintln(stderr, "  1  at least one finding at or above the -severity threshold")
		fmt.Fprintln(stderr, "  2  usage error, unknown design, or build/check failure")
		fmt.Fprintln(stderr, "\nFlags:")
		fs.PrintDefaults()
	}
	design := fs.String("design", "v2", "design: v1, v2, cpu, cpu-lockstep or rand")
	addrWidth := fs.Int("addr", 8, "address width for the memory sub-system designs")
	seed := fs.Uint64("seed", 1, "seed for -design rand")
	jsonOut := fs.Bool("json", false, "emit stable JSON instead of text")
	sevFlag := fs.String("severity", "error", "exit non-zero at or above this severity (info, warn, error)")
	rulesFlag := fs.String("rules", "", "comma-separated rule IDs to run (default all)")
	skipFlag := fs.String("skip", "", "comma-separated rule IDs to skip")
	corr := fs.Float64("corr", 0, "zone-correlation Jaccard threshold (0 = default)")
	fitTol := fs.Float64("fit-tol", 0, "FIT conservation relative tolerance (0 = default)")
	noWorksheet := fs.Bool("no-worksheet", false, "check only the netlist and zone layers")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0 // asking for the manual is not a usage error
		}
		return 2
	}

	threshold, err := drc.ParseSeverity(*sevFlag)
	if err != nil {
		fmt.Fprintf(stderr, "drc: %v\n", err)
		return 2
	}
	cfg := drc.DefaultConfig()
	if *corr > 0 {
		cfg.CorrelationJaccard = *corr
	}
	if *fitTol > 0 {
		cfg.FITTolerance = *fitTol
	}
	cfg.Rules = splitList(*rulesFlag)
	cfg.Skip = splitList(*skipFlag)

	in, err := buildInput(*design, *addrWidth, *seed, !*noWorksheet)
	if err != nil {
		fmt.Fprintf(stderr, "drc: %v\n", err)
		return 2
	}
	res, err := drc.Run(in, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "drc: %v\n", err)
		return 2
	}
	if *jsonOut {
		out, err := res.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "drc: %v\n", err)
			return 2
		}
		stdout.Write(out)
	} else {
		io.WriteString(stdout, res.Render())
	}
	if res.CountAtLeast(threshold) > 0 {
		return 1
	}
	return 0
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// buildInput assembles the check triple for a named design. The rand
// design exercises the netlist and zone layers only: random circuits
// carry no curated worksheet.
func buildInput(design string, addrWidth int, seed uint64, withWorksheet bool) (drc.Input, error) {
	rates := fit.Default()
	var (
		n *netlist.Netlist
		a *zones.Analysis
		w *fmea.Worksheet
	)
	switch design {
	case "v1", "v2":
		cfg := memsys.V1Config()
		if design == "v2" {
			cfg = memsys.V2Config()
		}
		cfg.AddrWidth = addrWidth
		d, err := memsys.Build(cfg)
		if err != nil {
			return drc.Input{}, err
		}
		n = d.N
		if a, err = d.Analyze(); err != nil {
			return drc.Input{}, err
		}
		if withWorksheet {
			w = d.Worksheet(a, rates)
		}
	case "cpu", "cpu-lockstep":
		cfg := frcpu.PlainConfig()
		if design == "cpu-lockstep" {
			cfg = frcpu.LockstepConfig()
		}
		d, err := frcpu.Build(cfg)
		if err != nil {
			return drc.Input{}, err
		}
		n = d.N
		if a, err = d.Analyze(); err != nil {
			return drc.Input{}, err
		}
		if withWorksheet {
			w = d.Worksheet(a, rates)
		}
	case "rand":
		n = randckt.Generate(randckt.Default(), seed)
		var err error
		if a, err = zones.Extract(n, zones.DefaultConfig()); err != nil {
			return drc.Input{}, err
		}
	default:
		return drc.Input{}, fmt.Errorf("unknown design %q (want v1, v2, cpu, cpu-lockstep or rand)", design)
	}
	return drc.Input{Netlist: n, Analysis: a, Worksheet: w, Rates: &rates}, nil
}
