// Command zones runs the sensible-zone extraction tool over a memory
// sub-system implementation and dumps the zones, their logic-cone
// statistics, and the strongest inter-zone correlations (shared cone
// gates — wide-fault exposure).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/memsys"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zones: ")
	design := flag.String("design", "v2", "implementation: v1 or v2")
	addrWidth := flag.Int("addr", 8, "address width (memory words = 2^addr)")
	topCorr := flag.Int("corr", 10, "number of correlations to list")
	flag.Parse()

	cfg, err := configFor(*design)
	if err != nil {
		log.Fatal(err)
	}
	cfg.AddrWidth = *addrWidth
	d, err := memsys.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	a, err := d.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.N.String())
	fmt.Println(a.Summary())
	fmt.Println()

	t := report.NewTable("Sensible zones", "id", "kind", "zone", "FFs", "cone gates", "depth", "main effects", "secondary")
	for zi := range a.Zones {
		z := &a.Zones[zi]
		t.AddRow(z.ID, z.Kind.String(), z.Name, len(z.FFs),
			a.Cones[zi].GateCount(), a.Cones[zi].Depth,
			len(a.MainEffects(zi)), len(a.SecondaryEffects(zi)))
	}
	fmt.Println(t.Render())

	corrs := a.Correlations(1)
	ct := report.NewTable("Strongest zone correlations (shared cone gates)", "zone A", "zone B", "shared")
	for i, c := range corrs {
		if i >= *topCorr {
			break
		}
		ct.AddRow(a.Zones[c.A].Name, a.Zones[c.B].Name, c.Shared)
	}
	fmt.Println(ct.Render())
}

func configFor(design string) (memsys.Config, error) {
	switch design {
	case "v1":
		return memsys.V1Config(), nil
	case "v2":
		return memsys.V2Config(), nil
	}
	return memsys.Config{}, fmt.Errorf("unknown design %q (want v1 or v2)", design)
}

var _ = os.Exit
