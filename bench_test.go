// Benchmarks regenerating every table and figure reproduced from the
// paper's evaluation (experiments E1–E23 of DESIGN.md). Each benchmark
// reports its headline quantities as custom metrics and prints the
// paper-vs-measured row once, so
//
//	go test -bench=. -benchmem
//
// produces the complete EXPERIMENTS.md record.
package repro

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/faultsim"
	"repro/internal/fit"
	"repro/internal/fmea"
	"repro/internal/frcpu"
	"repro/internal/iec61508"
	"repro/internal/inject"
	"repro/internal/memsys"
	"repro/internal/mission"
	"repro/internal/netlist"
	"repro/internal/telemetry"
	"repro/internal/zones"
)

// ---------- shared fixtures (built once) ----------

type fixture struct {
	design *memsys.Design
	an     *zones.Analysis
	sheet  *fmea.Worksheet
}

var (
	fixOnce sync.Once
	fixV1   fixture
	fixV2   fixture
)

func fullFixtures(b *testing.B) (fixture, fixture) {
	b.Helper()
	fixOnce.Do(func() {
		rates := fit.Default()
		build := func(cfg memsys.Config) fixture {
			d, err := memsys.Build(cfg)
			if err != nil {
				panic(err)
			}
			a, err := d.Analyze()
			if err != nil {
				panic(err)
			}
			return fixture{design: d, an: a, sheet: d.Worksheet(a, rates)}
		}
		fixV1 = build(memsys.V1Config())
		fixV2 = build(memsys.V2Config())
	})
	return fixV1, fixV2
}

// smallCampaign runs a reduced injection campaign on a 64-word variant.
type campaignOut struct {
	an     *zones.Analysis
	sheet  *fmea.Worksheet
	report *inject.Report
	wide   *inject.Report
	golden *inject.Golden
	target *inject.Target
}

var (
	campOnce  sync.Once
	campByCfg map[string]*campaignOut
)

func campaign(b *testing.B, v2 bool) *campaignOut {
	b.Helper()
	campOnce.Do(func() {
		campByCfg = map[string]*campaignOut{}
		for _, useV2 := range []bool{false, true} {
			cfg := memsys.V1Config()
			if useV2 {
				cfg = memsys.V2Config()
			}
			cfg.AddrWidth = 6
			d, err := memsys.Build(cfg)
			if err != nil {
				panic(err)
			}
			a, err := d.Analyze()
			if err != nil {
				panic(err)
			}
			target := d.InjectionTargetSeeded(a, d.SeedFaults())
			g, err := target.RunGolden(d.ValidationWorkload(4, 1))
			if err != nil {
				panic(err)
			}
			plan := inject.BuildPlan(a, g, inject.PlanConfig{TransientPerZone: 2, PermanentPerZone: 1, Seed: 1})
			rep, err := target.Run(g, plan)
			if err != nil {
				panic(err)
			}
			wide, err := target.Run(g, inject.WidePlan(a, g, 12, 2))
			if err != nil {
				panic(err)
			}
			campByCfg[cfg.Name] = &campaignOut{
				an: a, sheet: d.Worksheet(a, fit.Default()),
				report: rep, wide: wide, golden: g, target: target,
			}
		}
	})
	if v2 {
		return campByCfg["memsub-v2"]
	}
	return campByCfg["memsub-v1"]
}

var printOnce = map[string]*sync.Once{}
var printMu sync.Mutex

func once(key string, f func()) {
	printMu.Lock()
	o, ok := printOnce[key]
	if !ok {
		o = &sync.Once{}
		printOnce[key] = o
	}
	printMu.Unlock()
	o.Do(f)
}

// ---------- E1: zone extraction (paper: "about 170 sensible zones") ----------

func BenchmarkE1_ZoneExtraction(b *testing.B) {
	v1, v2 := fullFixtures(b)
	once("E1", func() {
		fmt.Printf("\n[E1] sensible zones: v1 %d, v2 %d (paper: ~170 for the industrial frmem IP)\n",
			len(v1.an.Zones), len(v2.an.Zones))
		fmt.Printf("[E1] %s\n[E1] %s\n", v1.an.Summary(), v2.an.Summary())
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v2.design.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(v2.an.Zones)), "zones")
}

// ---------- E2/E3: SFF of the two implementations ----------

func BenchmarkE2_FMEA_V1(b *testing.B) {
	v1, _ := fullFixtures(b)
	m := v1.sheet.Totals()
	once("E2", func() {
		fmt.Printf("\n[E2] v1 SFF = %.4f (paper ≈ 0.95), DC = %.4f, SIL@HFT0 = %v (paper: misses SIL3)\n",
			m.SFF(), m.DC(), v1.sheet.SIL(0))
	})
	if m.SFF() >= 0.99 || v1.sheet.SIL(0) >= iec61508.SIL3 {
		b.Fatalf("v1 unexpectedly reaches SIL3 (SFF %.4f)", m.SFF())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v1.sheet.Totals()
	}
	b.ReportMetric(m.SFF()*100, "SFF%")
}

func BenchmarkE3_FMEA_V2(b *testing.B) {
	_, v2 := fullFixtures(b)
	m := v2.sheet.Totals()
	once("E3", func() {
		fmt.Printf("\n[E3] v2 SFF = %.4f (paper 0.9938), DC = %.4f, SIL@HFT0 = %v (paper: SIL3)\n",
			m.SFF(), m.DC(), v2.sheet.SIL(0))
	})
	if m.SFF() < 0.99 || v2.sheet.SIL(0) != iec61508.SIL3 {
		b.Fatalf("v2 misses SIL3 (SFF %.4f)", m.SFF())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v2.sheet.Totals()
	}
	b.ReportMetric(m.SFF()*100, "SFF%")
}

// ---------- E4: criticality ranking ----------

func BenchmarkE4_Ranking(b *testing.B) {
	v1, _ := fullFixtures(b)
	rank := v1.sheet.Ranking()
	once("E4", func() {
		fmt.Printf("\n[E4] v1 criticality ranking (paper: memory array, then BIST control, address\n")
		fmt.Printf("[E4] latching registers, decoder blocks, write buffer registers, MCE bus blocks):\n")
		for i, zr := range rank {
			if i >= 10 {
				break
			}
			fmt.Printf("[E4]  %2d. %-28s λDU=%.4f FIT (%.1f%%)\n", i+1, zr.ZoneName, zr.Metrics.LambdaDU, 100*zr.ShareDU)
		}
	})
	if rank[0].ZoneName != memsys.ArrayZoneName {
		b.Fatalf("top critical zone %q, want memory_array", rank[0].ZoneName)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v1.sheet.Ranking()
	}
	b.ReportMetric(100*rank[0].ShareDU, "topShare%")
}

// ---------- E5: sensitivity spans ----------

func BenchmarkE5_Sensitivity(b *testing.B) {
	v1, v2 := fullFixtures(b)
	s1 := v1.sheet.SpanAssumptions(2)
	s2 := v2.sheet.SpanAssumptions(2)
	once("E5", func() {
		fmt.Printf("\n[E5] assumption spans ×/÷2: v1 SFF ∈ [%.4f, %.4f] (spread %.4f);\n",
			s1.MinSFF, s1.MaxSFF, s1.Spread())
		fmt.Printf("[E5] v2 SFF ∈ [%.4f, %.4f] (spread %.4f) — paper: v2 'very stable'; v2 stays ≥0.99: %v\n",
			s2.MinSFF, s2.MaxSFF, s2.Spread(), s2.MinSFF >= 0.99)
	})
	if s2.Spread() >= s1.Spread() {
		b.Fatal("v2 not more stable than v1")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v2.sheet.SpanAssumptions(2)
	}
	b.ReportMetric(s1.Spread(), "v1spread")
	b.ReportMetric(s2.Spread(), "v2spread")
}

// ---------- E6: exhaustive zone-failure injection ----------

func BenchmarkE6_ZoneInjection(b *testing.B) {
	c1 := campaign(b, false)
	c2 := campaign(b, true)
	ddf := func(c *campaignOut) float64 {
		det, dang := 0, 0
		for _, zm := range c.report.ZoneMeasures(c.an) {
			det += zm.DangerDet
			dang += zm.DangerDet + zm.DangerUndet
		}
		if dang == 0 {
			return 1
		}
		return float64(det) / float64(dang)
	}
	d1, d2 := ddf(c1), ddf(c2)
	once("E6", func() {
		rows := c2.report.ValidateWorksheet(c2.an, c2.sheet, 0.35)
		fmt.Printf("\n[E6] measured detected-dangerous fraction: v1 %.3f, v2 %.3f (v2 must win);\n", d1, d2)
		fmt.Printf("[E6] worksheet cross-check (one-sided, tol 0.35): %.1f%% of %d zones in line\n",
			100*inject.PassFraction(rows), len(rows))
	})
	if d2 <= d1 {
		b.Fatalf("measured DDF: v2 %.3f <= v1 %.3f", d2, d1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One representative re-injection per iteration.
		plan := inject.BuildPlan(c2.an, c2.golden, inject.PlanConfig{TransientPerZone: 1, Seed: uint64(i + 3)})
		if _, err := c2.target.Run(c2.golden, plan[:1]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d1, "DDFv1")
	b.ReportMetric(d2, "DDFv2")
}

// ---------- E7: workload toggle efficiency ----------

func BenchmarkE7_ToggleCoverage(b *testing.B) {
	_, v2 := fullFixtures(b)
	target := v2.design.InjectionTargetSeeded(v2.an, v2.design.SeedFaults())
	tr := v2.design.CoverageWorkload(1)
	rep, err := target.ToggleCoverage(tr)
	if err != nil {
		b.Fatal(err)
	}
	adj, excl := target.AdjustedToggle(rep)
	once("E7", func() {
		fmt.Printf("\n[E7] v2 toggle efficiency: raw %.4f, adjusted %.4f after excluding %d\n",
			rep.Coverage(), adj, excl)
		fmt.Printf("[E7] diagnostic-only nets (paper threshold: ≥0.99) — PASS: %v\n", adj >= 0.99)
	})
	if adj < 0.99 {
		b.Fatalf("adjusted toggle coverage %.4f below the 99%% threshold", adj)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := target.ToggleCoverage(tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(adj*100, "toggle%")
}

// ---------- E8: gate-level stuck-at fault simulation ----------

func BenchmarkE8_FaultSim(b *testing.B) {
	n, err := memsys.BuildCodecBench(memsys.V2Config())
	if err != nil {
		b.Fatal(err)
	}
	u := faults.StuckAtUniverse(n)
	eng, err := faultsim.New(n)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := memsys.CodecVectors(memsys.V2Config(), 600, 42)
	if err != nil {
		b.Fatal(err)
	}
	var funcObs, diag []netlist.NetID
	for _, port := range []string{"dout", "enc"} {
		if p, ok := n.FindOutput(port); ok {
			funcObs = append(funcObs, p.Nets...)
		}
	}
	for _, port := range []string{"alarm_single", "alarm_double", "alarm_in_addr", "alarm_in_check"} {
		if p, ok := n.FindOutput(port); ok {
			diag = append(diag, p.Nets...)
		}
	}
	res, err := eng.Run(tr, funcObs, diag, u.Reps)
	if err != nil {
		b.Fatal(err)
	}
	once("E8", func() {
		fmt.Printf("\n[E8] codec gate-level fault simulation: %d collapsed stuck-ats (of %d, ratio %.2f),\n",
			len(u.Reps), len(u.All), u.CollapseRatio())
		fmt.Printf("[E8] coverage %.4f, diag-of-dangerous %.4f over %d random vectors\n",
			res.Coverage(), res.DiagOfDangerous(), tr.Cycles())
	})
	if res.Coverage() < 0.95 {
		b.Fatalf("codec fault coverage %.4f too low", res.Coverage())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(tr, funcObs, diag, u.Reps); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Coverage()*100, "faultcov%")
}

// ---------- E9: wide/global fault experiments ----------

func BenchmarkE9_WideGlobal(b *testing.B) {
	c2 := campaign(b, true)
	multi := 0
	for _, res := range c2.wide.Results {
		if len(res.Deviated) >= 2 {
			multi++
		}
	}
	once("E9", func() {
		fmt.Printf("\n[E9] wide/global faults: %d experiments, %d produced multiple failures\n",
			len(c2.wide.Results), multi)
		fmt.Printf("[E9] (Fig. 2: one physical fault, failures in several sensible zones)\n")
	})
	if multi == 0 {
		b.Fatal("no wide fault produced multiple failures")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := inject.WidePlan(c2.an, c2.golden, 2, uint64(i+5))
		if _, err := c2.target.Run(c2.golden, plan); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(multi), "multiFailure")
}

// ---------- E10: effect-table consistency (Figs. 1–3) ----------

func BenchmarkE10_EffectTables(b *testing.B) {
	c2 := campaign(b, true)
	checks := c2.report.CheckEffects(c2.an)
	bad := 0
	for _, ec := range checks {
		if !ec.Consistent {
			bad++
		}
	}
	once("E10", func() {
		fmt.Printf("\n[E10] effect tables: %d zones measured, %d inconsistent with the\n", len(checks), bad)
		fmt.Printf("[E10] main/secondary-effect prediction (each inconsistency = new FMEA lines)\n")
	})
	if bad > 0 {
		b.Fatalf("%d zones with unpredicted effects", bad)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c2.report.CheckEffects(c2.an)
	}
	b.ReportMetric(float64(len(checks)), "zonesChecked")
}

// ---------- E11: SFF/HFT → SIL grading table ----------

func BenchmarkE11_SILGrading(b *testing.B) {
	once("E11", func() {
		fmt.Printf("\n[E11] IEC 61508-2 type B architectural constraints (max claimable SIL):\n")
		fmt.Printf("[E11] %-14s %6s %6s %6s\n", "SFF band", "HFT0", "HFT1", "HFT2")
		for _, sff := range []float64{0.5, 0.7, 0.95, 0.995} {
			band := iec61508.BandOf(sff)
			fmt.Printf("[E11] %-14s %6v %6v %6v\n", band,
				iec61508.MaxSIL(sff, 0, true), iec61508.MaxSIL(sff, 1, true), iec61508.MaxSIL(sff, 2, true))
		}
		fmt.Printf("[E11] paper: SIL3 needs SFF ≥99%% at HFT0, >90%% at HFT1 — both reproduced\n")
	})
	if iec61508.MaxSIL(0.99, 0, true) != iec61508.SIL3 || iec61508.MaxSIL(0.92, 1, true) != iec61508.SIL3 {
		b.Fatal("grading table does not match the norm")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for hft := 0; hft <= 2; hft++ {
			_ = iec61508.MaxSIL(float64(i%100)/100, hft, true)
		}
	}
}

// ---------- E12: per-measure ablation ----------

func BenchmarkE12_Ablation(b *testing.B) {
	rates := fit.Default()
	sffFor := func(cfg memsys.Config) float64 {
		d, err := memsys.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		a, err := d.Analyze()
		if err != nil {
			b.Fatal(err)
		}
		return d.Worksheet(a, rates).Totals().SFF()
	}
	type measure struct {
		name  string
		apply func(*memsys.Config)
	}
	measures := []measure{
		{"+addr-in-code", func(c *memsys.Config) { c.AddrInCode = true }},
		{"+wbuf-parity", func(c *memsys.Config) { c.WBufParity = true }},
		{"+coder-check", func(c *memsys.Config) { c.CoderCheck = true }},
		{"+redundant-checker", func(c *memsys.Config) { c.RedundantChecker = true; c.Bypass = true }},
		{"+distributed-syndrome", func(c *memsys.Config) { c.AddrInCode = true; c.DistributedSyndrome = true }},
	}
	base := sffFor(memsys.V1Config())
	full := sffFor(memsys.V2Config())
	var rows []string
	minGain := 1.0
	for _, msr := range measures {
		cfg := memsys.V1Config()
		cfg.Name = "v1" + msr.name
		msr.apply(&cfg)
		sff := sffFor(cfg)
		gain := sff - base
		if gain < minGain {
			minGain = gain
		}
		rows = append(rows, fmt.Sprintf("[E12]  v1%-24s SFF %.4f (%+.4f)", msr.name, sff, gain))
	}
	once("E12", func() {
		fmt.Printf("\n[E12] ablation of the five Section 6 measures over v1 (SFF %.4f):\n", base)
		for _, r := range rows {
			fmt.Println(r)
		}
		fmt.Printf("[E12]  all five (v2)                SFF %.4f (%+.4f)\n", full, full-base)
	})
	if minGain < 0 {
		b.Fatalf("a measure lowered SFF by %.4f", -minGain)
	}
	if full <= base {
		b.Fatal("v2 not above v1")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sffFor(memsys.V2Config())
	}
	b.ReportMetric((full-base)*100, "gain_pp")
}

// ---------- E13: campaign coverage completeness (Fig. 4) ----------

func BenchmarkE13_CampaignCoverage(b *testing.B) {
	c2 := campaign(b, true)
	cov := c2.report.Coverage
	ok, inactive := c2.golden.CompletenessOK()
	once("E13", func() {
		fmt.Printf("\n[E13] campaign coverage items: SENS %.4f, OBSE %.4f, DIAG %.4f, %d mismatches;\n",
			cov.SensFrac(), cov.ObseFrac(), cov.DiagFrac(), cov.Mismatches)
		fmt.Printf("[E13] workload completeness (every zone triggered): %v (%d exempt-or-inactive)\n", ok, len(inactive))
	})
	if cov.ObseFrac() < 1 || cov.DiagFrac() < 1 {
		b.Fatalf("observation coverage incomplete: OBSE %.3f DIAG %.3f", cov.ObseFrac(), cov.DiagFrac())
	}
	if !ok {
		b.Fatal("workload incomplete")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c2.golden.CompletenessOK()
	}
	b.ReportMetric(cov.SensFrac()*100, "SENS%")
}

// ---------- E14: synthesis-variant cross-check ----------

func BenchmarkE14_SynthVariants(b *testing.B) {
	rates := fit.Default()
	sffFor := func(v memsys.Variant) float64 {
		cfg := memsys.V2Config()
		cfg.Variant = v
		cfg.Name = "memsub-v2-" + v.String()
		d, err := memsys.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		a, err := d.Analyze()
		if err != nil {
			b.Fatal(err)
		}
		return d.Worksheet(a, rates).Totals().SFF()
	}
	sa := sffFor(memsys.HsiaoA)
	sb := sffFor(memsys.HsiaoB)
	delta := sa - sb
	if delta < 0 {
		delta = -delta
	}
	once("E14", func() {
		fmt.Printf("\n[E14] synthesis cross-check (paper: 'different synthesis of the design'):\n")
		fmt.Printf("[E14] hsiao-a SFF %.4f vs hsiao-b SFF %.4f, |Δ| = %.5f (result implementation-stable)\n",
			sa, sb, delta)
	})
	if delta > 0.002 {
		b.Fatalf("variant sensitivity too high: |Δ| = %.5f", delta)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sffFor(memsys.HsiaoB)
	}
	b.ReportMetric(delta*1000, "deltaSFF_milli")
}

// ---------- E15: parallel campaign engine throughput ----------

// BenchmarkE15_ParallelCampaign measures the worker-pool campaign
// runner against the serial path on the reduced 64-word campaign. The
// merge is deterministic, so every worker count must reproduce the
// serial report bit-for-bit; the custom metrics report experiments/sec
// and speedup vs the measured serial baseline. Wall-clock speedup
// requires real cores: on a single-CPU host all worker counts converge
// to ~1×.
func BenchmarkE15_ParallelCampaign(b *testing.B) {
	c2 := campaign(b, true)
	plan := inject.BuildPlan(c2.an, c2.golden, inject.PlanConfig{TransientPerZone: 2, PermanentPerZone: 1, Seed: 1})
	plan = append(plan, inject.WidePlan(c2.an, c2.golden, 12, 2)...)

	start := time.Now()
	serialRep, err := c2.target.Run(c2.golden, plan)
	if err != nil {
		b.Fatal(err)
	}
	serialPerExp := time.Since(start).Seconds() / float64(len(plan))
	once("E15", func() {
		fmt.Printf("\n[E15] parallel campaign engine: %d experiments, serial baseline %.1f exp/s\n",
			len(plan), 1/serialPerExp)
		fmt.Printf("[E15] on GOMAXPROCS=%d (deterministic merge: reports bit-identical at any width)\n",
			runtime.GOMAXPROCS(0))
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := c2.target.RunParallel(c2.golden, plan, workers)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 && !reflect.DeepEqual(rep, serialRep) {
					b.Fatal("parallel report differs from serial")
				}
			}
			perExp := b.Elapsed().Seconds() / float64(b.N*len(plan))
			b.ReportMetric(1/perExp, "exp/s")
			b.ReportMetric(serialPerExp/perExp, "speedup")
		})
	}
}

// ---------- E16: parallel gate-level fault simulation ----------

// BenchmarkE16_ParallelFaultSim shards the E8 codec campaign's 64-lane
// chunks across engine clones, reporting faults/sec and speedup vs the
// measured serial baseline.
func BenchmarkE16_ParallelFaultSim(b *testing.B) {
	n, err := memsys.BuildCodecBench(memsys.V2Config())
	if err != nil {
		b.Fatal(err)
	}
	u := faults.StuckAtUniverse(n)
	eng, err := faultsim.New(n)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := memsys.CodecVectors(memsys.V2Config(), 600, 42)
	if err != nil {
		b.Fatal(err)
	}
	var funcObs, diag []netlist.NetID
	for _, port := range []string{"dout", "enc"} {
		if p, ok := n.FindOutput(port); ok {
			funcObs = append(funcObs, p.Nets...)
		}
	}
	for _, port := range []string{"alarm_single", "alarm_double", "alarm_in_addr", "alarm_in_check"} {
		if p, ok := n.FindOutput(port); ok {
			diag = append(diag, p.Nets...)
		}
	}
	start := time.Now()
	serial, err := eng.Run(tr, funcObs, diag, u.Reps)
	if err != nil {
		b.Fatal(err)
	}
	serialPerFault := time.Since(start).Seconds() / float64(len(u.Reps))
	once("E16", func() {
		fmt.Printf("\n[E16] parallel fault simulation: %d collapsed stuck-ats in %d-fault chunks,\n",
			len(u.Reps), 63)
		fmt.Printf("[E16] serial baseline %.0f faults/s on GOMAXPROCS=%d\n",
			1/serialPerFault, runtime.GOMAXPROCS(0))
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := eng.RunParallel(tr, funcObs, diag, u.Reps, workers)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 && !reflect.DeepEqual(res, serial) {
					b.Fatal("parallel result differs from serial")
				}
			}
			perFault := b.Elapsed().Seconds() / float64(b.N*len(u.Reps))
			b.ReportMetric(1/perFault, "faults/s")
			b.ReportMetric(serialPerFault/perFault, "speedup")
		})
	}
}

// ---------- E17: fault-tolerant campaign execution — kill a campaign
// mid-plan, resume from the deterministic checkpoint, and verify the
// merged report is bit-identical to the uninterrupted run. ----------

func BenchmarkE17_ResumedCampaign(b *testing.B) {
	c2 := campaign(b, true)
	plan := inject.BuildPlan(c2.an, c2.golden, inject.PlanConfig{TransientPerZone: 2, PermanentPerZone: 1, Seed: 1})
	plan = append(plan, inject.WidePlan(c2.an, c2.golden, 12, 2)...)

	start := time.Now()
	ref, err := c2.target.Run(c2.golden, plan)
	if err != nil {
		b.Fatal(err)
	}
	uninterrupted := time.Since(start)

	path := filepath.Join(b.TempDir(), "e17.ckpt")
	runKilledAndResumed := func(workers int) *inject.Report {
		tgt := *c2.target // never mutate the shared cached fixture
		tgt.Workers = workers
		tgt.Supervision = inject.Supervision{
			Checkpoint: path, CheckpointEvery: 4, StopAfter: len(plan) / 2,
		}
		if _, err := tgt.Run(c2.golden, plan); !errors.Is(err, inject.ErrCampaignStopped) {
			b.Fatalf("interrupted run: got %v, want ErrCampaignStopped", err)
		}
		tgt.Supervision = inject.Supervision{Checkpoint: path, Resume: true}
		rep, err := tgt.Run(c2.golden, plan)
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	start = time.Now()
	rep := runKilledAndResumed(4)
	resumed := time.Since(start)
	if !reflect.DeepEqual(ref, rep) {
		b.Fatal("resumed report differs from the uninterrupted run")
	}
	once("E17", func() {
		fmt.Printf("\n[E17] kill/resume campaign: %d experiments, kill at 50%%, resumed report bit-identical: %v\n",
			len(plan), reflect.DeepEqual(ref, rep))
		fmt.Printf("[E17] uninterrupted %.2fs vs killed+resumed %.2fs (checkpoint overhead amortized every 4 exps)\n",
			uninterrupted.Seconds(), resumed.Seconds())
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := runKilledAndResumed(4)
		if rep == nil {
			b.Fatal("no report")
		}
	}
	perExp := b.Elapsed().Seconds() / float64(b.N*len(plan))
	b.ReportMetric(1/perExp, "exp/s")
	b.ReportMetric(resumed.Seconds()/uninterrupted.Seconds(), "overhead")
}

// ---------- E18: telemetry hot-path overhead — the out-of-band contract
// in numbers. The campaign runs once bare (Telemetry nil: one pointer
// check per hook) and once with a live metrics hub in the no-op-sink
// configuration (counters + histograms, no journal, no clock); the
// overhead must stay within noise (<2%). The reports must also be
// identical, the cheap half of the neutrality matrix test. ----------

func BenchmarkE18_TelemetryOverhead(b *testing.B) {
	c2 := campaign(b, true)
	plan := inject.BuildPlan(c2.an, c2.golden, inject.PlanConfig{TransientPerZone: 2, PermanentPerZone: 1, Seed: 1})
	plan = append(plan, inject.WidePlan(c2.an, c2.golden, 12, 2)...)

	runWith := func(tel *telemetry.Campaign) *inject.Report {
		tgt := *c2.target // never mutate the shared cached fixture
		tgt.Telemetry = tel
		rep, err := tgt.Run(c2.golden, plan)
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	// Warm both paths, check neutrality, then time a fixed number of
	// alternating runs so the comparison shares cache and GC state.
	ref := runWith(nil)
	if rep := runWith(telemetry.NewCampaign(nil, nil)); !reflect.DeepEqual(ref, rep) {
		b.Fatal("instrumented report differs from bare report")
	}
	const rounds = 5
	timeRuns := func(tel *telemetry.Campaign) float64 {
		start := time.Now()
		for i := 0; i < rounds; i++ {
			runWith(tel)
		}
		return time.Since(start).Seconds() / rounds
	}
	bare := timeRuns(nil)
	instr := timeRuns(telemetry.NewCampaign(nil, nil))
	overheadPct := 100 * (instr - bare) / bare
	once("E18", func() {
		fmt.Printf("\n[E18] telemetry overhead (no-op sink: atomic counters, no journal/clock):\n")
		fmt.Printf("[E18] bare %.3fs vs instrumented %.3fs per campaign — overhead %+.2f%% (target <2%%)\n",
			bare, instr, overheadPct)
	})
	for _, mode := range []struct {
		name string
		tel  func() *telemetry.Campaign
	}{
		{"telemetry=off", func() *telemetry.Campaign { return nil }},
		{"telemetry=on", func() *telemetry.Campaign { return telemetry.NewCampaign(nil, nil) }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runWith(mode.tel())
			}
			perExp := b.Elapsed().Seconds() / float64(b.N*len(plan))
			b.ReportMetric(1/perExp, "exp/s")
		})
	}
	b.ReportMetric(overheadPct, "overhead%")
}

// ---------- E19: golden-snapshot warm start — each experiment resumes
// from the golden snapshot at-or-before its injection cycle instead of
// re-simulating the shared prefix. With injection cycles uniform over
// the trace roughly half of all campaign cycles are redundant, so the
// single-core serial speedup should approach 2×. ----------

func BenchmarkE19_WarmStart(b *testing.B) {
	c2 := campaign(b, true)
	plan := inject.BuildPlan(c2.an, c2.golden, inject.PlanConfig{TransientPerZone: 2, PermanentPerZone: 1, Seed: 1})
	plan = append(plan, inject.WidePlan(c2.an, c2.golden, 12, 2)...)
	// Spread injection cycles uniformly over the trace (deterministic):
	// the OP-guided plan clusters cycles early, which would understate
	// the prefix a warm start can skip.
	cycles := c2.golden.Trace.Cycles()
	for i := range plan {
		plan[i].Cycle = i * (cycles - 1) / max(len(plan)-1, 1)
	}

	coldTgt := *c2.target // never mutate the shared cached fixture
	warmTgt := *c2.target
	warmTgt.SnapshotEvery = 16
	warmGolden, err := warmTgt.RunGolden(c2.golden.Trace)
	if err != nil {
		b.Fatal(err)
	}

	start := time.Now()
	coldRep, err := coldTgt.Run(c2.golden, plan)
	if err != nil {
		b.Fatal(err)
	}
	coldSerial := time.Since(start)
	start = time.Now()
	warmRep, err := warmTgt.Run(warmGolden, plan)
	if err != nil {
		b.Fatal(err)
	}
	warmSerial := time.Since(start)
	if !reflect.DeepEqual(coldRep, warmRep) {
		b.Fatal("warm-start serial report differs from cold-start serial report")
	}
	// Byte-identity at every tested worker count against the cold
	// serial reference — the acceptance contract of the optimization.
	for _, workers := range []int{1, 2, 4, 8} {
		rep, err := warmTgt.RunParallel(warmGolden, plan, workers)
		if err != nil {
			b.Fatal(err)
		}
		if !reflect.DeepEqual(coldRep, rep) {
			b.Fatalf("workers=%d: warm-start report differs from cold serial", workers)
		}
	}
	once("E19", func() {
		fmt.Printf("\n[E19] golden-snapshot warm start: %d experiments, cadence 16, %d-cycle trace\n",
			len(plan), cycles)
		fmt.Printf("[E19] cold serial %.2fs vs warm serial %.2fs — %.2fx (reports bit-identical at workers 1,2,4,8)\n",
			coldSerial.Seconds(), warmSerial.Seconds(),
			coldSerial.Seconds()/warmSerial.Seconds())
	})
	for _, mode := range []struct {
		name string
		tgt  *inject.Target
		g    *inject.Golden
	}{
		{"cold", &coldTgt, c2.golden},
		{"warm", &warmTgt, warmGolden},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mode.tgt.Run(mode.g, plan); err != nil {
					b.Fatal(err)
				}
			}
			perExp := b.Elapsed().Seconds() / float64(b.N*len(plan))
			b.ReportMetric(1/perExp, "exp/s")
		})
	}
	b.ReportMetric(coldSerial.Seconds()/warmSerial.Seconds(), "speedup")
}

// ---------- E20: compiled word-parallel simulation kernel — the campaign
// compiles the netlist to flat bytecode (internal/simc) and packs up to
// 64 experiments into the bit-lanes of one machine word, all restored
// from the same golden snapshot and stepped in lockstep. The acceptance
// contract: the merged report stays bit-identical to the cold serial
// reference at every lanes × workers combination, and single-core
// throughput gains ≥10× over the E19 warm-start serial baseline. ----------

func BenchmarkE20_CompiledLanes(b *testing.B) {
	c2 := campaign(b, true)
	plan := inject.BuildPlan(c2.an, c2.golden, inject.PlanConfig{TransientPerZone: 2, PermanentPerZone: 1, Seed: 1})
	plan = append(plan, inject.WidePlan(c2.an, c2.golden, 12, 2)...)
	// Same deterministic uniform injection-cycle spread as E19, so the
	// speedup composes with (and is measured against) the warm start.
	cycles := c2.golden.Trace.Cycles()
	for i := range plan {
		plan[i].Cycle = i * (cycles - 1) / max(len(plan)-1, 1)
	}

	coldTgt := *c2.target // never mutate the shared cached fixture
	warmTgt := *c2.target
	warmTgt.SnapshotEvery = 16
	warmGolden, err := warmTgt.RunGolden(c2.golden.Trace)
	if err != nil {
		b.Fatal(err)
	}
	laneTgt := warmTgt
	laneTgt.Lanes = 64

	coldRep, err := coldTgt.Run(c2.golden, plan)
	if err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	if _, err := warmTgt.Run(warmGolden, plan); err != nil {
		b.Fatal(err)
	}
	warmSerial := time.Since(start) // the E19 baseline this must beat
	start = time.Now()
	laneRep, err := laneTgt.Run(warmGolden, plan)
	if err != nil {
		b.Fatal(err)
	}
	laneSerial := time.Since(start)
	if !reflect.DeepEqual(coldRep, laneRep) {
		b.Fatal("64-lane report differs from cold serial report")
	}
	// Byte-identity across the full lanes × workers acceptance matrix
	// against the cold serial reference.
	for _, lanes := range []int{1, 8, 64} {
		for _, workers := range []int{1, 2, 4, 8} {
			tgt := laneTgt
			tgt.Lanes = lanes
			tgt.Workers = workers
			rep, err := tgt.Run(warmGolden, plan)
			if err != nil {
				b.Fatal(err)
			}
			if !reflect.DeepEqual(coldRep, rep) {
				b.Fatalf("lanes=%d workers=%d: report differs from cold serial", lanes, workers)
			}
		}
	}
	speedup := warmSerial.Seconds() / laneSerial.Seconds()
	once("E20", func() {
		fmt.Printf("\n[E20] compiled 64-lane kernel: %d experiments, warm serial %.2fs vs 64-lane %.3fs\n",
			len(plan), warmSerial.Seconds(), laneSerial.Seconds())
		fmt.Printf("[E20] — %.1fx single-core over the E19 warm-start baseline (target ≥10x;\n", speedup)
		fmt.Printf("[E20] reports bit-identical at lanes 1,8,64 × workers 1,2,4,8)\n")
	})
	for _, mode := range []struct {
		name string
		tgt  *inject.Target
	}{
		{"warm-serial", &warmTgt},
		{"lanes=64", &laneTgt},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mode.tgt.Run(warmGolden, plan); err != nil {
					b.Fatal(err)
				}
			}
			perExp := b.Elapsed().Seconds() / float64(b.N*len(plan))
			b.ReportMetric(1/perExp, "exp/s")
		})
	}
	b.ReportMetric(speedup, "speedup")
}

// ---------- E23: span-tracing overhead and neutrality — the campaign
// runs once bare and once with a live tracer journaling every span
// (campaign root, golden, batch, exp, checkpoint) to a discarded sink
// under the wall clock; the report must stay identical and the wall
// cost within noise (<2%), so tracing can stay on in production fleets. ----------

func BenchmarkE23_TracingOverhead(b *testing.B) {
	c2 := campaign(b, true)
	plan := inject.BuildPlan(c2.an, c2.golden, inject.PlanConfig{TransientPerZone: 2, PermanentPerZone: 1, Seed: 1})
	plan = append(plan, inject.WidePlan(c2.an, c2.golden, 12, 2)...)

	// A fresh traced hub per run: journal to io.Discard under the wall
	// clock, root span set so every campaign span lands in the journal.
	tracedHub := func() (*telemetry.Campaign, func()) {
		j := telemetry.NewJournal(io.Discard, telemetry.SystemClock)
		tel := telemetry.NewCampaign(nil, nil)
		tel.Tracer = telemetry.NewTracer(j, "bench", telemetry.TraceID("e23"))
		root := tel.StartSpan("campaign")
		tel.SetTraceRoot(root)
		return tel, func() {
			root.End()
			if err := j.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
	runWith := func(tel *telemetry.Campaign) *inject.Report {
		tgt := *c2.target // never mutate the shared cached fixture
		tgt.Telemetry = tel
		rep, err := tgt.Run(c2.golden, plan)
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	// Warm both paths, check neutrality, then time alternating rounds so
	// the comparison shares cache and GC state (the E18 protocol).
	ref := runWith(nil)
	{
		tel, done := tracedHub()
		if rep := runWith(tel); !reflect.DeepEqual(ref, rep) {
			b.Fatal("traced report differs from bare report")
		}
		done()
	}
	const rounds = 5
	bareSec, tracedSec := 0.0, 0.0
	for i := 0; i < rounds; i++ {
		start := time.Now()
		runWith(nil)
		bareSec += time.Since(start).Seconds()
		tel, done := tracedHub()
		start = time.Now()
		runWith(tel)
		tracedSec += time.Since(start).Seconds()
		done()
	}
	bareSec /= rounds
	tracedSec /= rounds
	overheadPct := 100 * (tracedSec - bareSec) / bareSec
	once("E23", func() {
		fmt.Printf("\n[E23] span tracing overhead (journal to discarded sink, wall clock):\n")
		fmt.Printf("[E23] bare %.3fs vs traced %.3fs per campaign — overhead %+.2f%% (target <2%%)\n",
			bareSec, tracedSec, overheadPct)
	})
	for _, mode := range []struct {
		name   string
		traced bool
	}{
		{"tracing=off", false},
		{"tracing=on", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if mode.traced {
					tel, done := tracedHub()
					runWith(tel)
					done()
				} else {
					runWith(nil)
				}
			}
			perExp := b.Elapsed().Seconds() / float64(b.N*len(plan))
			b.ReportMetric(1/perExp, "exp/s")
		})
	}
	b.ReportMetric(overheadPct, "overhead%")
}

// ---------- X1 (extension): the fault-robust microcontroller direction —
// lockstep processing unit, same flow, per the paper's conclusion. ----------

func BenchmarkX1_LockstepCPU(b *testing.B) {
	rates := fit.Default()
	assess := func(cfg frcpu.Config) (sff float64, ddf float64) {
		d, err := frcpu.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		a, err := d.Analyze()
		if err != nil {
			b.Fatal(err)
		}
		sff = d.Worksheet(a, rates).Totals().SFF()
		target := d.InjectionTarget(a)
		g, err := target.RunGolden(d.Workload(120))
		if err != nil {
			b.Fatal(err)
		}
		plan := inject.BuildPlan(a, g, inject.PlanConfig{TransientPerZone: 2, PermanentPerZone: 1, Seed: 3})
		rep, err := target.Run(g, plan)
		if err != nil {
			b.Fatal(err)
		}
		det, dang := 0, 0
		for _, zm := range rep.ZoneMeasures(a) {
			det += zm.DangerDet
			dang += zm.DangerDet + zm.DangerUndet
		}
		ddf = 1
		if dang > 0 {
			ddf = float64(det) / float64(dang)
		}
		return sff, ddf
	}
	plainSFF, plainDDF := assess(frcpu.PlainConfig())
	lockSFF, lockDDF := assess(frcpu.LockstepConfig())
	once("X1", func() {
		fmt.Printf("\n[X1] extension — processing unit per the conclusion's 'fault-robust\n")
		fmt.Printf("[X1] microcontrollers': plain core SFF %.4f (measured DDF %.2f) vs dual-core\n", plainSFF, plainDDF)
		fmt.Printf("[X1] lockstep SFF %.4f (measured DDF %.2f)\n", lockSFF, lockDDF)
	})
	if lockSFF <= plainSFF || lockDDF <= plainDDF {
		b.Fatalf("lockstep does not dominate: SFF %.4f<=%.4f or DDF %.2f<=%.2f",
			lockSFF, plainSFF, lockDDF, plainDDF)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := frcpu.Build(frcpu.LockstepConfig())
		a, _ := d.Analyze()
		_ = d.Worksheet(a, rates).Totals()
	}
	b.ReportMetric(lockSFF*100, "lockstepSFF%")
	b.ReportMetric(plainSFF*100, "plainSFF%")
}

// ---------- X2 (extension): netlist interchange — write the codec to
// structural Verilog, parse it back, verify the flow still runs. ----------

func BenchmarkX2_VerilogInterchange(b *testing.B) {
	n, err := memsys.BuildCodecBench(memsys.V2Config())
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		b.Fatal(err)
	}
	src := buf.Bytes()
	p, err := netlist.ParseVerilog(bytes.NewReader(src))
	if err != nil {
		b.Fatal(err)
	}
	a1, _ := zones.Extract(n, zones.DefaultConfig())
	a2, _ := zones.Extract(p, zones.DefaultConfig())
	once("X2", func() {
		fmt.Printf("\n[X2] extension — Verilog interchange: %d bytes emitted; zone extraction\n", len(src))
		fmt.Printf("[X2] on the re-parsed netlist finds %d zones (original %d)\n",
			len(a2.Zones), len(a1.Zones))
	})
	if len(a2.Zones) != len(a1.Zones) {
		b.Fatalf("zones drifted: %d vs %d", len(a2.Zones), len(a1.Zones))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netlist.ParseVerilog(bytes.NewReader(src)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(src)), "bytes")
}

// ---------- X3 (extension): Monte Carlo mission simulation — empirical
// SFF with rate-weighted fault arrivals vs the analytical worksheet. ----------

func BenchmarkX3_MissionSimulation(b *testing.B) {
	c2 := campaign(b, true)
	res, err := mission.Run(c2.target, c2.golden, c2.sheet, 200, 11)
	if err != nil {
		b.Fatal(err)
	}
	analytic := c2.sheet.Totals().SFF()
	once("X3", func() {
		fmt.Printf("\n[X3] extension — rate-weighted Monte Carlo missions: empirical %s\n", res)
		fmt.Printf("[X3] vs analytical SFF %.4f — interval brackets or exceeds the sheet: %v\n",
			analytic, res.SFFHigh >= analytic-0.05)
	})
	if res.SFFHigh < analytic-0.05 {
		b.Fatalf("empirical SFF %.4f far below analytic %.4f", res.SFFEmpirical, analytic)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mission.Run(c2.target, c2.golden, c2.sheet, 10, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SFFEmpirical*100, "empSFF%")
	b.ReportMetric(res.LambdaDUEmpirical, "empLambdaDU")
}
