// Package repro is a from-scratch Go reproduction of "Using an
// innovative SoC-level FMEA methodology to design in compliance with
// IEC61508" (Mariani, Boschi, Colucci — DATE 2007).
//
// The library decomposes a gate-level design into sensible zones,
// computes the IEC 61508 worksheet metrics (DC, SFF, claimable SIL),
// and validates the analysis with a simulation-based fault-injection
// environment. The paper's memory sub-system case study — SEC-DED
// coder/decoder, write buffer, scrubbing engine, distributed MPU — is
// implemented gate-level in two variants (v1 ≈ 95 % SFF, v2 ≈ 99.4 %
// SFF / SIL3).
//
// See README.md for the layout, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-vs-measured record. The benchmarks in
// bench_test.go regenerate every reproduced table and figure.
package repro
