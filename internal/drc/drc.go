// Package drc is a static design-rule-check engine for the safety flow:
// it runs a registry of rules over a (Netlist, ZoneSet, Worksheet)
// triple without simulating a single cycle and emits structured,
// deterministically ordered diagnostics.
//
// The paper's flow assumes the synthesized netlist and the FMEA
// spreadsheet are internally consistent before injection ever runs —
// commercial EDA lint and the TÜV assessor enforce that off-stage. This
// package is the in-repo equivalent: the cheap pre-simulation gate that
// catches zone coverage gaps, DC claims above the IEC 61508 technique
// maxima, FIT non-conservation and diagnostic logic that can never
// fire, before a campaign spends a million cycles discovering them.
//
// Rules are grouped in three layers:
//
//   - DRC-Nxxx: netlist structure (cycles, floating or multiply-driven
//     nets, registers that can never load, dead gates, clock/reset nets
//     entering data cones);
//   - DRC-Zxxx: sensible-zone consistency (FIT-leaking unowned gates,
//     unreachable observation points, diagnostics that can never fire,
//     correlated zone pairs, diagnostic-only logic share);
//   - DRC-Wxxx: FMEA worksheet / norm arithmetic (DDF claims above the
//     technique maxima, out-of-range factors, FIT conservation against
//     the netlist composition, zone cross-references, λ-column sums).
package drc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fit"
	"repro/internal/fmea"
	"repro/internal/netlist"
	"repro/internal/zones"
)

// Severity grades a finding.
type Severity uint8

// Severities, least severe first so they order and compare naturally.
const (
	Info Severity = iota
	Warning
	Error
)

var severityNames = [...]string{"info", "warn", "error"}

func (s Severity) String() string {
	if int(s) < len(severityNames) {
		return severityNames[s]
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// ParseSeverity parses "info", "warn"/"warning" or "error".
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(s) {
	case "info":
		return Info, nil
	case "warn", "warning":
		return Warning, nil
	case "error":
		return Error, nil
	}
	return Info, fmt.Errorf("drc: unknown severity %q (want info, warn or error)", s)
}

// Loc pins a finding to a design location. All fields are optional;
// empty fields are omitted from renderings.
type Loc struct {
	Block string `json:"block,omitempty"` // hierarchical block path
	Net   string `json:"net,omitempty"`
	Gate  string `json:"gate,omitempty"` // "g12(AND)"
	FF    string `json:"ff,omitempty"`
	Zone  string `json:"zone,omitempty"`
	Obs   string `json:"obs,omitempty"`
	Row   int    `json:"row,omitempty"` // 1-based worksheet row, 0 = none
}

// String renders the location as a compact path.
func (l Loc) String() string {
	var parts []string
	add := func(k, v string) {
		if v != "" {
			parts = append(parts, k+":"+v)
		}
	}
	add("block", l.Block)
	add("net", l.Net)
	add("gate", l.Gate)
	add("ff", l.FF)
	add("zone", l.Zone)
	add("obs", l.Obs)
	if l.Row > 0 {
		parts = append(parts, fmt.Sprintf("row:%d", l.Row))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// Finding is one diagnostic.
type Finding struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"-"`
	// SeverityName is the JSON form of Severity.
	SeverityName string `json:"severity"`
	Loc          Loc    `json:"loc"`
	Message      string `json:"message"`
	Hint         string `json:"hint,omitempty"`
}

// Layer names the input a rule needs.
type Layer uint8

// Rule layers.
const (
	LayerNetlist Layer = iota
	LayerZones
	LayerWorksheet
)

func (l Layer) String() string {
	switch l {
	case LayerNetlist:
		return "netlist"
	case LayerZones:
		return "zones"
	default:
		return "worksheet"
	}
}

// Rule is one registered check.
type Rule struct {
	ID       string
	Severity Severity // default severity of this rule's findings
	Layer    Layer
	Title    string
	// NeedsZones / NeedsRates mark extra inputs beyond the rule's layer
	// (worksheet rules cross-referencing the zone analysis or the rate
	// calibration). A rule whose inputs are missing is skipped.
	NeedsZones bool
	NeedsRates bool
	check      func(*ctx)
}

// ctx is the per-run rule context.
type ctx struct {
	in   Input
	cfg  Config
	rule *Rule
	out  []Finding
}

// report emits a finding at the rule's default severity.
func (c *ctx) report(loc Loc, msg, hint string) {
	c.reportSev(c.rule.Severity, loc, msg, hint)
}

func (c *ctx) reportSev(sev Severity, loc Loc, msg, hint string) {
	c.out = append(c.out, Finding{
		Rule: c.rule.ID, Severity: sev, SeverityName: sev.String(),
		Loc: loc, Message: msg, Hint: hint,
	})
}

// Input is the triple the engine checks. Netlist is required; Analysis
// and Worksheet are optional — rules needing a missing layer are
// recorded as skipped, not failed.
type Input struct {
	Netlist   *netlist.Netlist
	Analysis  *zones.Analysis
	Worksheet *fmea.Worksheet
	// Rates is the elementary-rate calibration used by the FIT
	// conservation rule; nil skips DRC-W003.
	Rates *fit.Rates
}

// Config tunes thresholds and selects rules.
type Config struct {
	// CorrelationJaccard is the shared-gate Jaccard index above which a
	// register-zone pair is flagged as wide-fault correlated (DRC-Z004).
	CorrelationJaccard float64
	// FITTolerance is the relative deficit tolerated by the FIT
	// conservation check (DRC-W003).
	FITTolerance float64
	// ClockResetNames are substrings (matched case-insensitively against
	// net name tokens) identifying clock/reset distribution nets
	// (DRC-N006).
	ClockResetNames []string
	// MaxPerRule caps findings emitted per rule (0 = unlimited); the
	// overflow is summarized in one extra info finding.
	MaxPerRule int
	// Rules, when non-empty, runs only the listed rule IDs. Skip drops
	// the listed IDs. Skip wins over Rules.
	Rules []string
	Skip  []string
}

// DefaultConfig returns the calibrated thresholds.
func DefaultConfig() Config {
	return Config{
		CorrelationJaccard: 0.95,
		FITTolerance:       0.02,
		ClockResetNames:    []string{"clk", "clock", "rst", "reset"},
		MaxPerRule:         25,
	}
}

// Result is one engine run.
type Result struct {
	Design   string    `json:"design"`
	Findings []Finding `json:"findings"`
	// Ran and Skipped list rule IDs by execution status (skipped =
	// deselected or missing input layer).
	Ran     []string `json:"ran"`
	Skipped []string `json:"skipped,omitempty"`
}

// Count returns the number of findings at exactly the given severity.
func (r *Result) Count(sev Severity) int {
	n := 0
	for i := range r.Findings {
		if r.Findings[i].Severity == sev {
			n++
		}
	}
	return n
}

// CountAtLeast returns the number of findings at or above the severity.
func (r *Result) CountAtLeast(sev Severity) int {
	n := 0
	for i := range r.Findings {
		if r.Findings[i].Severity >= sev {
			n++
		}
	}
	return n
}

// Clean reports whether the run produced no error-level findings.
func (r *Result) Clean() bool { return r.Count(Error) == 0 }

// Summary is a one-line severity tally.
func (r *Result) Summary() string {
	return fmt.Sprintf("%d error, %d warn, %d info (%d rules ran, %d skipped)",
		r.Count(Error), r.Count(Warning), r.Count(Info), len(r.Ran), len(r.Skipped))
}

// Registry returns the built-in rules sorted by ID.
func Registry() []Rule {
	rules := make([]Rule, 0, len(registry))
	rules = append(rules, registry...)
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID }) //det:order IDs unique (register panics on duplicates)
	return rules
}

// registry is assembled by the rules_*.go init functions.
var registry []Rule

func register(r Rule) {
	registry = append(registry, r)
}

// Run executes the selected rules over the input. The finding order is
// deterministic: rules execute in ID order and each rule emits findings
// in a structure-derived order, so equal inputs yield byte-equal
// renderings.
func Run(in Input, cfg Config) (*Result, error) {
	if in.Netlist == nil {
		return nil, fmt.Errorf("drc: nil netlist")
	}
	if cfg.CorrelationJaccard <= 0 {
		cfg.CorrelationJaccard = DefaultConfig().CorrelationJaccard
	}
	if cfg.FITTolerance <= 0 {
		cfg.FITTolerance = DefaultConfig().FITTolerance
	}
	if len(cfg.ClockResetNames) == 0 {
		cfg.ClockResetNames = DefaultConfig().ClockResetNames
	}
	only := stringSet(cfg.Rules)
	skip := stringSet(cfg.Skip)
	known := stringSet(nil)
	for _, r := range Registry() {
		known[r.ID] = true
	}
	for _, id := range append(append([]string(nil), cfg.Rules...), cfg.Skip...) {
		if !known[id] {
			return nil, fmt.Errorf("drc: unknown rule %q", id)
		}
	}

	res := &Result{Design: in.Netlist.Name}
	for _, r := range Registry() {
		r := r
		if (len(only) > 0 && !only[r.ID]) || skip[r.ID] {
			res.Skipped = append(res.Skipped, r.ID)
			continue
		}
		if ((r.Layer == LayerZones || r.NeedsZones) && in.Analysis == nil) ||
			(r.Layer == LayerWorksheet && in.Worksheet == nil) ||
			(r.NeedsRates && in.Rates == nil) {
			res.Skipped = append(res.Skipped, r.ID)
			continue
		}
		c := &ctx{in: in, cfg: cfg, rule: &r}
		r.check(c)
		if cfg.MaxPerRule > 0 && len(c.out) > cfg.MaxPerRule {
			dropped := len(c.out) - cfg.MaxPerRule
			c.out = c.out[:cfg.MaxPerRule]
			c.reportSev(Info, Loc{}, fmt.Sprintf("%d further %s finding(s) suppressed (cap %d)",
				dropped, r.ID, cfg.MaxPerRule), "raise Config.MaxPerRule to list all")
		}
		res.Findings = append(res.Findings, c.out...)
		res.Ran = append(res.Ran, r.ID)
	}
	return res, nil
}

func stringSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		if x != "" {
			m[x] = true
		}
	}
	return m
}

// gateLoc renders a gate location.
func gateLoc(n *netlist.Netlist, g *netlist.Gate) Loc {
	return Loc{
		Block: g.Block,
		Gate:  fmt.Sprintf("g%d(%s)", g.ID, g.Type),
		Net:   n.NetName(g.Output),
	}
}
