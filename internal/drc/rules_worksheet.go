package drc

import (
	"fmt"
	"math"

	"repro/internal/fmea"
	"repro/internal/iec61508"
	"repro/internal/zones"
)

func init() {
	register(Rule{
		ID: "DRC-W001", Severity: Error, Layer: LayerWorksheet,
		Title: "DDF claim above the IEC 61508 technique maximum",
		check: checkOverclaimedDDF,
	})
	register(Rule{
		ID: "DRC-W002", Severity: Error, Layer: LayerWorksheet,
		Title: "worksheet factor out of range",
		check: checkRowRanges,
	})
	register(Rule{
		ID: "DRC-W003", Severity: Error, Layer: LayerWorksheet,
		NeedsZones: true, NeedsRates: true,
		Title: "FIT not conserved against the netlist composition",
		check: checkFITConservation,
	})
	register(Rule{
		ID: "DRC-W004", Severity: Error, Layer: LayerWorksheet,
		NeedsZones: true,
		Title: "worksheet / zone cross-reference broken",
		check: checkZoneCrossRefs,
	})
	register(Rule{
		ID: "DRC-W005", Severity: Error, Layer: LayerWorksheet,
		Title: "λ columns do not sum (λD ≠ λDD + λDU)",
		check: checkLambdaArithmetic,
	})
}

const claimEps = 1e-9

// checkOverclaimedDDF flags detected-dangerous-fraction claims above
// the maximum diagnostic coverage IEC 61508 grants the named technique
// (Annex A tables A.2–A.13). AddRow clamps claims on entry, so a
// violation means the worksheet was assembled outside the API or the
// technique was renamed after the claim was set.
func checkOverclaimedDDF(c *ctx) {
	w := c.in.Worksheet
	for ri := range w.Rows {
		r := &w.Rows[ri]
		type claim struct {
			label string
			v     float64
			tech  iec61508.Technique
		}
		claims := []claim{
			{"HW transient", r.DDF.HWTransient, r.TechHW},
			{"HW permanent", r.DDF.HWPermanent, r.TechHW},
			{"SW transient", r.DDF.SWTransient, r.TechSW},
			{"SW permanent", r.DDF.SWPermanent, r.TechSW},
		}
		for _, cl := range claims {
			max := iec61508.MaxDC(cl.tech)
			if cl.v <= max+claimEps {
				continue
			}
			techName := string(cl.tech)
			if techName == "" || cl.tech == iec61508.TechNone {
				techName = "no technique"
			}
			c.report(Loc{Zone: r.ZoneName, Row: ri + 1},
				fmt.Sprintf("%s DDF claim %.3f exceeds the norm maximum %.2f for %s",
					cl.label, cl.v, max, techName),
				"claim at most the Annex A maximum, or cite a technique of a higher DC level")
		}
	}
}

// checkRowRanges flags factors outside their domains: S and ζ are
// fractions in [0,1], λ components are non-negative rates.
func checkRowRanges(c *ctx) {
	w := c.in.Worksheet
	for ri := range w.Rows {
		r := &w.Rows[ri]
		loc := Loc{Zone: r.ZoneName, Row: ri + 1}
		if r.S < 0 || r.S > 1 || math.IsNaN(r.S) {
			c.report(loc, fmt.Sprintf("S factor %.3f outside [0,1]", r.S), "")
		}
		if r.Lifetime < 0 || r.Lifetime > 1 || math.IsNaN(r.Lifetime) {
			c.report(loc, fmt.Sprintf("lifetime ζ %.3f outside [0,1]", r.Lifetime), "")
		}
		if r.Lambda.Transient < 0 || math.IsNaN(r.Lambda.Transient) {
			c.report(loc, fmt.Sprintf("negative transient λ %.4g FIT", r.Lambda.Transient), "")
		}
		if r.Lambda.Permanent < 0 || math.IsNaN(r.Lambda.Permanent) {
			c.report(loc, fmt.Sprintf("negative permanent λ %.4g FIT", r.Lambda.Permanent), "")
		}
	}
}

// checkFITConservation recomputes, from the zone analysis and the
// elementary rates, the FIT the netlist composition assigns to register,
// output, input and critical-net zones (the same ownership-weighted
// arithmetic the worksheet builder uses) and compares it against the
// worksheet's actual λ total over those zones. A deficit beyond the
// tolerance means rows were dropped or rates zeroed — the SoC-level λS/
// λD totals under-count the silicon. Peripheral zones are excluded:
// their rates come from component models (memory arrays), not the gate
// count.
func checkFITConservation(c *ctx) {
	a := c.in.Analysis
	w := c.in.Worksheet
	rates := *c.in.Rates
	eff := fmea.OwnershipWeights(a)

	expected := 0.0
	for zi := range a.Zones {
		z := &a.Zones[zi]
		switch z.Kind {
		case zones.Register:
			ff := float64(len(z.FFs))
			expected += ff*(rates.FFTransient+rates.FFPermanent) +
				eff[zi]*(rates.GateTransient*rates.LatchingFraction+rates.GatePermanent)
		case zones.Output:
			expected += eff[zi] * (rates.GateTransient*rates.LatchingFraction + rates.GatePermanent)
		case zones.Input:
			expected += float64(len(z.Outputs)) * rates.GatePermanent
		case zones.CriticalNet:
			expected += rates.GateTransient*rates.LatchingFraction + rates.GatePermanent
		}
	}
	counted := func(zi int) bool {
		if zi < 0 || zi >= len(a.Zones) {
			return false
		}
		switch a.Zones[zi].Kind {
		case zones.Register, zones.Output, zones.Input, zones.CriticalNet:
			return true
		}
		return false
	}
	actual := 0.0
	for ri := range w.Rows {
		if counted(w.Rows[ri].Zone) {
			actual += w.Rows[ri].Lambda.Total()
		}
	}
	if expected <= 0 {
		return
	}
	rel := (actual - expected) / expected
	switch {
	case rel < -c.cfg.FITTolerance:
		c.report(Loc{},
			fmt.Sprintf("worksheet λ total %.4g FIT is %.1f%% below the netlist composition %.4g FIT: FIT lost",
				actual, -100*rel, expected),
			"a zone was dropped or its rates zeroed; every owned gate and FF must reach a row")
	case rel > c.cfg.FITTolerance:
		c.reportSev(Info, Loc{},
			fmt.Sprintf("worksheet λ total %.4g FIT is %.1f%% above the netlist composition %.4g FIT",
				actual, 100*rel, expected),
			"over-accounting is conservative but distorts the criticality ranking")
	}
}

// checkZoneCrossRefs flags rows referencing zones that do not exist (or
// whose name drifted from the analysis), and owning zones with FIT that
// have no row at all.
func checkZoneCrossRefs(c *ctx) {
	a := c.in.Analysis
	w := c.in.Worksheet
	hasRow := make([]bool, len(a.Zones))
	for ri := range w.Rows {
		r := &w.Rows[ri]
		if r.Zone < 0 || r.Zone >= len(a.Zones) {
			c.report(Loc{Zone: r.ZoneName, Row: ri + 1},
				fmt.Sprintf("row references zone %d, but the analysis has %d zones", r.Zone, len(a.Zones)),
				"rebuild the worksheet from the current zone analysis")
			continue
		}
		hasRow[r.Zone] = true
		if r.ZoneName != a.Zones[r.Zone].Name {
			c.report(Loc{Zone: r.ZoneName, Row: ri + 1},
				fmt.Sprintf("row names zone %q but zone %d is %q in the analysis", r.ZoneName, r.Zone, a.Zones[r.Zone].Name),
				"zone IDs shifted since the worksheet was built; rebuild it")
		}
	}
	for zi := range a.Zones {
		z := &a.Zones[zi]
		if hasRow[zi] || !owningKind(z.Kind) {
			continue
		}
		// A rowless owning zone only matters if it actually owns FIT.
		if z.Kind != zones.Peripheral && len(z.FFs) == 0 && len(a.Cones[zi].Gates) == 0 {
			continue
		}
		c.reportSev(Warning, Loc{Zone: z.Name},
			fmt.Sprintf("%s zone %q owns FIT but has no worksheet row", z.Kind, z.Name),
			"an override returned an empty spec set; the zone's failure rate is unaccounted")
	}
}

// checkLambdaArithmetic verifies the λ-column identities on every row
// and on the totals: λDD ≤ λD, λDU = λD − λDD ≥ 0, and SFF ∈ [0,1].
// The identities hold by construction for rows built through AddRow;
// a violation means claims above 1 or negative rates slipped in through
// direct assembly.
func checkLambdaArithmetic(c *ctx) {
	w := c.in.Worksheet
	const eps = 1e-9
	for ri := range w.Rows {
		r := &w.Rows[ri]
		m := r.RowMetrics()
		loc := Loc{Zone: r.ZoneName, Row: ri + 1}
		if m.LambdaDD > m.LambdaD*(1+1e-12)+eps {
			c.report(loc,
				fmt.Sprintf("λDD %.4g exceeds λD %.4g: detected more dangerous failures than exist", m.LambdaDD, m.LambdaD),
				"a DDF claim above 1 slipped past clamping")
		}
		if m.LambdaDU < -eps {
			c.report(loc, fmt.Sprintf("λDU %.4g is negative", m.LambdaDU), "")
		}
		if m.LambdaS < -eps {
			c.report(loc, fmt.Sprintf("λS %.4g is negative", m.LambdaS), "")
		}
	}
	tot := w.Totals()
	if sff := tot.SFF(); math.IsNaN(sff) || sff < 0 || sff > 1+eps {
		c.report(Loc{},
			fmt.Sprintf("SoC-level SFF %.4g outside [0,1]: the λ columns are inconsistent", sff),
			"")
	}
}
