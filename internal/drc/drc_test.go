package drc

import (
	"strings"
	"testing"

	"repro/internal/fit"
	"repro/internal/fmea"
	"repro/internal/netlist"
	"repro/internal/zones"
)

// cleanTriple builds a minimal well-formed design: one register with an
// XOR feedback cone, one functional output, and the generic worksheet
// the builder derives from the analysis. Every rule must stay silent on
// it.
func cleanTriple(t *testing.T) Input {
	t.Helper()
	n := netlist.New("clean")
	din := n.AddInput("din", 1)[0]
	ff, q := n.AddFF("reg[0]", "CORE", din, netlist.InvalidNet, false)
	x := n.AddGate(netlist.XOR, "CORE", q, din)
	n.SetFFD(ff, x)
	n.AddOutput("dout", []netlist.NetID{q})
	a, err := zones.Extract(n, zones.DefaultConfig())
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	rates := fit.Default()
	w := fmea.FromAnalysis(a, rates, nil)
	return Input{Netlist: n, Analysis: a, Worksheet: w, Rates: &rates}
}

// runRule executes exactly one rule over the input.
func runRule(t *testing.T, in Input, id string) *Result {
	t.Helper()
	res, err := Run(in, Config{Rules: []string{id}})
	if err != nil {
		t.Fatalf("run %s: %v", id, err)
	}
	return res
}

// extract wraps zones.Extract for fixtures whose netlist is valid.
func extract(t *testing.T, n *netlist.Netlist) *zones.Analysis {
	t.Helper()
	a, err := zones.Extract(n, zones.DefaultConfig())
	if err != nil {
		t.Fatalf("extract %s: %v", n.Name, err)
	}
	return a
}

// TestRulesFireOnViolation builds, per rule ID, a fixture seeding
// exactly the defect the rule looks for and asserts the rule reports it.
func TestRulesFireOnViolation(t *testing.T) {
	rates := fit.Default()
	cases := []struct {
		rule  string
		build func(t *testing.T) Input
		want  string // substring of the expected message
	}{
		{"DRC-N001", func(t *testing.T) Input {
			n := netlist.New("loop")
			a0 := n.AddInput("a", 1)[0]
			n1 := n.AddNet("n1")
			n2 := n.AddNet("n2")
			n.AddGateTo(netlist.AND, "B", n1, a0, n2)
			n.AddGateTo(netlist.OR, "B", n2, n1, a0)
			n.AddOutput("o", []netlist.NetID{n1})
			return Input{Netlist: n}
		}, "combinational loop"},
		{"DRC-N002", func(t *testing.T) Input {
			n := netlist.New("floating")
			a0 := n.AddInput("a", 1)[0]
			fl := n.AddNet("fl")
			out := n.AddGate(netlist.AND, "B", a0, fl)
			n.AddOutput("o", []netlist.NetID{out})
			return Input{Netlist: n}
		}, "undriven net fl"},
		{"DRC-N003", func(t *testing.T) Input {
			n := netlist.New("multidriven")
			a0 := n.AddInput("a", 1)[0]
			g0 := n.AddGate(netlist.NOT, "B", a0)
			n.AddGate(netlist.BUF, "B", a0)
			// Rewire the second gate onto the first gate's net, the way a
			// buggy netlist writer shorts two drivers together.
			n.Gates[1].Output = g0
			n.AddOutput("o", []netlist.NetID{g0})
			return Input{Netlist: n}
		}, "2 drivers"},
		{"DRC-N004", func(t *testing.T) Input {
			n := netlist.New("stuckff")
			din := n.AddInput("din", 1)[0]
			_, q := n.AddFF("r[0]", "B", din, n.ConstNet(false), false)
			n.AddOutput("o", []netlist.NetID{q})
			return Input{Netlist: n}
		}, "can never load"},
		{"DRC-N005", func(t *testing.T) Input {
			n := netlist.New("deadgate")
			din := n.AddInput("din", 1)[0]
			_, q := n.AddFF("r[0]", "B", din, netlist.InvalidNet, false)
			n.AddGate(netlist.AND, "B", din, q) // output read by nothing
			n.AddOutput("o", []netlist.NetID{q})
			return Input{Netlist: n}
		}, "read by nothing"},
		{"DRC-N006", func(t *testing.T) Input {
			n := netlist.New("clkdata")
			clk := n.AddInput("clk_div", 1)[0]
			din := n.AddInput("din", 1)[0]
			out := n.AddGate(netlist.AND, "B", clk, din)
			n.AddOutput("o", []netlist.NetID{out})
			return Input{Netlist: n}
		}, "clock/reset-named net clk_div"},
		{"DRC-Z001", func(t *testing.T) Input {
			n := netlist.New("unowned")
			din := n.AddInput("din", 1)[0]
			_, q := n.AddFF("r[0]", "B", din, netlist.InvalidNet, false)
			n.AddGate(netlist.AND, "B", din, q) // in no owning cone
			n.AddOutput("o", []netlist.NetID{q})
			return Input{Netlist: n, Analysis: extract(t, n)}
		}, "no register/output/peripheral zone cone"},
		{"DRC-Z002", func(t *testing.T) Input {
			n := netlist.New("deadobs")
			din := n.AddInput("din", 1)[0]
			_, q := n.AddFF("r[0]", "B", din, netlist.InvalidNet, false)
			n.AddOutput("o", []netlist.NetID{q})
			n.AddOutput("tied", []netlist.NetID{n.ConstNet(true)})
			return Input{Netlist: n, Analysis: extract(t, n)}
		}, "unreachable from every sensible zone"},
		{"DRC-Z003", func(t *testing.T) Input {
			n := netlist.New("deadalarm")
			din := n.AddInput("din", 1)[0]
			_, q := n.AddFF("r[0]", "B", din, netlist.InvalidNet, false)
			n.AddOutput("o", []netlist.NetID{q})
			n.AddOutput("alarm_tied", []netlist.NetID{n.ConstNet(false)})
			return Input{Netlist: n, Analysis: extract(t, n)}
		}, "can never fire"},
		{"DRC-Z004", func(t *testing.T) Input {
			n := netlist.New("correlated")
			din := n.AddInput("din", 1)[0]
			s := n.AddGate(netlist.NOT, "B", din)
			_, qa := n.AddFF("ra[0]", "B", s, netlist.InvalidNet, false)
			_, qb := n.AddFF("rb[0]", "B", s, netlist.InvalidNet, false)
			n.AddOutput("oa", []netlist.NetID{qa})
			n.AddOutput("ob", []netlist.NetID{qb})
			return Input{Netlist: n, Analysis: extract(t, n)}
		}, "one wide fault corrupts both"},
		{"DRC-Z005", func(t *testing.T) Input {
			n := netlist.New("diagshare")
			din := n.AddInput("din", 1)[0]
			_, q := n.AddFF("r[0]", "B", din, netlist.InvalidNet, false)
			n.AddOutput("dout", []netlist.NetID{q})
			chk := n.AddGate(netlist.AND, "CHK", q, din)
			n.AddOutput("alarm_x", []netlist.NetID{chk})
			return Input{Netlist: n, Analysis: extract(t, n)}
		}, "feed only diagnostic observation points"},
		{"DRC-S001", func(t *testing.T) Input {
			n := netlist.New("unreachable")
			din := n.AddInput("din", 1)[0]
			_, q := n.AddFF("r[0]", "B", din, netlist.InvalidNet, false)
			// A gate output read by nothing: unlike a register Q (which
			// seeds its own zone's SENS effect set) it reaches no monitor.
			n.AddGate(netlist.AND, "B", din, q)
			n.AddOutput("o", []netlist.NetID{q})
			return Input{Netlist: n, Analysis: extract(t, n)}
		}, "statically Silent"},
		{"DRC-S002", func(t *testing.T) Input {
			n := netlist.New("constlogic")
			din := n.AddInput("din", 1)[0]
			k := n.AddGate(netlist.OR, "B", din, n.ConstNet(true)) // provably 1
			out := n.AddGate(netlist.AND, "B", din, k)
			n.AddOutput("o", []netlist.NetID{out})
			return Input{Netlist: n}
		}, "untestable"},
		{"DRC-S003", func(t *testing.T) Input {
			n := netlist.New("crossblock")
			din := n.AddInput("din", 1)[0]
			x := n.AddGate(netlist.BUF, "BLK_A", din)
			y := n.AddGate(netlist.NOT, "BLK_B", x) // x-SA-v ≡ y-SA-!v across blocks
			_, q := n.AddFF("r[0]", "BLK_B", y, netlist.InvalidNet, false)
			n.AddOutput("o", []netlist.NetID{q})
			return Input{Netlist: n, Analysis: extract(t, n)}
		}, "spans multiple blocks"},
		{"DRC-W001", func(t *testing.T) Input {
			in := cleanTriple(t)
			// Claim coverage with no backing technique — bypasses AddRow's
			// clamp the way a hand-edited spreadsheet would.
			in.Worksheet.Rows[0].DDF.HWTransient = 0.99
			return in
		}, "exceeds the norm maximum"},
		{"DRC-W002", func(t *testing.T) Input {
			in := cleanTriple(t)
			in.Worksheet.Rows[0].S = 1.5
			return in
		}, "outside [0,1]"},
		{"DRC-W003", func(t *testing.T) Input {
			in := cleanTriple(t)
			for ri := range in.Worksheet.Rows {
				in.Worksheet.Rows[ri].Lambda = fit.Contribution{}
			}
			return in
		}, "FIT lost"},
		{"DRC-W004", func(t *testing.T) Input {
			in := cleanTriple(t)
			in.Worksheet.Rows[0].Zone = 99
			return in
		}, "references zone 99"},
		{"DRC-W005", func(t *testing.T) Input {
			in := cleanTriple(t)
			in.Worksheet.Rows = append(in.Worksheet.Rows, fmea.Row{
				Zone: 0, ZoneName: in.Worksheet.Rows[0].ZoneName,
				Spec: fmea.Spec{
					Lambda:   fit.Contribution{Transient: 1},
					Lifetime: 1,
					DDF:      fmea.DDF{HWTransient: 1.5},
				},
			})
			return in
		}, "exceeds"},
	}
	if len(cases) != len(Registry()) {
		t.Fatalf("%d fixtures for %d registered rules", len(cases), len(Registry()))
	}
	_ = rates
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			res := runRule(t, tc.build(t), tc.rule)
			var hit bool
			for i := range res.Findings {
				f := &res.Findings[i]
				if f.Rule != tc.rule {
					t.Errorf("finding from unexpected rule %s: %s", f.Rule, f.Message)
					continue
				}
				if strings.Contains(f.Message, tc.want) {
					hit = true
				}
			}
			if !hit {
				t.Fatalf("rule %s did not fire (want message containing %q); findings: %v",
					tc.rule, tc.want, res.Findings)
			}
		})
	}
}

// TestRulesSilentOnClean runs the full registry over the clean triple:
// no rule may report anything, at any severity.
func TestRulesSilentOnClean(t *testing.T) {
	res, err := Run(cleanTriple(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("clean triple produced findings: %s\n%s", res.Summary(), res.Render())
	}
	if len(res.Ran) != len(Registry()) || len(res.Skipped) != 0 {
		t.Fatalf("ran %d skipped %d, want %d/0", len(res.Ran), len(res.Skipped), len(Registry()))
	}
}

// TestSeverityOrdering pins the severity scale the exit-code threshold
// arithmetic depends on.
func TestSeverityOrdering(t *testing.T) {
	if !(Info < Warning && Warning < Error) {
		t.Fatal("severity scale must order info < warn < error")
	}
	for _, tc := range []struct {
		in   string
		want Severity
	}{{"info", Info}, {"warn", Warning}, {"warning", Warning}, {"ERROR", Error}} {
		got, err := ParseSeverity(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSeverity(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity must reject unknown names")
	}
}

// TestRuleSelection covers -rules/-skip plumbing and unknown-ID errors.
func TestRuleSelection(t *testing.T) {
	in := cleanTriple(t)
	res, err := Run(in, Config{Rules: []string{"DRC-N001", "DRC-W005"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ran) != 2 || len(res.Skipped) != len(Registry())-2 {
		t.Fatalf("ran %v skipped %v", res.Ran, res.Skipped)
	}
	res, err = Run(in, Config{Skip: []string{"DRC-Z004"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.Ran {
		if id == "DRC-Z004" {
			t.Fatal("skipped rule still ran")
		}
	}
	if _, err := Run(in, Config{Rules: []string{"DRC-X999"}}); err == nil {
		t.Fatal("unknown rule ID must be an error")
	}
	if _, err := Run(in, Config{Skip: []string{"bogus"}}); err == nil {
		t.Fatal("unknown skip ID must be an error")
	}
}

// TestMissingLayersSkip asserts rules degrade to skipped — not failed —
// when the zone analysis or worksheet is absent.
func TestMissingLayersSkip(t *testing.T) {
	full := cleanTriple(t)
	res, err := Run(Input{Netlist: full.Netlist}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.Ran {
		if strings.HasPrefix(id, "DRC-Z") || strings.HasPrefix(id, "DRC-W") {
			t.Errorf("rule %s ran without its input layer", id)
		}
	}
	if len(res.Ran) != 7 { // DRC-N001..N006 + DRC-S002
		t.Fatalf("netlist-only run executed %v", res.Ran)
	}
	res, err = Run(Input{Netlist: full.Netlist, Analysis: full.Analysis, Worksheet: full.Worksheet}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.Skipped {
		if id != "DRC-W003" {
			t.Errorf("unexpected skip without rates: %s", id)
		}
	}
}

// TestMaxPerRuleCap asserts the per-rule cap truncates and summarizes.
func TestMaxPerRuleCap(t *testing.T) {
	n := netlist.New("manydead")
	din := n.AddInput("din", 1)[0]
	_, q := n.AddFF("r[0]", "B", din, netlist.InvalidNet, false)
	for i := 0; i < 10; i++ {
		n.AddGate(netlist.AND, "B", din, q)
	}
	n.AddOutput("o", []netlist.NetID{q})
	res, err := Run(Input{Netlist: n}, Config{Rules: []string{"DRC-N005"}, MaxPerRule: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Findings); got != 4 { // 3 kept + 1 overflow note
		t.Fatalf("findings = %d, want 4 (3 capped + summary)", got)
	}
	last := res.Findings[len(res.Findings)-1]
	if last.Severity != Info || !strings.Contains(last.Message, "suppressed") {
		t.Fatalf("missing overflow summary, got %+v", last)
	}
}
