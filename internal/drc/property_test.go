package drc

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/fit"
	"repro/internal/memsys"
	"repro/internal/randckt"
	"repro/internal/zones"
)

// TestRandomCircuitsClean is the property test: a pruned random circuit
// is a well-formed design by construction, so the netlist and zone
// layers must report no error-level findings on it, across seeds. (The
// prune matters: generation leaves dead gates behind, which legitimately
// trip DRC-N005/Z001 — the engine treating those as findings on the
// unpruned form is the behavior cmd/drc -design rand demonstrates.)
func TestRandomCircuitsClean(t *testing.T) {
	cfg := randckt.Default()
	for seed := uint64(1); seed <= 25; seed++ {
		n := randckt.Generate(cfg, seed)
		n.Prune()
		if err := n.Validate(); err != nil {
			t.Fatalf("seed %d: pruned circuit invalid: %v", seed, err)
		}
		a, err := zones.Extract(n, zones.DefaultConfig())
		if err != nil {
			t.Fatalf("seed %d: extract: %v", seed, err)
		}
		res, err := Run(Input{Netlist: n, Analysis: a}, Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Clean() {
			t.Errorf("seed %d: %d error-level finding(s) on a clean random circuit:\n%s",
				seed, res.Count(Error), res.Render())
		}
	}
}

// v2Input assembles the full triple for the protected memory sub-system.
func v2Input(t *testing.T) Input {
	t.Helper()
	d, err := memsys.Build(memsys.V2Config())
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	rates := fit.Default()
	return Input{Netlist: d.N, Analysis: a, Worksheet: d.Worksheet(a, rates), Rates: &rates}
}

// TestV2MemsysGolden pins the engine's behavior on the real v2 design:
// all rules run, zero errors (the design must certify), and the JSON
// rendering is byte-stable across two fully independent runs — the
// guarantee CI and report diffing rely on.
func TestV2MemsysGolden(t *testing.T) {
	run := func() (*Result, []byte) {
		res, err := Run(v2Input(t), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		out, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return res, out
	}
	res1, out1 := run()
	_, out2 := run()
	if !bytes.Equal(out1, out2) {
		t.Fatalf("JSON output not byte-stable across runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", out1, out2)
	}
	if len(res1.Ran) != len(Registry()) || len(res1.Skipped) != 0 {
		t.Fatalf("v2 run executed %d rules, skipped %v", len(res1.Ran), res1.Skipped)
	}
	if !res1.Clean() {
		t.Fatalf("v2 memsys has error-level findings:\n%s", res1.Render())
	}
	// The JSON must round-trip: same finding count, same design name.
	var back Result
	if err := json.Unmarshal(out1, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Design != res1.Design || len(back.Findings) != len(res1.Findings) {
		t.Fatalf("round-trip mismatch: %q/%d vs %q/%d",
			back.Design, len(back.Findings), res1.Design, len(res1.Findings))
	}
}
