package drc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netlist"
)

func init() {
	register(Rule{
		ID: "DRC-N001", Severity: Error, Layer: LayerNetlist,
		Title: "combinational loop",
		check: checkCombLoops,
	})
	register(Rule{
		ID: "DRC-N002", Severity: Error, Layer: LayerNetlist,
		Title: "floating (undriven) net read by logic",
		check: checkFloatingNets,
	})
	register(Rule{
		ID: "DRC-N003", Severity: Error, Layer: LayerNetlist,
		Title: "multiply-driven net",
		check: checkMultiDriven,
	})
	register(Rule{
		ID: "DRC-N004", Severity: Warning, Layer: LayerNetlist,
		Title: "flip-flop can never leave its reset value",
		check: checkStuckFFs,
	})
	register(Rule{
		ID: "DRC-N005", Severity: Warning, Layer: LayerNetlist,
		Title: "dead gate (fanout-free but carries FIT)",
		check: checkDeadGates,
	})
	register(Rule{
		ID: "DRC-N006", Severity: Warning, Layer: LayerNetlist,
		Title: "clock/reset net enters a data cone",
		check: checkClockInData,
	})
}

// structure is the raw netlist scan shared by the N-rules. It is built
// from the exported slices only — deliberately not from the Netlist's
// internal driver map — so the DRC validates what is actually there,
// even for netlists assembled or mutated outside the build API.
type structure struct {
	driverCount []int // per net: gates + FFs + inputs + externals + consts
	read        []bool
}

func scan(n *netlist.Netlist) *structure {
	s := &structure{
		driverCount: make([]int, len(n.Nets)),
		read:        make([]bool, len(n.Nets)),
	}
	drive := func(id netlist.NetID) {
		if id >= 0 && int(id) < len(s.driverCount) {
			s.driverCount[id]++
		}
	}
	read := func(id netlist.NetID) {
		if id >= 0 && int(id) < len(s.read) {
			s.read[id] = true
		}
	}
	for i := range n.Gates {
		drive(n.Gates[i].Output)
		for _, in := range n.Gates[i].Inputs {
			read(in)
		}
	}
	for i := range n.FFs {
		drive(n.FFs[i].Q)
		read(n.FFs[i].D)
		if n.FFs[i].Enable != netlist.InvalidNet {
			read(n.FFs[i].Enable)
		}
	}
	for _, p := range n.Inputs {
		for _, id := range p.Nets {
			drive(id)
		}
	}
	for _, p := range n.Externals {
		for _, id := range p.Nets {
			drive(id)
		}
	}
	if n.Const0 != netlist.InvalidNet {
		drive(n.Const0)
	}
	if n.Const1 != netlist.InvalidNet {
		drive(n.Const1)
	}
	for _, p := range n.Outputs {
		for _, id := range p.Nets {
			read(id)
		}
	}
	for _, id := range n.Kept() {
		read(id)
	}
	return s
}

// checkCombLoops finds strongly connected components in the gate graph
// (gate → gate reading its output). Any SCC of size > 1, or a gate
// feeding itself, is a combinational loop: under the X-pessimistic
// 3-valued evaluation every gate type in the loop can latch or
// oscillate, so the loop is reported regardless of gate types.
func checkCombLoops(c *ctx) {
	n := c.in.Netlist
	readers := make(map[netlist.NetID][]int32, len(n.Nets))
	for i := range n.Gates {
		for _, in := range n.Gates[i].Inputs {
			readers[in] = append(readers[in], int32(i))
		}
	}
	// Iterative Tarjan over gates.
	const unvisited = -1
	index := make([]int32, len(n.Gates))
	low := make([]int32, len(n.Gates))
	onStack := make([]bool, len(n.Gates))
	for i := range index {
		index[i] = unvisited
	}
	var next int32
	var sccStack []int32
	type frame struct {
		v    int32
		edge int
	}
	var sccs [][]int32
	selfLoop := make([]bool, len(n.Gates))
	succ := func(v int32) []int32 { return readers[n.Gates[v].Output] }
	for start := range n.Gates {
		if index[start] != unvisited {
			continue
		}
		frames := []frame{{v: int32(start)}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.edge == 0 {
				index[v] = next
				low[v] = next
				next++
				sccStack = append(sccStack, v)
				onStack[v] = true
			}
			advanced := false
			edges := succ(v)
			for f.edge < len(edges) {
				w := edges[f.edge]
				f.edge++
				if w == v {
					selfLoop[v] = true
				}
				if index[w] == unvisited {
					frames = append(frames, frame{v: w})
					advanced = true
					break
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var comp []int32
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) > 1 || selfLoop[v] {
					sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
					sccs = append(sccs, comp)
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	for _, comp := range sccs {
		names := make([]string, 0, len(comp))
		for _, g := range comp {
			if len(names) == 8 {
				names = append(names, fmt.Sprintf("… %d more", len(comp)-8))
				break
			}
			names = append(names, fmt.Sprintf("g%d(%s)", n.Gates[g].ID, n.Gates[g].Type))
		}
		g0 := &n.Gates[comp[0]]
		c.report(gateLoc(n, g0),
			fmt.Sprintf("combinational loop through %d gate(s): %s", len(comp), strings.Join(names, ", ")),
			"break the loop with a flip-flop or rewrite the feedback as registered state")
	}
}

// checkFloatingNets flags gate/FF/output reads of nets nothing drives.
func checkFloatingNets(c *ctx) {
	n := c.in.Netlist
	s := scan(n)
	bad := func(id netlist.NetID) bool {
		return id < 0 || int(id) >= len(n.Nets) || s.driverCount[id] == 0
	}
	describe := func(id netlist.NetID) string {
		if id < 0 || int(id) >= len(n.Nets) {
			return fmt.Sprintf("nonexistent net %d", id)
		}
		return "undriven net " + n.NetName(id)
	}
	netName := func(id netlist.NetID) string {
		if id < 0 || int(id) >= len(n.Nets) {
			return fmt.Sprintf("n%d", id)
		}
		return n.NetName(id)
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		for pin, in := range g.Inputs {
			if bad(in) {
				loc := gateLoc(n, g)
				loc.Net = netName(in)
				c.report(loc,
					fmt.Sprintf("gate g%d(%s) input %d reads %s", g.ID, g.Type, pin, describe(in)),
					"every read net needs a gate, FF, port, constant or peripheral driver")
			}
		}
	}
	for i := range n.FFs {
		ff := &n.FFs[i]
		if bad(ff.D) {
			c.report(Loc{Block: ff.Block, FF: ff.Name, Net: netName(ff.D)},
				fmt.Sprintf("FF %q D pin reads %s", ff.Name, describe(ff.D)), "")
		}
		if ff.Enable != netlist.InvalidNet && bad(ff.Enable) {
			c.report(Loc{Block: ff.Block, FF: ff.Name, Net: netName(ff.Enable)},
				fmt.Sprintf("FF %q enable pin reads %s", ff.Name, describe(ff.Enable)), "")
		}
	}
	for _, p := range n.Outputs {
		for bit, id := range p.Nets {
			if bad(id) {
				c.report(Loc{Net: netName(id)},
					fmt.Sprintf("output port %q bit %d reads %s", p.Name, bit, describe(id)), "")
			}
		}
	}
}

// checkMultiDriven flags nets with more than one structural driver.
func checkMultiDriven(c *ctx) {
	n := c.in.Netlist
	s := scan(n)
	for id, cnt := range s.driverCount {
		if cnt <= 1 {
			continue
		}
		nid := netlist.NetID(id)
		c.report(Loc{Net: n.NetName(nid)},
			fmt.Sprintf("net %s has %d drivers", n.NetName(nid), cnt),
			"contention is unresolvable in a single-driver gate model; mux the sources")
	}
}

// checkStuckFFs flags registers that can never leave their reset value:
// an enable tied to constant 0, or an enable-less FF whose D samples its
// own Q. In the paper's flow every flip-flop is reached by the implicit
// global reset; a never-loading register is this model's analog of a
// reset-dead safety-path FF — its worksheet rows claim FIT for state
// that cannot exist.
func checkStuckFFs(c *ctx) {
	n := c.in.Netlist
	for i := range n.FFs {
		ff := &n.FFs[i]
		if ff.Enable != netlist.InvalidNet && ff.Enable == n.Const0 && n.Const0 != netlist.InvalidNet {
			c.report(Loc{Block: ff.Block, FF: ff.Name},
				fmt.Sprintf("FF %q enable is tied to constant 0: the register can never load", ff.Name),
				"drop the register or wire a real enable condition")
			continue
		}
		if ff.Enable == netlist.InvalidNet && ff.D == ff.Q {
			c.report(Loc{Block: ff.Block, FF: ff.Name},
				fmt.Sprintf("FF %q D is tied to its own Q with no enable: the register holds its reset value forever", ff.Name),
				"")
		}
	}
}

// checkDeadGates flags gates whose output is read by nothing — dead
// logic that synthesis would sweep but which still carries FIT into the
// zone composition if left in.
func checkDeadGates(c *ctx) {
	n := c.in.Netlist
	s := scan(n)
	for i := range n.Gates {
		g := &n.Gates[i]
		if s.read[g.Output] {
			continue
		}
		c.report(gateLoc(n, g),
			fmt.Sprintf("gate g%d(%s) output %s is read by nothing", g.ID, g.Type, n.NetName(g.Output)),
			"run Prune() before zone extraction, or MarkKeep the net if a peripheral samples it")
	}
}

// checkClockInData flags nets whose names identify them as clock or
// reset distribution entering combinational data logic. The simulator's
// clock and reset are implicit, so any explicitly modeled clk/rst net
// feeding gates is either a naming accident or a gated-clock structure
// the zone extractor would misclassify as data.
func checkClockInData(c *ctx) {
	n := c.in.Netlist
	match := func(name string) bool {
		for _, tok := range splitNameTokens(name) {
			for _, pat := range c.cfg.ClockResetNames {
				if tok == pat {
					return true
				}
			}
		}
		return false
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		for _, in := range g.Inputs {
			if in < 0 || int(in) >= len(n.Nets) {
				continue
			}
			name := n.Nets[in].Name
			if name == "" || !match(name) {
				continue
			}
			loc := gateLoc(n, g)
			loc.Net = name
			c.report(loc,
				fmt.Sprintf("clock/reset-named net %s feeds data input of gate g%d(%s)", name, g.ID, g.Type),
				"clock gating belongs in the FF enable; rename the net if it is genuinely data")
		}
	}
}

// splitNameTokens splits "wbuf_clk_div[3]" into ["wbuf","clk","div","3"],
// lower-cased.
func splitNameTokens(name string) []string {
	var toks []string
	cur := strings.Builder{}
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return toks
}
