package drc

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/statfault"
)

func init() {
	register(Rule{
		ID: "DRC-S001", Severity: Warning, Layer: LayerZones,
		Title: "fault site unreachable from every monitor",
		check: checkMonitorUnreachable,
	})
	register(Rule{
		ID: "DRC-S002", Severity: Info, Layer: LayerNetlist,
		Title: "untestable stuck-at on a proven-constant net",
		check: checkUntestableConstants,
	})
	register(Rule{
		ID: "DRC-S003", Severity: Info, Layer: LayerZones,
		Title: "collapse class spanning multiple blocks",
		check: checkCrossBlockClasses,
	})
}

// checkMonitorUnreachable flags nets from whose forward cone neither an
// observation point nor any zone's SENS effect set is reachable: a
// fault injected there is Silent by construction, so the site wastes
// campaign budget and its zone's coverage claims rest on nothing.
func checkMonitorUnreachable(c *ctx) {
	sf, err := statfault.New(c.in.Analysis)
	if err != nil {
		return // structural defects are DRC-N territory
	}
	n := c.in.Netlist
	for id := range n.Nets {
		net := netlist.NetID(id)
		if sf.ReachesObs(net) {
			continue
		}
		reachesZone := false
		for z := range c.in.Analysis.Zones {
			if sf.ReachesZoneEffect(net, z) {
				reachesZone = true
				break
			}
		}
		if reachesZone {
			continue
		}
		c.report(Loc{Net: n.NetName(net)},
			fmt.Sprintf("no monitor (observation point or SENS effect set) is reachable from net %s: every fault there is statically Silent", n.NetName(net)),
			"extend an observation point over this cone, or exclude the site from injection plans")
	}
}

// checkUntestableConstants flags nets whose logic provably computes a
// constant (tie cells excluded — a deliberate constant is not a
// defect): a planned stuck-at forcing the proven value is untestable,
// and constant logic in a datapath usually means dead configurability.
func checkUntestableConstants(c *ctx) {
	n := c.in.Netlist
	sf, err := statfault.ForMonitors(n, nil, nil)
	if err != nil {
		return
	}
	for id := range n.Nets {
		net := netlist.NetID(id)
		if net == n.Const0 || net == n.Const1 {
			continue
		}
		v, ok := sf.ConstNet(net)
		if !ok {
			continue
		}
		loc := Loc{Net: n.NetName(net)}
		if g, gok := n.DriverGate(net); gok {
			loc = gateLoc(n, g)
		}
		c.report(loc,
			fmt.Sprintf("net %s provably holds %s in every fault-free run: stuck-at-%s there is untestable", n.NetName(net), boolBitName(v), boolBitName(v)),
			"remove the constant logic or drop the untestable atom from fault universes")
	}
}

// checkCrossBlockClasses flags campaign-exact equivalence classes whose
// member nets are driven from different hierarchical blocks: one
// simulated representative then stands for faults whose FIT belongs to
// different worksheet rows, so per-block FIT apportionment from
// campaign tallies is ambiguous for these sites.
func checkCrossBlockClasses(c *ctx) {
	sf, err := statfault.New(c.in.Analysis)
	if err != nil {
		return
	}
	n := c.in.Netlist
	blockOf := func(at statfault.Atom) (string, bool) {
		id, _ := at.Net()
		if g, ok := n.DriverGate(id); ok {
			return g.Block, true
		}
		if ff, ok := n.DriverFF(id); ok {
			return ff.Block, true
		}
		return "", false
	}
	for _, cl := range sf.Classes() {
		first, seeded := "", false
		cross := false
		for _, m := range cl.Members {
			b, ok := blockOf(m)
			if !ok {
				continue
			}
			if !seeded {
				first, seeded = b, true
				continue
			}
			if b != first {
				cross = true
				break
			}
		}
		if !cross {
			continue
		}
		repNet, repV := cl.Rep.Net()
		c.report(Loc{Block: first, Net: n.NetName(repNet)},
			fmt.Sprintf("equivalence class of %s/SA%s spans multiple blocks (%d members): one representative's verdict stands for faults billed to different FIT rows", n.NetName(repNet), boolBitName(repV), len(cl.Members)),
			"apportion the class FIT across member blocks, or keep per-block members uncollapsed in FIT-sensitive campaigns")
	}
}

func boolBitName(v bool) string {
	if v {
		return "1"
	}
	return "0"
}
