package drc

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/zones"
)

func init() {
	register(Rule{
		ID: "DRC-Z001", Severity: Error, Layer: LayerZones,
		Title: "gate owned by no sensible zone (FIT leakage)",
		check: checkUnownedGates,
	})
	register(Rule{
		ID: "DRC-Z002", Severity: Warning, Layer: LayerZones,
		Title: "functional observation point unreachable from every zone",
		check: checkUnreachableFunctionalObs,
	})
	register(Rule{
		ID: "DRC-Z003", Severity: Error, Layer: LayerZones,
		Title: "diagnostic observation point that can never fire",
		check: checkDeadDiagnostics,
	})
	register(Rule{
		ID: "DRC-Z004", Severity: Warning, Layer: LayerZones,
		Title: "zone pair with wide-fault cone correlation",
		check: checkCorrelatedZones,
	})
	register(Rule{
		ID: "DRC-Z005", Severity: Info, Layer: LayerZones,
		Title: "diagnostic-only logic share",
		check: checkDiagnosticOnlyShare,
	})
}

// owningKind reports whether the zone kind participates in FIT
// ownership (mirrors fmea.OwnershipWeights: sub-block and critical-net
// zones overlap register cones by construction and would double-count).
func owningKind(k zones.Kind) bool {
	return k == zones.Register || k == zones.Output || k == zones.Peripheral
}

// checkUnownedGates flags gates contained in no owning zone's fan-in
// cone: their failure rate appears in no worksheet row, so the SoC-level
// λ totals silently under-count — FIT leakage.
func checkUnownedGates(c *ctx) {
	a := c.in.Analysis
	n := c.in.Netlist
	owned := make([]bool, len(n.Gates))
	for zi := range a.Zones {
		if !owningKind(a.Zones[zi].Kind) {
			continue
		}
		for _, g := range a.Cones[zi].Gates {
			if int(g) < len(owned) {
				owned[g] = true
			}
		}
	}
	for i := range n.Gates {
		if owned[i] {
			continue
		}
		g := &n.Gates[i]
		c.report(gateLoc(n, g),
			fmt.Sprintf("gate g%d(%s) sits in no register/output/peripheral zone cone: its FIT reaches no worksheet row", g.ID, g.Type),
			"add an owning zone (output port, peripheral seed or register) over this logic, or prune it")
	}
}

// checkUnreachableFunctionalObs flags functional observation points no
// zone failure can ever reach, directly or through migration: they
// observe nothing and inflate the campaign's observation surface.
func checkUnreachableFunctionalObs(c *ctx) {
	a := c.in.Analysis
	for oi := range a.Obs {
		if a.Obs[oi].Kind != zones.Functional {
			continue
		}
		if obsReached(a, oi) {
			continue
		}
		c.report(Loc{Obs: a.Obs[oi].Name},
			fmt.Sprintf("functional observation point %q is unreachable from every sensible zone", a.Obs[oi].Name),
			"check the port wiring; an unreachable output usually means a cone was severed")
	}
}

// checkDeadDiagnostics flags diagnostic observation points (alarms) no
// zone failure can reach: a diagnostic that can never fire. Worksheet
// DDF claims backed by such an alarm are structurally void, which is
// why this is error-level while the functional variant is a warning.
func checkDeadDiagnostics(c *ctx) {
	a := c.in.Analysis
	for oi := range a.Obs {
		if a.Obs[oi].Kind != zones.Diagnostic {
			continue
		}
		if obsReached(a, oi) {
			continue
		}
		c.report(Loc{Obs: a.Obs[oi].Name},
			fmt.Sprintf("diagnostic observation point %q is reachable from no sensible zone: the alarm can never fire", a.Obs[oi].Name),
			"wire the alarm into the checker outputs, or drop the DDF claims that cite it")
	}
}

// obsReached reports whether any zone's main or secondary effects
// include the observation point. The output-port zone auto-extracted
// for the observed port itself is excluded: its effect nets ARE the
// port nets, so it would "reach" the point trivially and mask ports
// severed from the rest of the design.
func obsReached(a *zones.Analysis, oi int) bool {
	obsNets := make(map[netlist.NetID]bool, len(a.Obs[oi].Nets))
	for _, id := range a.Obs[oi].Nets {
		obsNets[id] = true
	}
	for zi := range a.Zones {
		if isObsSelfZone(a, zi, obsNets) {
			continue
		}
		for _, o := range a.MainEffects(zi) {
			if o == oi {
				return true
			}
		}
		for _, o := range a.SecondaryEffects(zi) {
			if o == oi {
				return true
			}
		}
	}
	return false
}

// isObsSelfZone reports whether the zone is the Output zone extracted
// for the observed port: output kind, with every seed among the
// observation point's nets.
func isObsSelfZone(a *zones.Analysis, zi int, obsNets map[netlist.NetID]bool) bool {
	z := &a.Zones[zi]
	if z.Kind != zones.Output || len(z.Seeds) == 0 {
		return false
	}
	for _, id := range z.Seeds {
		if !obsNets[id] {
			return false
		}
	}
	return true
}

// checkCorrelatedZones flags register-zone pairs whose fan-in cones are
// near-identical (Jaccard index of shared cone gates above the
// threshold). Such pairs fail together under a single wide fault — the
// Fig. 2 multiple-failure pattern — which silently defeats any
// redundancy claim built on them.
func checkCorrelatedZones(c *ctx) {
	a := c.in.Analysis
	thr := c.cfg.CorrelationJaccard
	for i := 0; i < len(a.Zones); i++ {
		if a.Zones[i].Kind != zones.Register || len(a.Cones[i].Gates) == 0 {
			continue
		}
		for j := i + 1; j < len(a.Zones); j++ {
			if a.Zones[j].Kind != zones.Register || len(a.Cones[j].Gates) == 0 {
				continue
			}
			shared := a.SharedGates(i, j)
			union := len(a.Cones[i].Gates) + len(a.Cones[j].Gates) - shared
			if union == 0 {
				continue
			}
			jac := float64(shared) / float64(union)
			if jac < thr {
				continue
			}
			c.report(Loc{Zone: a.Zones[i].Name + " ~ " + a.Zones[j].Name},
				fmt.Sprintf("register zones %q and %q share %d cone gates (Jaccard %.2f >= %.2f): one wide fault corrupts both",
					a.Zones[i].Name, a.Zones[j].Name, shared, jac, thr),
				"physically separate the cones, or rate the pair as a single zone in the wide-fault experiments")
		}
	}
}

// checkDiagnosticOnlyShare reports (info) how much of the gate count
// exists only to feed diagnostics — checker comparators and alarm
// conditioning with no functional reach. The share is legitimate in a
// protected design but must be excluded from workload toggle targets,
// so the engine surfaces it for the coverage bookkeeping.
func checkDiagnosticOnlyShare(c *ctx) {
	a := c.in.Analysis
	n := c.in.Netlist
	if len(n.Gates) == 0 {
		return
	}
	reach := a.FunctionalReachNets()
	count := 0
	for i := range n.Gates {
		out := n.Gates[i].Output
		if int(out) < len(reach) && !reach[out] {
			count++
		}
	}
	if count == 0 {
		return
	}
	c.report(Loc{},
		fmt.Sprintf("%d of %d gates (%.1f%%) feed only diagnostic observation points",
			count, len(n.Gates), 100*float64(count)/float64(len(n.Gates))),
		"expected for checkers; exclude these gates from workload toggle-efficiency targets")
}
