package drc

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/report"
)

// Render produces the aligned text form of the run: the rule catalog
// hit counts and every finding, severest first within stable order.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DRC %s: %s\n", r.Design, r.Summary())
	if len(r.Skipped) > 0 {
		fmt.Fprintf(&b, "skipped: %s\n", strings.Join(r.Skipped, ", "))
	}
	if len(r.Findings) == 0 {
		b.WriteString("no findings\n")
		return b.String()
	}
	b.WriteByte('\n')
	t := report.NewTable("", "severity", "rule", "location", "message")
	for i := range r.Findings {
		f := &r.Findings[i]
		t.AddRow(f.Severity.String(), f.Rule, f.Loc.String(), f.Message)
	}
	b.WriteString(t.Render())
	for i := range r.Findings {
		f := &r.Findings[i]
		if f.Hint != "" {
			fmt.Fprintf(&b, "\nhint [%s]: %s", f.Rule, f.Hint)
		}
	}
	if hasHints(r.Findings) {
		b.WriteByte('\n')
	}
	return b.String()
}

func hasHints(fs []Finding) bool {
	for i := range fs {
		if fs[i].Hint != "" {
			return true
		}
	}
	return false
}

// JSON renders the result as stable, indented JSON: struct field order
// is fixed and finding order is the engine's deterministic order, so
// equal inputs produce byte-equal output.
func (r *Result) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
