// Package xrand is a tiny deterministic xorshift64* PRNG used by every
// randomized component (workload generation, fault-list randomization)
// so that all experiments are reproducible bit-for-bit across runs and
// platforms.
package xrand

// RNG is a xorshift64* generator. The zero value is invalid; use New.
type RNG struct {
	state uint64
}

// New returns a generator seeded deterministically. A zero seed is
// remapped to a fixed non-zero constant (xorshift state must be != 0).
func New(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). Panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bits returns a value with the low `width` bits pseudo-random.
func (r *RNG) Bits(width int) uint64 {
	if width <= 0 {
		return 0
	}
	if width >= 64 {
		return r.Uint64()
	}
	return r.Uint64() & (1<<uint(width) - 1)
}

// Bool returns a pseudo-random boolean.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
