package xrand

import "testing"

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	if New(42).Uint64() == c.Uint64() {
		t.Error("different seeds produced identical first draw")
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestBitsWidth(t *testing.T) {
	r := New(11)
	for i := 0; i < 100; i++ {
		if v := r.Bits(5); v >= 32 {
			t.Fatalf("Bits(5) = %d", v)
		}
	}
	if r.Bits(0) != 0 {
		t.Error("Bits(0) != 0")
	}
	_ = r.Bits(64) // must not panic
	_ = r.Bits(80) // clamped
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestBoolMixes(t *testing.T) {
	r := New(3)
	trues := 0
	for i := 0; i < 1000; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < 400 || trues > 600 {
		t.Errorf("Bool heavily biased: %d/1000 true", trues)
	}
}
