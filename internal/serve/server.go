// Package serve is the campaign-as-a-service layer: a multi-tenant
// assessment daemon wrapping the paper's whole flow (netlist → zones →
// DRC → worksheet → injection → certify) behind an HTTP/JSON API.
//
// Shape: submissions enter a bounded FIFO queue (reject-with-429 on
// overflow) feeding a fixed worker pool; each accepted job runs the
// existing supervised core.Run engine with its own telemetry hub, so
// the /progress snapshot that used to be a process-global observer
// becomes a per-job product endpoint (GET /jobs/{id}/progress), next
// to the job's report and JSONL journal. Finished reports land in a
// content-addressed cache keyed by (design spec, plan config, engine
// version): identical submissions — the common case at fleet scale —
// are answered with the finished byte-identical report from one map
// lookup, never a second core.Run.
//
// Everything a served report contains is byte-identical to the same
// design/plan run through cmd/certify: the daemon adds scheduling,
// caching and observability around the engine, never bytes inside it.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/telemetry"
)

// Config tunes the daemon.
type Config struct {
	// QueueDepth bounds the FIFO submission queue; a submission beyond
	// it is rejected with 429 (0 selects 64). The bound is the
	// backpressure contract: at fleet scale a shed request that retries
	// beats an unbounded queue that grows until the process dies.
	QueueDepth int
	// Workers is the job worker pool size — how many assessments run
	// concurrently (0 selects 1). Per-job engine parallelism is
	// EngineWorkers; the two multiply.
	Workers int
	// EngineWorkers/EngineLanes/EngineCollapse are the core engine
	// throughput knobs applied to every job (byte-neutral; see
	// core.Options).
	EngineWorkers  int
	EngineLanes    int
	EngineCollapse bool
	// CacheCap bounds the content-addressed result cache (entries;
	// 0 selects 256, negative disables caching). Eviction is FIFO by
	// insertion: the cache is an idempotency layer, not an LRU tuned
	// for hit rate.
	CacheCap int
	// JobsCap bounds the in-memory job table (0 selects 1024, negative
	// disables eviction). Past the cap the oldest terminal jobs
	// (done/failed/canceled) are evicted FIFO — their status, report,
	// progress snapshot and journal become 404s, so clients must fetch
	// results within the retention window. Without a bound a
	// long-running daemon retains every submission's campaign hub and
	// journal forever: an eventual OOM even under benign load. Queued
	// and running jobs are never evicted, so the table may transiently
	// exceed the cap by the in-flight count (≤ QueueDepth + Workers).
	JobsCap int
	// Clock drives job timestamps, per-job rate/ETA telemetry and the
	// journal. nil disables wall-clock telemetry (deterministic tests).
	Clock func() time.Time
}

// cacheEntry is one finished assessment in the content-addressed
// cache. The report is the full byte-identity surface; the grading
// bits ride along so a hit can fill the job status without reparsing.
type cacheEntry struct {
	report      string
	targetMet   bool
	conditional bool
	jobID       string // the job that paid for the miss
}

// Server is the multi-tenant assessment daemon: queue, worker pool,
// job table, result cache and metrics registry. Create with New,
// mount Handler on an HTTP server, stop with Drain.
type Server struct {
	cfg Config

	// reg is the daemon-level metrics registry (queue depth, cache
	// hits/misses, stage latencies) — deliberately separate from the
	// per-job campaign hubs, like a coordinator's registry is separate
	// from its workers'.
	reg       *telemetry.Registry
	submitted *telemetry.Counter
	rejected  *telemetry.Counter
	completed *telemetry.Counter
	failed    *telemetry.Counter
	canceled  *telemetry.Counter
	cacheHits *telemetry.Counter
	cacheMiss *telemetry.Counter
	queueLen  *telemetry.Gauge
	running   *telemetry.Gauge
	jobsLive  *telemetry.Gauge
	queueMsH  *telemetry.Histogram
	runMsH    *telemetry.Histogram

	queue chan *Job
	wg    sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string
	cache     map[string]cacheEntry
	cacheFIFO []string
	nextID    int
	draining  bool
}

// New builds the daemon and starts its worker pool.
func New(cfg Config) *Server {
	s := newServer(cfg)
	s.start()
	return s
}

// newServer builds the daemon without starting workers — the seam that
// lets tests drive the queue and run jobs synchronously.
func newServer(cfg Config) *Server {
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.CacheCap == 0 {
		cfg.CacheCap = 256
	}
	if cfg.JobsCap == 0 {
		cfg.JobsCap = 1024
	}
	r := telemetry.NewRegistry()
	s := &Server{
		cfg:       cfg,
		reg:       r,
		submitted: r.Counter("served_jobs_submitted"),
		rejected:  r.Counter("served_jobs_rejected"),
		completed: r.Counter("served_jobs_completed"),
		failed:    r.Counter("served_jobs_failed"),
		canceled:  r.Counter("served_jobs_canceled"),
		cacheHits: r.Counter("served_cache_hits"),
		cacheMiss: r.Counter("served_cache_misses"),
		queueLen:  r.Gauge("served_queue_depth"),
		running:   r.Gauge("served_jobs_running"),
		jobsLive:  r.Gauge("served_jobs_tracked"),
		queueMsH:  r.Histogram("served_queue_wait_ms", 1, 10, 100, 1000, 10_000, 60_000),
		runMsH:    r.Histogram("served_run_ms", 10, 100, 1000, 10_000, 60_000, 600_000),
		queue:     make(chan *Job, cfg.QueueDepth),
		jobs:      map[string]*Job{},
		cache:     map[string]cacheEntry{},
	}
	return s
}

// start spawns the worker pool.
func (s *Server) start() {
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.queueLen.Add(-1)
				s.run(job)
			}
		}()
	}
}

// now samples the configured clock (zero time without one).
func (s *Server) now() time.Time {
	if s.cfg.Clock == nil {
		return time.Time{}
	}
	return s.cfg.Clock()
}

// ErrQueueFull rejects a submission when the bounded queue is at
// capacity; the HTTP layer maps it to 429.
var ErrQueueFull = fmt.Errorf("serve: job queue full")

// ErrDraining rejects a submission during graceful shutdown; the HTTP
// layer maps it to 503.
var ErrDraining = fmt.Errorf("serve: server draining")

// Submit validates, normalizes and enqueues one submission. A cache
// hit returns a job that is born done with the cached byte-identical
// report — no queue slot, no engine time.
func (s *Server) Submit(sub Submission) (*Job, error) {
	sub.normalize()
	if err := sub.validate(); err != nil {
		return nil, err
	}
	key := sub.Key()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.nextID++
	job := &Job{
		ID:        fmt.Sprintf("j%d", s.nextID),
		Sub:       sub,
		Key:       key,
		cancel:    make(chan struct{}),
		state:     StateQueued,
		submitted: s.now(),
		journal:   &journalBuf{},
	}
	job.tel = s.newJobTelemetry(job)
	if ce, ok := s.cache[key]; ok {
		s.finishFromCache(job, ce)
		s.track(job)
		s.mu.Unlock()
		s.submitted.Inc()
		s.cacheHits.Inc()
		return job, nil
	}
	// Reserve the queue slot while still holding the table lock so the
	// accounting (tracked job ↔ queued job) can't diverge. The depth
	// gauge is bumped before the send: a worker's dequeue-side Add(-1)
	// can only run after the send lands, so the published depth never
	// transiently goes negative.
	s.queueLen.Add(1)
	select {
	case s.queue <- job:
	default:
		s.queueLen.Add(-1)
		s.mu.Unlock()
		s.rejected.Inc()
		return nil, ErrQueueFull
	}
	s.track(job)
	s.mu.Unlock()
	s.submitted.Inc()
	s.cacheMiss.Inc()
	return job, nil
}

// track records the job in the table and evicts past JobsCap (caller
// holds s.mu). Eviction happens here because the table only grows on
// track: a job finishing later never pushes it over the cap.
func (s *Server) track(job *Job) {
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.evictJobs()
	s.jobsLive.Set(int64(len(s.jobs)))
}

// evictJobs drops the oldest terminal jobs while the table exceeds
// JobsCap (caller holds s.mu). Queued and running jobs are skipped —
// evicting them would orphan a queue entry or a live engine run — so
// under a burst of in-flight work the table may briefly exceed the cap
// by at most QueueDepth + Workers.
func (s *Server) evictJobs() {
	if s.cfg.JobsCap <= 0 {
		return
	}
	for i := 0; len(s.jobs) > s.cfg.JobsCap && i < len(s.order); {
		j := s.jobs[s.order[i]]
		j.mu.Lock()
		terminal := j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
		j.mu.Unlock()
		if !terminal {
			i++
			continue
		}
		delete(s.jobs, j.ID)
		s.order = append(s.order[:i], s.order[i+1:]...)
	}
}

// finishFromCache marks a job done with a cached result and settles the
// same terminal bookkeeping as an engine-run finish: journal closed (so
// /jobs/{id}/journal serves the flushed JSONL), queue-wait observed and
// the completion counter bumped. Caller holds s.mu for the cache read;
// job.mu is still required because on the dequeue-time hit path the job
// has been visible to pollers since Submit, so a concurrent
// Job.Status/handleReport may be reading these fields.
func (s *Server) finishFromCache(job *Job, ce cacheEntry) {
	now := s.now()
	job.mu.Lock()
	job.state = StateDone
	job.cacheHit = true
	job.report = ce.report
	job.targetMet = ce.targetMet
	job.conditional = ce.conditional
	job.started = now
	job.finished = now
	sub := job.submitted
	job.mu.Unlock()
	if job.tel != nil {
		job.tel.Journal.Close() //nolint:errcheck — in-memory sink cannot fail
	}
	if !now.IsZero() {
		s.queueMsH.Observe(now.Sub(sub).Milliseconds())
	}
	s.completed.Inc()
}

// Job looks a job up by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every tracked job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Registry exposes the daemon metrics registry (the /metrics payload).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// newJobTelemetry builds the per-job observability hub: metrics +
// in-memory JSONL journal + tracer, so every job's /progress snapshot,
// journal and spans are isolated from every other tenant's. The trace
// id derives from the job id and content key — cmd/tracer run over a
// day of fetched job journals sees each job as its own trace.
func (s *Server) newJobTelemetry(job *Job) *telemetry.Campaign {
	j := telemetry.NewJournal(job.journal, s.cfg.Clock)
	tel := telemetry.NewCampaign(j, s.cfg.Clock)
	tel.Tracer = telemetry.NewTracer(j, "served/"+job.ID,
		telemetry.TraceID("serve-job", job.ID, job.Key))
	return tel
}

// run executes one dequeued job on the calling worker goroutine.
func (s *Server) run(job *Job) {
	// A job canceled while still queued never touches the engine.
	if job.canceled() {
		s.finish(job, StateCanceled, "", false, false, "canceled while queued")
		return
	}
	// A duplicate that queued behind its twin is served from the cache
	// filled in the meantime — the second identical submission costs a
	// map lookup even when both arrived before either finished.
	s.mu.Lock()
	if ce, ok := s.cache[job.Key]; ok {
		s.finishFromCache(job, ce)
		s.mu.Unlock()
		s.cacheHits.Inc()
		return
	}
	s.mu.Unlock()

	start := s.now()
	job.mu.Lock()
	job.state = StateRunning
	job.started = start
	job.mu.Unlock()
	s.running.Add(1)
	defer s.running.Add(-1)
	if !start.IsZero() {
		job.mu.Lock()
		sub := job.submitted
		job.mu.Unlock()
		s.queueMsH.Observe(start.Sub(sub).Milliseconds())
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-job.cancel
		cancel()
	}()
	defer job.Cancel() // unblocks the forwarder; idempotent

	dut, err := job.Sub.dut()
	if err != nil {
		s.finish(job, StateFailed, "", false, false, err.Error())
		return
	}
	opts := job.Sub.options()
	opts.Telemetry = job.tel
	opts.Ctx = ctx
	opts.Workers = s.cfg.EngineWorkers
	opts.Lanes = s.cfg.EngineLanes
	opts.Collapse = s.cfg.EngineCollapse

	// The whole assessment runs under one "job" root span, so a fleet
	// trace over fetched job journals attributes queue wait and engine
	// phases per tenant submission.
	root := job.tel.Tracer.StartAttrs("job", telemetry.Span{}, func(e *telemetry.Enc) {
		e.Str("job", job.ID)
		e.Str("design", job.Sub.Design)
		e.Str("key", job.Key)
	})
	job.tel.SetTraceRoot(root)

	as, err := core.Run(dut, opts)
	end := s.now()
	if !end.IsZero() && !start.IsZero() {
		s.runMsH.Observe(end.Sub(start).Milliseconds())
	}
	switch {
	case err == nil:
		report := as.Report()
		s.storeCache(job, report, as.TargetMet, !as.DRCClean() || !as.CampaignHealthy())
		root.EndOutcome("done")
		s.finish(job, StateDone, report, as.TargetMet, !as.DRCClean() || !as.CampaignHealthy(), "")
	case job.canceled() || ctx.Err() != nil || errors.Is(err, inject.ErrCampaignInterrupted):
		root.EndOutcome("canceled")
		s.finish(job, StateCanceled, "", false, false, err.Error())
	default:
		root.EndOutcome("failed")
		s.finish(job, StateFailed, "", false, false, err.Error())
	}
}

// storeCache inserts a finished report under the job's content key,
// evicting the oldest entry past CacheCap.
func (s *Server) storeCache(job *Job, report string, targetMet, conditional bool) {
	if s.cfg.CacheCap < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cache[job.Key]; !ok {
		s.cache[job.Key] = cacheEntry{
			report: report, targetMet: targetMet, conditional: conditional, jobID: job.ID,
		}
		s.cacheFIFO = append(s.cacheFIFO, job.Key)
		for len(s.cacheFIFO) > s.cfg.CacheCap {
			delete(s.cache, s.cacheFIFO[0])
			s.cacheFIFO = s.cacheFIFO[1:]
		}
	}
}

// finish pins the job's terminal state and closes its journal (which
// flushes the buffered JSONL so /jobs/{id}/journal serves the full
// stream).
func (s *Server) finish(job *Job, state, report string, targetMet, conditional bool, errMsg string) {
	job.mu.Lock()
	job.state = state
	job.report = report
	job.targetMet = targetMet
	job.conditional = conditional
	if state != StateDone {
		job.errMsg = errMsg
	}
	if job.started.IsZero() {
		job.started = job.submitted
	}
	job.finished = s.now()
	job.mu.Unlock()
	if job.tel != nil {
		job.tel.Journal.Close() //nolint:errcheck — in-memory sink cannot fail
	}
	switch state {
	case StateDone:
		s.completed.Inc()
	case StateCanceled:
		s.canceled.Inc()
	default:
		s.failed.Inc()
	}
}

// Drain stops accepting submissions, lets the queue empty and every
// running job finish, and returns once the pool is idle — the SIGTERM
// path of cmd/served. A zero timeout waits forever; on timeout the
// remaining jobs keep their non-terminal states and Drain reports the
// stragglers.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if timeout <= 0 {
		<-done
		return nil
	}
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("serve: drain timed out after %v with jobs still running", timeout)
	}
}
