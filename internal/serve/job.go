package serve

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/frcpu"
	"repro/internal/iec61508"
	"repro/internal/inject"
	"repro/internal/memsys"
	"repro/internal/telemetry"
)

// EngineVersion labels the assessment engine generation inside the
// result-cache key. A cached report is only byte-valid within one
// engine generation, so bump this with any change that can alter
// report bytes (new worksheet columns, changed plan generation, ...).
const EngineVersion = "e24"

// Submission is the POST /jobs payload: the campaign-defining design
// spec (the dist.Spec fields), the inject.PlanConfig knobs and the
// grading knobs of core.Options. Zero-valued fields take the
// cmd/certify defaults after normalization, so {"design":"v2",
// "validate":true} grades the paper's memory subsystem exactly as
// `certify -design v2 -validate` does — byte for byte.
type Submission struct {
	// Design selects the DUT: "v1", "v2", "cpu" or "cpu-lockstep".
	Design string `json:"design"`
	// AddrWidth and Words shape the memory designs and their March
	// workload (ignored by the CPU designs).
	AddrWidth int `json:"addr_width,omitempty"`
	Words     int `json:"words,omitempty"`
	// Transient/Permanent are per-zone experiment counts; Wide is the
	// wide/global experiment count; Seed drives plan construction.
	Transient int    `json:"transient,omitempty"`
	Permanent int    `json:"permanent,omitempty"`
	Wide      int    `json:"wide,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	// TargetSIL/HFT/Tolerance are the grading knobs.
	TargetSIL int     `json:"target_sil,omitempty"`
	HFT       int     `json:"hft,omitempty"`
	Tolerance float64 `json:"tolerance,omitempty"`
	// Validate runs the full fault-injection validation (the slow,
	// campaign-bearing half of the flow).
	Validate bool `json:"validate,omitempty"`
}

// normalize fills the cmd/certify defaults into zero fields. It runs
// before the cache key is computed, so an explicit {"addr_width":8}
// and an omitted addr_width are the same submission — and the same
// cache entry.
func (s *Submission) normalize() {
	if s.AddrWidth == 0 {
		s.AddrWidth = 8
	}
	if s.Words == 0 {
		s.Words = 8
	}
	if s.Transient == 0 {
		s.Transient = 1
	}
	if s.Permanent == 0 {
		s.Permanent = 1
	}
	if s.Wide == 0 {
		s.Wide = core.DefaultOptions().WideFaults
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.TargetSIL == 0 {
		s.TargetSIL = int(iec61508.SIL3)
	}
	if s.Tolerance == 0 {
		s.Tolerance = core.DefaultOptions().Tolerance
	}
}

// validate bounds every knob. The daemon is multi-tenant: one oversized
// submission must not be able to pin a worker for hours, so the shape
// parameters are clamped to the scale the case studies exercise.
func (s *Submission) validate() error {
	switch s.Design {
	case "v1", "v2", "cpu", "cpu-lockstep":
	case "":
		return fmt.Errorf("serve: submission needs a design (v1, v2, cpu or cpu-lockstep)")
	default:
		return fmt.Errorf("serve: unknown design %q (want v1, v2, cpu or cpu-lockstep)", s.Design)
	}
	check := func(name string, v, lo, hi int) error {
		if v < lo || v > hi {
			return fmt.Errorf("serve: %s %d out of range [%d, %d]", name, v, lo, hi)
		}
		return nil
	}
	for _, c := range []struct {
		name      string
		v, lo, hi int
	}{
		{"addr_width", s.AddrWidth, 2, 12},
		{"words", s.Words, 1, 256},
		{"transient", s.Transient, 1, 64},
		{"permanent", s.Permanent, 1, 64},
		{"wide", s.Wide, 1, 256},
		{"target_sil", s.TargetSIL, 1, 4},
		{"hft", s.HFT, 0, 2},
	} {
		if err := check(c.name, c.v, c.lo, c.hi); err != nil {
			return err
		}
	}
	if s.Tolerance < 0 || s.Tolerance > 1 {
		return fmt.Errorf("serve: tolerance %g out of range [0, 1]", s.Tolerance)
	}
	return nil
}

// spec maps the campaign-defining fields onto the shared dist.Spec —
// the same canonical identity the distributed coordinator/worker
// handshake is built on.
func (s Submission) spec() dist.Spec {
	return dist.Spec{
		Design: s.Design, AddrWidth: s.AddrWidth, Words: s.Words,
		Transient: s.Transient, Permanent: s.Permanent, Wide: s.Wide,
		Seed: s.Seed,
	}
}

// Key is the submission's content address: an FNV-1a hash over the
// canonical spec rendering (dist.Spec.Key), the grading knobs and the
// engine version. Identical normalized submissions map to the same
// key, which is what lets the daemon serve the common fleet-scale case
// — the same design assessed again — from one map lookup.
func (s Submission) Key() string {
	h := telemetry.TraceID("serve", EngineVersion, s.spec().Key(),
		strconv.Itoa(s.TargetSIL), strconv.Itoa(s.HFT),
		strconv.FormatFloat(s.Tolerance, 'g', -1, 64),
		strconv.FormatBool(s.Validate))
	return fmt.Sprintf("%016x", h)
}

// dut builds the design under test exactly as cmd/certify does, so a
// served report is byte-identical to the CLI's.
func (s Submission) dut() (core.DUT, error) {
	switch s.Design {
	case "v1", "v2":
		cfg := memsys.V1Config()
		if s.Design == "v2" {
			cfg = memsys.V2Config()
		}
		cfg.AddrWidth = s.AddrWidth
		d, err := memsys.Build(cfg)
		if err != nil {
			return nil, err
		}
		f := memsys.NewFlowDUT(d)
		f.ValidationWords = s.Words
		f.Seed = s.Seed
		return f, nil
	case "cpu", "cpu-lockstep":
		cfg := frcpu.PlainConfig()
		if s.Design == "cpu-lockstep" {
			cfg = frcpu.LockstepConfig()
		}
		d, err := frcpu.Build(cfg)
		if err != nil {
			return nil, err
		}
		return frcpu.NewFlowDUT(d), nil
	}
	return nil, fmt.Errorf("serve: unknown design %q", s.Design)
}

// options maps the submission onto core.Options the way cmd/certify
// maps its flags — DefaultOptions plus the submitted knobs.
func (s Submission) options() core.Options {
	opts := core.DefaultOptions()
	opts.TargetSIL = iec61508.SIL(s.TargetSIL)
	opts.HFT = s.HFT
	opts.RunValidation = s.Validate
	opts.Plan = inject.PlanConfig{
		TransientPerZone: s.Transient,
		PermanentPerZone: s.Permanent,
		Seed:             s.Seed,
	}
	opts.WideFaults = s.Wide
	opts.Tolerance = s.Tolerance
	return opts
}

// Job states. A job moves queued → running → done/failed/canceled;
// cache hits are born done.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Job is one accepted submission: its normalized payload, its place in
// the queue, its per-job telemetry hub (the /jobs/{id}/progress
// product endpoint) and eventually its report.
type Job struct {
	ID  string
	Sub Submission
	Key string

	// tel is the per-job observability hub; its snapshot is the
	// /jobs/{id}/progress payload. Immutable after creation.
	tel *telemetry.Campaign
	// journal buffers the job's JSONL run journal (lifecycle events
	// plus tracer spans) in memory for /jobs/{id}/journal.
	journal *journalBuf

	cancel chan struct{} // closed by DELETE /jobs/{id}

	mu          sync.Mutex
	state       string
	cacheHit    bool
	report      string
	errMsg      string
	targetMet   bool
	conditional bool
	submitted   time.Time
	started     time.Time
	finished    time.Time
	cancelOnce  sync.Once
}

// Cancel requests cooperative cancellation. Safe to call repeatedly
// and in any state; a finished job is unaffected.
func (j *Job) Cancel() {
	j.cancelOnce.Do(func() { close(j.cancel) })
}

func (j *Job) canceled() bool {
	select {
	case <-j.cancel:
		return true
	default:
		return false
	}
}

// Status is the JSON shape of GET /jobs/{id} (and the per-job rows of
// GET /jobs).
type Status struct {
	ID          string  `json:"id"`
	State       string  `json:"state"`
	Design      string  `json:"design"`
	Key         string  `json:"key"`
	CacheHit    bool    `json:"cache_hit"`
	TargetMet   bool    `json:"target_met"`
	Conditional bool    `json:"conditional"`
	Error       string  `json:"error,omitempty"`
	QueueSec    float64 `json:"queue_sec"`
	RunSec      float64 `json:"run_sec"`
}

// Status renders the job's current state. now may be zero (no clock):
// the latency fields then stay at their last pinned values.
func (j *Job) Status(now time.Time) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.ID, State: j.state, Design: j.Sub.Design, Key: j.Key,
		CacheHit: j.cacheHit, TargetMet: j.targetMet, Conditional: j.conditional,
		Error: j.errMsg,
	}
	queueEnd, runEnd := j.started, j.finished
	if queueEnd.IsZero() {
		queueEnd = now
	}
	if runEnd.IsZero() {
		runEnd = now
	}
	if !j.submitted.IsZero() && queueEnd.After(j.submitted) {
		st.QueueSec = queueEnd.Sub(j.submitted).Seconds()
	}
	if !j.started.IsZero() && runEnd.After(j.started) {
		st.RunSec = runEnd.Sub(j.started).Seconds()
	}
	return st
}

// journalBuf is a mutex-guarded in-memory sink for a job's JSONL
// journal: the telemetry.Journal writes through it, and the
// /jobs/{id}/journal endpoint reads a consistent copy.
type journalBuf struct {
	mu sync.Mutex
	b  []byte
}

func (w *journalBuf) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.b = append(w.b, p...)
	w.mu.Unlock()
	return len(p), nil
}

// Bytes returns a copy of the journal so far.
func (w *journalBuf) Bytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.b...)
}
