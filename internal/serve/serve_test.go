package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// fastSub is a submission small enough for a unit test: the analytical
// half of the flow only (no injection campaign), on the reduced memory.
func fastSub() Submission {
	return Submission{Design: "v2", AddrWidth: 6, Words: 4}
}

// directReport runs the submission straight through core.Run the way a
// worker would — the byte-identity oracle for served reports.
func directReport(t *testing.T, sub Submission) string {
	t.Helper()
	sub.normalize()
	dut, err := sub.dut()
	if err != nil {
		t.Fatal(err)
	}
	as, err := core.Run(dut, sub.options())
	if err != nil {
		t.Fatal(err)
	}
	return as.Report()
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, Status) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("submit response not a Status: %v\n%s", err, raw)
		}
	}
	return resp, st
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// waitDone polls the job status until it reaches a terminal state.
func waitDone(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		code, body := get(t, ts, "/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d", id, code)
		}
		var st Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status not JSON: %v\n%s", err, body)
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return Status{}
}

// TestServedReportByteIdentical is the acceptance core: a served report
// must be byte-identical to the same submission run directly through
// core.Run (which is exactly what cmd/certify prints), and a second
// identical submission must be answered from the cache without a second
// engine run.
func TestServedReportByteIdentical(t *testing.T) {
	want := directReport(t, fastSub())

	srv := New(Config{Workers: 1, Clock: time.Now})
	defer srv.Drain(0) //nolint:errcheck — test teardown
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, st := postJob(t, ts, `{"design":"v2","addr_width":6,"words":4}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", resp.StatusCode)
	}
	if st.CacheHit {
		t.Fatal("first submission claims a cache hit")
	}
	fin := waitDone(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job finished %s (%s)", fin.State, fin.Error)
	}

	code, report := get(t, ts, "/jobs/"+st.ID+"/report")
	if code != http.StatusOK {
		t.Fatalf("report: status %d", code)
	}
	if string(report) != want {
		t.Fatalf("served report differs from direct core.Run report:\nserved %d bytes, direct %d bytes", len(report), len(want))
	}

	// Identical resubmission (explicit defaults spelled out — the
	// normalization must fold them onto the same content key).
	resp2, st2 := postJob(t, ts, `{"design":"v2","addr_width":6,"words":4,"transient":1,"permanent":1,"seed":1}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: status %d, want 200 (cache hit born done)", resp2.StatusCode)
	}
	if !st2.CacheHit || st2.State != StateDone {
		t.Fatalf("resubmit status = %+v, want done cache hit", st2)
	}
	if st2.Key != st.Key {
		t.Fatalf("normalized keys differ: %s vs %s", st2.Key, st.Key)
	}
	_, report2 := get(t, ts, "/jobs/"+st2.ID+"/report")
	if !bytes.Equal(report2, report) {
		t.Fatal("cached report differs from the original bytes")
	}
	snap := srv.Registry().Snapshot()
	if snap.Counters["served_cache_hits"] != 1 {
		t.Fatalf("served_cache_hits = %d, want 1", snap.Counters["served_cache_hits"])
	}
	if snap.Counters["served_cache_misses"] != 1 {
		t.Fatalf("served_cache_misses = %d, want 1", snap.Counters["served_cache_misses"])
	}

	// Per-job telemetry endpoints: progress snapshot is JSON, journal is
	// non-empty JSONL with the job root span.
	code, prog := get(t, ts, "/jobs/"+st.ID+"/progress")
	if code != http.StatusOK || !json.Valid(prog) {
		t.Fatalf("progress: status %d, valid JSON %v", code, json.Valid(prog))
	}
	code, jr := get(t, ts, "/jobs/"+st.ID+"/journal")
	if code != http.StatusOK || len(jr) == 0 {
		t.Fatalf("journal: status %d, %d bytes", code, len(jr))
	}
	if !bytes.Contains(jr, []byte(`"span"`)) || !bytes.Contains(jr, []byte(`"job"`)) {
		t.Fatalf("journal missing the job span:\n%s", jr)
	}

	// Daemon metrics render under the campaign_ Prometheus prefix.
	code, prom := get(t, ts, "/metrics")
	if code != http.StatusOK || !bytes.Contains(prom, []byte("campaign_served_cache_hits 1")) {
		t.Fatalf("daemon /metrics missing cache-hit counter (status %d):\n%s", code, prom)
	}
}

// TestServedValidationByteIdentical runs the full fault-injection flow
// through the daemon and diffs against the direct engine run — the
// slow, campaign-bearing version of the byte-identity contract.
func TestServedValidationByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation flow is slow")
	}
	sub := Submission{Design: "v2", AddrWidth: 6, Words: 4, Transient: 1, Permanent: 1, Wide: 4, Validate: true}
	want := directReport(t, sub)

	srv := New(Config{Workers: 1, EngineWorkers: 4, Clock: time.Now})
	defer srv.Drain(0) //nolint:errcheck — test teardown
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, st := postJob(t, ts, `{"design":"v2","addr_width":6,"words":4,"transient":1,"permanent":1,"wide":4,"validate":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	fin := waitDone(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job finished %s (%s)", fin.State, fin.Error)
	}
	_, report := get(t, ts, "/jobs/"+st.ID+"/report")
	if string(report) != want {
		t.Fatal("served validation report differs from direct core.Run report")
	}
	if !strings.Contains(string(report), "Validation") {
		t.Fatal("validation section missing from served report")
	}
}

// TestSubmissionValidation rejects malformed payloads with 400 before
// anything reaches the queue.
func TestSubmissionValidation(t *testing.T) {
	srv := newServer(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, body := range []string{
		``,                               // empty
		`{`,                              // truncated JSON
		`{"design":"v9"}`,                // unknown design
		`{}`,                             // missing design
		`{"design":"v2","addr_width":1}`, // out of range
		`{"design":"v2","hft":7}`,        // out of range
		`{"design":"v2","tolerance":2}`,  // out of range
		`{"design":"v2","bogus":1}`,      // unknown field
	} {
		resp, _ := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if n := srv.Registry().Snapshot().Counters["served_jobs_submitted"]; n != 0 {
		t.Fatalf("invalid submissions were accepted: submitted = %d", n)
	}
}

// TestQueueOverflow: with no worker draining the queue, submissions past
// QueueDepth are rejected with ErrQueueFull (the HTTP 429 path).
func TestQueueOverflow(t *testing.T) {
	srv := newServer(Config{QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, err := srv.Submit(Submission{Design: "v2", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := srv.Submit(Submission{Design: "v2", Seed: 2})
	if err != ErrQueueFull {
		t.Fatalf("second submit: err = %v, want ErrQueueFull", err)
	}
	resp, _ := postJob(t, ts, `{"design":"v2","seed":3}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if n := srv.Registry().Snapshot().Counters["served_jobs_rejected"]; n != 2 {
		t.Fatalf("served_jobs_rejected = %d, want 2", n)
	}
}

// TestCancelWhileQueued: DELETE on a queued job cancels it before it
// ever touches the engine.
func TestCancelWhileQueued(t *testing.T) {
	srv := newServer(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	job, err := srv.Submit(fastSub())
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}

	// Drive the worker loop by hand: the canceled job must terminate
	// without an engine run.
	srv.run(<-srv.queue)
	st := job.Status(time.Time{})
	if st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	code, _ := get(t, ts, "/jobs/"+job.ID+"/report")
	if code != http.StatusGone {
		t.Fatalf("report of canceled job: status %d, want 410", code)
	}
	if n := srv.Registry().Snapshot().Counters["served_jobs_canceled"]; n != 1 {
		t.Fatalf("served_jobs_canceled = %d, want 1", n)
	}
}

// TestDuplicateQueuedBehindTwin: two identical submissions accepted
// before either runs — the second is served from the cache its twin
// filled, never a second engine run.
func TestDuplicateQueuedBehindTwin(t *testing.T) {
	srv := newServer(Config{QueueDepth: 2})
	a, err := srv.Submit(fastSub())
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.Submit(fastSub())
	if err != nil {
		t.Fatal(err)
	}
	srv.run(<-srv.queue) // a: real engine run, fills the cache
	srv.run(<-srv.queue) // b: must come back as a cache hit

	sa, sb := a.Status(time.Time{}), b.Status(time.Time{})
	if sa.State != StateDone || sa.CacheHit {
		t.Fatalf("twin a = %+v, want done miss", sa)
	}
	if sb.State != StateDone || !sb.CacheHit {
		t.Fatalf("twin b = %+v, want done cache hit", sb)
	}
	a.mu.Lock()
	ra := a.report
	a.mu.Unlock()
	b.mu.Lock()
	rb := b.report
	b.mu.Unlock()
	if ra == "" || ra != rb {
		t.Fatal("twin reports differ")
	}
	if n := srv.Registry().Snapshot().Counters["served_cache_hits"]; n != 1 {
		t.Fatalf("served_cache_hits = %d, want 1", n)
	}
}

// TestCacheDisabledAndEviction covers the CacheCap knobs.
func TestCacheDisabledAndEviction(t *testing.T) {
	off := newServer(Config{CacheCap: -1})
	j, err := off.Submit(fastSub())
	if err != nil {
		t.Fatal(err)
	}
	off.run(<-off.queue)
	if j.Status(time.Time{}).State != StateDone {
		t.Fatal("run failed")
	}
	if len(off.cache) != 0 {
		t.Fatal("CacheCap<0 must disable caching")
	}

	small := newServer(Config{CacheCap: 1, QueueDepth: 4})
	for seed := uint64(1); seed <= 2; seed++ {
		sub := fastSub()
		sub.Seed = seed
		if _, err := small.Submit(sub); err != nil {
			t.Fatal(err)
		}
		small.run(<-small.queue)
	}
	if len(small.cache) != 1 || len(small.cacheFIFO) != 1 {
		t.Fatalf("cache size = %d fifo = %d, want 1 (FIFO eviction)", len(small.cache), len(small.cacheFIFO))
	}
}

// TestCacheHitBookkeeping: both cache-hit paths — born done at Submit
// and the dequeue-time twin — settle the same terminal bookkeeping as
// an engine-run finish (completion counter, queue-wait observation,
// closed journal) and stay race-free against a concurrent status
// poller (the dequeue-time hit mutates a job that has been visible
// since Submit).
func TestCacheHitBookkeeping(t *testing.T) {
	now := time.Unix(2000, 0)
	srv := newServer(Config{QueueDepth: 2, Clock: func() time.Time { return now }})
	if _, err := srv.Submit(fastSub()); err != nil {
		t.Fatal(err)
	}
	b, err := srv.Submit(fastSub())
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // hammer the visible twin while the worker finishes it
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				b.Status(time.Time{})
			}
		}
	}()
	srv.run(<-srv.queue) // a: engine run, fills the cache
	srv.run(<-srv.queue) // b: dequeue-time cache hit
	close(stop)
	wg.Wait()

	c, err := srv.Submit(fastSub()) // born done at Submit
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Status(time.Time{}); st.State != StateDone || !st.CacheHit {
		t.Fatalf("submit-time hit = %+v, want done cache hit", st)
	}
	snap := srv.Registry().Snapshot()
	if n := snap.Counters["served_jobs_completed"]; n != 3 {
		t.Fatalf("served_jobs_completed = %d, want 3 (cache hits settle completion)", n)
	}
	if n := srv.queueMsH.Count(); n != 3 {
		t.Fatalf("queue-wait observations = %d, want 3 (cache hits observe queue wait)", n)
	}
}

// TestJobTableEviction: past JobsCap the oldest terminal jobs are
// evicted from the table, queued jobs are never evicted, and a
// negative cap disables eviction.
func TestJobTableEviction(t *testing.T) {
	srv := newServer(Config{JobsCap: 2, QueueDepth: 8})
	var ids []string
	for seed := uint64(1); seed <= 3; seed++ {
		sub := fastSub()
		sub.Seed = seed
		j, err := srv.Submit(sub)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
		srv.run(<-srv.queue)
	}
	if _, ok := srv.Job(ids[0]); ok {
		t.Fatalf("job %s still tracked past JobsCap", ids[0])
	}
	for _, id := range ids[1:] {
		if _, ok := srv.Job(id); !ok {
			t.Fatalf("job %s evicted, want retained", id)
		}
	}
	if got := len(srv.Jobs()); got != 2 {
		t.Fatalf("tracked jobs = %d, want JobsCap = 2", got)
	}
	if n := srv.jobsLive.Load(); n != 2 {
		t.Fatalf("served_jobs_tracked = %d, want 2 after eviction", n)
	}

	// Queued jobs are never evicted: with no worker draining the queue
	// the table exceeds the cap by the in-flight count.
	pinned := newServer(Config{JobsCap: 1, QueueDepth: 8})
	for seed := uint64(1); seed <= 3; seed++ {
		sub := fastSub()
		sub.Seed = seed
		if _, err := pinned.Submit(sub); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(pinned.Jobs()); got != 3 {
		t.Fatalf("queued jobs evicted: %d tracked, want 3", got)
	}

	// Negative cap disables eviction entirely.
	keep := newServer(Config{JobsCap: -1, QueueDepth: 8})
	for seed := uint64(1); seed <= 3; seed++ {
		sub := fastSub()
		sub.Seed = seed
		if _, err := keep.Submit(sub); err != nil {
			t.Fatal(err)
		}
		keep.run(<-keep.queue)
	}
	if got := len(keep.Jobs()); got != 3 {
		t.Fatalf("JobsCap<0 evicted: %d tracked, want 3", got)
	}
}

// TestDrain: draining rejects new submissions with 503 and Drain waits
// for the pool to go idle; a second Drain is a no-op.
func TestDrain(t *testing.T) {
	srv := New(Config{Workers: 1, Clock: time.Now})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	job, err := srv.Submit(fastSub())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(time.Minute); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := job.Status(time.Time{}); st.State != StateDone {
		t.Fatalf("queued job after drain = %s, want done (graceful drain finishes work)", st.State)
	}
	if _, err := srv.Submit(fastSub()); err != ErrDraining {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}
	resp, _ := postJob(t, ts, `{"design":"v2"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK || !bytes.Contains(body, []byte("draining")) {
		t.Fatalf("healthz during drain (status %d): %s", code, body)
	}
	if err := srv.Drain(time.Minute); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestHTTPSurface covers the remaining endpoint contracts: unknown job
// 404, report-before-done 409 with Retry-After, job list.
func TestHTTPSurface(t *testing.T) {
	srv := newServer(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _ := get(t, ts, "/jobs/nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", code)
	}
	job, err := srv.Submit(fastSub())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck — drain only
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("report of queued job: status %d Retry-After %q, want 409 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	code, body := get(t, ts, "/jobs")
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	var list []Status
	if err := json.Unmarshal(body, &list); err != nil || len(list) != 1 || list[0].ID != job.ID {
		t.Fatalf("list = %s (err %v)", body, err)
	}
}

// TestSubmissionKeyNormalization: omitted fields and their explicit
// defaults are the same content address; any knob change is a new one.
func TestSubmissionKeyNormalization(t *testing.T) {
	base := Submission{Design: "v2"}
	base.normalize()
	explicit := Submission{Design: "v2", AddrWidth: 8, Words: 8, Transient: 1,
		Permanent: 1, Wide: base.Wide, Seed: 1, TargetSIL: base.TargetSIL,
		Tolerance: base.Tolerance}
	explicit.normalize()
	if base.Key() != explicit.Key() {
		t.Fatalf("explicit defaults re-keyed: %s vs %s", explicit.Key(), base.Key())
	}
	seen := map[string]string{base.Key(): "base"}
	for name, mutate := range map[string]func(*Submission){
		"design":    func(s *Submission) { s.Design = "v1" },
		"addr":      func(s *Submission) { s.AddrWidth = 6 },
		"words":     func(s *Submission) { s.Words = 4 },
		"transient": func(s *Submission) { s.Transient = 2 },
		"permanent": func(s *Submission) { s.Permanent = 2 },
		"wide":      func(s *Submission) { s.Wide = 4 },
		"seed":      func(s *Submission) { s.Seed = 2 },
		"sil":       func(s *Submission) { s.TargetSIL = 2 },
		"hft":       func(s *Submission) { s.HFT = 1 },
		"tolerance": func(s *Submission) { s.Tolerance = 0.5 },
		"validate":  func(s *Submission) { s.Validate = true },
	} {
		sub := base
		mutate(&sub)
		k := sub.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("knob %s collides with %s on key %s", name, prev, k)
		}
		seen[k] = name
	}
}

// TestEngineKnobsByteNeutral: the daemon's engine throughput knobs
// (workers, lanes, collapse) must never change report bytes.
func TestEngineKnobsByteNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three validation campaigns")
	}
	sub := Submission{Design: "v2", AddrWidth: 6, Words: 4, Transient: 1, Permanent: 1, Wide: 4, Validate: true}
	var reports []string
	for _, cfg := range []Config{
		{EngineWorkers: 1},
		{EngineWorkers: 4, EngineLanes: 4},
		{EngineWorkers: 2, EngineCollapse: true},
	} {
		srv := newServer(cfg)
		job, err := srv.Submit(sub)
		if err != nil {
			t.Fatal(err)
		}
		srv.run(<-srv.queue)
		st := job.Status(time.Time{})
		if st.State != StateDone {
			t.Fatalf("cfg %+v: state %s (%s)", cfg, st.State, st.Error)
		}
		job.mu.Lock()
		reports = append(reports, job.report)
		job.mu.Unlock()
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] != reports[0] {
			t.Fatalf("engine knob set %d changed report bytes", i)
		}
	}
}

// TestStatusTiming exercises the Status latency fields with an
// injected deterministic clock.
func TestStatusTiming(t *testing.T) {
	now := time.Unix(1000, 0)
	srv := newServer(Config{Clock: func() time.Time { return now }})
	job, err := srv.Submit(fastSub())
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(3 * time.Second)
	if st := job.Status(now); st.QueueSec != 3 {
		t.Fatalf("queued QueueSec = %v, want 3", st.QueueSec)
	}
	srv.run(<-srv.queue)
	st := job.Status(now.Add(time.Hour)) // terminal: pinned, not live
	if st.QueueSec != 3 || st.RunSec != 0 {
		t.Fatalf("terminal status = %+v, want pinned queue 3s run 0s", st)
	}
	if srv.queueMsH.Count() != 1 {
		t.Fatal("queue-wait histogram not observed")
	}
	if fmt.Sprintf("%s", st.State) != StateDone {
		t.Fatalf("state = %s", st.State)
	}
}
