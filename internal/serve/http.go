package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/telemetry"
)

// maxSubmissionBytes bounds the POST /jobs body; a submission is a
// handful of scalar knobs, so anything bigger is garbage or abuse.
const maxSubmissionBytes = 1 << 20

// Handler mounts the daemon's HTTP API:
//
//	POST   /jobs                submit an assessment (202; 429 on queue overflow)
//	GET    /jobs                list job statuses
//	GET    /jobs/{id}           one job's status
//	GET    /jobs/{id}/progress  live per-job campaign snapshot (telemetry.Snapshot)
//	GET    /jobs/{id}/metrics   per-job metrics (Prometheus text; JSON via Accept)
//	GET    /jobs/{id}/report    the finished report — byte-identical to cmd/certify
//	GET    /jobs/{id}/journal   the job's JSONL run journal (events + tracer spans)
//	DELETE /jobs/{id}           cancel a queued or running job
//	GET    /metrics             daemon metrics (queue, cache, stage latencies)
//	GET    /healthz             liveness + drain state
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.withJob(s.handleStatus))
	mux.HandleFunc("DELETE /jobs/{id}", s.withJob(s.handleCancel))
	mux.HandleFunc("GET /jobs/{id}/progress", s.withJob(s.handleJobTelemetry))
	mux.HandleFunc("GET /jobs/{id}/metrics", s.withJob(s.handleJobTelemetry))
	mux.HandleFunc("GET /jobs/{id}/metrics.json", s.withJob(s.handleJobTelemetry))
	mux.HandleFunc("GET /jobs/{id}/report", s.withJob(s.handleReport))
	mux.HandleFunc("GET /jobs/{id}/journal", s.withJob(s.handleJournal))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.json", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// withJob resolves the {id} path segment, 404ing unknown jobs.
func (s *Server) withJob(h func(http.ResponseWriter, *http.Request, *Job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Job(r.PathValue("id"))
		if !ok {
			http.Error(w, "unknown job", http.StatusNotFound)
			return
		}
		h(w, r, job)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sub Submission
	dec := json.NewDecoder(io.LimitReader(r.Body, maxSubmissionBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sub); err != nil {
		http.Error(w, fmt.Sprintf("bad submission: %v", err), http.StatusBadRequest)
		return
	}
	job, err := s.Submit(sub)
	switch {
	case errors.Is(err, ErrQueueFull):
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st := job.Status(s.now())
	code := http.StatusAccepted
	if st.State == StateDone { // cache hit: born done
		code = http.StatusOK
	}
	writeJSONStatus(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	now := s.now()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status(now))
	}
	writeJSONStatus(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request, job *Job) {
	writeJSONStatus(w, http.StatusOK, job.Status(s.now()))
}

func (s *Server) handleCancel(w http.ResponseWriter, _ *http.Request, job *Job) {
	job.Cancel()
	writeJSONStatus(w, http.StatusOK, job.Status(s.now()))
}

// handleJobTelemetry serves the per-job observer endpoints by mounting
// the same telemetry.CampaignHandler that backs the process-global
// status server — /progress promoted from observer to product, one
// instance per tenant job.
func (s *Server) handleJobTelemetry(w http.ResponseWriter, r *http.Request, job *Job) {
	http.StripPrefix("/jobs/"+job.ID, telemetry.CampaignHandler(job.tel)).ServeHTTP(w, r)
}

func (s *Server) handleReport(w http.ResponseWriter, _ *http.Request, job *Job) {
	st := job.Status(s.now())
	switch st.State {
	case StateDone:
	case StateFailed, StateCanceled:
		http.Error(w, fmt.Sprintf("job %s %s: %s", job.ID, st.State, st.Error), http.StatusGone)
		return
	default:
		w.Header().Set("Retry-After", "1")
		http.Error(w, fmt.Sprintf("job %s is %s", job.ID, st.State), http.StatusConflict)
		return
	}
	job.mu.Lock()
	report := job.report
	job.mu.Unlock()
	// The report is the byte-identity surface: exactly core.Run's
	// Assessment.Report() bytes, no wrapping, no trailing additions.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, report) //nolint:errcheck — client went away
}

func (s *Server) handleJournal(w http.ResponseWriter, _ *http.Request, job *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(job.journal.Bytes()) //nolint:errcheck — client went away
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	if strings.HasSuffix(r.URL.Path, ".json") || strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSONStatus(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheus(w, snap)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	writeJSONStatus(w, http.StatusOK, map[string]any{
		"status":      status,
		"queue_depth": s.queueLen.Load(),
		"running":     s.running.Load(),
	})
}

// writeJSONStatus mirrors telemetry's hardened writeJSON: marshal
// fully before touching the ResponseWriter so an encoding failure is a
// 500, never a truncated 200.
func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, fmt.Sprintf("serve: encode: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n')) //nolint:errcheck — client went away
}
