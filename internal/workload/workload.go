// Package workload generates the stimuli the validation flow injects
// faults under: memory test algorithms (March C-, March X, checkerboard,
// walking ones), random traffic, and application-like access profiles.
//
// A workload is materialized as a Trace: per-cycle assignments to named
// primary-input ports. The same trace drives both the three-valued
// injection simulator and the bit-parallel fault simulator, so measured
// coverage numbers refer to one well-defined stimulus (the paper's
// requirement that Workload, Operational Profile, Fault List and final
// measures are uniquely correlated).
package workload

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/xrand"
)

// Trace is a sequence of input vectors over a fixed set of ports.
type Trace struct {
	Ports []string
	Vecs  [][]uint64

	index map[string]int
}

// NewTrace creates an empty trace over the given ports.
func NewTrace(ports ...string) *Trace {
	t := &Trace{Ports: ports, index: make(map[string]int, len(ports))}
	for i, p := range ports {
		t.index[p] = i
	}
	return t
}

// Cycles returns the trace length.
func (t *Trace) Cycles() int { return len(t.Vecs) }

// Add appends one cycle of port assignments; unnamed ports hold their
// previous value (0 on the first cycle).
func (t *Trace) Add(assign map[string]uint64) {
	vec := make([]uint64, len(t.Ports))
	if len(t.Vecs) > 0 {
		copy(vec, t.Vecs[len(t.Vecs)-1])
	}
	for name, v := range assign {
		i, ok := t.index[name]
		if !ok {
			panic(fmt.Sprintf("workload: trace has no port %q", name))
		}
		vec[i] = v
	}
	t.Vecs = append(t.Vecs, vec)
}

// AddIdle appends n cycles holding the previous values.
func (t *Trace) AddIdle(n int) {
	for i := 0; i < n; i++ {
		t.Add(nil)
	}
}

// Value returns the value of a port at a cycle.
func (t *Trace) Value(cycle int, port string) uint64 {
	return t.Vecs[cycle][t.index[port]]
}

// ApplyTo drives the simulator's primary inputs with the vector of one
// cycle (without clocking).
func (t *Trace) ApplyTo(s *sim.Simulator, cycle int) {
	vec := t.Vecs[cycle]
	for i, port := range t.Ports {
		s.SetInput(port, vec[i])
	}
}

// Concat appends another trace over the same port set.
func (t *Trace) Concat(other *Trace) {
	if len(other.Ports) != len(t.Ports) {
		panic("workload: Concat over different port sets")
	}
	for i := range t.Ports {
		if t.Ports[i] != other.Ports[i] {
			panic("workload: Concat over different port sets")
		}
	}
	t.Vecs = append(t.Vecs, other.Vecs...)
}

// Random returns a trace of uniformly random vectors. widths maps each
// port to its bit width; ports drive fresh random values every cycle.
func Random(rng *xrand.RNG, ports []string, widths map[string]int, cycles int) *Trace {
	t := NewTrace(ports...)
	for c := 0; c < cycles; c++ {
		m := make(map[string]uint64, len(ports))
		for _, p := range ports {
			m[p] = rng.Bits(widths[p])
		}
		t.Add(m)
	}
	return t
}

// MemOpKind distinguishes memory operations.
type MemOpKind uint8

// Read, Write and Idle memory operations.
const (
	OpRead MemOpKind = iota
	OpWrite
	OpIdle
)

// MemOp is one abstract memory access.
type MemOp struct {
	Kind MemOpKind
	Addr uint64
	Data uint64
}

// MarchElementOrder is ascending or descending address order.
type MarchElementOrder uint8

// Address orders for March elements.
const (
	Up MarchElementOrder = iota
	Down
)

// MarchCMinus generates the March C- algorithm over `words` addresses
// with the given data background:
//
//	⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)
//
// Reads are emitted as OpRead (a checker compares data elsewhere);
// "0" is the background pattern, "1" its complement.
func MarchCMinus(words int, background uint64, dataWidth int) []MemOp {
	mask := widthMask(dataWidth)
	b0 := background & mask
	b1 := ^background & mask
	var ops []MemOp
	forEach := func(order MarchElementOrder, f func(addr uint64)) {
		if order == Up {
			for a := 0; a < words; a++ {
				f(uint64(a))
			}
		} else {
			for a := words - 1; a >= 0; a-- {
				f(uint64(a))
			}
		}
	}
	forEach(Up, func(a uint64) { ops = append(ops, MemOp{OpWrite, a, b0}) })
	forEach(Up, func(a uint64) {
		ops = append(ops, MemOp{OpRead, a, b0}, MemOp{OpWrite, a, b1})
	})
	forEach(Up, func(a uint64) {
		ops = append(ops, MemOp{OpRead, a, b1}, MemOp{OpWrite, a, b0})
	})
	forEach(Down, func(a uint64) {
		ops = append(ops, MemOp{OpRead, a, b0}, MemOp{OpWrite, a, b1})
	})
	forEach(Down, func(a uint64) {
		ops = append(ops, MemOp{OpRead, a, b1}, MemOp{OpWrite, a, b0})
	})
	forEach(Down, func(a uint64) { ops = append(ops, MemOp{OpRead, a, b0}) })
	return ops
}

// MarchX generates March X: ⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0).
func MarchX(words int, background uint64, dataWidth int) []MemOp {
	mask := widthMask(dataWidth)
	b0 := background & mask
	b1 := ^background & mask
	var ops []MemOp
	for a := 0; a < words; a++ {
		ops = append(ops, MemOp{OpWrite, uint64(a), b0})
	}
	for a := 0; a < words; a++ {
		ops = append(ops, MemOp{OpRead, uint64(a), b0}, MemOp{OpWrite, uint64(a), b1})
	}
	for a := words - 1; a >= 0; a-- {
		ops = append(ops, MemOp{OpRead, uint64(a), b1}, MemOp{OpWrite, uint64(a), b0})
	}
	for a := 0; a < words; a++ {
		ops = append(ops, MemOp{OpRead, uint64(a), b0})
	}
	return ops
}

// MarchSS generates the March SS algorithm (detects all simple static
// faults including write-disturb and read-destructive ones):
//
//	⇕(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0);
//	⇓(r0,r0,w0,r0,w1); ⇓(r1,r1,w1,r1,w0); ⇕(r0)
func MarchSS(words int, background uint64, dataWidth int) []MemOp {
	mask := widthMask(dataWidth)
	b0 := background & mask
	b1 := ^background & mask
	var ops []MemOp
	element := func(up bool, rd1, wr1, rd2, wr2 uint64) {
		apply := func(a uint64) {
			ops = append(ops,
				MemOp{OpRead, a, rd1}, MemOp{OpRead, a, rd1},
				MemOp{OpWrite, a, wr1},
				MemOp{OpRead, a, rd2}, MemOp{OpWrite, a, wr2})
		}
		if up {
			for a := 0; a < words; a++ {
				apply(uint64(a))
			}
		} else {
			for a := words - 1; a >= 0; a-- {
				apply(uint64(a))
			}
		}
	}
	for a := 0; a < words; a++ {
		ops = append(ops, MemOp{OpWrite, uint64(a), b0})
	}
	element(true, b0, b0, b0, b1)
	element(true, b1, b1, b1, b0)
	element(false, b0, b0, b0, b1)
	element(false, b1, b1, b1, b0)
	for a := 0; a < words; a++ {
		ops = append(ops, MemOp{OpRead, uint64(a), b0})
	}
	return ops
}

// Checkerboard writes alternating patterns then reads them back.
func Checkerboard(words int, dataWidth int) []MemOp {
	mask := widthMask(dataWidth)
	pat := uint64(0x5555555555555555) & mask
	var ops []MemOp
	for a := 0; a < words; a++ {
		d := pat
		if a%2 == 1 {
			d = ^pat & mask
		}
		ops = append(ops, MemOp{OpWrite, uint64(a), d})
	}
	for a := 0; a < words; a++ {
		d := pat
		if a%2 == 1 {
			d = ^pat & mask
		}
		ops = append(ops, MemOp{OpRead, uint64(a), d})
	}
	return ops
}

// WalkingOnes writes and reads a walking-1 pattern at each address.
func WalkingOnes(words int, dataWidth int) []MemOp {
	var ops []MemOp
	for bit := 0; bit < dataWidth; bit++ {
		d := uint64(1) << uint(bit)
		for a := 0; a < words; a++ {
			ops = append(ops, MemOp{OpWrite, uint64(a), d})
		}
		for a := 0; a < words; a++ {
			ops = append(ops, MemOp{OpRead, uint64(a), d})
		}
	}
	return ops
}

// RandomOps generates a random read/write mix over the address space;
// writeFrac in [0,1] is the write probability.
func RandomOps(rng *xrand.RNG, count, words, dataWidth int, writeFrac float64) []MemOp {
	ops := make([]MemOp, count)
	for i := range ops {
		addr := uint64(rng.Intn(words))
		if rng.Float64() < writeFrac {
			ops[i] = MemOp{OpWrite, addr, rng.Bits(dataWidth)}
		} else {
			ops[i] = MemOp{OpRead, addr, 0}
		}
	}
	return ops
}

func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

// MemPorts names the DUT ports a memory-op trace drives. Priv, when
// non-empty, is driven with PrivValue on every access (MPU attribute).
type MemPorts struct {
	Req       string // request strobe, 1 bit
	WE        string // write enable, 1 bit
	Addr      string
	WData     string
	Priv      string
	PrivValue uint64
	// GapCycles idle cycles inserted after each operation (lets a
	// pipelined DUT drain; 0 issues back-to-back).
	GapCycles int
}

// OpsToTrace renders abstract memory operations into a port-level trace.
func OpsToTrace(ops []MemOp, p MemPorts) *Trace {
	ports := []string{p.Req, p.WE, p.Addr, p.WData}
	if p.Priv != "" {
		ports = append(ports, p.Priv)
	}
	t := NewTrace(ports...)
	for _, op := range ops {
		m := map[string]uint64{p.Req: 1, p.WE: 0, p.Addr: op.Addr, p.WData: op.Data}
		switch op.Kind {
		case OpWrite:
			m[p.WE] = 1
		case OpIdle:
			m[p.Req] = 0
		}
		if p.Priv != "" {
			m[p.Priv] = p.PrivValue
		}
		t.Add(m)
		if p.GapCycles > 0 {
			idle := map[string]uint64{p.Req: 0, p.WE: 0}
			for i := 0; i < p.GapCycles; i++ {
				t.Add(idle)
			}
		}
	}
	// Trailing idle so the last response drains.
	t.Add(map[string]uint64{p.Req: 0, p.WE: 0})
	t.Add(nil)
	return t
}
