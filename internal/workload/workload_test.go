package workload

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func TestTraceAddHoldsValues(t *testing.T) {
	tr := NewTrace("a", "b")
	tr.Add(map[string]uint64{"a": 3, "b": 7})
	tr.Add(map[string]uint64{"a": 4})
	tr.AddIdle(2)
	if tr.Cycles() != 4 {
		t.Fatalf("Cycles = %d", tr.Cycles())
	}
	if tr.Value(1, "b") != 7 {
		t.Errorf("b not held: %d", tr.Value(1, "b"))
	}
	if tr.Value(3, "a") != 4 {
		t.Errorf("idle did not hold a: %d", tr.Value(3, "a"))
	}
}

func TestTraceUnknownPortPanics(t *testing.T) {
	tr := NewTrace("a")
	defer func() {
		if recover() == nil {
			t.Error("unknown port did not panic")
		}
	}()
	tr.Add(map[string]uint64{"zz": 1})
}

func TestTraceApplyTo(t *testing.T) {
	n := netlist.New("d")
	a := n.AddInput("a", 4)
	n.AddOutput("y", a)
	s, _ := sim.New(n)
	tr := NewTrace("a")
	tr.Add(map[string]uint64{"a": 9})
	tr.ApplyTo(s, 0)
	s.Eval()
	if v, _ := s.ReadOutput("y"); v != 9 {
		t.Errorf("applied value = %d", v)
	}
}

func TestTraceConcat(t *testing.T) {
	a := NewTrace("p")
	a.Add(map[string]uint64{"p": 1})
	b := NewTrace("p")
	b.Add(map[string]uint64{"p": 2})
	a.Concat(b)
	if a.Cycles() != 2 || a.Value(1, "p") != 2 {
		t.Error("Concat failed")
	}
	c := NewTrace("q")
	defer func() {
		if recover() == nil {
			t.Error("Concat over different ports did not panic")
		}
	}()
	a.Concat(c)
}

func TestRandomTraceDeterministic(t *testing.T) {
	w := map[string]int{"a": 8, "b": 3}
	t1 := Random(xrand.New(1), []string{"a", "b"}, w, 50)
	t2 := Random(xrand.New(1), []string{"a", "b"}, w, 50)
	for c := 0; c < 50; c++ {
		if t1.Value(c, "a") != t2.Value(c, "a") || t1.Value(c, "b") != t2.Value(c, "b") {
			t.Fatal("random trace not deterministic")
		}
		if t1.Value(c, "b") >= 8 {
			t.Fatalf("width not respected: b = %d", t1.Value(c, "b"))
		}
	}
}

func TestMarchCMinusStructure(t *testing.T) {
	words := 8
	ops := MarchCMinus(words, 0, 8)
	// w0*N + 4 elements of (r,w)*N + r0*N = N + 8N + N = 10N
	if len(ops) != 10*words {
		t.Fatalf("March C- length = %d, want %d", len(ops), 10*words)
	}
	// First element: all writes of background.
	for i := 0; i < words; i++ {
		if ops[i].Kind != OpWrite || ops[i].Data != 0 {
			t.Fatalf("op %d = %+v, want write 0", i, ops[i])
		}
	}
	// Second element starts with read at address 0.
	if ops[words].Kind != OpRead || ops[words].Addr != 0 {
		t.Errorf("element 2 start = %+v", ops[words])
	}
	// Fourth element (index 3N..5N) runs descending.
	first := ops[5*words]
	if first.Addr != uint64(words-1) {
		t.Errorf("descending element starts at %d", first.Addr)
	}
	// Data background/complement masked to width.
	for _, op := range ops {
		if op.Data > 0xFF {
			t.Fatalf("data exceeds width: %#x", op.Data)
		}
	}
}

// marchSimulate runs a March sequence against a behavioral memory with an
// injected fault and reports whether any read observes wrong data. This
// is a semantic check: March C- must detect all single stuck-at cells.
func marchDetects(ops []MemOp, faultAddr uint64, stuckBit uint64, stuckVal uint64) bool {
	mem := map[uint64]uint64{}
	apply := func(a uint64) {
		if v, ok := mem[a]; ok && a == faultAddr {
			if stuckVal == 1 {
				mem[a] = v | stuckBit
			} else {
				mem[a] = v &^ stuckBit
			}
		}
	}
	for _, op := range ops {
		switch op.Kind {
		case OpWrite:
			mem[op.Addr] = op.Data
			apply(op.Addr)
		case OpRead:
			if got, ok := mem[op.Addr]; ok && got != op.Data {
				return true
			}
		}
	}
	return false
}

func TestMarchCMinusDetectsStuckAtCells(t *testing.T) {
	ops := MarchCMinus(16, 0, 8)
	for addr := uint64(0); addr < 16; addr++ {
		for bit := 0; bit < 8; bit++ {
			if !marchDetects(ops, addr, 1<<uint(bit), 0) {
				t.Fatalf("March C- missed SA0 at addr %d bit %d", addr, bit)
			}
			if !marchDetects(ops, addr, 1<<uint(bit), 1) {
				t.Fatalf("March C- missed SA1 at addr %d bit %d", addr, bit)
			}
		}
	}
}

func TestMarchXStructure(t *testing.T) {
	ops := MarchX(4, 0, 8)
	// N + 2N + 2N + N = 6N
	if len(ops) != 24 {
		t.Fatalf("March X length = %d, want 24", len(ops))
	}
	if !marchDetects(ops, 2, 0x10, 1) {
		t.Error("March X missed a stuck-at-1 cell")
	}
}

func TestCheckerboard(t *testing.T) {
	ops := Checkerboard(4, 8)
	if len(ops) != 8 {
		t.Fatalf("checkerboard length = %d", len(ops))
	}
	if ops[0].Data == ops[1].Data {
		t.Error("adjacent addresses share pattern")
	}
	if ops[4].Kind != OpRead || ops[4].Data != ops[0].Data {
		t.Error("read-back phase mismatched")
	}
}

func TestWalkingOnes(t *testing.T) {
	ops := WalkingOnes(2, 4)
	if len(ops) != 4*2*2 {
		t.Fatalf("walking ones length = %d", len(ops))
	}
	seen := map[uint64]bool{}
	for _, op := range ops {
		if op.Kind == OpWrite {
			seen[op.Data] = true
		}
	}
	for bit := 0; bit < 4; bit++ {
		if !seen[1<<uint(bit)] {
			t.Errorf("pattern %#x never written", 1<<uint(bit))
		}
	}
}

func TestRandomOps(t *testing.T) {
	rng := xrand.New(3)
	ops := RandomOps(rng, 200, 16, 8, 0.5)
	if len(ops) != 200 {
		t.Fatalf("len = %d", len(ops))
	}
	writes := 0
	for _, op := range ops {
		if op.Addr >= 16 {
			t.Fatalf("addr out of range: %d", op.Addr)
		}
		if op.Kind == OpWrite {
			writes++
			if op.Data > 0xFF {
				t.Fatalf("data out of width: %#x", op.Data)
			}
		}
	}
	if writes < 60 || writes > 140 {
		t.Errorf("write mix off: %d/200", writes)
	}
}

func TestOpsToTrace(t *testing.T) {
	ops := []MemOp{
		{OpWrite, 5, 0xAB},
		{OpRead, 5, 0},
		{OpIdle, 0, 0},
	}
	tr := OpsToTrace(ops, MemPorts{Req: "req", WE: "we", Addr: "addr", WData: "wdata", GapCycles: 1})
	// 3 ops * 2 cycles (op+gap) + 2 trailing idle = 8
	if tr.Cycles() != 8 {
		t.Fatalf("cycles = %d", tr.Cycles())
	}
	if tr.Value(0, "req") != 1 || tr.Value(0, "we") != 1 || tr.Value(0, "addr") != 5 || tr.Value(0, "wdata") != 0xAB {
		t.Error("write op misrendered")
	}
	if tr.Value(1, "req") != 0 {
		t.Error("gap cycle still requesting")
	}
	if tr.Value(2, "req") != 1 || tr.Value(2, "we") != 0 {
		t.Error("read op misrendered")
	}
	if tr.Value(4, "req") != 0 {
		t.Error("idle op requested")
	}
}

func TestOpsToTraceWithPriv(t *testing.T) {
	tr := OpsToTrace([]MemOp{{OpRead, 1, 0}},
		MemPorts{Req: "req", WE: "we", Addr: "addr", WData: "wdata", Priv: "priv", PrivValue: 1})
	if tr.Value(0, "priv") != 1 {
		t.Error("priv not driven")
	}
}

func TestMarchSS(t *testing.T) {
	words := 8
	ops := MarchSS(words, 0, 8)
	// N + 4 elements of 5N + N = 22N.
	if len(ops) != 22*words {
		t.Fatalf("March SS length = %d, want %d", len(ops), 22*words)
	}
	// Detects all single stuck-at cells (strictly stronger than March X).
	for addr := uint64(0); addr < uint64(words); addr++ {
		for bit := 0; bit < 8; bit++ {
			if !marchDetects(ops, addr, 1<<uint(bit), 0) || !marchDetects(ops, addr, 1<<uint(bit), 1) {
				t.Fatalf("March SS missed a stuck cell at %d/%d", addr, bit)
			}
		}
	}
	// Double reads exist (read-destructive fault pattern).
	doubles := 0
	for i := 1; i < len(ops); i++ {
		if ops[i].Kind == OpRead && ops[i-1].Kind == OpRead && ops[i].Addr == ops[i-1].Addr {
			doubles++
		}
	}
	if doubles == 0 {
		t.Error("March SS has no back-to-back reads")
	}
}
