package inject_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/frcpu"
	"repro/internal/inject"
	"repro/internal/netlist"
)

// cpuCampaign builds the second checkpoint/resume target: the
// fault-robust CPU case study, so the byte-identity matrix spans both
// design families.
func cpuCampaign(t *testing.T) (*inject.Target, *inject.Golden, []inject.Injection) {
	t.Helper()
	d, err := frcpu.Build(frcpu.PlainConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	target := d.InjectionTarget(a)
	g, err := target.RunGolden(d.Workload(120))
	if err != nil {
		t.Fatal(err)
	}
	plan := inject.BuildPlan(a, g, inject.PlanConfig{TransientPerZone: 1, PermanentPerZone: 1, Seed: 3})
	var sampled []inject.Injection
	for i := 0; i < len(plan); i += 3 {
		sampled = append(sampled, plan[i])
	}
	return target, g, sampled
}

// TestCheckpointResumeByteIdentity is the core determinism contract of
// the supervision layer: kill a campaign at 0%, 50% or 99% of the plan,
// resume it from the checkpoint at 1, 2 or 8 workers, and the merged
// report must be byte-identical to an uninterrupted serial run — on
// both the memory sub-system and the CPU case study.
func TestCheckpointResumeByteIdentity(t *testing.T) {
	fixtures := []struct {
		name    string
		fixture func(*testing.T) (*inject.Target, *inject.Golden, []inject.Injection)
	}{
		{"memsys", func(t *testing.T) (*inject.Target, *inject.Golden, []inject.Injection) {
			return reducedCampaign(t, true)
		}},
		{"frcpu", cpuCampaign},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			target, g, plan := fx.fixture(t)
			ref, err := target.Run(g, plan)
			if err != nil {
				t.Fatal(err)
			}
			refRender := fmt.Sprintf("%#v", ref)
			for _, workers := range []int{1, 2, 8} {
				for _, kill := range []float64{0, 0.5, 0.99} {
					t.Run(fmt.Sprintf("workers=%d/kill=%d%%", workers, int(kill*100)), func(t *testing.T) {
						path := filepath.Join(t.TempDir(), "campaign.ckpt")
						if kill == 0 {
							// Kill before the first completion: resuming
							// from an empty checkpoint replays everything.
							if err := inject.WriteCheckpoint(path, &inject.Checkpoint{}, plan); err != nil {
								t.Fatal(err)
							}
						} else {
							stopAfter := int(float64(len(plan)) * kill)
							if stopAfter < 1 {
								stopAfter = 1
							}
							tgt := *target
							tgt.Workers = workers
							tgt.Supervision = inject.Supervision{
								Checkpoint: path, CheckpointEvery: 1, StopAfter: stopAfter,
							}
							_, err := tgt.Run(g, plan)
							if !errors.Is(err, inject.ErrCampaignStopped) {
								t.Fatalf("interrupted run: got %v, want ErrCampaignStopped", err)
							}
						}
						tgt := *target
						tgt.Workers = workers
						tgt.Supervision = inject.Supervision{Checkpoint: path, Resume: true}
						rep, err := tgt.Run(g, plan)
						if err != nil {
							t.Fatalf("resume: %v", err)
						}
						if !reflect.DeepEqual(ref, rep) {
							t.Fatal("resumed report differs from the uninterrupted serial report")
						}
						if fmt.Sprintf("%#v", rep) != refRender {
							t.Fatal("resumed report renders differently from the uninterrupted serial report")
						}
						// The final checkpoint holds the whole campaign:
						// resuming again replays nothing and still matches.
						again, err := tgt.Run(g, plan)
						if err != nil {
							t.Fatalf("re-resume: %v", err)
						}
						if !reflect.DeepEqual(ref, again) {
							t.Fatal("re-resumed (fully preloaded) report differs")
						}
					})
				}
			}
		})
	}
}

// TestResumeMissingFileIsFreshStart: Resume with no checkpoint on disk
// runs the full campaign rather than erroring — first launch and
// relaunch share one command line.
func TestResumeMissingFileIsFreshStart(t *testing.T) {
	target, g, plan := reducedCampaign(t, false)
	ref, err := target.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	tgt := *target
	tgt.Supervision = inject.Supervision{
		Checkpoint: filepath.Join(t.TempDir(), "never-written.ckpt"),
		Resume:     true,
	}
	rep, err := tgt.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, rep) {
		t.Fatal("fresh-start resume differs from a plain run")
	}
}

// TestResumeQuarantinePersisted: quarantine records survive the
// checkpoint round trip — a resumed campaign does not re-run (and
// re-crash on) experiments that were already quarantined.
func TestResumeQuarantinePersisted(t *testing.T) {
	target, g, plan := reducedCampaign(t, true)
	poisoned := poisonPlan(plan, 1)
	path := filepath.Join(t.TempDir(), "campaign.ckpt")

	tgt := *target
	tgt.Supervision = inject.Supervision{
		Quarantine: true, Checkpoint: path, CheckpointEvery: 1,
		StopAfter: len(poisoned) / 2,
	}
	if _, err := tgt.Run(g, poisoned); !errors.Is(err, inject.ErrCampaignStopped) {
		t.Fatalf("interrupted run: got %v, want ErrCampaignStopped", err)
	}

	tgt.Supervision = inject.Supervision{Quarantine: true, Checkpoint: path, Resume: true}
	rep, err := tgt.Run(g, poisoned)
	if err != nil {
		t.Fatal(err)
	}
	uninterrupted := *target
	uninterrupted.Supervision = inject.Supervision{Quarantine: true}
	ref, err := uninterrupted.Run(g, poisoned)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, rep) {
		t.Fatal("resumed quarantine campaign differs from the uninterrupted one")
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].PlanIndex != 1 {
		t.Fatalf("quarantine section lost in the round trip: %+v", rep.Quarantined)
	}
}

// syntheticPlan builds a plan for the pure encode/decode tests — the
// checkpoint codec only consults the plan's injection descriptors, so
// no simulator is needed.
func syntheticPlan() []inject.Injection {
	var plan []inject.Injection
	for i := 0; i < 8; i++ {
		inj := inject.Injection{
			Zone:     i,
			Cycle:    3 * i,
			Duration: i % 2,
			Class:    inject.ExpClass(i % 3),
			Mode:     fmt.Sprintf("mode-%d", i),
		}
		switch i % 3 {
		case 0:
			inj.Fault = faults.NetSA(netlist.NetID(i), i%2 == 0)
		case 1:
			inj.Fault = faults.FFFlip(netlist.FFID(i))
		default:
			inj.Fault = faults.PinSA(netlist.GateID(i), i, true)
		}
		plan = append(plan, inj)
	}
	return plan
}

// syntheticCheckpoint pairs results and a quarantine record with the
// synthetic plan, exercising every record field including deviation
// lists and error strings.
func syntheticCheckpoint(plan []inject.Injection) *inject.Checkpoint {
	return &inject.Checkpoint{
		Results: []inject.IndexedResult{
			{PlanIndex: 0, Result: inject.ExpResult{
				Injection: plan[0], Outcome: inject.Silent, FirstDevCycle: -1,
			}},
			{PlanIndex: 2, Result: inject.ExpResult{
				Injection: plan[2], Outcome: inject.DangerousDetected, Sens: true,
				Deviated: []int{1, 4}, FirstDevCycle: 7,
			}},
			{PlanIndex: 5, Result: inject.ExpResult{
				Injection: plan[5], Outcome: inject.Aborted, FirstDevCycle: -1,
			}},
		},
		Quarantined: []inject.Quarantined{
			{PlanIndex: 3, Injection: plan[3], Attempts: 3, Err: "experiment panic: runtime error: index out of range"},
		},
	}
}

// TestCheckpointRoundTrip: encode → decode is the identity, and the
// encoding is canonical (unsorted input yields the same bytes).
func TestCheckpointRoundTrip(t *testing.T) {
	plan := syntheticPlan()
	ck := syntheticCheckpoint(plan)
	data := inject.EncodeCheckpoint(ck, plan)
	got, err := inject.DecodeCheckpoint(data, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, ck)
	}
	shuffled := &inject.Checkpoint{
		Results:     []inject.IndexedResult{ck.Results[2], ck.Results[0], ck.Results[1]},
		Quarantined: ck.Quarantined,
	}
	if !bytes.Equal(inject.EncodeCheckpoint(shuffled, plan), data) {
		t.Fatal("encoding is not canonical under input order")
	}
}

// TestCheckpointTruncationRejected: every strict prefix of a valid
// checkpoint must fail decoding with a *CheckpointError — never panic,
// never succeed.
func TestCheckpointTruncationRejected(t *testing.T) {
	plan := syntheticPlan()
	data := inject.EncodeCheckpoint(syntheticCheckpoint(plan), plan)
	for n := 0; n < len(data); n++ {
		ck, err := inject.DecodeCheckpoint(data[:n], plan)
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully: %#v", n, len(data), ck)
		}
		var ce *inject.CheckpointError
		if !errors.As(err, &ce) {
			t.Fatalf("truncation to %d bytes: got %T (%v), want *CheckpointError", n, err, err)
		}
	}
}

// TestCheckpointBitFlipRejected: every byte of the format is covered by
// a checksum or validated against the plan, so any single bit flip is
// detected. The sweep is exhaustive over all bits of the encoding.
func TestCheckpointBitFlipRejected(t *testing.T) {
	plan := syntheticPlan()
	data := inject.EncodeCheckpoint(syntheticCheckpoint(plan), plan)
	for bit := 0; bit < len(data)*8; bit++ {
		mutated := append([]byte(nil), data...)
		mutated[bit/8] ^= 1 << (bit % 8)
		ck, err := inject.DecodeCheckpoint(mutated, plan)
		if err == nil {
			t.Fatalf("bit flip at %d (byte %d) decoded successfully: %#v", bit, bit/8, ck)
		}
		var ce *inject.CheckpointError
		if !errors.As(err, &ce) {
			t.Fatalf("bit flip at %d: got %T (%v), want *CheckpointError", bit, err, err)
		}
	}
}

// TestCheckpointRandomCorruptionRejected: multi-byte corruption bursts
// (a torn sector, a bad download) are rejected too.
func TestCheckpointRandomCorruptionRejected(t *testing.T) {
	plan := syntheticPlan()
	data := inject.EncodeCheckpoint(syntheticCheckpoint(plan), plan)
	rng := rand.New(rand.NewSource(61508))
	for trial := 0; trial < 500; trial++ {
		mutated := append([]byte(nil), data...)
		burst := 1 + rng.Intn(16)
		for i := 0; i < burst; i++ {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		if bytes.Equal(mutated, data) {
			continue // XORs cancelled out
		}
		if _, err := inject.DecodeCheckpoint(mutated, plan); err == nil {
			t.Fatalf("trial %d: corrupted checkpoint decoded successfully", trial)
		}
	}
}

// TestCheckpointPlanMismatchRejected: a checkpoint never resumes
// against a different plan — wrong length, wrong content and wrong
// version are all versioned-format errors.
func TestCheckpointPlanMismatchRejected(t *testing.T) {
	plan := syntheticPlan()
	data := inject.EncodeCheckpoint(syntheticCheckpoint(plan), plan)

	if _, err := inject.DecodeCheckpoint(data, plan[:len(plan)-1]); err == nil {
		t.Fatal("shorter plan accepted")
	}
	mutated := append([]inject.Injection(nil), plan...)
	mutated[4].Cycle++
	if _, err := inject.DecodeCheckpoint(data, mutated); err == nil {
		t.Fatal("plan with a different injection accepted")
	}

	versioned := append([]byte(nil), data...)
	versioned[8] = 2 // bump the u16 version field after the 8-byte magic
	var ce *inject.CheckpointError
	if _, err := inject.DecodeCheckpoint(versioned, plan); !errors.As(err, &ce) {
		t.Fatalf("future version: got %v, want *CheckpointError", err)
	} else if ce.Version != 2 {
		t.Fatalf("future version error reports v%d, want v2", ce.Version)
	}

	if _, err := inject.LoadCheckpoint(filepath.Join(t.TempDir(), "corrupt.ckpt"), plan); !os.IsNotExist(err) {
		t.Fatalf("missing file: got %v, want os.IsNotExist", err)
	}
}

// FuzzDecodeCheckpoint: the loader must never panic on arbitrary
// bytes, must always fail with the typed *CheckpointError, and must
// accept only canonical encodings (anything it accepts re-encodes to
// the identical bytes — no silent wrong-state resume).
func FuzzDecodeCheckpoint(f *testing.F) {
	plan := syntheticPlan()
	valid := inject.EncodeCheckpoint(syntheticCheckpoint(plan), plan)
	f.Add(valid)
	f.Add(inject.EncodeCheckpoint(&inject.Checkpoint{}, plan))
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte{})
	f.Add([]byte("FMEACKPT"))

	// Real-campaign corpus: checkpoints an actual supervised run
	// produces (full campaign state and a partial leased-range export —
	// the distributed protocol's interchange payload), plus a bit-flip
	// and a truncation of each, so the fuzzer starts from the encodings
	// the loader meets in production rather than only synthetic shapes.
	target, g, realPlan := reducedCampaign(f, true)
	full, err := target.RunRange(g, realPlan, 2, 0, len(realPlan))
	if err != nil {
		f.Fatal(err)
	}
	span, err := target.RunRange(g, realPlan, 2, 1, len(realPlan)/2)
	if err != nil {
		f.Fatal(err)
	}
	for _, real := range [][]byte{
		inject.EncodeCheckpoint(full, realPlan),
		inject.EncodeCheckpoint(span, realPlan),
	} {
		f.Add(real)
		f.Add(real[:len(real)-3])
		flipped := append([]byte(nil), real...)
		flipped[len(flipped)/2] ^= 0x40
		f.Add(flipped)
	}

	plans := [][]inject.Injection{plan, realPlan}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, p := range plans {
			ck, err := inject.DecodeCheckpoint(data, p)
			if err != nil {
				var ce *inject.CheckpointError
				if !errors.As(err, &ce) {
					t.Fatalf("got %T (%v), want *CheckpointError", err, err)
				}
				continue
			}
			if re := inject.EncodeCheckpoint(ck, p); !bytes.Equal(re, data) {
				t.Fatalf("accepted a non-canonical encoding:\n in  %x\n out %x", data, re)
			}
		}
	})
}
