package inject_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/inject"
	"repro/internal/randckt"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
	"repro/internal/zones"
)

// TestLanesNeutralityMatrix is the determinism contract of the
// word-parallel kernel: with Lanes > 1 the campaign runs up to 64
// experiments per machine word, yet the merged report must stay
// byte-identical to the cold serial reference — across lane and worker
// counts, on both case studies (v2 has behavioral RAM peripherals and
// diagnostic machinery), across a mid-campaign checkpoint resume, and
// under cycle-budget aborts, where each lane must abort at its own
// serial cycle without perturbing its batch siblings.
func TestLanesNeutralityMatrix(t *testing.T) {
	for _, v2 := range []bool{false, true} {
		name := "v1"
		if v2 {
			name = "v2"
		}
		t.Run(name, func(t *testing.T) {
			target, g, plan := reducedCampaign(t, v2)
			ref, err := target.Run(g, plan)
			if err != nil {
				t.Fatal(err)
			}
			refRender := fmt.Sprintf("%#v", ref)

			// Warm golden: the realistic batched configuration shares one
			// snapshot restore across a whole batch.
			wtgt, wg := warmGolden(t, target, g, 8)
			for _, lanes := range []int{1, 8, 64} {
				for _, workers := range []int{1, 8} {
					t.Run(fmt.Sprintf("lanes=%d/workers=%d", lanes, workers), func(t *testing.T) {
						tgt := *wtgt
						tgt.Lanes = lanes
						tgt.Workers = workers
						rep, err := tgt.Run(wg, plan)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(ref, rep) {
							t.Fatal("lane-batched report differs from cold serial reference")
						}
						if fmt.Sprintf("%#v", rep) != refRender {
							t.Fatal("lane-batched report renders differently from reference")
						}
					})
				}
			}

			t.Run("resume", func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "campaign.ckpt")
				tgt := *wtgt
				tgt.Lanes = 8
				tgt.Workers = 8
				tgt.Supervision = inject.Supervision{
					Checkpoint: path, CheckpointEvery: 1, StopAfter: len(plan) / 2,
				}
				if _, err := tgt.Run(wg, plan); !errors.Is(err, inject.ErrCampaignStopped) {
					t.Fatalf("interrupted run: got %v, want ErrCampaignStopped", err)
				}
				// Resume with a different lane width: the checkpoint is
				// lane-agnostic, only plan indices matter.
				tgt = *wtgt
				tgt.Lanes = 64
				tgt.Workers = 8
				tgt.Supervision = inject.Supervision{Checkpoint: path, Resume: true}
				rep, err := tgt.Run(wg, plan)
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
				if !reflect.DeepEqual(ref, rep) {
					t.Fatal("lane-batched resumed report differs from reference")
				}
				if fmt.Sprintf("%#v", rep) != refRender {
					t.Fatal("lane-batched resumed report renders differently")
				}
			})

			t.Run("cycle-budget", func(t *testing.T) {
				budget := g.Trace.Cycles() / 2
				ctgt := *target
				ctgt.Supervision = inject.Supervision{CycleBudget: budget}
				cref, err := ctgt.Run(g, plan)
				if err != nil {
					t.Fatal(err)
				}
				if cref.AbortedCount() == 0 {
					t.Fatal("vacuous: no experiment hit the cycle budget")
				}
				// Every row aborts (a budget below the trace length always
				// fires), but at different cycles: lanes whose warm start
				// lies past the budget abort later than their siblings, so
				// the partial monitor fields pin per-lane retirement.
				for _, lanes := range []int{8, 64} {
					tgt := *wtgt
					tgt.Lanes = lanes
					tgt.Supervision = inject.Supervision{CycleBudget: budget}
					rep, err := tgt.Run(wg, plan)
					if err != nil {
						t.Fatalf("lanes=%d: %v", lanes, err)
					}
					if !reflect.DeepEqual(cref, rep) {
						t.Fatalf("lanes=%d: budget-abort report differs from cold serial", lanes)
					}
					if fmt.Sprintf("%#v", rep) != fmt.Sprintf("%#v", cref) {
						t.Fatalf("lanes=%d: budget-abort report renders differently", lanes)
					}
				}
			})
		})
	}
}

// TestLanesPropertyRandomCircuits compares 64-lane and serial campaign
// reports over random circuits, with the planner's fault mix extended
// by hand-written pin stuck-ats, bridging faults and a released
// (Duration > 0) stuck-at — the fault models BuildPlan never emits, so
// the lane arming/removal paths for every batchable kind are exercised.
func TestLanesPropertyRandomCircuits(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		n := randckt.Generate(randckt.Default(), seed)
		a, err := zones.Extract(n, zones.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		target := &inject.Target{
			Analysis:    a,
			NewInstance: func() (*sim.Simulator, error) { return sim.New(n) },
		}
		tr := workload.Random(xrand.New(seed+300), []string{"in"}, map[string]int{"in": 6}, 30)
		g, err := target.RunGolden(tr)
		if err != nil {
			t.Fatal(err)
		}
		plan := inject.BuildPlan(a, g, inject.PlanConfig{TransientPerZone: 2, PermanentPerZone: 2, Seed: seed})
		plan = append(plan, inject.WidePlan(a, g, 3, seed)...)
		if len(plan) == 0 {
			continue
		}
		g0, g1 := n.Gates[0], n.Gates[len(n.Gates)/2]
		plan = append(plan,
			inject.Injection{Zone: 0, Fault: faults.PinSA(g0.ID, 0, true), Cycle: 2, Mode: "pin"},
			inject.Injection{Zone: 0, Fault: faults.PinSA(g1.ID, len(g1.Inputs)-1, false), Cycle: 9, Duration: 5, Mode: "pin"},
			inject.Injection{Zone: 0, Fault: faults.NetBridge(g0.Output, g1.Output, true), Cycle: 4, Mode: "bridge"},
			inject.Injection{Zone: 0, Fault: faults.NetBridge(g1.Output, g0.Output, false), Cycle: 6, Duration: 8, Mode: "bridge"},
			inject.Injection{Zone: 0, Fault: faults.NetSA(g1.Output, true), Cycle: 3, Duration: 4, Mode: "released"},
		)
		serial, err := target.Run(g, plan)
		if err != nil {
			t.Fatal(err)
		}
		wtgt, wg := warmGolden(t, target, g, 7)
		wtgt.Lanes = 64
		laned, err := wtgt.Run(wg, plan)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, laned) {
			t.Fatalf("seed %d: 64-lane verdicts differ from serial", seed)
		}
	}
}

// TestLanesTelemetryNeutrality extends the telemetry out-of-band
// contract to the batched path: with lanes on and the full telemetry
// stack attached, the report stays byte-identical, the journal still
// carries one exp_finish per plan row, and the new batch counters
// actually observed the lane scheduler.
func TestLanesTelemetryNeutrality(t *testing.T) {
	target, g, plan := reducedCampaign(t, true)
	ref, err := target.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	wtgt, wg := warmGolden(t, target, g, 8)
	tgt, tel, journal := instrumented(wtgt)
	tgt.Lanes = 16
	tgt.Workers = 8
	rep, err := tgt.Run(wg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, rep) {
		t.Fatal("instrumented lane-batched report differs from reference")
	}
	if fmt.Sprintf("%#v", rep) != fmt.Sprintf("%#v", ref) {
		t.Fatal("instrumented lane-batched report renders differently")
	}
	if err := tel.Journal.Close(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(journal.String(), `"ev":"exp_finish"`); n != len(plan) {
		t.Fatalf("journal has %d exp_finish events, want %d", n, len(plan))
	}
	batches := tel.Registry.Counter("batches").Load()
	if batches == 0 {
		t.Fatal("batches counter never incremented — the lane scheduler did not run")
	}
	occ := tel.Registry.Histogram("lane_occupancy")
	if occ.Count() != batches {
		t.Fatalf("lane_occupancy has %d observations, want %d (one per batch)", occ.Count(), batches)
	}
	if occ.Sum() < batches {
		t.Fatalf("lane_occupancy sum %d implausibly low for %d batches", occ.Sum(), batches)
	}
	if live := tel.Registry.Gauge("lanes_active").Load(); live != 0 {
		t.Fatalf("lanes_active gauge is %d after the campaign, want 0", live)
	}
}
