package inject

import (
	"errors"
	"fmt"
	"time"
)

// Supervision makes campaign execution fault-tolerant: per-experiment
// watchdogs, failure isolation with retry and quarantine, and periodic
// deterministic checkpoints. The zero value reproduces the historical
// behavior exactly — no budgets, no retries, a failing experiment
// aborts the campaign, nothing is checkpointed.
type Supervision struct {
	// CycleBudget caps the simulated cycles one experiment may consume
	// (0 = unlimited). An experiment that exceeds it is terminated with
	// the Aborted outcome. The budget is cooperative and counted in
	// simulated cycles, so it is fully deterministic: the same plan
	// aborts at the same point at any worker count.
	CycleBudget int
	// WallBudget caps the wall-clock time of one experiment
	// (0 = disabled). It needs Clock to be set; wall aborts are
	// inherently nondeterministic and void the byte-identity guarantee
	// for the affected rows, so this is a last-resort hang guard only.
	WallBudget time.Duration
	// Clock supplies the current time for WallBudget. It is injected
	// rather than sampled (time.Now is banned in this package by the
	// determinism linter) so library users choose whether to pay the
	// nondeterminism; cmd/injector passes time.Now.
	Clock func() time.Time
	// Retries re-runs a failing experiment up to this many additional
	// times before giving up on it.
	Retries int
	// Quarantine isolates persistent per-experiment failures into
	// Report.Quarantined and lets the rest of the campaign complete;
	// when false (default) the first failure aborts the campaign with
	// an *ExperimentError, preserving the historical contract.
	Quarantine bool
	// Checkpoint is the path of the campaign checkpoint file
	// ("" = checkpointing disabled). Writes are atomic
	// (temp file + rename), so a crash at any instant leaves either
	// the previous or the next complete checkpoint on disk.
	Checkpoint string
	// CheckpointEvery is the number of completed experiments between
	// checkpoint writes (<= 0 selects 16). A final checkpoint is
	// always written when the campaign finishes or stops.
	CheckpointEvery int
	// Resume preloads completed results from Checkpoint (when the file
	// exists) and replays only the remaining plan indices. The merged
	// report is byte-identical to an uninterrupted run.
	Resume bool
	// StopAfter > 0 aborts the campaign with ErrCampaignStopped once
	// that many experiments have completed in this process, right
	// after a checkpoint write — a deterministic crash hook used by the
	// resume tests and the CI kill/resume smoke job.
	StopAfter int
	// Interrupt, when non-nil, cancels the campaign cooperatively: once
	// the channel is closed, workers finish the experiment in hand, stop
	// claiming new plan rows, and Run/RunParallel/RunRange return
	// ErrCampaignInterrupted (core.Run wires a context's Done channel
	// here). Cancellation is control-plane only — a campaign either
	// completes with its usual byte-identical report or returns the
	// error; it never yields a partial report. Periodic checkpoints
	// written before the interrupt remain valid for resume.
	Interrupt <-chan struct{}
}

// interrupted returns a cheap poll of the Interrupt channel — always
// false when cancellation is not wired, so the hot loops pay one nil
// check.
func (sv *Supervision) interrupted() func() bool {
	ch := sv.Interrupt
	if ch == nil {
		return func() bool { return false }
	}
	return func() bool {
		select {
		case <-ch:
			return true
		default:
			return false
		}
	}
}

// defaultCheckpointEvery is the checkpoint cadence when unset.
const defaultCheckpointEvery = 16

// wallChecker returns the per-cycle wall-budget poll, a no-op when the
// wall watchdog is disabled. The clock is only sampled every 256
// cycles so the guard stays invisible next to the simulation cost.
func (sv *Supervision) wallChecker() func(cycle int) bool {
	if sv.WallBudget <= 0 || sv.Clock == nil {
		return func(int) bool { return false }
	}
	deadline := sv.Clock().Add(sv.WallBudget)
	return func(cycle int) bool {
		if cycle&0xff != 0 {
			return false
		}
		return sv.Clock().After(deadline)
	}
}

// ErrCampaignStopped is returned by Run/RunParallel when the StopAfter
// crash hook fires. The campaign state up to the stop is on disk in
// the checkpoint file; resuming completes the run.
var ErrCampaignStopped = errors.New("inject: campaign stopped by supervision hook (state checkpointed)")

// ErrCampaignInterrupted is returned by Run/RunParallel/RunRange when
// Supervision.Interrupt fires before every plan row in the span has a
// verdict. An interrupt that lands after the last row completes is
// ignored: the finished report is returned as usual.
var ErrCampaignInterrupted = errors.New("inject: campaign interrupted")

// ExperimentError is the typed per-experiment failure returned by
// Run/RunParallel when quarantine is off. It supports errors.As and
// errors.Unwrap; under parallelism the error of the lowest failing
// plan index wins, matching serial semantics.
type ExperimentError struct {
	// PlanIndex is the experiment's position in the plan.
	PlanIndex int
	// Injection is the planned experiment that failed.
	Injection Injection
	// Attempts counts how many times the experiment was tried
	// (1 + Supervision.Retries).
	Attempts int
	// Err is the underlying failure (instance construction error or a
	// recovered worker panic).
	Err error
}

func (e *ExperimentError) Error() string {
	return fmt.Sprintf("inject: experiment %d (zone %d, %v at cycle %d) failed after %d attempt(s): %v",
		e.PlanIndex, e.Injection.Zone, e.Injection.Fault.Kind, e.Injection.Cycle, e.Attempts, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/errors.As.
func (e *ExperimentError) Unwrap() error { return e.Err }

// Quarantined records one experiment the supervisor gave up on: its
// plan position, the injection descriptor and the final error. The
// error is kept as a rendered string so reports and checkpoints stay
// value-comparable and byte-stable.
type Quarantined struct {
	PlanIndex int
	Injection Injection
	// Attempts is how many times the experiment was tried before
	// quarantine (1 + Supervision.Retries).
	Attempts int
	Err      string
}

// runRecovered executes one experiment with panic isolation: a worker
// panic (a diverging peripheral model, an out-of-range fault site from
// a hand-written plan) is converted into a per-experiment error
// instead of killing the process.
func (t *Target) runRecovered(g *Golden, inj Injection) (res ExpResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiment panic: %v", r)
		}
	}()
	return t.runOne(g, inj)
}

// runSupervised is runRecovered plus the retry policy. On persistent
// failure it returns a typed *ExperimentError carrying the plan index.
// Each failed attempt that will be retried is reported to the
// telemetry hub (out-of-band; the report never sees retries that
// eventually succeeded).
func (t *Target) runSupervised(g *Golden, plan []Injection, i int) (ExpResult, error) {
	attempts := 1 + t.Supervision.Retries
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		res, err := t.runRecovered(g, plan[i])
		if err == nil {
			return res, nil
		}
		lastErr = err
		if a+1 < attempts {
			t.Telemetry.Retry(i, a+1, err.Error())
		}
	}
	return ExpResult{}, &ExperimentError{
		PlanIndex: i, Injection: plan[i], Attempts: attempts, Err: lastErr,
	}
}
