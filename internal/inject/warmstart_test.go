package inject_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/inject"
	"repro/internal/randckt"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
	"repro/internal/zones"
)

// warmGolden re-runs the golden simulation with a snapshot cadence.
// The golden run is deterministic, so the traces match the cold golden
// exactly; only the snapshots differ.
func warmGolden(t *testing.T, target *inject.Target, g *inject.Golden, every int) (*inject.Target, *inject.Golden) {
	t.Helper()
	tgt := *target
	tgt.SnapshotEvery = every
	gw, err := tgt.RunGolden(g.Trace)
	if err != nil {
		t.Fatal(err)
	}
	return &tgt, gw
}

// TestWarmStartNeutralityMatrix is the determinism contract of the
// golden-snapshot warm start: with snapshots on, the campaign report
// must stay byte-identical to the cold-start serial reference — across
// worker counts, on both case studies, across a mid-campaign checkpoint
// resume, and under cycle-budget aborts (where the early-exit is
// disabled and the abort point must land on the same trace cycle).
func TestWarmStartNeutralityMatrix(t *testing.T) {
	for _, v2 := range []bool{false, true} {
		name := "v1"
		if v2 {
			name = "v2"
		}
		t.Run(name, func(t *testing.T) {
			target, g, plan := reducedCampaign(t, v2)
			ref, err := target.Run(g, plan)
			if err != nil {
				t.Fatal(err)
			}
			refRender := fmt.Sprintf("%#v", ref)

			wtgt, wg := warmGolden(t, target, g, 8)
			for _, workers := range []int{1, 8} {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					tgt := *wtgt
					tgt.Workers = workers
					rep, err := tgt.Run(wg, plan)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(ref, rep) {
						t.Fatal("warm-start report differs from cold serial reference")
					}
					if fmt.Sprintf("%#v", rep) != refRender {
						t.Fatal("warm-start report renders differently from reference")
					}
				})
			}

			t.Run("resume", func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "campaign.ckpt")
				tgt := *wtgt
				tgt.Workers = 8
				tgt.Supervision = inject.Supervision{
					Checkpoint: path, CheckpointEvery: 1, StopAfter: len(plan) / 2,
				}
				if _, err := tgt.Run(wg, plan); !errors.Is(err, inject.ErrCampaignStopped) {
					t.Fatalf("interrupted run: got %v, want ErrCampaignStopped", err)
				}
				tgt = *wtgt
				tgt.Workers = 8
				tgt.Supervision = inject.Supervision{Checkpoint: path, Resume: true}
				rep, err := tgt.Run(wg, plan)
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
				if !reflect.DeepEqual(ref, rep) {
					t.Fatal("warm-start resumed report differs from reference")
				}
				if fmt.Sprintf("%#v", rep) != refRender {
					t.Fatal("warm-start resumed report renders differently")
				}
			})

			t.Run("cycle-budget", func(t *testing.T) {
				// A budget below the trace length aborts every experiment
				// at the budget cycle. The warm start skips past that
				// cycle for late injections, so this pins the translated
				// abort: charged prefix, identical Aborted rows.
				budget := g.Trace.Cycles() / 2
				ctgt := *target
				ctgt.Supervision = inject.Supervision{CycleBudget: budget}
				cref, err := ctgt.Run(g, plan)
				if err != nil {
					t.Fatal(err)
				}
				if cref.AbortedCount() == 0 {
					t.Fatal("vacuous: no experiment hit the cycle budget")
				}
				tgt := *wtgt
				tgt.Supervision = inject.Supervision{CycleBudget: budget}
				for _, workers := range []int{1, 8} {
					tgt.Workers = workers
					rep, err := tgt.Run(wg, plan)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if !reflect.DeepEqual(cref, rep) {
						t.Fatalf("workers=%d: warm-start budget-abort report differs from cold", workers)
					}
					if fmt.Sprintf("%#v", rep) != fmt.Sprintf("%#v", cref) {
						t.Fatalf("workers=%d: budget-abort report renders differently", workers)
					}
				}
			})
		})
	}
}

// TestWarmStartPropertyRandomCircuits compares warm and cold campaign
// reports over random circuits — designs with no peripherals and
// arbitrary zone structure — with a snapshot cadence that does not
// divide the trace length.
func TestWarmStartPropertyRandomCircuits(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		n := randckt.Generate(randckt.Default(), seed)
		a, err := zones.Extract(n, zones.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		target := &inject.Target{
			Analysis:    a,
			NewInstance: func() (*sim.Simulator, error) { return sim.New(n) },
		}
		tr := workload.Random(xrand.New(seed+200), []string{"in"}, map[string]int{"in": 6}, 30)
		g, err := target.RunGolden(tr)
		if err != nil {
			t.Fatal(err)
		}
		plan := inject.BuildPlan(a, g, inject.PlanConfig{TransientPerZone: 1, PermanentPerZone: 1, Seed: seed})
		plan = append(plan, inject.WidePlan(a, g, 3, seed)...)
		if len(plan) == 0 {
			continue
		}
		cold, err := target.Run(g, plan)
		if err != nil {
			t.Fatal(err)
		}
		wtgt, wg := warmGolden(t, target, g, 7)
		warm, err := wtgt.Run(wg, plan)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, warm) {
			t.Fatalf("seed %d: warm verdicts differ from cold", seed)
		}
	}
}

// TestWarmStartSimulatesFewerCycles guards the matrix against vacuity:
// if snapshots were silently never captured (or never restored), the
// neutrality tests would still pass while the optimization did nothing.
// Telemetry counts cycles actually simulated, so warm < cold proves the
// prefix was really skipped.
func TestWarmStartSimulatesFewerCycles(t *testing.T) {
	target, g, plan := reducedCampaign(t, true)
	coldTgt, coldTel, _ := instrumented(target)
	if _, err := coldTgt.Run(g, plan); err != nil {
		t.Fatal(err)
	}
	wtgt, wg := warmGolden(t, target, g, 8)
	warmTgt, warmTel, _ := instrumented(wtgt)
	if _, err := warmTgt.Run(wg, plan); err != nil {
		t.Fatal(err)
	}
	cold, warm := coldTel.Snapshot().SimCycles, warmTel.Snapshot().SimCycles
	if warm >= cold {
		t.Fatalf("warm start simulated %d cycles, cold %d — no cycles skipped", warm, cold)
	}
	t.Logf("simulated cycles: cold=%d warm=%d (%.2fx)", cold, warm, float64(cold)/float64(warm))
}
