package inject

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/fit"
	"repro/internal/fmea"
	"repro/internal/iec61508"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
	"repro/internal/zones"
)

// protNaked builds a DUT with one parity-protected register (alarm) and
// one naked register: flips in the protected one are detected dangerous,
// flips in the naked one are undetected dangerous.
func protNaked(t testing.TB) (*zones.Analysis, *Target) {
	m := rtl.NewModule("pn")
	d := m.Input("d", 4)
	// Protected path: register plus stored parity bit, checked on output.
	rp := m.RegNext("r_prot", d, 0)
	pp := m.RegNext("r_par", rtl.Bus{m.Parity(d)}, 0)
	alarm := m.XorBit(m.Parity(rp), pp[0])
	m.Output("out_p", rp)
	m.Output("alarm_par", rtl.Bus{alarm})
	// Naked path.
	rn := m.RegNext("r_naked", d, 0)
	m.Output("out_n", rn)
	n := m.MustFinish()
	a, err := zones.Extract(n, zones.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	target := &Target{
		Analysis: a,
		NewInstance: func() (*sim.Simulator, error) {
			return sim.New(n)
		},
	}
	return a, target
}

func testTrace() *workload.Trace {
	tr := workload.NewTrace("d")
	rng := xrand.New(9)
	for c := 0; c < 24; c++ {
		tr.Add(map[string]uint64{"d": rng.Bits(4)})
	}
	return tr
}

func TestGoldenRunAndProfile(t *testing.T) {
	a, target := protNaked(t)
	g, err := target.RunGolden(testTrace())
	if err != nil {
		t.Fatal(err)
	}
	if ok, inactive := g.CompletenessOK(); !ok {
		names := []string{}
		for _, zi := range inactive {
			names = append(names, a.Zones[zi].Name)
		}
		t.Errorf("random workload left zones inactive: %v", names)
	}
	// Activity lists must be within the trace horizon and ordered.
	for zi, act := range g.Activity {
		last := -1
		for _, c := range act {
			if c <= last || c >= g.Trace.Cycles() {
				t.Fatalf("zone %d activity malformed: %v", zi, act)
			}
			last = c
		}
	}
}

func TestPlanDeterministicAndComplete(t *testing.T) {
	a, target := protNaked(t)
	g, _ := target.RunGolden(testTrace())
	cfg := DefaultPlanConfig()
	p1 := BuildPlan(a, g, cfg)
	p2 := BuildPlan(a, g, cfg)
	if len(p1) == 0 || len(p1) != len(p2) {
		t.Fatalf("plan sizes: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("plan not deterministic")
		}
	}
	// Every non-skipped zone gets experiments.
	seen := map[int]bool{}
	for _, inj := range p1 {
		seen[inj.Zone] = true
		if inj.Cycle < 0 || inj.Cycle >= g.Trace.Cycles() {
			t.Fatalf("injection cycle out of range: %+v", inj)
		}
	}
	for zi := range a.Zones {
		if !seen[zi] {
			t.Errorf("zone %q has no experiments", a.Zones[zi].Name)
		}
	}
	// SkipZones honored.
	cfg.SkipZones = map[string]bool{"r_naked": true}
	p3 := BuildPlan(a, g, cfg)
	for _, inj := range p3 {
		if a.Zones[inj.Zone].Name == "r_naked" {
			t.Error("skipped zone still planned")
		}
	}
}

func TestCampaignOutcomes(t *testing.T) {
	a, target := protNaked(t)
	g, _ := target.RunGolden(testTrace())
	zp, _ := a.ZoneByName("r_prot")
	zn, _ := a.ZoneByName("r_naked")
	plan := []Injection{
		{Zone: zp.ID, Fault: faults.FFFlip(zp.FFs[1]), Cycle: 5, Mode: "flip"},
		{Zone: zn.ID, Fault: faults.FFFlip(zn.FFs[2]), Cycle: 5, Mode: "flip"},
	}
	rep, err := target.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Outcome != DangerousDetected {
		t.Errorf("protected flip outcome = %v, want dangerous-detected", rep.Results[0].Outcome)
	}
	if rep.Results[1].Outcome != DangerousUndetected {
		t.Errorf("naked flip outcome = %v, want dangerous-undetected", rep.Results[1].Outcome)
	}
	if !rep.Results[0].Sens || !rep.Results[1].Sens {
		t.Error("SENS monitors missed direct state flips")
	}
	if rep.Results[0].FirstDevCycle < 5 {
		t.Errorf("deviation before injection: cycle %d", rep.Results[0].FirstDevCycle)
	}
	if Silent.String() == "" || DangerousDetected.String() == "" {
		t.Error("outcome strings empty")
	}
}

func TestSilentOutcome(t *testing.T) {
	// Stuck-at the value the net would carry anyway at the end of the
	// trace: drive d=0 forever, stuck-0 on naked register output.
	a, target := protNaked(t)
	tr := workload.NewTrace("d")
	for c := 0; c < 10; c++ {
		tr.Add(map[string]uint64{"d": 0})
	}
	g, _ := target.RunGolden(tr)
	zn, _ := a.ZoneByName("r_naked")
	plan := []Injection{{
		Zone: zn.ID, Fault: faults.NetSA(a.N.FFs[zn.FFs[0]].Q, false), Cycle: 2,
		Mode: "stuck matching value",
	}}
	rep, err := target.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Results[0].Outcome != Silent {
		t.Errorf("outcome = %v, want silent", rep.Results[0].Outcome)
	}
	if rep.Results[0].Sens {
		t.Error("SENS triggered by a no-effect stuck")
	}
}

func TestFullCampaignCoverageAndMeasures(t *testing.T) {
	a, target := protNaked(t)
	g, _ := target.RunGolden(testTrace())
	cfg := DefaultPlanConfig()
	cfg.TransientPerZone = 6
	cfg.PermanentPerZone = 3
	plan := BuildPlan(a, g, cfg)
	rep, err := target.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	cov := rep.Coverage
	if cov.SensFrac() < 0.8 {
		t.Errorf("SENS coverage = %v", cov.SensFrac())
	}
	if cov.ObseFrac() != 1 {
		t.Errorf("OBSE coverage = %v", cov.ObseFrac())
	}
	if cov.DiagFrac() != 1 {
		t.Errorf("DIAG coverage = %v", cov.DiagFrac())
	}
	if cov.Mismatches == 0 {
		t.Error("no mismatches recorded")
	}

	// Zone measures: protected register must have higher DDF than naked.
	var prot, naked ZoneMeasure
	for _, zm := range rep.ZoneMeasures(a) {
		switch zm.Name {
		case "r_prot":
			prot = zm
		case "r_naked":
			naked = zm
		}
	}
	if prot.Experiments == 0 || naked.Experiments == 0 {
		t.Fatal("zone measures missing")
	}
	if prot.DDFMeasured() <= naked.DDFMeasured() {
		t.Errorf("DDF: prot %v <= naked %v", prot.DDFMeasured(), naked.DDFMeasured())
	}

	// Effect tables consistent with static reachability.
	for _, ec := range rep.CheckEffects(a) {
		if !ec.Consistent {
			t.Errorf("zone %q observed unpredicted effects %v", ec.Name, ec.Unpredicted)
		}
	}
}

func TestValidateWorksheet(t *testing.T) {
	a, target := protNaked(t)
	g, _ := target.RunGolden(testTrace())
	cfg := DefaultPlanConfig()
	cfg.TransientPerZone = 8
	plan := BuildPlan(a, g, cfg)
	rep, _ := target.Run(g, plan)

	zp, _ := a.ZoneByName("r_prot")
	zn, _ := a.ZoneByName("r_naked")
	w := fmea.New("pn")
	// Honest estimates: protected zone fully detected, naked zone not.
	meas := rep.ZoneMeasures(a)
	var measS = map[int]float64{}
	for _, zm := range meas {
		measS[zm.Zone] = zm.SMeasured()
	}
	w.AddRow(zp.ID, "r_prot", fmea.Spec{
		Mode: iec61508.FMTransient, Lambda: fit.Contribution{Transient: 100},
		S: measS[zp.ID], Freq: fmea.F1, Lifetime: 1,
		DDF:    fmea.DDF{HWTransient: 0.99, HWPermanent: 0.99},
		TechHW: iec61508.TechRedundantChecker,
	})
	w.AddRow(zn.ID, "r_naked", fmea.Spec{
		Mode: iec61508.FMTransient, Lambda: fit.Contribution{Transient: 100},
		S: measS[zn.ID], Freq: fmea.F1, Lifetime: 1,
	})
	rows := rep.ValidateWorksheet(a, w, 0.15)
	if len(rows) < 2 {
		t.Fatalf("validation rows = %d", len(rows))
	}
	for _, row := range rows {
		switch row.Name {
		case "r_prot", "r_naked":
			if !row.Within {
				t.Errorf("zone %s failed validation: est S %.2f meas %.2f, est DDF %.2f meas %.2f",
					row.Name, row.EstS, row.MeasS, row.EstDDF, row.MeasDDF)
			}
		}
	}
	if PassFraction(rows) == 0 {
		t.Error("no validation rows passed")
	}
	if PassFraction(nil) != 1 {
		t.Error("empty validation should pass")
	}
}

func TestWidePlanTargetsSharedGates(t *testing.T) {
	// Shared-cone design so wide candidates exist.
	m := rtl.NewModule("wide")
	x := m.Input("x", 4)
	y := m.Input("y", 4)
	sum, _ := m.Add(x, y)
	r1 := m.RegNext("r1", sum, 0)
	r2 := m.RegNext("r2", sum, 0)
	m.Output("o1", r1)
	m.Output("o2", r2)
	n := m.MustFinish()
	a, _ := zones.Extract(n, zones.DefaultConfig())
	target := &Target{Analysis: a, NewInstance: func() (*sim.Simulator, error) { return sim.New(n) }}
	tr := workload.Random(xrand.New(3), []string{"x", "y"}, map[string]int{"x": 4, "y": 4}, 16)
	g, _ := target.RunGolden(tr)
	plan := WidePlan(a, g, 5, 7)
	if len(plan) != 10 { // both stuck-at polarities per selected site
		t.Fatalf("wide plan size = %d, want 10", len(plan))
	}
	for _, inj := range plan {
		if inj.Mode != "wide stuck-at" && inj.Mode != "global stuck-at" {
			t.Errorf("unexpected mode %q", inj.Mode)
		}
	}
	// Wide faults must be able to deviate both outputs in one experiment.
	rep, err := target.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	multi := false
	for _, res := range rep.Results {
		funcCount := 0
		for _, oi := range res.Deviated {
			if a.Obs[oi].Kind == zones.Functional {
				funcCount++
			}
		}
		if funcCount >= 2 {
			multi = true
		}
	}
	if !multi {
		t.Error("no wide fault produced multiple failures (Fig. 2)")
	}
}

func TestRecordVCD(t *testing.T) {
	a, target := protNaked(t)
	g, _ := target.RunGolden(testTrace())
	var golden, faulty bytes.Buffer
	if err := target.RecordVCD(g, nil, &golden); err != nil {
		t.Fatal(err)
	}
	zp, _ := a.ZoneByName("r_prot")
	inj := Injection{Zone: zp.ID, Fault: faults.FFFlip(zp.FFs[0]), Cycle: 4, Mode: "flip"}
	if err := target.RecordVCD(g, &inj, &faulty); err != nil {
		t.Fatal(err)
	}
	gs, fs := golden.String(), faulty.String()
	if !strings.Contains(gs, "$enddefinitions") || !strings.Contains(fs, "$enddefinitions") {
		t.Fatal("malformed VCD output")
	}
	if gs == fs {
		t.Error("faulty waveform identical to golden despite injection")
	}
}
