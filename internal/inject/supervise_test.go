package inject_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/inject"
	"repro/internal/netlist"
)

// poisonPlan returns a copy of the plan whose experiments at the given
// indices flip a far-out-of-range flip-flop — Fault.Apply indexes the
// simulator state with it, so running the experiment panics. This is
// the stand-in for a diverging peripheral model or a corrupt
// hand-written plan entry.
func poisonPlan(plan []inject.Injection, indices ...int) []inject.Injection {
	out := append([]inject.Injection(nil), plan...)
	for _, i := range indices {
		out[i].Fault = faults.FFFlip(netlist.FFID(1 << 20))
	}
	return out
}

// TestCycleBudgetWatchdog: a cycle budget shorter than the workload
// terminates every experiment with the Aborted outcome instead of a
// verdict, deterministically at any worker count, and the report
// declares itself degraded.
func TestCycleBudgetWatchdog(t *testing.T) {
	target, g, plan := reducedCampaign(t, true)
	tgt := *target
	tgt.Supervision = inject.Supervision{CycleBudget: 3}
	serial, err := tgt.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := serial.AbortedCount(); got != len(plan) {
		t.Fatalf("AbortedCount = %d, want %d (budget shorter than every injection window)", got, len(plan))
	}
	if !serial.Degraded() {
		t.Fatal("report with aborted experiments must be Degraded")
	}
	for _, workers := range []int{2, 8} {
		tgt.Workers = workers
		par, err := tgt.Run(g, plan)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: watchdog-aborted report differs from serial", workers)
		}
	}
	// A budget longer than the workload must not disturb anything.
	tgt = *target
	tgt.Supervision = inject.Supervision{CycleBudget: g.Trace.Cycles() + 1}
	rep, err := tgt.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := target.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, rep) {
		t.Fatal("a non-binding cycle budget changed the report")
	}
}

// TestWallBudgetWatchdog: the wall-clock guard uses the injected clock;
// a clock that jumps past the deadline aborts the experiment, and a
// nil clock disables the guard entirely.
func TestWallBudgetWatchdog(t *testing.T) {
	target, g, plan := reducedCampaign(t, false)
	fake := time.Unix(0, 0)
	tgt := *target
	tgt.Supervision = inject.Supervision{
		WallBudget: time.Second,
		Clock: func() time.Time {
			fake = fake.Add(2 * time.Second) // every sample blows the budget
			return fake
		},
	}
	rep, err := tgt.Run(g, plan[:4])
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.AbortedCount(); got != 4 {
		t.Fatalf("AbortedCount = %d, want 4 (fake clock past deadline)", got)
	}
	// WallBudget without a clock is a no-op, not a nil dereference.
	tgt.Supervision = inject.Supervision{WallBudget: time.Nanosecond}
	rep, err = tgt.Run(g, plan[:4])
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.AbortedCount(); got != 0 {
		t.Fatalf("wall budget with nil clock aborted %d experiment(s)", got)
	}
}

// TestPanicQuarantine: worker panics are recovered, retried the
// configured number of times and quarantined — exactly the poisoned
// indices, with the campaign completing around them.
func TestPanicQuarantine(t *testing.T) {
	target, g, plan := reducedCampaign(t, true)
	poisoned := poisonPlan(plan, 3, 7)
	for _, workers := range []int{1, 8} {
		tgt := *target
		tgt.Workers = workers
		tgt.Supervision = inject.Supervision{Quarantine: true, Retries: 2}
		rep, err := tgt.Run(g, poisoned)
		if err != nil {
			t.Fatalf("workers=%d: quarantine run failed: %v", workers, err)
		}
		if len(rep.Quarantined) != 2 {
			t.Fatalf("workers=%d: quarantined %d experiments, want 2", workers, len(rep.Quarantined))
		}
		for qi, want := range []int{3, 7} {
			q := rep.Quarantined[qi]
			if q.PlanIndex != want {
				t.Fatalf("workers=%d: quarantined plan index %d, want %d", workers, q.PlanIndex, want)
			}
			if q.Injection != poisoned[want] {
				t.Fatalf("workers=%d: quarantine record carries the wrong injection", workers)
			}
			if q.Attempts != 3 {
				t.Fatalf("workers=%d: attempts = %d, want 3 (1 + 2 retries)", workers, q.Attempts)
			}
			if q.Err == "" {
				t.Fatalf("workers=%d: quarantine record lost the error", workers)
			}
		}
		if len(rep.Results) != len(plan)-2 {
			t.Fatalf("workers=%d: campaign kept %d results, want %d", workers, len(rep.Results), len(plan)-2)
		}
		if !rep.Degraded() {
			t.Fatalf("workers=%d: report with quarantined rows must be Degraded", workers)
		}
	}
}

// TestQuarantineConservativeAccounting: quarantined rows stay in the
// zone measures — counted as experiments without a verdict, pulling
// both measured fractions down (the λDU-conservative bound) and
// flagging the worksheet cross-check row.
func TestQuarantineConservativeAccounting(t *testing.T) {
	target, g, plan := reducedCampaign(t, true)
	poisoned := poisonPlan(plan, 0)
	tgt := *target
	tgt.Supervision = inject.Supervision{Quarantine: true}
	rep, err := tgt.Run(g, poisoned)
	if err != nil {
		t.Fatal(err)
	}
	zone := poisoned[0].Zone
	total := 0
	for _, zm := range rep.ZoneMeasures(target.Analysis) {
		total += zm.Experiments
		if zm.Zone != zone {
			continue
		}
		if zm.Quarantined != 1 {
			t.Fatalf("zone %d shows %d quarantined, want 1", zone, zm.Quarantined)
		}
		if zm.DDFMeasured() == 1 && zm.DangerDet == 0 {
			t.Fatal("quarantined row vanished from the DDF denominator")
		}
	}
	if total != len(poisoned) {
		t.Fatalf("zone measures account for %d experiments, want %d (quarantined rows included)", total, len(poisoned))
	}
}

// TestExperimentErrorTyped: with quarantine off the campaign fails fast
// with a typed *ExperimentError reachable through errors.As even after
// wrapping, carrying the plan index, injection and underlying panic;
// under parallelism the lowest failing plan index wins.
func TestExperimentErrorTyped(t *testing.T) {
	target, g, plan := reducedCampaign(t, false)
	poisoned := poisonPlan(plan, 3, 7)
	for _, workers := range []int{1, 8} {
		tgt := *target
		tgt.Workers = workers
		_, err := tgt.Run(g, poisoned)
		if err == nil {
			t.Fatalf("workers=%d: poisoned campaign succeeded", workers)
		}
		wrapped := fmt.Errorf("campaign: %w", err)
		var ee *inject.ExperimentError
		if !errors.As(wrapped, &ee) {
			t.Fatalf("workers=%d: error %v is not an *ExperimentError", workers, err)
		}
		if ee.PlanIndex != 3 {
			t.Fatalf("workers=%d: failing plan index %d, want 3 (lowest index wins)", workers, ee.PlanIndex)
		}
		if ee.Injection != poisoned[3] {
			t.Fatalf("workers=%d: ExperimentError carries the wrong injection", workers)
		}
		if ee.Attempts != 1 {
			t.Fatalf("workers=%d: attempts = %d, want 1 (no retries configured)", workers, ee.Attempts)
		}
		if ee.Unwrap() == nil {
			t.Fatalf("workers=%d: ExperimentError must unwrap to the recovered panic", workers)
		}
	}
}

// TestRetriesExhaustPersistentFailure: a deterministic panic fails all
// 1+N attempts, and the attempt count is reported faithfully.
func TestRetriesExhaustPersistentFailure(t *testing.T) {
	target, g, plan := reducedCampaign(t, false)
	poisoned := poisonPlan(plan, 0)
	tgt := *target
	tgt.Supervision = inject.Supervision{Retries: 4}
	_, err := tgt.Run(g, poisoned[:1])
	var ee *inject.ExperimentError
	if !errors.As(err, &ee) {
		t.Fatalf("got %v, want *ExperimentError", err)
	}
	if ee.Attempts != 5 {
		t.Fatalf("attempts = %d, want 5 (1 + 4 retries)", ee.Attempts)
	}
}
