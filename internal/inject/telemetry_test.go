package inject_test

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/inject"
	"repro/internal/telemetry"
)

// instrumented attaches a full telemetry stack — journal into a buffer
// (clockless, so the test itself stays deterministic), metrics registry,
// progress snapshots — to a copy of the target.
func instrumented(target *inject.Target) (*inject.Target, *telemetry.Campaign, *bytes.Buffer) {
	var buf bytes.Buffer
	tel := telemetry.NewCampaign(telemetry.NewJournal(&buf, nil), nil)
	tgt := *target
	tgt.Telemetry = tel
	return &tgt, tel, &buf
}

// TestTelemetryNeutralityMatrix is the out-of-band contract of the
// telemetry layer: with journal + metrics + progress snapshots enabled,
// the merged campaign report must be byte-identical to the
// uninstrumented serial reference — across worker counts, on both case
// studies, and across a mid-campaign checkpoint resume.
func TestTelemetryNeutralityMatrix(t *testing.T) {
	for _, v2 := range []bool{false, true} {
		name := "v1"
		if v2 {
			name = "v2"
		}
		t.Run(name, func(t *testing.T) {
			target, g, plan := reducedCampaign(t, v2)
			ref, err := target.Run(g, plan)
			if err != nil {
				t.Fatal(err)
			}
			refRender := fmt.Sprintf("%#v", ref)

			for _, workers := range []int{1, 8} {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					tgt, tel, journal := instrumented(target)
					tgt.Workers = workers
					rep, err := tgt.Run(g, plan)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(ref, rep) {
						t.Fatal("instrumented report differs from uninstrumented reference")
					}
					if fmt.Sprintf("%#v", rep) != refRender {
						t.Fatal("instrumented report renders differently from reference")
					}
					// The telemetry must actually have observed the campaign —
					// a no-op hub would make neutrality vacuous. Close flushes
					// the journal's buffered tail into the byte buffer.
					if err := tel.Journal.Close(); err != nil {
						t.Fatal(err)
					}
					snap := tel.Snapshot()
					if snap.Done != int64(len(plan)) {
						t.Fatalf("telemetry saw %d done, want %d", snap.Done, len(plan))
					}
					if snap.SimCycles == 0 {
						t.Fatal("telemetry saw no simulated cycles")
					}
					for _, ev := range []string{`"ev":"campaign_start"`, `"ev":"exp_finish"`, `"ev":"summary"`} {
						if !strings.Contains(journal.String(), ev) {
							t.Fatalf("journal missing %s event", ev)
						}
					}
					if n := strings.Count(journal.String(), `"ev":"exp_finish"`); n != len(plan) {
						t.Fatalf("journal has %d exp_finish events, want %d", n, len(plan))
					}
					// Progress snapshots are pure reads; pin the summary line
					// shape while we have a finished campaign at hand.
					line := snap.Line()
					if !strings.HasPrefix(line, fmt.Sprintf("progress: %d/%d exp (100.0%%)", len(plan), len(plan))) {
						t.Fatalf("unexpected progress line: %q", line)
					}
				})
			}

			t.Run("resume", func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "campaign.ckpt")
				tgt, _, _ := instrumented(target)
				tgt.Workers = 8
				tgt.Supervision = inject.Supervision{
					Checkpoint: path, CheckpointEvery: 1, StopAfter: len(plan) / 2,
				}
				if _, err := tgt.Run(g, plan); !errors.Is(err, inject.ErrCampaignStopped) {
					t.Fatalf("interrupted run: got %v, want ErrCampaignStopped", err)
				}
				tgt, tel, journal := instrumented(target)
				tgt.Workers = 8
				tgt.Supervision = inject.Supervision{Checkpoint: path, Resume: true}
				rep, err := tgt.Run(g, plan)
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
				if !reflect.DeepEqual(ref, rep) {
					t.Fatal("instrumented resumed report differs from reference")
				}
				if fmt.Sprintf("%#v", rep) != refRender {
					t.Fatal("instrumented resumed report renders differently from reference")
				}
				// The resumed half arrives via checkpoint_load, the rest as
				// live experiments; together they cover the plan.
				if err := tel.Journal.Close(); err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(journal.String(), `"ev":"checkpoint_load"`) {
					t.Fatal("journal missing checkpoint_load event on resume")
				}
				snap := tel.Snapshot()
				if snap.Done != int64(len(plan)) {
					t.Fatalf("telemetry saw %d done after resume, want %d", snap.Done, len(plan))
				}
				if snap.Preloaded == 0 {
					t.Fatal("telemetry saw no preloaded experiments on a mid-campaign resume")
				}
			})
		})
	}
}
