package inject

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/zones"
)

// Outcome classifies one injection experiment against the golden run.
type Outcome uint8

// Outcomes. Silent faults never reach an observation point (masked —
// not a hazard per Section 3). DetectedSafe faults raise a diagnostic
// alarm without functional deviation. DangerousDetected corrupt a
// functional output with the alarm raised; DangerousUndetected corrupt
// it silently — the λDU contributors. Aborted experiments were
// terminated by a supervision watchdog (cycle or wall-clock budget)
// before a verdict; the analyzer treats them as dangerous undetected,
// the conservative bound.
const (
	Silent Outcome = iota
	DetectedSafe
	DangerousDetected
	DangerousUndetected
	Aborted
)

func (o Outcome) String() string {
	switch o {
	case Silent:
		return "silent"
	case DetectedSafe:
		return "detected-safe"
	case DangerousDetected:
		return "dangerous-detected"
	case DangerousUndetected:
		return "dangerous-undetected"
	case Aborted:
		return "aborted"
	default:
		// A corrupted checkpoint or future enum drift must not
		// masquerade as a valid conservative verdict.
		return fmt.Sprintf("unknown(%d)", uint8(o))
	}
}

// ExpResult is the outcome of one injection experiment.
type ExpResult struct {
	Injection
	Outcome Outcome
	// Sens reports whether the injection actually perturbed the zone
	// (the SENS monitor).
	Sens bool
	// Deviated lists observation points that differed from golden.
	Deviated []int
	// FirstDevCycle is the earliest deviation cycle (-1 when none).
	FirstDevCycle int
}

// Coverage aggregates the campaign-completeness monitors: an item set is
// complete when every member was exercised at least once.
type Coverage struct {
	// SensZones[z] = true when some injection perturbed zone z.
	SensZones []bool
	// ObseSeen[o] = true when observation point o deviated at least once.
	ObseSeen []bool
	// DiagSeen[o] = true when diagnostic point o fired at least once.
	DiagSeen []bool
	// Mismatches counts golden-vs-faulty output mismatches seen.
	Mismatches int
}

// Item completion fractions; the experiment is complete only at 100 %.
func (c Coverage) SensFrac() float64 { return frac(c.SensZones) }

// ObseFrac is the fraction of functional observation items covered.
func (c Coverage) ObseFrac() float64 { return frac(c.ObseSeen) }

// DiagFrac is the fraction of diagnostic items covered.
func (c Coverage) DiagFrac() float64 { return frac(c.DiagSeen) }

// Complete reports whether every coverage item was exercised.
func (c Coverage) Complete() bool {
	return c.SensFrac() == 1 && c.ObseFrac() == 1 && c.DiagFrac() == 1
}

func frac(b []bool) float64 {
	if len(b) == 0 {
		return 1
	}
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return float64(n) / float64(len(b))
}

// Report is the full campaign result. Quarantined lists experiments
// the supervisor isolated after exhausting retries (empty unless
// Supervision.Quarantine is on); they carry no verdict, so coverage
// items they would have exercised stay unset and the analyzer counts
// them as dangerous undetected — the conservative bound.
type Report struct {
	Results     []ExpResult
	Quarantined []Quarantined
	Coverage    Coverage
}

// Degraded reports whether the campaign finished without a full
// verdict on every planned experiment — some rows quarantined or
// watchdog-aborted. A degraded campaign still validates, but its
// measured fractions are conservative lower bounds and a
// certification report must call the grade CONDITIONAL.
func (r *Report) Degraded() bool {
	return len(r.Quarantined) > 0 || r.AbortedCount() > 0
}

// AbortedCount is the number of watchdog-aborted experiments.
func (r *Report) AbortedCount() int {
	n := 0
	for i := range r.Results {
		if r.Results[i].Outcome == Aborted {
			n++
		}
	}
	return n
}

// Run executes the injection campaign: one golden-aligned faulty
// simulation per planned injection, with the SENS/OBSE/DIAG monitors
// and coverage collection of Fig. 4. With Target.Workers unset (0) the
// campaign runs serially; any other value shards it across that many
// goroutines via RunParallel, whose merge keeps the report
// bit-identical to the serial order.
func (t *Target) Run(g *Golden, plan []Injection) (*Report, error) {
	workers := t.Workers
	if workers == 0 {
		workers = 1
	}
	return t.RunParallel(g, plan, workers)
}

// RunOne executes a single injection experiment against the golden
// traces (the mission-simulation entry point).
func (t *Target) RunOne(g *Golden, inj Injection) (ExpResult, error) {
	return t.runOne(g, inj)
}

// runOne executes one faulty simulation against the golden traces,
// honoring the supervision watchdogs: a cooperative cycle budget
// (deterministic — the abort point depends only on the plan) and an
// optional wall-clock budget read through the injected Supervision
// clock (a last-resort hang guard; see DESIGN.md §9 for why it is off
// by default). A watchdog stop records the Aborted outcome instead of
// hanging the worker.
func (t *Target) runOne(g *Golden, inj Injection) (ExpResult, error) {
	a := t.Analysis
	s, err := t.NewInstance()
	if err != nil {
		return ExpResult{}, err
	}
	tr := g.Trace
	// Warm start: until the fault applies (after the edge of iteration
	// inj.Cycle) the faulty DUT is bit-identical to the golden one, so
	// resume from the latest golden snapshot at-or-before the injection
	// cycle instead of re-simulating the prefix.
	start := 0
	if snap := g.snapshotAtOrBefore(inj.Cycle); snap != nil {
		s.Restore(snap)
		start = int(snap.Cycle())
	}
	if b := t.Supervision.CycleBudget; b > 0 {
		// The budget counts trace cycles: charge the skipped prefix so
		// the watchdog aborts at the same absolute trace cycle as a
		// cold run (the abort point is translated, not moved).
		s.SetCycleBudget(int64(b))
		s.ChargeBudget(int64(start))
	}
	// Early-exit is behavior-preserving only when no watchdog can fire
	// mid-run: a cold run returns Aborted when the budget expires even
	// after the outcome is pinned, so with a live watchdog we must keep
	// simulating to reproduce that verdict (see DESIGN.md §11).
	cb := t.Supervision.CycleBudget
	earlyExitSafe := (cb <= 0 || cb >= tr.Cycles()) &&
		(t.Supervision.WallBudget <= 0 || t.Supervision.Clock == nil)
	wallCheck := t.Supervision.wallChecker()
	res := ExpResult{Injection: inj, FirstDevCycle: -1}
	deviated := map[int]bool{}
	funcDev, diagDev := false, false
	var simulated int64
	for c := start; c < tr.Cycles(); c++ {
		if s.BudgetExceeded() || wallCheck(c) {
			res.Outcome = Aborted
			t.Telemetry.AddSimCycles(simulated)
			return res, nil
		}
		tr.ApplyTo(s, c)
		s.Eval()
		s.Step()
		simulated++
		// Faults are applied after the clock edge: an SEU corrupts the
		// state that was just latched; a stuck-at becomes visible from
		// this cycle's settled values onward.
		if c == inj.Cycle {
			inj.Fault.Apply(s)
		}
		if inj.Duration > 0 && c == inj.Cycle+inj.Duration {
			inj.Fault.Remove(s)
		}
		// Monitors.
		if c >= inj.Cycle {
			if !res.Sens {
				if foldNets(s, a.EffectNets(inj.Zone)) != g.zoneVals[inj.Zone][c] {
					res.Sens = true
				}
			}
			for oi := range a.Obs {
				v, x := s.ReadBusX(a.Obs[oi].Nets)
				if v != g.obs[oi].val[c] || x != g.obs[oi].x[c] {
					if !deviated[oi] {
						deviated[oi] = true
						res.Deviated = append(res.Deviated, oi)
					}
					if res.FirstDevCycle < 0 {
						res.FirstDevCycle = c
					}
					if a.Obs[oi].Kind == zones.Diagnostic {
						diagDev = true
					} else {
						funcDev = true
					}
				}
			}
			// Early exit: once every monitor is pinned — functional and
			// diagnostic deviation seen, SENS established (or implied by
			// a flip fault), and every observation point already in
			// Deviated — the remaining cycles cannot change any field of
			// the result row.
			if earlyExitSafe && funcDev && diagDev &&
				(res.Sens || inj.Fault.Kind == faults.Flip) &&
				len(res.Deviated) == len(a.Obs) {
				break
			}
		}
	}
	switch {
	case funcDev && diagDev:
		res.Outcome = DangerousDetected
	case funcDev:
		res.Outcome = DangerousUndetected
	case diagDev:
		res.Outcome = DetectedSafe
	default:
		res.Outcome = Silent
	}
	// A flip injection applies to FF state directly; SENS is implied.
	if inj.Fault.Kind == faults.Flip {
		res.Sens = true
	}
	t.Telemetry.AddSimCycles(simulated)
	return res, nil
}
