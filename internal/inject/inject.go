// Package inject implements the paper's Fig. 4 fault-injection
// environment used to validate the FMEA (Section 5):
//
//   - Environment builder — derives the injection environment (zone
//     failure modes, observation and diagnostic points, monitors) from
//     the zone analysis;
//   - Operational profiler — traces fault-free per-zone activity under
//     the workload so only non-trivial faults are generated;
//   - Collapser and randomizer — deterministic fault-list generation;
//   - Fault-injection manager — runs golden vs faulty simulations;
//   - Monitors and coverage collection — SENS / OBSE / DIAG items;
//   - Result analyzer — measured S, D and DDF per zone, effects tables,
//     and the cross-check against the FMEA worksheet.
package inject

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
	"repro/internal/zones"
)

// Target is the device under test: the analyzed netlist and a factory
// producing fresh simulator instances (with behavioral peripherals
// attached and any start-up sequence already run).
type Target struct {
	Analysis *zones.Analysis
	// NewInstance returns a ready simulator; called once for the golden
	// run and once per injection. When Workers != 0 it is called from
	// several goroutines concurrently, so the factory must not share
	// mutable state between instances.
	NewInstance func() (*sim.Simulator, error)
	// Workers shards Run across this many goroutines (0 = serial,
	// negative = runtime.NumCPU()); the merged report is bit-identical
	// to the serial one for any value. See RunParallel.
	Workers int
	// Supervision is the fault-tolerance policy of campaign execution:
	// watchdog budgets, retry/quarantine and checkpoint/resume. The
	// zero value keeps the historical fail-fast behavior.
	Supervision Supervision
	// Telemetry is the campaign observability hub (metrics, journal,
	// progress) — nil disables the layer at the cost of one pointer
	// check per hook. Telemetry is strictly out-of-band: the campaign
	// report is byte-identical with it on or off (see the neutrality
	// matrix test).
	Telemetry *telemetry.Campaign
	// Lanes > 1 enables the compiled word-parallel kernel
	// (internal/simc): up to Lanes experiments (max 64) restore from the
	// same golden snapshot and run in lockstep, one per bit-lane of a
	// machine word, with per-lane fault masks and per-lane monitor
	// retirement. The merged report stays bit-identical to the serial
	// path for any (Workers x Lanes) combination — lanes are a pure
	// throughput knob, like Workers (see the lanes neutrality matrix
	// test). Experiments the kernel cannot batch (and every experiment
	// when the nondeterministic wall-clock watchdog is armed) fall back
	// to the serial per-experiment path automatically.
	Lanes int
	// Collapse enables the static fault-analysis pre-pass
	// (internal/statfault) before simulation: rows whose verdict is
	// statically provable (unobservable cones, untestable constants,
	// golden-quiescent forces) are classified without simulating, and
	// campaign-exact equivalent rows are simulated once with the
	// outcome copied onto every class member during the in-order
	// merge. Like Workers and Lanes this is a pure throughput knob:
	// the report stays byte-identical to the uncollapsed run (see the
	// collapse neutrality matrix test). Automatically disabled while a
	// wall-clock watchdog is armed.
	Collapse bool
	// SnapshotEvery is the golden-state snapshot cadence in cycles
	// (0 = no snapshots, every faulty run starts cold at cycle 0).
	// When set, RunGolden captures the simulator state every
	// SnapshotEvery cycles and runOne warm-starts each experiment from
	// the snapshot at-or-before its injection cycle. The faulty DUT is
	// bit-identical to the golden one until the fault applies, so the
	// report stays byte-identical to a cold start (see the warm-start
	// neutrality matrix test).
	SnapshotEvery int
}

// obsTrace is the recorded (value, xmask) stream of one observation
// point.
type obsTrace struct {
	val []uint64
	x   []uint64
}

// Golden is the fault-free reference run: observation-point traces and
// the operational profile.
type Golden struct {
	Trace *workload.Trace
	a     *zones.Analysis
	// obs[i] follows Analysis.Obs[i].
	obs []obsTrace
	// zoneVals[z][c] is a fold of zone z's output nets at cycle c.
	zoneVals [][]uint64
	// Activity[z] lists cycles where zone z's outputs changed — the
	// operational profile ("traced read/write activity").
	Activity [][]int
	// snaps are golden-state snapshots in ascending cycle order
	// (captured at Target.SnapshotEvery cadence); shared read-only
	// across worker goroutines, restored via Simulator.Restore.
	snaps []*sim.Snapshot
}

// snapshotAtOrBefore returns the latest golden snapshot whose resume
// cycle is at or before the given cycle, or nil if none qualifies (the
// run then starts cold). Equality is allowed: a snapshot at cycle c
// restores the state *entering* iteration c, before the fault of an
// injection at cycle c is applied.
func (g *Golden) snapshotAtOrBefore(cycle int) *sim.Snapshot {
	var best *sim.Snapshot
	for _, sn := range g.snaps {
		if sn.Cycle() > int64(cycle) {
			break
		}
		best = sn
	}
	return best
}

// RunGolden performs the fault-free reference simulation, recording
// observation traces and the operational profile.
func (t *Target) RunGolden(tr *workload.Trace) (*Golden, error) {
	gsp := t.Telemetry.StartSpanInt("golden-run", "cycles", int64(tr.Cycles()))
	s, err := t.NewInstance()
	if err != nil {
		gsp.EndOutcome("error")
		return nil, err
	}
	a := t.Analysis
	g := &Golden{
		Trace:    tr,
		a:        a,
		obs:      make([]obsTrace, len(a.Obs)),
		zoneVals: make([][]uint64, len(a.Zones)),
		Activity: make([][]int, len(a.Zones)),
	}
	for zi := range a.Zones {
		g.zoneVals[zi] = make([]uint64, tr.Cycles())
	}
	// The golden run is one long serial simulation — often the largest
	// indivisible chunk of a campaign — so it polls the cancellation
	// channel at the same 256-cycle cadence as the wall watchdog.
	interrupted := t.Supervision.interrupted()
	for c := 0; c < tr.Cycles(); c++ {
		if c&0xff == 0 && interrupted() {
			gsp.EndOutcome("interrupted")
			return nil, ErrCampaignInterrupted
		}
		tr.ApplyTo(s, c)
		s.Eval()
		s.Step()
		for oi := range a.Obs {
			v, x := s.ReadBusX(a.Obs[oi].Nets)
			g.obs[oi].val = append(g.obs[oi].val, v)
			g.obs[oi].x = append(g.obs[oi].x, x)
		}
		for zi := range a.Zones {
			g.zoneVals[zi][c] = foldNets(s, a.EffectNets(zi))
		}
		// Captured after Step: the snapshot's cycle is c+1, exactly the
		// state entering iteration c+1 of a faulty run. A snapshot at
		// the final cycle could never be used, so it is skipped.
		if t.SnapshotEvery > 0 && (c+1)%t.SnapshotEvery == 0 && c+1 < tr.Cycles() {
			g.snaps = append(g.snaps, s.Snapshot())
		}
	}
	for zi := range a.Zones {
		prev := uint64(0)
		for c, v := range g.zoneVals[zi] {
			if c == 0 || v != prev {
				g.Activity[zi] = append(g.Activity[zi], c)
			}
			prev = v
		}
	}
	t.Telemetry.AddSimCycles(int64(tr.Cycles()))
	gsp.End()
	return g, nil
}

// foldNets hashes a net set's values (with X distinguished) into one
// word, mixing position so wide buses don't alias.
func foldNets(s *sim.Simulator, nets []netlist.NetID) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset
	for _, id := range nets {
		h = (h ^ uint64(s.Net(id))) * 1099511628211
	}
	return h
}

// CompletenessOK reports whether the workload triggered every sensible
// zone at least twice (initial value + one change) — the deterministic
// workload-completeness check of Section 4. Zones whose effects reach
// only diagnostic observation points (alarm registers, error logs and
// the alarm output ports themselves) are exempt: by construction they
// stay quiet in a fault-free run.
func (g *Golden) CompletenessOK() (ok bool, inactive []int) {
	for zi, act := range g.Activity {
		if g.pureDiagnostic(zi) {
			continue
		}
		if len(act) < 2 {
			inactive = append(inactive, zi)
		}
	}
	return len(inactive) == 0, inactive
}

// pureDiagnostic reports whether every effect of the zone lands on a
// diagnostic observation point.
func (g *Golden) pureDiagnostic(zi int) bool {
	effects := append([]int{}, g.a.MainEffects(zi)...)
	effects = append(effects, g.a.SecondaryEffects(zi)...)
	if len(effects) == 0 {
		return true // unobservable zone; nothing a workload could show
	}
	for _, oi := range effects {
		if g.a.Obs[oi].Kind != zones.Diagnostic {
			return false
		}
	}
	return true
}

// ExpClass distinguishes the three experiment families of Section 5.
type ExpClass uint8

// ZoneFailure experiments inject the zone's failure modes at its
// boundary (Section 5a — these validate the Fig. 1–3 effect model).
// ConeFault experiments inject physical faults inside a fan-in cone
// (Section 5c selective injection). WideFault experiments target gates
// shared between cones (Section 5d).
const (
	ZoneFailure ExpClass = iota
	ConeFault
	WideFault
)

// Injection is one planned experiment: a fault applied to a zone at a
// chosen cycle, optionally released after Duration cycles (0 = stays
// until the end — a permanent fault).
type Injection struct {
	Zone     int
	Fault    faults.Fault
	Cycle    int
	Duration int
	Class    ExpClass
	// Mode labels the zone failure mode this experiment exercises.
	Mode string
}

// Describe renders the injection.
func (in Injection) Describe(a *zones.Analysis) string {
	return fmt.Sprintf("zone %q %s at cycle %d (dur %d)",
		a.Zones[in.Zone].Name, in.Fault.Describe(a.N), in.Cycle, in.Duration)
}
