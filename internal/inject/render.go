package inject

import (
	"fmt"
	"io"

	"repro/internal/fmea"
	"repro/internal/report"
	"repro/internal/zones"
)

// WriteText renders the canonical campaign report: coverage summary,
// per-zone measured outcomes, watchdog/quarantine degradation, the
// worksheet cross-check and the effect-table consistency verdict. This
// is the byte-identity surface of the determinism contract — the same
// completed campaign state produces the same bytes whether it ran
// serially, sharded across goroutines, or leased across worker
// processes by the distributed coordinator (internal/dist), so CI can
// diff the report of any execution topology against the serial
// reference. cmd/injector and cmd/campaignd both emit exactly this
// text.
func (r *Report) WriteText(w io.Writer, a *zones.Analysis, wks *fmea.Worksheet, tol float64) {
	cov := r.Coverage
	fmt.Fprintf(w, "coverage: SENS %s  OBSE %s  DIAG %s  (%d mismatches)\n",
		report.Pct(cov.SensFrac()), report.Pct(cov.ObseFrac()), report.Pct(cov.DiagFrac()), cov.Mismatches)

	t := report.NewTable("\nPer-zone measured outcomes",
		"zone", "exp", "silent", "det-safe", "dang-det", "dang-undet", "S(meas)", "DDF(meas)")
	for _, zm := range r.ZoneMeasures(a) {
		t.AddRow(zm.Name, zm.Experiments, zm.Silent, zm.DetSafe, zm.DangerDet, zm.DangerUndet,
			zm.SMeasured(), zm.DDFMeasured())
	}
	fmt.Fprintln(w, t.Render())

	if n := r.AbortedCount(); n > 0 {
		fmt.Fprintf(w, "WATCHDOG: %d experiment(s) aborted on budget (counted dangerous-undetected)\n", n)
	}
	if len(r.Quarantined) > 0 {
		qt := report.NewTable("\nQuarantined experiments (no verdict; counted dangerous-undetected)",
			"plan#", "injection", "attempts", "error")
		for _, q := range r.Quarantined {
			qt.AddRow(q.PlanIndex, q.Injection.Describe(a), q.Attempts, q.Err)
		}
		fmt.Fprintln(w, qt.Render())
	}

	rows := r.ValidateWorksheet(a, wks, tol)
	bad := 0
	for _, row := range rows {
		if !row.Within {
			bad++
			flagNote := ""
			if row.Degraded > 0 {
				flagNote = fmt.Sprintf("  [%d experiment(s) without verdict — conservative bound]", row.Degraded)
			}
			fmt.Fprintf(w, "OVER-CLAIM: %-28s estS=%.2f measS=%.2f estDDF=%.2f measDDF=%.2f%s\n",
				row.Name, row.EstS, row.MeasS, row.EstDDF, row.MeasDDF, flagNote)
		}
	}
	fmt.Fprintf(w, "worksheet cross-check: %s of %d zones within tolerance (%d over-claims)\n",
		report.Pct(PassFraction(rows)), len(rows), bad)

	inconsistent := 0
	for _, ec := range r.CheckEffects(a) {
		if !ec.Consistent {
			inconsistent++
			fmt.Fprintf(w, "NEW EFFECTS for zone %s: observation points %v not in main/secondary prediction\n",
				ec.Name, ec.Unpredicted)
		}
	}
	if inconsistent == 0 {
		fmt.Fprintln(w, "effect tables consistent with main/secondary analysis: PASS")
	}
}
