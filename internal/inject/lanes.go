package inject

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/simc"
	"repro/internal/zones"
)

// This file is the word-parallel campaign path (Target.Lanes > 1): up
// to 64 experiments share one compiled simc.Machine, one bit-lane each.
// Every lane replays exactly the serial runOne protocol — warm start,
// fault apply/remove after the edge, SENS/OBSE/DIAG monitors against
// the golden traces, per-lane cycle-budget aborts and per-lane early
// retirement — so the batch results demux into the same in-order merge
// and the report stays bit-identical to the serial campaign.

// batchable reports whether the compiled kernel can host the injection
// in a lane. Every fault model the planners emit qualifies; anything
// unknown runs on the serial per-experiment path instead.
func batchable(inj Injection) bool {
	f := inj.Fault
	switch f.Kind {
	case faults.SA0, faults.SA1:
		return f.Site == faults.SiteNet || f.Site == faults.SitePin
	case faults.DelayX:
		return f.Site == faults.SiteNet
	case faults.Flip:
		return f.Site == faults.SiteFF
	case faults.BridgeAND, faults.BridgeOR:
		return f.Site == faults.SiteNet
	}
	return false
}

// buildUnits partitions the pending plan indices of the span [lo, hi)
// into work units: each unbatchable experiment is its own unit;
// batchable ones are sorted by (injection cycle, plan index) — so the
// lanes of one batch want the same golden snapshot — and chunked into
// units of up to lanes members. Units are ordered by their lowest plan
// index, approximating the ascending claim order of the per-experiment
// cursor. Rows the static pre-pass collapsed onto a representative
// (pc non-nil) are excluded: they inherit their result after the drain
// instead of occupying a lane.
func buildUnits(st *campaignState, plan []Injection, lanes int, pc *planCollapse, lo, hi int) [][]int {
	var units [][]int
	var batch []int
	for i := lo; i < hi; i++ {
		if st.slots[i].done {
			continue
		}
		if pc != nil && pc.dep[i] >= 0 {
			continue
		}
		if batchable(plan[i]) {
			batch = append(batch, i)
		} else {
			units = append(units, []int{i})
		}
	}
	sort.Slice(batch, func(x, y int) bool {
		a, b := batch[x], batch[y]
		if plan[a].Cycle != plan[b].Cycle {
			return plan[a].Cycle < plan[b].Cycle
		}
		return a < b
	})
	for len(batch) > 0 {
		n := min(lanes, len(batch))
		units = append(units, batch[:n])
		batch = batch[n:]
	}
	sort.Slice(units, func(x, y int) bool {
		return minIndex(units[x]) < minIndex(units[y])
	})
	return units
}

func minIndex(unit []int) int {
	m := unit[0]
	for _, i := range unit[1:] {
		if i < m {
			m = i
		}
	}
	return m
}

// runBatchRecovered is runBatch with panic isolation, like
// runRecovered: a failing batch is discarded whole and every member is
// retried on the serial supervised path.
func (t *Target) runBatchRecovered(g *Golden, prog *simc.Program, plan []Injection, idxs []int) (res []ExpResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("lane batch panic: %v", r)
		}
	}()
	return t.runBatch(g, prog, plan, idxs)
}

// laneExp is the per-lane bookkeeping of one batch member.
type laneExp struct {
	inj Injection
	bit uint64

	netRef simc.ForceRef
	hasNet bool
	pinRef simc.ForceRef
	hasPin bool
	brRef  simc.BridgeRef
	hasBr  bool

	// abortAt is the absolute trace cycle where the cooperative cycle
	// budget fires for this lane (-1 = no budget). As in the serial
	// path, the skipped warm-start prefix is charged to the budget, so
	// the abort cycle is the same as a cold run's.
	abortAt int

	effNets   []netlist.NetID
	zoneTrace []uint64
}

// runBatch executes up to 64 planned experiments in lockstep, one per
// bit-lane of a compiled machine, and returns their results in idxs
// order. Any error (or panic, via runBatchRecovered) means no result
// was produced for any member; the caller reruns them serially.
func (t *Target) runBatch(g *Golden, prog *simc.Program, plan []Injection, idxs []int) ([]ExpResult, error) {
	a := t.Analysis
	tr := g.Trace
	lanes := len(idxs)
	if lanes > 64 {
		return nil, fmt.Errorf("inject: lanes: batch of %d exceeds the 64-lane word", lanes)
	}

	ports := make([]netlist.Port, len(tr.Ports))
	for pi, name := range tr.Ports {
		p, ok := prog.Netlist().FindInput(name)
		if !ok {
			return nil, fmt.Errorf("inject: lanes: trace port %q not in netlist", name)
		}
		ports[pi] = p
	}

	m := simc.NewMachine(prog)
	lcs := make([]laneExp, lanes)
	minCycle := plan[idxs[0]].Cycle
	for k, i := range idxs {
		inj := plan[i]
		lc := &lcs[k]
		lc.inj = inj
		lc.bit = uint64(1) << uint(k)
		lc.effNets = a.EffectNets(inj.Zone)
		lc.zoneTrace = g.zoneVals[inj.Zone]
		if inj.Cycle < minCycle {
			minCycle = inj.Cycle
		}
		f := inj.Fault
		switch {
		case f.Kind == faults.Flip:
			// State flips need no force point; FlipFF hits the lane mask.
		case f.Kind == faults.BridgeAND || f.Kind == faults.BridgeOR:
			lc.brRef = m.AddBridge(f.Net, f.Net2, f.Kind == faults.BridgeAND)
			lc.hasBr = true
		case f.Site == faults.SitePin:
			ref, err := m.AddPinForce(f.Gate, f.Pin)
			if err != nil {
				return nil, err
			}
			lc.pinRef, lc.hasPin = ref, true
		default: // SA0/SA1/DelayX on a net
			lc.netRef, lc.hasNet = m.AddNetForce(f.Net), true
		}
		laneStart := 0
		if sn := g.snapshotAtOrBefore(inj.Cycle); sn != nil {
			laneStart = int(sn.Cycle())
		}
		lc.abortAt = -1
		if cb := t.Supervision.CycleBudget; cb > 0 {
			lc.abortAt = maxInt(laneStart, cb)
		}
	}

	// The batch resumes from the snapshot usable by its earliest
	// injection; later lanes deterministically replay the golden prefix
	// they would have skipped serially, which cannot change their
	// results (the faulty DUT is golden until the fault applies).
	snap := g.snapshotAtOrBefore(minCycle)
	start := 0
	if snap != nil {
		start = int(snap.Cycle())
	}

	// Each lane gets its own peripheral instances (behavioral models
	// hold internal state), sampling and committing through lane-local
	// accessors inside the machine's clock-edge callback.
	periphs := make([][]sim.Peripheral, lanes)
	gets := make([]func(netlist.NetID) sim.Value, lanes)
	sets := make([]func(netlist.NetID, sim.Value), lanes)
	for k := range lcs {
		s, err := t.NewInstance()
		if err != nil {
			return nil, err
		}
		periphs[k] = s.Peripherals()
		if snap != nil {
			ps := snap.PeripheralStates()
			if len(ps) != len(periphs[k]) {
				return nil, fmt.Errorf("inject: lanes: snapshot has %d peripheral state(s), instance has %d",
					len(ps), len(periphs[k]))
			}
			for j, p := range periphs[k] {
				p.RestoreState(ps[j])
			}
			m.LoadLane(k, snap.FFValues(), snap.ExtValues())
		} else {
			// Cold start: the lane begins exactly where a fresh serial
			// instance would.
			sn := s.Snapshot()
			m.LoadLane(k, sn.FFValues(), sn.ExtValues())
		}
		lane := k
		gets[k] = func(id netlist.NetID) sim.Value { return m.NetValue(lane, id) }
		sets[k] = func(id netlist.NetID, v sim.Value) { m.SetExt(lane, id, v) }
	}

	cb := t.Supervision.CycleBudget
	earlyExitSafe := cb <= 0 || cb >= tr.Cycles()

	full := ^uint64(0) >> uint(64-lanes)
	active := full
	var abortedLanes, sensLanes, funcLanes, diagLanes, flipLanes, elig uint64
	for k := range lcs {
		if lcs[k].inj.Fault.Kind == faults.Flip {
			flipLanes |= lcs[k].bit
		}
	}
	seen := make([]uint64, len(a.Obs))
	firstDev := make([]int, lanes)
	for k := range firstDev {
		firstDev[k] = -1
	}
	devList := make([][]int, lanes)

	retire := func(k int) {
		lc := &lcs[k]
		active &^= lc.bit
		// Disarm the lane's fault so a retired lane cannot keep a bridge
		// fixpoint (or anything else) busy; its planes are never read
		// again.
		if lc.hasNet {
			m.ClearForce(lc.netRef, lc.bit)
		}
		if lc.hasPin {
			m.ClearForce(lc.pinRef, lc.bit)
		}
		if lc.hasBr {
			m.DisarmBridge(lc.brRef, lc.bit)
		}
	}
	tick := func() {
		for k := range periphs {
			if active&lcs[k].bit == 0 {
				continue
			}
			for _, p := range periphs[k] {
				p.Sample(gets[k])
			}
		}
		for k := range periphs {
			if active&lcs[k].bit == 0 {
				continue
			}
			for _, p := range periphs[k] {
				p.Commit(sets[k])
			}
		}
	}

	var stepped int64
	for c := start; c < tr.Cycles() && active != 0; c++ {
		// Cooperative watchdog, checked before the cycle is simulated —
		// the same point the serial loop polls its budget.
		for k := range lcs {
			lc := &lcs[k]
			if active&lc.bit != 0 && lc.abortAt >= 0 && c >= lc.abortAt {
				abortedLanes |= lc.bit
				retire(k)
			}
		}
		if active == 0 {
			break
		}
		vec := tr.Vecs[c]
		for pi := range ports {
			for bit, id := range ports[pi].Nets {
				m.DriveInput(id, sim.FromBool(vec[pi]>>uint(bit)&1 == 1))
			}
		}
		m.Eval()
		m.Step(tick)
		stepped++
		// Faults apply after the clock edge, per lane.
		dirty := false
		for k := range lcs {
			lc := &lcs[k]
			if active&lc.bit == 0 {
				continue
			}
			if c == lc.inj.Cycle {
				applyLaneFault(m, lc)
				dirty = true
			}
			if lc.inj.Duration > 0 && c == lc.inj.Cycle+lc.inj.Duration {
				removeLaneFault(m, lc)
				dirty = true
			}
		}
		if dirty {
			m.Eval()
		}
		// Monitors, for lanes whose injection cycle has been reached.
		if elig != full {
			for k := range lcs {
				if elig&lcs[k].bit == 0 && c >= lcs[k].inj.Cycle {
					elig |= lcs[k].bit
				}
			}
		}
		mon := elig & active
		if mon == 0 {
			continue
		}
		for k := range lcs {
			lc := &lcs[k]
			if mon&lc.bit == 0 || sensLanes&lc.bit != 0 {
				continue
			}
			if foldLane(m, k, lc.effNets) != lc.zoneTrace[c] {
				sensLanes |= lc.bit
			}
		}
		for oi := range a.Obs {
			gv, gx := g.obs[oi].val[c], g.obs[oi].x[c]
			var diff uint64
			for bit, id := range a.Obs[oi].Nets {
				nv, nx := m.NetPlanes(id)
				diff |= (nv ^ -(gv >> uint(bit) & 1)) | (nx ^ -(gx >> uint(bit) & 1))
			}
			diff &= mon
			if diff == 0 {
				continue
			}
			newly := diff &^ seen[oi]
			seen[oi] |= newly
			for w := newly; w != 0; w &= w - 1 {
				k := bits.TrailingZeros64(w)
				devList[k] = append(devList[k], oi)
			}
			for w := diff; w != 0; w &= w - 1 {
				k := bits.TrailingZeros64(w)
				if firstDev[k] < 0 {
					firstDev[k] = c
				}
			}
			if a.Obs[oi].Kind == zones.Diagnostic {
				diagLanes |= diff
			} else {
				funcLanes |= diff
			}
		}
		// Per-lane early retirement: a lane with every monitor pinned
		// cannot change its result row, so it stops consuming work while
		// its siblings run on.
		if earlyExitSafe {
			done := mon & funcLanes & diagLanes & (sensLanes | flipLanes)
			for w := done; w != 0; w &= w - 1 {
				k := bits.TrailingZeros64(w)
				if len(devList[k]) == len(a.Obs) {
					retire(k)
				}
			}
		}
	}
	t.Telemetry.AddSimCycles(stepped)

	results := make([]ExpResult, lanes)
	for k := range lcs {
		lc := &lcs[k]
		res := ExpResult{
			Injection:     lc.inj,
			Sens:          sensLanes&lc.bit != 0,
			Deviated:      devList[k],
			FirstDevCycle: firstDev[k],
		}
		if abortedLanes&lc.bit != 0 {
			// An aborted lane keeps the partial monitor fields, like the
			// serial abort return (no outcome switch, no flip override).
			res.Outcome = Aborted
		} else {
			fd, dd := funcLanes&lc.bit != 0, diagLanes&lc.bit != 0
			switch {
			case fd && dd:
				res.Outcome = DangerousDetected
			case fd:
				res.Outcome = DangerousUndetected
			case dd:
				res.Outcome = DetectedSafe
			default:
				res.Outcome = Silent
			}
			if lc.inj.Fault.Kind == faults.Flip {
				res.Sens = true
			}
		}
		results[k] = res
	}
	return results, nil
}

// applyLaneFault arms one lane's fault on the machine (the lane-masked
// equivalent of faults.Fault.Apply; the caller re-Evals).
func applyLaneFault(m *simc.Machine, lc *laneExp) {
	f := lc.inj.Fault
	switch f.Kind {
	case faults.SA0, faults.SA1:
		v := sim.V0
		if f.Kind == faults.SA1 {
			v = sim.V1
		}
		if lc.hasPin {
			m.SetForce(lc.pinRef, lc.bit, v)
		} else {
			m.SetForce(lc.netRef, lc.bit, v)
		}
	case faults.Flip:
		m.FlipFF(f.FF, lc.bit)
	case faults.BridgeAND, faults.BridgeOR:
		m.ArmBridge(lc.brRef, lc.bit)
	case faults.DelayX:
		m.SetForce(lc.netRef, lc.bit, sim.VX)
	}
}

// removeLaneFault disarms one lane's fault (faults.Fault.Remove; a Flip
// is not un-done).
func removeLaneFault(m *simc.Machine, lc *laneExp) {
	f := lc.inj.Fault
	switch f.Kind {
	case faults.SA0, faults.SA1, faults.DelayX:
		if lc.hasPin {
			m.ClearForce(lc.pinRef, lc.bit)
		} else {
			m.ClearForce(lc.netRef, lc.bit)
		}
	case faults.BridgeAND, faults.BridgeOR:
		m.DisarmBridge(lc.brRef, lc.bit)
	}
}

// foldLane is foldNets over one machine lane: the same FNV-1a fold the
// golden run recorded, so the SENS compare is exact.
func foldLane(m *simc.Machine, lane int, nets []netlist.NetID) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset
	for _, id := range nets {
		h = (h ^ uint64(m.NetValue(lane, id))) * 1099511628211
	}
	return h
}
