package inject_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/inject"
	"repro/internal/memsys"
)

// reducedCampaign builds a 64-word variant of the case-study design and
// a small OP-guided plan — enough experiments to populate every
// coverage array while keeping the race-enabled run fast.
func reducedCampaign(t testing.TB, v2 bool) (*inject.Target, *inject.Golden, []inject.Injection) {
	t.Helper()
	cfg := memsys.V1Config()
	if v2 {
		cfg = memsys.V2Config()
	}
	cfg.AddrWidth = 6
	d, err := memsys.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	target := d.InjectionTargetSeeded(a, d.SeedFaults())
	g, err := target.RunGolden(d.ValidationWorkload(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	plan := inject.BuildPlan(a, g, inject.PlanConfig{TransientPerZone: 1, PermanentPerZone: 1, Seed: 5})
	plan = append(plan, inject.WidePlan(a, g, 4, 6)...)
	// Stride-sample the plan so the test stays quick but still spans
	// many zones and all three experiment classes.
	var sampled []inject.Injection
	for i := 0; i < len(plan); i += 3 {
		sampled = append(sampled, plan[i])
	}
	return target, g, sampled
}

// TestRunParallelDeterministic: the sharded campaign runner must
// produce a byte-identical report — same per-experiment order,
// outcomes, deviation lists and coverage items — as the serial path,
// for any worker count, on both implementations of the case study.
func TestRunParallelDeterministic(t *testing.T) {
	for _, v2 := range []bool{false, true} {
		name := "v1"
		if v2 {
			name = "v2"
		}
		t.Run(name, func(t *testing.T) {
			target, g, plan := reducedCampaign(t, v2)
			serial, err := target.Run(g, plan)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8} {
				par, err := target.RunParallel(g, plan, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(serial, par) {
					t.Fatalf("workers=%d: parallel report differs from serial", workers)
				}
				// Belt and braces: the rendered representation must be
				// byte-identical too.
				if fmt.Sprintf("%#v", par) != fmt.Sprintf("%#v", serial) {
					t.Fatalf("workers=%d: rendered report differs from serial", workers)
				}
			}
		})
	}
}

// TestTargetWorkersOption: Run honors Target.Workers and still matches
// the serial report.
func TestTargetWorkersOption(t *testing.T) {
	target, g, plan := reducedCampaign(t, true)
	serial, err := target.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	target.Workers = 4
	par, err := target.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("Run with Workers=4 differs from serial Run")
	}
}
