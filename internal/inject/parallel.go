package inject

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/simc"
	"repro/internal/telemetry"
	"repro/internal/zones"
)

// covIndex maps observation-point indices onto the coverage item arrays
// (functional OBSE items vs diagnostic DIAG items). It is derived once
// per campaign and shared read-only by the merge path. funcSlot and
// diagSlot are the inverse maps — observation-point index to its slot
// in ObseSeen/DiagSeen, -1 when the point is of the other kind — so
// absorbing a deviation is O(1) instead of a scan over every item.
type covIndex struct {
	funcIdx  []int
	diagIdx  []int
	funcSlot []int
	diagSlot []int
}

// newReport allocates an empty campaign report with the coverage item
// arrays sized for the analysis, plus the observation-point index used
// to merge experiment results into it.
func newReport(a *zones.Analysis) (*Report, covIndex) {
	rep := &Report{}
	rep.Coverage.SensZones = make([]bool, len(a.Zones))
	ci := covIndex{
		funcSlot: make([]int, len(a.Obs)),
		diagSlot: make([]int, len(a.Obs)),
	}
	for oi := range a.Obs {
		ci.funcSlot[oi], ci.diagSlot[oi] = -1, -1
		if a.Obs[oi].Kind == zones.Diagnostic {
			ci.diagSlot[oi] = len(ci.diagIdx)
			ci.diagIdx = append(ci.diagIdx, oi)
		} else {
			ci.funcSlot[oi] = len(ci.funcIdx)
			ci.funcIdx = append(ci.funcIdx, oi)
		}
	}
	rep.Coverage.ObseSeen = make([]bool, len(ci.funcIdx))
	rep.Coverage.DiagSeen = make([]bool, len(ci.diagIdx))
	return rep, ci
}

// absorb folds one experiment result into the report: the result list
// and the SENS/OBSE/DIAG coverage items. Results must be absorbed in
// plan order — the runner guarantees that regardless of worker count,
// which is what makes the parallel report bit-identical to the serial
// one.
func (rep *Report) absorb(res ExpResult, ci covIndex) {
	rep.Results = append(rep.Results, res)
	if res.Sens {
		rep.Coverage.SensZones[res.Zone] = true
	}
	for _, oi := range res.Deviated {
		rep.Coverage.Mismatches++
		if s := ci.funcSlot[oi]; s >= 0 {
			rep.Coverage.ObseSeen[s] = true
		}
		if s := ci.diagSlot[oi]; s >= 0 {
			rep.Coverage.DiagSeen[s] = true
		}
	}
}

// expSlot is the per-plan-index completion cell of a campaign.
type expSlot struct {
	done bool
	quar bool
	res  ExpResult
	q    Quarantined
}

// campaignState tracks completion, quarantine and checkpoint cadence
// under one mutex; simulation dominates the cost by orders of
// magnitude, so the lock never contends meaningfully.
type campaignState struct {
	mu        sync.Mutex
	slots     []expSlot
	completed int // completions in this process (drives cadence + StopAfter)
	sinceCkpt int
}

// snapshotSpan renders the completed state of plan indices [lo, hi) as
// a Checkpoint, in canonical plan-index order.
func (st *campaignState) snapshotSpan(lo, hi int) *Checkpoint {
	ck := &Checkpoint{}
	for i := lo; i < hi; i++ {
		s := &st.slots[i]
		if !s.done {
			continue
		}
		if s.quar {
			ck.Quarantined = append(ck.Quarantined, s.q)
		} else {
			ck.Results = append(ck.Results, IndexedResult{PlanIndex: i, Result: s.res})
		}
	}
	return ck
}

// RunParallel executes the injection campaign sharded across workers
// goroutines under the Target's Supervision policy. Each worker claims
// experiments from a shared atomic cursor (dynamic load balancing —
// wide permanent faults simulate the whole trace while late transients
// are cheap), runs each one on a fresh simulator instance from
// t.NewInstance, and reads the shared golden traces strictly
// read-only. Results land in per-index slots and are merged in plan
// order, so the report is bit-identical to the serial Run for any
// worker count — including a run resumed from a checkpoint at any kill
// point.
//
// workers <= 0 selects runtime.NumCPU(); workers == 1 runs inline with
// no goroutines (the serial path). On failure without quarantine the
// *ExperimentError of the lowest-index failing experiment is returned,
// matching serial semantics: the cursor hands out indices in ascending
// order, so the first failing index is always claimed and executed
// before the abort flag can stop any later one.
func (t *Target) RunParallel(g *Golden, plan []Injection, workers int) (*Report, error) {
	st, err := t.runSpan(g, plan, workers, 0, len(plan))
	if err != nil {
		return nil, err
	}
	rep, ci := newReport(t.Analysis)
	for i := range st.slots {
		s := &st.slots[i]
		if s.quar {
			rep.Quarantined = append(rep.Quarantined, s.q)
		} else {
			rep.absorb(s.res, ci)
		}
	}
	t.Telemetry.Summary()
	return rep, nil
}

// RunRange executes only the plan indices in [lo, hi) and returns the
// completed partial campaign state as a Checkpoint — the interchange
// unit of the distributed coordinator/worker protocol (internal/dist).
// Every verdict in the returned state is exactly the one the full
// serial campaign would have produced for that plan row, so disjoint
// ranges merged in plan order (see AssembleReport) rebuild the
// bit-identical single-process report. Lanes, warm start, collapse and
// the per-experiment supervision policy all compose: they are
// per-process throughput/robustness knobs that never change a result
// row.
func (t *Target) RunRange(g *Golden, plan []Injection, workers, lo, hi int) (*Checkpoint, error) {
	if lo < 0 || hi > len(plan) || lo > hi {
		return nil, fmt.Errorf("inject: range [%d,%d) outside plan of %d", lo, hi, len(plan))
	}
	st, err := t.runSpan(g, plan, workers, lo, hi)
	if err != nil {
		return nil, err
	}
	t.Telemetry.Summary()
	return st.snapshotSpan(lo, hi), nil
}

// AssembleReport merges complete per-index campaign state — typically
// the union of RunRange checkpoints covering the whole plan — into the
// final report, using exactly the in-order merge of RunParallel, so
// the assembled report is byte-identical to a single-process run.
// Every plan index must be covered exactly once, and every record's
// injection must match the plan's; any deviation is an error, never a
// silently wrong report.
func (t *Target) AssembleReport(plan []Injection, ck *Checkpoint) (*Report, error) {
	slots := make([]expSlot, len(plan))
	place := func(i int, s expSlot, inj Injection) error {
		if i < 0 || i >= len(plan) {
			return fmt.Errorf("inject: assemble: plan index %d out of range", i)
		}
		if slots[i].done {
			return fmt.Errorf("inject: assemble: plan index %d covered twice", i)
		}
		if inj != plan[i] {
			return fmt.Errorf("inject: assemble: record %d injection differs from the plan", i)
		}
		slots[i] = s
		return nil
	}
	for _, ir := range ck.Results {
		if err := place(ir.PlanIndex, expSlot{done: true, res: ir.Result}, ir.Result.Injection); err != nil {
			return nil, err
		}
	}
	for _, q := range ck.Quarantined {
		if err := place(q.PlanIndex, expSlot{done: true, quar: true, q: q}, q.Injection); err != nil {
			return nil, err
		}
	}
	for i := range slots {
		if !slots[i].done {
			return nil, fmt.Errorf("inject: assemble: plan index %d has no result", i)
		}
	}
	rep, ci := newReport(t.Analysis)
	for i := range slots {
		s := &slots[i]
		if s.quar {
			rep.Quarantined = append(rep.Quarantined, s.q)
		} else {
			rep.absorb(s.res, ci)
		}
	}
	return rep, nil
}

// runSpan is the campaign execution engine behind RunParallel (full
// span) and RunRange (a leased sub-range): it completes every pending
// plan index in [lo, hi) and leaves the verdicts in the returned
// per-index slots. Indices outside the span are never claimed; a
// checkpoint preload may still fill them (harmless — they are simply
// not exported by snapshotSpan).
func (t *Target) runSpan(g *Golden, plan []Injection, workers, lo, hi int) (*campaignState, error) {
	span := hi - lo
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > span {
		workers = maxInt(1, span)
	}
	sup := t.Supervision
	if sup.Checkpoint != "" && sup.CheckpointEvery <= 0 {
		sup.CheckpointEvery = defaultCheckpointEvery
	}
	tel := t.Telemetry
	if tel != nil {
		tel.PlanBuilt(span, workers, PlanHash(plan))
	}

	st := &campaignState{slots: make([]expSlot, len(plan))}
	if sup.Resume && sup.Checkpoint != "" {
		nres, nquar, err := st.preload(sup.Checkpoint, plan)
		if err != nil {
			return nil, err
		}
		if nres+nquar > 0 {
			tel.CheckpointLoad(nres, nquar)
		}
	}

	// Static pre-pass (opt-in): statically classified rows are marked
	// done up front with their exact serial result; rows collapsed onto
	// a representative are skipped by the claim loops and inherit the
	// representative's outcome after the workers drain, just before the
	// in-order merge. A wall-clock watchdog makes verdicts depend on
	// host timing, so it disables the pre-pass the same way it disables
	// lanes.
	var pc *planCollapse
	if t.Collapse && span > 0 && !(sup.WallBudget > 0 && sup.Clock != nil) {
		csp := tel.StartSpan("collapse")
		pc = t.collapsePlan(g, plan)
		csp.End()
	}
	if pc != nil {
		applied := 0
		for i := lo; i < hi; i++ {
			if pc.static[i] && !st.slots[i].done {
				st.slots[i] = expSlot{done: true, res: pc.res[i]}
				applied++
			}
		}
		tel.CollapsePlan(applied, pc.nDup)
	}

	// The word-parallel path: with Lanes > 1 the batchable pending
	// experiments are grouped into lockstep lane batches on a compiled
	// machine (see lanes.go). Wall-clock watchdogs are inherently
	// nondeterministic and per-instance, so an armed one keeps the whole
	// campaign on the serial per-experiment path.
	lanes := min(t.Lanes, 64)
	useLanes := lanes > 1 && span > 0 &&
		!(sup.WallBudget > 0 && sup.Clock != nil)
	var prog *simc.Program
	var units [][]int
	if useLanes {
		var err error
		if prog, err = simc.Compile(t.Analysis.N); err != nil {
			return nil, err
		}
		units = buildUnits(st, plan, lanes, pc, lo, hi)
	}

	var (
		cursor      atomic.Int64
		stopped     atomic.Bool
		errs        = make([]error, len(plan))
		ckptErr     error
		interrupted = sup.interrupted()
	)
	// finish is called with st.mu held after every completion; it
	// writes the periodic checkpoint and fires the StopAfter hook.
	finish := func() {
		st.completed++
		st.sinceCkpt++
		stopping := sup.StopAfter > 0 && st.completed >= sup.StopAfter
		if sup.Checkpoint != "" && (st.sinceCkpt >= sup.CheckpointEvery || stopping) {
			csp := tel.StartSpanInt("checkpoint", "completed", int64(st.completed))
			if err := WriteCheckpoint(sup.Checkpoint, st.snapshotSpan(lo, hi), plan); err != nil {
				if ckptErr == nil {
					ckptErr = err
					stopping = true
				}
				csp.EndOutcome("error")
			} else {
				tel.CheckpointWrite(st.completed)
				csp.End()
			}
			st.sinceCkpt = 0
		}
		if stopping {
			stopped.Store(true)
		}
	}
	// runSingle executes one claimed experiment on the serial supervised
	// path and records its completion; tk is its ExpStart ticket
	// (already emitted by the claimer).
	runSingle := func(i int, tk telemetry.ExpTicket) {
		res, err := t.runSupervised(g, plan, i)
		st.mu.Lock()
		if err != nil {
			if sup.Quarantine {
				ee := err.(*ExperimentError)
				st.slots[i] = expSlot{done: true, quar: true, q: Quarantined{
					PlanIndex: i, Injection: plan[i], Attempts: ee.Attempts, Err: ee.Err.Error(),
				}}
				tel.Quarantine(i, ee.Attempts, ee.Err.Error())
				tk.Span.EndOutcome("quarantined")
				finish()
			} else {
				errs[i] = err
				stopped.Store(true)
				tel.ExpFinish(i, "error", false, 0, -1, tk)
			}
		} else {
			st.slots[i] = expSlot{done: true, res: res}
			tel.ExpFinish(i, res.Outcome.String(), res.Sens, len(res.Deviated), res.FirstDevCycle, tk)
			finish()
		}
		st.mu.Unlock()
	}
	work := func() {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= hi || stopped.Load() || interrupted() {
				return
			}
			if st.slots[i].done { // preloaded or statically classified
				continue
			}
			if pc != nil && pc.dep[i] >= 0 { // inherits after the drain
				continue
			}
			runSingle(i, tel.ExpStart(i))
		}
	}
	// workUnits is the lanes variant: the cursor claims whole work
	// units. A multi-lane batch that fails for any reason (error or
	// panic) produces no results; every member is then rerun serially
	// under the full supervision policy, so retry/quarantine semantics
	// are identical to the per-experiment path.
	workUnits := func() {
		for {
			u := int(cursor.Add(1)) - 1
			if u >= len(units) || stopped.Load() || interrupted() {
				return
			}
			idxs := units[u]
			if len(idxs) == 1 {
				i := idxs[0]
				runSingle(i, tel.ExpStart(i))
				continue
			}
			starts := make([]telemetry.ExpTicket, len(idxs))
			for k, i := range idxs {
				starts[k] = tel.ExpStart(i)
			}
			bsp := tel.BatchStart(len(idxs))
			results, err := t.runBatchRecovered(g, prog, plan, idxs)
			tel.BatchDone(bsp, len(idxs))
			if err != nil {
				for k, i := range idxs {
					runSingle(i, starts[k])
				}
				continue
			}
			st.mu.Lock()
			for k, i := range idxs {
				st.slots[i] = expSlot{done: true, res: results[k]}
				r := &results[k]
				tel.ExpFinish(i, r.Outcome.String(), r.Sens, len(r.Deviated), r.FirstDevCycle, starts[k])
				finish()
			}
			st.mu.Unlock()
		}
	}

	// The per-experiment cursor walks plan indices in [lo, hi); the lane
	// cursor walks work-unit indices (units already cover only the span).
	loop := work
	cursor.Store(int64(lo))
	if useLanes {
		loop = workUnits
		cursor.Store(0)
	}
	if workers == 1 {
		loop()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				loop()
			}()
		}
		wg.Wait()
	}

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if ckptErr != nil {
		return nil, ckptErr
	}
	if sup.StopAfter > 0 && st.completed >= sup.StopAfter {
		return nil, ErrCampaignStopped
	}
	// Expansion: collapsed rows inherit their representative's outcome
	// fields under their own injection header — in plan order, before
	// the final checkpoint and the merge. A row whose representative
	// carries no result (quarantined) is simulated itself, exactly as
	// the uncollapsed campaign would have done.
	if pc != nil {
		for i := lo; i < hi; i++ {
			if stopped.Load() || interrupted() {
				break
			}
			r := pc.dep[i]
			if r < 0 || st.slots[i].done {
				continue
			}
			rs := st.slots[r]
			if rs.done && !rs.quar {
				res := rs.res
				res.Injection = plan[i]
				if rs.res.Deviated != nil {
					res.Deviated = append([]int(nil), rs.res.Deviated...)
				}
				st.slots[i] = expSlot{done: true, res: res}
				tel.OutcomeInherited()
			} else {
				runSingle(i, tel.ExpStart(i))
			}
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		if ckptErr != nil {
			return nil, ckptErr
		}
		if sup.StopAfter > 0 && st.completed >= sup.StopAfter {
			return nil, ErrCampaignStopped
		}
	}
	// An interrupt only matters if it left work undone — when it lands
	// after the last verdict the completed campaign is returned as
	// usual, so a cancel racing the natural finish stays benign.
	if interrupted() {
		for i := lo; i < hi; i++ {
			if !st.slots[i].done {
				return nil, ErrCampaignInterrupted
			}
		}
	}
	if sup.Checkpoint != "" && st.sinceCkpt > 0 {
		if err := WriteCheckpoint(sup.Checkpoint, st.snapshotSpan(lo, hi), plan); err != nil {
			return nil, err
		}
		tel.CheckpointWrite(st.completed)
	}
	return st, nil
}

// preload fills completion slots from a checkpoint file, reporting how
// many result and quarantine records it restored. A missing file is a
// fresh start, not an error; an unreadable or mismatched one aborts
// before any simulation is spent.
func (st *campaignState) preload(path string, plan []Injection) (results, quarantined int, err error) {
	ck, err := LoadCheckpoint(path, plan)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("inject: resume: %w", err)
	}
	for _, ir := range ck.Results {
		st.slots[ir.PlanIndex] = expSlot{done: true, res: ir.Result}
	}
	for _, q := range ck.Quarantined {
		st.slots[q.PlanIndex] = expSlot{done: true, quar: true, q: q}
	}
	return len(ck.Results), len(ck.Quarantined), nil
}
