package inject

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/zones"
)

// covIndex maps observation-point indices onto the coverage item arrays
// (functional OBSE items vs diagnostic DIAG items). It is derived once
// per campaign and shared read-only by the merge path.
type covIndex struct {
	funcIdx []int
	diagIdx []int
}

// newReport allocates an empty campaign report with the coverage item
// arrays sized for the analysis, plus the observation-point index used
// to merge experiment results into it.
func newReport(a *zones.Analysis) (*Report, covIndex) {
	rep := &Report{}
	rep.Coverage.SensZones = make([]bool, len(a.Zones))
	var ci covIndex
	for oi := range a.Obs {
		if a.Obs[oi].Kind == zones.Diagnostic {
			ci.diagIdx = append(ci.diagIdx, oi)
		} else {
			ci.funcIdx = append(ci.funcIdx, oi)
		}
	}
	rep.Coverage.ObseSeen = make([]bool, len(ci.funcIdx))
	rep.Coverage.DiagSeen = make([]bool, len(ci.diagIdx))
	return rep, ci
}

// absorb folds one experiment result into the report: the result list
// and the SENS/OBSE/DIAG coverage items. Results must be absorbed in
// plan order — the runner guarantees that regardless of worker count,
// which is what makes the parallel report bit-identical to the serial
// one.
func (rep *Report) absorb(res ExpResult, ci covIndex) {
	rep.Results = append(rep.Results, res)
	if res.Sens {
		rep.Coverage.SensZones[res.Zone] = true
	}
	for _, oi := range res.Deviated {
		rep.Coverage.Mismatches++
		for fi, idx := range ci.funcIdx {
			if idx == oi {
				rep.Coverage.ObseSeen[fi] = true
			}
		}
		for di, idx := range ci.diagIdx {
			if idx == oi {
				rep.Coverage.DiagSeen[di] = true
			}
		}
	}
}

// RunParallel executes the injection campaign sharded across workers
// goroutines. Each worker claims experiments from a shared atomic
// cursor (dynamic load balancing — wide permanent faults simulate the
// whole trace while late transients are cheap), runs each one on a
// fresh simulator instance from t.NewInstance, and reads the shared
// golden traces strictly read-only. Results land in a preallocated
// slice indexed by plan position and are merged in plan order, so the
// report is bit-identical to the serial Run for any worker count.
//
// workers <= 0 selects runtime.NumCPU(); workers == 1 runs inline with
// no goroutines (the serial path). On failure the error of the
// lowest-index failing experiment is returned, matching serial
// semantics: the cursor hands out indices in ascending order, so the
// first failing index is always claimed and executed before the abort
// flag can stop any later one.
func (t *Target) RunParallel(g *Golden, plan []Injection, workers int) (*Report, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(plan) {
		workers = maxInt(1, len(plan))
	}
	a := t.Analysis
	rep, ci := newReport(a)
	if workers == 1 {
		for _, inj := range plan {
			res, err := t.runOne(g, inj)
			if err != nil {
				return nil, fmt.Errorf("inject: %s: %w", inj.Describe(a), err)
			}
			rep.absorb(res, ci)
		}
		return rep, nil
	}

	results := make([]ExpResult, len(plan))
	errs := make([]error, len(plan))
	var cursor atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(plan) || failed.Load() {
					return
				}
				res, err := t.runOne(g, plan[i])
				if err != nil {
					errs[i] = fmt.Errorf("inject: %s: %w", plan[i].Describe(a), err)
					failed.Store(true)
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, res := range results {
		rep.absorb(res, ci)
	}
	return rep, nil
}
