package inject_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/frcpu"
	"repro/internal/inject"
	"repro/internal/randckt"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
	"repro/internal/zones"
)

// collapsiblePlan extends the reduced campaign plan with rows the
// static pre-pass is guaranteed to handle: exact duplicates (collapse
// onto the first occurrence) and an injection past the end of the
// trace (statically Silent). The extra rows keep the matrix test
// non-vacuous without depending on the planner's fault mix.
func collapsiblePlan(g *inject.Golden, plan []inject.Injection) []inject.Injection {
	out := append([]inject.Injection(nil), plan...)
	// Duplicate a handful of rows verbatim — identical (zone, cycle,
	// duration, fault) rows are campaign-exact equivalents by
	// definition, so the pre-pass must fold them.
	for i := 0; i < len(plan) && i < 4; i++ {
		out = append(out, plan[i])
	}
	// A fault injected at/after the last trace cycle never applies.
	if len(plan) > 0 {
		late := plan[0]
		late.Cycle = g.Trace.Cycles() + 3
		out = append(out, late)
	}
	return out
}

// TestCollapseNeutralityMatrix is the determinism contract of the
// static fault-analysis pre-pass: with Collapse on, statically
// classified rows skip simulation and equivalence-class members
// inherit their representative's outcome, yet the merged report must
// stay byte-identical to the uncollapsed serial reference — across
// worker and lane counts, on both case studies, and across a
// mid-campaign checkpoint resume.
func TestCollapseNeutralityMatrix(t *testing.T) {
	for _, v2 := range []bool{false, true} {
		name := "v1"
		if v2 {
			name = "v2"
		}
		t.Run(name, func(t *testing.T) {
			target, g, base := reducedCampaign(t, v2)
			plan := collapsiblePlan(g, base)
			ref, err := target.Run(g, plan)
			if err != nil {
				t.Fatal(err)
			}
			refRender := fmt.Sprintf("%#v", ref)

			for _, lanes := range []int{1, 64} {
				for _, workers := range []int{1, 8} {
					t.Run(fmt.Sprintf("lanes=%d/workers=%d", lanes, workers), func(t *testing.T) {
						tgt := *target
						tgt.Collapse = true
						tgt.Lanes = lanes
						tgt.Workers = workers
						rep, err := tgt.Run(g, plan)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(ref, rep) {
							t.Fatal("collapsed report differs from uncollapsed serial reference")
						}
						if fmt.Sprintf("%#v", rep) != refRender {
							t.Fatal("collapsed report renders differently from reference")
						}
					})
				}
			}

			t.Run("resume", func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "campaign.ckpt")
				tgt := *target
				tgt.Collapse = true
				tgt.Workers = 8
				tgt.Supervision = inject.Supervision{
					Checkpoint: path, CheckpointEvery: 1, StopAfter: len(base) / 2,
				}
				if _, err := tgt.Run(g, plan); !errors.Is(err, inject.ErrCampaignStopped) {
					t.Fatalf("interrupted run: got %v, want ErrCampaignStopped", err)
				}
				// Resume without collapse: the checkpoint carries plain
				// completed rows, so the pre-pass is a per-process choice.
				tgt = *target
				tgt.Workers = 8
				tgt.Supervision = inject.Supervision{Checkpoint: path, Resume: true}
				rep, err := tgt.Run(g, plan)
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
				if !reflect.DeepEqual(ref, rep) {
					t.Fatal("collapsed+resumed report differs from reference")
				}
				if fmt.Sprintf("%#v", rep) != refRender {
					t.Fatal("collapsed+resumed report renders differently")
				}
			})

			t.Run("warm", func(t *testing.T) {
				wtgt, wg := warmGolden(t, target, g, 8)
				wtgt.Collapse = true
				wtgt.Lanes = 64
				wtgt.Workers = 8
				rep, err := wtgt.Run(wg, plan)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ref, rep) {
					t.Fatal("collapsed warm-start report differs from reference")
				}
				if fmt.Sprintf("%#v", rep) != refRender {
					t.Fatal("collapsed warm-start report renders differently")
				}
			})
		})
	}
}

// TestCollapseLockstepCPU extends the neutrality contract to the third
// case study: the lockstep fault-robust CPU, whose comparator-heavy
// netlist and duplicated cores exercise cones and equivalence classes a
// memory datapath never produces. Collapsed runs at every lane/worker
// combination must match the uncollapsed serial reference exactly.
func TestCollapseLockstepCPU(t *testing.T) {
	d, err := frcpu.Build(frcpu.LockstepConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	target := d.InjectionTarget(a)
	g, err := target.RunGolden(d.Workload(120))
	if err != nil {
		t.Fatal(err)
	}
	base := inject.BuildPlan(a, g, inject.PlanConfig{TransientPerZone: 1, PermanentPerZone: 1, Seed: 3})
	var sampled []inject.Injection
	for i := 0; i < len(base); i += 3 {
		sampled = append(sampled, base[i])
	}
	plan := collapsiblePlan(g, sampled)
	ref, err := target.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	refRender := fmt.Sprintf("%#v", ref)
	for _, lanes := range []int{1, 64} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("lanes=%d/workers=%d", lanes, workers), func(t *testing.T) {
				tgt := *target
				tgt.Collapse = true
				tgt.Lanes = lanes
				tgt.Workers = workers
				rep, err := tgt.Run(g, plan)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ref, rep) {
					t.Fatal("collapsed lockstep-CPU report differs from uncollapsed serial reference")
				}
				if fmt.Sprintf("%#v", rep) != refRender {
					t.Fatal("collapsed lockstep-CPU report renders differently from reference")
				}
			})
		}
	}
}

// TestCollapseTelemetryNonVacuity pins the new counters: the pre-pass
// must actually prune and collapse on the extended plan (which carries
// guaranteed duplicates and one past-the-trace row), the inherited
// fill must run, and the journal must still emit one exp_finish per
// *simulated* row — static and inherited rows are out-of-band.
func TestCollapseTelemetryNonVacuity(t *testing.T) {
	target, g, base := reducedCampaign(t, true)
	plan := collapsiblePlan(g, base)
	ref, err := target.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	tgt, tel, journal := instrumented(target)
	tgt.Collapse = true
	tgt.Workers = 4
	rep, err := tgt.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, rep) {
		t.Fatal("instrumented collapsed report differs from reference")
	}
	pruned := tel.Registry.Counter("faults_static_pruned").Load()
	collapsed := tel.Registry.Counter("faults_collapsed").Load()
	inherited := tel.Registry.Counter("outcomes_inherited").Load()
	if pruned == 0 {
		t.Fatal("faults_static_pruned is 0 — the past-the-trace row was not statically classified")
	}
	if collapsed == 0 {
		t.Fatal("faults_collapsed is 0 — the duplicated rows were not folded")
	}
	if inherited == 0 {
		t.Fatal("outcomes_inherited is 0 — the expansion fill never ran")
	}
	if inherited > collapsed {
		t.Fatalf("inherited %d rows but only %d were collapsed", inherited, collapsed)
	}
	if err := tel.Journal.Close(); err != nil {
		t.Fatal(err)
	}
	finishes := strings.Count(journal.String(), `"ev":"exp_finish"`)
	simulated := len(plan) - int(pruned) - int(inherited)
	if finishes != simulated {
		t.Fatalf("journal has %d exp_finish events, want %d (plan %d - pruned %d - inherited %d)",
			finishes, simulated, len(plan), pruned, inherited)
	}
	if done := tel.Registry.Counter("exp_done").Load(); done != int64(len(plan)) {
		t.Fatalf("exp_done is %d, want %d — static/inherited rows must still count as done", done, len(plan))
	}
}

// TestCollapsePropertyRandomCircuits compares collapsed and serial
// campaign reports over random circuits, with the planner's fault mix
// extended by hand-written pin stuck-ats (exercising the unconditional
// pin-to-output equivalence rules), a released stuck-at, bridging
// faults (never collapsed, only deduplicated) and exact duplicates.
func TestCollapsePropertyRandomCircuits(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		n := randckt.Generate(randckt.Default(), seed)
		a, err := zones.Extract(n, zones.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		target := &inject.Target{
			Analysis:    a,
			NewInstance: func() (*sim.Simulator, error) { return sim.New(n) },
		}
		tr := workload.Random(xrand.New(seed+300), []string{"in"}, map[string]int{"in": 6}, 30)
		g, err := target.RunGolden(tr)
		if err != nil {
			t.Fatal(err)
		}
		plan := inject.BuildPlan(a, g, inject.PlanConfig{TransientPerZone: 2, PermanentPerZone: 2, Seed: seed})
		plan = append(plan, inject.WidePlan(a, g, 3, seed)...)
		if len(plan) == 0 {
			continue
		}
		g0, g1 := n.Gates[0], n.Gates[len(n.Gates)/2]
		plan = append(plan,
			// A pin stuck-at and the matching output stuck-at at the same
			// cycle: campaign-exact equivalents through PinAtom.
			inject.Injection{Zone: 0, Fault: faults.PinSA(g0.ID, 0, true), Cycle: 2, Mode: "pin"},
			inject.Injection{Zone: 0, Fault: faults.PinSA(g1.ID, len(g1.Inputs)-1, false), Cycle: 9, Duration: 5, Mode: "pin"},
			inject.Injection{Zone: 0, Fault: faults.NetBridge(g0.Output, g1.Output, true), Cycle: 4, Mode: "bridge"},
			inject.Injection{Zone: 0, Fault: faults.NetBridge(g1.Output, g0.Output, false), Cycle: 6, Duration: 8, Mode: "bridge"},
			inject.Injection{Zone: 0, Fault: faults.NetSA(g1.Output, true), Cycle: 3, Duration: 4, Mode: "released"},
		)
		plan = collapsiblePlan(g, plan)
		serial, err := target.Run(g, plan)
		if err != nil {
			t.Fatal(err)
		}
		for _, lanes := range []int{1, 64} {
			ctgt := *target
			ctgt.Collapse = true
			ctgt.Lanes = lanes
			collapsed, err := ctgt.Run(g, plan)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, collapsed) {
				t.Fatalf("seed %d lanes %d: collapsed verdicts differ from serial", seed, lanes)
			}
		}
	}
}
