package inject

import (
	"sort"

	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/xrand"
	"repro/internal/zones"
)

// PlanConfig tunes fault-list generation.
type PlanConfig struct {
	// TransientPerZone transient (bit-flip) experiments per zone.
	TransientPerZone int
	// PermanentPerZone stuck-at experiments per zone.
	PermanentPerZone int
	// Seed drives the deterministic randomizer.
	Seed uint64
	// SkipZones names zones to exclude (e.g. raw input-port zones when a
	// separate protocol-level campaign covers them).
	SkipZones map[string]bool
}

// DefaultPlanConfig mirrors the validation flow defaults.
func DefaultPlanConfig() PlanConfig {
	return PlanConfig{TransientPerZone: 4, PermanentPerZone: 2, Seed: 1}
}

// BuildPlan is the collapser + randomizer: for every sensible zone it
// generates failure-mode experiments, picking injection instants from
// the zone's operational profile so each fault lands when the zone is
// active (non-trivial faults only, the paper's OP-guided compaction).
func BuildPlan(a *zones.Analysis, g *Golden, cfg PlanConfig) []Injection {
	rng := xrand.New(cfg.Seed)
	var plan []Injection
	horizon := g.Trace.Cycles()
	pickCycle := func(zi int) int {
		act := g.Activity[zi]
		if len(act) == 0 {
			return rng.Intn(maxInt(1, horizon-1))
		}
		// Inject shortly after an activity instant.
		c := act[rng.Intn(len(act))]
		if c >= horizon-1 {
			c = horizon - 2
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	for zi := range a.Zones {
		z := &a.Zones[zi]
		if cfg.SkipZones[z.Name] {
			continue
		}
		switch z.Kind {
		case zones.Register:
			for k := 0; k < cfg.TransientPerZone; k++ {
				ff := z.FFs[rng.Intn(len(z.FFs))]
				plan = append(plan, Injection{
					Zone: zi, Fault: faults.FFFlip(ff), Cycle: pickCycle(zi),
					Duration: 0, Mode: "transient bit-flip",
				})
			}
			for k := 0; k < cfg.PermanentPerZone; k++ {
				ff := z.FFs[rng.Intn(len(z.FFs))]
				plan = append(plan, Injection{
					Zone: zi, Fault: faults.NetSA(a.N.FFs[ff].Q, rng.Bool()),
					Cycle: pickCycle(zi), Duration: 0, Mode: "register stuck-at",
				})
			}
		case zones.Input, zones.Peripheral:
			// Failures appear on the zone's boundary nets.
			for k := 0; k < cfg.TransientPerZone; k++ {
				net := z.Outputs[rng.Intn(len(z.Outputs))]
				plan = append(plan, Injection{
					Zone: zi, Fault: flipNet(net, rng), Cycle: pickCycle(zi),
					Duration: 1, Mode: "transient boundary flip",
				})
			}
			for k := 0; k < cfg.PermanentPerZone; k++ {
				net := z.Outputs[rng.Intn(len(z.Outputs))]
				plan = append(plan, Injection{
					Zone: zi, Fault: faults.NetSA(net, rng.Bool()),
					Cycle: pickCycle(zi), Duration: 0, Mode: "boundary stuck-at",
				})
			}
		case zones.Output, zones.SubBlock:
			// Faults inside the zone's fan-in cone (falling back to the
			// seed nets for gate-free cones).
			coneNet := func() netlist.NetID {
				cone := a.Cones[zi].Gates
				if len(cone) == 0 {
					return z.Seeds[rng.Intn(len(z.Seeds))]
				}
				return a.N.Gates[cone[rng.Intn(len(cone))]].Output
			}
			for k := 0; k < cfg.PermanentPerZone; k++ {
				plan = append(plan, Injection{
					Zone: zi, Fault: faults.NetSA(coneNet(), rng.Bool()),
					Cycle: pickCycle(zi), Duration: 0, Class: ConeFault, Mode: "cone stuck-at",
				})
			}
			for k := 0; k < cfg.TransientPerZone; k++ {
				plan = append(plan, Injection{
					Zone: zi, Fault: flipNet(coneNet(), rng), Cycle: pickCycle(zi),
					Duration: 1, Class: ConeFault, Mode: "cone glitch",
				})
			}
		case zones.CriticalNet:
			net := z.Outputs[0]
			plan = append(plan, Injection{
				Zone: zi, Fault: faults.NetSA(net, false), Cycle: pickCycle(zi),
				Duration: 0, Mode: "critical net stuck-0",
			})
			plan = append(plan, Injection{
				Zone: zi, Fault: faults.NetSA(net, true), Cycle: pickCycle(zi),
				Duration: 0, Mode: "critical net stuck-1",
			})
			plan = append(plan, Injection{
				Zone: zi, Fault: faults.NetDelay(net), Cycle: pickCycle(zi),
				Duration: 2, Mode: "critical net delay",
			})
		}
	}
	return plan
}

// flipNet returns a one-shot inversion of a boundary net modeled as a
// stuck-at of the opposite polarity held for the injection duration;
// the runner resolves the polarity against the golden value at the
// injection cycle, so here we just pick one randomly (it flips with
// probability ~0.5 and the SENS monitor confirms actual perturbation).
func flipNet(net netlist.NetID, rng *xrand.RNG) faults.Fault {
	return faults.NetSA(net, rng.Bool())
}

// WidePlan generates the Section 5d selective wide/global experiments:
// stuck-ats and delay faults on gates shared by several zone cones
// (wide) and on the highest-touch gates (global candidates).
func WidePlan(a *zones.Analysis, g *Golden, count int, seed uint64) []Injection {
	rng := xrand.New(seed)
	type cand struct {
		gate  netlist.GateID
		touch int
	}
	var cands []cand
	for gi := range a.N.Gates {
		if t := a.GateTouch(netlist.GateID(gi)); t >= 2 {
			cands = append(cands, cand{netlist.GateID(gi), t})
		}
	}
	var plan []Injection
	if len(cands) == 0 {
		return plan
	}
	// Highest-touch gates are the global sites (clock-tree-like control
	// sharing, often architecturally masked); moderately shared gates
	// are datapath cones feeding several zones — the Fig. 2 multiple-
	// failure candidates. Sample both populations, and inject both
	// stuck-at polarities per site so a fault is not trivially masked by
	// the quiescent value.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].touch != cands[j].touch {
			return cands[i].touch > cands[j].touch
		}
		return cands[i].gate < cands[j].gate
	})
	horizon := g.Trace.Cycles()
	for k := 0; k < count; k++ {
		var c cand
		if k%2 == 0 {
			c = cands[rng.Intn(len(cands))] // uniform over wide sites
		} else {
			c = cands[(k/2)%len(cands)] // top-touch (global) sites
		}
		out := a.N.Gates[c.gate].Output
		zone := zoneOwningGate(a, c.gate)
		mode := "wide stuck-at"
		if a.ClassifyGate(c.gate, 0.25) == faults.Global {
			mode = "global stuck-at"
		}
		// Permanent faults are armed early so the whole workload runs on
		// the faulty circuit.
		cycle := rng.Intn(maxInt(1, horizon/4))
		for _, v := range []bool{false, true} {
			plan = append(plan, Injection{
				Zone: zone, Fault: faults.NetSA(out, v),
				Cycle: cycle, Duration: 0, Class: WideFault, Mode: mode,
			})
		}
	}
	return plan
}

// zoneOwningGate returns the first zone whose cone contains the gate.
func zoneOwningGate(a *zones.Analysis, g netlist.GateID) int {
	for zi := range a.Zones {
		for _, cg := range a.Cones[zi].Gates {
			if cg == g {
				return zi
			}
		}
	}
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
