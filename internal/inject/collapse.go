package inject

import (
	"sort"

	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/statfault"
)

// planCollapse is the static pre-pass over one campaign plan: which
// rows are statically classified (their full result row is known
// without simulating a cycle) and which rows are campaign-exact
// equivalents of an earlier representative (their result row is copied
// from the representative during the in-order merge). Both prunings
// are sound by construction — the report stays byte-identical to the
// uncollapsed run — and the pre-pass is disabled entirely whenever a
// wall-clock watchdog is armed (the one supervision mode whose verdicts
// are not a pure function of the plan).
type planCollapse struct {
	// dep[i] >= 0 names the representative plan row whose outcome row i
	// inherits; -1 means row i is simulated (or statically classified).
	dep []int
	// static[i] marks rows whose result is pre-computed in res[i].
	static []bool
	res    []ExpResult

	nStatic, nDup int
}

// collapsePlan runs the static pre-pass. A nil return means "nothing
// to prune" (or the analysis could not be built) and the campaign
// proceeds exactly as without -collapse.
//
// Static classification uses three proof families:
//
//   - unobservable: no observation point and no net of the injected
//     zone's SENS group lies in the fault site's forward cone, so no
//     monitor can ever deviate (for flips only the observation cone
//     matters — SENS is implied for flips by the runner);
//   - untestable: the stuck-at polarity equals the net's proven
//     fault-free constant, so the faulty machine is the golden machine;
//   - golden-quiescent: the recorded golden trace holds the forced
//     value at every instant the force is active (a boundary flip that
//     picked the resting polarity, the dominant case for transient
//     plans), so forcing it changes nothing.
//
// All three produce the exact serial result row: Silent, SENS false
// (true for flips, where the runner forces it), no deviations,
// FirstDevCycle -1.
//
// Classification is skipped when a cycle budget could abort mid-trace
// (the serial row would then be Aborted, not Silent); equivalence
// collapsing stays on — equivalent rows share the same injection cycle
// and duration, so they abort identically too.
func (t *Target) collapsePlan(g *Golden, plan []Injection) *planCollapse {
	sf, err := statfault.New(t.Analysis)
	if err != nil {
		return nil
	}
	cb := t.Supervision.CycleBudget
	staticOK := cb <= 0 || cb >= g.Trace.Cycles()
	var q *quiescence
	if staticOK {
		q = t.traceQuiescence(g, plan)
	}
	pc := &planCollapse{
		dep:    make([]int, len(plan)),
		static: make([]bool, len(plan)),
		res:    make([]ExpResult, len(plan)),
	}
	seen := map[planKey]int{}
	for i := range plan {
		pc.dep[i] = -1
		if staticOK {
			if res, ok := staticResult(sf, q, plan[i], g.Trace.Cycles()); ok {
				pc.static[i] = true
				pc.res[i] = res
				pc.nStatic++
				continue
			}
		}
		key, ok := collapseKey(sf, plan[i])
		if !ok {
			continue
		}
		if r, dup := seen[key]; dup {
			pc.dep[i] = r
			pc.nDup++
		} else {
			seen[key] = i
		}
	}
	if pc.nStatic == 0 && pc.nDup == 0 {
		return nil
	}
	return pc
}

// staticSilent is the result row every static proof produces: the row
// runOne builds when no monitor ever deviates.
func staticSilent(inj Injection, sens bool) ExpResult {
	return ExpResult{Injection: inj, Outcome: Silent, Sens: sens, FirstDevCycle: -1}
}

// staticResult classifies one planned injection without simulation, or
// reports ok=false when no proof applies and the row must be simulated.
func staticResult(sf *statfault.Analysis, q *quiescence, inj Injection, cycles int) (ExpResult, bool) {
	f := inj.Fault
	if inj.Cycle >= cycles {
		// The fault never applies and the monitors never arm.
		return staticSilent(inj, f.Kind == faults.Flip), true
	}
	n := sf.Netlist()
	switch f.Kind {
	case faults.SA0, faults.SA1:
		v := f.Kind == faults.SA1
		if f.Site == faults.SitePin {
			if f.Gate < 0 || int(f.Gate) >= len(n.Gates) {
				return ExpResult{}, false
			}
			g := &n.Gates[f.Gate]
			if f.Pin < 0 || f.Pin >= len(g.Inputs) {
				// An out-of-range pin force is never read: a no-op.
				return staticSilent(inj, false), true
			}
			// A pin force perturbs nothing upstream of the gate output.
			if !sf.ReachesObs(g.Output) && !sf.ReachesZoneEffect(g.Output, inj.Zone) {
				return staticSilent(inj, false), true
			}
			// Quiescent when the pin's net already carries the forced
			// value whenever the gate evaluates under the force.
			if q != nil && q.netQuiescent(g.Inputs[f.Pin], sim.FromBool(v), inj.Cycle, inj.Duration) {
				return staticSilent(inj, false), true
			}
			return ExpResult{}, false
		}
		if cv, ok := sf.ConstNet(f.Net); ok && cv == v {
			return staticSilent(inj, false), true
		}
		if !sf.ReachesObs(f.Net) && !sf.ReachesZoneEffect(f.Net, inj.Zone) {
			return staticSilent(inj, false), true
		}
		if q != nil && q.netQuiescent(f.Net, sim.FromBool(v), inj.Cycle, inj.Duration) {
			return staticSilent(inj, false), true
		}
	case faults.Flip:
		if f.FF < 0 || int(f.FF) >= len(n.FFs) {
			return ExpResult{}, false
		}
		// SENS is implied by the runner for flips, so only the
		// observation cone decides the verdict.
		if !sf.ReachesObs(n.FFs[f.FF].Q) {
			return staticSilent(inj, true), true
		}
		// Flipping an X leaves an X (Kleene complement).
		if q != nil && q.ffX(f.FF, inj.Cycle) {
			return staticSilent(inj, true), true
		}
	case faults.DelayX:
		if !sf.ReachesObs(f.Net) && !sf.ReachesZoneEffect(f.Net, inj.Zone) {
			return staticSilent(inj, false), true
		}
		if q != nil && q.netQuiescent(f.Net, sim.VX, inj.Cycle, inj.Duration) {
			return staticSilent(inj, false), true
		}
	}
	return ExpResult{}, false
}

// planKey identifies a campaign-exact equivalence bucket: two rows with
// the same key produce byte-identical outcome fields (the header —
// Class, Mode, the fault's own description — stays per-row).
type planKey struct {
	zone, cycle, dur int
	tag              uint8
	a, b             int32
}

const (
	keySAAtom  uint8 = iota // a = canonical stuck-at atom
	keyFlip                 // a = FF
	keyDelay                // a = net (X is not a controlling value; no atom rules)
	keyPinSA                // a = gate, b = pin<<1|v (non-collapsible pin fault)
	keyBridgeA              // a,b = sorted nets, wired-AND
	keyBridgeO              // a,b = sorted nets, wired-OR
)

func collapseKey(sf *statfault.Analysis, inj Injection) (planKey, bool) {
	k := planKey{zone: inj.Zone, cycle: inj.Cycle, dur: inj.Duration}
	f := inj.Fault
	switch f.Kind {
	case faults.SA0, faults.SA1:
		v := f.Kind == faults.SA1
		if f.Site == faults.SitePin {
			if at, ok := sf.PinAtom(f.Gate, f.Pin, v); ok {
				k.tag, k.a = keySAAtom, int32(at)
			} else {
				vb := int32(0)
				if v {
					vb = 1
				}
				k.tag, k.a, k.b = keyPinSA, int32(f.Gate), int32(f.Pin)<<1|vb
			}
		} else {
			k.tag, k.a = keySAAtom, int32(sf.Canon(f.Net, v))
		}
	case faults.Flip:
		k.tag, k.a = keyFlip, int32(f.FF)
	case faults.DelayX:
		k.tag, k.a = keyDelay, int32(f.Net)
	case faults.BridgeAND, faults.BridgeOR:
		a, b := f.Net, f.Net2
		if b < a {
			a, b = b, a
		}
		k.tag, k.a, k.b = keyBridgeA, int32(a), int32(b)
		if f.Kind == faults.BridgeOR {
			k.tag = keyBridgeO
		}
	default:
		return planKey{}, false
	}
	return k, true
}

// quiescence holds the golden value streams of the plan's fault sites
// at the two instants a force can matter: settled before the clock edge
// (what flip-flops latch and peripherals sample) and settled after it
// (what the monitors read). Recorded by one extra golden-replica
// simulation that follows runOne's cycle protocol exactly.
type quiescence struct {
	cycles int
	pre    map[netlist.NetID][]sim.Value
	post   map[netlist.NetID][]sim.Value
	ffPost map[netlist.FFID][]sim.Value
}

// traceQuiescence replays the golden workload once, sampling the
// candidate fault-site nets of the plan. Returns nil (quiescence rules
// off) when the replica cannot run.
func (t *Target) traceQuiescence(g *Golden, plan []Injection) *quiescence {
	n := t.Analysis.N
	netSet := map[netlist.NetID]bool{}
	ffSet := map[netlist.FFID]bool{}
	for i := range plan {
		f := plan[i].Fault
		switch f.Kind {
		case faults.SA0, faults.SA1:
			if f.Site == faults.SitePin {
				if f.Gate >= 0 && int(f.Gate) < len(n.Gates) {
					gg := &n.Gates[f.Gate]
					if f.Pin >= 0 && f.Pin < len(gg.Inputs) {
						netSet[gg.Inputs[f.Pin]] = true
					}
				}
			} else if f.Net >= 0 && int(f.Net) < len(n.Nets) {
				netSet[f.Net] = true
			}
		case faults.DelayX:
			if f.Net >= 0 && int(f.Net) < len(n.Nets) {
				netSet[f.Net] = true
			}
		case faults.Flip:
			if f.FF >= 0 && int(f.FF) < len(n.FFs) {
				ffSet[f.FF] = true
			}
		}
	}
	q := &quiescence{
		cycles: g.Trace.Cycles(),
		pre:    map[netlist.NetID][]sim.Value{},
		post:   map[netlist.NetID][]sim.Value{},
		ffPost: map[netlist.FFID][]sim.Value{},
	}
	if len(netSet) == 0 && len(ffSet) == 0 {
		return q
	}
	nets := make([]netlist.NetID, 0, len(netSet))
	for id := range netSet { //det:order sorted below
		nets = append(nets, id)
	}
	sort.Slice(nets, func(i, j int) bool { return nets[i] < nets[j] })
	ffs := make([]netlist.FFID, 0, len(ffSet))
	for id := range ffSet { //det:order sorted below
		ffs = append(ffs, id)
	}
	sort.Slice(ffs, func(i, j int) bool { return ffs[i] < ffs[j] })

	s, err := t.NewInstance()
	if err != nil {
		return nil
	}
	tr := g.Trace
	for _, id := range nets {
		q.pre[id] = make([]sim.Value, tr.Cycles())
		q.post[id] = make([]sim.Value, tr.Cycles())
	}
	for _, id := range ffs {
		q.ffPost[id] = make([]sim.Value, tr.Cycles())
	}
	for c := 0; c < tr.Cycles(); c++ {
		tr.ApplyTo(s, c)
		s.Eval()
		for _, id := range nets {
			q.pre[id][c] = s.Net(id)
		}
		s.Step()
		for _, id := range nets {
			q.post[id][c] = s.Net(id)
		}
		for _, id := range ffs {
			q.ffPost[id][c] = s.FFState(id)
		}
	}
	t.Telemetry.AddSimCycles(int64(tr.Cycles()))
	return q
}

// netQuiescent reports whether forcing the net to v over the injection
// window provably changes nothing: the golden net already holds v at
// every settled instant the force is visible. The force applies after
// the edge of cycle c and releases after the edge of cycle c+d (never,
// for d == 0): the monitors read post-edge values for cycles [c,
// removeAt), and flip-flops/peripherals sample pre-edge values for
// cycles (c, removeAt].
func (q *quiescence) netQuiescent(net netlist.NetID, v sim.Value, c, d int) bool {
	pre, post := q.pre[net], q.post[net]
	if pre == nil {
		return false
	}
	removeAt := q.cycles
	if d > 0 {
		removeAt = c + d
	}
	for k := c; k < q.cycles && k < removeAt; k++ {
		if post[k] != v {
			return false
		}
	}
	for k := c + 1; k < q.cycles && k <= removeAt; k++ {
		if pre[k] != v {
			return false
		}
	}
	return true
}

// ffX reports whether the flip-flop state a flip would invert is X at
// the injection instant — the Kleene complement of X is X, so the flip
// is a no-op.
func (q *quiescence) ffX(ff netlist.FFID, c int) bool {
	st := q.ffPost[ff]
	return st != nil && c >= 0 && c < len(st) && st[c] == sim.VX
}
