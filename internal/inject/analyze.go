package inject

import (
	"sort"

	"repro/internal/fmea"
	"repro/internal/zones"
)

// ZoneMeasure aggregates the injection outcomes of one zone — the
// measured counterparts of the worksheet's S, D and DDF values.
type ZoneMeasure struct {
	Zone        int
	Name        string
	Experiments int
	Silent      int
	DetSafe     int
	DangerDet   int
	DangerUndet int
	// Aborted counts watchdog-terminated experiments, Quarantined the
	// ones the supervisor isolated after exhausting retries. Both gave
	// no verdict; the measured fractions below count them on the
	// dangerous-undetected side (the λDU-conservative bound).
	Aborted     int
	Quarantined int
	// EffectObs is the union of observation points the zone's failures
	// reached (the "table of effects").
	EffectObs []int
}

// SMeasured is the measured safe fraction: failures with no functional
// deviation. Aborted and quarantined experiments count as unsafe.
func (z ZoneMeasure) SMeasured() float64 {
	if z.Experiments == 0 {
		return 1
	}
	return float64(z.Silent+z.DetSafe) / float64(z.Experiments)
}

// DDFMeasured is the measured detected-dangerous fraction. Aborted and
// quarantined experiments count as dangerous undetected.
func (z ZoneMeasure) DDFMeasured() float64 {
	d := z.DangerDet + z.DangerUndet + z.Aborted + z.Quarantined
	if d == 0 {
		return 1
	}
	return float64(z.DangerDet) / float64(d)
}

// ZoneMeasures folds the campaign results per zone (result-analyzer
// stage, "automatically fills a sheet included in the FMEA spreadsheet").
func (r *Report) ZoneMeasures(a *zones.Analysis) []ZoneMeasure {
	byZone := map[int]*ZoneMeasure{}
	var order []int
	get := func(zone int) *ZoneMeasure {
		zm, ok := byZone[zone]
		if !ok {
			zm = &ZoneMeasure{Zone: zone, Name: a.Zones[zone].Name}
			byZone[zone] = zm
			order = append(order, zone)
		}
		return zm
	}
	for _, q := range r.Quarantined {
		zm := get(q.Injection.Zone)
		zm.Experiments++
		zm.Quarantined++
	}
	for _, res := range r.Results {
		zm := get(res.Zone)
		zm.Experiments++
		switch res.Outcome {
		case Silent:
			zm.Silent++
		case DetectedSafe:
			zm.DetSafe++
		case DangerousDetected:
			zm.DangerDet++
		case DangerousUndetected:
			zm.DangerUndet++
		case Aborted:
			zm.Aborted++
		}
		for _, oi := range res.Deviated {
			found := false
			for _, e := range zm.EffectObs {
				if e == oi {
					found = true
				}
			}
			if !found {
				zm.EffectObs = append(zm.EffectObs, oi)
			}
		}
	}
	sort.Ints(order)
	out := make([]ZoneMeasure, 0, len(order))
	for _, z := range order {
		sort.Ints(byZone[z].EffectObs)
		out = append(out, *byZone[z])
	}
	return out
}

// EffectCheck compares a zone's measured effect table with the
// main/secondary effects predicted by the static analysis (Figs. 1–3).
type EffectCheck struct {
	Zone       int
	Name       string
	Consistent bool
	// Unpredicted lists observed effects outside main ∪ secondary —
	// each one is a new FMEA line to add (Section 5c/5d).
	Unpredicted []int
}

// CheckEffects validates every measured effect table against the
// predicted reachability. Only zone-failure experiments participate:
// cone and wide/global faults probe deeper fault populations whose
// unpredicted effects are the *output* of Sections 5c/5d (new FMEA
// lines), not a consistency failure of the Fig. 1-3 model.
func (r *Report) CheckEffects(a *zones.Analysis) []EffectCheck {
	filtered := &Report{}
	for _, res := range r.Results {
		if res.Class == ZoneFailure {
			filtered.Results = append(filtered.Results, res)
		}
	}
	measures := filtered.ZoneMeasures(a)
	out := make([]EffectCheck, 0, len(measures))
	for _, zm := range measures {
		predicted := map[int]bool{}
		for _, o := range a.MainEffects(zm.Zone) {
			predicted[o] = true
		}
		for _, o := range a.SecondaryEffects(zm.Zone) {
			predicted[o] = true
		}
		ec := EffectCheck{Zone: zm.Zone, Name: zm.Name, Consistent: true}
		for _, o := range zm.EffectObs {
			if !predicted[o] {
				ec.Consistent = false
				ec.Unpredicted = append(ec.Unpredicted, o)
			}
		}
		out = append(out, ec)
	}
	return out
}

// ValidationRow cross-checks one zone's worksheet estimates against the
// measured values.
type ValidationRow struct {
	Zone    int
	Name    string
	EstS    float64
	MeasS   float64
	EstDDF  float64
	MeasDDF float64
	Within  bool
	// DeltaS/DeltaDDF are estimate − measurement: positive values mean
	// the sheet claimed more than the campaign observed.
	DeltaS   float64
	DeltaDDF float64
	// Degraded counts the zone's experiments without a verdict
	// (quarantined + watchdog-aborted); when nonzero the measured
	// values are conservative lower bounds, and the cross-check flags
	// the row instead of treating a miss as a hard over-claim.
	Degraded int
}

// ValidateWorksheet performs the Section 5a cross-check: for every zone
// present in both the worksheet and the campaign, compare the estimated
// safe fraction and detected-dangerous fraction with the measured ones.
// The check is one-sided: an FMEA is built on conservative assumptions,
// so a measurement *better* than the estimate validates it, while a
// measurement more than `tolerance` *below* the estimate means the
// sheet over-claimed and fails ("the validation is successful if the
// percentages are in line with the estimated values").
func (r *Report) ValidateWorksheet(a *zones.Analysis, w *fmea.Worksheet, tolerance float64) []ValidationRow {
	measures := r.ZoneMeasures(a)
	var out []ValidationRow
	for _, zm := range measures {
		m := w.ZoneMetrics(zm.Zone)
		if m.Total() == 0 {
			continue // zone not in the rate accounting
		}
		estS := m.LambdaS / m.Total()
		estDDF := m.DC()
		row := ValidationRow{
			Zone: zm.Zone, Name: zm.Name,
			EstS: estS, MeasS: zm.SMeasured(),
			EstDDF: estDDF, MeasDDF: zm.DDFMeasured(),
			Degraded: zm.Aborted + zm.Quarantined,
		}
		row.DeltaS = row.EstS - row.MeasS
		row.DeltaDDF = row.EstDDF - row.MeasDDF
		row.Within = row.DeltaS <= tolerance && row.DeltaDDF <= tolerance
		out = append(out, row)
	}
	return out
}

// PassFraction is the share of validation rows within tolerance.
func PassFraction(rows []ValidationRow) float64 {
	if len(rows) == 0 {
		return 1
	}
	n := 0
	for _, r := range rows {
		if r.Within {
			n++
		}
	}
	return float64(n) / float64(len(rows))
}
