package inject_test

import (
	"reflect"
	"testing"

	"repro/internal/inject"
)

// TestQuarantineWithLanesAndCollapse: a panicking fault inside a
// 64-lane word-parallel batch must retire only its own lane — the
// other experiments packed into the same machine word keep their
// verdicts — and the quarantine records must match the scalar engine
// exactly, with and without the static collapse pre-pass, at any
// worker count.
func TestQuarantineWithLanesAndCollapse(t *testing.T) {
	target, g, plan := reducedCampaign(t, true)
	// Poison two rows that land in the same 64-lane batch (3 and 7)
	// plus one further out, so both intra-batch isolation and
	// cross-batch scheduling are exercised.
	poison := []int{3, 7, len(plan) - 2}
	poisoned := poisonPlan(plan, poison...)

	// Scalar reference: lanes 1, no collapse, serial.
	ref := *target
	ref.Supervision = inject.Supervision{Quarantine: true, Retries: 2}
	want, err := ref.Run(g, poisoned)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Quarantined) != len(poison) {
		t.Fatalf("scalar reference quarantined %d rows, want %d", len(want.Quarantined), len(poison))
	}

	for _, tc := range []struct {
		name     string
		lanes    int
		collapse bool
		workers  int
	}{
		{"lanes64", 64, false, 1},
		{"lanes64-collapse", 64, true, 1},
		{"lanes64-collapse-workers8", 64, true, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tgt := *target
			tgt.Lanes = tc.lanes
			tgt.Collapse = tc.collapse
			tgt.Workers = tc.workers
			tgt.Supervision = inject.Supervision{Quarantine: true, Retries: 2}
			rep, err := tgt.Run(g, poisoned)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Quarantined) != len(poison) {
				t.Fatalf("quarantined %d rows, want %d", len(rep.Quarantined), len(poison))
			}
			for qi, pi := range poison {
				q := rep.Quarantined[qi]
				if q.PlanIndex != pi || q.Injection != poisoned[pi] {
					t.Fatalf("quarantine record %d names plan index %d, want %d", qi, q.PlanIndex, pi)
				}
				if q.Attempts != 3 {
					t.Fatalf("quarantine record %d: attempts = %d, want 3 (1 + 2 retries)", qi, q.Attempts)
				}
			}
			// The batch survives the lane: every non-poisoned row keeps
			// a verdict, and the whole report is identical to the
			// scalar engine's — the poisoned lane is surgically
			// removed, not the 64-wide batch around it.
			if len(rep.Results) != len(plan)-len(poison) {
				t.Fatalf("campaign kept %d results, want %d", len(rep.Results), len(plan)-len(poison))
			}
			if !reflect.DeepEqual(want, rep) {
				t.Fatal("lane-parallel quarantine report differs from the scalar reference")
			}
			if !rep.Degraded() {
				t.Fatal("report with quarantined rows must be Degraded")
			}
		})
	}
}
