package inject

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/faults"
	"repro/internal/netlist"
)

// Checkpoint file format (version 1, little-endian):
//
//	[8]byte  magic "FMEACKPT"
//	u16      version
//	u64      plan hash (FNV-1a over the canonical injection encodings)
//	u32      plan length
//	u32      result-record count
//	u32      quarantine-record count
//	u32      CRC32 (IEEE) of everything above
//	result records, strictly increasing plan index:
//	  body = u32 index · injection · u8 outcome · u8 sens ·
//	         i32 firstDevCycle · u32 n · n×i32 deviated
//	  u32 CRC32 of body
//	quarantine records, strictly increasing plan index:
//	  body = u32 index · injection · u32 attempts · u32 len · error bytes
//	  u32 CRC32 of body
//
// Every byte is covered by a checksum or validated against the plan
// (magic, version, plan hash/length, per-record injection equality),
// so truncation or corruption anywhere fails decoding with a
// *CheckpointError — never a panic, never a silent wrong resume. The
// encoding is canonical: DecodeCheckpoint accepts exactly the bytes
// EncodeCheckpoint produces for the same state.

const (
	checkpointMagic   = "FMEACKPT"
	checkpointVersion = 1
	// maxErrLen caps a quarantine record's error string on decode so a
	// corrupt length field cannot drive a huge allocation.
	maxErrLen = 1 << 20
)

// CheckpointError is the versioned-format error for unreadable,
// corrupt or mismatched checkpoint files.
type CheckpointError struct {
	// Version is the format version found in the file (0 when the
	// header itself was unreadable).
	Version int
	Reason  string
}

func (e *CheckpointError) Error() string {
	return fmt.Sprintf("inject: checkpoint format v%d: %s", e.Version, e.Reason)
}

// IndexedResult pairs a completed experiment result with its plan
// position.
type IndexedResult struct {
	PlanIndex int
	Result    ExpResult
}

// Checkpoint is the deserialized completed-result state of a campaign:
// per-index verdicts plus the quarantine section, both sorted by plan
// index.
type Checkpoint struct {
	Results     []IndexedResult
	Quarantined []Quarantined
}

// PlanHash fingerprints an injection plan. Resuming validates the
// stored hash against the live plan, so a checkpoint taken with a
// different seed, design or plan shape is rejected up front.
func PlanHash(plan []Injection) uint64 {
	h := fnv.New64a()
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(plan)))
	h.Write(n[:])
	for i := range plan {
		h.Write(appendInjection(nil, &plan[i]))
	}
	return h.Sum64()
}

// ---------- encoding ----------

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendI32(b []byte, v int) []byte    { return appendU32(b, uint32(int32(v))) }

func appendInjection(b []byte, inj *Injection) []byte {
	b = appendI32(b, inj.Zone)
	b = append(b, byte(inj.Fault.Kind), byte(inj.Fault.Site))
	b = appendI32(b, int(inj.Fault.Net))
	b = appendI32(b, int(inj.Fault.Net2))
	b = appendI32(b, int(inj.Fault.Gate))
	b = appendI32(b, inj.Fault.Pin)
	b = appendI32(b, int(inj.Fault.FF))
	b = appendI32(b, inj.Cycle)
	b = appendI32(b, inj.Duration)
	b = append(b, byte(inj.Class))
	b = appendU16(b, uint16(len(inj.Mode)))
	return append(b, inj.Mode...)
}

// appendRecord seals one record body with its CRC.
func appendRecord(b, body []byte) []byte {
	b = append(b, body...)
	return appendU32(b, crc32.ChecksumIEEE(body))
}

// EncodeCheckpoint serializes campaign state against its plan. Records
// are emitted in canonical order (sorted by plan index), so the same
// state always yields the same bytes.
func EncodeCheckpoint(ck *Checkpoint, plan []Injection) []byte {
	results := append([]IndexedResult(nil), ck.Results...)
	sort.Slice(results, func(i, j int) bool { return results[i].PlanIndex < results[j].PlanIndex }) //det:order PlanIndex unique per result
	quar := append([]Quarantined(nil), ck.Quarantined...)
	sort.Slice(quar, func(i, j int) bool { return quar[i].PlanIndex < quar[j].PlanIndex }) //det:order PlanIndex unique per quarantine entry

	b := append([]byte(nil), checkpointMagic...)
	b = appendU16(b, checkpointVersion)
	b = appendU64(b, PlanHash(plan))
	b = appendU32(b, uint32(len(plan)))
	b = appendU32(b, uint32(len(results)))
	b = appendU32(b, uint32(len(quar)))
	b = appendU32(b, crc32.ChecksumIEEE(b))

	for i := range results {
		r := &results[i]
		body := appendI32(nil, r.PlanIndex)
		body = appendInjection(body, &r.Result.Injection)
		body = append(body, byte(r.Result.Outcome), boolByte(r.Result.Sens))
		body = appendI32(body, r.Result.FirstDevCycle)
		body = appendU32(body, uint32(len(r.Result.Deviated)))
		for _, oi := range r.Result.Deviated {
			body = appendI32(body, oi)
		}
		b = appendRecord(b, body)
	}
	for i := range quar {
		q := &quar[i]
		body := appendI32(nil, q.PlanIndex)
		body = appendInjection(body, &q.Injection)
		body = appendU32(body, uint32(q.Attempts))
		body = appendU32(body, uint32(len(q.Err)))
		body = append(body, q.Err...)
		b = appendRecord(b, body)
	}
	return b
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// WriteCheckpoint atomically persists campaign state: the encoding is
// written to a temp file in the same directory and renamed over the
// destination, so a crash at any instant leaves a complete checkpoint
// (the previous or the new one) on disk.
func WriteCheckpoint(path string, ck *Checkpoint, plan []Injection) error {
	data := EncodeCheckpoint(ck, plan)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("inject: checkpoint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("inject: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("inject: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("inject: checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file against the
// live plan.
func LoadCheckpoint(path string, plan []Injection) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(data, plan)
}

// ---------- decoding ----------

// ckReader is a bounds-checked cursor over the checkpoint bytes; any
// overrun latches the short flag instead of panicking.
type ckReader struct {
	b     []byte
	off   int
	short bool
}

func (r *ckReader) take(n int) []byte {
	if r.short || n < 0 || r.off+n > len(r.b) {
		r.short = true
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *ckReader) u8() byte {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *ckReader) u16() uint16 {
	s := r.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (r *ckReader) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *ckReader) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *ckReader) i32() int { return int(int32(r.u32())) }

func (r *ckReader) injection() Injection {
	var inj Injection
	inj.Zone = r.i32()
	inj.Fault.Kind = faults.Kind(r.u8())
	inj.Fault.Site = faults.SiteKind(r.u8())
	inj.Fault.Net = netlist.NetID(r.i32())
	inj.Fault.Net2 = netlist.NetID(r.i32())
	inj.Fault.Gate = netlist.GateID(r.i32())
	inj.Fault.Pin = r.i32()
	inj.Fault.FF = netlist.FFID(r.i32())
	inj.Cycle = r.i32()
	inj.Duration = r.i32()
	inj.Class = ExpClass(r.u8())
	inj.Mode = string(r.take(int(r.u16())))
	return inj
}

// DecodeCheckpoint parses and fully validates checkpoint bytes against
// the live plan. Any deviation — bad magic, unknown version, plan
// hash/length mismatch, truncation, checksum failure, out-of-order or
// duplicated indices, an injection that differs from the plan's,
// trailing bytes — yields a *CheckpointError.
func DecodeCheckpoint(data []byte, plan []Injection) (*Checkpoint, error) {
	fail := func(version int, format string, args ...any) (*Checkpoint, error) {
		return nil, &CheckpointError{Version: version, Reason: fmt.Sprintf(format, args...)}
	}
	r := &ckReader{b: data}
	if string(r.take(len(checkpointMagic))) != checkpointMagic {
		return fail(0, "bad magic (not a campaign checkpoint)")
	}
	version := int(r.u16())
	if r.short {
		return fail(0, "truncated header")
	}
	if version != checkpointVersion {
		return fail(version, "unsupported version (this build reads v%d)", checkpointVersion)
	}
	planHash := r.u64()
	planLen := r.u32()
	nResults := r.u32()
	nQuar := r.u32()
	headerEnd := r.off
	headerCRC := r.u32()
	if r.short {
		return fail(version, "truncated header")
	}
	if crc32.ChecksumIEEE(data[:headerEnd]) != headerCRC {
		return fail(version, "header checksum mismatch")
	}
	if int(planLen) != len(plan) {
		return fail(version, "plan length mismatch: checkpoint has %d, campaign has %d", planLen, len(plan))
	}
	if planHash != PlanHash(plan) {
		return fail(version, "plan hash mismatch: checkpoint was taken for a different plan/seed")
	}
	if int(nResults)+int(nQuar) > len(plan) {
		return fail(version, "record counts exceed the plan (%d results + %d quarantined > %d)", nResults, nQuar, len(plan))
	}

	seen := make([]bool, len(plan))
	readRecord := func(parse func(r *ckReader) (int, error)) error {
		bodyStart := r.off
		idx, err := parse(r)
		bodyEnd := r.off
		recCRC := r.u32()
		if r.short {
			return &CheckpointError{Version: version, Reason: "truncated record"}
		}
		if crc32.ChecksumIEEE(data[bodyStart:bodyEnd]) != recCRC {
			return &CheckpointError{Version: version, Reason: "record checksum mismatch"}
		}
		if err != nil {
			return err
		}
		if idx < 0 || idx >= len(plan) {
			return &CheckpointError{Version: version, Reason: fmt.Sprintf("plan index %d out of range", idx)}
		}
		if seen[idx] {
			return &CheckpointError{Version: version, Reason: fmt.Sprintf("plan index %d recorded twice", idx)}
		}
		seen[idx] = true
		return nil
	}

	ck := &Checkpoint{}
	lastIdx := -1
	for i := 0; i < int(nResults); i++ {
		err := readRecord(func(r *ckReader) (int, error) {
			var ir IndexedResult
			ir.PlanIndex = r.i32()
			ir.Result.Injection = r.injection()
			outcome := r.u8()
			sens := r.u8()
			if !r.short && (outcome > byte(Aborted) || sens > 1) {
				return ir.PlanIndex, &CheckpointError{Version: version, Reason: "non-canonical outcome encoding"}
			}
			ir.Result.Outcome = Outcome(outcome)
			ir.Result.Sens = sens == 1
			ir.Result.FirstDevCycle = r.i32()
			n := r.u32()
			if int(n) > len(r.b)-r.off {
				r.short = true
				return ir.PlanIndex, nil
			}
			for k := 0; k < int(n); k++ {
				ir.Result.Deviated = append(ir.Result.Deviated, r.i32())
			}
			if r.short {
				return ir.PlanIndex, nil
			}
			if ir.PlanIndex <= lastIdx {
				return ir.PlanIndex, &CheckpointError{Version: version, Reason: "result records out of order"}
			}
			lastIdx = ir.PlanIndex
			if ir.PlanIndex >= 0 && ir.PlanIndex < len(plan) && ir.Result.Injection != plan[ir.PlanIndex] {
				return ir.PlanIndex, &CheckpointError{
					Version: version,
					Reason:  fmt.Sprintf("record %d injection differs from the plan", ir.PlanIndex),
				}
			}
			ck.Results = append(ck.Results, ir)
			return ir.PlanIndex, nil
		})
		if err != nil {
			return nil, err
		}
	}
	lastIdx = -1
	for i := 0; i < int(nQuar); i++ {
		err := readRecord(func(r *ckReader) (int, error) {
			var q Quarantined
			q.PlanIndex = r.i32()
			q.Injection = r.injection()
			q.Attempts = int(r.u32())
			errLen := r.u32()
			if errLen > maxErrLen {
				r.short = true
				return q.PlanIndex, nil
			}
			q.Err = string(r.take(int(errLen)))
			if r.short {
				return q.PlanIndex, nil
			}
			if q.PlanIndex <= lastIdx {
				return q.PlanIndex, &CheckpointError{Version: version, Reason: "quarantine records out of order"}
			}
			lastIdx = q.PlanIndex
			if q.PlanIndex >= 0 && q.PlanIndex < len(plan) && q.Injection != plan[q.PlanIndex] {
				return q.PlanIndex, &CheckpointError{
					Version: version,
					Reason:  fmt.Sprintf("quarantine record %d injection differs from the plan", q.PlanIndex),
				}
			}
			ck.Quarantined = append(ck.Quarantined, q)
			return q.PlanIndex, nil
		})
		if err != nil {
			return nil, err
		}
	}
	if r.off != len(data) {
		return fail(version, "%d trailing bytes after the last record", len(data)-r.off)
	}
	return ck, nil
}
