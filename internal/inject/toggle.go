package inject

import (
	"io"

	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ToggleCoverage measures the workload-efficiency metric of Section 5b
// on the full DUT (including behavioral peripherals, which the
// bit-parallel fault simulator cannot host): the fraction of nets the
// workload drove to both logic levels.
func (t *Target) ToggleCoverage(tr *workload.Trace) (faultsim.ToggleReport, error) {
	s, err := t.NewInstance()
	if err != nil {
		return faultsim.ToggleReport{}, err
	}
	n := t.Analysis.N
	seen0 := make([]bool, len(n.Nets))
	seen1 := make([]bool, len(n.Nets))
	record := func() {
		for id := range n.Nets {
			switch s.Net(netlist.NetID(id)) {
			case sim.V0:
				seen0[id] = true
			case sim.V1:
				seen1[id] = true
			}
		}
	}
	record()
	for c := 0; c < tr.Cycles(); c++ {
		tr.ApplyTo(s, c)
		s.Eval()
		s.Step()
		record()
	}
	rep := faultsim.ToggleReport{}
	for id := range n.Nets {
		nid := netlist.NetID(id)
		if _, isConst := n.IsConst(nid); isConst {
			continue
		}
		if !n.IsDriven(nid) {
			continue // orphaned by pruning; no silicon behind it
		}
		rep.Eligible++
		if seen0[id] && seen1[id] {
			rep.Covered++
		} else {
			rep.Untoggled = append(rep.Untoggled, nid)
		}
	}
	return rep, nil
}

// RecordVCD replays the workload (golden when inj is nil, faulty
// otherwise) and streams a waveform of all ports and register outputs —
// the debugging view of what an injected fault actually did.
func (t *Target) RecordVCD(g *Golden, inj *Injection, w io.Writer) error {
	s, err := t.NewInstance()
	if err != nil {
		return err
	}
	rec := sim.NewVCDRecorder(s, w, nil)
	tr := g.Trace
	for c := 0; c < tr.Cycles(); c++ {
		tr.ApplyTo(s, c)
		s.Eval()
		s.Step()
		if inj != nil {
			if c == inj.Cycle {
				inj.Fault.Apply(s)
			}
			if inj.Duration > 0 && c == inj.Cycle+inj.Duration {
				inj.Fault.Remove(s)
			}
		}
		rec.Sample()
	}
	return rec.Close()
}

// AdjustedToggle recomputes the toggle coverage with diagnostic-only
// logic excluded from the eligible set: redundancy comparators and alarm
// conditioning cannot change in a fault-free run by construction (their
// coverage is credited by fault injection instead, Section 5c). It
// returns the adjusted coverage and the number of excluded nets.
func (t *Target) AdjustedToggle(rep faultsim.ToggleReport) (float64, int) {
	reach := t.Analysis.FunctionalReachNets()
	excluded := 0
	for _, id := range rep.Untoggled {
		if !reach[id] {
			excluded++
		}
	}
	eligible := rep.Eligible - excluded
	if eligible <= 0 {
		return 1, excluded
	}
	return float64(rep.Covered) / float64(eligible), excluded
}
