package inject_test

import (
	"errors"
	"testing"

	"repro/internal/inject"
	"repro/internal/memsys"
)

// TestCampaignInterrupt: a closed Supervision.Interrupt channel stops
// both the golden run and the campaign with ErrCampaignInterrupted —
// the cooperative-cancellation contract the serve daemon's job
// cancellation rides on. The engine either returns a complete report or
// this sentinel, never a partial report.
func TestCampaignInterrupt(t *testing.T) {
	target, g, plan := reducedCampaign(t, true)
	closed := make(chan struct{})
	close(closed)
	target.Supervision.Interrupt = closed

	if _, err := target.Run(g, plan); !errors.Is(err, inject.ErrCampaignInterrupted) {
		t.Fatalf("campaign with closed interrupt: err = %v, want ErrCampaignInterrupted", err)
	}

	// Same for the golden run (a fresh target: the one above has state).
	cfg := memsys.V2Config()
	cfg.AddrWidth = 6
	d, err := memsys.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	t2 := d.InjectionTargetSeeded(a, d.SeedFaults())
	t2.Supervision.Interrupt = closed
	if _, err := t2.RunGolden(d.ValidationWorkload(2, 1)); !errors.Is(err, inject.ErrCampaignInterrupted) {
		t.Fatalf("golden run with closed interrupt: err = %v, want ErrCampaignInterrupted", err)
	}

	// A nil interrupt channel is the common path and must stay inert.
	target2, g2, plan2 := reducedCampaign(t, true)
	rep, err := target2.Run(g2, plan2)
	if err != nil || len(rep.Results) != len(plan2) {
		t.Fatalf("nil interrupt: err %v, %d results", err, len(rep.Results))
	}
}
