package iec61508

// FailureMode is one of the faults/failures IEC 61508-2 requires to be
// detected during operation or analyzed in the derivation of the safe
// failure fraction (the norm's Annex A tables, quoted in the paper's
// Section 2).
type FailureMode uint8

// Failure modes for variable memories, processing units and general
// digital logic. The enumerators group the norm's per-component tables.
const (
	// Variable memory (Table A.6 family).
	FMStuckAtData     FailureMode = iota // DC fault model on data
	FMStuckAtAddress                     // DC fault model on addresses
	FMCrossOver                          // dynamic cross-over between memory cells
	FMWrongAddressing                    // no, wrong or multiple addressing
	FMSoftError                          // change of information caused by soft errors

	// Processing units (Table A.10 family).
	FMRegisterStuck  // DC fault model on internal registers
	FMWrongCoding    // wrong coding or wrong execution
	FMWrongExecution // wrong execution incl. flag registers

	// General digital logic / interconnect.
	FMStuckAtLogic // stuck-at in combinational logic
	FMBridging     // bridging / coupling between lines
	FMTransient    // transient bit-flip (SEU) in a memory element
	FMClockFault   // clock or reset distribution fault
	FMTimingFault  // delay / timing degradation (thermal, marginal)
)

var fmNames = [...]string{
	"stuck-at data", "stuck-at address", "dynamic cross-over",
	"no/wrong/multiple addressing", "soft error",
	"register stuck-at", "wrong coding", "wrong execution",
	"logic stuck-at", "bridging", "transient bit-flip",
	"clock/reset fault", "timing fault",
}

func (f FailureMode) String() string {
	if int(f) < len(fmNames) {
		return fmNames[f]
	}
	return "unknown failure mode"
}

// Transient reports whether the mode is transient (soft error, bit-flip,
// timing glitch) rather than permanent.
func (f FailureMode) Transient() bool {
	switch f {
	case FMSoftError, FMTransient, FMTimingFault:
		return true
	}
	return false
}

// ComponentClass selects a failure-mode catalog.
type ComponentClass uint8

// Component classes with distinct Annex A failure-mode tables.
const (
	VariableMemory ComponentClass = iota
	ProcessingUnit
	DigitalLogic
	Interconnect
)

func (c ComponentClass) String() string {
	switch c {
	case VariableMemory:
		return "variable memory"
	case ProcessingUnit:
		return "processing unit"
	case Interconnect:
		return "interconnect"
	default:
		return "digital logic"
	}
}

// CatalogFor returns the failure modes the norm requires to be analyzed
// for a component class.
func CatalogFor(c ComponentClass) []FailureMode {
	switch c {
	case VariableMemory:
		return []FailureMode{FMStuckAtData, FMStuckAtAddress, FMCrossOver, FMWrongAddressing, FMSoftError}
	case ProcessingUnit:
		return []FailureMode{FMRegisterStuck, FMCrossOver, FMWrongCoding, FMWrongExecution, FMTransient}
	case Interconnect:
		return []FailureMode{FMStuckAtLogic, FMBridging, FMClockFault, FMTimingFault}
	default:
		return []FailureMode{FMStuckAtLogic, FMBridging, FMTransient, FMTimingFault}
	}
}
