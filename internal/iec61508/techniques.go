package iec61508

import "sort"

// DCLevel is the norm's coarse diagnostic-coverage grading.
type DCLevel uint8

// The three claimable levels; the norm attaches 60 % / 90 % / 99 % as
// the maximum DC considered achievable at each level.
const (
	DCLow DCLevel = iota
	DCMedium
	DCHigh
)

func (l DCLevel) String() string {
	switch l {
	case DCLow:
		return "low"
	case DCMedium:
		return "medium"
	default:
		return "high"
	}
}

// Value returns the maximum diagnostic coverage claimable at the level.
func (l DCLevel) Value() float64 {
	switch l {
	case DCLow:
		return 0.60
	case DCMedium:
		return 0.90
	default:
		return 0.99
	}
}

// Technique identifies a diagnostic technique assessed by the norm's
// Tables A.2–A.13 (excerpted to the techniques the memory sub-system
// case study uses).
type Technique string

// Techniques referenced by the case study and the FMEA defaults.
const (
	TechNone              Technique = "none"
	TechECCHamming        Technique = "RAM monitoring with Hamming code (SEC-DED)"
	TechDoubleRAM         Technique = "double RAM with hardware comparison"
	TechParityBit         Technique = "parity bit per word"
	TechAddressCoding     Technique = "address folded into block coding"
	TechRedundantChecker  Technique = "duplicated checker with comparison"
	TechSyndromeCheck     Technique = "distributed syndrome checking"
	TechWatchdog          Technique = "watchdog timer"
	TechSWStartupTest     Technique = "software start-up test"
	TechMPUAttributeCheck Technique = "bus attribute / access permission check"
	TechScrubbing         Technique = "periodic memory scrubbing"
	TechLockstep          Technique = "dual-core lockstep with hardware comparison"
)

// techniqueDC is the norm-claimed maximum DC level per technique. The
// values follow IEC 61508-2 Annex A: coding techniques (Hamming/ECC) and
// full hardware redundancy rate "high"; parity and watchdogs "low";
// test-based and attribute checks "medium".
var techniqueDC = map[Technique]DCLevel{
	TechECCHamming:        DCHigh,
	TechDoubleRAM:         DCHigh,
	TechParityBit:         DCLow,
	TechAddressCoding:     DCHigh,
	TechRedundantChecker:  DCHigh,
	TechSyndromeCheck:     DCMedium,
	TechWatchdog:          DCLow,
	TechSWStartupTest:     DCMedium,
	TechMPUAttributeCheck: DCMedium,
	TechScrubbing:         DCMedium,
	TechLockstep:          DCHigh,
}

// MaxDC returns the maximum diagnostic coverage the norm considers
// achievable for a technique (0 for TechNone/unknown).
func MaxDC(t Technique) float64 {
	if lvl, ok := techniqueDC[t]; ok {
		return lvl.Value()
	}
	return 0
}

// DCLevelOf returns the norm's level grade for a technique.
func DCLevelOf(t Technique) (DCLevel, bool) {
	lvl, ok := techniqueDC[t]
	return lvl, ok
}

// Techniques lists the assessed techniques in deterministic order.
func Techniques() []Technique {
	out := make([]Technique, 0, len(techniqueDC))
	for t := range techniqueDC {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ClampClaim limits a user-estimated diagnostic coverage to the norm's
// maximum for the claiming technique, per Section 4 of the paper ("what
// accepted by the IEC norm, Annex 2 tables A.2–A.13").
func ClampClaim(t Technique, estimated float64) float64 {
	max := MaxDC(t)
	if estimated > max {
		return max
	}
	if estimated < 0 {
		return 0
	}
	return estimated
}
