// Package iec61508 encodes the parts of IEC 61508 the methodology uses:
// Safety Integrity Levels, the architectural-constraints table mapping
// Safe Failure Fraction and Hardware Fault Tolerance to the maximum
// claimable SIL (IEC 61508-2 Tables 2 and 3), the failure-mode catalogs
// for variable memories and processing units (Annex A tables referenced
// by the paper's Section 2), and the maximum diagnostic coverage the
// norm considers achievable per diagnostic technique (Tables A.2–A.13).
package iec61508

import "fmt"

// SIL is a Safety Integrity Level. SILNone means no SIL claimable.
type SIL int

// Safety integrity levels; SIL4 is the highest integrity.
const (
	SILNone SIL = 0
	SIL1    SIL = 1
	SIL2    SIL = 2
	SIL3    SIL = 3
	SIL4    SIL = 4
)

func (s SIL) String() string {
	if s == SILNone {
		return "none"
	}
	return fmt.Sprintf("SIL%d", int(s))
}

// SFFBand is a Safe Failure Fraction band of the architectural-
// constraints tables.
type SFFBand int

// SFF bands: <60 %, 60–90 %, 90–99 %, ≥99 %.
const (
	BandBelow60 SFFBand = iota
	Band60to90
	Band90to99
	Band99up
)

func (b SFFBand) String() string {
	switch b {
	case BandBelow60:
		return "< 60%"
	case Band60to90:
		return "60% – < 90%"
	case Band90to99:
		return "90% – < 99%"
	default:
		return ">= 99%"
	}
}

// BandOf buckets an SFF value (in [0,1]) into its band.
func BandOf(sff float64) SFFBand {
	switch {
	case sff < 0.60:
		return BandBelow60
	case sff < 0.90:
		return Band60to90
	case sff < 0.99:
		return Band90to99
	default:
		return Band99up
	}
}

// typeATable and typeBTable encode IEC 61508-2 Tables 2 and 3
// (architectural constraints, route 1_H): maximum claimable SIL indexed
// by [band][HFT] for HFT 0..2.
var typeATable = [4][3]SIL{
	BandBelow60: {SIL1, SIL2, SIL3},
	Band60to90:  {SIL2, SIL3, SIL4},
	Band90to99:  {SIL3, SIL4, SIL4},
	Band99up:    {SIL3, SIL4, SIL4},
}

var typeBTable = [4][3]SIL{
	BandBelow60: {SILNone, SIL1, SIL2},
	Band60to90:  {SIL1, SIL2, SIL3},
	Band90to99:  {SIL2, SIL3, SIL4},
	Band99up:    {SIL3, SIL4, SIL4},
}

// MaxSIL returns the maximum claimable SIL for a component with the
// given SFF and hardware fault tolerance. typeB selects the Type B table
// (complex components whose failure modes are not fully defined — SoCs
// are Type B; the paper's SIL3 @ SFF ≥ 99 %, HFT 0 requirement is the
// Type B row). HFT above 2 clamps to 2.
func MaxSIL(sff float64, hft int, typeB bool) SIL {
	if hft < 0 {
		hft = 0
	}
	if hft > 2 {
		hft = 2
	}
	if typeB {
		return typeBTable[BandOf(sff)][hft]
	}
	return typeATable[BandOf(sff)][hft]
}

// RequiredSFF returns the minimum SFF band needed to claim the target
// SIL at the given HFT for a Type B component, and whether the target is
// achievable at all at that HFT.
func RequiredSFF(target SIL, hft int) (SFFBand, bool) {
	if hft < 0 {
		hft = 0
	}
	if hft > 2 {
		hft = 2
	}
	for b := BandBelow60; b <= Band99up; b++ {
		if typeBTable[b][hft] >= target {
			return b, true
		}
	}
	return Band99up, false
}

// PFH is the probability of a dangerous failure per hour — the target
// failure measure for safety functions operating in high-demand or
// continuous mode (IEC 61508-1 Table 3). For an element assessed by
// FMEA, the undetected dangerous rate λDU (in FIT = failures per 10^9 h)
// converts directly: PFH = λDU × 1e-9 / h.
func PFH(lambdaDUFIT float64) float64 {
	return lambdaDUFIT * 1e-9
}

// PFHBand returns the norm's continuous-mode PFH band [low, high) for a
// SIL: SIL1 [1e-6,1e-5), SIL2 [1e-7,1e-6), SIL3 [1e-8,1e-7),
// SIL4 [1e-9,1e-8).
func PFHBand(s SIL) (low, high float64, ok bool) {
	switch s {
	case SIL1:
		return 1e-6, 1e-5, true
	case SIL2:
		return 1e-7, 1e-6, true
	case SIL3:
		return 1e-8, 1e-7, true
	case SIL4:
		return 1e-9, 1e-8, true
	}
	return 0, 0, false
}

// SILFromPFH grades a PFH value: the highest SIL whose band upper edge
// exceeds it (SILNone when even SIL1's bound is exceeded).
func SILFromPFH(pfh float64) SIL {
	switch {
	case pfh < 1e-8:
		return SIL4
	case pfh < 1e-7:
		return SIL3
	case pfh < 1e-6:
		return SIL2
	case pfh < 1e-5:
		return SIL1
	}
	return SILNone
}

// PFDavg is the average probability of failure on demand for a
// low-demand safety function that is proof-tested every tiHours: the
// standard single-channel approximation λDU·Ti/2 with λDU in FIT.
func PFDavg(lambdaDUFIT, tiHours float64) float64 {
	return lambdaDUFIT * 1e-9 * tiHours / 2
}

// SILFromPFD grades a PFDavg per IEC 61508-1 Table 2 (low-demand mode):
// SIL1 [1e-2,1e-1), SIL2 [1e-3,1e-2), SIL3 [1e-4,1e-3), SIL4 [1e-5,1e-4).
func SILFromPFD(pfd float64) SIL {
	switch {
	case pfd < 1e-4:
		return SIL4
	case pfd < 1e-3:
		return SIL3
	case pfd < 1e-2:
		return SIL2
	case pfd < 1e-1:
		return SIL1
	}
	return SILNone
}

// MinSFFValue returns the numeric lower edge of a band.
func (b SFFBand) MinSFFValue() float64 {
	switch b {
	case BandBelow60:
		return 0
	case Band60to90:
		return 0.60
	case Band90to99:
		return 0.90
	default:
		return 0.99
	}
}
