package iec61508

import "testing"

func TestBandOf(t *testing.T) {
	cases := []struct {
		sff  float64
		want SFFBand
	}{
		{0.0, BandBelow60}, {0.599, BandBelow60},
		{0.60, Band60to90}, {0.8999, Band60to90},
		{0.90, Band90to99}, {0.95, Band90to99}, {0.9899, Band90to99},
		{0.99, Band99up}, {0.9938, Band99up}, {1.0, Band99up},
	}
	for _, c := range cases {
		if got := BandOf(c.sff); got != c.want {
			t.Errorf("BandOf(%v) = %v, want %v", c.sff, got, c.want)
		}
	}
}

func TestMaxSILTypeB(t *testing.T) {
	// The paper's Section 2 statements:
	// HFT 0 requires SFF >= 99% for SIL3.
	if got := MaxSIL(0.99, 0, true); got != SIL3 {
		t.Errorf("SFF 99%% HFT0 = %v, want SIL3", got)
	}
	if got := MaxSIL(0.9938, 0, true); got != SIL3 {
		t.Errorf("SFF 99.38%% HFT0 = %v, want SIL3", got)
	}
	// v1's 95% only reaches SIL2 at HFT0.
	if got := MaxSIL(0.95, 0, true); got != SIL2 {
		t.Errorf("SFF 95%% HFT0 = %v, want SIL2", got)
	}
	// HFT 1 requires SFF > 90% for SIL3.
	if got := MaxSIL(0.92, 1, true); got != SIL3 {
		t.Errorf("SFF 92%% HFT1 = %v, want SIL3", got)
	}
	if got := MaxSIL(0.55, 0, true); got != SILNone {
		t.Errorf("SFF 55%% HFT0 = %v, want none", got)
	}
	if got := MaxSIL(0.995, 2, true); got != SIL4 {
		t.Errorf("SFF 99.5%% HFT2 = %v, want SIL4", got)
	}
}

func TestMaxSILTypeA(t *testing.T) {
	if got := MaxSIL(0.5, 0, false); got != SIL1 {
		t.Errorf("type A SFF 50%% HFT0 = %v, want SIL1", got)
	}
	if got := MaxSIL(0.95, 0, false); got != SIL3 {
		t.Errorf("type A SFF 95%% HFT0 = %v, want SIL3", got)
	}
	if got := MaxSIL(0.95, 1, false); got != SIL4 {
		t.Errorf("type A SFF 95%% HFT1 = %v, want SIL4", got)
	}
}

func TestMaxSILClampsHFT(t *testing.T) {
	if MaxSIL(0.7, -1, true) != MaxSIL(0.7, 0, true) {
		t.Error("negative HFT not clamped")
	}
	if MaxSIL(0.7, 5, true) != MaxSIL(0.7, 2, true) {
		t.Error("large HFT not clamped")
	}
}

func TestMonotonicity(t *testing.T) {
	// SIL must be monotone in both SFF band and HFT for both tables.
	sffs := []float64{0.3, 0.7, 0.95, 0.995}
	for _, typeB := range []bool{true, false} {
		for i := 1; i < len(sffs); i++ {
			for hft := 0; hft <= 2; hft++ {
				if MaxSIL(sffs[i], hft, typeB) < MaxSIL(sffs[i-1], hft, typeB) {
					t.Errorf("SIL not monotone in SFF (typeB=%v hft=%d)", typeB, hft)
				}
			}
		}
		for _, sff := range sffs {
			for hft := 1; hft <= 2; hft++ {
				if MaxSIL(sff, hft, typeB) < MaxSIL(sff, hft-1, typeB) {
					t.Errorf("SIL not monotone in HFT (typeB=%v sff=%v)", typeB, sff)
				}
			}
		}
	}
}

func TestRequiredSFF(t *testing.T) {
	band, ok := RequiredSFF(SIL3, 0)
	if !ok || band != Band99up {
		t.Errorf("SIL3 @ HFT0 needs %v ok=%v, want >=99%%", band, ok)
	}
	band, ok = RequiredSFF(SIL3, 1)
	if !ok || band != Band90to99 {
		t.Errorf("SIL3 @ HFT1 needs %v ok=%v, want 90-99%%", band, ok)
	}
	if _, ok := RequiredSFF(SIL4, 0); ok {
		t.Error("SIL4 @ HFT0 should be unachievable for type B")
	}
	if band.MinSFFValue() != 0.90 {
		t.Errorf("MinSFFValue(90-99) = %v", band.MinSFFValue())
	}
}

func TestSILStrings(t *testing.T) {
	if SIL3.String() != "SIL3" || SILNone.String() != "none" {
		t.Error("SIL strings wrong")
	}
	if BandBelow60.String() == "" || Band99up.String() == "" {
		t.Error("band strings empty")
	}
}

func TestFailureModeCatalogs(t *testing.T) {
	vm := CatalogFor(VariableMemory)
	if len(vm) != 5 {
		t.Errorf("variable-memory catalog size = %d, want 5", len(vm))
	}
	hasSoft := false
	for _, f := range vm {
		if f == FMSoftError {
			hasSoft = true
		}
	}
	if !hasSoft {
		t.Error("variable-memory catalog misses soft errors")
	}
	pu := CatalogFor(ProcessingUnit)
	if len(pu) == 0 {
		t.Error("processing-unit catalog empty")
	}
	if len(CatalogFor(DigitalLogic)) == 0 || len(CatalogFor(Interconnect)) == 0 {
		t.Error("logic/interconnect catalogs empty")
	}
}

func TestFailureModeProperties(t *testing.T) {
	if !FMSoftError.Transient() || !FMTransient.Transient() || !FMTimingFault.Transient() {
		t.Error("transient modes misreported")
	}
	if FMStuckAtData.Transient() || FMBridging.Transient() {
		t.Error("permanent modes misreported")
	}
	if FMStuckAtData.String() != "stuck-at data" {
		t.Errorf("FMStuckAtData = %q", FMStuckAtData.String())
	}
	if FailureMode(200).String() != "unknown failure mode" {
		t.Error("unknown mode string")
	}
	if VariableMemory.String() != "variable memory" || ProcessingUnit.String() != "processing unit" {
		t.Error("component class strings")
	}
}

func TestDCLevels(t *testing.T) {
	if DCLow.Value() != 0.60 || DCMedium.Value() != 0.90 || DCHigh.Value() != 0.99 {
		t.Error("DC level values wrong")
	}
	if DCLow.String() != "low" || DCHigh.String() != "high" {
		t.Error("DC level strings wrong")
	}
}

func TestTechniqueDCClaims(t *testing.T) {
	// The paper: "RAM monitoring with Hamming code or ECCs or double RAMs
	// with hardware/software comparison are the ones with the highest
	// value".
	if MaxDC(TechECCHamming) != 0.99 {
		t.Errorf("ECC Hamming max DC = %v, want 0.99", MaxDC(TechECCHamming))
	}
	if MaxDC(TechDoubleRAM) != 0.99 {
		t.Errorf("double RAM max DC = %v", MaxDC(TechDoubleRAM))
	}
	if MaxDC(TechParityBit) >= MaxDC(TechECCHamming) {
		t.Error("parity must claim less than ECC")
	}
	if MaxDC(TechNone) != 0 {
		t.Error("TechNone must claim 0")
	}
	if lvl, ok := DCLevelOf(TechSWStartupTest); !ok || lvl != DCMedium {
		t.Errorf("SW startup test level = %v ok=%v", lvl, ok)
	}
	if _, ok := DCLevelOf(TechNone); ok {
		t.Error("TechNone should not grade")
	}
}

func TestClampClaim(t *testing.T) {
	if got := ClampClaim(TechParityBit, 0.95); got != 0.60 {
		t.Errorf("ClampClaim(parity, 0.95) = %v, want 0.60", got)
	}
	if got := ClampClaim(TechECCHamming, 0.95); got != 0.95 {
		t.Errorf("ClampClaim(ECC, 0.95) = %v, want 0.95", got)
	}
	if got := ClampClaim(TechECCHamming, -0.5); got != 0 {
		t.Errorf("ClampClaim negative = %v", got)
	}
}

func TestTechniquesDeterministic(t *testing.T) {
	a := Techniques()
	b := Techniques()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatal("Techniques inconsistent")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Techniques order nondeterministic")
		}
	}
}

func TestPFHConversion(t *testing.T) {
	if got := PFH(100); got < 0.999e-7 || got > 1.001e-7 {
		t.Errorf("PFH(100 FIT) = %v, want ~1e-7", got)
	}
	if got := PFH(0); got != 0 {
		t.Errorf("PFH(0) = %v", got)
	}
}

func TestPFHBands(t *testing.T) {
	for s, want := range map[SIL][2]float64{
		SIL1: {1e-6, 1e-5}, SIL2: {1e-7, 1e-6}, SIL3: {1e-8, 1e-7}, SIL4: {1e-9, 1e-8},
	} {
		lo, hi, ok := PFHBand(s)
		if !ok || lo != want[0] || hi != want[1] {
			t.Errorf("PFHBand(%v) = %v,%v,%v", s, lo, hi, ok)
		}
	}
	if _, _, ok := PFHBand(SILNone); ok {
		t.Error("PFHBand(SILNone) should fail")
	}
}

func TestSILFromPFH(t *testing.T) {
	cases := map[float64]SIL{
		5e-10: SIL4, 5e-9: SIL4, 5e-8: SIL3, 5e-7: SIL2, 5e-6: SIL1, 5e-5: SILNone,
	}
	for pfh, want := range cases {
		if got := SILFromPFH(pfh); got != want {
			t.Errorf("SILFromPFH(%v) = %v, want %v", pfh, got, want)
		}
	}
	// Consistency: a PFH at a band's low edge grades at least that SIL.
	for _, s := range []SIL{SIL1, SIL2, SIL3, SIL4} {
		lo, _, _ := PFHBand(s)
		if got := SILFromPFH(lo); got < s {
			t.Errorf("low edge of %v grades %v", s, got)
		}
	}
}

func TestPFDavgAndGrading(t *testing.T) {
	// 100 FIT undetected, yearly proof test: 1e-7/h * 8760h / 2 ≈ 4.4e-4.
	pfd := PFDavg(100, 8760)
	if pfd < 4e-4 || pfd > 5e-4 {
		t.Errorf("PFDavg(100 FIT, 1y) = %v", pfd)
	}
	if got := SILFromPFD(pfd); got != SIL3 {
		t.Errorf("grade = %v, want SIL3", got)
	}
	cases := map[float64]SIL{
		5e-5: SIL4, 5e-4: SIL3, 5e-3: SIL2, 5e-2: SIL1, 5e-1: SILNone,
	}
	for pfd, want := range cases {
		if got := SILFromPFD(pfd); got != want {
			t.Errorf("SILFromPFD(%v) = %v, want %v", pfd, got, want)
		}
	}
}
