package memsys

import (
	"math/bits"
	"testing"
	"testing/quick"

	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func mustCodec(t testing.TB, dw, aw int, v Variant) *Codec {
	t.Helper()
	c, err := NewCodec(dw, aw, v)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCodecConstruction(t *testing.T) {
	c := mustCodec(t, 16, 0, HsiaoA)
	if c.CheckWidth != 6 {
		t.Errorf("check width for 16 bits = %d, want 6", c.CheckWidth)
	}
	c24 := mustCodec(t, 16, 8, HsiaoA)
	if c24.CheckWidth != 6 {
		t.Errorf("check width for 24 bits = %d, want 6", c24.CheckWidth)
	}
	if c24.WordWidth() != 22 {
		t.Errorf("word width = %d, want 22", c24.WordWidth())
	}
	if _, err := NewCodec(0, 0, HsiaoA); err == nil {
		t.Error("zero data width accepted")
	}
	if _, err := NewCodec(60, 10, HsiaoA); err == nil {
		t.Error("oversized code accepted")
	}
}

func TestColumnsDistinctOddWeight(t *testing.T) {
	for _, v := range []Variant{HsiaoA, HsiaoB} {
		c := mustCodec(t, 16, 8, v)
		seen := map[uint32]bool{}
		for i, col := range c.Columns() {
			if col == 0 {
				t.Fatalf("%v col %d zero", v, i)
			}
			w := bits.OnesCount32(col)
			if w < 3 || w%2 == 0 {
				t.Errorf("%v col %d weight %d, want odd >=3", v, i, w)
			}
			if seen[col] {
				t.Errorf("%v duplicate column %#x", v, col)
			}
			seen[col] = true
			// Must also differ from identity (check-bit) columns.
			if w == 1 {
				t.Errorf("%v col %d collides with a check column", v, i)
			}
		}
	}
	a := mustCodec(t, 16, 8, HsiaoA)
	b := mustCodec(t, 16, 8, HsiaoB)
	same := true
	for i := range a.Columns() {
		if a.Columns()[i] != b.Columns()[i] {
			same = false
		}
	}
	if same {
		t.Error("variants A and B produced identical columns")
	}
	if HsiaoA.String() == HsiaoB.String() {
		t.Error("variant strings equal")
	}
}

func TestEncodeDecodeClean(t *testing.T) {
	c := mustCodec(t, 16, 8, HsiaoA)
	f := func(data uint16, addr uint8) bool {
		ch := c.Encode(uint64(data), uint64(addr))
		res := c.Decode(uint64(data), uint64(addr), ch)
		return !res.Single && !res.Double && res.Data == uint64(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSingleBitCorrection(t *testing.T) {
	for _, v := range []Variant{HsiaoA, HsiaoB} {
		c := mustCodec(t, 16, 8, v)
		data, addr := uint64(0xBEEF), uint64(0x5A)
		ch := c.Encode(data, addr)
		// Flip each data bit: must correct.
		for i := 0; i < 16; i++ {
			res := c.Decode(data^1<<uint(i), addr, ch)
			if !res.Single || res.Double || res.Data != data || res.FlippedAt != i {
				t.Errorf("%v: data bit %d not corrected: %+v", v, i, res)
			}
		}
		// Flip each check bit: single, flagged as check error.
		for i := 0; i < c.CheckWidth; i++ {
			res := c.Decode(data, addr, ch^1<<uint(i))
			if !res.Single || !res.CheckErr || res.Data != data {
				t.Errorf("%v: check bit %d: %+v", v, i, res)
			}
		}
	}
}

func TestDoubleBitDetection(t *testing.T) {
	c := mustCodec(t, 16, 8, HsiaoA)
	data, addr := uint64(0x1234), uint64(0x0F)
	ch := c.Encode(data, addr)
	rng := xrand.New(7)
	for n := 0; n < 200; n++ {
		i := rng.Intn(22)
		j := rng.Intn(22)
		if i == j {
			continue
		}
		d, cb := data, ch
		for _, b := range []int{i, j} {
			if b < 16 {
				d ^= 1 << uint(b)
			} else {
				cb ^= 1 << uint(b-16)
			}
		}
		res := c.Decode(d, addr, cb)
		if !res.Double || res.Single {
			t.Fatalf("double error (%d,%d) not detected: %+v", i, j, res)
		}
	}
}

func TestAddressErrorDetection(t *testing.T) {
	c := mustCodec(t, 16, 8, HsiaoA)
	data, addr := uint64(0xCAFE), uint64(0x21)
	ch := c.Encode(data, addr)
	// Reading from a different address: syndrome covers the addr bits.
	for bit := 0; bit < 8; bit++ {
		wrong := addr ^ 1<<uint(bit)
		res := c.Decode(data, wrong, ch)
		if !res.Single || !res.AddrErr {
			t.Errorf("single addr-bit error bit %d: %+v", bit, res)
		}
		if res.Data != data {
			t.Errorf("addr error corrupted data: %#x", res.Data)
		}
	}
	// Without folding, the codec cannot see address errors.
	plain := mustCodec(t, 16, 0, HsiaoA)
	chP := plain.Encode(data, 0)
	res := plain.Decode(data, 0, chP)
	if res.Single || res.Double {
		t.Error("plain codec flagged clean word")
	}
}

func TestTripleOddErrorFlaggedUncorrectable(t *testing.T) {
	// An odd syndrome matching no column must not silently miscorrect.
	c := mustCodec(t, 16, 8, HsiaoA)
	data, addr := uint64(0xFFFF), uint64(0)
	ch := c.Encode(data, addr)
	found := false
	for a := 0; a < 16 && !found; a++ {
		for b := a + 1; b < 16 && !found; b++ {
			for d := b + 1; d < 16 && !found; d++ {
				bad := data ^ 1<<uint(a) ^ 1<<uint(b) ^ 1<<uint(d)
				res := c.Decode(bad, addr, ch)
				if res.Single && res.FlippedAt >= 0 && res.Data == bad^1<<uint(res.FlippedAt) {
					// Miscorrection to a wrong word is possible for 3-bit
					// errors in any SEC-DED code; only verify we never
					// claim to have restored the original.
					if res.Data == data {
						t.Fatalf("3-bit error claimed corrected to original")
					}
				}
				if res.Double {
					found = true // at least some triples flagged
				}
			}
		}
	}
	if !found {
		t.Error("no triple error was ever flagged; suspicious")
	}
}

// Gate-level encoder and decoder must agree with the behavioral codec.
func TestGateLevelMatchesBehavioral(t *testing.T) {
	for _, cfg := range []struct {
		aw int
		v  Variant
	}{{0, HsiaoA}, {8, HsiaoA}, {8, HsiaoB}} {
		c := mustCodec(t, 16, cfg.aw, cfg.v)
		m := rtl.NewModule("ecc")
		data := m.Input("data", 16)
		var addr rtl.Bus
		if cfg.aw > 0 {
			addr = m.Input("addr", cfg.aw)
		}
		check := m.Input("check", c.CheckWidth)
		enc := c.BuildEncoder(m, data, addr)
		m.Output("enc", enc)
		dec := c.BuildDecoder(m, data, addr, check, true, false)
		m.Output("dec_data", dec.Data)
		m.Output("single", rtl.Bus{dec.Single})
		m.Output("double", rtl.Bus{dec.Double})
		m.Output("in_addr", rtl.Bus{dec.InAddr})
		n := m.MustFinish()
		s, err := sim.New(n)
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(123)
		for iter := 0; iter < 150; iter++ {
			d := rng.Bits(16)
			a := rng.Bits(cfg.aw)
			goldenCheck := c.Encode(d, a)
			// Corrupt up to 2 bits of the stored word.
			storedD, storedC := d, goldenCheck
			nflips := rng.Intn(3)
			for f := 0; f < nflips; f++ {
				b := rng.Intn(16 + c.CheckWidth)
				if b < 16 {
					storedD ^= 1 << uint(b)
				} else {
					storedC ^= 1 << uint(b-16)
				}
			}
			s.SetInput("data", storedD)
			if cfg.aw > 0 {
				s.SetInput("addr", a)
			}
			s.SetInput("check", storedC)
			s.Eval()
			encV, _ := s.ReadOutput("enc")
			if encV != c.Encode(storedD, a) {
				t.Fatalf("gate encoder mismatch: %#x vs %#x", encV, c.Encode(storedD, a))
			}
			ref := c.Decode(storedD, a, storedC)
			gd, _ := s.ReadOutput("dec_data")
			gs, _ := s.ReadOutput("single")
			gdd, _ := s.ReadOutput("double")
			if gs != b2u(ref.Single) || gdd != b2u(ref.Double) {
				t.Fatalf("gate decoder flags mismatch: single %d/%v double %d/%v (flips=%d)",
					gs, ref.Single, gdd, ref.Double, nflips)
			}
			// Data comparison only meaningful when correctable in data.
			if ref.Single && !ref.CheckErr && !ref.AddrErr && gd != ref.Data {
				t.Fatalf("gate correction mismatch: %#x vs %#x", gd, ref.Data)
			}
		}
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
