package memsys

import (
	"repro/internal/netlist"
	"repro/internal/rtl"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// BuildCodecBench elaborates a standalone, purely combinational
// encoder+decoder netlist for gate-level fault simulation (the
// Section 5c experiment): the stored word arrives at primary inputs,
// the corrected data is the functional output, and the error flags are
// diagnostic outputs. No peripherals, so the bit-parallel fault
// simulator can host it.
func BuildCodecBench(cfg Config) (*netlist.Netlist, error) {
	codecAddr := 0
	if cfg.AddrInCode {
		codecAddr = cfg.AddrWidth
	}
	codec, err := NewCodec(cfg.DataWidth, codecAddr, cfg.Variant)
	if err != nil {
		return nil, err
	}
	m := rtl.NewModule(cfg.Name + "-codec")
	data := m.Input("data", cfg.DataWidth)
	var addr rtl.Bus
	if codecAddr > 0 {
		addr = m.Input("addr", codecAddr)
	}
	check := m.Input("check", codec.CheckWidth)

	m.InBlock("CODER", func() {
		m.Output("enc", codec.BuildEncoder(m, data, addr))
	})
	var dec DecoderOut
	m.InBlock("DECODER", func() {
		dec = codec.BuildDecoder(m, data, addr, check, cfg.DistributedSyndrome, cfg.Bypass)
	})
	m.Output("dout", dec.Data)
	m.Output("alarm_single", rtl.Bus{dec.Single})
	m.Output("alarm_double", rtl.Bus{dec.Double})
	if cfg.DistributedSyndrome {
		m.Output("alarm_in_addr", rtl.Bus{dec.InAddr})
		m.Output("alarm_in_check", rtl.Bus{dec.InCheck})
	}
	return m.Finish()
}

// CodecVectors generates a directed stimulus for the codec testbench:
// valid codewords interleaved with single- and double-bit corruptions
// rotating through every bit position — the vector set a fault
// simulation of an ECC datapath needs (pure random words almost never
// form near-codewords, leaving the correction matchers unexercised).
func CodecVectors(cfg Config, count int, seed uint64) (*workload.Trace, error) {
	codecAddr := 0
	if cfg.AddrInCode {
		codecAddr = cfg.AddrWidth
	}
	codec, err := NewCodec(cfg.DataWidth, codecAddr, cfg.Variant)
	if err != nil {
		return nil, err
	}
	rng := xrand.New(seed)
	ports := []string{"data", "check"}
	if codecAddr > 0 {
		ports = []string{"data", "addr", "check"}
	}
	tr := workload.NewTrace(ports...)
	total := cfg.DataWidth + codec.CheckWidth
	add := func(data, addr, check uint64) {
		m := map[string]uint64{"data": data, "check": check}
		if codecAddr > 0 {
			m["addr"] = addr
		}
		tr.Add(m)
	}
	for i := 0; i < count; i++ {
		data := rng.Bits(cfg.DataWidth)
		addr := rng.Bits(codecAddr)
		check := codec.Encode(data, addr)
		switch i % 3 {
		case 0: // clean codeword
			add(data, addr, check)
		case 1: // single-bit corruption, rotating position
			bit := (i / 3) % total
			d, c := flipStored(data, check, bit, cfg.DataWidth)
			add(d, addr, c)
		default: // double-bit corruption
			b1 := rng.Intn(total)
			b2 := (b1 + 1 + rng.Intn(total-1)) % total
			d, c := flipStored(data, check, b1, cfg.DataWidth)
			d, c = flipStored(d, c, b2, cfg.DataWidth)
			add(d, addr, c)
		}
	}
	return tr, nil
}

func flipStored(data, check uint64, bit, dataWidth int) (uint64, uint64) {
	if bit < dataWidth {
		return data ^ 1<<uint(bit), check
	}
	return data, check ^ 1<<uint(bit-dataWidth)
}
