package memsys

import (
	"repro/internal/netlist"
	"repro/internal/rtl"
)

// BuildEncoder emits the gate-level encoder: one XOR tree per check bit
// over the protected bits selected by its H-matrix row. data (and addr,
// when the code folds addresses) are existing buses; the returned bus
// carries the check bits. Each call emits fresh gates, so instantiating
// it twice yields a true duplicated coder.
func (c *Codec) BuildEncoder(m *rtl.Module, data, addr rtl.Bus) rtl.Bus {
	if len(data) != c.DataWidth {
		panic("memsys: encoder data width mismatch")
	}
	if c.AddrWidth > 0 && len(addr) < c.AddrWidth {
		panic("memsys: encoder addr width mismatch")
	}
	check := make(rtl.Bus, c.CheckWidth)
	for bit := 0; bit < c.CheckWidth; bit++ {
		var taps rtl.Bus
		for i := 0; i < c.DataWidth; i++ {
			if c.cols[i]>>uint(bit)&1 == 1 {
				taps = append(taps, data[i])
			}
		}
		for i := 0; i < c.AddrWidth; i++ {
			if c.cols[c.DataWidth+i]>>uint(bit)&1 == 1 {
				taps = append(taps, addr[i])
			}
		}
		check[bit] = m.ReduceXor(taps)
	}
	return check
}

// SyndromeBus emits the syndrome computation: recomputed check bits over
// the read data (and expected address) XORed with the stored check bits.
func (c *Codec) SyndromeBus(m *rtl.Module, data, addr, check rtl.Bus) rtl.Bus {
	re := c.BuildEncoder(m, data, addr)
	return m.Xor(re, check)
}

// DecoderOut groups the nets produced by the gate-level decoder.
type DecoderOut struct {
	Data   rtl.Bus       // corrected data
	Single netlist.NetID // single (correctable) error
	Double netlist.NetID // uncorrectable error
	// Distributed syndrome discrimination (distributed syndrome checking
	// measure): which field the single error sits in.
	InData  netlist.NetID
	InCheck netlist.NetID
	InAddr  netlist.NetID
	Syn     rtl.Bus
}

// BuildDecoder emits the gate-level SEC-DED decoder: syndrome trees,
// column-match correction, odd/even classification and — when
// distributed is true — the per-field syndrome discrimination of the
// paper's measure (iii). bypass selects the measure-(ii) behavior of
// muxing the raw data through when the syndrome is zero.
func (c *Codec) BuildDecoder(m *rtl.Module, data, addr, check rtl.Bus, distributed, bypass bool) DecoderOut {
	syn := c.SyndromeBus(m, data, addr, check)
	nonzero := m.ReduceOr(syn)
	odd := m.ReduceXor(syn)
	single := m.AndBit(nonzero, odd)
	even := m.NotBit(odd)
	double := m.AndBit(nonzero, even)

	out := DecoderOut{Syn: syn, Single: single, Double: double}
	// Column matches for data bits drive the correcting XORs.
	matches := make(rtl.Bus, c.DataWidth)
	corrected := make(rtl.Bus, c.DataWidth)
	for i := 0; i < c.DataWidth; i++ {
		matches[i] = matchColumn(m, syn, c.cols[i])
		corrected[i] = m.XorBit(data[i], matches[i])
	}
	if bypass {
		// "in case of no errors directly connect the decoder output with
		// the memory data"
		out.Data = m.Mux(nonzero, data, corrected)
	} else {
		out.Data = corrected
	}
	if distributed {
		out.InData = m.ReduceOr(matches)
		var checkMatches rtl.Bus
		for bit := 0; bit < c.CheckWidth; bit++ {
			checkMatches = append(checkMatches, matchColumn(m, syn, 1<<uint(bit)))
		}
		out.InCheck = m.ReduceOr(checkMatches)
		if c.AddrWidth > 0 {
			var addrMatches rtl.Bus
			for i := 0; i < c.AddrWidth; i++ {
				addrMatches = append(addrMatches, matchColumn(m, syn, c.cols[c.DataWidth+i]))
			}
			out.InAddr = m.ReduceOr(addrMatches)
		} else {
			out.InAddr = m.Low()
		}
	} else {
		out.InData = m.Low()
		out.InCheck = m.Low()
		out.InAddr = m.Low()
	}
	return out
}

// matchColumn emits syn == col as an AND over (possibly inverted)
// syndrome bits.
func matchColumn(m *rtl.Module, syn rtl.Bus, col uint32) netlist.NetID {
	terms := make(rtl.Bus, len(syn))
	for b := range syn {
		if col>>uint(b)&1 == 1 {
			terms[b] = syn[b]
		} else {
			terms[b] = m.NotBit(syn[b])
		}
	}
	return m.ReduceAnd(terms)
}
