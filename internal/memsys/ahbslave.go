package memsys

import (
	"repro/internal/ahb"
	"repro/internal/workload"
)

// AHBSlave exposes a running memory sub-system as an AHB-lite slave:
// bus transfers become cycle-accurate port operations on the gate-level
// DUT, HPROT.Privileged drives the MPU attribute, and MPU violations or
// unacknowledged reads terminate with ERROR — the paper's "MCE uses
// signals from the bus to discriminate these attributes and permissions
// and in case of faults, proper alarms are generated".
type AHBSlave struct {
	Sess *Session
}

// NewAHBSlave builds a design instance and boots it (BIST) behind the
// bus interface.
func NewAHBSlave(d *Design) (*AHBSlave, error) {
	sess, err := NewSession(d)
	if err != nil {
		return nil, err
	}
	return &AHBSlave{Sess: sess}, nil
}

// Access implements ahb.Slave with word addressing (HADDR>>2).
func (s *AHBSlave) Access(t ahb.Transfer) ahb.Result {
	wordAddr := t.Addr >> 2
	words := uint64(1) << uint(s.Sess.D.Cfg.AddrWidth)
	if wordAddr >= words {
		return ahb.Result{Resp: ahb.RespERROR}
	}
	op := workload.MemOp{Addr: wordAddr}
	if t.Write {
		op.Kind = workload.OpWrite
		op.Data = t.Data
	} else {
		op.Kind = workload.OpRead
	}
	res := s.Sess.DoPriv(op, t.Prot.Privileged)
	if res.Alarms["alarm_mpu"] {
		return ahb.Result{Resp: ahb.RespERROR}
	}
	if !t.Write {
		if !res.Acked {
			return ahb.Result{Resp: ahb.RespERROR}
		}
		out := ahb.Result{Resp: ahb.RespOKAY, Data: res.Data, Waits: OpGap}
		if res.Alarms["alarm_uncorr"] {
			// An uncorrectable word must not reach the application.
			out.Resp = ahb.RespERROR
		}
		return out
	}
	return ahb.Result{Resp: ahb.RespOKAY, Waits: 1}
}
