package memsys

import (
	"testing"

	"repro/internal/fit"
	"repro/internal/inject"
)

// runCampaign executes a reduced injection campaign and returns the
// aggregate measured detected-dangerous fraction over all zones.
func runCampaign(t *testing.T, cfg Config) (*inject.Report, float64, *Design) {
	t.Helper()
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	target := d.InjectionTarget(a)
	tr := d.ValidationWorkload(4, 11)
	g, err := target.RunGolden(tr)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := inject.DefaultPlanConfig()
	pcfg.TransientPerZone = 1
	pcfg.PermanentPerZone = 1
	plan := inject.BuildPlan(a, g, pcfg)
	rep, err := target.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	det, dang := 0, 0
	for _, zm := range rep.ZoneMeasures(a) {
		det += zm.DangerDet
		dang += zm.DangerDet + zm.DangerUndet
	}
	ddf := 1.0
	if dang > 0 {
		ddf = float64(det) / float64(dang)
	}
	return rep, ddf, d
}

// TestCampaignV2BeatsV1 is the unit-scale E6: the measured detected-
// dangerous fraction of the v2 implementation exceeds v1's.
func TestCampaignV2BeatsV1(t *testing.T) {
	if testing.Short() {
		t.Skip("injection campaign is slow")
	}
	_, ddf1, _ := runCampaign(t, smallV1())
	rep2, ddf2, d2 := runCampaign(t, smallV2())
	if ddf2 <= ddf1 {
		t.Errorf("measured DDF: v2 %.3f <= v1 %.3f", ddf2, ddf1)
	}
	t.Logf("measured DDF: v1 %.3f, v2 %.3f", ddf1, ddf2)

	// Campaign coverage: every zone perturbed, observation and
	// diagnostic items exercised (Fig. 4 completeness).
	cov := rep2.Coverage
	if cov.SensFrac() < 0.85 {
		t.Errorf("SENS coverage = %.3f", cov.SensFrac())
	}
	if cov.ObseFrac() < 1 {
		t.Errorf("OBSE coverage = %.3f", cov.ObseFrac())
	}
	if cov.DiagFrac() < 0.8 {
		t.Errorf("DIAG coverage = %.3f", cov.DiagFrac())
	}
	_ = d2
}

// TestToggleCoverageOfValidationWorkload is the unit-scale E7: the
// shipped workload exercises ≥95 % of the nets even at reduced size.
func TestToggleCoverageOfValidationWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("toggle measurement is slow")
	}
	cfg := smallV2()
	cfg.AddrWidth = 6 // room for the per-bit seeded defects
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	target := d.InjectionTargetSeeded(a, d.SeedFaults())
	tr := d.CoverageWorkload(3)
	rep, err := target.ToggleCoverage(tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage() < 0.95 {
		var names []string
		for i, id := range rep.Untoggled {
			if i >= 25 {
				break
			}
			names = append(names, d.N.NetName(id))
		}
		t.Errorf("toggle coverage = %.4f; untoggled sample: %v", rep.Coverage(), names)
	}
}

// TestWorksheetValidationAgainstInjection cross-checks worksheet S/DDF
// estimates with measured values for the best-instrumented zones.
func TestWorksheetValidationAgainstInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("injection campaign is slow")
	}
	cfg := smallV2()
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	target := d.InjectionTarget(a)
	tr := d.ValidationWorkload(4, 17)
	g, err := target.RunGolden(tr)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := inject.DefaultPlanConfig()
	pcfg.TransientPerZone = 2
	pcfg.PermanentPerZone = 1
	plan := inject.BuildPlan(a, g, pcfg)
	rep, err := target.Run(g, plan)
	if err != nil {
		t.Fatal(err)
	}
	w := d.Worksheet(a, fit.Default())
	rows := rep.ValidateWorksheet(a, w, 0.5)
	if len(rows) == 0 {
		t.Fatal("no validation rows")
	}
	if frac := inject.PassFraction(rows); frac < 0.5 {
		for _, r := range rows {
			if !r.Within {
				t.Logf("zone %-28s estS=%.2f measS=%.2f estDDF=%.2f measDDF=%.2f", r.Name, r.EstS, r.MeasS, r.EstDDF, r.MeasDDF)
			}
		}
		t.Errorf("only %.0f%% of zones validated within tolerance", 100*frac)
	}
}
