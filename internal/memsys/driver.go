package memsys

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// OpGap is the idle spacing the driver leaves between operations so the
// write buffer drains and the two-stage read pipeline returns before the
// next access (the paper's circuit trades this latency for timing
// closure).
const OpGap = 3

// AccessResult is the observed outcome of one operation.
type AccessResult struct {
	Op     workload.MemOp
	Data   uint64 // read data (reads only)
	Acked  bool
	Alarms map[string]bool // alarm ports that fired during the op window
}

// Session drives a built design cycle-accurately.
type Session struct {
	D   *Design
	Sim *sim.Simulator
	Arr *Array

	alarmPorts []string
	// AlarmCounts accumulates alarm assertions per port across the
	// session (one count per cycle asserted).
	AlarmCounts map[string]int
}

// NewSession builds a simulator around the design and runs it until the
// BIST releases the bus (ready=1).
func NewSession(d *Design) (*Session, error) {
	s, arr, err := d.NewSimulator()
	if err != nil {
		return nil, err
	}
	sess := &Session{D: d, Sim: s, Arr: arr, alarmPorts: d.AlarmPorts(), AlarmCounts: map[string]int{}}
	sess.idleInputs()
	s.Eval()
	// Let the BIST run (bounded wait).
	for i := 0; i < 64; i++ {
		if v, _ := s.ReadOutput("ready"); v == 1 {
			break
		}
		sess.step()
	}
	return sess, nil
}

func (s *Session) idleInputs() {
	s.Sim.SetInput("req", 0)
	s.Sim.SetInput("we", 0)
	s.Sim.SetInput("addr", 0)
	s.Sim.SetInput("wdata", 0)
	s.Sim.SetInput("priv", 1)
	if s.D.Cfg.MPU {
		s.Sim.SetInput("mpu_cfg", 0)
		s.Sim.SetInput("cfg_we", 0)
	}
}

// step advances one cycle, accumulating alarm counts.
func (s *Session) step() {
	s.Sim.Step()
	for _, p := range s.alarmPorts {
		if v, _ := s.Sim.ReadOutput(p); v == 1 {
			s.AlarmCounts[p]++
		}
	}
}

// Idle runs n idle cycles (letting the scrubber work).
func (s *Session) Idle(n int) {
	s.idleInputs()
	s.Sim.Eval()
	for i := 0; i < n; i++ {
		s.step()
	}
}

// Do performs one memory operation with privileged attribute and returns
// the observed result. Reads report the decoded data returned when ack
// rose within the operation window.
func (s *Session) Do(op workload.MemOp) AccessResult {
	return s.DoPriv(op, true)
}

// DoPriv performs one operation with an explicit privilege attribute.
func (s *Session) DoPriv(op workload.MemOp, privileged bool) AccessResult {
	res := AccessResult{Op: op, Alarms: map[string]bool{}}
	priv := uint64(0)
	if privileged {
		priv = 1
	}
	switch op.Kind {
	case workload.OpIdle:
		s.idleInputs()
	default:
		s.Sim.SetInput("req", 1)
		s.Sim.SetInput("addr", op.Addr)
		s.Sim.SetInput("priv", priv)
		if op.Kind == workload.OpWrite {
			s.Sim.SetInput("we", 1)
			s.Sim.SetInput("wdata", op.Data)
		} else {
			s.Sim.SetInput("we", 0)
			s.Sim.SetInput("wdata", 0)
		}
	}
	s.Sim.Eval()
	for c := 0; c <= OpGap; c++ {
		s.step()
		if c == 0 {
			s.idleInputs()
			s.Sim.Eval()
		}
		for _, p := range s.alarmPorts {
			if v, _ := s.Sim.ReadOutput(p); v == 1 {
				res.Alarms[p] = true
			}
		}
		if ack, _ := s.Sim.ReadOutput("ack"); ack == 1 && !res.Acked {
			res.Acked = true
			res.Data, _ = s.Sim.ReadOutput("rdata")
		}
	}
	return res
}

// Run performs a whole operation sequence and returns per-op results.
func (s *Session) Run(ops []workload.MemOp) []AccessResult {
	out := make([]AccessResult, len(ops))
	for i, op := range ops {
		out[i] = s.Do(op)
	}
	return out
}

// RefModel is the behavioral golden model of the sub-system's functional
// contract: writes store, reads return the last written word (zero for
// never-written addresses).
type RefModel struct {
	mem  map[uint64]uint64
	mask uint64
}

// NewRefModel creates a reference for the given data width.
func NewRefModel(dataWidth int) *RefModel {
	return &RefModel{mem: map[uint64]uint64{}, mask: 1<<uint(dataWidth) - 1}
}

// Apply processes one op and returns the expected read data (reads).
func (r *RefModel) Apply(op workload.MemOp) (data uint64, isRead bool) {
	switch op.Kind {
	case workload.OpWrite:
		r.mem[op.Addr] = op.Data & r.mask
		return 0, false
	case workload.OpRead:
		return r.mem[op.Addr], true
	}
	return 0, false
}
