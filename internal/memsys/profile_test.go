package memsys

import (
	"testing"

	"repro/internal/fit"
	"repro/internal/iec61508"
	"repro/internal/zones"
)

func analyzeFull(t testing.TB, cfg Config) (*Design, *zones.Analysis) {
	t.Helper()
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return d, a
}

func TestAnalyzeIncludesArrayZone(t *testing.T) {
	d, a := analyzeFull(t, V2Config())
	z, ok := a.ZoneByName(ArrayZoneName)
	if !ok {
		t.Fatal("memory_array zone missing")
	}
	if z.Kind != zones.Peripheral {
		t.Errorf("array zone kind = %v", z.Kind)
	}
	if len(z.Outputs) != d.WordWidth() {
		t.Errorf("array zone outputs = %d, want %d", len(z.Outputs), d.WordWidth())
	}
	// The array's cone covers the memory-port driving logic.
	if a.Cones[z.ID].GateCount() == 0 {
		t.Error("array zone has no cone (port-driving logic missing)")
	}
	// Zone population in the same order of magnitude as the paper's 170.
	if len(a.Zones) < 40 {
		t.Errorf("only %d zones extracted", len(a.Zones))
	}
}

// TestPaperHeadlineNumbers is the E2/E3 reproduction at unit-test level:
// v1 fails SIL3 with SFF ≈ 95 %, v2 reaches it with SFF ≈ 99.4 %.
func TestPaperHeadlineNumbers(t *testing.T) {
	rates := fit.Default()
	d1, a1 := analyzeFull(t, V1Config())
	w1 := d1.Worksheet(a1, rates)
	sff1 := w1.Totals().SFF()
	if sff1 < 0.93 || sff1 >= 0.98 {
		t.Errorf("v1 SFF = %.4f, want ≈0.95 (paper: around 95%%)", sff1)
	}
	if w1.SIL(0) >= iec61508.SIL3 {
		t.Errorf("v1 must not reach SIL3, got %v", w1.SIL(0))
	}

	d2, a2 := analyzeFull(t, V2Config())
	w2 := d2.Worksheet(a2, rates)
	sff2 := w2.Totals().SFF()
	if sff2 < 0.99 {
		t.Errorf("v2 SFF = %.4f, want ≥0.99 (paper: 99.38%%)", sff2)
	}
	if w2.SIL(0) != iec61508.SIL3 {
		t.Errorf("v2 SIL = %v, want SIL3", w2.SIL(0))
	}
	// With HFT 1, v2 would grade SIL4 per the norm table.
	if w2.SIL(1) != iec61508.SIL4 {
		t.Errorf("v2 SIL @ HFT1 = %v, want SIL4", w2.SIL(1))
	}
}

// TestRankingMatchesPaperCriticalBlocks checks the E4 shape: the paper's
// v1 critical list is "besides the memory array itself … BIST control
// logic, registers involved in address latching, most of the decoder
// blocks, the registers of the write buffer, some of the MCE blocks".
func TestRankingMatchesPaperCriticalBlocks(t *testing.T) {
	d, a := analyzeFull(t, V1Config())
	w := d.Worksheet(a, fit.Default())
	rank := w.Ranking()
	if rank[0].ZoneName != ArrayZoneName {
		t.Errorf("top critical zone = %q, want memory_array", rank[0].ZoneName)
	}
	topN := map[string]bool{}
	for i, zr := range rank {
		if i >= 15 {
			break
		}
		topN[zr.ZoneName] = true
	}
	families := map[string]bool{}
	for name := range topN {
		switch {
		case contains(name, "WBUF"):
			families["wbuf"] = true
		case contains(name, "DECODER") || name == "out:rdata":
			families["decoder"] = true
		case contains(name, "BIST"):
			families["bist"] = true
		}
	}
	for _, fam := range []string{"wbuf", "decoder", "bist"} {
		if !families[fam] {
			t.Errorf("family %q missing from v1 top-15 criticality ranking", fam)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestAblationMonotonic verifies E12's shape: enabling each design
// measure on top of V1 never lowers SFF, and the combination reaches V2.
func TestAblationMonotonic(t *testing.T) {
	rates := fit.Default()
	sffFor := func(cfg Config) float64 {
		d, a := analyzeFull(t, cfg)
		return d.Worksheet(a, rates).Totals().SFF()
	}
	base := sffFor(V1Config())
	measures := []struct {
		name  string
		apply func(*Config)
	}{
		{"addr-in-code", func(c *Config) { c.AddrInCode = true }},
		{"wbuf-parity", func(c *Config) { c.WBufParity = true }},
		{"coder-check", func(c *Config) { c.CoderCheck = true }},
		{"redundant-checker", func(c *Config) { c.RedundantChecker = true; c.Bypass = true }},
		{"distributed-syndrome", func(c *Config) { c.AddrInCode = true; c.DistributedSyndrome = true }},
	}
	for _, msr := range measures {
		cfg := V1Config()
		cfg.Name = "memsub-v1+" + msr.name
		msr.apply(&cfg)
		sff := sffFor(cfg)
		if sff < base-1e-9 {
			t.Errorf("measure %s lowered SFF: %.4f < %.4f", msr.name, sff, base)
		}
	}
	if v2 := sffFor(V2Config()); v2 <= base {
		t.Errorf("v2 SFF %.4f not above v1 %.4f", v2, base)
	}
}

// TestSensitivityStability reproduces E5's shape: the v2 result is
// "very stable" under assumption spans, much more than v1.
func TestSensitivityStability(t *testing.T) {
	rates := fit.Default()
	d1, a1 := analyzeFull(t, V1Config())
	d2, a2 := analyzeFull(t, V2Config())
	s1 := d1.Worksheet(a1, rates).SpanAssumptions(2)
	s2 := d2.Worksheet(a2, rates).SpanAssumptions(2)
	if s2.Spread() >= s1.Spread() {
		t.Errorf("v2 spread %.4f not below v1 spread %.4f", s2.Spread(), s1.Spread())
	}
	// v2 stays SIL3-capable across the whole span.
	if s2.MinSFF < 0.99 {
		t.Errorf("v2 min SFF under span = %.4f, drops out of SIL3 band", s2.MinSFF)
	}
}

func TestWorksheetCoversEveryRateZone(t *testing.T) {
	d, a := analyzeFull(t, V2Config())
	w := d.Worksheet(a, fit.Default())
	// Every register zone and the array must have rows with positive λ.
	hasRows := map[int]bool{}
	for _, r := range w.Rows {
		if r.Lambda.Total() > 0 {
			hasRows[r.Zone] = true
		}
	}
	for zi := range a.Zones {
		z := &a.Zones[zi]
		if z.Kind == zones.Register || z.Name == ArrayZoneName {
			if !hasRows[zi] {
				t.Errorf("zone %q has no rate rows", z.Name)
			}
		}
	}
}

func TestValidationWorkloadTriggersZones(t *testing.T) {
	cfg := smallV2()
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	target := d.InjectionTarget(a)
	tr := d.ValidationWorkload(8, 1)
	g, err := target.RunGolden(tr)
	if err != nil {
		t.Fatal(err)
	}
	ok, inactive := g.CompletenessOK()
	if !ok {
		var names []string
		for _, zi := range inactive {
			names = append(names, a.Zones[zi].Name)
		}
		t.Errorf("validation workload left zones untriggered: %v", names)
	}
}
