package memsys

import (
	"bytes"
	"testing"

	"repro/internal/netlist"
	"repro/internal/zones"
)

// TestCodecBenchVerilogRoundTrip writes the codec testbench to Verilog,
// parses it back, and checks that zone extraction still finds the same
// population — the interchange path a third-party netlist would take.
func TestCodecBenchVerilogRoundTrip(t *testing.T) {
	cfg := V2Config()
	n, err := BuildCodecBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := netlist.ParseVerilog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Gates) != len(n.Gates) {
		t.Errorf("gates %d != %d", len(p.Gates), len(n.Gates))
	}
	a1, err := zones.Extract(n, zones.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := zones.Extract(p, zones.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Zones) != len(a2.Zones) {
		t.Errorf("zones %d != %d after round trip", len(a2.Zones), len(a1.Zones))
	}
	if len(a1.Obs) != len(a2.Obs) {
		t.Errorf("obs %d != %d", len(a2.Obs), len(a1.Obs))
	}
}
