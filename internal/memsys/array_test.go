package memsys

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// arrayHarness builds a bare netlist exposing the array ports directly.
func arrayHarness(t *testing.T, aw, ww int) (*sim.Simulator, *Array) {
	t.Helper()
	n := netlist.New("arr")
	addr := n.AddInput("addr", aw)
	wdata := n.AddInput("wdata", ww)
	we := n.AddInput("we", 1)
	re := n.AddInput("re", 1)
	rdata := n.AddExternal("rdata", ww)
	n.AddOutput("rdata", rdata)
	s, err := sim.New(n)
	if err != nil {
		t.Fatal(err)
	}
	arr := NewArray(aw, ww, addr, wdata, we[0], re[0], rdata)
	s.AttachPeripheral(arr)
	return s, arr
}

func (a *Array) testWrite(s *sim.Simulator, addr, data uint64) {
	s.SetInput("addr", addr)
	s.SetInput("wdata", data)
	s.SetInput("we", 1)
	s.SetInput("re", 0)
	s.Eval()
	s.Step()
}

func (a *Array) testRead(s *sim.Simulator, addr uint64) uint64 {
	s.SetInput("addr", addr)
	s.SetInput("we", 0)
	s.SetInput("re", 1)
	s.Eval()
	s.Step()
	v, _ := s.ReadOutput("rdata")
	return v
}

func TestArrayReadWrite(t *testing.T) {
	s, arr := arrayHarness(t, 4, 8)
	arr.testWrite(s, 3, 0xAB)
	arr.testWrite(s, 7, 0xCD)
	if got := arr.testRead(s, 3); got != 0xAB {
		t.Errorf("read(3) = %#x", got)
	}
	if got := arr.testRead(s, 7); got != 0xCD {
		t.Errorf("read(7) = %#x", got)
	}
	if arr.Peek(3) != 0xAB {
		t.Error("Peek mismatch")
	}
	arr.Poke(5, 0x77)
	if got := arr.testRead(s, 5); got != 0x77 {
		t.Errorf("Poke/read = %#x", got)
	}
	r, w := arr.Stats()
	if r != 3 || w != 2 {
		t.Errorf("stats = %d reads %d writes", r, w)
	}
	if arr.Words() != 16 || arr.Bits() != 128 {
		t.Errorf("capacity: %d words %d bits", arr.Words(), arr.Bits())
	}
}

func TestArraySoftError(t *testing.T) {
	s, arr := arrayHarness(t, 4, 8)
	arr.testWrite(s, 2, 0x0F)
	if err := arr.Inject(ArrayFault{Kind: SoftError, A: 2, Bit: 4}); err != nil {
		t.Fatal(err)
	}
	if got := arr.testRead(s, 2); got != 0x1F {
		t.Errorf("after SEU read = %#x, want 0x1f", got)
	}
	if err := arr.Inject(ArrayFault{Kind: SoftError, A: 2, Bit: 99}); err == nil {
		t.Error("out-of-range SEU accepted")
	}
}

func TestArrayCellStuckAt(t *testing.T) {
	s, arr := arrayHarness(t, 4, 8)
	arr.Inject(ArrayFault{Kind: CellSA, A: 1, Bit: 0, Val: 0})
	arr.testWrite(s, 1, 0xFF)
	if got := arr.testRead(s, 1); got != 0xFE {
		t.Errorf("stuck-at-0 cell read = %#x, want 0xfe", got)
	}
	arr.Inject(ArrayFault{Kind: CellSA, A: 1, Bit: 7, Val: 1})
	arr.testWrite(s, 1, 0x00)
	if got := arr.testRead(s, 1); got != 0x80 {
		t.Errorf("stuck-at-1 cell read = %#x, want 0x80", got)
	}
	arr.ClearFaults()
	arr.testWrite(s, 1, 0x00)
	if got := arr.testRead(s, 1); got != 0 {
		t.Errorf("after clear read = %#x", got)
	}
}

func TestArrayWrongAddressing(t *testing.T) {
	s, arr := arrayHarness(t, 4, 8)
	arr.testWrite(s, 4, 0x44)
	arr.testWrite(s, 9, 0x99)
	arr.Inject(ArrayFault{Kind: WrongAddressing, A: 4, B: 9})
	if got := arr.testRead(s, 4); got != 0x99 {
		t.Errorf("redirected read = %#x, want 0x99", got)
	}
	// Write redirection too.
	arr.testWrite(s, 4, 0x11)
	if arr.Peek(9) != 0x11 {
		t.Errorf("redirected write went to %#x/%#x", arr.Peek(4), arr.Peek(9))
	}
	if arr.Peek(4) != 0x44 {
		t.Error("original word modified despite redirect")
	}
	// "No addressing": partner out of range drops the access.
	arr.ClearFaults()
	arr.Inject(ArrayFault{Kind: WrongAddressing, A: 4, B: 1 << 20})
	if got := arr.testRead(s, 4); got != 0 {
		t.Errorf("dropped read returned %#x, want 0", got)
	}
}

func TestArrayMultipleAddressing(t *testing.T) {
	s, arr := arrayHarness(t, 4, 8)
	arr.Inject(ArrayFault{Kind: MultipleAddressing, A: 2, B: 6})
	arr.testWrite(s, 2, 0x5A)
	if arr.Peek(2) != 0x5A || arr.Peek(6) != 0x5A {
		t.Errorf("multiple addressing: %#x/%#x", arr.Peek(2), arr.Peek(6))
	}
}

func TestArrayCoupling(t *testing.T) {
	s, arr := arrayHarness(t, 4, 8)
	arr.testWrite(s, 8, 0x00)
	arr.Inject(ArrayFault{Kind: Coupling, A: 3, B: 8, Bit: 2})
	arr.testWrite(s, 3, 0xFF)
	if arr.Peek(8) != 0x04 {
		t.Errorf("coupling victim = %#x, want 0x04", arr.Peek(8))
	}
	arr.testWrite(s, 3, 0x00) // second aggressor write flips back
	if arr.Peek(8) != 0x00 {
		t.Errorf("coupling victim after 2nd write = %#x", arr.Peek(8))
	}
}

func TestArrayAddrLineStuck(t *testing.T) {
	s, arr := arrayHarness(t, 4, 8)
	arr.testWrite(s, 0b0101, 0x55)
	arr.testWrite(s, 0b0001, 0x11)
	arr.Inject(ArrayFault{Kind: AddrLineSA, A: 2, Val: 0}) // line 2 stuck 0
	if got := arr.testRead(s, 0b0101); got != 0x11 {
		t.Errorf("addr-line-stuck read = %#x, want 0x11 (aliased)", got)
	}
	if err := arr.Inject(ArrayFault{Kind: AddrLineSA, A: 9}); err == nil {
		t.Error("out-of-range address line accepted")
	}
}

func TestArraySnapshotRestore(t *testing.T) {
	s, arr := arrayHarness(t, 4, 8)
	arr.testWrite(s, 1, 0xAA)
	snap := arr.SnapshotWords()
	arr.testWrite(s, 1, 0xBB)
	arr.RestoreWords(snap)
	if arr.Peek(1) != 0xAA {
		t.Error("restore failed")
	}
}

func TestArrayFaultKindStrings(t *testing.T) {
	for k, want := range map[ArrayFaultKind]string{
		CellSA: "cell stuck-at", SoftError: "soft error",
		WrongAddressing: "wrong addressing", MultipleAddressing: "multiple addressing",
		Coupling: "cell coupling", AddrLineSA: "address line stuck-at",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
