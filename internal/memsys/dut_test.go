package memsys

import (
	"testing"

	"repro/internal/workload"
	"repro/internal/xrand"
)

// smallV1 and smallV2 shrink the address space so unit tests stay fast.
func smallV1() Config {
	cfg := V1Config()
	cfg.AddrWidth = 5
	cfg.PrivPages = 0x80 // page 7 = addrs 28..31
	return cfg
}

func smallV2() Config {
	cfg := V2Config()
	cfg.AddrWidth = 5
	cfg.PrivPages = 0x80
	return cfg
}

func newSession(t testing.TB, cfg Config) *Session {
	t.Helper()
	d, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(d)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestBuildValidates(t *testing.T) {
	for _, cfg := range []Config{smallV1(), smallV2()} {
		d, err := Build(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if err := d.N.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		stats := d.N.ComputeStats()
		if stats.Gates < 200 {
			t.Errorf("%s suspiciously small: %d gates", cfg.Name, stats.Gates)
		}
		t.Logf("%s: %v", cfg.Name, d.N)
	}
	if _, err := Build(Config{Name: "bad", DataWidth: 8, AddrWidth: 2}); err == nil {
		t.Error("AddrWidth 2 accepted")
	}
}

func TestV2LargerThanV1(t *testing.T) {
	d1, _ := Build(smallV1())
	d2, _ := Build(smallV2())
	if d2.N.ComputeStats().Gates <= d1.N.ComputeStats().Gates {
		t.Errorf("v2 (%d gates) not larger than v1 (%d gates)",
			d2.N.ComputeStats().Gates, d1.N.ComputeStats().Gates)
	}
	if len(d2.AlarmPorts()) <= len(d1.AlarmPorts()) {
		t.Error("v2 must expose more alarms")
	}
}

func TestBISTCompletesClean(t *testing.T) {
	for _, cfg := range []Config{smallV1(), smallV2()} {
		sess := newSession(t, cfg)
		if v, _ := sess.Sim.ReadOutput("ready"); v != 1 {
			t.Fatalf("%s: BIST never finished", cfg.Name)
		}
		if v, _ := sess.Sim.ReadOutput("alarm_bist"); v != 0 {
			t.Errorf("%s: BIST failed on a healthy memory", cfg.Name)
		}
	}
}

func TestBISTCatchesStuckCell(t *testing.T) {
	d, err := Build(smallV2())
	if err != nil {
		t.Fatal(err)
	}
	s, arr, err := d.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	// Stuck cell at address 0 (the BIST target) before startup.
	arr.Inject(ArrayFault{Kind: CellSA, A: 0, Bit: 3, Val: 0})
	s.SetInput("req", 0)
	s.SetInput("we", 0)
	s.SetInput("addr", 0)
	s.SetInput("wdata", 0)
	s.SetInput("priv", 1)
	s.Eval()
	for i := 0; i < 40; i++ {
		s.Step()
	}
	if v, _ := s.ReadOutput("alarm_bist"); v != 1 {
		t.Error("BIST missed a stuck cell at its test address")
	}
}

func TestFunctionalAgainstReference(t *testing.T) {
	for _, cfg := range []Config{smallV1(), smallV2()} {
		sess := newSession(t, cfg)
		ref := NewRefModel(cfg.DataWidth)
		rng := xrand.New(2024)
		// Initialize first: with address folding, reading a never-written
		// word correctly flags an error (check bits don't match), so the
		// functional contract applies to written addresses.
		var ops []workload.MemOp
		for a := 0; a < 28; a++ {
			ops = append(ops, workload.MemOp{Kind: workload.OpWrite, Addr: uint64(a), Data: 0})
		}
		// Stay out of the privileged page (addresses 28..31).
		ops = append(ops, workload.RandomOps(rng, 120, 28, cfg.DataWidth, 0.5)...)
		for _, op := range ops {
			want, isRead := ref.Apply(op)
			got := sess.Do(op)
			if isRead {
				if !got.Acked {
					t.Fatalf("%s: read @%d not acked", cfg.Name, op.Addr)
				}
				if got.Data != want {
					t.Fatalf("%s: read @%d = %#x, want %#x", cfg.Name, op.Addr, got.Data, want)
				}
				for a := range got.Alarms {
					if a != "alarm_scrub" { // scrubbing may legitimately report repairs
						t.Fatalf("%s: unexpected alarm %s on clean read", cfg.Name, a)
					}
				}
			}
		}
	}
}

func TestSingleErrorCorrectedWithAlarm(t *testing.T) {
	for _, cfg := range []Config{smallV1(), smallV2()} {
		sess := newSession(t, cfg)
		sess.Do(workload.MemOp{Kind: workload.OpWrite, Addr: 5, Data: 0xBEEF})
		sess.Arr.Inject(ArrayFault{Kind: SoftError, A: 5, Bit: 7})
		res := sess.Do(workload.MemOp{Kind: workload.OpRead, Addr: 5})
		if res.Data != 0xBEEF {
			t.Errorf("%s: corrected read = %#x, want 0xbeef", cfg.Name, res.Data)
		}
		if !res.Alarms["alarm_corr"] {
			t.Errorf("%s: single error raised no alarm_corr (alarms %v)", cfg.Name, res.Alarms)
		}
		if res.Alarms["alarm_uncorr"] {
			t.Errorf("%s: single error flagged uncorrectable", cfg.Name)
		}
	}
}

func TestDoubleErrorDetected(t *testing.T) {
	for _, cfg := range []Config{smallV1(), smallV2()} {
		sess := newSession(t, cfg)
		sess.Do(workload.MemOp{Kind: workload.OpWrite, Addr: 9, Data: 0x1234})
		sess.Arr.Inject(ArrayFault{Kind: SoftError, A: 9, Bit: 0})
		sess.Arr.Inject(ArrayFault{Kind: SoftError, A: 9, Bit: 9})
		res := sess.Do(workload.MemOp{Kind: workload.OpRead, Addr: 9})
		if !res.Alarms["alarm_uncorr"] {
			t.Errorf("%s: double error not flagged (alarms %v)", cfg.Name, res.Alarms)
		}
	}
}

func TestMPUBlocksUnprivileged(t *testing.T) {
	sess := newSession(t, smallV2())
	// Privileged write to page 7 succeeds.
	sess.DoPriv(workload.MemOp{Kind: workload.OpWrite, Addr: 30, Data: 0x7777}, true)
	res := sess.DoPriv(workload.MemOp{Kind: workload.OpRead, Addr: 30}, true)
	if res.Data != 0x7777 {
		t.Fatalf("privileged access failed: %#x", res.Data)
	}
	// Unprivileged write must be blocked and alarmed.
	wr := sess.DoPriv(workload.MemOp{Kind: workload.OpWrite, Addr: 30, Data: 0xDEAD}, false)
	if !wr.Alarms["alarm_mpu"] {
		t.Error("MPU violation not alarmed")
	}
	res = sess.DoPriv(workload.MemOp{Kind: workload.OpRead, Addr: 30}, true)
	if res.Data != 0x7777 {
		t.Errorf("unprivileged write modified protected page: %#x", res.Data)
	}
	// Unprivileged access to an open page is fine.
	ok := sess.DoPriv(workload.MemOp{Kind: workload.OpWrite, Addr: 3, Data: 0x3333}, false)
	if ok.Alarms["alarm_mpu"] {
		t.Error("MPU alarmed an open-page access")
	}
}

func TestScrubberRepairsMemory(t *testing.T) {
	sess := newSession(t, smallV2())
	sess.Do(workload.MemOp{Kind: workload.OpWrite, Addr: 2, Data: 0xABCD})
	golden := sess.Arr.Peek(2)
	sess.Arr.Inject(ArrayFault{Kind: SoftError, A: 2, Bit: 3})
	if sess.Arr.Peek(2) == golden {
		t.Fatal("SEU had no effect")
	}
	// Scrub pointer must sweep all 32 words; each word takes 4 cycles.
	sess.Idle(4 * 40)
	if sess.Arr.Peek(2) != golden {
		t.Errorf("scrubber did not repair: %#x vs %#x", sess.Arr.Peek(2), golden)
	}
	if sess.AlarmCounts["alarm_scrub"] == 0 {
		t.Error("scrub repair raised no alarm")
	}
}

func TestAddressingFaultV2DetectedV1Silent(t *testing.T) {
	// Wrong addressing: reads of addr 6 return word 11. With address
	// folding (v2) the syndrome exposes it; v1 returns wrong data with
	// no alarm — exactly the gap the paper's measure closes.
	run := func(cfg Config) AccessResult {
		sess := newSession(t, cfg)
		sess.Do(workload.MemOp{Kind: workload.OpWrite, Addr: 6, Data: 0x0666})
		sess.Do(workload.MemOp{Kind: workload.OpWrite, Addr: 11, Data: 0x0BBB})
		sess.Arr.Inject(ArrayFault{Kind: WrongAddressing, A: 6, B: 11})
		return sess.Do(workload.MemOp{Kind: workload.OpRead, Addr: 6})
	}
	v2res := run(smallV2())
	if !v2res.Alarms["alarm_addr"] && !v2res.Alarms["alarm_uncorr"] && !v2res.Alarms["alarm_corr"] {
		t.Errorf("v2 missed addressing fault: alarms %v", v2res.Alarms)
	}
	v1res := run(smallV1())
	if len(v1res.Alarms) != 0 {
		// v1 cannot see it through the code; any alarm here means the
		// architecture differs from the paper's description.
		t.Errorf("v1 unexpectedly alarmed: %v", v1res.Alarms)
	}
	if v1res.Data != 0x0BBB {
		t.Errorf("v1 should silently return the aliased word, got %#x", v1res.Data)
	}
}

func TestSessionRunBatch(t *testing.T) {
	sess := newSession(t, smallV2())
	ops := []workload.MemOp{
		{Kind: workload.OpWrite, Addr: 1, Data: 0x11},
		{Kind: workload.OpIdle},
		{Kind: workload.OpRead, Addr: 1},
	}
	rs := sess.Run(ops)
	if len(rs) != 3 {
		t.Fatal("Run result count")
	}
	if !rs[2].Acked || rs[2].Data != 0x11 {
		t.Errorf("batch read = %+v", rs[2])
	}
}

func TestVariantBEquivalentFunction(t *testing.T) {
	cfg := smallV2()
	cfg.Variant = HsiaoB
	cfg.Name = "memsub-v2b"
	sess := newSession(t, cfg)
	ref := NewRefModel(cfg.DataWidth)
	var ops []workload.MemOp
	for a := 0; a < 28; a++ {
		ops = append(ops, workload.MemOp{Kind: workload.OpWrite, Addr: uint64(a), Data: 0})
	}
	ops = append(ops, workload.RandomOps(xrand.New(5), 60, 28, cfg.DataWidth, 0.5)...)
	for _, op := range ops {
		want, isRead := ref.Apply(op)
		got := sess.Do(op)
		if isRead && got.Data != want {
			t.Fatalf("variant B read @%d = %#x, want %#x", op.Addr, got.Data, want)
		}
	}
	// And it still corrects.
	sess.Do(workload.MemOp{Kind: workload.OpWrite, Addr: 4, Data: 0xF0F0})
	sess.Arr.Inject(ArrayFault{Kind: SoftError, A: 4, Bit: 12})
	res := sess.Do(workload.MemOp{Kind: workload.OpRead, Addr: 4})
	if res.Data != 0xF0F0 || !res.Alarms["alarm_corr"] {
		t.Errorf("variant B correction failed: %+v", res)
	}
}
