package memsys

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// ArrayFaultKind enumerates the IEC 61508 variable-memory fault models
// the paper's Section 2 lists for the array (modeled behaviorally, as in
// the referenced memory fault-model literature).
type ArrayFaultKind uint8

// Array fault models.
const (
	// CellSA forces one bit of one word to a constant (DC data fault).
	CellSA ArrayFaultKind = iota
	// SoftError flips one bit of one word once (change of information
	// caused by soft errors).
	SoftError
	// WrongAddressing redirects accesses of word A to word B (no/wrong
	// addressing: with B out of range the access is dropped).
	WrongAddressing
	// MultipleAddressing makes writes to word A also hit word B.
	MultipleAddressing
	// Coupling flips a bit of word B whenever word A is written
	// (dynamic cross-over between cells).
	Coupling
	// AddrLineSA forces one address line of the array port to a constant
	// (DC address fault).
	AddrLineSA
)

func (k ArrayFaultKind) String() string {
	switch k {
	case CellSA:
		return "cell stuck-at"
	case SoftError:
		return "soft error"
	case WrongAddressing:
		return "wrong addressing"
	case MultipleAddressing:
		return "multiple addressing"
	case Coupling:
		return "cell coupling"
	default:
		return "address line stuck-at"
	}
}

// ArrayFault is one armed array fault.
type ArrayFault struct {
	Kind ArrayFaultKind
	A    uint64 // primary word (or address line index for AddrLineSA)
	B    uint64 // partner word / stuck value
	Bit  int    // affected bit (CellSA, SoftError, Coupling)
	Val  uint64 // stuck value for CellSA (0/1) and AddrLineSA line value
}

// Array is the behavioral memory array peripheral: a synchronous
// single-port RAM of 2^addrWidth words × wordWidth bits with one-cycle
// read latency and the fault models above.
type Array struct {
	addrWidth int
	wordWidth int
	words     []uint64

	// port nets
	addr  []netlist.NetID
	wdata []netlist.NetID
	we    netlist.NetID
	re    netlist.NetID
	rdata []netlist.NetID

	faults []ArrayFault

	// sampled inputs
	sAddr  uint64
	sWData uint64
	sWE    bool
	sRE    bool

	// statistics
	reads, writes int64
}

// NewArray creates the array and wires it to the given nets.
func NewArray(addrWidth, wordWidth int, addr, wdata []netlist.NetID, we, re netlist.NetID, rdata []netlist.NetID) *Array {
	if len(addr) != addrWidth || len(wdata) != wordWidth || len(rdata) != wordWidth {
		panic("memsys: array port width mismatch")
	}
	return &Array{
		addrWidth: addrWidth,
		wordWidth: wordWidth,
		words:     make([]uint64, 1<<uint(addrWidth)),
		addr:      addr, wdata: wdata, we: we, re: re, rdata: rdata,
	}
}

// Words returns the number of words.
func (a *Array) Words() int { return len(a.words) }

// Bits returns the array capacity in bits.
func (a *Array) Bits() int { return len(a.words) * a.wordWidth }

// Peek reads a word directly (test/scoreboard access, no fault effects
// beyond what is already stored).
func (a *Array) Peek(addr uint64) uint64 { return a.words[addr&uint64(len(a.words)-1)] }

// Poke writes a word directly.
func (a *Array) Poke(addr, val uint64) {
	a.words[addr&uint64(len(a.words)-1)] = val & a.mask()
}

// Stats returns the number of read and write accesses performed.
func (a *Array) Stats() (reads, writes int64) { return a.reads, a.writes }

func (a *Array) mask() uint64 {
	if a.wordWidth >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(a.wordWidth) - 1
}

// Inject arms a fault. SoftError takes effect immediately (the upset
// happens now); persistent models stay armed until ClearFaults.
func (a *Array) Inject(f ArrayFault) error {
	switch f.Kind {
	case SoftError:
		if f.Bit < 0 || f.Bit >= a.wordWidth {
			return fmt.Errorf("memsys: soft error bit %d out of range", f.Bit)
		}
		a.words[f.A&uint64(len(a.words)-1)] ^= 1 << uint(f.Bit)
		return nil
	case CellSA, Coupling:
		if f.Bit < 0 || f.Bit >= a.wordWidth {
			return fmt.Errorf("memsys: fault bit %d out of range", f.Bit)
		}
	case AddrLineSA:
		if f.A >= uint64(a.addrWidth) {
			return fmt.Errorf("memsys: address line %d out of range", f.A)
		}
	}
	a.faults = append(a.faults, f)
	a.applyCellSA()
	return nil
}

// ClearFaults disarms all persistent faults (stored corruption remains).
func (a *Array) ClearFaults() { a.faults = nil }

// applyCellSA forces stuck cells to their stuck value in storage.
func (a *Array) applyCellSA() {
	for _, f := range a.faults {
		if f.Kind != CellSA {
			continue
		}
		w := f.A & uint64(len(a.words)-1)
		if f.Val&1 == 1 {
			a.words[w] |= 1 << uint(f.Bit)
		} else {
			a.words[w] &^= 1 << uint(f.Bit)
		}
	}
}

// effAddr applies addressing faults to a requested address; drop
// reports a "no addressing" outcome.
func (a *Array) effAddr(req uint64) (eff uint64, drop bool) {
	eff = req & uint64(len(a.words)-1)
	for _, f := range a.faults {
		switch f.Kind {
		case AddrLineSA:
			if f.Val&1 == 1 {
				eff |= 1 << uint(f.A)
			} else {
				eff &^= 1 << uint(f.A)
			}
		case WrongAddressing:
			if eff == f.A&uint64(len(a.words)-1) {
				if f.B >= uint64(len(a.words)) {
					return 0, true
				}
				eff = f.B
			}
		}
	}
	return eff, false
}

// Sample implements sim.Peripheral.
func (a *Array) Sample(get func(netlist.NetID) sim.Value) {
	a.sAddr = busValue(get, a.addr)
	a.sWData = busValue(get, a.wdata)
	a.sWE = get(a.we) == sim.V1
	a.sRE = get(a.re) == sim.V1
}

// Commit implements sim.Peripheral: performs the sampled access and
// drives the read port for the next cycle.
func (a *Array) Commit(set func(netlist.NetID, sim.Value)) {
	if a.sWE {
		a.writes++
		eff, drop := a.effAddr(a.sAddr)
		if !drop {
			a.words[eff] = a.sWData & a.mask()
			for _, f := range a.faults {
				switch f.Kind {
				case MultipleAddressing:
					if eff == f.A&uint64(len(a.words)-1) {
						a.words[f.B&uint64(len(a.words)-1)] = a.sWData & a.mask()
					}
				case Coupling:
					if eff == f.A&uint64(len(a.words)-1) {
						a.words[f.B&uint64(len(a.words)-1)] ^= 1 << uint(f.Bit)
					}
				}
			}
			a.applyCellSA()
		}
	}
	if a.sRE {
		a.reads++
		eff, drop := a.effAddr(a.sAddr)
		var v uint64
		if !drop {
			v = a.words[eff]
		}
		for i, id := range a.rdata {
			set(id, sim.FromBool(v>>uint(i)&1 == 1))
		}
	}
}

// SnapshotWords copies the storage contents (golden-state capture for
// injection campaigns).
func (a *Array) SnapshotWords() []uint64 {
	out := make([]uint64, len(a.words))
	copy(out, a.words)
	return out
}

// RestoreWords reinstates captured storage contents.
func (a *Array) RestoreWords(w []uint64) {
	copy(a.words, w)
}

// arrayState is the sim.Peripheral snapshot payload of an Array: the
// storage words, the sampled port registers and the access statistics.
// Armed faults are configuration, not state, and are not captured (a
// restored instance keeps its own armed fault models, matching the
// simulator's treatment of net/pin forces).
type arrayState struct {
	words         []uint64
	sAddr, sWData uint64
	sWE, sRE      bool
	reads, writes int64
}

// SnapshotState implements sim.Peripheral: it returns a self-contained
// copy of the array state, safe to share read-only across goroutines.
func (a *Array) SnapshotState() any {
	st := &arrayState{
		words: make([]uint64, len(a.words)),
		sAddr: a.sAddr, sWData: a.sWData, sWE: a.sWE, sRE: a.sRE,
		reads: a.reads, writes: a.writes,
	}
	copy(st.words, a.words)
	return st
}

// RestoreState implements sim.Peripheral: it copies a captured state
// back into the array (never aliasing the snapshot, which other
// restores may be reading concurrently).
func (a *Array) RestoreState(state any) {
	st, ok := state.(*arrayState)
	if !ok || len(st.words) != len(a.words) {
		panic("memsys: array restore from a snapshot of a different design")
	}
	copy(a.words, st.words)
	a.sAddr, a.sWData, a.sWE, a.sRE = st.sAddr, st.sWData, st.sWE, st.sRE
	a.reads, a.writes = st.reads, st.writes
}

func busValue(get func(netlist.NetID) sim.Value, nets []netlist.NetID) uint64 {
	var v uint64
	for i, id := range nets {
		if get(id) == sim.V1 {
			v |= 1 << uint(i)
		}
	}
	return v
}
