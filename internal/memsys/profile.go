package memsys

import (
	"strings"

	"repro/internal/fit"
	"repro/internal/fmea"
	"repro/internal/iec61508"
	"repro/internal/zones"
)

// ArrayZoneName is the manual sensible zone covering the memory array
// peripheral.
const ArrayZoneName = "memory_array"

// Analyze runs the zone-extraction tool over the design, registering
// the memory array as a peripheral sensible zone whose cone is the
// logic driving the array port.
func (d *Design) Analyze() (*zones.Analysis, error) {
	cfg := zones.DefaultConfig()
	cfg.SubBlockMinGates = 30
	cfg.SubBlockMaxOutputs = 8
	zone := zones.Zone{Name: ArrayZoneName, Block: "ARRAY"}
	zone.Outputs = append(zone.Outputs, d.memRData...)
	zone.Seeds = append(zone.Seeds, d.memAddr...)
	zone.Seeds = append(zone.Seeds, d.memWData...)
	zone.Seeds = append(zone.Seeds, d.memWE, d.memRE)
	cfg.ExtraZones = []zones.Zone{zone}
	return zones.Extract(d.N, cfg)
}

// Worksheet builds the case study's FMEA spreadsheet: generic rates per
// zone composition plus the per-block S, F, ζ and DDF assignments of
// Sections 3–4. The claimed coverages follow the implemented protection
// mechanisms (so V1 and V2 worksheets differ exactly by the five design
// measures) and are clamped to the norm's per-technique maxima.
func (d *Design) Worksheet(a *zones.Analysis, rates fit.Rates) *fmea.Worksheet {
	w := fmea.FromAnalysis(a, rates, func(z *zones.Zone, defaults []fmea.Spec) []fmea.Spec {
		if z.Kind == zones.Peripheral && z.Name == ArrayZoneName {
			return d.arraySpecs(rates)
		}
		cov := d.blockCoverage(z.Block)
		if z.Kind == zones.Output {
			// Output-port cones sit partly after the last checker (the
			// bypass mux and pin logic), so they claim at most the
			// syndrome-check level, not the full redundant-checker one.
			cov = d.outputCoverage()
		}
		if controlPathZone(z.Name) {
			// Validation finding folded back: the v2 checkers compare
			// data/syndrome fields, not handshake/pointer control state,
			// so control registers carry no coverage claim.
			cov.ddf = fmea.DDF{}
			cov.techHW = iec61508.TechNone
			cov.techSW = iec61508.TechNone
			cov.note += " (control path, uncovered)"
		}
		for i := range defaults {
			sp := &defaults[i]
			sp.S = cov.s
			sp.Freq = cov.freq
			if sp.Mode == iec61508.FMTransient {
				sp.Lifetime = cov.life
			}
			sp.DDF = cov.ddf
			sp.TechHW = cov.techHW
			sp.TechSW = cov.techSW
			sp.Note = cov.note
		}
		return defaults
	})
	return w
}

// controlPathZone reports whether a register zone holds handshake or
// pointer state outside the reach of the data-field checkers.
func controlPathZone(name string) bool {
	for _, suffix := range []string{
		"pipe_valid", "rd_pend", "wbuf_wr_ptr", "wbuf_rd_ptr", "wbuf_cnt",
	} {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	return false
}

// outputCoverage is the claim set for primary-output cones.
func (d *Design) outputCoverage() blockCov {
	cov := blockCov{s: 0.4, freq: fmea.F1, life: 0.8, note: "output pin cone"}
	if d.Cfg.DistributedSyndrome {
		cov.ddf = fmea.DDF{HWTransient: 0.85, HWPermanent: 0.85}
		cov.techHW = iec61508.TechSyndromeCheck
	}
	return cov
}

// blockCov is the per-block assumption set.
type blockCov struct {
	s      float64
	freq   fmea.FreqClass
	life   float64
	ddf    fmea.DDF
	techHW iec61508.Technique
	techSW iec61508.Technique
	note   string
}

// blockCoverage maps a hierarchical block to its assumptions under the
// current configuration. This is the heart of the v1-vs-v2 delta: the
// same architecture rows flip from uncovered to covered as each design
// measure is enabled.
func (d *Design) blockCoverage(block string) blockCov {
	cfg := d.Cfg
	cov := blockCov{s: 0.5, freq: fmea.F1, life: 0.6}
	switch {
	case strings.HasPrefix(block, "F_MEM/DECODER"):
		cov.note = "decoder datapath"
		cov.s = 0.4 // every read flows through; corruption mostly consumed
		cov.life = 0.8
		if cfg.RedundantChecker {
			cov.ddf = fmea.DDF{HWTransient: 0.99, HWPermanent: 0.99}
			cov.techHW = iec61508.TechRedundantChecker
		}
		if cfg.DistributedSyndrome {
			// Finer discrimination also converts borderline dangerous
			// failures into detected ones on the syndrome path.
			cov.ddf.SWTransient = 0.5
			cov.ddf.SWPermanent = 0.5
			cov.techSW = iec61508.TechSyndromeCheck
		}
	case strings.HasPrefix(block, "F_MEM/CODER"):
		cov.note = "coder datapath"
		cov.s = 0.4 // corrupt check bits poison every protected read
		cov.life = 0.8
		if cfg.CoderCheck {
			cov.ddf = fmea.DDF{HWTransient: 0.99, HWPermanent: 0.99}
			cov.techHW = iec61508.TechRedundantChecker
		}
	case strings.HasPrefix(block, "WBUF"):
		cov.note = "write buffer"
		cov.s = 0.4
		// A buffered word is live for roughly one cycle before draining
		// to the array, so the transient exposure window is short and
		// the buffer is only active on write traffic.
		cov.life = 0.4
		cov.freq = fmea.F2
		if cfg.WBufParity {
			cov.ddf = fmea.DDF{HWTransient: 0.60, HWPermanent: 0.60}
			cov.techHW = iec61508.TechParityBit
		}
	case strings.HasPrefix(block, "MCE"):
		cov.note = "bus interface / MPU"
		if cfg.DistributedSyndrome && cfg.AddrInCode {
			cov.ddf = fmea.DDF{HWTransient: 0.90, HWPermanent: 0.90}
			cov.techHW = iec61508.TechMPUAttributeCheck
		}
	case strings.HasPrefix(block, "MEMCTRL"):
		cov.note = "memory controller"
		if cfg.CoderCheck || cfg.RedundantChecker {
			// SW start-up tests for the controller parts not covered by
			// the protection IP (permanent faults only).
			cov.ddf = fmea.DDF{SWPermanent: 0.90}
			cov.techSW = iec61508.TechSWStartupTest
		}
	case strings.HasPrefix(block, "F_MEM/SCRUB"):
		cov.note = "scrubbing engine"
		cov.s = 0.7 // scrub failures mostly degrade forecasting, not data
		cov.freq = fmea.F2
		if cfg.CoderCheck {
			// Scrub write-back data re-enters through the checked coder
			// path in v2.
			cov.ddf = fmea.DDF{HWTransient: 0.90, HWPermanent: 0.90}
			cov.techHW = iec61508.TechSyndromeCheck
		}
	case strings.HasPrefix(block, "F_MEM/ERRCTRL"):
		cov.note = "alarm conditioning"
		cov.s = 0.4 // losing an alarm is dangerous latent
		if cfg.RedundantChecker {
			// In v2 the alarm tree is fed by independent redundant
			// checkers, so a stuck alarm register is exposed by the
			// discrepancy with its sibling sources (partial coverage:
			// only alarms with a redundant sibling benefit).
			cov.ddf = fmea.DDF{HWTransient: 0.85, HWPermanent: 0.85}
			cov.techHW = iec61508.TechRedundantChecker
		}
	case strings.HasPrefix(block, "BIST"):
		// A failed BIST sequencer silently skips the start-up screen:
		// latent dangerous, which is why the paper's v1 ranking flags
		// the BIST control logic.
		cov.note = "BIST control"
		cov.s = 0.4
		cov.freq = fmea.F2
		if cfg.RedundantChecker {
			cov.ddf = fmea.DDF{SWPermanent: 0.90, SWTransient: 0.60}
			cov.techSW = iec61508.TechSWStartupTest
		}
	default:
		cov.note = "misc logic"
	}
	return cov
}

// arraySpecs builds the variable-memory rows per the IEC failure-mode
// catalog (Section 2): DC data faults, addressing faults, cross-over,
// soft errors.
func (d *Design) arraySpecs(rates fit.Rates) []fmea.Spec {
	cfg := d.Cfg
	bits := (1 << uint(cfg.AddrWidth)) * d.Codec.WordWidth()
	arr := rates.MemoryArray(bits)
	// Address decoder, wordline and column drivers inside the array:
	// ~6 gate-equivalents per word for a wide-word SRAM macro.
	addrLogic := rates.LogicCone(6 << uint(cfg.AddrWidth))

	const (
		sMem  = 0.3 // unread/overwritten corruption is safe
		zeta  = 0.7
		freqM = fmea.F1
	)
	ecc := fmea.DDF{HWTransient: 0.99, HWPermanent: 0.99}
	var addrDDF fmea.DDF
	addrTech := iec61508.TechNone
	if cfg.AddrInCode {
		addrDDF = fmea.DDF{HWTransient: 0.99, HWPermanent: 0.99}
		addrTech = iec61508.TechAddressCoding
	}
	scrubBoost := iec61508.TechNone
	var crossDDF = fmea.DDF{HWTransient: 0.90, HWPermanent: 0.90}
	if cfg.Scrubber {
		// Scrubbing keeps single errors from accumulating into doubles,
		// raising the detected fraction of cross-over pairs.
		crossDDF = fmea.DDF{HWTransient: 0.99, HWPermanent: 0.99}
		scrubBoost = iec61508.TechECCHamming
	} else {
		scrubBoost = iec61508.TechECCHamming
	}
	softDDF := ecc
	softTechSW := iec61508.TechNone
	if cfg.Scrubber {
		// Scrubbing sweeps rarely-read locations, detecting (and
		// repairing) upsets the read path would only see much later.
		softDDF.SWTransient = 0.90
		softTechSW = iec61508.TechScrubbing
	}
	return []fmea.Spec{
		{
			Mode:   iec61508.FMSoftError,
			Lambda: fit.Contribution{Transient: arr.Transient},
			S:      sMem, Freq: freqM, Lifetime: zeta,
			DDF: softDDF, TechHW: iec61508.TechECCHamming, TechSW: softTechSW,
			Note: "array soft errors, SEC-DED + scrubbing",
		},
		{
			Mode:   iec61508.FMStuckAtData,
			Lambda: fit.Contribution{Permanent: arr.Permanent},
			S:      sMem, Freq: freqM, Lifetime: 1,
			DDF: ecc, TechHW: iec61508.TechECCHamming, TechSW: iec61508.TechSWStartupTest,
			Note: "array DC data faults",
		},
		{
			Mode:   iec61508.FMWrongAddressing,
			Lambda: fit.Contribution{Transient: addrLogic.Transient, Permanent: addrLogic.Permanent},
			S:      0.4, Freq: freqM, Lifetime: 1,
			DDF: addrDDF, TechHW: addrTech,
			Note: "no/wrong/multiple addressing",
		},
		{
			Mode:   iec61508.FMCrossOver,
			Lambda: fit.Contribution{Transient: arr.Transient * 0.05, Permanent: arr.Permanent * 0.05},
			S:      sMem, Freq: freqM, Lifetime: zeta,
			DDF: crossDDF, TechHW: scrubBoost,
			Note: "dynamic cross-over between cells",
		},
	}
}
