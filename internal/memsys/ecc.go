// Package memsys implements the paper's proof-of-concept case study
// (Section 6, Fig. 5): a fault-robust memory sub-system composed of the
// memory array and controller plus a memory-protection IP with two
// functional units — F-MEM (SEC-DED coder/decoder, scrubbing, alarm
// generation) and MCE (bus interface with distributed MPU and the DMA
// path used by the scrubber).
//
// Two gate-level implementations are provided: V1, the paper's first
// circuit (plain modified-Hamming SEC-DED with a write buffer and a
// decoder pipeline stage, SFF ≈ 95 %), and V2 with the five design
// measures of Section 6 (address folding into the code, write-buffer
// parity, a checker after the coder, a double-redundant checker after
// the pipeline stage, distributed syndrome checking) that reach
// SFF = 99.38 % in the paper.
package memsys

import (
	"fmt"
	"math/bits"
)

// Variant selects the SEC-DED column assignment — two different
// "syntheses" of the same function, used by the cross-check experiment.
type Variant uint8

// HsiaoA is the default odd-weight-column code; HsiaoB permutes the
// column assignment (a different but equivalent synthesis).
const (
	HsiaoA Variant = iota
	HsiaoB
)

func (v Variant) String() string {
	if v == HsiaoB {
		return "hsiao-b"
	}
	return "hsiao-a"
}

// Codec is a Hsiao-style single-error-correcting, double-error-detecting
// code over DataWidth data bits and, optionally, AddrWidth folded
// address bits. Check bits use identity columns (weight 1); protected
// bits use distinct odd-weight-≥3 columns, so every single-bit error
// yields an odd-weight syndrome and every double-bit error an even
// nonzero one.
type Codec struct {
	DataWidth  int
	AddrWidth  int // 0 when the address is not folded into the code
	CheckWidth int
	Variant    Variant

	// cols[i] is the check-bit mask of protected bit i: data bits first,
	// then address bits.
	cols []uint32
}

// NewCodec builds the code. addrWidth 0 disables address folding.
func NewCodec(dataWidth, addrWidth int, v Variant) (*Codec, error) {
	k := dataWidth + addrWidth
	if dataWidth <= 0 || k > 64 {
		return nil, fmt.Errorf("memsys: unsupported code size data=%d addr=%d", dataWidth, addrWidth)
	}
	c := 0
	for ; c <= 16; c++ {
		if oddColumnsAvailable(c) >= k {
			break
		}
	}
	if c > 16 {
		return nil, fmt.Errorf("memsys: no code found for %d bits", k)
	}
	cols := oddColumns(c, k, v)
	return &Codec{DataWidth: dataWidth, AddrWidth: addrWidth, CheckWidth: c, Variant: v, cols: cols}, nil
}

// oddColumnsAvailable counts distinct odd-weight-≥3 columns of c bits.
func oddColumnsAvailable(c int) int {
	n := 0
	for v := uint32(1); v < 1<<uint(c); v++ {
		if w := bits.OnesCount32(v); w >= 3 && w%2 == 1 {
			n++
		}
	}
	return n
}

// oddColumns picks k odd-weight columns. Variant A takes them in
// ascending numeric order (minimum weight first, the classic Hsiao
// layout); variant B in descending order — same code family, different
// wiring, i.e. a different synthesis of the same specification.
func oddColumns(c, k int, v Variant) []uint32 {
	var all []uint32
	// Weight-ordered: all weight-3 columns first, then weight-5, ...
	for w := 3; w <= c; w += 2 {
		for col := uint32(1); col < 1<<uint(c); col++ {
			if bits.OnesCount32(col) == w {
				all = append(all, col)
			}
		}
	}
	cols := make([]uint32, k)
	for i := 0; i < k; i++ {
		if v == HsiaoB {
			cols[i] = all[len(all)-1-i]
		} else {
			cols[i] = all[i]
		}
	}
	return cols
}

// Columns returns the check-bit mask of protected bit i (data bits
// first, then folded address bits).
func (c *Codec) Columns() []uint32 { return c.cols }

// Encode computes the check bits for a data word (and address when the
// code folds it).
func (c *Codec) Encode(data, addr uint64) uint64 {
	var check uint32
	for i := 0; i < c.DataWidth; i++ {
		if data>>uint(i)&1 == 1 {
			check ^= c.cols[i]
		}
	}
	for i := 0; i < c.AddrWidth; i++ {
		if addr>>uint(i)&1 == 1 {
			check ^= c.cols[c.DataWidth+i]
		}
	}
	return uint64(check)
}

// Syndrome recomputes the check bits over the read data and expected
// address and XORs them with the stored check bits: zero means no error.
func (c *Codec) Syndrome(data, addr, check uint64) uint64 {
	return c.Encode(data, addr) ^ check
}

// DecodeResult reports what the decoder concluded.
type DecodeResult struct {
	Data      uint64 // corrected data
	Single    bool   // single error detected (and corrected if in data)
	Double    bool   // uncorrectable double error detected
	CheckErr  bool   // the single error was in a check bit
	AddrErr   bool   // the syndrome matches a folded address column
	FlippedAt int    // corrected data bit index, -1 otherwise
}

// Decode analyzes a read word. addr is the expected (requested) address.
func (c *Codec) Decode(data, addr, check uint64) DecodeResult {
	syn := uint32(c.Syndrome(data, addr, check))
	res := DecodeResult{Data: data, FlippedAt: -1}
	if syn == 0 {
		return res
	}
	if bits.OnesCount32(syn)%2 == 0 {
		res.Double = true
		return res
	}
	res.Single = true
	// Identity column: error in a stored check bit.
	if bits.OnesCount32(syn) == 1 {
		res.CheckErr = true
		return res
	}
	for i := 0; i < c.DataWidth; i++ {
		if c.cols[i] == syn {
			res.Data = data ^ 1<<uint(i)
			res.FlippedAt = i
			return res
		}
	}
	for i := 0; i < c.AddrWidth; i++ {
		if c.cols[c.DataWidth+i] == syn {
			res.AddrErr = true
			return res
		}
	}
	// Odd syndrome matching no column: multi-bit odd error; flag as
	// uncorrectable rather than miscorrect.
	res.Single = false
	res.Double = true
	return res
}

// WordWidth is the stored word width: data + check bits.
func (c *Codec) WordWidth() int { return c.DataWidth + c.CheckWidth }
