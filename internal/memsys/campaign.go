package memsys

import (
	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
	"repro/internal/zones"
)

// warmupCycles lets the BIST sequence finish before the workload starts.
const warmupCycles = 24

// BuildTrace renders a memory-operation sequence into a full DUT-port
// trace: BIST warm-up idles first, then one operation every OpGap+1
// cycles, driving every primary input (including the MPU configuration
// pins, held inactive).
func (d *Design) BuildTrace(ops []workload.MemOp) *workload.Trace {
	ports := []string{"req", "we", "addr", "wdata", "priv"}
	if d.Cfg.MPU {
		ports = append(ports, "mpu_cfg", "cfg_we")
	}
	tr := workload.NewTrace(ports...)
	idle := map[string]uint64{"req": 0, "we": 0, "addr": 0, "wdata": 0, "priv": 1}
	if d.Cfg.MPU {
		idle["mpu_cfg"] = 0
		idle["cfg_we"] = 0
	}
	tr.Add(idle)
	tr.AddIdle(warmupCycles - 1)
	for _, op := range ops {
		m := map[string]uint64{"req": 1, "we": 0, "addr": op.Addr, "wdata": op.Data, "priv": 1}
		switch op.Kind {
		case workload.OpWrite:
			m["we"] = 1
		case workload.OpIdle:
			m["req"] = 0
		}
		tr.Add(m)
		tr.Add(map[string]uint64{"req": 0, "we": 0})
		tr.AddIdle(OpGap - 1)
	}
	tr.AddIdle(OpGap + 1)
	return tr
}

// ValidationWorkload is the Section 5 workload: a March X sweep over a
// slice of the address space followed by random traffic — enough to
// trigger every sensible zone (verified by the completeness check).
func (d *Design) ValidationWorkload(words int, seed uint64) *workload.Trace {
	if max := 1 << uint(d.Cfg.AddrWidth); words > max {
		words = 1 << uint(d.Cfg.AddrWidth)
	}
	ops := workload.MarchX(words, 0, d.Cfg.DataWidth)
	rng := xrand.New(seed)
	ops = append(ops, workload.RandomOps(rng, 3*words, words, d.Cfg.DataWidth, 0.5)...)
	tr := d.BuildTrace(ops)
	if d.Cfg.MPU {
		// Exercise the MPU: reprogram the page-permission register and
		// attempt an unprivileged access to a privileged page (the MPU
		// alarm fires in the golden run too — that is its job).
		privPage := uint64(7)
		for p := 0; p < 8; p++ {
			if d.Cfg.PrivPages>>uint(p)&1 == 1 {
				privPage = uint64(p)
			}
		}
		privAddr := privPage << uint(d.Cfg.AddrWidth-3)
		tr.Add(map[string]uint64{"cfg_we": 1, "mpu_cfg": d.Cfg.PrivPages ^ 0x01})
		tr.Add(map[string]uint64{"cfg_we": 0})
		tr.AddIdle(1)
		tr.Add(map[string]uint64{"req": 1, "we": 0, "addr": privAddr, "priv": 0})
		tr.Add(map[string]uint64{"req": 0, "priv": 1})
		tr.AddIdle(OpGap)
		tr.Add(map[string]uint64{"cfg_we": 1, "mpu_cfg": d.Cfg.PrivPages})
		tr.Add(map[string]uint64{"cfg_we": 0})
		tr.AddIdle(OpGap)
	}
	return tr
}

// InjectionTarget wires the design into the fault-injection environment:
// each instance is a fresh simulator with a fresh memory array attached.
func (d *Design) InjectionTarget(a *zones.Analysis) *inject.Target {
	return d.InjectionTargetSeeded(a, nil)
}

// InjectionTargetSeeded is InjectionTarget with array faults pre-armed
// in every instance (golden and faulty alike) — the workload-coverage
// runs seed known cell defects so the whole detection/correction
// datapath is exercised by the fault-free reference too.
func (d *Design) InjectionTargetSeeded(a *zones.Analysis, seeds []ArrayFault) *inject.Target {
	return &inject.Target{
		Analysis: a,
		NewInstance: func() (*sim.Simulator, error) {
			s, arr, err := d.NewSimulator()
			if err != nil {
				return nil, err
			}
			for _, f := range seeds {
				if err := arr.Inject(f); err != nil {
					return nil, err
				}
			}
			return s, nil
		},
	}
}

// SeedFaults returns the standard coverage seeds: one stuck-at-0 cell
// per data bit and per check bit (each at its own address, so every
// syndrome column and correction matcher is exercised), one double
// error, a defective BIST target cell, and — when the address space
// allows — one wrong-addressing pair per address bit so every folded
// address column of the code is driven. Requires at least
// WordWidth+2 words; the addressing pairs need WordWidth+2+2·AddrWidth.
func (d *Design) SeedFaults() []ArrayFault {
	var seeds []ArrayFault
	ww := d.WordWidth()
	for bit := 0; bit < ww; bit++ {
		seeds = append(seeds, ArrayFault{Kind: CellSA, A: uint64(bit + 1), Bit: bit, Val: 0})
	}
	dbl := uint64(ww + 1)
	seeds = append(seeds,
		ArrayFault{Kind: CellSA, A: dbl, Bit: 0, Val: 0},
		ArrayFault{Kind: CellSA, A: dbl, Bit: 1, Val: 0},
		ArrayFault{Kind: CellSA, A: 0, Bit: 2, Val: 0}, // fails the BIST
	)
	for _, p := range d.addrPairs() {
		seeds = append(seeds, ArrayFault{Kind: WrongAddressing, A: p[0], B: p[1]})
	}
	return seeds
}

// addrPairs allocates one (A, A^2^k) wrong-addressing pair per address
// bit in the space above the cell seeds, greedily avoiding collisions;
// bits that don't fit are skipped.
func (d *Design) addrPairs() [][2]uint64 {
	words := uint64(1) << uint(d.Cfg.AddrWidth)
	used := map[uint64]bool{}
	for w := uint64(0); w <= uint64(d.WordWidth()+1); w++ {
		used[w] = true // cell seeds, double-error word, BIST word
	}
	var out [][2]uint64
	for k := 0; k < d.Cfg.AddrWidth; k++ {
		for a := uint64(d.WordWidth() + 2); a < words; a++ {
			b := a ^ 1<<uint(k)
			if b >= words || used[a] || used[b] {
				continue
			}
			used[a] = true
			used[b] = true
			out = append(out, [2]uint64{a, b})
			break
		}
	}
	return out
}

// CoverageWorkload extends the validation workload with the stimuli the
// Section 5b toggle measurement needs: writes of all-ones over the
// seeded defective cells followed by read-back (driving every syndrome
// column, the correction matchers and the alarm tree), plus MPU
// configuration sweeps.
func (d *Design) CoverageWorkload(seed uint64) *workload.Trace {
	ww := d.WordWidth()
	dw := d.Cfg.DataWidth
	ones := uint64(1)<<uint(dw) - 1
	var ops []workload.MemOp
	for bit := 0; bit <= ww+1; bit++ {
		a := uint64(bit)
		ops = append(ops,
			workload.MemOp{Kind: workload.OpWrite, Addr: a, Data: ones},
			workload.MemOp{Kind: workload.OpRead, Addr: a, Data: 0},
			workload.MemOp{Kind: workload.OpWrite, Addr: a, Data: 0},
			workload.MemOp{Kind: workload.OpRead, Addr: a, Data: 0},
		)
		// A stuck check bit only shows when the stored check bit should
		// be 1: write a pattern that sets it for this address.
		if j := bit - dw; j >= 0 && j < d.Codec.CheckWidth {
			pat := d.checkActivation(j, a)
			ops = append(ops,
				workload.MemOp{Kind: workload.OpWrite, Addr: a, Data: pat},
				workload.MemOp{Kind: workload.OpRead, Addr: a, Data: 0},
			)
		}
	}
	// Touch every MPU page so the page decode logic toggles.
	for p := uint64(0); p < 8; p++ {
		ops = append(ops, workload.MemOp{Kind: workload.OpRead, Addr: p << uint(d.Cfg.AddrWidth-3), Data: 0})
	}
	// Exercise each folded address column via the wrong-addressing pairs.
	for _, pr := range d.addrPairs() {
		ops = append(ops,
			workload.MemOp{Kind: workload.OpWrite, Addr: pr[1], Data: 0x1234},
			workload.MemOp{Kind: workload.OpRead, Addr: pr[0], Data: 0},
			workload.MemOp{Kind: workload.OpRead, Addr: pr[1], Data: 0},
		)
	}
	// Leave fresh single errors for the scrubber to find, bit by bit
	// (check-bit cells need their activation pattern to be visible).
	for bit := 0; bit < ww; bit++ {
		data := ones
		if j := bit - dw; j >= 0 {
			data = d.checkActivation(j, uint64(bit+1))
		}
		ops = append(ops, workload.MemOp{Kind: workload.OpWrite, Addr: uint64(bit + 1), Data: data})
	}
	tr := d.ValidationWorkload(8, seed)
	tr.Concat(d.BuildTrace(ops))
	// Idle long enough for a full scrub sweep (4 cycles per word).
	tr.AddIdle(4<<uint(d.Cfg.AddrWidth) + 16)
	if d.Cfg.MPU {
		for _, pattern := range []uint64{0xFF, 0x00, d.Cfg.PrivPages} {
			tr.Add(map[string]uint64{"cfg_we": 1, "mpu_cfg": pattern})
			tr.Add(map[string]uint64{"cfg_we": 0})
			// Probe every page under this permission pattern, both
			// privileged and not, so each page-permission AND toggles.
			for p := uint64(0); p < 8; p++ {
				addr := p << uint(d.Cfg.AddrWidth-3)
				tr.Add(map[string]uint64{"req": 1, "we": 0, "addr": addr, "priv": 0})
				tr.Add(map[string]uint64{"req": 0, "priv": 1})
				tr.AddIdle(OpGap)
			}
		}
	}
	// Back-to-back writes exercise the buffer's enqueue-while-draining
	// path, and an immediate read afterwards exercises drain stalling.
	for i := 0; i < 3; i++ {
		tr.Add(map[string]uint64{"req": 1, "we": 1, "addr": uint64(2 + i), "wdata": ones})
	}
	tr.Add(map[string]uint64{"req": 1, "we": 0, "addr": 2, "wdata": 0})
	tr.Add(map[string]uint64{"req": 0, "we": 0})
	tr.AddIdle(2 * OpGap)
	return tr
}

// checkActivation picks a data pattern whose encoded check bit j is 1 at
// the given address, so a stuck check-bit cell becomes observable.
func (d *Design) checkActivation(j int, addr uint64) uint64 {
	candidates := []uint64{0, 1<<uint(d.Cfg.DataWidth) - 1}
	for i := 0; i < d.Cfg.DataWidth; i++ {
		candidates = append(candidates, 1<<uint(i))
	}
	for _, cand := range candidates {
		if d.Codec.Encode(cand, addr)>>uint(j)&1 == 1 {
			return cand
		}
	}
	return 0
}
