package memsys

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/rtl"
	"repro/internal/sim"
)

// Config selects the memory sub-system implementation. V1Config and
// V2Config reproduce the paper's two circuits; the individual flags
// support the ablation experiment (each of Section 6's design measures
// toggled independently).
type Config struct {
	Name      string
	DataWidth int
	AddrWidth int
	Variant   Variant

	// The five Section 6 measures (all false = V1, all true = V2).
	AddrInCode          bool // (IEC-required) fold addresses into the code
	WBufParity          bool // parity bits on the write buffer
	CoderCheck          bool // error checker right after the coder
	RedundantChecker    bool // double-redundant checker after the pipeline
	DistributedSyndrome bool // fine-grained error discrimination
	// Bypass is part of measure (ii): with no error, connect the decoder
	// output directly to the memory data.
	Bypass bool

	// Base architecture features (present in both implementations).
	Scrubber  bool
	BIST      bool
	MPU       bool
	PrivPages uint64 // bitmask over the 8 MPU pages
}

// V1Config is the paper's first implementation: standard modified
// Hamming SEC-DED with write buffer and decoder pipeline stage, no
// extra checkers. SFF ≈ 95 % in the paper.
func V1Config() Config {
	return Config{
		Name: "memsub-v1", DataWidth: 32, AddrWidth: 8, Variant: HsiaoA,
		Scrubber: true, BIST: true, MPU: true, PrivPages: 0x80,
	}
}

// V2Config adds the five design measures; the paper's final
// implementation with SFF = 99.38 %.
func V2Config() Config {
	cfg := V1Config()
	cfg.Name = "memsub-v2"
	cfg.AddrInCode = true
	cfg.WBufParity = true
	cfg.CoderCheck = true
	cfg.RedundantChecker = true
	cfg.DistributedSyndrome = true
	cfg.Bypass = true
	return cfg
}

// Design is a built memory sub-system: the gate-level netlist plus the
// array port bindings needed to attach the behavioral memory.
type Design struct {
	Cfg   Config
	Codec *Codec
	N     *netlist.Netlist

	memAddr  rtl.Bus
	memWData rtl.Bus
	memWE    netlist.NetID
	memRE    netlist.NetID
	memRData rtl.Bus
}

// WordWidth is the stored word width (data + check bits).
func (d *Design) WordWidth() int { return d.Codec.WordWidth() }

// NewSimulator attaches a fresh memory array and returns a simulator
// ready to run (reset applied, inputs still undriven).
func (d *Design) NewSimulator() (*sim.Simulator, *Array, error) {
	s, err := sim.New(d.N)
	if err != nil {
		return nil, nil, err
	}
	arr := NewArray(d.Cfg.AddrWidth, d.WordWidth(),
		d.memAddr, d.memWData, d.memWE, d.memRE, d.memRData)
	s.AttachPeripheral(arr)
	return s, arr, nil
}

// Build elaborates the memory sub-system of Fig. 5 into a gate-level
// netlist.
func Build(cfg Config) (*Design, error) {
	if cfg.DataWidth <= 0 || cfg.AddrWidth < 3 {
		return nil, fmt.Errorf("memsys: need DataWidth > 0 and AddrWidth >= 3, got %d/%d", cfg.DataWidth, cfg.AddrWidth)
	}
	codecAddr := 0
	if cfg.AddrInCode {
		codecAddr = cfg.AddrWidth
	}
	codec, err := NewCodec(cfg.DataWidth, codecAddr, cfg.Variant)
	if err != nil {
		return nil, err
	}
	m := rtl.NewModule(cfg.Name)
	d := &Design{Cfg: cfg, Codec: codec}

	// Primary inputs. mpu_cfg/cfg_we reprogram the MPU page attributes
	// at run time (the distributed-MPU page permission table).
	req := m.Input("req", 1)[0]
	we := m.Input("we", 1)[0]
	addr := m.Input("addr", cfg.AddrWidth)
	wdata := m.Input("wdata", cfg.DataWidth)
	priv := m.Input("priv", 1)[0]
	var mpuCfg rtl.Bus
	var cfgWE netlist.NetID
	if cfg.MPU {
		mpuCfg = m.Input("mpu_cfg", 8)
		cfgWE = m.Input("cfg_we", 1)[0]
	}

	// ---- BIST: start-up test sequencer (MCE grants it the bus until
	// it completes). ----
	effReq, effWE, effPriv := req, we, priv
	effAddr, effWData := addr, wdata
	ready := m.High()
	var bistExpect rtl.Bus
	var bistCompare netlist.NetID
	if cfg.BIST {
		m.PushBlock("BIST")
		step := m.NewReg("bist_step", 4, 0)
		readyReg := m.NewReg("bist_ready", 1, 0)
		notReady := m.NotBit(readyReg.Q[0])
		next, _ := m.Inc(step.Q)
		step.SetD(next)
		step.SetEnable(notReady)
		done := m.EqConst(step.Q, 10)
		readyReg.SetD(rtl.Bus{m.OrBit(readyReg.Q[0], done)})
		ready = readyReg.Q[0]

		patA := m.Const(cfg.DataWidth, 0xA5A5A5A5A5A5A5A5)
		patB := m.Const(cfg.DataWidth, 0x5A5A5A5A5A5A5A5A)
		wrStep := m.OrBit(m.EqConst(step.Q, 0), m.EqConst(step.Q, 5))
		rdStep := m.OrBit(m.EqConst(step.Q, 2), m.EqConst(step.Q, 7))
		secondHalf := m.Ule(m.Const(4, 5), step.Q)
		bistWData := m.Mux(secondHalf, patA, patB)
		bistExpect = m.Mux(m.EqConst(step.Q, 9), patA, patB)
		bistCompare = m.AndBit(notReady, m.OrBit(m.EqConst(step.Q, 4), m.EqConst(step.Q, 9)))

		bistReq := m.AndBit(notReady, m.OrBit(wrStep, rdStep))
		// While BIST owns the bus, external requests are ignored.
		effReq = m.MuxBit(ready, bistReq, req)
		effWE = m.MuxBit(ready, m.AndBit(notReady, wrStep), we)
		effAddr = m.Mux(ready, m.Const(cfg.AddrWidth, 0), addr)
		effWData = m.Mux(ready, bistWData, wdata)
		effPriv = m.MuxBit(ready, m.High(), priv)
		m.PopBlock()
	}

	// ---- MCE / MPU: bus-attribute check over 8 pages with a run-time
	// programmable permission register (reset to cfg.PrivPages). ----
	grant := effReq
	alarmMPU := m.Low()
	if cfg.MPU {
		m.PushBlock("MCE/MPU")
		pagesReg := m.RegEn("mpu_pages", mpuCfg, cfgWE, cfg.PrivPages)
		pageBits := effAddr.Slice(cfg.AddrWidth-3, cfg.AddrWidth)
		pages := m.Decode(pageBits)
		privNeeded := m.ReduceOr(m.And(pages, pagesReg))
		privOK := m.OrBit(effPriv, m.NotBit(privNeeded))
		alarmMPU = m.AndBit(effReq, m.NotBit(privOK))
		grant = m.AndBit(effReq, privOK)
		m.PopBlock()
	}

	// ---- MCE / AHBIF: request decode. ----
	m.PushBlock("MCE/AHBIF")
	wrAccept := m.AndBit(grant, effWE)
	rdRequest := m.AndBit(grant, m.NotBit(effWE))
	m.PopBlock()

	// ---- Write buffer: a registered entry decoupling bus writes from
	// the encode + array-write path (the paper's timing-closure buffer).
	// CPU reads have port priority, so the buffered word drains on the
	// first non-read cycle; a new write may land as the old one drains.
	m.PushBlock("WBUF")
	validReg := m.NewReg("wbuf_valid", 1, 0)
	deq := m.AndBit(validReg.Q[0], m.NotBit(rdRequest))
	canAccept := m.OrBit(m.NotBit(validReg.Q[0]), deq)
	enq := m.AndBit(wrAccept, canAccept)
	wbufAddr := m.RegEn("wbuf_addr", effAddr, enq, 0)
	wbufData := m.RegEn("wbuf_data", effWData, enq, 0)
	validNext := m.OrBit(enq, m.AndBit(validReg.Q[0], m.NotBit(deq)))
	validReg.SetD(rtl.Bus{validNext})
	draining := deq
	alarmWBuf := m.Low()
	if cfg.WBufParity {
		parIn := m.Parity(rtl.Concat(effAddr, effWData))
		wbufPar := m.RegEn("wbuf_par", rtl.Bus{parIn}, enq, 0)
		parOut := m.Parity(rtl.Concat(wbufAddr, wbufData))
		alarmWBuf = m.AndBit(draining, m.XorBit(parOut, wbufPar[0]))
	}
	m.PopBlock()
	wbufValid := rtl.Bus{draining}
	wbufOccupied := validReg.Q[0]

	// ---- F-MEM / CODER: SEC-DED encoder (+ optional checker). ----
	m.PushBlock("F_MEM/CODER")
	var encAddrBus rtl.Bus
	if cfg.AddrInCode {
		encAddrBus = wbufAddr
	}
	check := codec.BuildEncoder(m, wbufData, encAddrBus)
	alarmCoder := m.Low()
	if cfg.CoderCheck {
		check2 := codec.BuildEncoder(m, wbufData, encAddrBus)
		alarmCoder = m.AndBit(wbufValid[0], m.Ne(check, check2))
	}
	m.PopBlock()

	// ---- Scrubber (F-MEM DMA path through the MCE). ----
	// Declared before MEMCTRL because the port muxes consume its
	// signals; its memory-data consumers are wired afterwards.
	scrubWE := m.Low()
	scrubRE := m.Low()
	scrubAddr := m.Const(cfg.AddrWidth, 0)
	scrubWord := m.Const(codec.WordWidth(), 0)
	alarmScrub := m.Low()
	var scrubWire func(memRData rtl.Bus)
	if cfg.Scrubber {
		m.PushBlock("F_MEM/SCRUB")
		state := m.NewReg("scrub_state", 2, 0)
		ptr := m.NewReg("scrub_ptr", cfg.AddrWidth, 0)
		capReg := m.NewReg("scrub_cap", codec.WordWidth(), 0)
		idle := m.AndBit(m.NotBit(effReq), m.NotBit(wbufOccupied))

		stIdle := m.EqConst(state.Q, 0)
		stWait := m.EqConst(state.Q, 1)
		stFix := m.EqConst(state.Q, 2)
		stNext := m.EqConst(state.Q, 3)

		scrubRE = m.AndBit(stIdle, idle)
		scrubAddr = ptr.Q

		// State transitions: IDLE -(issue)-> WAIT -> FIX -> NEXT -> IDLE.
		advance := m.OrBit(scrubRE, m.OrBit(stWait, m.OrBit(stFix, stNext)))
		nextState, _ := m.Inc(state.Q)
		state.SetD(m.Mux(advance, state.Q, nextState))

		nextPtr, _ := m.Inc(ptr.Q)
		ptr.SetD(nextPtr)
		ptr.SetEnable(stNext)

		// Decode the captured word with dedicated scrub logic.
		capData := capReg.Q.Slice(0, cfg.DataWidth)
		capCheck := capReg.Q.Slice(cfg.DataWidth, codec.WordWidth())
		var scrubAddrBus rtl.Bus
		if cfg.AddrInCode {
			scrubAddrBus = ptr.Q
		}
		dec := codec.BuildDecoder(m, capData, scrubAddrBus, capCheck, false, false)
		canFix := m.AndBit(stFix, m.AndBit(dec.Single, idle))
		scrubWE = canFix
		alarmScrub = m.AndBit(stFix, dec.Single)
		fixedCheck := codec.BuildEncoder(m, dec.Data, scrubAddrBus)
		scrubWord = rtl.Concat(dec.Data, fixedCheck)

		// Capture wiring needs the memory read bus; defer.
		scrubWire = func(memRData rtl.Bus) {
			capReg.SetD(memRData)
			capReg.SetEnable(stWait)
		}
		m.PopBlock()
	}

	// ---- MEMCTRL: memory port arbitration (CPU read > wbuf drain >
	// scrubber; the drain signal already excludes read cycles). ----
	m.PushBlock("MEMCTRL")
	rdAccept := rdRequest
	memWE := m.OrBit(wbufValid[0], scrubWE)
	memRE := m.OrBit(rdAccept, scrubRE)
	memAddr := m.Mux(rdAccept,
		m.Mux(wbufValid[0], scrubAddr, wbufAddr),
		effAddr)
	wbufWord := rtl.Concat(wbufData, check)
	memWData := m.Mux(wbufValid[0], scrubWord, wbufWord)
	m.PopBlock()

	memRData := m.External("mem_rdata", codec.WordWidth())
	m.Keep(memAddr)
	m.Keep(memWData)
	m.Keep(rtl.Bus{memWE, memRE})
	if scrubWire != nil {
		scrubWire(memRData)
	}

	// ---- F-MEM / DECODER: read pipeline stage + SEC-DED decode. ----
	m.PushBlock("F_MEM/DECODER")
	rdPend := m.RegNext("rd_pend", rtl.Bus{rdAccept}, 0)
	rdAddrQ := m.RegEn("rd_addr", effAddr, rdAccept, 0)
	pipeWord := m.RegEn("pipe_word", memRData, rdPend[0], 0)
	pipeAddr := m.RegEn("pipe_addr", rdAddrQ, rdPend[0], 0)
	pipeValid := m.RegNext("pipe_valid", rdPend, 0)

	pipeData := pipeWord.Slice(0, cfg.DataWidth)
	pipeCheck := pipeWord.Slice(cfg.DataWidth, codec.WordWidth())
	var decAddrBus rtl.Bus
	if cfg.AddrInCode {
		decAddrBus = pipeAddr
	}
	dec := codec.BuildDecoder(m, pipeData, decAddrBus, pipeCheck, cfg.DistributedSyndrome, cfg.Bypass)
	alarmDec := m.Low()
	if cfg.RedundantChecker {
		syn2 := codec.SyndromeBus(m, pipeData, decAddrBus, pipeCheck)
		alarmDec = m.AndBit(pipeValid[0], m.Ne(dec.Syn, syn2))
	}
	m.PopBlock()

	// ---- F-MEM / ERRCTRL: alarm conditioning plus the error log the
	// scrubbing feature uses ("stores the locations where an error
	// occurred"): last error address, last syndrome, saturating count.
	m.PushBlock("F_MEM/ERRCTRL")
	alarmCorr := m.AndBit(pipeValid[0], dec.Single)
	alarmUncorr := m.AndBit(pipeValid[0], dec.Double)
	alarmAddr := m.Low()
	if cfg.DistributedSyndrome {
		alarmAddr = m.AndBit(pipeValid[0], dec.InAddr)
	}
	anyErr := m.OrBit(alarmCorr, alarmUncorr)
	errAddr := m.RegEn("err_addr", pipeAddr, anyErr, 0)
	errSynd := m.RegEn("err_synd", dec.Syn, anyErr, 0)
	errCnt := m.NewReg("err_cnt", 4, 0)
	cntNext, _ := m.Inc(errCnt.Q)
	errCnt.SetD(cntNext)
	errCnt.SetEnable(m.AndBit(anyErr, m.NotBit(m.EqConst(errCnt.Q, 15))))
	m.PopBlock()

	// ---- BIST result compare (needs decoded read data). ----
	alarmBIST := m.Low()
	if cfg.BIST {
		m.PushBlock("BIST")
		// The memory must be error-free at start-up: the decoder masking
		// a stuck cell (single-error correction) is still a BIST failure,
		// so any error indication during the compare window fails too.
		wrong := m.OrBit(m.Ne(dec.Data, bistExpect), m.OrBit(dec.Single, dec.Double))
		mismatch := m.AndBit(bistCompare, m.AndBit(pipeValid[0], wrong))
		fail := m.NewReg("bist_fail", 1, 0)
		fail.SetD(rtl.Bus{m.OrBit(fail.Q[0], mismatch)})
		alarmBIST = fail.Q[0]
		m.PopBlock()
	}

	// ---- Primary outputs. Alarms are registered in ERRCTRL so every
	// alarm pulse is observable for a full cycle at the pins. ----
	m.Output("rdata", dec.Data)
	m.Output("ack", rtl.Bus{pipeValid[0]})
	m.Output("ready", rtl.Bus{ready})
	// Error-log readouts are diagnostic observation points.
	m.Output("alarm_log_addr", errAddr)
	m.Output("alarm_log_synd", errSynd)
	m.Output("alarm_log_count", errCnt.Q)
	alarmOut := func(port string, sig netlist.NetID) {
		m.PushBlock("F_MEM/ERRCTRL")
		q := m.RegNext(port+"_q", rtl.Bus{sig}, 0)
		m.PopBlock()
		m.Output(port, q)
	}
	alarmOut("alarm_corr", alarmCorr)
	alarmOut("alarm_uncorr", alarmUncorr)
	if cfg.MPU {
		alarmOut("alarm_mpu", alarmMPU)
	}
	if cfg.WBufParity {
		alarmOut("alarm_wbuf", alarmWBuf)
	}
	if cfg.CoderCheck {
		alarmOut("alarm_coder", alarmCoder)
	}
	if cfg.RedundantChecker {
		alarmOut("alarm_dec", alarmDec)
	}
	if cfg.DistributedSyndrome {
		alarmOut("alarm_addr", alarmAddr)
	}
	if cfg.Scrubber {
		alarmOut("alarm_scrub", alarmScrub)
	}
	if cfg.BIST {
		alarmOut("alarm_bist", alarmBIST)
	}

	n, err := m.Finish()
	if err != nil {
		return nil, err
	}
	d.N = n
	d.memAddr = memAddr
	d.memWData = memWData
	d.memWE = memWE
	d.memRE = memRE
	d.memRData = memRData
	return d, nil
}

// AlarmPorts lists the diagnostic output ports of the design.
func (d *Design) AlarmPorts() []string {
	var out []string
	for _, p := range d.N.Outputs {
		if len(p.Name) >= 5 && p.Name[:5] == "alarm" {
			out = append(out, p.Name)
		}
	}
	return out
}
