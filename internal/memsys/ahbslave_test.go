package memsys

import (
	"testing"

	"repro/internal/ahb"
)

func newMatrixWithDUT(t *testing.T) (*ahb.Matrix, *AHBSlave) {
	t.Helper()
	d, err := Build(smallV2())
	if err != nil {
		t.Fatal(err)
	}
	slave, err := NewAHBSlave(d)
	if err != nil {
		t.Fatal(err)
	}
	m := ahb.NewMatrix()
	// Protected memory at 0x4000_0000, scratch RAM at 0x2000_0000 —
	// the "mix of commodity and safety functions" of the introduction.
	if err := m.Map("safe_mem", 0x40000000, 4*32, slave); err != nil {
		t.Fatal(err)
	}
	if err := m.Map("scratch", 0x20000000, 4*64, ahb.NewRAMSlave(64)); err != nil {
		t.Fatal(err)
	}
	return m, slave
}

func TestAHBSlaveReadWrite(t *testing.T) {
	m, _ := newMatrixWithDUT(t)
	wr := m.Issue(ahb.Transfer{
		Addr: 0x40000000 + 4*5, Write: true, Data: 0xCAFE_F00D, Size: 4,
		Prot: ahb.Prot{Privileged: true, DataAccess: true},
	})
	if wr.Resp != ahb.RespOKAY {
		t.Fatalf("write resp = %v", wr.Resp)
	}
	rd := m.Issue(ahb.Transfer{
		Addr: 0x40000000 + 4*5, Size: 4,
		Prot: ahb.Prot{Privileged: true, DataAccess: true},
	})
	if rd.Resp != ahb.RespOKAY || rd.Data != 0xCAFE_F00D {
		t.Fatalf("read = %+v", rd)
	}
}

func TestAHBSlaveMPUViolation(t *testing.T) {
	m, _ := newMatrixWithDUT(t)
	// Page 7 of the 32-word space = addresses 28..31; word 30.
	addr := uint64(0x40000000 + 4*30)
	// Privileged write succeeds.
	if r := m.Issue(ahb.Transfer{Addr: addr, Write: true, Data: 7, Prot: ahb.Prot{Privileged: true}}); r.Resp != ahb.RespOKAY {
		t.Fatalf("privileged write: %v", r.Resp)
	}
	// User-mode read ERRORs.
	if r := m.Issue(ahb.Transfer{Addr: addr, Prot: ahb.Prot{Privileged: false}}); r.Resp != ahb.RespERROR {
		t.Error("user access to privileged page did not ERROR")
	}
	if m.Errors() == 0 {
		t.Error("matrix error counter not incremented")
	}
}

func TestAHBSlaveUncorrectableErrors(t *testing.T) {
	m, slave := newMatrixWithDUT(t)
	addr := uint64(0x40000000 + 4*9)
	m.Issue(ahb.Transfer{Addr: addr, Write: true, Data: 0x1234, Prot: ahb.Prot{Privileged: true}})
	// Double-bit corruption in the array: the read must come back ERROR.
	slave.Sess.Arr.Inject(ArrayFault{Kind: SoftError, A: 9, Bit: 0})
	slave.Sess.Arr.Inject(ArrayFault{Kind: SoftError, A: 9, Bit: 5})
	r := m.Issue(ahb.Transfer{Addr: addr, Prot: ahb.Prot{Privileged: true}})
	if r.Resp != ahb.RespERROR {
		t.Errorf("uncorrectable read returned %v with data %#x", r.Resp, r.Data)
	}
	// A single-bit corruption is transparent (corrected).
	addr2 := uint64(0x40000000 + 4*11)
	m.Issue(ahb.Transfer{Addr: addr2, Write: true, Data: 0xBEEF, Prot: ahb.Prot{Privileged: true}})
	slave.Sess.Arr.Inject(ArrayFault{Kind: SoftError, A: 11, Bit: 3})
	r = m.Issue(ahb.Transfer{Addr: addr2, Prot: ahb.Prot{Privileged: true}})
	if r.Resp != ahb.RespOKAY || r.Data != 0xBEEF {
		t.Errorf("corrected read = %+v, want OKAY 0xbeef", r)
	}
}

func TestAHBSlaveOutOfRange(t *testing.T) {
	_, slave := newMatrixWithDUT(t)
	r := slave.Access(ahb.Transfer{Addr: 4 * 1000, Prot: ahb.Prot{Privileged: true}})
	if r.Resp != ahb.RespERROR {
		t.Error("out-of-range access did not ERROR")
	}
}

func TestAHBMixedTraffic(t *testing.T) {
	m, _ := newMatrixWithDUT(t)
	// Two masters, one on the safety memory, one on the scratch RAM:
	// multilayer keeps them parallel (no waits on the scratch path).
	rs := m.IssueAll([]ahb.Transfer{
		{Master: 0, Addr: 0x40000000, Write: true, Data: 1, Prot: ahb.Prot{Privileged: true}},
		{Master: 1, Addr: 0x20000000, Write: true, Data: 2},
	})
	if rs[0].Resp != ahb.RespOKAY || rs[1].Resp != ahb.RespOKAY {
		t.Fatalf("mixed traffic: %+v", rs)
	}
	if rs[1].Waits != 0 {
		t.Error("scratch access waited despite multilayer")
	}
	if m.TransferCount("safe_mem") != 1 || m.TransferCount("scratch") != 1 {
		t.Error("transfer accounting wrong")
	}
}
