package memsys

import (
	"repro/internal/fit"
	"repro/internal/fmea"
	"repro/internal/inject"
	"repro/internal/workload"
	"repro/internal/zones"
)

// FlowDUT adapts a built design (plus its standard workloads and
// coverage seeds) to the core methodology flow.
type FlowDUT struct {
	D *Design
	// ValidationWords is the address-slice size of the campaign workload.
	ValidationWords int
	Seed            uint64
}

// NewFlowDUT wraps a design with flow defaults.
func NewFlowDUT(d *Design) *FlowDUT {
	return &FlowDUT{D: d, ValidationWords: 8, Seed: 1}
}

// DesignName implements core.DUT.
func (f *FlowDUT) DesignName() string { return f.D.Cfg.Name }

// Analyze implements core.DUT.
func (f *FlowDUT) Analyze() (*zones.Analysis, error) { return f.D.Analyze() }

// Worksheet implements core.DUT.
func (f *FlowDUT) Worksheet(a *zones.Analysis, rates fit.Rates) *fmea.Worksheet {
	return f.D.Worksheet(a, rates)
}

// Target implements core.DUT: instances carry the standard coverage
// seeds so the golden run exercises the detection paths too.
func (f *FlowDUT) Target(a *zones.Analysis) *inject.Target {
	return f.D.InjectionTargetSeeded(a, f.D.SeedFaults())
}

// ValidationTrace implements core.DUT.
func (f *FlowDUT) ValidationTrace() *workload.Trace {
	return f.D.ValidationWorkload(f.ValidationWords, f.Seed)
}

// CoverageTrace implements core.DUT.
func (f *FlowDUT) CoverageTrace() *workload.Trace {
	return f.D.CoverageWorkload(f.Seed)
}
