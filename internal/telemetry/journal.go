package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// Journal event types. Every journal line is one JSON object with at
// least {"seq":n,"ev":"<type>"} plus an RFC3339Nano "ts" when the
// journal has a clock; the remaining fields are per-type (see
// DESIGN.md §10 for the full schema). tools/checkjournal validates a
// journal file against this schema.
const (
	EvCampaignStart  = "campaign_start"   // total, workers, plan_hash
	EvPhase          = "phase"            // name
	EvExpStart       = "exp_start"        // i
	EvExpFinish      = "exp_finish"       // i, outcome, sens, deviated, first_dev
	EvRetry          = "retry"            // i, attempt, err
	EvQuarantine     = "quarantine"       // i, attempts, err
	EvCheckpointSave = "checkpoint_write" // completed
	EvCheckpointLoad = "checkpoint_load"  // results, quarantined
	EvSummary        = "summary"          // done, retries, quarantined, checkpoints, per-outcome counts
)

// Journal writes structured campaign lifecycle events as JSONL: one
// self-contained JSON object per line, flushed on Close. Writes are
// serialized under a mutex (one line per event, never interleaved) and
// the sequence number is strictly monotonic, so a journal holding
// several campaigns (e.g. the zone and wide campaigns of one core.Run)
// still reads as one ordered stream.
//
// Timestamps come exclusively from the injected clock; a nil clock
// omits the ts field entirely, which keeps journal output reproducible
// in deterministic tests.
type Journal struct {
	clock func() time.Time

	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	seq uint64
	buf []byte
	enc Enc
	err error
}

// NewJournal wraps a writer. clock may be nil (no timestamps).
func NewJournal(w io.Writer, clock func() time.Time) *Journal {
	j := &Journal{clock: clock, w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// OpenJournal creates (truncating) the journal file at path.
func OpenJournal(path string, clock func() time.Time) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: journal: %w", err)
	}
	return NewJournal(f, clock), nil
}

// Close flushes buffered lines and closes the underlying file when the
// journal owns one. It reports the first write error seen over the
// journal's lifetime, so a full disk does not fail silently.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	if j.c != nil {
		if err := j.c.Close(); err != nil && j.err == nil {
			j.err = err
		}
	}
	return j.err
}

// Err returns the first write error encountered (nil while healthy).
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Enc appends fields to the journal line under construction. All
// methods are only valid inside an Emit callback.
type Enc struct{ b []byte }

// Str appends a string field with full JSON escaping.
func (e *Enc) Str(key, v string) {
	e.key(key)
	e.b = appendJSONString(e.b, v)
}

// Int appends an integer field.
func (e *Enc) Int(key string, v int64) {
	e.key(key)
	e.b = strconv.AppendInt(e.b, v, 10)
}

// Uint appends an unsigned integer field.
func (e *Enc) Uint(key string, v uint64) {
	e.key(key)
	e.b = strconv.AppendUint(e.b, v, 10)
}

// Bool appends a boolean field.
func (e *Enc) Bool(key string, v bool) {
	e.key(key)
	e.b = strconv.AppendBool(e.b, v)
}

// Hex appends v as a zero-padded 16-digit hex string (plan hashes).
func (e *Enc) Hex(key string, v uint64) {
	e.key(key)
	e.b = append(e.b, '"')
	e.b = fmt.Appendf(e.b, "%016x", v)
	e.b = append(e.b, '"')
}

func (e *Enc) key(k string) {
	e.b = append(e.b, ',')
	e.b = appendJSONString(e.b, k)
	e.b = append(e.b, ':')
}

// Emit writes one event line. The callback adds the event's fields;
// seq, ts and ev are supplied by the journal. Emit on a nil journal is
// a no-op, so instrumented code never branches on configuration.
func (j *Journal) Emit(ev string, fields func(e *Enc)) {
	if j == nil {
		return
	}
	e := j.begin(ev)
	if fields != nil {
		j.guard(e, fields)
	}
	j.end(e)
}

// guard runs a caller-supplied fields closure on the line opened by
// begin. If the closure panics, the half-built line (corrupt JSON by
// construction) is discarded and the journal unlocked before the panic
// propagates — otherwise one panicking callback would wedge every
// subsequent emit on the held mutex. The closure-free begin/end hot
// path needs no guard: nothing between them can panic.
func (j *Journal) guard(e *Enc, fn func(*Enc)) {
	done := false
	defer func() {
		if !done {
			j.abort(e)
		}
	}()
	fn(e)
	done = true
}

// abort discards the line opened by begin without writing it: the
// sequence number is reclaimed (journal seqs must stay contiguous) and
// the lock released.
func (j *Journal) abort(e *Enc) {
	j.buf = e.b[:0]
	j.seq--
	j.mu.Unlock()
}

// begin locks the journal and opens one event line — seq, optional ts
// and ev — on the journal's reused encoder. The caller appends the
// event's fields and must hand the encoder back to end, which writes
// the line and releases the lock. This is the closure-free emit path
// used by fixed-shape hot events (span start/end): no func value, no
// captures, no per-event allocation.
func (j *Journal) begin(ev string) *Enc {
	j.mu.Lock()
	j.seq++
	j.enc.b = append(j.buf[:0], `{"seq":`...)
	j.enc.b = strconv.AppendUint(j.enc.b, j.seq, 10)
	if j.clock != nil {
		j.enc.Str("ts", j.clock().UTC().Format(time.RFC3339Nano))
	}
	j.enc.Str("ev", ev)
	return &j.enc
}

// end closes the line opened by begin, writes it and unlocks.
func (j *Journal) end(e *Enc) {
	e.b = append(e.b, '}', '\n')
	j.buf = e.b
	if _, err := j.w.Write(e.b); err != nil && j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
}

// appendJSONString appends a JSON-quoted, escaped string.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for _, r := range s {
		switch r {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			if r < 0x20 {
				b = fmt.Appendf(b, `\u%04x`, r)
			} else {
				b = utf8.AppendRune(b, r)
			}
		}
	}
	return append(b, '"')
}
