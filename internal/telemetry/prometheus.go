package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format 0.0.4: counters as `campaign_<name>` counters, gauges as
// gauges, histograms as the conventional cumulative `_bucket{le=...}`
// series plus `_sum` and `_count`. Metric names are emitted in sorted
// order, so the output is byte-stable for a given registry state and a
// scrape needs no bespoke tooling.
func WritePrometheus(w io.Writer, s RegistrySnapshot) {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters { //det:order collecting before sort
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "# TYPE campaign_%s counter\n", n)
		fmt.Fprintf(w, "campaign_%s %d\n", n, s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges { //det:order collecting before sort
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "# TYPE campaign_%s gauge\n", n)
		fmt.Fprintf(w, "campaign_%s %d\n", n, s.Gauges[n])
	}

	names = names[:0]
	for n := range s.Histograms { //det:order collecting before sort
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(w, "# TYPE campaign_%s histogram\n", n)
		// Registry buckets are per-cell counts; Prometheus buckets
		// are cumulative, with the overflow cell (Le = -1) as +Inf.
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.N
			if b.Le < 0 {
				fmt.Fprintf(w, "campaign_%s_bucket{le=\"+Inf\"} %d\n", n, cum)
			} else {
				fmt.Fprintf(w, "campaign_%s_bucket{le=\"%d\"} %d\n", n, b.Le, cum)
			}
		}
		fmt.Fprintf(w, "campaign_%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(w, "campaign_%s_count %d\n", n, h.Count)
	}
}
