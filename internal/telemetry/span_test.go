package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSpanJournalStream pins the span event wire format: exact lines
// for a root span, a child, a remote child and their ends.
func TestSpanJournalStream(t *testing.T) {
	var sb strings.Builder
	j := NewJournal(&sb, nil)
	tr := NewTracer(j, "w1", 0xabcd)

	root := tr.Start("campaign", Span{})
	child := tr.StartAttrs("lease", root, func(e *Enc) { e.Int("lo", 0); e.Int("hi", 32) })
	remote := tr.start("worker-lease", 0, 7, "lease", 3, nil)
	remote.EndOutcome("done")
	child.EndAttrs(func(e *Enc) { e.Int("rows", 32) })
	root.End()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	want := strings.Join([]string{
		`{"seq":1,"ev":"span_start","trace":"000000000000abcd","span":1,"name":"campaign","proc":"w1"}`,
		`{"seq":2,"ev":"span_start","trace":"000000000000abcd","span":2,"parent":1,"name":"lease","proc":"w1","lo":0,"hi":32}`,
		`{"seq":3,"ev":"span_start","trace":"000000000000abcd","span":3,"rparent":7,"name":"worker-lease","proc":"w1","lease":3}`,
		`{"seq":4,"ev":"span_end","span":3,"outcome":"done"}`,
		`{"seq":5,"ev":"span_end","span":2,"rows":32}`,
		`{"seq":6,"ev":"span_end","span":1}`,
	}, "\n") + "\n"
	if sb.String() != want {
		t.Fatalf("span journal:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestSpanNilSafe: nil tracers and zero spans must be inert everywhere.
func TestSpanNilSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", Span{})
	if sp.Valid() {
		t.Fatal("nil tracer produced a valid span")
	}
	sp.End()
	sp.EndOutcome("done")
	sp.EndAttrs(func(e *Enc) { e.Int("n", 1) })
	tr.Adopt("0000000000000001")
	if tr.Trace() != 0 || tr.TraceHex() != "" {
		t.Fatal("nil tracer leaked a trace id")
	}
	var c *Campaign
	c.SetTraceRoot(Span{})
	c.PhaseDone()
	if c.StartSpan("x").Valid() || c.StartSpanInt("x", "k", 1).Valid() {
		t.Fatal("nil campaign produced a valid span")
	}
	if _, ok := c.TraceContext(); ok {
		t.Fatal("nil campaign reported live trace context")
	}
	// A hub without a tracer is equally inert.
	hub := NewCampaign(nil, nil)
	if hub.StartSpan("x").Valid() {
		t.Fatal("tracer-less hub produced a valid span")
	}
}

// TestTraceID: deterministic, part-sensitive, separator-sensitive.
func TestTraceID(t *testing.T) {
	if TraceID("dist", "v2", "7") != TraceID("dist", "v2", "7") {
		t.Fatal("TraceID not deterministic")
	}
	if TraceID("a", "b") == TraceID("ab") {
		t.Fatal("part boundaries not separated")
	}
	if TraceID("a", "b") == TraceID("a", "c") {
		t.Fatal("distinct parts collide")
	}
}

// TestTraceHexAdopt round-trips a trace id through its wire form.
func TestTraceHexAdopt(t *testing.T) {
	a := NewTracer(NewJournal(&strings.Builder{}, nil), "a", TraceID("x"))
	b := NewTracer(NewJournal(&strings.Builder{}, nil), "b", 1)
	hex := a.TraceHex()
	if len(hex) != 16 {
		t.Fatalf("TraceHex = %q, want 16 digits", hex)
	}
	b.Adopt(hex)
	if b.Trace() != a.Trace() {
		t.Fatalf("adopt: %x != %x", b.Trace(), a.Trace())
	}
	b.Adopt("not-hex")
	b.Adopt("")
	if b.Trace() != a.Trace() {
		t.Fatal("malformed adopt must not clobber the trace")
	}
}

// TestCampaignAmbientSpans exercises the hub integration: phase spans
// chain under the root, experiment spans parent under the open phase,
// Summary closes the last phase, and SetTraceRoot re-roots.
func TestCampaignAmbientSpans(t *testing.T) {
	var sb strings.Builder
	j := NewJournal(&sb, nil)
	c := NewCampaign(nil, nil)
	c.Tracer = NewTracer(j, "p", 1)

	root := c.Tracer.Start("campaign", Span{})
	c.SetTraceRoot(root)
	c.Phase("build")   // span 2, parent 1
	c.Phase("golden")  // ends 2, span 3, parent 1
	tk := c.ExpStart(5) // span 4, parent 3
	c.ExpFinish(5, "silent", false, 0, -1, tk)
	bs := c.BatchStart(48) // span 5, parent 3
	c.BatchDone(bs, 48)
	c.Summary() // ends 3
	root.End()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	type rec struct {
		Ev     string `json:"ev"`
		Span   uint64 `json:"span"`
		Parent uint64 `json:"parent"`
		Name   string `json:"name"`
		I      int64  `json:"i"`
		Lanes  int64  `json:"lanes"`
	}
	var recs []rec
	for _, line := range strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n") {
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		recs = append(recs, r)
	}
	wantStarts := map[uint64]rec{
		2: {Name: "build", Parent: 1},
		3: {Name: "golden", Parent: 1},
		4: {Name: "exp", Parent: 3, I: 5},
		5: {Name: "batch", Parent: 3, Lanes: 48},
	}
	ends := map[uint64]int{}
	for _, r := range recs {
		switch r.Ev {
		case EvSpanStart:
			if w, ok := wantStarts[r.Span]; ok {
				if r.Name != w.Name || r.Parent != w.Parent || r.I != w.I || r.Lanes != w.Lanes {
					t.Fatalf("span %d = %+v, want %+v", r.Span, r, w)
				}
			}
		case EvSpanEnd:
			ends[r.Span]++
		}
	}
	for sp := uint64(1); sp <= 5; sp++ {
		if ends[sp] != 1 {
			t.Fatalf("span %d ended %d times, want once (ends=%v)", sp, ends[sp], ends)
		}
	}
}

// TestSpanHotPathAllocFree: span start/end on a clockless journal must
// not allocate — the tracing hot path shares the journal's reused
// buffer and never builds a closure.
func TestSpanHotPathAllocFree(t *testing.T) {
	j := NewJournal(discard{}, nil)
	tr := NewTracer(j, "p", 1)
	c := NewCampaign(nil, nil)
	c.Tracer = tr
	root := tr.Start("campaign", Span{})
	c.SetTraceRoot(root)
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.start("exp", root.id, 0, "i", 7, nil)
		sp.EndOutcome("silent")
	}); n > 0 {
		t.Fatalf("span start/end allocates %.1f per op, want 0", n)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestExpTicketCarriesWall: the ticket keeps ExpFinish's wall-clock
// histogram working exactly as the pre-span time.Time return did.
func TestExpTicketCarriesWall(t *testing.T) {
	now := time.Unix(0, 0)
	c := NewCampaign(nil, func() time.Time { return now })
	tk := c.ExpStart(0)
	now = now.Add(250 * time.Millisecond)
	c.ExpFinish(0, "silent", false, 0, -1, tk)
	h := c.Registry.Histogram("exp_wall_us")
	if h.Count() != 1 || h.Sum() != 250_000 {
		t.Fatalf("exp_wall_us count/sum = %d/%d, want 1/250000", h.Count(), h.Sum())
	}
}
