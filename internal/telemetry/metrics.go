// Package telemetry is the observability layer of the campaign engine:
// an allocation-free atomic metrics registry, a structured JSONL
// campaign journal, a periodic progress reporter and an HTTP status
// server (expvar + pprof + /progress).
//
// Telemetry is strictly out-of-band. Nothing in this package feeds the
// campaign report: events carry timestamps only through an injected
// clock, journal lines go to their own file, progress goes to stderr,
// and every instrumentation hook in the engine is nil-safe — a nil
// *Campaign turns the whole layer into a handful of pointer checks.
// The merged campaign report is therefore byte-identical with
// telemetry on or off, at any worker count (asserted by the
// neutrality matrix test in internal/inject).
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; Add and Inc never allocate.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (set, add, read).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bounds are upper
// bucket edges (inclusive); one implicit overflow bucket catches
// everything above the last bound. Observe is allocation-free and safe
// for concurrent use.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	sum    atomic.Int64
	n      atomic.Int64
}

// NewHistogram builds a histogram over ascending upper bounds.
func NewHistogram(bounds ...int64) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Buckets renders the histogram as (upper bound, count) pairs plus the
// overflow bucket (bound = -1).
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, 0, len(h.counts))
	for i := range h.counts {
		b := Bucket{Le: int64(-1), N: h.counts[i].Load()}
		if i < len(h.bounds) {
			b.Le = h.bounds[i]
		}
		out = append(out, b)
	}
	return out
}

// Bucket is one histogram cell: count of observations <= Le (Le = -1
// marks the overflow bucket).
type Bucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// Registry is a named metric set. Registration (get-or-create) takes a
// mutex and may allocate; the returned handles are then used directly,
// so the record path stays allocation-free. Snapshots render metrics
// in sorted name order, so serialized forms are stable.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore the bounds).
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram in a registry snapshot.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// RegistrySnapshot is a point-in-time copy of every metric, with
// deterministic (sorted) name order inside each section.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry. encoding/json sorts map keys, so the
// rendered snapshot is byte-stable for a given state.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RegistrySnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters { //det:order copying into a map
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges { //det:order copying into a map
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.histograms { //det:order copying into a map
		// Buckets before count, mirroring Observe's bucket-then-n write
		// order from the other side: a concurrent snapshot then sees
		// bucket sums ahead of the count by at most the in-flight
		// Observes (one per writer). Reading the count first would let
		// every Observe landing mid-snapshot inflate the buckets past
		// it unboundedly.
		b := h.Buckets()
		s.Histograms[name] = HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Buckets: b}
	}
	return s
}

// Names lists every registered metric name, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters { //det:order collecting before sort
		names = append(names, n)
	}
	for n := range r.gauges { //det:order collecting before sort
		names = append(names, n)
	}
	for n := range r.histograms { //det:order collecting before sort
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
