package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
)

// current is the campaign the process-wide expvar publication reads
// from; ServeStatus installs its campaign here. expvar.Publish is
// once-per-name for the process lifetime, so the variable indirects
// through this pointer instead of capturing one campaign.
var (
	current    atomic.Pointer[Campaign]
	publishVar sync.Once
)

// StatusServer is the live-campaign HTTP endpoint: /progress (campaign
// snapshot JSON), /metrics (Prometheus text format 0.0.4),
// /metrics.json (registry snapshot JSON), /debug/vars (expvar,
// including the campaign registry) and /debug/pprof/*.
//
// Security note: the campaign endpoint is unauthenticated and pprof
// exposes process internals, so ServeStatus binds loopback unless the
// operator explicitly names an interface — an addr of the form ":8080"
// becomes "127.0.0.1:8080".
type StatusServer struct {
	// Addr is the bound address (useful with a ":0" listener).
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// ServeStatus starts the status server for the campaign and returns
// once the listener is bound (the HTTP loop runs in a goroutine).
func ServeStatus(addr string, c *Campaign) (*StatusServer, error) {
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: status server: %w", err)
	}
	current.Store(c)
	publishVar.Do(func() {
		expvar.Publish("campaign", expvar.Func(func() any {
			cc := current.Load()
			if cc == nil || cc.Registry == nil {
				return nil
			}
			return cc.Registry.Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, c.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if c == nil || c.Registry == nil {
			http.Error(w, "no campaign", http.StatusNotFound)
			return
		}
		// /metrics served the JSON registry snapshot before it became
		// Prometheus text format (JSON moved to /metrics.json); honor an
		// explicit JSON Accept so pre-migration scrapers keep working.
		if strings.Contains(r.Header.Get("Accept"), "application/json") {
			writeJSON(w, c.Registry.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, c.Registry.Snapshot())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		if c == nil || c.Registry == nil {
			http.Error(w, "no campaign", http.StatusNotFound)
			return
		}
		writeJSON(w, c.Registry.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &StatusServer{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}
	go s.srv.Serve(ln) //nolint:errcheck — Serve returns ErrServerClosed on Close
	return s, nil
}

// Close shuts the listener down. In-flight requests get a short grace
// period; the campaign itself is unaffected.
func (s *StatusServer) Close() error {
	if s == nil {
		return nil
	}
	s.srv.SetKeepAlivesEnabled(false)
	return s.srv.Close()
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck — best-effort status output
}
