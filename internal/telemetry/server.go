package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// current is the campaign the process-wide expvar publication reads
// from; ServeStatus installs its campaign here and Close releases it
// again. expvar.Publish is once-per-name for the process lifetime, so
// the variable indirects through this pointer instead of capturing one
// campaign — and a long-running process that cycles many campaigns
// through ServeStatus retains none of them once their server is closed.
var (
	current    atomic.Pointer[Campaign]
	publishVar sync.Once
)

// DefaultLoopback rewrites a listen address so that an empty address
// or one with a wildcard host ("", ":8080", "0.0.0.0:8080", "[::]:8080")
// binds 127.0.0.1 instead of every interface. Addresses naming a
// concrete host pass through unchanged, as do strings net.SplitHostPort
// cannot parse (net.Listen reports those). Exported so daemons
// embedding their own HTTP listener (cmd/served) share the same
// default-closed posture.
func DefaultLoopback(addr string) string {
	if addr == "" {
		return "127.0.0.1:0"
	}
	if strings.HasPrefix(addr, ":") {
		return "127.0.0.1" + addr
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	switch host {
	case "", "0.0.0.0", "::", "*":
		return net.JoinHostPort("127.0.0.1", port)
	}
	return addr
}

// StatusServer is the live-campaign HTTP endpoint: /progress (campaign
// snapshot JSON), /metrics (Prometheus text format 0.0.4),
// /metrics.json (registry snapshot JSON), /debug/vars (expvar,
// including the campaign registry) and /debug/pprof/*.
//
// Security note: the campaign endpoint is unauthenticated and pprof
// exposes process internals, so ServeStatus binds loopback unless the
// operator explicitly names a concrete interface — "", ":8080",
// "0.0.0.0:8080" and "[::]:8080" all become loopback (see
// DefaultLoopback). ServeStatusExposed is the explicit opt-out.
type StatusServer struct {
	// Addr is the bound address (useful with a ":0" listener).
	Addr string
	srv  *http.Server
	ln   net.Listener
	c    *Campaign
}

// ServeStatus starts the status server for the campaign and returns
// once the listener is bound (the HTTP loop runs in a goroutine).
// Empty and wildcard-host addresses bind loopback.
func ServeStatus(addr string, c *Campaign) (*StatusServer, error) {
	return serveStatus(DefaultLoopback(addr), c)
}

// ServeStatusExposed binds exactly the address given — wildcard hosts
// included. This is the operator's explicit opt-in to exposing the
// unauthenticated campaign endpoints and pprof beyond loopback; put a
// fronting proxy or network policy in between on shared hosts.
func ServeStatusExposed(addr string, c *Campaign) (*StatusServer, error) {
	return serveStatus(addr, c)
}

func serveStatus(addr string, c *Campaign) (*StatusServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: status server: %w", err)
	}
	current.Store(c)
	publishVar.Do(func() {
		expvar.Publish("campaign", expvar.Func(func() any {
			cc := current.Load()
			if cc == nil || cc.Registry == nil {
				return nil
			}
			return cc.Registry.Snapshot()
		}))
	})

	mux := http.NewServeMux()
	ch := CampaignHandler(c)
	mux.Handle("/progress", ch)
	mux.Handle("/metrics", ch)
	mux.Handle("/metrics.json", ch)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &StatusServer{Addr: ln.Addr().String(), srv: newHTTPServer(mux), ln: ln, c: c}
	go s.srv.Serve(ln) //nolint:errcheck — Serve returns ErrServerClosed on Close
	return s, nil
}

// newHTTPServer wraps a handler with the slow-client limits every
// server in this package binds: a slow-loris peer that trickles header
// bytes or parks idle keep-alive connections must not pin a daemon's
// connections forever.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// CampaignHandler serves one campaign's observer endpoints — /progress
// (snapshot JSON), /metrics (Prometheus text, or the JSON registry
// snapshot under an explicit Accept: application/json) and
// /metrics.json — relative to its own mux root. It is the per-campaign
// building block: ServeStatus mounts one for the process campaign, and
// a multi-campaign daemon (internal/serve) mounts one per job under
// /jobs/{id}/.
func CampaignHandler(c *Campaign) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, c.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if c == nil || c.Registry == nil {
			http.Error(w, "no campaign", http.StatusNotFound)
			return
		}
		// /metrics served the JSON registry snapshot before it became
		// Prometheus text format (JSON moved to /metrics.json); honor an
		// explicit JSON Accept so pre-migration scrapers keep working.
		if strings.Contains(r.Header.Get("Accept"), "application/json") {
			writeJSON(w, c.Registry.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, c.Registry.Snapshot())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		if c == nil || c.Registry == nil {
			http.Error(w, "no campaign", http.StatusNotFound)
			return
		}
		writeJSON(w, c.Registry.Snapshot())
	})
	return mux
}

// Close shuts the listener down and releases the campaign installed in
// the process-wide expvar pointer, so /debug/vars renders null instead
// of the dead campaign's registry and the campaign itself becomes
// collectable. The release is a compare-and-swap: when a newer server
// has already installed its own campaign, that one is left alone.
func (s *StatusServer) Close() error {
	if s == nil {
		return nil
	}
	current.CompareAndSwap(s.c, nil)
	s.srv.SetKeepAlivesEnabled(false)
	return s.srv.Close()
}

// writeJSON marshals fully before touching the ResponseWriter: an
// encoding failure (e.g. a NaN that slipped into a float field) must
// surface as a 500, not as a silently truncated 200 body handed to a
// polling client.
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, fmt.Sprintf("telemetry: encode: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n')) //nolint:errcheck — best-effort status output
}
