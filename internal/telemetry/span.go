package telemetry

import (
	"strconv"
	"sync/atomic"
)

// Span journal events. A span journal is ordinary journal JSONL (same
// seq/ts framing, same checker) holding paired events:
//
//	span_start: trace, span, name, proc [, parent] [, rparent] [, attrs…]
//	span_end:   span [, outcome] [, attrs…]
//
// span ids are allocated per Tracer (per process, per file) and are
// only unique within one journal; cross-process links use rparent — the
// raw span id of the parent span in *another* process's journal (the
// coordinator's lease span, carried over the dist wire). cmd/tracer
// keys spans by (file, id) and resolves rparent across the files it is
// given, merging per-process journals into one fleet-wide trace.
const (
	EvSpanStart = "span_start"
	EvSpanEnd   = "span_end"
)

// TraceID derives a deterministic campaign-scoped trace id from the
// strings that define the campaign (FNV-1a over the parts with a
// separator). Every process of one distributed campaign computes the
// same id from the same spec, so per-process span journals agree on
// the trace before the first lease ever crosses the wire.
func TraceID(parts ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime64
		}
		h ^= 0x1f // part separator: ("a","b") ≠ ("ab")
		h *= prime64
	}
	return h
}

// Tracer emits spans into a span journal. It is safe for concurrent
// use (emission serializes on the journal mutex, ids and the trace id
// are atomics) and the hot path — Start / End with fixed-shape fields —
// performs no allocation: lines are built in the journal's reused
// buffer through the closure-free begin/end path.
//
// A nil Tracer is valid and inert, as is the zero Span, so
// instrumented code never branches on whether tracing is configured.
type Tracer struct {
	j     *Journal
	proc  string
	trace atomic.Uint64
	next  atomic.Uint64
}

// NewTracer wraps a span journal. proc labels every span with the
// emitting process (e.g. "injector", "coordinator", "w1"); trace is
// the campaign trace id (see TraceID).
func NewTracer(j *Journal, proc string, trace uint64) *Tracer {
	t := &Tracer{j: j, proc: proc}
	t.trace.Store(trace)
	return t
}

// Trace returns the current trace id.
func (t *Tracer) Trace() uint64 {
	if t == nil {
		return 0
	}
	return t.trace.Load()
}

// TraceHex returns the trace id as the 16-digit hex string used on the
// dist wire ("" on a nil tracer).
func (t *Tracer) TraceHex() string {
	if t == nil {
		return ""
	}
	const digits = "0123456789abcdef"
	var b [16]byte
	v := t.trace.Load()
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// Adopt replaces the trace id with one received over the wire (the
// 16-digit hex form produced by TraceHex). Malformed or empty input is
// ignored: the tracer keeps its locally derived trace.
func (t *Tracer) Adopt(hex string) {
	if t == nil || hex == "" {
		return
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil || v == 0 {
		return
	}
	t.trace.Store(v)
}

// Span is a handle to an open span. It is a two-word value — pass it
// by value, store it in structs, send it across goroutines. The zero
// Span is valid and inert.
type Span struct {
	t  *Tracer
	id uint64
}

// Valid reports whether the span is live (was started by a tracer).
func (s Span) Valid() bool { return s.t != nil && s.id != 0 }

// ID returns the span's journal-local id (0 for the zero span). This
// is the value carried as rparent by remote children.
func (s Span) ID() uint64 { return s.id }

// in returns the span's id when it belongs to tracer t, else 0 — a
// span from another tracer cannot be a local parent.
func (s Span) in(t *Tracer) uint64 {
	if s.t == t {
		return s.id
	}
	return 0
}

// start is the single emission path. parent/rparent are raw ids (0 =
// absent); intKey/intVal carry one fixed integer attribute without a
// closure; attrs, when non-nil, appends further fields (cold paths
// only — the func value allocates).
func (t *Tracer) start(name string, parent, rparent uint64, intKey string, intVal int64, attrs func(*Enc)) Span {
	if t == nil || t.j == nil {
		return Span{}
	}
	id := t.next.Add(1)
	e := t.j.begin(EvSpanStart)
	e.Hex("trace", t.trace.Load())
	e.Uint("span", id)
	if parent != 0 {
		e.Uint("parent", parent)
	}
	if rparent != 0 {
		e.Uint("rparent", rparent)
	}
	e.Str("name", name)
	e.Str("proc", t.proc)
	if intKey != "" {
		e.Int(intKey, intVal)
	}
	if attrs != nil {
		t.j.guard(e, attrs)
	}
	t.j.end(e)
	return Span{t: t, id: id}
}

// Start opens a span under parent (pass the zero Span for a root).
func (t *Tracer) Start(name string, parent Span) Span {
	if t == nil {
		return Span{}
	}
	return t.start(name, parent.in(t), 0, "", 0, nil)
}

// StartAttrs opens a span with extra attributes (cold paths: the attrs
// closure allocates).
func (t *Tracer) StartAttrs(name string, parent Span, attrs func(*Enc)) Span {
	if t == nil {
		return Span{}
	}
	return t.start(name, parent.in(t), 0, "", 0, attrs)
}

// end is the single close path; outcome "" is omitted.
func (s Span) end(outcome string, attrs func(*Enc)) {
	if s.t == nil || s.t.j == nil || s.id == 0 {
		return
	}
	e := s.t.j.begin(EvSpanEnd)
	e.Uint("span", s.id)
	if outcome != "" {
		e.Str("outcome", outcome)
	}
	if attrs != nil {
		s.t.j.guard(e, attrs)
	}
	s.t.j.end(e)
}

// End closes the span. Closing the zero Span is a no-op; closing a
// span twice writes two span_end events and is a caller bug that
// tools/checkjournal flags.
func (s Span) End() { s.end("", nil) }

// EndOutcome closes the span with an outcome label (allocation-free).
func (s Span) EndOutcome(outcome string) { s.end(outcome, nil) }

// EndAttrs closes the span with extra attributes (cold paths).
func (s Span) EndAttrs(attrs func(*Enc)) { s.end("", attrs) }

// ---- Campaign integration -------------------------------------------------
//
// The Campaign hub carries one optional Tracer plus two ambient span
// ids: the trace root (the enclosing campaign/worker-lease span) and
// the current phase span. Instrumented code starts child spans under
// the ambient parent without threading Span values through every call.

// SetTraceRoot installs sp as the ambient root: spans started through
// the hub with no open phase parent under it. The dist worker re-roots
// around each lease so experiment spans nest under the worker-lease
// span; pass the previous root back to restore it.
func (c *Campaign) SetTraceRoot(sp Span) {
	if c == nil {
		return
	}
	c.rootSpan.Store(sp.in(c.Tracer))
}

// TraceRoot returns the ambient root span (zero when none is set).
func (c *Campaign) TraceRoot() Span {
	if c == nil || c.Tracer == nil {
		return Span{}
	}
	return Span{t: c.Tracer, id: c.rootSpan.Load()}
}

// TraceContext returns the wire form of the trace context — the hex
// trace id — and whether tracing is live on this hub.
func (c *Campaign) TraceContext() (trace string, ok bool) {
	if c == nil || c.Tracer == nil {
		return "", false
	}
	return c.Tracer.TraceHex(), true
}

// ambient returns the current ambient parent id: the open phase span
// when there is one, else the root.
func (c *Campaign) ambient() uint64 {
	if p := c.phaseSpan.Load(); p != 0 {
		return p
	}
	return c.rootSpan.Load()
}

// PhaseDone closes the open phase span, if any. Phase() does this
// implicitly when the next phase starts; call PhaseDone at the end of
// the last phase (Summary does).
func (c *Campaign) PhaseDone() {
	if c == nil || c.Tracer == nil {
		return
	}
	if old := c.phaseSpan.Swap(0); old != 0 {
		Span{t: c.Tracer, id: old}.End()
	}
}

// StartSpan opens a span under the ambient parent. Nil-safe; returns
// the zero Span when the hub has no tracer.
func (c *Campaign) StartSpan(name string) Span {
	if c == nil || c.Tracer == nil {
		return Span{}
	}
	return c.Tracer.start(name, c.ambient(), 0, "", 0, nil)
}

// StartSpanInt opens a span under the ambient parent with one integer
// attribute, without allocating.
func (c *Campaign) StartSpanInt(name, key string, v int64) Span {
	if c == nil || c.Tracer == nil {
		return Span{}
	}
	return c.Tracer.start(name, c.ambient(), 0, key, v, nil)
}

// StartSpanAttrs opens a span under the ambient parent with arbitrary
// attributes (cold paths).
func (c *Campaign) StartSpanAttrs(name string, attrs func(*Enc)) Span {
	if c == nil || c.Tracer == nil {
		return Span{}
	}
	return c.Tracer.start(name, c.ambient(), 0, "", 0, attrs)
}

// StartRemoteSpan opens a span whose parent lives in another process's
// journal: trace is the wire trace id to adopt (may be ""), rparent
// the remote parent's span id (0 = none). Used by the dist worker to
// parent its lease span under the coordinator's.
func (c *Campaign) StartRemoteSpan(name, trace string, rparent uint64, attrs func(*Enc)) Span {
	if c == nil || c.Tracer == nil {
		return Span{}
	}
	c.Tracer.Adopt(trace)
	return c.Tracer.start(name, 0, rparent, "", 0, attrs)
}
