package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SystemClock is the wall clock for binaries (cmd/injector). Library
// and report-feeding code must inject a clock instead of sampling one;
// telemetry output is out-of-band by design, which is why this single
// sampling point is exempt from the determinism linter.
func SystemClock() time.Time {
	return time.Now() //det:allow telemetry is out-of-band; reports never see this
}

// Campaign aggregates one process's campaign telemetry: the metric
// registry, the optional JSONL journal and the rate bookkeeping behind
// progress snapshots. Every method is safe on a nil receiver — the
// engine instruments its hot paths unconditionally and a nil *Campaign
// (telemetry off) costs one pointer check per call.
type Campaign struct {
	// Registry holds the campaign metrics; see campaign.go for the
	// names the engine populates.
	Registry *Registry
	// Journal receives lifecycle events (nil = no journal).
	Journal *Journal
	// Clock drives timestamps, rates and ETA (nil = no wall-clock
	// telemetry; counters and journal still work).
	Clock func() time.Time
	// Tracer, when set, receives spans from the instrumented layers
	// (nil = tracing off; every span hook is a no-op). See span.go.
	Tracer *Tracer

	// Ambient span parents (ids in Tracer's journal): the trace root
	// (campaign or worker-lease span) and the open phase span.
	rootSpan  atomic.Uint64
	phaseSpan atomic.Uint64

	// Pre-resolved hot-path handles.
	expStarted  *Counter
	expDone     *Counter
	retries     *Counter
	quarantined *Counter
	ckptWrites  *Counter
	ckptLoads   *Counter
	simCycles   *Counter
	faultsDone  *Counter
	simPasses   *Counter
	mismatches  *Counter
	inFlight    *Gauge
	workers     *Gauge
	planTotal   *Gauge
	preloaded   *Gauge
	deviatedH   *Histogram
	expWallH    *Histogram
	batches     *Counter
	lanesActive *Gauge
	laneOccH    *Histogram
	collapsed   *Counter
	staticPrune *Counter
	inherited   *Counter
	leasesOut   *Counter
	leasesExp   *Counter
	workerRetry *Counter
	rangesQuar  *Counter
	distWorkers *Gauge
	rangeDurH   *Histogram
	rangeRowsH  *Histogram

	mu       sync.Mutex
	outcomes map[string]*Counter
	started  time.Time // first PlanBuilt with a clock
}

// NewCampaign builds a campaign telemetry hub. journal and clock may
// each be nil; with both nil the campaign is a pure in-memory metric
// sink (the no-op-sink configuration of BenchmarkE18).
func NewCampaign(journal *Journal, clock func() time.Time) *Campaign {
	r := NewRegistry()
	return &Campaign{
		Registry:    r,
		Journal:     journal,
		Clock:       clock,
		expStarted:  r.Counter("exp_started"),
		expDone:     r.Counter("exp_done"),
		retries:     r.Counter("retries"),
		quarantined: r.Counter("quarantined"),
		ckptWrites:  r.Counter("checkpoint_writes"),
		ckptLoads:   r.Counter("checkpoint_loads"),
		simCycles:   r.Counter("sim_cycles"),
		faultsDone:  r.Counter("faults_simulated"),
		simPasses:   r.Counter("faultsim_passes"),
		mismatches:  r.Counter("mismatch_points"),
		inFlight:    r.Gauge("exp_in_flight"),
		workers:     r.Gauge("workers"),
		planTotal:   r.Gauge("plan_total"),
		preloaded:   r.Gauge("preloaded"),
		deviatedH:   r.Histogram("deviated_points", 0, 1, 2, 4, 8, 16, 32),
		expWallH:    r.Histogram("exp_wall_us", 100, 1000, 10_000, 100_000, 1_000_000, 10_000_000),
		batches:     r.Counter("batches"),
		lanesActive: r.Gauge("lanes_active"),
		laneOccH:    r.Histogram("lane_occupancy", 1, 2, 4, 8, 16, 32, 64),
		collapsed:   r.Counter("faults_collapsed"),
		staticPrune: r.Counter("faults_static_pruned"),
		inherited:   r.Counter("outcomes_inherited"),
		leasesOut:   r.Counter("leases_issued"),
		leasesExp:   r.Counter("leases_expired"),
		workerRetry: r.Counter("worker_retries"),
		rangesQuar:  r.Counter("ranges_quarantined"),
		distWorkers: r.Gauge("workers_active"),
		rangeDurH:   r.Histogram("range_duration_ms", 1, 10, 100, 1000, 10_000, 60_000),
		rangeRowsH:  r.Histogram("range_rows", 1, 2, 4, 8, 16, 32, 64, 128, 256),
		outcomes:    map[string]*Counter{},
	}
}

// now returns the clock's time, or the zero time without a clock.
func (c *Campaign) now() time.Time {
	if c == nil || c.Clock == nil {
		return time.Time{}
	}
	return c.Clock()
}

// PlanBuilt marks the start of one campaign run: the plan size, the
// worker count and the plan fingerprint. Called once per Run/
// RunParallel invocation; the plan_total gauge accumulates across
// campaigns sharing the hub (e.g. zone + wide campaigns of core.Run).
func (c *Campaign) PlanBuilt(total, workers int, planHash uint64) {
	if c == nil {
		return
	}
	c.planTotal.Add(int64(total))
	c.workers.Set(int64(workers))
	if c.Clock != nil {
		c.mu.Lock()
		if c.started.IsZero() {
			c.started = c.Clock()
		}
		c.mu.Unlock()
	}
	c.Journal.Emit(EvCampaignStart, func(e *Enc) {
		e.Int("total", int64(total))
		e.Int("workers", int64(workers))
		e.Hex("plan_hash", planHash)
	})
}

// Phase records a flow phase transition (core.Run, cmd/injector). With
// a tracer it also closes the previous phase span and opens a new one
// under the trace root.
func (c *Campaign) Phase(name string) {
	if c == nil {
		return
	}
	c.Journal.Emit(EvPhase, func(e *Enc) { e.Str("name", name) })
	if c.Tracer != nil {
		if old := c.phaseSpan.Swap(0); old != 0 {
			Span{t: c.Tracer, id: old}.End()
		}
		sp := c.Tracer.start(name, c.rootSpan.Load(), 0, "", 0, nil)
		c.phaseSpan.Store(sp.id)
	}
}

// ExpTicket carries one running experiment's start context from
// ExpStart to ExpFinish: the start time (zero without a clock) and the
// experiment span (zero without a tracer). A two-word value, cheap to
// hold per lane.
type ExpTicket struct {
	Start time.Time
	Span  Span
}

// ExpStart marks one experiment entering a worker and returns the
// ticket ExpFinish closes. The experiment span parents under the
// ambient phase span (or trace root).
func (c *Campaign) ExpStart(planIndex int) ExpTicket {
	if c == nil {
		return ExpTicket{}
	}
	c.expStarted.Inc()
	c.inFlight.Add(1)
	c.Journal.Emit(EvExpStart, func(e *Enc) { e.Int("i", int64(planIndex)) })
	tk := ExpTicket{Start: c.now()}
	if c.Tracer != nil {
		tk.Span = c.Tracer.start("exp", c.ambient(), 0, "i", int64(planIndex), nil)
	}
	return tk
}

// ExpFinish marks one experiment verdict: its outcome label, the SENS
// monitor, deviation fan-out and first deviation cycle. tk is the
// ExpStart return value; its span is closed with the outcome.
func (c *Campaign) ExpFinish(planIndex int, outcome string, sens bool, deviated, firstDev int, tk ExpTicket) {
	if c == nil {
		return
	}
	c.expDone.Inc()
	c.inFlight.Add(-1)
	c.outcomeCounter(outcome).Inc()
	c.mismatches.Add(int64(deviated))
	c.deviatedH.Observe(int64(deviated))
	if c.Clock != nil && !tk.Start.IsZero() {
		c.expWallH.Observe(c.Clock().Sub(tk.Start).Microseconds())
	}
	c.Journal.Emit(EvExpFinish, func(e *Enc) {
		e.Int("i", int64(planIndex))
		e.Str("outcome", outcome)
		e.Bool("sens", sens)
		e.Int("deviated", int64(deviated))
		e.Int("first_dev", int64(firstDev))
	})
	tk.Span.EndOutcome(outcome)
}

// Retry records one failed attempt that will be retried.
func (c *Campaign) Retry(planIndex, attempt int, err string) {
	if c == nil {
		return
	}
	c.retries.Inc()
	c.Journal.Emit(EvRetry, func(e *Enc) {
		e.Int("i", int64(planIndex))
		e.Int("attempt", int64(attempt))
		e.Str("err", err)
	})
}

// Quarantine records one experiment isolated after exhausting retries.
func (c *Campaign) Quarantine(planIndex, attempts int, err string) {
	if c == nil {
		return
	}
	c.quarantined.Inc()
	c.inFlight.Add(-1)
	c.expDone.Inc()
	c.Journal.Emit(EvQuarantine, func(e *Enc) {
		e.Int("i", int64(planIndex))
		e.Int("attempts", int64(attempts))
		e.Str("err", err)
	})
}

// CheckpointWrite records one checkpoint landing on disk.
func (c *Campaign) CheckpointWrite(completed int) {
	if c == nil {
		return
	}
	c.ckptWrites.Inc()
	c.Journal.Emit(EvCheckpointSave, func(e *Enc) { e.Int("completed", int64(completed)) })
}

// CheckpointLoad records a resume preloading completed results. The
// preloaded experiments count as done (they are completed plan rows) —
// the preloaded gauge lets rate math exclude them from exp/s.
func (c *Campaign) CheckpointLoad(results, quarantined int) {
	if c == nil {
		return
	}
	c.ckptLoads.Inc()
	c.preloaded.Set(int64(results + quarantined))
	c.expDone.Add(int64(results + quarantined))
	c.quarantined.Add(int64(quarantined))
	c.Journal.Emit(EvCheckpointLoad, func(e *Enc) {
		e.Int("results", int64(results))
		e.Int("quarantined", int64(quarantined))
	})
}

// BatchStart marks one word-parallel lane batch being claimed by a
// worker: the batches counter, the lane-occupancy histogram (how full
// the 64-lane word was) and the lanes_active gauge. The journal still
// records per-experiment lifecycle, which batches preserve; with a
// tracer the returned batch span (lanes attribute) lets cmd/tracer
// weight kernel time by lane occupancy.
func (c *Campaign) BatchStart(lanes int) Span {
	if c == nil {
		return Span{}
	}
	c.batches.Inc()
	c.laneOccH.Observe(int64(lanes))
	c.lanesActive.Add(int64(lanes))
	if c.Tracer != nil {
		return c.Tracer.start("batch", c.ambient(), 0, "lanes", int64(lanes), nil)
	}
	return Span{}
}

// BatchDone marks a lane batch leaving its worker and closes its span.
func (c *Campaign) BatchDone(sp Span, lanes int) {
	if c == nil {
		return
	}
	c.lanesActive.Add(int64(-lanes))
	sp.End()
}

// AddSimCycles accumulates simulated cycles (golden + faulty runs).
func (c *Campaign) AddSimCycles(n int64) {
	if c == nil {
		return
	}
	c.simCycles.Add(n)
}

// AddFaultsSimulated accumulates gate-level fault-simulation work: one
// PPSFP pass covering n faults.
func (c *Campaign) AddFaultsSimulated(n int64) {
	if c == nil {
		return
	}
	c.simPasses.Inc()
	c.faultsDone.Add(n)
}

// CollapsePlan records the outcome of the static pre-pass over one
// plan: pruned rows were classified without simulation (unobservable,
// untestable or golden-quiescent), collapsed rows will inherit a
// representative's result during the merge. Metrics only — the journal
// schema is unchanged, and the stdout report never sees these numbers.
func (c *Campaign) CollapsePlan(pruned, collapsed int) {
	if c == nil {
		return
	}
	c.staticPrune.Add(int64(pruned))
	c.collapsed.Add(int64(collapsed))
	c.expDone.Add(int64(pruned))
}

// OutcomeInherited records one result row filled by copying a
// simulated representative's outcome through the expansion table.
func (c *Campaign) OutcomeInherited() {
	if c == nil {
		return
	}
	c.inherited.Inc()
	c.expDone.Inc()
}

// CollapseFaults records the static pre-pass outcome of one gate-level
// fault-simulation campaign: pruned faults were proven undetectable
// without simulation, collapsed faults inherited a representative's
// verdict. Unlike CollapsePlan this does not touch experiment
// progress — fault-simulation throughput is AddFaultsSimulated's.
func (c *Campaign) CollapseFaults(pruned, collapsed int) {
	if c == nil {
		return
	}
	c.staticPrune.Add(int64(pruned))
	c.collapsed.Add(int64(collapsed))
	c.inherited.Add(int64(collapsed))
}

// LeaseIssued records one range lease handed to a worker (or taken by
// the coordinator's local-fallback runner). Metrics only — the
// distributed layer is scheduling, not campaign semantics, so the
// journal schema is untouched.
func (c *Campaign) LeaseIssued() {
	if c == nil {
		return
	}
	c.leasesOut.Inc()
}

// LeaseExpired records one lease revoked because its TTL lapsed
// without a heartbeat (dead or wedged worker).
func (c *Campaign) LeaseExpired() {
	if c == nil {
		return
	}
	c.leasesExp.Inc()
}

// WorkerRetry records one leased range thrown back on the pending
// queue after its worker failed, vanished or timed out.
func (c *Campaign) WorkerRetry() {
	if c == nil {
		return
	}
	c.workerRetry.Inc()
}

// RangeQuarantined records one plan range abandoned after exhausting
// its lease attempts; every row in it is counted dangerous-undetected.
func (c *Campaign) RangeQuarantined() {
	if c == nil {
		return
	}
	c.rangesQuar.Inc()
}

// WorkerJoined moves the workers_active gauge up when a worker
// completes its hello handshake.
func (c *Campaign) WorkerJoined() {
	if c == nil {
		return
	}
	c.distWorkers.Add(1)
}

// WorkerLeft moves the workers_active gauge down when a worker
// disconnects or is declared dead.
func (c *Campaign) WorkerLeft() {
	if c == nil {
		return
	}
	c.distWorkers.Add(-1)
}

// RangeDone records one leased plan range completing: its row count
// and its observed lease duration. These histograms are what the
// coordinator's latency-driven adaptive lease sizing reads back, and
// what /metrics exposes as range_duration_ms / range_rows.
func (c *Campaign) RangeDone(rows int, d time.Duration) {
	if c == nil {
		return
	}
	c.rangeRowsH.Observe(int64(rows))
	c.rangeDurH.Observe(d.Milliseconds())
}

// Summary emits the end-of-campaign journal event from the live
// counters and closes the open phase span, if any.
func (c *Campaign) Summary() {
	if c == nil {
		return
	}
	c.PhaseDone()
	c.Journal.Emit(EvSummary, func(e *Enc) {
		e.Int("done", c.expDone.Load())
		e.Int("total", c.planTotal.Load())
		e.Int("retries", c.retries.Load())
		e.Int("quarantined", c.quarantined.Load())
		e.Int("checkpoints", c.ckptWrites.Load())
		e.Int("sim_cycles", c.simCycles.Load())
		c.mu.Lock()
		names := make([]string, 0, len(c.outcomes))
		for name := range c.outcomes { //det:order collecting before sort
			names = append(names, name)
		}
		c.mu.Unlock()
		sort.Strings(names)
		for _, name := range names {
			e.Int("n_"+sanitizeKey(name), c.outcomeCounter(name).Load())
		}
	})
}

// outcomeCounter returns the per-outcome counter, creating
// "exp_outcome_<label>" in the registry on first use.
func (c *Campaign) outcomeCounter(outcome string) *Counter {
	c.mu.Lock()
	ctr, ok := c.outcomes[outcome]
	if !ok {
		ctr = c.Registry.Counter("exp_outcome_" + sanitizeKey(outcome))
		c.outcomes[outcome] = ctr
	}
	c.mu.Unlock()
	return ctr
}

// sanitizeKey maps an outcome label onto a metric-name-safe token.
func sanitizeKey(s string) string {
	b := []byte(s)
	for i, ch := range b {
		switch {
		case ch >= 'a' && ch <= 'z', ch >= '0' && ch <= '9', ch == '_':
		case ch >= 'A' && ch <= 'Z':
			b[i] = ch + 'a' - 'A'
		default:
			b[i] = '_'
		}
	}
	return string(b)
}
