package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterGaugeConcurrent hammers one counter and gauge from many
// goroutines and checks the totals.
func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
	if g.Load() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Load())
	}
	if r.Counter("c") != c {
		t.Fatal("get-or-create returned a different counter")
	}
}

// TestHistogramBuckets pins bucket edges: bounds are inclusive upper
// edges with one overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 4, 16)
	for _, v := range []int64{0, 1, 2, 4, 5, 16, 17, 1000} {
		h.Observe(v)
	}
	got := h.Buckets()
	want := []Bucket{{Le: 1, N: 2}, {Le: 4, N: 2}, {Le: 16, N: 2}, {Le: -1, N: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
	if h.Count() != 8 || h.Sum() != 1045 {
		t.Fatalf("count/sum = %d/%d, want 8/1045", h.Count(), h.Sum())
	}
}

// TestRegistrySnapshotStable asserts two snapshots of the same state
// render to identical JSON — the byte-stability the expvar and
// /metrics endpoints rely on.
func TestRegistrySnapshotStable(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Add(3)
		r.Gauge("g_" + name).Set(7)
	}
	r.Histogram("h", 1, 2).Observe(5)
	a, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("snapshots differ:\n%s\n%s", a, b)
	}
	wantNames := []string{"alpha", "g_alpha", "g_mid", "g_zeta", "h", "mid", "zeta"}
	if got := r.Names(); !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("names = %v, want %v", got, wantNames)
	}
}

// TestCampaignNilSafe calls every hook on a nil campaign; the layer
// must be inert, not crashing.
func TestCampaignNilSafe(t *testing.T) {
	var c *Campaign
	c.PlanBuilt(10, 2, 42)
	c.Phase("x")
	start := c.ExpStart(0)
	c.ExpFinish(0, "silent", false, 0, -1, start)
	c.Retry(1, 2, "boom")
	c.Quarantine(1, 3, "boom")
	c.CheckpointWrite(5)
	c.CheckpointLoad(3, 1)
	c.AddSimCycles(100)
	c.AddFaultsSimulated(63)
	c.Summary()
	if snap := c.Snapshot(); snap.Done != 0 || snap.ETASec != -1 {
		t.Fatalf("nil snapshot = %+v", snap)
	}
	var j *Journal
	j.Emit("x", nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var rep *Reporter
	rep.Stop()
}

// TestCampaignCountersAndSnapshot drives a small synthetic campaign
// through the hooks and checks the derived snapshot.
func TestCampaignCountersAndSnapshot(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := NewCampaign(nil, clock)
	c.PlanBuilt(4, 2, 0xabcd)
	for i := 0; i < 3; i++ {
		st := c.ExpStart(i)
		now = now.Add(500 * time.Millisecond)
		c.ExpFinish(i, "silent", true, 2, 7, st)
	}
	c.Retry(3, 1, "x")
	st := c.ExpStart(3)
	c.Quarantine(3, 2, "x")
	_ = st
	c.CheckpointWrite(4)

	s := c.Snapshot()
	if s.Done != 4 || s.Total != 4 || s.Retries != 1 || s.Quarantined != 1 || s.Checkpoints != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.InFlight != 0 {
		t.Fatalf("in-flight = %d, want 0", s.InFlight)
	}
	if s.Outcomes["silent"] != 3 {
		t.Fatalf("outcomes = %v", s.Outcomes)
	}
	if s.ExpPerSec <= 0 || s.ElapsedSec <= 0 {
		t.Fatalf("rates not computed: %+v", s)
	}
	if s.ETASec != -1 {
		t.Fatalf("ETA = %v for a finished campaign, want -1", s.ETASec)
	}
	if !strings.Contains(s.Line(), "4/4 exp (100.0%)") {
		t.Fatalf("line = %q", s.Line())
	}
	if got := c.Registry.Counter("exp_outcome_silent").Load(); got != 3 {
		t.Fatalf("exp_outcome_silent = %d, want 3", got)
	}
}

// TestReporter runs the periodic reporter against an injected clock
// campaign and checks that progress lines land on the writer.
func TestReporter(t *testing.T) {
	c := NewCampaign(nil, nil)
	c.PlanBuilt(2, 1, 1)
	st := c.ExpStart(0)
	c.ExpFinish(0, "silent", false, 0, -1, st)
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	r := StartReporter(w, c, time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	r.Stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "progress: 1/2 exp (50.0%)") {
		t.Fatalf("reporter output missing progress line:\n%s", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestStatusServer boots the server on an ephemeral loopback port and
// exercises /progress, /metrics, /debug/vars and the pprof index.
func TestStatusServer(t *testing.T) {
	c := NewCampaign(nil, nil)
	c.PlanBuilt(3, 1, 9)
	st := c.ExpStart(0)
	c.ExpFinish(0, "dangerous-undetected", true, 3, 12, st)

	s, err := ServeStatus("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.HasPrefix(s.Addr, "127.0.0.1:") {
		t.Fatalf("bound %q, want loopback", s.Addr)
	}

	get := func(path string) []byte {
		resp, err := http.Get("http://" + s.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/progress"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Done != 1 || snap.Total != 3 {
		t.Fatalf("/progress = %+v", snap)
	}
	var reg RegistrySnapshot
	if err := json.Unmarshal(get("/metrics.json"), &reg); err != nil {
		t.Fatal(err)
	}
	if reg.Counters["exp_done"] != 1 {
		t.Fatalf("/metrics.json counters = %v", reg.Counters)
	}
	prom := string(get("/metrics"))
	for _, want := range []string{
		"# TYPE campaign_exp_done counter\ncampaign_exp_done 1\n",
		"# TYPE campaign_exp_wall_us histogram\n",
		`campaign_deviated_points_bucket{le="+Inf"} 1`,
		"campaign_deviated_points_count 1",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom)
		}
	}
	// Pre-Prometheus scrapers of /metrics that ask for JSON explicitly
	// still get the registry snapshot.
	req, err := http.NewRequest("GET", "http://"+s.Addr+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	negotiated, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	reg = RegistrySnapshot{}
	if err := json.Unmarshal(negotiated, &reg); err != nil {
		t.Fatalf("/metrics with Accept: application/json is not JSON: %v\n%s", err, negotiated)
	}
	if reg.Counters["exp_done"] != 1 {
		t.Fatalf("negotiated /metrics counters = %v", reg.Counters)
	}

	if !strings.Contains(string(get("/debug/vars")), `"campaign"`) {
		t.Fatal("/debug/vars missing the campaign expvar")
	}
	if !strings.Contains(string(get("/debug/pprof/")), "goroutine") {
		t.Fatal("/debug/pprof/ index not served")
	}
}

// TestServeStatusLoopbackDefault: a bare ":port" must bind loopback,
// never the wildcard interface.
func TestServeStatusLoopbackDefault(t *testing.T) {
	s, err := ServeStatus(":0", NewCampaign(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !strings.HasPrefix(s.Addr, "127.0.0.1:") {
		t.Fatalf("addr %q: bare :port must bind 127.0.0.1", s.Addr)
	}
}

func ExampleSnapshot_Line() {
	s := Snapshot{Done: 5, Total: 10, Workers: 2, InFlight: 2, ETASec: -1}
	fmt.Println(s.Line())
	// Output: progress: 5/10 exp (50.0%) | workers 2/2 busy | retries 0 quarantined 0 ckpts 0
}
