package telemetry

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestJournalEventStream drives one synthetic campaign through a
// journal and validates every line as JSON with the expected fields,
// sequence numbers and timestamps.
func TestJournalEventStream(t *testing.T) {
	var sb strings.Builder
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	j := NewJournal(&sb, func() time.Time { return now })
	c := NewCampaign(j, func() time.Time { return now })

	c.Phase("golden")
	c.PlanBuilt(2, 1, 0xdeadbeef)
	st := c.ExpStart(0)
	c.ExpFinish(0, "detected-safe", true, 1, 42, st)
	c.Retry(1, 1, `panic: "quoted"`+"\nnewline")
	c.Quarantine(1, 2, "gave up")
	c.CheckpointWrite(2)
	c.Summary()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	wantEv := []string{
		EvPhase, EvCampaignStart, EvExpStart, EvExpFinish, EvRetry,
		EvQuarantine, EvCheckpointSave, EvSummary,
	}
	if len(lines) != len(wantEv) {
		t.Fatalf("journal has %d lines, want %d:\n%s", len(lines), len(wantEv), sb.String())
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if got := m["ev"]; got != wantEv[i] {
			t.Fatalf("line %d ev = %v, want %s", i+1, got, wantEv[i])
		}
		if got := m["seq"]; got != float64(i+1) {
			t.Fatalf("line %d seq = %v, want %d", i+1, got, i+1)
		}
		if got := m["ts"]; got != "2026-08-05T12:00:00Z" {
			t.Fatalf("line %d ts = %v", i+1, got)
		}
	}

	var fin map[string]any
	if err := json.Unmarshal([]byte(lines[3]), &fin); err != nil {
		t.Fatal(err)
	}
	if fin["outcome"] != "detected-safe" || fin["sens"] != true || fin["first_dev"] != float64(42) {
		t.Fatalf("exp_finish fields = %v", fin)
	}
	var retry map[string]any
	if err := json.Unmarshal([]byte(lines[4]), &retry); err != nil {
		t.Fatalf("retry line with escaped error is invalid JSON: %v", err)
	}
	if retry["err"] != `panic: "quoted"`+"\nnewline" {
		t.Fatalf("retry err round-trip = %q", retry["err"])
	}
	var sum map[string]any
	if err := json.Unmarshal([]byte(lines[7]), &sum); err != nil {
		t.Fatal(err)
	}
	if sum["done"] != float64(2) || sum["quarantined"] != float64(1) || sum["n_detected_safe"] != float64(1) {
		t.Fatalf("summary fields = %v", sum)
	}
}

// TestJournalNoClockOmitsTS: without a clock no ts field may appear —
// the deterministic-journal configuration used by the neutrality test.
func TestJournalNoClockOmitsTS(t *testing.T) {
	var sb strings.Builder
	j := NewJournal(&sb, nil)
	j.Emit(EvPhase, func(e *Enc) { e.Str("name", "x") })
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `"ts"`) {
		t.Fatalf("clockless journal emitted a timestamp: %s", sb.String())
	}
	if want := `{"seq":1,"ev":"phase","name":"x"}` + "\n"; sb.String() != want {
		t.Fatalf("line = %q, want %q", sb.String(), want)
	}
}

// TestOpenJournalFile round-trips a journal through a real file.
func TestOpenJournalFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(EvSummary, func(e *Enc) { e.Int("done", 1) })
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	n := 0
	for sc.Scan() {
		n++
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad line: %v", err)
		}
	}
	if n != 1 {
		t.Fatalf("file has %d lines, want 1", n)
	}
}

// TestJournalConcurrentEmit: concurrent emitters must produce whole,
// valid lines with a strictly monotonic seq (order across goroutines
// is unspecified, but no line may tear or repeat a seq).
func TestJournalConcurrentEmit(t *testing.T) {
	var mu sync.Mutex
	var sb strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	j := NewJournal(w, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				j.Emit(EvExpStart, func(e *Enc) { e.Int("i", int64(g*100+i)) })
			}
		}(g)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("%d lines, want 800", len(lines))
	}
	seen := map[float64]bool{}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("torn line %q: %v", line, err)
		}
		seq := m["seq"].(float64)
		if seen[seq] {
			t.Fatalf("seq %v repeated", seq)
		}
		seen[seq] = true
	}
	for i := 1; i <= 800; i++ {
		if !seen[float64(i)] {
			t.Fatalf("seq %d missing", i)
		}
	}
}

// TestEmitPanicReleasesJournal: a fields/attrs closure that panics
// mid-line must not wedge the journal — the half-built line (corrupt
// JSON by construction) is discarded, the sequence number reclaimed
// and the mutex released, so the panic propagates to the caller while
// every later emit still works.
func TestEmitPanicReleasesJournal(t *testing.T) {
	var sb strings.Builder
	j := NewJournal(&sb, nil)
	tr := NewTracer(j, "p", 0xab)

	mustPanic := func(what string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: panic did not propagate", what)
			}
		}()
		fn()
	}
	mustPanic("Emit", func() {
		j.Emit(EvPhase, func(e *Enc) { e.Str("name", "doomed"); panic("boom") })
	})
	mustPanic("StartAttrs", func() {
		tr.StartAttrs("doomed", Span{}, func(e *Enc) { panic("boom") })
	})
	mustPanic("EndAttrs", func() {
		tr.Start("x", Span{}).EndAttrs(func(e *Enc) { panic("boom") })
	})

	// The journal is still healthy: next emit succeeds and the stream
	// holds only complete lines with contiguous seqs.
	j.Emit(EvPhase, func(e *Enc) { e.Str("name", "after") })
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("torn line %q: %v", line, err)
		}
		if seq := m["seq"].(float64); seq != float64(i+1) {
			t.Fatalf("line %d has seq %v, want %d (aborted lines must reclaim their seq)", i, seq, i+1)
		}
		if name, _ := m["name"].(string); name == "doomed" {
			t.Fatalf("aborted line was written: %q", line)
		}
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"name":"after"`) {
		t.Fatalf("post-panic emit missing, last line %q", last)
	}
}
