package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestDefaultLoopback: empty and wildcard-host addresses rewrite to
// loopback; concrete hosts and unparseable strings pass through.
func TestDefaultLoopback(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", "127.0.0.1:0"},
		{":0", "127.0.0.1:0"},
		{":8080", "127.0.0.1:8080"},
		{"0.0.0.0:9090", "127.0.0.1:9090"},
		{"[::]:9090", "127.0.0.1:9090"},
		{"*:7070", "127.0.0.1:7070"},
		{"127.0.0.1:8080", "127.0.0.1:8080"},
		{"192.168.1.5:80", "192.168.1.5:80"},
		{"localhost:80", "localhost:80"},
		{"[fe80::1]:80", "[fe80::1]:80"},
		{"not-an-addr", "not-an-addr"}, // net.Listen reports the error
	} {
		if got := DefaultLoopback(tc.in); got != tc.want {
			t.Errorf("DefaultLoopback(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestServeStatusSequentialLifecycles runs two full ServeStatus
// lifecycles in one process: each server must expose its own campaign's
// /progress and expvar snapshot, and Close must release the process-wide
// campaign pointer so /debug/vars renders null instead of retaining the
// dead campaign — while a Close racing a newer server leaves the newer
// campaign installed.
func TestServeStatusSequentialLifecycles(t *testing.T) {
	expDone := func(t *testing.T, addr string, path string) int64 {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var snap Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatalf("GET %s: %v\n%s", path, err, body)
		}
		return snap.Done
	}
	vars := func(t *testing.T, addr string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + "/debug/vars")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// Lifecycle 1.
	c1 := NewCampaign(nil, nil)
	c1.PlanBuilt(5, 1, 9)
	st := c1.ExpStart(0)
	c1.ExpFinish(0, "safe-detected", false, 1, 4, st)
	s1, err := ServeStatus("127.0.0.1:0", c1)
	if err != nil {
		t.Fatal(err)
	}
	if got := expDone(t, s1.Addr, "/progress"); got != 1 {
		t.Fatalf("lifecycle 1 /progress done = %d, want 1", got)
	}
	if v := vars(t, s1.Addr); !strings.Contains(v, `"exp_done":1`) {
		t.Fatalf("lifecycle 1 /debug/vars missing campaign counters:\n%s", v)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if got := current.Load(); got != nil {
		t.Fatal("Close left the process-wide campaign pointer installed")
	}

	// Lifecycle 2: a fresh campaign on a fresh server; the old
	// campaign's counts must not bleed through the expvar indirection.
	c2 := NewCampaign(nil, nil)
	c2.PlanBuilt(7, 1, 9)
	for i := 0; i < 3; i++ {
		st := c2.ExpStart(i)
		c2.ExpFinish(i, "safe-detected", false, 1, 4, st)
	}
	s2, err := ServeStatus("127.0.0.1:0", c2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := expDone(t, s2.Addr, "/progress"); got != 3 {
		t.Fatalf("lifecycle 2 /progress done = %d, want 3", got)
	}
	if v := vars(t, s2.Addr); !strings.Contains(v, `"exp_done":3`) {
		t.Fatalf("lifecycle 2 /debug/vars serving stale campaign:\n%s", v)
	}

	// A newer server's campaign survives an older Close: s3 installs c3,
	// then closing s2 must not tear c3 down (compare-and-swap release).
	c3 := NewCampaign(nil, nil)
	s3, err := ServeStatus("127.0.0.1:0", c3)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if current.Load() != c3 {
		t.Fatal("older Close released a newer server's campaign")
	}
	// And closing the newest server renders the expvar null on any
	// still-running endpoint.
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
	s4, err := ServeStatus("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s4.Close()
	if v := vars(t, s4.Addr); !strings.Contains(v, `"campaign": null`) {
		t.Fatalf("/debug/vars should render a released campaign as null:\n%s", v)
	}
}

// TestServeStatusExposed binds exactly the given address — the explicit
// opt-in keeps wildcard hosts wildcard.
func TestServeStatusExposed(t *testing.T) {
	s, err := ServeStatusExposed(":0", NewCampaign(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if strings.HasPrefix(s.Addr, "127.0.0.1:") {
		t.Fatalf("addr %q: ServeStatusExposed must not rewrite to loopback", s.Addr)
	}
}

// TestSnapshotSanitize: the /progress payload is a product contract —
// every derived float must be finite or encoding/json refuses the whole
// snapshot.
func TestSnapshotSanitize(t *testing.T) {
	s := Snapshot{
		ElapsedSec:  math.Inf(1),
		ExpPerSec:   math.NaN(),
		FaultPerSec: math.Inf(-1),
		CyclePerSec: math.NaN(),
		Utilization: math.Inf(1),
		ETASec:      math.NaN(),
	}
	s.sanitize()
	if s.ElapsedSec != 0 || s.ExpPerSec != 0 || s.FaultPerSec != 0 ||
		s.CyclePerSec != 0 || s.Utilization != 0 || s.ETASec != -1 {
		t.Fatalf("sanitize left non-finite defaults: %+v", s)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("sanitized snapshot does not marshal: %v", err)
	}
}

// TestWriteJSONEncodeFailure: an unencodable value must surface as a
// 500, never a truncated 200 body.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, math.NaN())
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	rec = httptest.NewRecorder()
	writeJSON(rec, map[string]int{"ok": 1})
	if rec.Code != http.StatusOK || !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("good value: status %d body %q", rec.Code, rec.Body.String())
	}
}

// TestCampaignHandlerPerCampaign: two handlers over two campaigns serve
// disjoint snapshots — the building block behind per-job /progress in
// internal/serve.
func TestCampaignHandlerPerCampaign(t *testing.T) {
	a, b := NewCampaign(nil, nil), NewCampaign(nil, nil)
	a.PlanBuilt(2, 1, 9)
	b.PlanBuilt(9, 1, 9)
	for i, h := range []http.Handler{CampaignHandler(a), CampaignHandler(b)} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/progress", nil))
		var snap Snapshot
		if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
			t.Fatal(err)
		}
		want := int64(2)
		if i == 1 {
			want = 9
		}
		if snap.Total != want {
			t.Fatalf("handler %d total = %d, want %d", i, snap.Total, want)
		}
	}
}
