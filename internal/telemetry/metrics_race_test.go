package telemetry

import (
	"sync"
	"testing"
)

// TestMetricsConcurrentWithSnapshots hammers counter, gauge and
// histogram handles from many goroutines while a reader keeps taking
// registry snapshots, then asserts no update was lost: the final
// totals are exact, not approximate. Run under -race this also proves
// the handles and Snapshot are data-race free.
func TestMetricsConcurrentWithSnapshots(t *testing.T) {
	const (
		writers = 8
		perG    = 5000
	)
	r := NewRegistry()
	c := r.Counter("hits")
	g := r.Gauge("level")
	h := r.Histogram("lat", 1, 8, 64, 512)

	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			// Mid-flight totals must be internally consistent: a
			// histogram snapshot's bucket counts sum to its count.
			hs := s.Histograms["lat"]
			var sum int64
			for _, b := range hs.Buckets {
				sum += b.N
			}
			if sum > hs.Count {
				// Buckets are incremented before n, so a snapshot may
				// observe the bucket without the count — but by at
				// most the number of in-flight Observes.
				if sum-hs.Count > writers {
					t.Errorf("snapshot buckets=%d count=%d: drifted past in-flight window", sum, hs.Count)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				c.Add(2)
				g.Add(1)
				if i%2 == 1 {
					g.Add(-2)
				}
				h.Observe(int64(i % 1000))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snaps.Wait()

	if got, want := c.Load(), int64(writers*perG*3); got != want {
		t.Fatalf("counter = %d, want %d (lost updates)", got, want)
	}
	if got := g.Load(); got != 0 {
		t.Fatalf("gauge = %d, want 0 (lost updates)", got)
	}
	if got, want := h.Count(), int64(writers*perG); got != want {
		t.Fatalf("histogram count = %d, want %d (lost updates)", got, want)
	}
	// Every goroutine observed 0..999 five times: per-goroutine sum is
	// 5 * (0+1+...+999) = 2_497_500.
	if got, want := h.Sum(), int64(writers)*2_497_500; got != want {
		t.Fatalf("histogram sum = %d, want %d (lost updates)", got, want)
	}
	var bsum int64
	for _, b := range h.Buckets() {
		bsum += b.N
	}
	if bsum != h.Count() {
		t.Fatalf("bucket sum %d != count %d", bsum, h.Count())
	}
}
