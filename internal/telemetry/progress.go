package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Snapshot is a point-in-time view of a live campaign — the payload of
// the /progress endpoint and the progress reporter. Rates are averaged
// since the campaign start; Interval* rates are since the previous
// snapshot taken by the same reporter (zero elsewhere).
type Snapshot struct {
	Done        int64 `json:"done"`
	Total       int64 `json:"total"`
	InFlight    int64 `json:"in_flight"`
	Workers     int64 `json:"workers"`
	Preloaded   int64 `json:"preloaded"`
	Retries     int64 `json:"retries"`
	Quarantined int64 `json:"quarantined"`
	Checkpoints int64 `json:"checkpoints"`
	SimCycles   int64 `json:"sim_cycles"`
	Faults      int64 `json:"faults_simulated"`

	// Distributed-campaign scheduling (internal/dist); all zero for
	// single-process runs.
	LeasesIssued      int64 `json:"leases_issued"`
	LeasesExpired     int64 `json:"leases_expired"`
	WorkerRetries     int64 `json:"worker_retries"`
	RangesQuarantined int64 `json:"ranges_quarantined"`
	WorkersActive     int64 `json:"workers_active"`

	// Outcomes maps outcome labels to counts (sorted keys on render).
	Outcomes map[string]int64 `json:"outcomes"`

	ElapsedSec  float64 `json:"elapsed_sec"`
	ExpPerSec   float64 `json:"exp_per_sec"`
	FaultPerSec float64 `json:"faults_per_sec"`
	CyclePerSec float64 `json:"cycles_per_sec"`
	// Utilization is in-flight experiments over workers, 0..1.
	Utilization float64 `json:"utilization"`
	// ETASec estimates seconds to completion from the average rate
	// (-1 when unknown).
	ETASec float64 `json:"eta_sec"`
}

// Snapshot renders the campaign's current state. Without a clock the
// rate and ETA fields stay zero/-1 and only the counters are filled.
func (c *Campaign) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{ETASec: -1}
	}
	s := Snapshot{
		Done:        c.expDone.Load(),
		Total:       c.planTotal.Load(),
		InFlight:    c.inFlight.Load(),
		Workers:     c.workers.Load(),
		Preloaded:   c.preloaded.Load(),
		Retries:     c.retries.Load(),
		Quarantined: c.quarantined.Load(),
		Checkpoints: c.ckptWrites.Load(),
		SimCycles:   c.simCycles.Load(),
		Faults:      c.faultsDone.Load(),

		LeasesIssued:      c.leasesOut.Load(),
		LeasesExpired:     c.leasesExp.Load(),
		WorkerRetries:     c.workerRetry.Load(),
		RangesQuarantined: c.rangesQuar.Load(),
		WorkersActive:     c.distWorkers.Load(),

		Outcomes: map[string]int64{},
		ETASec:   -1,
	}
	c.mu.Lock()
	for name, ctr := range c.outcomes { //det:order copying into a map
		s.Outcomes[name] = ctr.Load()
	}
	started := c.started
	c.mu.Unlock()
	if s.Workers > 0 {
		s.Utilization = float64(s.InFlight) / float64(s.Workers)
	}
	if c.Clock != nil && !started.IsZero() {
		s.ElapsedSec = c.Clock().Sub(started).Seconds()
		if s.ElapsedSec > 0 {
			s.ExpPerSec = float64(s.Done-s.Preloaded) / s.ElapsedSec
			s.FaultPerSec = float64(s.Faults) / s.ElapsedSec
			s.CyclePerSec = float64(s.SimCycles) / s.ElapsedSec
			if s.ExpPerSec > 0 && s.Total > s.Done {
				s.ETASec = float64(s.Total-s.Done) / s.ExpPerSec
			}
		}
	}
	s.sanitize()
	return s
}

// sanitize clamps every derived float to a finite value. The guards in
// Snapshot already avoid dividing by zero, but this is a product
// endpoint contract, not an implementation accident: encoding/json
// refuses +Inf/NaN outright, and a snapshot that cannot marshal turns
// the /progress poll of an empty or just-started campaign into a
// truncated body. Rates clamp to 0 (nothing measured), ETA to -1
// (unknown).
func (s *Snapshot) sanitize() {
	finite := func(v *float64, fallback float64) {
		if math.IsNaN(*v) || math.IsInf(*v, 0) {
			*v = fallback
		}
	}
	finite(&s.ElapsedSec, 0)
	finite(&s.ExpPerSec, 0)
	finite(&s.FaultPerSec, 0)
	finite(&s.CyclePerSec, 0)
	finite(&s.Utilization, 0)
	finite(&s.ETASec, -1)
}

// Line renders the snapshot as the single-line progress format.
func (s Snapshot) Line() string {
	pct := 0.0
	if s.Total > 0 {
		pct = 100 * float64(s.Done) / float64(s.Total)
	}
	line := fmt.Sprintf("progress: %d/%d exp (%.1f%%)", s.Done, s.Total, pct)
	if s.ExpPerSec > 0 {
		line += fmt.Sprintf(" | %.1f exp/s", s.ExpPerSec)
	}
	if s.FaultPerSec > 0 {
		line += fmt.Sprintf(" | %.0f faults/s", s.FaultPerSec)
	}
	if s.Workers > 0 {
		line += fmt.Sprintf(" | workers %d/%d busy", s.InFlight, s.Workers)
	}
	line += fmt.Sprintf(" | retries %d quarantined %d ckpts %d", s.Retries, s.Quarantined, s.Checkpoints)
	if s.LeasesIssued > 0 {
		line += fmt.Sprintf(" | leases %d (expired %d, retries %d, quarantined %d) dist-workers %d",
			s.LeasesIssued, s.LeasesExpired, s.WorkerRetries, s.RangesQuarantined, s.WorkersActive)
	}
	if len(s.Outcomes) > 0 {
		names := make([]string, 0, len(s.Outcomes))
		for name := range s.Outcomes { //det:order collecting before sort
			names = append(names, name)
		}
		sort.Strings(names)
		line += " |"
		for _, name := range names {
			line += fmt.Sprintf(" %s=%d", name, s.Outcomes[name])
		}
	}
	if s.ETASec >= 0 {
		line += fmt.Sprintf(" | ETA %s", time.Duration(s.ETASec*float64(time.Second)).Round(time.Second))
	}
	return line
}

// Reporter prints periodic progress snapshots. It owns a goroutine;
// Stop prints one final snapshot and waits for the goroutine to exit.
type Reporter struct {
	stop chan struct{}
	done chan struct{}
}

// StartReporter begins periodic progress output (typically to stderr,
// keeping stdout byte-stable). every <= 0 defaults to 10s.
func StartReporter(w io.Writer, c *Campaign, every time.Duration) *Reporter {
	if every <= 0 {
		every = 10 * time.Second
	}
	r := &Reporter{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(w, c.Snapshot().Line())
			case <-r.stop:
				fmt.Fprintln(w, c.Snapshot().Line())
				return
			}
		}
	}()
	return r
}

// Stop emits a final snapshot line and shuts the reporter down. Safe
// to call once; a nil reporter is a no-op.
func (r *Reporter) Stop() {
	if r == nil {
		return
	}
	close(r.stop)
	<-r.done
}
