// Package fit models elementary failure rates (Failures In Time, i.e.
// failures per 10^9 device-hours) per gate, flip-flop and memory bit,
// for both transient and permanent faults. The FMEA multiplies these
// base rates by each sensible zone's composition (FF count, fan-in cone
// gate count) exactly as the paper's spreadsheet does.
//
// The defaults are literature-style figures for a ~90 nm automotive
// process (SRAM/FF soft-error rates near 10^-3 FIT/bit, logic transients
// an order of magnitude lower with a latching derate, permanent rates in
// the tens of FIT per million gates). SFF and DC are ratios of rates, so
// their reproduction is insensitive to the absolute calibration; the
// sensitivity experiment (E5) spans these values explicitly.
package fit

// Rates is a set of elementary FIT rates.
type Rates struct {
	// GatePermanent is the permanent-fault FIT per combinational gate.
	GatePermanent float64
	// GateTransient is the raw transient-fault FIT per gate, before the
	// latching derate.
	GateTransient float64
	// LatchingFraction derates logic transients: a glitch only matters
	// if sampled by the downstream flip-flop.
	LatchingFraction float64
	// FFPermanent / FFTransient are per-flip-flop FIT rates.
	FFPermanent float64
	FFTransient float64
	// MemBitPermanent / MemBitTransient are per-memory-bit FIT rates
	// (the array dominates the transient budget of a memory sub-system).
	MemBitPermanent float64
	MemBitTransient float64
}

// Default returns the baseline calibration.
func Default() Rates {
	return Rates{
		GatePermanent:    5e-5,
		GateTransient:    3e-4,
		LatchingFraction: 0.4,
		FFPermanent:      1e-4,
		FFTransient:      2.5e-3,
		MemBitPermanent:  2e-5,
		MemBitTransient:  1e-3,
	}
}

// Contribution is a transient/permanent FIT pair.
type Contribution struct {
	Transient float64
	Permanent float64
}

// Total returns transient + permanent FIT.
func (c Contribution) Total() float64 { return c.Transient + c.Permanent }

// Add accumulates another contribution.
func (c Contribution) Add(o Contribution) Contribution {
	return Contribution{c.Transient + o.Transient, c.Permanent + o.Permanent}
}

// Scale multiplies both components.
func (c Contribution) Scale(f float64) Contribution {
	return Contribution{c.Transient * f, c.Permanent * f}
}

// RegisterZone computes the FIT contribution of a register sensible
// zone: its own flip-flops plus the fan-in cone whose faults converge
// into it.
func (r Rates) RegisterZone(ffCount, coneGates int) Contribution {
	return Contribution{
		Transient: float64(ffCount)*r.FFTransient + float64(coneGates)*r.GateTransient*r.LatchingFraction,
		Permanent: float64(ffCount)*r.FFPermanent + float64(coneGates)*r.GatePermanent,
	}
}

// LogicCone computes the FIT contribution of a pure combinational cone
// (output zones, sub-block zones).
func (r Rates) LogicCone(coneGates int) Contribution {
	return Contribution{
		Transient: float64(coneGates) * r.GateTransient * r.LatchingFraction,
		Permanent: float64(coneGates) * r.GatePermanent,
	}
}

// MemoryArray computes the FIT contribution of a memory array of the
// given capacity in bits.
func (r Rates) MemoryArray(bits int) Contribution {
	return Contribution{
		Transient: float64(bits) * r.MemBitTransient,
		Permanent: float64(bits) * r.MemBitPermanent,
	}
}

// ScaleAll returns a copy with every rate multiplied by f (sensitivity
// spans). The latching fraction is a probability and is not scaled.
func (r Rates) ScaleAll(f float64) Rates {
	out := r
	out.GatePermanent *= f
	out.GateTransient *= f
	out.FFPermanent *= f
	out.FFTransient *= f
	out.MemBitPermanent *= f
	out.MemBitTransient *= f
	return out
}

// ScaleTransient returns a copy with only transient rates scaled —
// spanning the soft-error assumption independently of process aging.
func (r Rates) ScaleTransient(f float64) Rates {
	out := r
	out.GateTransient *= f
	out.FFTransient *= f
	out.MemBitTransient *= f
	return out
}

// ScalePermanent returns a copy with only permanent rates scaled.
func (r Rates) ScalePermanent(f float64) Rates {
	out := r
	out.GatePermanent *= f
	out.FFPermanent *= f
	out.MemBitPermanent *= f
	return out
}
