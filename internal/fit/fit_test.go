package fit

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestDefaultSane(t *testing.T) {
	r := Default()
	if r.MemBitTransient <= r.MemBitPermanent {
		t.Error("memory transients should dominate permanents")
	}
	if r.LatchingFraction <= 0 || r.LatchingFraction > 1 {
		t.Errorf("latching fraction %v out of (0,1]", r.LatchingFraction)
	}
	if r.FFTransient <= 0 || r.GatePermanent <= 0 {
		t.Error("rates must be positive")
	}
}

func TestRegisterZone(t *testing.T) {
	r := Default()
	c := r.RegisterZone(4, 10)
	wantT := 4*r.FFTransient + 10*r.GateTransient*r.LatchingFraction
	wantP := 4*r.FFPermanent + 10*r.GatePermanent
	if !close(c.Transient, wantT) || !close(c.Permanent, wantP) {
		t.Errorf("RegisterZone = %+v, want {%v %v}", c, wantT, wantP)
	}
	if !close(c.Total(), wantT+wantP) {
		t.Error("Total wrong")
	}
}

func TestLogicConeAndMemory(t *testing.T) {
	r := Default()
	lc := r.LogicCone(100)
	if !close(lc.Permanent, 100*r.GatePermanent) {
		t.Error("LogicCone permanent wrong")
	}
	mem := r.MemoryArray(1024)
	if !close(mem.Transient, 1024*r.MemBitTransient) {
		t.Error("MemoryArray transient wrong")
	}
}

func TestContributionAlgebra(t *testing.T) {
	a := Contribution{1, 2}
	b := Contribution{3, 4}
	if got := a.Add(b); !close(got.Transient, 4) || !close(got.Permanent, 6) {
		t.Errorf("Add = %+v", got)
	}
	if got := a.Scale(2.5); !close(got.Transient, 2.5) || !close(got.Permanent, 5) {
		t.Errorf("Scale = %+v", got)
	}
}

func TestScaleAllLinear(t *testing.T) {
	r := Default()
	f := func(ff, gates uint8, scale float64) bool {
		s := math.Abs(scale)
		if s > 100 {
			s = math.Mod(s, 100)
		}
		base := r.RegisterZone(int(ff), int(gates))
		scaled := r.ScaleAll(s).RegisterZone(int(ff), int(gates))
		return math.Abs(scaled.Total()-base.Total()*s) < 1e-9*(1+base.Total()*s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScaleTransientOnly(t *testing.T) {
	r := Default()
	s := r.ScaleTransient(3)
	if !close(s.FFTransient, 3*r.FFTransient) || !close(s.MemBitTransient, 3*r.MemBitTransient) {
		t.Error("transient rates not scaled")
	}
	if !close(s.FFPermanent, r.FFPermanent) || !close(s.GatePermanent, r.GatePermanent) {
		t.Error("permanent rates must be untouched")
	}
	if !close(s.LatchingFraction, r.LatchingFraction) {
		t.Error("latching fraction must be untouched")
	}
}

func TestScalePermanentOnly(t *testing.T) {
	r := Default()
	s := r.ScalePermanent(0.5)
	if !close(s.GatePermanent, 0.5*r.GatePermanent) {
		t.Error("permanent not scaled")
	}
	if !close(s.GateTransient, r.GateTransient) {
		t.Error("transient must be untouched")
	}
}

// SFF-style ratios must be invariant under uniform rate scaling — the
// core reason absolute calibration doesn't matter.
func TestRatioInvariance(t *testing.T) {
	r := Default()
	for _, scale := range []float64{0.1, 0.5, 2, 10} {
		s := r.ScaleAll(scale)
		a := r.RegisterZone(8, 50)
		b := r.MemoryArray(4096)
		as := s.RegisterZone(8, 50)
		bs := s.MemoryArray(4096)
		ratio := a.Total() / (a.Total() + b.Total())
		ratioS := as.Total() / (as.Total() + bs.Total())
		if math.Abs(ratio-ratioS) > 1e-12 {
			t.Errorf("scale %v changed ratio: %v vs %v", scale, ratio, ratioS)
		}
	}
}
