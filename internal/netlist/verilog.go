package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteVerilog emits the netlist as structural Verilog: primitive gate
// instantiations (and/or/nand/nor/xor/xnor/not/buf), a 2:1 mux as an
// assign, behavioral always-blocks for the D flip-flops, and a shared
// clk/rst_n pair — the flat "synthesized RTL" form the paper's
// extraction tool consumes from commercial synthesis.
func (n *Netlist) WriteVerilog(w io.Writer) error {
	bw := bufio.NewWriter(w)
	name := sanitizeIdent(n.Name)
	fmt.Fprintf(bw, "// structural netlist %q — generated, do not edit\n", n.Name)
	fmt.Fprintf(bw, "module %s (\n", name)
	fmt.Fprintf(bw, "  input wire clk,\n  input wire rst_n")
	for _, p := range n.Inputs {
		fmt.Fprintf(bw, ",\n  input wire %s%s", vecDecl(len(p.Nets)), sanitizeIdent(p.Name))
	}
	for _, p := range n.Outputs {
		fmt.Fprintf(bw, ",\n  output wire %s%s", vecDecl(len(p.Nets)), sanitizeIdent(p.Name))
	}
	fmt.Fprintf(bw, "\n);\n\n")

	// Net naming: w<id> for everything internal; port bits get assigns.
	wire := func(id NetID) string { return fmt.Sprintf("w%d", id) }
	declared := make(map[NetID]bool)
	var decl []string
	for id := range n.Nets {
		nid := NetID(id)
		if !n.IsDriven(nid) && !isRead(n, nid) {
			continue // orphan
		}
		decl = append(decl, wire(nid))
		declared[nid] = true
	}
	for i := 0; i < len(decl); i += 16 {
		end := i + 16
		if end > len(decl) {
			end = len(decl)
		}
		fmt.Fprintf(bw, "  wire %s;\n", strings.Join(decl[i:end], ", "))
	}
	fmt.Fprintln(bw)

	if n.Const0 != InvalidNet {
		fmt.Fprintf(bw, "  assign %s = 1'b0;\n", wire(n.Const0))
	}
	if n.Const1 != InvalidNet {
		fmt.Fprintf(bw, "  assign %s = 1'b1;\n", wire(n.Const1))
	}
	for _, p := range n.Inputs {
		for bit, id := range p.Nets {
			fmt.Fprintf(bw, "  assign %s = %s;\n", wire(id), bitRef(p, bit))
		}
	}
	for _, p := range n.Externals {
		for _, id := range p.Nets {
			// Peripheral-driven nets become module inputs in a testbench
			// context; emit them as supply-less dangling wires tagged for
			// the integrator.
			fmt.Fprintf(bw, "  // external (peripheral-driven): %s drives %s\n", p.Name, wire(id))
		}
	}
	fmt.Fprintln(bw)

	for i := range n.Gates {
		g := &n.Gates[i]
		ins := make([]string, len(g.Inputs))
		for k, in := range g.Inputs {
			ins[k] = wire(in)
		}
		comment := ""
		if g.Block != "" {
			comment = " // " + g.Block
		}
		if g.Type == MUX2 {
			fmt.Fprintf(bw, "  assign %s = %s ? %s : %s;%s\n",
				wire(g.Output), ins[0], ins[2], ins[1], comment)
			continue
		}
		fmt.Fprintf(bw, "  %s g%d (%s, %s);%s\n",
			verilogPrim(g.Type), g.ID, wire(g.Output), strings.Join(ins, ", "), comment)
	}
	fmt.Fprintln(bw)

	for i := range n.FFs {
		ff := &n.FFs[i]
		rv := "1'b0"
		if ff.ResetVal {
			rv = "1'b1"
		}
		fmt.Fprintf(bw, "  reg %s_q; // %s\n", ffIdent(i), ff.Name)
		fmt.Fprintf(bw, "  always @(posedge clk or negedge rst_n)\n")
		fmt.Fprintf(bw, "    if (!rst_n) %s_q <= %s;\n", ffIdent(i), rv)
		if ff.Enable != InvalidNet {
			fmt.Fprintf(bw, "    else if (%s) %s_q <= %s;\n", wire(ff.Enable), ffIdent(i), wire(ff.D))
		} else {
			fmt.Fprintf(bw, "    else %s_q <= %s;\n", ffIdent(i), wire(ff.D))
		}
		fmt.Fprintf(bw, "  assign %s = %s_q;\n", wire(ff.Q), ffIdent(i))
	}
	fmt.Fprintln(bw)

	for _, p := range n.Outputs {
		for bit, id := range p.Nets {
			fmt.Fprintf(bw, "  assign %s = %s;\n", bitRef(p, bit), wire(id))
		}
	}
	fmt.Fprintf(bw, "endmodule\n")
	return bw.Flush()
}

func isRead(n *Netlist, id NetID) bool {
	// Conservative: a net is "read" if any gate, FF or output uses it.
	for i := range n.Gates {
		for _, in := range n.Gates[i].Inputs {
			if in == id {
				return true
			}
		}
	}
	for i := range n.FFs {
		if n.FFs[i].D == id || n.FFs[i].Enable == id {
			return true
		}
	}
	for _, p := range n.Outputs {
		for _, o := range p.Nets {
			if o == id {
				return true
			}
		}
	}
	return false
}

func ffIdent(i int) string { return fmt.Sprintf("ff%d", i) }

func vecDecl(width int) string {
	if width == 1 {
		return ""
	}
	return fmt.Sprintf("[%d:0] ", width-1)
}

func bitRef(p Port, bit int) string {
	name := sanitizeIdent(p.Name)
	if len(p.Nets) == 1 {
		return name
	}
	return fmt.Sprintf("%s[%d]", name, bit)
}

func verilogPrim(t GateType) string {
	switch t {
	case BUF:
		return "buf"
	case NOT:
		return "not"
	case AND:
		return "and"
	case OR:
		return "or"
	case NAND:
		return "nand"
	case NOR:
		return "nor"
	case XOR:
		return "xor"
	case XNOR:
		return "xnor"
	}
	return "buf"
}

// sanitizeIdent maps arbitrary names onto legal Verilog identifiers.
func sanitizeIdent(s string) string {
	if s == "" {
		return "unnamed"
	}
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	out := b.String()
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}
