package netlist

import (
	"strings"
	"testing"
)

func TestAddNetAndNames(t *testing.T) {
	n := New("t")
	a := n.AddNet("a")
	b := n.AddNet("")
	if got := n.NetName(a); got != "a" {
		t.Errorf("NetName(a) = %q, want a", got)
	}
	if got := n.NetName(b); got != "n1" {
		t.Errorf("NetName(unnamed) = %q, want n1", got)
	}
}

func TestConstNets(t *testing.T) {
	n := New("t")
	c1 := n.ConstNet(true)
	c1b := n.ConstNet(true)
	if c1 != c1b {
		t.Errorf("ConstNet(true) not memoized: %d vs %d", c1, c1b)
	}
	c0 := n.ConstNet(false)
	if c0 == c1 {
		t.Error("const0 and const1 share a net")
	}
	if v, ok := n.IsConst(c1); !ok || !v {
		t.Errorf("IsConst(const1) = %v,%v", v, ok)
	}
	if v, ok := n.IsConst(c0); !ok || v {
		t.Errorf("IsConst(const0) = %v,%v", v, ok)
	}
	if _, ok := n.IsConst(n.AddNet("x")); ok {
		t.Error("regular net reported const")
	}
}

func TestGateArityPanics(t *testing.T) {
	n := New("t")
	a := n.AddInput("a", 1)[0]
	defer func() {
		if recover() == nil {
			t.Error("NOT with 2 inputs did not panic")
		}
	}()
	n.AddGate(NOT, "", a, a)
}

func TestGateAndArityTooFew(t *testing.T) {
	n := New("t")
	a := n.AddInput("a", 1)[0]
	defer func() {
		if recover() == nil {
			t.Error("AND with 1 input did not panic")
		}
	}()
	n.AddGate(AND, "", a)
}

func TestDoubleDriverPanics(t *testing.T) {
	n := New("t")
	a := n.AddInput("a", 1)[0]
	out := n.AddGate(NOT, "", a)
	defer func() {
		if recover() == nil {
			t.Error("driving an already-driven net did not panic")
		}
	}()
	n.AddGateTo(BUF, "", out, a)
}

func TestDrivers(t *testing.T) {
	n := New("t")
	a := n.AddInput("a", 1)[0]
	g := n.AddGate(NOT, "", a)
	_, q := n.AddFF("r[0]", "", g, InvalidNet, false)

	if !n.IsPrimaryInput(a) {
		t.Error("a not recognized as primary input")
	}
	if gt, ok := n.DriverGate(g); !ok || gt.Type != NOT {
		t.Error("DriverGate failed for NOT output")
	}
	if ff, ok := n.DriverFF(q); !ok || ff.Name != "r[0]" {
		t.Error("DriverFF failed for FF Q")
	}
	if _, ok := n.DriverGate(a); ok {
		t.Error("primary input reported gate driver")
	}
}

func TestLevelizeOrder(t *testing.T) {
	n := New("t")
	a := n.AddInput("a", 1)[0]
	b := n.AddInput("b", 1)[0]
	x := n.AddGate(AND, "", a, b)
	y := n.AddGate(NOT, "", x)
	z := n.AddGate(OR, "", y, a)
	_ = z
	order, err := n.Levelize()
	if err != nil {
		t.Fatalf("Levelize: %v", err)
	}
	pos := make(map[GateID]int)
	for i, g := range order {
		pos[g] = i
	}
	if !(pos[0] < pos[1] && pos[1] < pos[2]) {
		t.Errorf("bad topological order: %v", order)
	}
}

func TestLevelizeDetectsCycle(t *testing.T) {
	n := New("t")
	a := n.AddInput("a", 1)[0]
	loop := n.AddNet("loop")
	x := n.AddGate(AND, "", a, loop)
	n.AddGateTo(BUF, "", loop, x)
	if _, err := n.Levelize(); err == nil {
		t.Error("combinational cycle not detected")
	}
	if err := n.Validate(); err == nil {
		t.Error("Validate accepted cyclic netlist")
	}
}

func TestValidateUndrivenNet(t *testing.T) {
	n := New("t")
	float := n.AddNet("floating")
	a := n.AddInput("a", 1)[0]
	out := n.AddGate(AND, "", a, float)
	n.AddOutput("y", []NetID{out})
	err := n.Validate()
	if err == nil || !strings.Contains(err.Error(), "undriven") {
		t.Errorf("Validate = %v, want undriven-net error", err)
	}
}

func TestValidateOK(t *testing.T) {
	n := New("t")
	a := n.AddInput("a", 2)
	s := n.AddGate(XOR, "", a[0], a[1])
	_, q := n.AddFF("r[0]", "", s, InvalidNet, false)
	n.AddOutput("y", []NetID{q})
	if err := n.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestComputeStats(t *testing.T) {
	n := New("t")
	a := n.AddInput("a", 2)
	x := n.AddGate(AND, "", a[0], a[1])
	y := n.AddGate(NOT, "", x)
	n.AddOutput("y", []NetID{y})
	s := n.ComputeStats()
	if s.Gates != 2 || s.Inputs != 2 || s.Outputs != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Levels != 2 {
		t.Errorf("Levels = %d, want 2", s.Levels)
	}
}

func TestFanoutCounts(t *testing.T) {
	n := New("t")
	a := n.AddInput("a", 1)[0]
	x := n.AddGate(NOT, "", a)
	y := n.AddGate(AND, "", a, x)
	n.AddOutput("y", []NetID{y})
	fan := n.FanoutCounts()
	if fan[a] != 2 {
		t.Errorf("fanout(a) = %d, want 2", fan[a])
	}
	if fan[y] != 1 {
		t.Errorf("fanout(y) = %d, want 1 (primary output)", fan[y])
	}
}

func TestRegisterGroups(t *testing.T) {
	n := New("t")
	a := n.AddInput("a", 1)[0]
	for i := 0; i < 3; i++ {
		n.AddFF("data["+string(rune('0'+i))+"]", "B", a, InvalidNet, false)
	}
	n.AddFF("ctrl", "B", a, InvalidNet, false)
	g := n.RegisterGroups()
	if len(g["data"]) != 3 {
		t.Errorf("data group has %d FFs, want 3", len(g["data"]))
	}
	if len(g["ctrl"]) != 1 {
		t.Errorf("ctrl group has %d FFs, want 1", len(g["ctrl"]))
	}
}

func TestRegisterBase(t *testing.T) {
	cases := map[string]string{
		"data[3]":   "data",
		"data":      "data",
		"a/b[10]":   "a/b",
		"[3]":       "[3]", // no base; keep as-is
		"x[1][2]":   "x[1]",
		"plain[“]”": "plain[“]”", // malformed index; unchanged is fine as long as deterministic
	}
	for in, want := range cases {
		if got := RegisterBase(in); got != want && in != "plain[“]”" {
			t.Errorf("RegisterBase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBlocks(t *testing.T) {
	n := New("t")
	a := n.AddInput("a", 1)[0]
	n.AddGate(NOT, "B2", a)
	n.AddGate(NOT, "B1", a)
	n.AddFF("r", "B3", a, InvalidNet, false)
	got := n.Blocks()
	if len(got) != 3 || got[0] != "B1" || got[1] != "B2" || got[2] != "B3" {
		t.Errorf("Blocks() = %v", got)
	}
	counts := n.BlockGateCount()
	if counts["B1"] != 1 || counts["B2"] != 1 {
		t.Errorf("BlockGateCount = %v", counts)
	}
}

func TestFindPorts(t *testing.T) {
	n := New("t")
	n.AddInput("addr", 4)
	o := n.AddInput("x", 1)
	n.AddOutput("y", o)
	if p, ok := n.FindInput("addr"); !ok || len(p.Nets) != 4 {
		t.Error("FindInput(addr) failed")
	}
	if _, ok := n.FindInput("nope"); ok {
		t.Error("FindInput(nope) should fail")
	}
	if p, ok := n.FindOutput("y"); !ok || len(p.Nets) != 1 {
		t.Error("FindOutput(y) failed")
	}
	if _, ok := n.FindOutput("nope"); ok {
		t.Error("FindOutput(nope) should fail")
	}
}

func TestSetFFDAndEnable(t *testing.T) {
	n := New("t")
	a := n.AddInput("a", 1)[0]
	id, q := n.AddFF("r", "", a, InvalidNet, true)
	inv := n.AddGate(NOT, "", q)
	n.SetFFD(id, inv)
	n.SetFFEnable(id, a)
	if n.FFs[id].D != inv || n.FFs[id].Enable != a {
		t.Error("SetFFD/SetFFEnable did not update")
	}
	if !n.FFs[id].ResetVal {
		t.Error("ResetVal lost")
	}
}

func TestStringSummary(t *testing.T) {
	n := New("dsg")
	a := n.AddInput("a", 1)[0]
	n.AddOutput("y", []NetID{n.AddGate(NOT, "", a)})
	s := n.String()
	if !strings.Contains(s, "dsg") || !strings.Contains(s, "1 gates") {
		t.Errorf("String() = %q", s)
	}
}

func TestPruneRemovesDeadGates(t *testing.T) {
	n := New("p")
	a := n.AddInput("a", 1)[0]
	live := n.AddGate(NOT, "", a)
	deadMid := n.AddGate(NOT, "", a)
	_ = n.AddGate(AND, "", deadMid, a) // dead chain of 2
	n.AddOutput("y", []NetID{live})
	removed := n.Prune()
	if removed != 2 {
		t.Errorf("removed = %d, want 2", removed)
	}
	if len(n.Gates) != 1 || n.Gates[0].Output != live {
		t.Errorf("live gate lost: %+v", n.Gates)
	}
	if g, ok := n.DriverGate(live); !ok || g.ID != 0 {
		t.Error("driver map not rebuilt")
	}
	if err := n.Validate(); err != nil {
		t.Errorf("Validate after prune: %v", err)
	}
}

func TestPruneKeepsFFInputLogic(t *testing.T) {
	n := New("p")
	a := n.AddInput("a", 1)[0]
	inv := n.AddGate(NOT, "", a)
	n.AddFF("r", "", inv, InvalidNet, false)
	if removed := n.Prune(); removed != 0 {
		t.Errorf("FF input logic pruned: removed = %d", removed)
	}
}

func TestPruneHonorsKeep(t *testing.T) {
	n := New("p")
	a := n.AddInput("a", 1)[0]
	toPeriph := n.AddGate(NOT, "", a)
	n.MarkKeep(toPeriph)
	if removed := n.Prune(); removed != 0 {
		t.Errorf("kept net's driver pruned: removed = %d", removed)
	}
}

func TestPruneTransitiveChain(t *testing.T) {
	n := New("p")
	a := n.AddInput("a", 1)[0]
	x := n.AddGate(NOT, "", a)
	y := n.AddGate(NOT, "", x)
	z := n.AddGate(NOT, "", y)
	n.AddOutput("y", []NetID{z})
	if removed := n.Prune(); removed != 0 {
		t.Errorf("live chain pruned: removed = %d", removed)
	}
}

func TestValidateAccumulatesAllViolations(t *testing.T) {
	n := New("t")
	a := n.AddInput("a", 1)[0]
	f1 := n.AddNet("float1")
	f2 := n.AddNet("float2")
	g := n.AddGate(AND, "", a, f1)
	n.AddFF("r[0]", "", f2, InvalidNet, false)
	n.AddOutput("y", []NetID{g})
	n.AddOutput("z", []NetID{n.AddNet("float3")})
	err := n.Validate()
	if err == nil {
		t.Fatal("Validate accepted a netlist with three undriven reads")
	}
	for _, want := range []string{"float1", "float2", "float3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("accumulated error misses %s violation: %v", want, err)
		}
	}
}

func TestValidateKept(t *testing.T) {
	n := New("t")
	a := n.AddInput("a", 1)[0]
	s := n.AddGate(NOT, "", a)
	n.MarkKeep(s)
	kept := n.Kept()
	if len(kept) != 1 || kept[0] != s {
		t.Fatalf("Kept() = %v, want [%d]", kept, s)
	}
	// The returned slice is a copy: mutating it must not corrupt the
	// netlist's keep set.
	kept[0] = InvalidNet
	if k := n.Kept(); len(k) != 1 || k[0] != s {
		t.Fatalf("Kept() returned the internal slice")
	}
}
