package netlist

import (
	"fmt"
	"io"
	"strings"
)

// ParseVerilog reads a structural netlist in the subset WriteVerilog
// emits (primitive gate instantiations, assign aliases/constants/muxes,
// and the canonical D-flip-flop always-block), rebuilding a Netlist.
// Register names and hierarchical block paths are recovered from the
// emitted trailing comments, so a written-then-parsed netlist supports
// the full zone-extraction flow.
func ParseVerilog(r io.Reader) (*Netlist, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	p := &vparser{lex: newVLexer(string(src))}
	if err := p.parse(); err != nil {
		return nil, err
	}
	return p.build()
}

// ---------- lexer ----------

type vtoken struct {
	kind vtokKind
	text string
	line int
}

type vtokKind uint8

const (
	tkIdent vtokKind = iota
	tkNumber
	tkSymbol // single punctuation char
	tkComment
	tkEOF
)

type vlexer struct {
	src  string
	pos  int
	line int
}

func newVLexer(src string) *vlexer { return &vlexer{src: src, line: 1} }

func (l *vlexer) next() vtoken {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			start := l.pos + 2
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			return vtoken{kind: tkComment, text: strings.TrimSpace(l.src[start:l.pos]), line: l.line}
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
				l.pos++
			}
			return vtoken{kind: tkIdent, text: l.src[start:l.pos], line: l.line}
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && (isIdentChar(l.src[l.pos]) || l.src[l.pos] == '\'') {
				l.pos++
			}
			return vtoken{kind: tkNumber, text: l.src[start:l.pos], line: l.line}
		default:
			l.pos++
			return vtoken{kind: tkSymbol, text: string(c), line: l.line}
		}
	}
	return vtoken{kind: tkEOF, line: l.line}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

// ---------- parser ----------

type vPort struct {
	name  string
	width int
}

type vGate struct {
	prim  string
	out   string
	ins   []string
	block string
}

type vMux struct {
	out, sel, a, b string
	block          string
}

type vFF struct {
	reg     string
	rv      bool
	en      string // "" when always enabled
	d       string
	q       string // set by the trailing assign
	rtlName string
}

type vparser struct {
	lex *vlexer
	tok vtoken
	// pendingComment is the comment skipped by the most recent advance,
	// attached to the statement just parsed.
	pendingComment string

	moduleName string
	ins        []vPort
	outs       []vPort
	consts     map[string]bool
	aliases    [][2]string // lhs = rhs
	gates      []vGate
	muxes      []vMux
	ffs        []*vFF
	ffByReg    map[string]*vFF
}

// trailingComment returns the comment attached to the statement just
// parsed (the one skipped while advancing past its terminating token).
func (p *vparser) trailingComment() string {
	return p.pendingComment
}

func (p *vparser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("verilog: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *vparser) expectSym(s string) error {
	if p.tok.kind != tkSymbol || p.tok.text != s {
		return p.errf("expected %q, got %q", s, p.tok.text)
	}
	p.advanceRaw()
	return nil
}

func (p *vparser) expectIdent(s string) error {
	if p.tok.kind != tkIdent || p.tok.text != s {
		return p.errf("expected %q, got %q", s, p.tok.text)
	}
	p.advanceRaw()
	return nil
}

// advanceRaw moves to the next token, recording any comment skipped on
// the way (so statement parsers can attach it).
func (p *vparser) advanceRaw() {
	p.pendingComment = ""
	for {
		p.tok = p.lex.next()
		if p.tok.kind != tkComment {
			return
		}
		p.pendingComment = p.tok.text
	}
}

func (p *vparser) parse() error {
	p.consts = map[string]bool{}
	p.ffByReg = map[string]*vFF{}
	p.advanceRaw()
	if err := p.expectIdent("module"); err != nil {
		return err
	}
	if p.tok.kind != tkIdent {
		return p.errf("expected module name")
	}
	p.moduleName = p.tok.text
	p.advanceRaw()
	if err := p.parsePortList(); err != nil {
		return err
	}
	for {
		switch {
		case p.tok.kind == tkEOF:
			return p.errf("unexpected EOF before endmodule")
		case p.tok.kind == tkIdent && p.tok.text == "endmodule":
			return nil
		case p.tok.kind == tkIdent && p.tok.text == "wire":
			if err := p.skipToSemicolon(); err != nil {
				return err
			}
		case p.tok.kind == tkIdent && p.tok.text == "assign":
			if err := p.parseAssign(); err != nil {
				return err
			}
		case p.tok.kind == tkIdent && p.tok.text == "reg":
			if err := p.parseRegDecl(); err != nil {
				return err
			}
		case p.tok.kind == tkIdent && p.tok.text == "always":
			if err := p.parseAlways(); err != nil {
				return err
			}
		case p.tok.kind == tkIdent && isPrim(p.tok.text):
			if err := p.parseGate(p.tok.text); err != nil {
				return err
			}
		default:
			return p.errf("unexpected token %q", p.tok.text)
		}
	}
}

func isPrim(s string) bool {
	switch s {
	case "buf", "not", "and", "or", "nand", "nor", "xor", "xnor":
		return true
	}
	return false
}

func (p *vparser) parsePortList() error {
	if err := p.expectSym("("); err != nil {
		return err
	}
	for {
		if p.tok.kind != tkIdent {
			return p.errf("expected input/output in port list")
		}
		dir := p.tok.text
		if dir != "input" && dir != "output" {
			return p.errf("expected input/output, got %q", dir)
		}
		p.advanceRaw()
		if p.tok.kind == tkIdent && p.tok.text == "wire" {
			p.advanceRaw()
		}
		width := 1
		if p.tok.kind == tkSymbol && p.tok.text == "[" {
			p.advanceRaw()
			msb, err := p.parseInt()
			if err != nil {
				return err
			}
			if err := p.expectSym(":"); err != nil {
				return err
			}
			if _, err := p.parseInt(); err != nil {
				return err
			}
			if err := p.expectSym("]"); err != nil {
				return err
			}
			width = msb + 1
		}
		if p.tok.kind != tkIdent {
			return p.errf("expected port name")
		}
		port := vPort{name: p.tok.text, width: width}
		p.advanceRaw()
		if port.name != "clk" && port.name != "rst_n" {
			if dir == "input" {
				p.ins = append(p.ins, port)
			} else {
				p.outs = append(p.outs, port)
			}
		}
		if p.tok.kind == tkSymbol && p.tok.text == "," {
			p.advanceRaw()
			continue
		}
		if err := p.expectSym(")"); err != nil {
			return err
		}
		return p.expectSym(";")
	}
}

func (p *vparser) parseInt() (int, error) {
	if p.tok.kind != tkNumber {
		return 0, p.errf("expected number, got %q", p.tok.text)
	}
	var v int
	if _, err := fmt.Sscanf(p.tok.text, "%d", &v); err != nil {
		return 0, p.errf("bad number %q", p.tok.text)
	}
	p.advanceRaw()
	return v, nil
}

// parseOperand reads an identifier with optional [bit] selector, or a
// 1-bit constant, returning the canonical net name.
func (p *vparser) parseOperand() (string, error) {
	if p.tok.kind == tkNumber {
		switch p.tok.text {
		case "1'b0":
			p.advanceRaw()
			return "$const0", nil
		case "1'b1":
			p.advanceRaw()
			return "$const1", nil
		}
		return "", p.errf("unexpected constant %q", p.tok.text)
	}
	if p.tok.kind != tkIdent {
		return "", p.errf("expected operand, got %q", p.tok.text)
	}
	name := p.tok.text
	p.advanceRaw()
	if p.tok.kind == tkSymbol && p.tok.text == "[" {
		p.advanceRaw()
		bit, err := p.parseInt()
		if err != nil {
			return "", err
		}
		if err := p.expectSym("]"); err != nil {
			return "", err
		}
		name = fmt.Sprintf("%s[%d]", name, bit)
	}
	return name, nil
}

func (p *vparser) parseAssign() error {
	p.advanceRaw() // consume "assign"
	lhs, err := p.parseOperand()
	if err != nil {
		return err
	}
	if err := p.expectSym("="); err != nil {
		return err
	}
	rhs, err := p.parseOperand()
	if err != nil {
		return err
	}
	if p.tok.kind == tkSymbol && p.tok.text == "?" {
		// mux: lhs = sel ? b : a
		p.advanceRaw()
		bOp, err := p.parseOperand()
		if err != nil {
			return err
		}
		if err := p.expectSym(":"); err != nil {
			return err
		}
		aOp, err := p.parseOperand()
		if err != nil {
			return err
		}
		if err := p.expectSym(";"); err != nil {
			return err
		}
		block := p.trailingComment()
		p.muxes = append(p.muxes, vMux{out: lhs, sel: rhs, a: aOp, b: bOp, block: block})
		return nil
	}
	if err := p.expectSym(";"); err != nil {
		return err
	}
	p.trailingComment()
	switch rhs {
	case "$const0":
		p.consts[lhs] = false
	case "$const1":
		p.consts[lhs] = true
	default:
		p.aliases = append(p.aliases, [2]string{lhs, rhs})
	}
	return nil
}

func (p *vparser) parseGate(prim string) error {
	p.advanceRaw() // prim
	if p.tok.kind != tkIdent {
		return p.errf("expected instance name")
	}
	p.advanceRaw()
	if err := p.expectSym("("); err != nil {
		return err
	}
	var args []string
	for {
		op, err := p.parseOperand()
		if err != nil {
			return err
		}
		args = append(args, op)
		if p.tok.kind == tkSymbol && p.tok.text == "," {
			p.advanceRaw()
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return err
	}
	if err := p.expectSym(";"); err != nil {
		return err
	}
	block := p.trailingComment()
	if len(args) < 2 {
		return p.errf("gate %s with %d terminals", prim, len(args))
	}
	p.gates = append(p.gates, vGate{prim: prim, out: args[0], ins: args[1:], block: block})
	return nil
}

func (p *vparser) parseRegDecl() error {
	p.advanceRaw() // reg
	if p.tok.kind != tkIdent {
		return p.errf("expected reg name")
	}
	reg := p.tok.text
	p.advanceRaw()
	if err := p.expectSym(";"); err != nil {
		return err
	}
	rtlName := p.trailingComment()
	ff := &vFF{reg: reg, rtlName: rtlName}
	p.ffByReg[reg] = ff
	p.ffs = append(p.ffs, ff)
	return nil
}

// parseAlways consumes the canonical FF block:
//
//	always @(posedge clk or negedge rst_n)
//	  if (!rst_n) R <= 1'bV;
//	  [else if (EN) R <= D;] | [else R <= D;]
func (p *vparser) parseAlways() error {
	p.advanceRaw() // always
	if err := p.expectSym("@"); err != nil {
		return err
	}
	if err := p.expectSym("("); err != nil {
		return err
	}
	for !(p.tok.kind == tkSymbol && p.tok.text == ")") {
		if p.tok.kind == tkEOF {
			return p.errf("unterminated sensitivity list")
		}
		p.advanceRaw()
	}
	p.advanceRaw() // )
	if err := p.expectIdent("if"); err != nil {
		return err
	}
	if err := p.expectSym("("); err != nil {
		return err
	}
	if err := p.expectSym("!"); err != nil {
		return err
	}
	if err := p.expectIdent("rst_n"); err != nil {
		return err
	}
	if err := p.expectSym(")"); err != nil {
		return err
	}
	if p.tok.kind != tkIdent {
		return p.errf("expected reg in reset arm")
	}
	reg := p.tok.text
	ff := p.ffByReg[reg]
	if ff == nil {
		return p.errf("always block for undeclared reg %q", reg)
	}
	p.advanceRaw()
	if err := p.expectSym("<"); err != nil {
		return err
	}
	if err := p.expectSym("="); err != nil {
		return err
	}
	if p.tok.kind != tkNumber {
		return p.errf("expected reset constant")
	}
	ff.rv = p.tok.text == "1'b1"
	p.advanceRaw()
	if err := p.expectSym(";"); err != nil {
		return err
	}
	if err := p.expectIdent("else"); err != nil {
		return err
	}
	if p.tok.kind == tkIdent && p.tok.text == "if" {
		p.advanceRaw()
		if err := p.expectSym("("); err != nil {
			return err
		}
		en, err := p.parseOperand()
		if err != nil {
			return err
		}
		ff.en = en
		if err := p.expectSym(")"); err != nil {
			return err
		}
	}
	if err := p.expectIdent(reg); err != nil {
		return err
	}
	if err := p.expectSym("<"); err != nil {
		return err
	}
	if err := p.expectSym("="); err != nil {
		return err
	}
	d, err := p.parseOperand()
	if err != nil {
		return err
	}
	ff.d = d
	return p.expectSym(";")
}

func (p *vparser) skipToSemicolon() error {
	for {
		if p.tok.kind == tkEOF {
			return p.errf("unexpected EOF")
		}
		if p.tok.kind == tkSymbol && p.tok.text == ";" {
			p.advanceRaw()
			return nil
		}
		p.advanceRaw()
	}
}
