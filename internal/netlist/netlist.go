// Package netlist defines the structural gate-level intermediate
// representation every other package operates on: nets, combinational
// gates, D flip-flops and ports, with hierarchical block paths.
//
// The representation corresponds to the "synthesized RTL" the paper's
// zone-extraction tool consumes: a flat gate graph in which registers
// keep their RTL names so they can be compacted back into sensible zones.
package netlist

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// NetID identifies a net (a single-bit wire) within one Netlist.
type NetID int32

// GateID identifies a combinational gate within one Netlist.
type GateID int32

// FFID identifies a D flip-flop within one Netlist.
type FFID int32

// InvalidNet is the zero-value sentinel for "no net".
const InvalidNet NetID = -1

// GateType enumerates the primitive combinational cells.
type GateType uint8

// Primitive gate types. MUX2 selects inputs[1] when inputs[0] is 0 and
// inputs[2] when inputs[0] is 1.
const (
	BUF GateType = iota
	NOT
	AND
	OR
	NAND
	NOR
	XOR
	XNOR
	MUX2
)

var gateNames = [...]string{"BUF", "NOT", "AND", "OR", "NAND", "NOR", "XOR", "XNOR", "MUX2"}

func (t GateType) String() string {
	if int(t) < len(gateNames) {
		return gateNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// Arity returns the number of inputs the gate type requires, or -1 when
// the type accepts any arity >= 2 (AND/OR/NAND/NOR/XOR/XNOR).
func (t GateType) Arity() int {
	switch t {
	case BUF, NOT:
		return 1
	case MUX2:
		return 3
	default:
		return -1
	}
}

// Net is a single-bit wire. Name is optional; driver bookkeeping is
// maintained by the Netlist.
type Net struct {
	ID   NetID
	Name string
}

// Gate is a primitive combinational cell with one output net.
type Gate struct {
	ID     GateID
	Type   GateType
	Inputs []NetID
	Output NetID
	// Block is the hierarchical block path ("F_MEM/DECODER") the gate
	// belongs to; used for sub-block sensible zones.
	Block string
}

// FF is a positive-edge D flip-flop with optional clock enable and a
// synchronous reset value. All flip-flops share the implicit clock.
type FF struct {
	ID FFID
	// Name is the RTL register name including bit index, e.g. "wbuf_data[3]".
	Name   string
	D      NetID
	Q      NetID
	Enable NetID // InvalidNet when always enabled
	// ResetVal is the value loaded by the implicit global reset.
	ResetVal bool
	Block    string
}

// Port is a named primary input or output bus of the netlist.
type Port struct {
	Name string
	Nets []NetID
}

// Netlist is a flat synchronous gate-level design: one implicit clock,
// one implicit global reset, combinational gates and D flip-flops.
type Netlist struct {
	Name  string
	Nets  []Net
	Gates []Gate
	FFs   []FF

	Inputs  []Port
	Outputs []Port

	// Externals are nets driven by behavioral peripherals (e.g. a memory
	// array model) rather than by gates or primary inputs. The simulator
	// lets attached peripherals update them at each clock edge.
	Externals []Port

	// Const0 and Const1 are nets tied to constant logic levels, or
	// InvalidNet when the design never used a constant.
	Const0 NetID
	Const1 NetID

	driver map[NetID]driverRef
	keep   []NetID

	// epoch counts structural mutations; topo and valid memoize
	// Levelize/Validate results for one epoch. Campaigns construct one
	// simulator per experiment over a finished netlist, so both would
	// otherwise re-walk the whole design per instance. The caches are
	// atomic pointers: concurrent readers may race to compute the same
	// deterministic result, and builds (the only mutators) are
	// single-goroutine, so a plain epoch counter suffices.
	epoch uint64
	topo  atomic.Pointer[topoCache]
	valid atomic.Pointer[validCache]
}

type topoCache struct {
	epoch uint64
	order []GateID
	err   error
}

type validCache struct {
	epoch uint64
	err   error
}

// mutated invalidates the memoized Levelize/Validate results. Every
// structural mutator calls it (directly or through AddNet/setDriver).
func (n *Netlist) mutated() {
	n.epoch++
}

type driverRef struct {
	kind  driverKind
	index int32
}

type driverKind uint8

const (
	driverNone driverKind = iota
	driverGate
	driverFF
	driverInput
	driverConst
	driverExternal
)

// New returns an empty netlist with the given design name.
func New(name string) *Netlist {
	return &Netlist{
		Name:   name,
		Const0: InvalidNet,
		Const1: InvalidNet,
		driver: make(map[NetID]driverRef),
	}
}

// AddNet creates a new net and returns its ID.
func (n *Netlist) AddNet(name string) NetID {
	n.mutated()
	id := NetID(len(n.Nets))
	n.Nets = append(n.Nets, Net{ID: id, Name: name})
	return id
}

// NetName returns the net's name, or a synthesized "n<id>" placeholder.
func (n *Netlist) NetName(id NetID) string {
	if id >= 0 && int(id) < len(n.Nets) && n.Nets[id].Name != "" {
		return n.Nets[id].Name
	}
	return fmt.Sprintf("n%d", id)
}

// ConstNet returns the net tied to the given constant value, creating it
// on first use.
func (n *Netlist) ConstNet(v bool) NetID {
	if v {
		if n.Const1 == InvalidNet {
			n.Const1 = n.AddNet("const1")
			n.driver[n.Const1] = driverRef{kind: driverConst}
			n.mutated()
		}
		return n.Const1
	}
	if n.Const0 == InvalidNet {
		n.Const0 = n.AddNet("const0")
		n.driver[n.Const0] = driverRef{kind: driverConst}
		n.mutated()
	}
	return n.Const0
}

// IsConst reports whether the net is one of the constant nets, and the
// constant value if so.
func (n *Netlist) IsConst(id NetID) (val, ok bool) {
	switch id {
	case n.Const0:
		return false, id != InvalidNet
	case n.Const1:
		return true, id != InvalidNet
	}
	return false, false
}

// AddGate creates a gate driving a fresh unnamed net and returns the
// output net. Inputs must already exist.
func (n *Netlist) AddGate(t GateType, block string, inputs ...NetID) NetID {
	out := n.AddNet("")
	n.AddGateTo(t, block, out, inputs...)
	return out
}

// AddGateTo creates a gate driving the given existing output net.
func (n *Netlist) AddGateTo(t GateType, block string, output NetID, inputs ...NetID) GateID {
	if a := t.Arity(); a >= 0 && len(inputs) != a {
		panic(fmt.Sprintf("netlist: %s gate requires %d inputs, got %d", t, a, len(inputs)))
	}
	if t.Arity() < 0 && len(inputs) < 2 {
		panic(fmt.Sprintf("netlist: %s gate requires >=2 inputs, got %d", t, len(inputs)))
	}
	id := GateID(len(n.Gates))
	in := make([]NetID, len(inputs))
	copy(in, inputs)
	n.Gates = append(n.Gates, Gate{ID: id, Type: t, Inputs: in, Output: output, Block: block})
	n.setDriver(output, driverRef{kind: driverGate, index: int32(id)})
	return id
}

// AddFF creates a D flip-flop. enable may be InvalidNet for an
// always-enabled register.
func (n *Netlist) AddFF(name, block string, d, enable NetID, resetVal bool) (FFID, NetID) {
	q := n.AddNet(name)
	id := FFID(len(n.FFs))
	n.FFs = append(n.FFs, FF{ID: id, Name: name, D: d, Q: q, Enable: enable, ResetVal: resetVal, Block: block})
	n.setDriver(q, driverRef{kind: driverFF, index: int32(id)})
	return id, q
}

// AddFFTo creates a D flip-flop driving an existing net (the parser's
// counterpart of AddGateTo).
func (n *Netlist) AddFFTo(name, block string, d, enable, q NetID, resetVal bool) FFID {
	id := FFID(len(n.FFs))
	n.FFs = append(n.FFs, FF{ID: id, Name: name, D: d, Q: q, Enable: enable, ResetVal: resetVal, Block: block})
	n.setDriver(q, driverRef{kind: driverFF, index: int32(id)})
	return id
}

// SetFFD rebinds the D input of an existing flip-flop. Used by the RTL
// builder to close register feedback loops.
func (n *Netlist) SetFFD(id FFID, d NetID) {
	n.mutated()
	n.FFs[id].D = d
}

// SetFFEnable rebinds the clock-enable of an existing flip-flop.
func (n *Netlist) SetFFEnable(id FFID, en NetID) {
	n.mutated()
	n.FFs[id].Enable = en
}

// AddInput registers a primary input port of the given width, creating
// one net per bit (bit 0 first).
func (n *Netlist) AddInput(name string, width int) []NetID {
	nets := make([]NetID, width)
	for i := range nets {
		nm := name
		if width > 1 {
			nm = fmt.Sprintf("%s[%d]", name, i)
		}
		nets[i] = n.AddNet(nm)
		n.setDriver(nets[i], driverRef{kind: driverInput})
	}
	n.Inputs = append(n.Inputs, Port{Name: name, Nets: nets})
	return nets
}

// AddExternal registers a peripheral-driven port of the given width,
// creating one net per bit. The nets validate as driven but are updated
// by an attached behavioral component, not by gates.
func (n *Netlist) AddExternal(name string, width int) []NetID {
	nets := make([]NetID, width)
	for i := range nets {
		nm := name
		if width > 1 {
			nm = fmt.Sprintf("%s[%d]", name, i)
		}
		nets[i] = n.AddNet(nm)
		n.setDriver(nets[i], driverRef{kind: driverExternal})
	}
	n.Externals = append(n.Externals, Port{Name: name, Nets: nets})
	return nets
}

// IsExternal reports whether the net is driven by a peripheral.
func (n *Netlist) IsExternal(id NetID) bool {
	ref, ok := n.driver[id]
	return ok && ref.kind == driverExternal
}

// IsDriven reports whether anything drives the net (gate, FF, primary
// input, constant or peripheral). Nets orphaned by dead-logic pruning
// are undriven and unread.
func (n *Netlist) IsDriven(id NetID) bool {
	ref, ok := n.driver[id]
	return ok && ref.kind != driverNone
}

// AddOutput registers a primary output port over existing nets.
func (n *Netlist) AddOutput(name string, nets []NetID) {
	n.mutated()
	cp := make([]NetID, len(nets))
	copy(cp, nets)
	n.Outputs = append(n.Outputs, Port{Name: name, Nets: cp})
}

func (n *Netlist) setDriver(id NetID, ref driverRef) {
	if prev, ok := n.driver[id]; ok && prev.kind != driverNone {
		panic(fmt.Sprintf("netlist: net %s (%d) already driven", n.NetName(id), id))
	}
	n.mutated()
	n.driver[id] = ref
}

// DriverGate returns the gate driving the net, if any.
func (n *Netlist) DriverGate(id NetID) (*Gate, bool) {
	if ref, ok := n.driver[id]; ok && ref.kind == driverGate {
		return &n.Gates[ref.index], true
	}
	return nil, false
}

// DriverFF returns the flip-flop driving the net, if any.
func (n *Netlist) DriverFF(id NetID) (*FF, bool) {
	if ref, ok := n.driver[id]; ok && ref.kind == driverFF {
		return &n.FFs[ref.index], true
	}
	return nil, false
}

// IsPrimaryInput reports whether the net is driven by a primary input.
func (n *Netlist) IsPrimaryInput(id NetID) bool {
	ref, ok := n.driver[id]
	return ok && ref.kind == driverInput
}

// Stats summarizes netlist composition.
type Stats struct {
	Nets      int
	Gates     int
	FFs       int
	Inputs    int // input bits
	Outputs   int // output bits
	MaxFanout int
	Levels    int // combinational depth (0 when empty)
}

// ComputeStats returns composition statistics for the netlist.
func (n *Netlist) ComputeStats() Stats {
	s := Stats{Nets: len(n.Nets), Gates: len(n.Gates), FFs: len(n.FFs)}
	for _, p := range n.Inputs {
		s.Inputs += len(p.Nets)
	}
	for _, p := range n.Outputs {
		s.Outputs += len(p.Nets)
	}
	fanout := n.FanoutCounts()
	for _, f := range fanout {
		if f > s.MaxFanout {
			s.MaxFanout = f
		}
	}
	if order, err := n.Levelize(); err == nil && len(order) > 0 {
		level := make([]int, len(n.Nets))
		for _, gid := range order {
			g := &n.Gates[gid]
			max := 0
			for _, in := range g.Inputs {
				if level[in] > max {
					max = level[in]
				}
			}
			level[g.Output] = max + 1
			if level[g.Output] > s.Levels {
				s.Levels = level[g.Output]
			}
		}
	}
	return s
}

// FanoutCounts returns, per net, the number of gate inputs, FF data/enable
// pins and primary outputs the net feeds.
func (n *Netlist) FanoutCounts() []int {
	fan := make([]int, len(n.Nets))
	for i := range n.Gates {
		for _, in := range n.Gates[i].Inputs {
			fan[in]++
		}
	}
	for i := range n.FFs {
		fan[n.FFs[i].D]++
		if n.FFs[i].Enable != InvalidNet {
			fan[n.FFs[i].Enable]++
		}
	}
	for _, p := range n.Outputs {
		for _, id := range p.Nets {
			fan[id]++
		}
	}
	return fan
}

// GateReaders returns, per net, the IDs of gates that read the net as
// an input (the forward adjacency of the combinational graph). A gate
// reading the same net on several pins appears once per pin.
func (n *Netlist) GateReaders() [][]GateID {
	readers := make([][]GateID, len(n.Nets))
	for i := range n.Gates {
		for _, in := range n.Gates[i].Inputs {
			readers[in] = append(readers[in], n.Gates[i].ID)
		}
	}
	return readers
}

// FFReaders returns, per net, the IDs of flip-flops that sample the net
// on their D or Enable pin (the forward adjacency across clock edges).
func (n *Netlist) FFReaders() [][]FFID {
	readers := make([][]FFID, len(n.Nets))
	for i := range n.FFs {
		readers[n.FFs[i].D] = append(readers[n.FFs[i].D], n.FFs[i].ID)
		if en := n.FFs[i].Enable; en != InvalidNet {
			readers[en] = append(readers[en], n.FFs[i].ID)
		}
	}
	return readers
}

// Levelize returns gate IDs in topological (evaluation) order. It fails
// if the combinational logic contains a cycle. The order is memoized
// until the next structural mutation; callers must treat the returned
// slice as read-only.
func (n *Netlist) Levelize() ([]GateID, error) {
	if c := n.topo.Load(); c != nil && c.epoch == n.epoch {
		return c.order, c.err
	}
	order, err := n.levelize()
	n.topo.Store(&topoCache{epoch: n.epoch, order: order, err: err})
	return order, err
}

func (n *Netlist) levelize() ([]GateID, error) {
	// Kahn's algorithm over gates; FF outputs, primary inputs and
	// constants are sources.
	indeg := make([]int32, len(n.Gates))
	// users[net] = gates reading the net.
	users := make(map[NetID][]GateID, len(n.Nets))
	for i := range n.Gates {
		g := &n.Gates[i]
		for _, in := range g.Inputs {
			if _, drivenByGate := n.DriverGate(in); drivenByGate {
				indeg[i]++
			}
			users[in] = append(users[in], g.ID)
		}
	}
	queue := make([]GateID, 0, len(n.Gates))
	for i := range n.Gates {
		if indeg[i] == 0 {
			queue = append(queue, GateID(i))
		}
	}
	order := make([]GateID, 0, len(n.Gates))
	for len(queue) > 0 {
		gid := queue[0]
		queue = queue[1:]
		order = append(order, gid)
		out := n.Gates[gid].Output
		for _, u := range users[out] {
			indeg[u]--
			if indeg[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	if len(order) != len(n.Gates) {
		return nil, fmt.Errorf("netlist %q: combinational cycle involving %d gate(s)", n.Name, len(n.Gates)-len(order))
	}
	return order, nil
}

// Validate checks structural well-formedness: every gate/FF input net
// exists and is driven, no net is driven twice (enforced at build time),
// no combinational cycles, and every primary output is driven. All
// structural violations are accumulated (errors.Join), so a single pass
// reports the full list rather than the first hit. The verdict is
// memoized until the next structural mutation, so per-experiment
// simulator construction validates the shared design only once.
func (n *Netlist) Validate() error {
	if c := n.valid.Load(); c != nil && c.epoch == n.epoch {
		return c.err
	}
	err := n.validate()
	n.valid.Store(&validCache{epoch: n.epoch, err: err})
	return err
}

func (n *Netlist) validate() error {
	var errs []error
	// what() renders the offending pin lazily: the success path walks
	// every pin of the design and must not pay for error formatting.
	check := func(id NetID, what func() string) {
		if id < 0 || int(id) >= len(n.Nets) {
			errs = append(errs, fmt.Errorf("netlist %q: %s references nonexistent net %d", n.Name, what(), id))
			return
		}
		ref, ok := n.driver[id]
		if !ok || ref.kind == driverNone {
			errs = append(errs, fmt.Errorf("netlist %q: %s reads undriven net %s", n.Name, what(), n.NetName(id)))
		}
	}
	for i := range n.Gates {
		g := &n.Gates[i]
		what := func() string { return fmt.Sprintf("gate %d (%s)", g.ID, g.Type) }
		for _, in := range g.Inputs {
			check(in, what)
		}
	}
	for i := range n.FFs {
		ff := &n.FFs[i]
		check(ff.D, func() string { return fmt.Sprintf("FF %q D pin", ff.Name) })
		if ff.Enable != InvalidNet {
			check(ff.Enable, func() string { return fmt.Sprintf("FF %q enable pin", ff.Name) })
		}
	}
	for _, p := range n.Outputs {
		what := func() string { return fmt.Sprintf("output port %q", p.Name) }
		for _, id := range p.Nets {
			check(id, what)
		}
	}
	if _, err := n.Levelize(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// MarkKeep protects nets from dead-logic pruning even when no gate, FF
// or port reads them — used for nets sampled by behavioral peripherals.
func (n *Netlist) MarkKeep(nets ...NetID) {
	n.mutated()
	n.keep = append(n.keep, nets...)
}

// Kept returns the nets protected by MarkKeep (peripheral-sampled nets).
// Static analyses treat them as read.
func (n *Netlist) Kept() []NetID {
	return append([]NetID(nil), n.keep...)
}

// Prune removes gates whose outputs are transitively unread (dead
// logic), the way synthesis sweeps unused carry-outs and the like.
// Roots are primary outputs, FF D/enable pins, and kept nets. It returns
// the number of gates removed. Net IDs are preserved; removed gates'
// output nets become undriven (and unread).
func (n *Netlist) Prune() int {
	n.mutated()
	liveNets := make([]bool, len(n.Nets))
	mark := func(id NetID) {
		if id >= 0 && int(id) < len(liveNets) {
			liveNets[id] = true
		}
	}
	for _, p := range n.Outputs {
		for _, id := range p.Nets {
			mark(id)
		}
	}
	for i := range n.FFs {
		mark(n.FFs[i].D)
		mark(n.FFs[i].Enable)
	}
	for _, id := range n.keep {
		mark(id)
	}
	// Backward closure over gates.
	liveGates := make([]bool, len(n.Gates))
	changed := true
	for changed {
		changed = false
		for i := range n.Gates {
			g := &n.Gates[i]
			if liveGates[i] || !liveNets[g.Output] {
				continue
			}
			liveGates[i] = true
			changed = true
			for _, in := range g.Inputs {
				if !liveNets[in] {
					liveNets[in] = true
				}
			}
		}
	}
	removed := 0
	kept := n.Gates[:0]
	for i := range n.Gates {
		if !liveGates[i] {
			delete(n.driver, n.Gates[i].Output)
			removed++
			continue
		}
		kept = append(kept, n.Gates[i])
	}
	n.Gates = kept
	// Reassign gate IDs and rebuild gate driver references.
	for i := range n.Gates {
		n.Gates[i].ID = GateID(i)
		n.driver[n.Gates[i].Output] = driverRef{kind: driverGate, index: int32(i)}
	}
	return removed
}

// Blocks returns the sorted set of distinct non-empty block paths used by
// gates and flip-flops.
func (n *Netlist) Blocks() []string {
	set := make(map[string]bool)
	for i := range n.Gates {
		if b := n.Gates[i].Block; b != "" {
			set[b] = true
		}
	}
	for i := range n.FFs {
		if b := n.FFs[i].Block; b != "" {
			set[b] = true
		}
	}
	out := make([]string, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// BlockGateCount returns the number of gates per block path (exact match).
func (n *Netlist) BlockGateCount() map[string]int {
	m := make(map[string]int)
	for i := range n.Gates {
		m[n.Gates[i].Block]++
	}
	return m
}

// String returns a one-line summary.
func (n *Netlist) String() string {
	s := n.ComputeStats()
	return fmt.Sprintf("%s: %d gates, %d FFs, %d nets, %d/%d in/out bits, depth %d",
		n.Name, s.Gates, s.FFs, s.Nets, s.Inputs, s.Outputs, s.Levels)
}

// FindInput returns the input port with the given name.
func (n *Netlist) FindInput(name string) (Port, bool) {
	for _, p := range n.Inputs {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// FindOutput returns the output port with the given name.
func (n *Netlist) FindOutput(name string) (Port, bool) {
	for _, p := range n.Outputs {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// RegisterGroups compacts flip-flops back into RTL register buses: FFs
// named "base[i]" (or exactly "base") are grouped under "base", in bit
// order. This is the register compaction step of the extraction tool.
func (n *Netlist) RegisterGroups() map[string][]FFID {
	groups := make(map[string][]FFID)
	for i := range n.FFs {
		base := RegisterBase(n.FFs[i].Name)
		groups[base] = append(groups[base], FFID(i))
	}
	return groups
}

// RegisterBase strips a trailing "[i]" bit index from a register name.
func RegisterBase(name string) string {
	if j := strings.LastIndexByte(name, '['); j > 0 && strings.HasSuffix(name, "]") {
		return name[:j]
	}
	return name
}
