package netlist

import (
	"bytes"
	"strings"
	"testing"
)

// buildSample returns a netlist exercising every emitted construct:
// gates of each type, a mux, constants, plain and enabled FFs, vector
// and scalar ports, block paths.
func buildSample(t *testing.T) *Netlist {
	t.Helper()
	n := New("sample design")
	a := n.AddInput("a", 4)
	b := n.AddInput("b", 1)[0]
	en := n.AddInput("en", 1)[0]

	x := n.AddGate(AND, "BLK/SUB", a[0], a[1])
	y := n.AddGate(XOR, "BLK/SUB", x, a[2])
	z := n.AddGate(NOR, "", y, b)
	inv := n.AddGate(NOT, "", z)
	c1 := n.ConstNet(true)
	mx := n.AddGate(MUX2, "MUXB", b, inv, c1)

	_, q1 := n.AddFF("REGS/state[0]", "REGS", mx, InvalidNet, false)
	_, q2 := n.AddFF("REGS/state[1]", "REGS", q1, en, true)
	out := n.AddGate(OR, "", q1, q2)

	n.AddOutput("y", []NetID{out})
	n.AddOutput("vec", []NetID{q1, q2})
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

func roundTrip(t *testing.T, n *Netlist) *Netlist {
	t.Helper()
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseVerilog(&buf)
	if err != nil {
		t.Fatalf("parse back: %v\n---\n%s", err, buf.String())
	}
	return parsed
}

func TestVerilogWriteBasics(t *testing.T) {
	n := buildSample(t)
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	src := buf.String()
	for _, want := range []string{
		"module sample_design", "input wire [3:0] a", "output wire y",
		"and g0", "xor g1", "nor g2", "not g3",
		"? ", "always @(posedge clk or negedge rst_n)",
		"// REGS/state[0]", "// BLK/SUB", "endmodule",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("emitted Verilog missing %q", want)
		}
	}
}

func TestVerilogRoundTripStructure(t *testing.T) {
	n := buildSample(t)
	p := roundTrip(t, n)
	if p.Name != "sample_design" {
		t.Errorf("module name = %q", p.Name)
	}
	if len(p.Gates) != len(n.Gates) {
		t.Errorf("gate count %d != %d", len(p.Gates), len(n.Gates))
	}
	if len(p.FFs) != len(n.FFs) {
		t.Errorf("FF count %d != %d", len(p.FFs), len(n.FFs))
	}
	if len(p.Inputs) != len(n.Inputs) || len(p.Outputs) != len(n.Outputs) {
		t.Error("port counts differ")
	}
	// Register names and enables survive.
	if p.FFs[0].Name != "REGS/state[0]" || p.FFs[0].Block != "REGS" {
		t.Errorf("FF0 = %q block %q", p.FFs[0].Name, p.FFs[0].Block)
	}
	if p.FFs[1].Enable == InvalidNet {
		t.Error("FF1 enable lost")
	}
	if !p.FFs[1].ResetVal || p.FFs[0].ResetVal {
		t.Error("reset values lost")
	}
	// Register compaction still works on the parsed netlist.
	groups := p.RegisterGroups()
	if len(groups["REGS/state"]) != 2 {
		t.Errorf("register group lost: %v", groups)
	}
	// Gate blocks survive.
	foundBlock := false
	for i := range p.Gates {
		if p.Gates[i].Block == "BLK/SUB" {
			foundBlock = true
		}
	}
	if !foundBlock {
		t.Error("gate block path lost")
	}
}

func TestVerilogRoundTripSecondGeneration(t *testing.T) {
	// write(parse(write(n))) must be stable.
	n := buildSample(t)
	p1 := roundTrip(t, n)
	p2 := roundTrip(t, p1)
	if len(p2.Gates) != len(p1.Gates) || len(p2.FFs) != len(p1.FFs) ||
		len(p2.Nets) != len(p1.Nets) {
		t.Errorf("second generation drifted: %v vs %v", p2.String(), p1.String())
	}
}

func TestParseVerilogErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"no module":    "wire w;",
		"bad port dir": "module m (inout wire x); endmodule",
		"early EOF":    "module m (input wire x);",
		"double drive": `module m (input wire x, output wire y);
			wire w0; buf g0 (w0, x); buf g1 (w0, x); assign y = w0; endmodule`,
		"undeclared reg": `module m (input wire x, output wire y);
			always @(posedge clk or negedge rst_n) if (!rst_n) r <= 1'b0; else r <= x;
			assign y = x; endmodule`,
		"reg without always": `module m (input wire x, output wire y);
			reg f_q; assign y = x; endmodule`,
	}
	for name, src := range cases {
		if _, err := ParseVerilog(strings.NewReader(src)); err == nil {
			t.Errorf("%s: parse accepted invalid input", name)
		}
	}
}

func TestParseVerilogHandwritten(t *testing.T) {
	// A hand-written netlist in the supported subset, with free-form
	// whitespace and comments.
	src := `
// a hand-written majority voter
module maj (
  input wire clk, input wire rst_n,
  input wire [2:0] in,
  output wire out
);
  wire w0, w1, w2, w3;
  and gA (w0, in[0], in[1]); // VOTER
  and gB (w1, in[1], in[2]); // VOTER
  and gC (w2, in[0], in[2]); // VOTER
  or  gD (w3, w0, w1, w2);   // VOTER
  reg f_q; // VOTER/latched
  always @(posedge clk or negedge rst_n)
    if (!rst_n) f_q <= 1'b0;
    else f_q <= w3;
  assign out = f_q;
endmodule
`
	n, err := ParseVerilog(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Gates) != 4 || len(n.FFs) != 1 {
		t.Fatalf("parsed %d gates %d FFs", len(n.Gates), len(n.FFs))
	}
	if n.FFs[0].Name != "VOTER/latched" {
		t.Errorf("FF name = %q", n.FFs[0].Name)
	}
	if p, ok := n.FindInput("in"); !ok || len(p.Nets) != 3 {
		t.Error("vector input lost")
	}
}
