package netlist

import (
	"fmt"
	"strings"
)

// build reconstructs a Netlist from the parsed statement lists. Simple
// assigns are treated as net aliases (union-find), so a written-then-
// parsed netlist has the same gate and flip-flop population as the
// original rather than growing buffer chains.
func (p *vparser) build() (*Netlist, error) {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] == "" || parent[x] == x {
			return x
		}
		root := find(parent[x])
		parent[x] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, al := range p.aliases {
		union(al[0], al[1])
	}
	for name, v := range p.consts {
		if v {
			union(name, "$const1")
		} else {
			union(name, "$const0")
		}
	}

	n := New(p.moduleName)
	netOf := map[string]NetID{}
	getNet := func(name string) NetID {
		c := find(name)
		if id, ok := netOf[c]; ok {
			return id
		}
		var id NetID
		switch c {
		case "$const0":
			id = n.ConstNet(false)
		case "$const1":
			id = n.ConstNet(true)
		default:
			id = n.AddNet("")
		}
		netOf[c] = id
		return id
	}
	// Constants may be aliased under a non-$const root; normalize.
	for _, root := range []string{"$const0", "$const1"} {
		if r := find(root); r != root {
			// Make the $const name the class representative.
			parent[r] = root
			parent[root] = root
		}
	}

	bitName := func(port vPort, bit int) string {
		if port.width == 1 {
			return port.name
		}
		return fmt.Sprintf("%s[%d]", port.name, bit)
	}
	for _, port := range p.ins {
		nets := n.AddInput(port.name, port.width)
		for bit, id := range nets {
			c := find(bitName(port, bit))
			if _, exists := netOf[c]; exists {
				return nil, fmt.Errorf("verilog: input %s aliases an existing net", bitName(port, bit))
			}
			netOf[c] = id
		}
	}

	// Two passes over the flip-flops: Q nets first (a D input may
	// reference any register's Q, including its own), then the cells.
	for _, ff := range p.ffs {
		if ff.d == "" {
			return nil, fmt.Errorf("verilog: reg %q has no always block", ff.reg)
		}
		getNet(ff.reg)
	}
	for _, ff := range p.ffs {
		name := ff.rtlName
		if name == "" {
			name = ff.reg
		}
		block := ""
		if i := strings.LastIndexByte(name, '/'); i > 0 {
			block = name[:i]
		}
		en := InvalidNet
		if ff.en != "" {
			en = getNet(ff.en)
		}
		q := getNet(ff.reg)
		if n.IsDriven(q) {
			return nil, fmt.Errorf("verilog: reg %q output aliases a driven net", ff.reg)
		}
		n.AddFFTo(name, block, getNet(ff.d), en, q, ff.rv)
	}

	for _, g := range p.gates {
		out := getNet(g.out)
		if n.IsDriven(out) {
			return nil, fmt.Errorf("verilog: net %q driven twice", g.out)
		}
		ins := make([]NetID, len(g.ins))
		for i, in := range g.ins {
			ins[i] = getNet(in)
		}
		n.AddGateTo(primType(g.prim), g.block, out, ins...)
	}
	for _, m := range p.muxes {
		out := getNet(m.out)
		if n.IsDriven(out) {
			return nil, fmt.Errorf("verilog: net %q driven twice", m.out)
		}
		n.AddGateTo(MUX2, m.block, out, getNet(m.sel), getNet(m.a), getNet(m.b))
	}

	for _, port := range p.outs {
		nets := make([]NetID, port.width)
		for bit := range nets {
			nets[bit] = getNet(bitName(port, bit))
		}
		n.AddOutput(port.name, nets)
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("verilog: parsed netlist invalid: %w", err)
	}
	return n, nil
}

func primType(prim string) GateType {
	switch prim {
	case "buf":
		return BUF
	case "not":
		return NOT
	case "and":
		return AND
	case "or":
		return OR
	case "nand":
		return NAND
	case "nor":
		return NOR
	case "xor":
		return XOR
	case "xnor":
		return XNOR
	}
	return BUF
}
