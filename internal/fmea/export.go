package fmea

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV exports the worksheet in the spreadsheet's column layout:
// zone, failure mode, λ components, factors, claims, and the computed
// per-row metrics.
func (w *Worksheet) WriteCSV(out io.Writer) error {
	cw := csv.NewWriter(out)
	header := []string{
		"zone", "failure_mode", "lambda_transient_fit", "lambda_permanent_fit",
		"S", "freq", "lifetime",
		"ddf_hw_trans", "ddf_hw_perm", "ddf_sw_trans", "ddf_sw_perm",
		"tech_hw", "tech_sw",
		"lambda_s", "lambda_d", "lambda_dd", "lambda_du", "dc", "sff", "note",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for i := range w.Rows {
		r := &w.Rows[i]
		m := r.RowMetrics()
		rec := []string{
			r.ZoneName, r.Mode.String(),
			f(r.Lambda.Transient), f(r.Lambda.Permanent),
			f(r.S), r.Freq.String(), f(r.Lifetime),
			f(r.DDF.HWTransient), f(r.DDF.HWPermanent),
			f(r.DDF.SWTransient), f(r.DDF.SWPermanent),
			string(r.TechHW), string(r.TechSW),
			f(m.LambdaS), f(m.LambdaD), f(m.LambdaDD), f(m.LambdaDU),
			f(m.DC()), f(m.SFF()), r.Note,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	// Totals row.
	tot := w.Totals()
	rec := []string{
		"TOTAL", "", "", "", "", "", "", "", "", "", "", "", "",
		f(tot.LambdaS), f(tot.LambdaD), f(tot.LambdaDD), f(tot.LambdaDU),
		f(tot.DC()), f(tot.SFF()), "",
	}
	if err := cw.Write(rec); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Summary renders the SoC-level metrics in one line.
func (w *Worksheet) Summary() string {
	m := w.Totals()
	return fmt.Sprintf("%s: λS=%.4g λD=%.4g λDD=%.4g λDU=%.4g DC=%.4f SFF=%.4f (%s @ HFT0)",
		w.Design, m.LambdaS, m.LambdaD, m.LambdaDD, m.LambdaDU, m.DC(), m.SFF(), w.SIL(0))
}
