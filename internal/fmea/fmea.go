// Package fmea implements the paper's FMEA "spreadsheet" (Sections 3–4):
// one row per sensible zone × failure mode carrying the elementary
// failure rate, the safe/dangerous split (S and D factors), the usage
// frequency class F, the lifetime ζ, and the claimed detected-dangerous
// fractions (DDF, split HW/SW × transient/permanent and clamped to the
// maximum diagnostic coverage IEC 61508 grants the claiming technique).
//
// From the rows it computes the norm's metrics —
//
//	DC  = λDD / λD
//	SFF = (λS + λDD) / (λS + λD)
//
// — per zone and for the whole SoC, a criticality ranking by undetected
// dangerous rate, and the sensitivity spans of Section 4.
package fmea

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fit"
	"repro/internal/iec61508"
)

// FreqClass is the usage-frequency class F of a sensible zone.
type FreqClass uint8

// Frequency classes: F1 zones are active essentially always, F4 rarely.
const (
	F1 FreqClass = iota
	F2
	F3
	F4
)

// Usage returns the activity factor applied to the zone's failure rate.
func (f FreqClass) Usage() float64 {
	switch f {
	case F1:
		return 1.0
	case F2:
		return 0.7
	case F3:
		return 0.4
	default:
		return 0.1
	}
}

func (f FreqClass) String() string {
	return fmt.Sprintf("F%d", int(f)+1)
}

// DDF is the claimed Detected Dangerous Failure fraction, split by
// detecting technique class (hardware/software) and fault persistence.
type DDF struct {
	HWTransient float64
	HWPermanent float64
	SWTransient float64
	SWPermanent float64
}

// combine merges independent HW and SW coverage: 1-(1-hw)(1-sw).
func combine(hw, sw float64) float64 {
	return 1 - (1-hw)*(1-sw)
}

// Spec is the user-provided content of one worksheet row.
type Spec struct {
	Mode   iec61508.FailureMode
	Lambda fit.Contribution // elementary FIT for this row
	// S is the safe fraction of this row's failures (architectural ×
	// applicational S factor); D = 1-S is the dangerous fraction.
	S float64
	// Freq is the zone's usage-frequency class.
	Freq FreqClass
	// Lifetime ζ in [0,1]: fraction of the usage window during which a
	// corrupted stored value is still consumed (exposure of transients).
	Lifetime float64
	// DDF claims and the techniques backing them; claims are clamped to
	// the norm's maximum DC for the technique.
	DDF    DDF
	TechHW iec61508.Technique
	TechSW iec61508.Technique
	Note   string
}

// Row is one materialized worksheet line.
type Row struct {
	Zone     int
	ZoneName string
	Spec
}

// clampDDF enforces the norm's maximum claims per technique.
func clampDDF(d DDF, hw, sw iec61508.Technique) DDF {
	d.HWTransient = iec61508.ClampClaim(hw, d.HWTransient)
	d.HWPermanent = iec61508.ClampClaim(hw, d.HWPermanent)
	d.SWTransient = iec61508.ClampClaim(sw, d.SWTransient)
	d.SWPermanent = iec61508.ClampClaim(sw, d.SWPermanent)
	return d
}

// Metrics are the IEC 61508 quantities for a row set.
type Metrics struct {
	LambdaS  float64 // safe failure rate
	LambdaD  float64 // dangerous failure rate
	LambdaDD float64 // dangerous detected
	LambdaDU float64 // dangerous undetected
}

// DC is the diagnostic coverage λDD/λD (1 when λD is zero).
func (m Metrics) DC() float64 {
	if m.LambdaD == 0 {
		return 1
	}
	return m.LambdaDD / m.LambdaD
}

// SFF is the safe failure fraction (λS+λDD)/(λS+λD) (1 when no failures).
func (m Metrics) SFF() float64 {
	den := m.LambdaS + m.LambdaD
	if den == 0 {
		return 1
	}
	return (m.LambdaS + m.LambdaDD) / den
}

// Total is λS + λD, the overall failure rate.
func (m Metrics) Total() float64 { return m.LambdaS + m.LambdaD }

func (m Metrics) add(o Metrics) Metrics {
	return Metrics{
		m.LambdaS + o.LambdaS, m.LambdaD + o.LambdaD,
		m.LambdaDD + o.LambdaDD, m.LambdaDU + o.LambdaDU,
	}
}

// Worksheet is the FMEA spreadsheet for one design.
type Worksheet struct {
	Design string
	Rows   []Row
}

// New creates an empty worksheet.
func New(design string) *Worksheet {
	return &Worksheet{Design: design}
}

// AddRow appends a row for the given zone; the DDF claims are clamped to
// the techniques' norm maxima and S/ζ to [0,1].
func (w *Worksheet) AddRow(zone int, zoneName string, spec Spec) {
	spec.S = clamp01(spec.S)
	spec.Lifetime = clamp01(spec.Lifetime)
	spec.DDF = clampDDF(spec.DDF, spec.TechHW, spec.TechSW)
	w.Rows = append(w.Rows, Row{Zone: zone, ZoneName: zoneName, Spec: spec})
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// RowMetrics evaluates one row.
func (r Row) RowMetrics() Metrics {
	usage := r.Freq.Usage()
	transEff := r.Lambda.Transient * usage * r.Lifetime
	permEff := r.Lambda.Permanent * usage
	d := 1 - r.S
	dTrans := transEff * d
	dPerm := permEff * d
	dcT := combine(r.DDF.HWTransient, r.DDF.SWTransient)
	dcP := combine(r.DDF.HWPermanent, r.DDF.SWPermanent)
	m := Metrics{
		LambdaS:  (transEff + permEff) * r.S,
		LambdaD:  dTrans + dPerm,
		LambdaDD: dTrans*dcT + dPerm*dcP,
	}
	m.LambdaDU = m.LambdaD - m.LambdaDD
	return m
}

// Totals aggregates all rows — the SoC-level metrics.
func (w *Worksheet) Totals() Metrics {
	var m Metrics
	for i := range w.Rows {
		m = m.add(w.Rows[i].RowMetrics())
	}
	return m
}

// ZoneMetrics aggregates the rows of one zone.
func (w *Worksheet) ZoneMetrics(zone int) Metrics {
	var m Metrics
	for i := range w.Rows {
		if w.Rows[i].Zone == zone {
			m = m.add(w.Rows[i].RowMetrics())
		}
	}
	return m
}

// SIL grades the worksheet's SFF for a Type B component at the given
// hardware fault tolerance.
func (w *Worksheet) SIL(hft int) iec61508.SIL {
	return iec61508.MaxSIL(w.Totals().SFF(), hft, true)
}

// ZoneRank is one entry of the criticality ranking.
type ZoneRank struct {
	Zone     int
	ZoneName string
	Metrics  Metrics
	// ShareDU is the zone's share of the SoC's undetected dangerous rate.
	ShareDU float64
}

// Ranking orders zones by undetected dangerous failure rate (the paper's
// "ranking of sensible zones in terms of their criticality").
func (w *Worksheet) Ranking() []ZoneRank {
	byZone := map[int]*ZoneRank{}
	var order []int
	for i := range w.Rows {
		r := &w.Rows[i]
		zr, ok := byZone[r.Zone]
		if !ok {
			zr = &ZoneRank{Zone: r.Zone, ZoneName: r.ZoneName}
			byZone[r.Zone] = zr
			order = append(order, r.Zone)
		}
		zr.Metrics = zr.Metrics.add(r.RowMetrics())
	}
	totDU := 0.0
	for _, z := range order {
		totDU += byZone[z].Metrics.LambdaDU
	}
	out := make([]ZoneRank, 0, len(order))
	for _, z := range order {
		zr := *byZone[z]
		if totDU > 0 {
			zr.ShareDU = zr.Metrics.LambdaDU / totDU
		}
		out = append(out, zr)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Metrics.LambdaDU != out[j].Metrics.LambdaDU {
			return out[i].Metrics.LambdaDU > out[j].Metrics.LambdaDU
		}
		return out[i].ZoneName < out[j].ZoneName
	})
	return out
}

// Clone deep-copies the worksheet (for sensitivity transforms).
func (w *Worksheet) Clone() *Worksheet {
	out := &Worksheet{Design: w.Design, Rows: make([]Row, len(w.Rows))}
	copy(out.Rows, w.Rows)
	return out
}

// ScaleLambda returns a copy with transient/permanent rates scaled.
func (w *Worksheet) ScaleLambda(transF, permF float64) *Worksheet {
	out := w.Clone()
	for i := range out.Rows {
		out.Rows[i].Lambda.Transient *= transF
		out.Rows[i].Lambda.Permanent *= permF
	}
	return out
}

// ScaleS returns a copy with every S factor scaled (clamped to [0,1]).
func (w *Worksheet) ScaleS(f float64) *Worksheet {
	out := w.Clone()
	for i := range out.Rows {
		out.Rows[i].S = clamp01(out.Rows[i].S * f)
	}
	return out
}

// ScaleDDF returns a copy with every DDF claim scaled, re-clamped to the
// techniques' norm maxima.
func (w *Worksheet) ScaleDDF(f float64) *Worksheet {
	out := w.Clone()
	for i := range out.Rows {
		r := &out.Rows[i]
		d := DDF{
			HWTransient: r.DDF.HWTransient * f,
			HWPermanent: r.DDF.HWPermanent * f,
			SWTransient: r.DDF.SWTransient * f,
			SWPermanent: r.DDF.SWPermanent * f,
		}
		r.DDF = clampDDF(d, r.TechHW, r.TechSW)
	}
	return out
}

// ShiftFreq returns a copy with every frequency class shifted by delta
// classes (positive = less frequently used), clamped to [F1, F4].
func (w *Worksheet) ShiftFreq(delta int) *Worksheet {
	out := w.Clone()
	for i := range out.Rows {
		f := int(out.Rows[i].Freq) + delta
		if f < 0 {
			f = 0
		}
		if f > int(F4) {
			f = int(F4)
		}
		out.Rows[i].Freq = FreqClass(f)
	}
	return out
}

// Sensitivity spans the worksheet's assumptions per Section 4 and
// reports the SFF excursion.
type Sensitivity struct {
	BaseSFF float64
	MinSFF  float64
	MaxSFF  float64
	// Cases lists each perturbation and the SFF it produced.
	Cases []SensCase
}

// SensCase is one perturbation result.
type SensCase struct {
	Name string
	SFF  float64
}

// Spread is MaxSFF - MinSFF: the stability measure the paper quotes for
// the final implementation ("very stable as well").
func (s Sensitivity) Spread() float64 { return s.MaxSFF - s.MinSFF }

// SpanAssumptions evaluates the standard sensitivity battery of
// Section 4 — "span the values of the assumptions (such the elementary
// failure rates for transient and permanent faults or the user
// assumptions such S, D and F)": base rates ×/÷ span, S factors ±20 %,
// frequency classes ±1. Diagnostic-coverage claims are norm-given
// maxima, not assumptions, and are not spanned.
func (w *Worksheet) SpanAssumptions(span float64) Sensitivity {
	if span <= 1 {
		span = 2
	}
	base := w.Totals().SFF()
	s := Sensitivity{BaseSFF: base, MinSFF: base, MaxSFF: base}
	add := func(name string, v *Worksheet) {
		sff := v.Totals().SFF()
		s.Cases = append(s.Cases, SensCase{Name: name, SFF: sff})
		s.MinSFF = math.Min(s.MinSFF, sff)
		s.MaxSFF = math.Max(s.MaxSFF, sff)
	}
	add(fmt.Sprintf("transient x%.3g", span), w.ScaleLambda(span, 1))
	add(fmt.Sprintf("transient /%.3g", span), w.ScaleLambda(1/span, 1))
	add(fmt.Sprintf("permanent x%.3g", span), w.ScaleLambda(1, span))
	add(fmt.Sprintf("permanent /%.3g", span), w.ScaleLambda(1, 1/span))
	add("S x0.8", w.ScaleS(0.8))
	add("S x1.2", w.ScaleS(1.2))
	add("freq +1 class", w.ShiftFreq(1))
	add("freq -1 class", w.ShiftFreq(-1))
	return s
}
