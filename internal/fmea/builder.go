package fmea

import (
	"repro/internal/fit"
	"repro/internal/iec61508"
	"repro/internal/zones"
)

// OwnershipWeights distributes each gate's failure-rate contribution
// across the zones whose cones contain it, so the worksheet conserves
// the design's total FIT: a gate shared by k owning cones contributes
// 1/k of its rate to each. Owning kinds are Register, Output and
// Peripheral (sub-block and critical-net zones overlap register cones
// by construction and would double-count).
func OwnershipWeights(a *zones.Analysis) map[int]float64 {
	owns := func(k zones.Kind) bool {
		return k == zones.Register || k == zones.Output || k == zones.Peripheral
	}
	touch := make(map[int]int) // gateID -> owning cone count
	for zi := range a.Zones {
		if !owns(a.Zones[zi].Kind) {
			continue
		}
		for _, g := range a.Cones[zi].Gates {
			touch[int(g)]++
		}
	}
	eff := make(map[int]float64, len(a.Zones))
	for zi := range a.Zones {
		if !owns(a.Zones[zi].Kind) {
			continue
		}
		sum := 0.0
		for _, g := range a.Cones[zi].Gates {
			sum += 1.0 / float64(touch[int(g)])
		}
		eff[zi] = sum
	}
	return eff
}

// Override lets a caller replace or extend the default row set of a
// zone. Returning nil keeps the defaults; returning an empty non-nil
// slice drops the zone from the worksheet.
type Override func(z *zones.Zone, defaults []Spec) []Spec

// FromAnalysis builds a worksheet from a zone analysis with generic
// default assumptions (S = 0.5, F1, ζ = 0.5, no diagnostics). Real
// designs refine the defaults through the override: the case study sets
// per-block S/F/ζ and the claimed DDF per protection mechanism.
func FromAnalysis(a *zones.Analysis, rates fit.Rates, override Override) *Worksheet {
	w := New(a.N.Name)
	eff := OwnershipWeights(a)
	for zi := range a.Zones {
		z := &a.Zones[zi]
		specs := defaultSpecs(z, a, rates, eff[zi])
		if override != nil {
			if replaced := override(z, specs); replaced != nil {
				specs = replaced
			}
		}
		for _, sp := range specs {
			w.AddRow(z.ID, z.Name, sp)
		}
	}
	return w
}

func defaultSpecs(z *zones.Zone, a *zones.Analysis, rates fit.Rates, effGates float64) []Spec {
	const (
		defaultS    = 0.5
		defaultLife = 0.5
	)
	switch z.Kind {
	case zones.Register:
		ff := len(z.FFs)
		return []Spec{
			{
				Mode: iec61508.FMTransient,
				Lambda: fit.Contribution{
					Transient: float64(ff)*rates.FFTransient + effGates*rates.GateTransient*rates.LatchingFraction,
				},
				S: defaultS, Freq: F1, Lifetime: defaultLife,
			},
			{
				Mode:   iec61508.FMRegisterStuck,
				Lambda: fit.Contribution{Permanent: float64(ff) * rates.FFPermanent},
				S:      defaultS, Freq: F1, Lifetime: 1,
			},
			{
				Mode:   iec61508.FMStuckAtLogic,
				Lambda: fit.Contribution{Permanent: effGates * rates.GatePermanent},
				S:      defaultS, Freq: F1, Lifetime: 1,
			},
		}
	case zones.Output:
		return []Spec{
			{
				Mode:   iec61508.FMStuckAtLogic,
				Lambda: fit.Contribution{Permanent: effGates * rates.GatePermanent},
				S:      defaultS, Freq: F1, Lifetime: 1,
			},
			{
				Mode: iec61508.FMTransient,
				Lambda: fit.Contribution{
					Transient: effGates * rates.GateTransient * rates.LatchingFraction,
				},
				S: defaultS, Freq: F1, Lifetime: defaultLife,
			},
		}
	case zones.CriticalNet:
		// One buffer-equivalent; the criticality of the net comes from
		// its wide-fault reach, modeled as fully dangerous (S = 0).
		return []Spec{{
			Mode: iec61508.FMClockFault,
			Lambda: fit.Contribution{
				Transient: rates.GateTransient * rates.LatchingFraction,
				Permanent: rates.GatePermanent,
			},
			S: 0, Freq: F1, Lifetime: 1,
		}}
	case zones.Input:
		// Pad/bond-equivalent per bit.
		return []Spec{{
			Mode:   iec61508.FMStuckAtLogic,
			Lambda: fit.Contribution{Permanent: float64(len(z.Outputs)) * rates.GatePermanent},
			S:      defaultS, Freq: F1, Lifetime: 1,
		}}
	case zones.SubBlock:
		// Sub-block zones overlap register cones; they exist for effect
		// analysis, not for rate accounting.
		return []Spec{}
	default: // Peripheral: rates unknown here, caller must override.
		return []Spec{}
	}
}
