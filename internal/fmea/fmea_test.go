package fmea

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/fit"
	"repro/internal/iec61508"
)

func near(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestFreqClassUsage(t *testing.T) {
	if F1.Usage() != 1.0 || F4.Usage() != 0.1 {
		t.Error("usage factors wrong")
	}
	if F1.Usage() < F2.Usage() || F2.Usage() < F3.Usage() || F3.Usage() < F4.Usage() {
		t.Error("usage not monotone")
	}
	if F2.String() != "F2" {
		t.Errorf("F2.String() = %q", F2.String())
	}
}

func TestRowMetricsBasic(t *testing.T) {
	// λ = 100 FIT permanent, S=0.4, full usage, DDF perm 0.9 via
	// redundant checker (max 0.99, not clamped).
	r := Row{Spec: Spec{
		Mode:   iec61508.FMStuckAtLogic,
		Lambda: fit.Contribution{Permanent: 100},
		S:      0.4, Freq: F1, Lifetime: 1,
		DDF:    DDF{HWPermanent: 0.9},
		TechHW: iec61508.TechRedundantChecker,
	}}
	m := r.RowMetrics()
	if !near(m.LambdaS, 40, 1e-9) {
		t.Errorf("λS = %v, want 40", m.LambdaS)
	}
	if !near(m.LambdaD, 60, 1e-9) {
		t.Errorf("λD = %v, want 60", m.LambdaD)
	}
	if !near(m.LambdaDD, 54, 1e-9) {
		t.Errorf("λDD = %v, want 54", m.LambdaDD)
	}
	if !near(m.LambdaDU, 6, 1e-9) {
		t.Errorf("λDU = %v, want 6", m.LambdaDU)
	}
	if !near(m.DC(), 0.9, 1e-9) {
		t.Errorf("DC = %v, want 0.9", m.DC())
	}
	if !near(m.SFF(), 0.94, 1e-9) {
		t.Errorf("SFF = %v, want 0.94", m.SFF())
	}
}

func TestLifetimeAndUsageScaleTransients(t *testing.T) {
	base := Spec{
		Mode:   iec61508.FMTransient,
		Lambda: fit.Contribution{Transient: 1000},
		S:      0, Freq: F1, Lifetime: 1,
	}
	full := Row{Spec: base}.RowMetrics().LambdaD
	half := base
	half.Lifetime = 0.5
	if got := (Row{Spec: half}).RowMetrics().LambdaD; !near(got, full/2, 1e-9) {
		t.Errorf("ζ=0.5 λD = %v, want %v", got, full/2)
	}
	rare := base
	rare.Freq = F4
	if got := (Row{Spec: rare}).RowMetrics().LambdaD; !near(got, full*0.1, 1e-9) {
		t.Errorf("F4 λD = %v, want %v", got, full*0.1)
	}
	// Permanent faults are not scaled by lifetime.
	perm := Spec{Mode: iec61508.FMStuckAtLogic, Lambda: fit.Contribution{Permanent: 100}, S: 0, Freq: F1, Lifetime: 0.1}
	if got := (Row{Spec: perm}).RowMetrics().LambdaD; !near(got, 100, 1e-9) {
		t.Errorf("permanent λD = %v, want 100 (ζ must not apply)", got)
	}
}

func TestDDFClampedByTechnique(t *testing.T) {
	w := New("t")
	w.AddRow(0, "z", Spec{
		Mode:   iec61508.FMStuckAtData,
		Lambda: fit.Contribution{Permanent: 100},
		S:      0, Freq: F1, Lifetime: 1,
		DDF:    DDF{HWPermanent: 0.99}, // claims 99% with parity
		TechHW: iec61508.TechParityBit, // max 60%
	})
	if got := w.Rows[0].DDF.HWPermanent; !near(got, 0.60, 1e-9) {
		t.Errorf("parity claim = %v, want clamped to 0.60", got)
	}
	// No technique -> no claim.
	w.AddRow(1, "z2", Spec{
		Mode: iec61508.FMStuckAtData, Lambda: fit.Contribution{Permanent: 1},
		DDF: DDF{HWPermanent: 0.9},
	})
	if w.Rows[1].DDF.HWPermanent != 0 {
		t.Error("claim without technique not zeroed")
	}
}

func TestCombineHWSW(t *testing.T) {
	r := Row{Spec: Spec{
		Mode:   iec61508.FMStuckAtData,
		Lambda: fit.Contribution{Permanent: 100},
		S:      0, Freq: F1, Lifetime: 1,
		DDF:    DDF{HWPermanent: 0.9, SWPermanent: 0.9},
		TechHW: iec61508.TechECCHamming,
		TechSW: iec61508.TechSWStartupTest,
	}}
	m := r.RowMetrics()
	// 1-(1-.9)^2 = .99
	if !near(m.DC(), 0.99, 1e-9) {
		t.Errorf("combined DC = %v, want 0.99", m.DC())
	}
}

func TestTotalsAndSIL(t *testing.T) {
	w := New("soc")
	w.AddRow(0, "a", Spec{Mode: iec61508.FMTransient, Lambda: fit.Contribution{Transient: 1000}, S: 0.5, Freq: F1, Lifetime: 1,
		DDF: DDF{HWTransient: 0.99}, TechHW: iec61508.TechECCHamming})
	w.AddRow(1, "b", Spec{Mode: iec61508.FMStuckAtLogic, Lambda: fit.Contribution{Permanent: 10}, S: 0.5, Freq: F1, Lifetime: 1})
	m := w.Totals()
	// a: λS=500, λD=500, λDD=495; b: λS=5, λD=5, λDD=0.
	if !near(m.LambdaS, 505, 1e-9) || !near(m.LambdaD, 505, 1e-9) || !near(m.LambdaDD, 495, 1e-9) {
		t.Errorf("totals = %+v", m)
	}
	wantSFF := (505.0 + 495.0) / 1010.0
	if !near(m.SFF(), wantSFF, 1e-12) {
		t.Errorf("SFF = %v, want %v", m.SFF(), wantSFF)
	}
	if w.SIL(0) != iec61508.SIL3 {
		t.Errorf("SIL = %v (SFF %v)", w.SIL(0), m.SFF())
	}
	if zm := w.ZoneMetrics(1); !near(zm.LambdaD, 5, 1e-9) {
		t.Errorf("zone 1 metrics = %+v", zm)
	}
}

func TestEmptyMetricsConventions(t *testing.T) {
	var m Metrics
	if m.DC() != 1 || m.SFF() != 1 {
		t.Error("empty metrics should report perfect coverage")
	}
	if m.Total() != 0 {
		t.Error("empty total != 0")
	}
}

func TestRankingOrdersByLambdaDU(t *testing.T) {
	w := New("r")
	w.AddRow(0, "covered", Spec{Mode: iec61508.FMStuckAtData, Lambda: fit.Contribution{Permanent: 1000}, S: 0, Freq: F1, Lifetime: 1,
		DDF: DDF{HWPermanent: 0.99}, TechHW: iec61508.TechECCHamming})
	w.AddRow(1, "naked", Spec{Mode: iec61508.FMStuckAtData, Lambda: fit.Contribution{Permanent: 100}, S: 0, Freq: F1, Lifetime: 1})
	w.AddRow(2, "small", Spec{Mode: iec61508.FMStuckAtData, Lambda: fit.Contribution{Permanent: 1}, S: 0, Freq: F1, Lifetime: 1})
	rank := w.Ranking()
	if len(rank) != 3 {
		t.Fatalf("rank size = %d", len(rank))
	}
	// naked: λDU=100; covered: λDU=10; small: λDU=1.
	if rank[0].ZoneName != "naked" || rank[1].ZoneName != "covered" || rank[2].ZoneName != "small" {
		t.Errorf("ranking = %v, %v, %v", rank[0].ZoneName, rank[1].ZoneName, rank[2].ZoneName)
	}
	sum := 0.0
	for _, zr := range rank {
		sum += zr.ShareDU
	}
	if !near(sum, 1, 1e-9) {
		t.Errorf("ShareDU sums to %v", sum)
	}
}

func TestScaleTransformsDoNotMutateOriginal(t *testing.T) {
	w := New("t")
	w.AddRow(0, "z", Spec{Mode: iec61508.FMTransient, Lambda: fit.Contribution{Transient: 100}, S: 0.5, Freq: F2, Lifetime: 1,
		DDF: DDF{HWTransient: 0.9}, TechHW: iec61508.TechECCHamming})
	orig := w.Totals()
	_ = w.ScaleLambda(2, 3)
	_ = w.ScaleS(0.5)
	_ = w.ScaleDDF(0.5)
	_ = w.ShiftFreq(2)
	if got := w.Totals(); got != orig {
		t.Error("transforms mutated the original worksheet")
	}
	if got := w.ScaleLambda(2, 1).Totals().LambdaD; !near(got, 2*orig.LambdaD, 1e-9) {
		t.Errorf("ScaleLambda λD = %v, want %v", got, 2*orig.LambdaD)
	}
	if got := w.ShiftFreq(3).Rows[0].Freq; got != F4 {
		t.Errorf("ShiftFreq clamp = %v", got)
	}
	if got := w.ShiftFreq(-5).Rows[0].Freq; got != F1 {
		t.Errorf("ShiftFreq negative clamp = %v", got)
	}
}

func TestSFFInvariantUnderUniformScale(t *testing.T) {
	w := New("t")
	w.AddRow(0, "a", Spec{Mode: iec61508.FMTransient, Lambda: fit.Contribution{Transient: 300, Permanent: 40}, S: 0.6, Freq: F1, Lifetime: 0.8,
		DDF: DDF{HWTransient: 0.9, HWPermanent: 0.8}, TechHW: iec61508.TechECCHamming})
	w.AddRow(1, "b", Spec{Mode: iec61508.FMStuckAtLogic, Lambda: fit.Contribution{Permanent: 70}, S: 0.3, Freq: F2, Lifetime: 1})
	f := func(scaleRaw uint8) bool {
		scale := 0.1 + float64(scaleRaw)/32.0
		s := w.ScaleLambda(scale, scale)
		return near(s.Totals().SFF(), w.Totals().SFF(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSpanAssumptions(t *testing.T) {
	w := New("t")
	w.AddRow(0, "mem", Spec{Mode: iec61508.FMSoftError, Lambda: fit.Contribution{Transient: 1000}, S: 0.2, Freq: F1, Lifetime: 0.7,
		DDF: DDF{HWTransient: 0.99}, TechHW: iec61508.TechECCHamming})
	w.AddRow(1, "logic", Spec{Mode: iec61508.FMStuckAtLogic, Lambda: fit.Contribution{Permanent: 50}, S: 0.5, Freq: F1, Lifetime: 1})
	sens := w.SpanAssumptions(2)
	if sens.BaseSFF <= 0 || sens.BaseSFF > 1 {
		t.Fatalf("base SFF = %v", sens.BaseSFF)
	}
	if sens.MinSFF > sens.BaseSFF || sens.MaxSFF < sens.BaseSFF {
		t.Error("span does not bracket base")
	}
	if len(sens.Cases) != 8 {
		t.Errorf("cases = %d, want 8", len(sens.Cases))
	}
	if sens.Spread() < 0 {
		t.Error("negative spread")
	}
	// A perfectly homogeneous sheet (single row) is insensitive to rate
	// scaling: the only excursions come from the S/DDF/freq cases.
	hom := New("hom")
	hom.AddRow(0, "only", Spec{Mode: iec61508.FMStuckAtLogic, Lambda: fit.Contribution{Permanent: 10}, S: 0.5, Freq: F1, Lifetime: 1})
	hs := hom.SpanAssumptions(2)
	for _, c := range hs.Cases {
		if strings.Contains(c.Name, "transient") || strings.Contains(c.Name, "permanent") {
			if math.Abs(c.SFF-hs.BaseSFF) > 1e-12 {
				t.Errorf("homogeneous sheet moved under rate scaling: %v", c)
			}
		}
	}
	// Span <= 1 falls back to 2.
	if got := w.SpanAssumptions(0.5); len(got.Cases) != 8 {
		t.Error("span fallback failed")
	}
}

func TestWriteCSV(t *testing.T) {
	w := New("t")
	w.AddRow(0, "zone_a", Spec{Mode: iec61508.FMSoftError, Lambda: fit.Contribution{Transient: 10}, S: 0.5, Freq: F1, Lifetime: 1, Note: "hello"})
	var buf bytes.Buffer
	if err := w.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + row + totals
		t.Fatalf("CSV lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "zone_a") || !strings.Contains(lines[1], "soft error") || !strings.Contains(lines[1], "hello") {
		t.Errorf("row line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "TOTAL") {
		t.Errorf("totals line = %q", lines[2])
	}
	if !strings.Contains(w.Summary(), "SFF=") {
		t.Errorf("Summary = %q", w.Summary())
	}
}

// TestZonePartitionProperty: the SoC totals must equal the sum of the
// per-zone metrics — the worksheet is a partition of the failure rate.
func TestZonePartitionProperty(t *testing.T) {
	rng := func(seed int64) func() float64 {
		s := uint64(seed)*2654435761 + 1
		return func() float64 {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return float64(s%1000) / 1000
		}
	}
	for seed := int64(1); seed <= 10; seed++ {
		r := rng(seed)
		w := New("p")
		zoneCount := 3 + int(r()*7)
		for z := 0; z < zoneCount; z++ {
			rows := 1 + int(r()*3)
			for k := 0; k < rows; k++ {
				w.AddRow(z, "z", Spec{
					Mode:   iec61508.FMStuckAtLogic,
					Lambda: fit.Contribution{Transient: r() * 100, Permanent: r() * 10},
					S:      r(), Freq: FreqClass(int(r()*4) % 4), Lifetime: r(),
					DDF:    DDF{HWTransient: r() * 0.99, HWPermanent: r() * 0.99},
					TechHW: iec61508.TechECCHamming,
				})
			}
		}
		tot := w.Totals()
		var sum Metrics
		for z := 0; z < zoneCount; z++ {
			zm := w.ZoneMetrics(z)
			sum.LambdaS += zm.LambdaS
			sum.LambdaD += zm.LambdaD
			sum.LambdaDD += zm.LambdaDD
			sum.LambdaDU += zm.LambdaDU
		}
		for name, pair := range map[string][2]float64{
			"λS":  {tot.LambdaS, sum.LambdaS},
			"λD":  {tot.LambdaD, sum.LambdaD},
			"λDD": {tot.LambdaDD, sum.LambdaDD},
			"λDU": {tot.LambdaDU, sum.LambdaDU},
		} {
			if math.Abs(pair[0]-pair[1]) > 1e-9 {
				t.Fatalf("seed %d: %s totals %v != zone sum %v", seed, name, pair[0], pair[1])
			}
		}
	}
}

// TestMetricsInvariants: for any row, λDD <= λD, λDU >= 0, DC and SFF in
// [0,1], and SFF >= S-share (detection can only help).
func TestMetricsInvariants(t *testing.T) {
	f := func(lt, lp, s, life uint16, freq uint8, hwT, hwP uint8) bool {
		spec := Spec{
			Mode:   iec61508.FMStuckAtData,
			Lambda: fit.Contribution{Transient: float64(lt), Permanent: float64(lp)},
			S:      float64(s%1000) / 1000, Freq: FreqClass(freq % 4),
			Lifetime: float64(life%1000) / 1000,
			DDF: DDF{
				HWTransient: float64(hwT%100) / 100,
				HWPermanent: float64(hwP%100) / 100,
			},
			TechHW: iec61508.TechECCHamming,
		}
		r := Row{Spec: spec}
		// Re-apply the AddRow clamping path.
		w := New("q")
		w.AddRow(0, "z", spec)
		r = w.Rows[0]
		m := r.RowMetrics()
		if m.LambdaDD > m.LambdaD+1e-12 || m.LambdaDU < -1e-12 {
			return false
		}
		if m.DC() < 0 || m.DC() > 1 || m.SFF() < 0 || m.SFF() > 1 {
			return false
		}
		den := m.LambdaS + m.LambdaD
		if den > 0 && m.SFF() < m.LambdaS/den-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
