package fmea

import (
	"math"
	"testing"

	"repro/internal/fit"
	"repro/internal/iec61508"
	"repro/internal/rtl"
	"repro/internal/zones"
)

// sharedConeDesign: one adder feeding two registers, plus private output
// logic — exercises ownership weighting.
func sharedConeDesign(t *testing.T) *zones.Analysis {
	t.Helper()
	m := rtl.NewModule("own")
	a := m.Input("a", 4)
	b := m.Input("b", 4)
	sum, _ := m.Add(a, b)
	r1 := m.RegNext("r1", sum, 0)
	r2 := m.RegNext("r2", sum, 0)
	m.Output("o1", m.Not(r1))
	m.Output("o2", r2)
	n := m.MustFinish()
	an, err := zones.Extract(n, zones.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestOwnershipWeightsConserveGates(t *testing.T) {
	a := sharedConeDesign(t)
	eff := OwnershipWeights(a)
	total := 0.0
	for _, v := range eff {
		total += v
	}
	// Every gate is in at least one owning cone in this design, so the
	// weighted sum must equal the gate count exactly.
	if want := float64(len(a.N.Gates)); math.Abs(total-want) > 1e-9 {
		t.Errorf("weighted gate total = %v, want %v", total, want)
	}
	// r1 and r2 share the adder: each owns half of the shared gates.
	z1, _ := a.ZoneByName("r1")
	z2, _ := a.ZoneByName("r2")
	if math.Abs(eff[z1.ID]-eff[z2.ID]) > 1e-9 {
		t.Errorf("symmetric zones own different weights: %v vs %v", eff[z1.ID], eff[z2.ID])
	}
	shared := a.SharedGates(z1.ID, z2.ID)
	if eff[z1.ID] >= float64(len(a.Cones[z1.ID].Gates)) && shared > 0 {
		t.Error("shared gates not split")
	}
}

func TestFromAnalysisDefaults(t *testing.T) {
	a := sharedConeDesign(t)
	rates := fit.Default()
	w := FromAnalysis(a, rates, nil)
	if len(w.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Register zones have 3 default rows; every row has positive λ.
	z1, _ := a.ZoneByName("r1")
	count := 0
	for _, r := range w.Rows {
		if r.Zone == z1.ID {
			count++
			if r.Lambda.Total() <= 0 {
				t.Errorf("row %v has zero λ", r.Mode)
			}
		}
	}
	if count != 3 {
		t.Errorf("register zone rows = %d, want 3", count)
	}
	// Default DDF is zero -> DC = 0, SFF = S share only.
	m := w.Totals()
	if m.DC() != 0 {
		t.Errorf("default DC = %v, want 0", m.DC())
	}
	if sff := m.SFF(); math.Abs(sff-0.5) > 0.05 {
		t.Errorf("default SFF = %v, want ~0.5 (S defaults)", sff)
	}
}

func TestFromAnalysisOverride(t *testing.T) {
	a := sharedConeDesign(t)
	w := FromAnalysis(a, fit.Default(), func(z *zones.Zone, defaults []Spec) []Spec {
		if z.Name == "r1" {
			// Cover r1 fully with a redundant checker.
			for i := range defaults {
				defaults[i].DDF = DDF{HWTransient: 0.99, HWPermanent: 0.99}
				defaults[i].TechHW = iec61508.TechRedundantChecker
			}
			return defaults
		}
		if z.Name == "r2" {
			return []Spec{} // drop r2 entirely
		}
		return nil // keep defaults
	})
	sawR1 := false
	for _, r := range w.Rows {
		if r.ZoneName == "r2" {
			t.Fatal("r2 rows present despite drop")
		}
		if r.ZoneName == "r1" {
			sawR1 = true
			if r.DDF.HWPermanent != 0.99 {
				t.Error("override DDF lost")
			}
		}
	}
	if !sawR1 {
		t.Fatal("r1 rows missing")
	}
}

func TestPeripheralZoneNeedsOverride(t *testing.T) {
	a := sharedConeDesign(t)
	// Manufacture a fake peripheral zone via config on a fresh design is
	// overkill; instead check defaultSpecs behavior through FromAnalysis:
	// sub-block zones produce no rows.
	cfg := zones.DefaultConfig()
	cfg.SubBlockMinGates = 1
	an, err := zones.Extract(a.N, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := FromAnalysis(an, fit.Default(), nil)
	for _, r := range w.Rows {
		if len(r.ZoneName) > 4 && r.ZoneName[:4] == "blk:" {
			t.Errorf("sub-block zone %q has default rows (double counting)", r.ZoneName)
		}
	}
}
