package simc

import (
	"fmt"

	"repro/internal/netlist"
)

// BinMachine evaluates a compiled program in pure binary logic over a
// single value plane — the PPSFP kernel behind internal/faultsim.
// Stuck-at faults attach through the same FORCE patching as the
// three-valued Machine, interpreted as per-lane or/clear masks.
// Bridges are not supported (the fault simulator is stuck-at only).
type BinMachine struct {
	p      *Program
	ops    []op
	sealed bool

	val   []uint64 // per slot
	ext   []uint64 // per net: inputs as last driven (0 until driven)
	state []uint64 // per FF
	next  []uint64

	netPatches []netPatch
	pinPatches []pinPatch
	netRefOf   map[int32]ForceRef
	pinRefOf   map[uint64]ForceRef

	fOr, fClr []uint64 // per force slot
}

// NewBinMachine builds a binary machine over the program.
func NewBinMachine(p *Program) *BinMachine {
	n := p.n
	return &BinMachine{
		p:        p,
		ext:      make([]uint64, len(n.Nets)),
		state:    make([]uint64, len(n.FFs)),
		next:     make([]uint64, len(n.FFs)),
		netRefOf: make(map[int32]ForceRef),
		pinRefOf: make(map[uint64]ForceRef),
	}
}

// AddNetForce registers a stuck-at point on a net; see Machine.
func (b *BinMachine) AddNetForce(id netlist.NetID) ForceRef {
	if b.sealed {
		panic("simc: AddNetForce after the machine was sealed by its first Eval")
	}
	if ref, ok := b.netRefOf[int32(id)]; ok {
		return ref
	}
	ref := ForceRef(len(b.fOr))
	b.fOr = append(b.fOr, 0)
	b.fClr = append(b.fClr, 0)
	b.netRefOf[int32(id)] = ref
	b.netPatches = append(b.netPatches, netPatch{net: int32(id), ref: int32(ref)})
	return ref
}

// AddPinForce registers a stuck-at point on one gate input pin.
func (b *BinMachine) AddPinForce(g netlist.GateID, pin int) (ForceRef, error) {
	if b.sealed {
		panic("simc: AddPinForce after the machine was sealed by its first Eval")
	}
	key := pinKeyOf(g, pin)
	if ref, ok := b.pinRefOf[key]; ok {
		return ref, nil
	}
	site, ok := b.p.pinSites[key]
	if !ok {
		return 0, fmt.Errorf("simc: no pin %d on gate %d", pin, g)
	}
	ref := ForceRef(len(b.fOr))
	b.fOr = append(b.fOr, 0)
	b.fClr = append(b.fClr, 0)
	b.pinRefOf[key] = ref
	b.pinPatches = append(b.pinPatches, pinPatch{site: site, ref: int32(ref)})
	return ref, nil
}

// StuckAt arms a force slot: lanes in or are stuck at 1, lanes in clr
// stuck at 0 (cumulative, like the fault simulator's per-chunk masks).
func (b *BinMachine) StuckAt(ref ForceRef, or, clr uint64) {
	b.fOr[ref] |= or
	b.fClr[ref] |= clr
}

// ResetState loads every flip-flop's reset value into all lanes.
func (b *BinMachine) ResetState() {
	n := b.p.n
	for i := range n.FFs {
		if n.FFs[i].ResetVal {
			b.state[i] = ^uint64(0)
		} else {
			b.state[i] = 0
		}
	}
}

// DriveInput drives one input net with a broadcast word.
func (b *BinMachine) DriveInput(id netlist.NetID, w uint64) {
	b.ext[id] = w
}

// Val reads a net's 64-lane word.
func (b *BinMachine) Val(id netlist.NetID) uint64 { return b.val[id] }

func (b *BinMachine) seal() {
	ops, slots := patchOps(b.p, b.netPatches, b.pinPatches, nil)
	b.ops = ops
	b.val = make([]uint64, slots)
	b.sealed = true
}

// Eval settles the network: sources load (constants, inputs, FF
// outputs), then one pass over the op stream. Forces apply wherever
// their FORCE ops were patched in, so a stuck-at on any net or pin is
// visible to every reader exactly as in the map-based evaluator.
func (b *BinMachine) Eval() {
	if !b.sealed {
		b.seal()
	}
	p := b.p
	n := p.n
	val := b.val
	if n.Const0 != netlist.InvalidNet {
		val[n.Const0] = 0
	}
	if n.Const1 != netlist.InvalidNet {
		val[n.Const1] = ^uint64(0)
	}
	for _, id := range p.portNets {
		val[id] = b.ext[id]
	}
	for i, q := range p.ffQ {
		val[q] = b.state[i]
	}
	ops := b.ops
	for i := range ops {
		o := &ops[i]
		switch o.code {
		case opBUF:
			val[o.out] = val[o.a]
		case opNOT:
			val[o.out] = ^val[o.a]
		case opAND2:
			val[o.out] = val[o.a] & val[o.b]
		case opNAND2:
			val[o.out] = ^(val[o.a] & val[o.b])
		case opOR2:
			val[o.out] = val[o.a] | val[o.b]
		case opNOR2:
			val[o.out] = ^(val[o.a] | val[o.b])
		case opXOR2:
			val[o.out] = val[o.a] ^ val[o.b]
		case opXNOR2:
			val[o.out] = ^(val[o.a] ^ val[o.b])
		case opMUX2:
			sel := val[o.a]
			val[o.out] = sel&val[o.c] | ^sel&val[o.b]
		case opFORCE:
			val[o.out] = val[o.a]&^b.fClr[o.b] | b.fOr[o.b]
		case opBRIDGE:
			panic("simc: bridge op in a binary machine")
		}
	}
}

// Step clocks every flip-flop: enabled lanes load D, others hold.
func (b *BinMachine) Step() {
	p := b.p
	for i := range p.ffQ {
		d := b.val[p.ffD[i]]
		if en := p.ffEn[i]; en >= 0 {
			w := b.val[en]
			b.next[i] = w&d | ^w&b.state[i]
		} else {
			b.next[i] = d
		}
	}
	copy(b.state, b.next)
}
