package simc

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// ForceRef identifies one registered force point on a Machine.
type ForceRef int32

// BridgeRef identifies one registered bridge on a Machine.
type BridgeRef int32

type bridgeEntry struct {
	a, b  int32 // bridge-net indices
	wand  bool  // wired-AND (false = wired-OR)
	armed uint64
}

// Machine evaluates a compiled program in full three-valued logic over
// two planes per slot: a value plane and an X-mask plane, with the
// invariant val&x == 0 (an unknown lane's value bit is zero). Each of
// the 64 lanes is an independent simulation.
//
// Usage: register every force/bridge point the batch may need (AddNet-
// Force, AddPinForce, AddBridge), load lanes from snapshots, then run.
// The op stream is sealed on the first Eval; registering points after
// that panics. Arming and disarming forces (per-lane masks) is cheap
// and allowed at any time.
type Machine struct {
	p      *Program
	ops    []op
	sealed bool

	valP, xP     []uint64 // per slot
	extV, extX   []uint64 // per net: input/external values, as committed
	stateV, stateX []uint64 // per FF
	nextV, nextX []uint64 // per FF scratch for Step

	// Registered patch points.
	netPatches []netPatch
	pinPatches []pinPatch
	netRefOf   map[int32]ForceRef
	pinRefOf   map[uint64]ForceRef
	bnetOf     map[int32]int32 // net slot -> bridge-net index
	bridgeNets []int32
	bridges    []bridgeEntry

	// Force slots (indexed by ForceRef): lanes where the force applies,
	// the forced value bits and the forced X bits (val&x == 0, both
	// subsets of any).
	fAny, fVal, fX []uint64

	// Bridge-net planes: captured driven values and the resolution
	// overlay (ovV/ovX are subsets of ovAny).
	driveV, driveX, ovAny, ovV, ovX []uint64
}

// NewMachine builds a machine for the program with all lanes at
// all-zero state and no forces registered.
func NewMachine(p *Program) *Machine {
	n := p.n
	return &Machine{
		p:        p,
		extV:     make([]uint64, len(n.Nets)),
		extX:     make([]uint64, len(n.Nets)),
		stateV:   make([]uint64, len(n.FFs)),
		stateX:   make([]uint64, len(n.FFs)),
		nextV:    make([]uint64, len(n.FFs)),
		nextX:    make([]uint64, len(n.FFs)),
		netRefOf: make(map[int32]ForceRef),
		pinRefOf: make(map[uint64]ForceRef),
		bnetOf:   make(map[int32]int32),
	}
}

func (m *Machine) mustOpen(what string) {
	if m.sealed {
		panic("simc: " + what + " after the machine was sealed by its first Eval")
	}
}

func (m *Machine) newForceSlot() ForceRef {
	ref := ForceRef(len(m.fAny))
	m.fAny = append(m.fAny, 0)
	m.fVal = append(m.fVal, 0)
	m.fX = append(m.fX, 0)
	return ref
}

// AddNetForce registers a force point on a net (the value every reader
// of the net observes, like sim.ForceNet). Duplicate registrations
// share one slot.
func (m *Machine) AddNetForce(id netlist.NetID) ForceRef {
	m.mustOpen("AddNetForce")
	if ref, ok := m.netRefOf[int32(id)]; ok {
		return ref
	}
	ref := m.newForceSlot()
	m.netRefOf[int32(id)] = ref
	m.netPatches = append(m.netPatches, netPatch{net: int32(id), ref: int32(ref)})
	return ref
}

// AddPinForce registers a force point on one gate input pin (affects
// only that gate, like sim.ForcePin).
func (m *Machine) AddPinForce(g netlist.GateID, pin int) (ForceRef, error) {
	m.mustOpen("AddPinForce")
	key := pinKeyOf(g, pin)
	if ref, ok := m.pinRefOf[key]; ok {
		return ref, nil
	}
	site, ok := m.p.pinSites[key]
	if !ok {
		return 0, fmt.Errorf("simc: no pin %d on gate %d", pin, g)
	}
	ref := m.newForceSlot()
	m.pinRefOf[key] = ref
	m.pinPatches = append(m.pinPatches, pinPatch{site: site, ref: int32(ref)})
	return ref, nil
}

// AddBridge registers a bridging fault between two nets (wired-AND or
// wired-OR), initially disarmed in every lane.
func (m *Machine) AddBridge(a, b netlist.NetID, wiredAND bool) BridgeRef {
	m.mustOpen("AddBridge")
	ref := BridgeRef(len(m.bridges))
	m.bridges = append(m.bridges, bridgeEntry{a: m.bridgeNet(a), b: m.bridgeNet(b), wand: wiredAND})
	return ref
}

func (m *Machine) bridgeNet(id netlist.NetID) int32 {
	if bi, ok := m.bnetOf[int32(id)]; ok {
		return bi
	}
	bi := int32(len(m.bridgeNets))
	m.bnetOf[int32(id)] = bi
	m.bridgeNets = append(m.bridgeNets, int32(id))
	m.driveV = append(m.driveV, 0)
	m.driveX = append(m.driveX, 0)
	m.ovAny = append(m.ovAny, 0)
	m.ovV = append(m.ovV, 0)
	m.ovX = append(m.ovX, 0)
	return bi
}

// SetForce arms a force point with value v in the given lanes
// (overwriting any previous value there).
func (m *Machine) SetForce(ref ForceRef, lanes uint64, v sim.Value) {
	m.fAny[ref] |= lanes
	m.fVal[ref] &^= lanes
	m.fX[ref] &^= lanes
	switch v {
	case sim.V1:
		m.fVal[ref] |= lanes
	case sim.VX:
		m.fX[ref] |= lanes
	}
}

// ClearForce disarms a force point in the given lanes.
func (m *Machine) ClearForce(ref ForceRef, lanes uint64) {
	m.fAny[ref] &^= lanes
	m.fVal[ref] &^= lanes
	m.fX[ref] &^= lanes
}

// ArmBridge activates a bridge in the given lanes.
func (m *Machine) ArmBridge(ref BridgeRef, lanes uint64) {
	m.bridges[ref].armed |= lanes
}

// DisarmBridge deactivates a bridge in the given lanes.
func (m *Machine) DisarmBridge(ref BridgeRef, lanes uint64) {
	m.bridges[ref].armed &^= lanes
}

// FlipFF inverts a flip-flop's state in the given lanes; X lanes stay
// X (the Kleene complement), matching sim.FlipFF.
func (m *Machine) FlipFF(id netlist.FFID, lanes uint64) {
	m.stateV[id] ^= lanes &^ m.stateX[id]
}

// LoadLane loads one lane's sequential state from snapshot slices
// (sim.Snapshot.FFValues / ExtValues order). It does not evaluate;
// call Eval after the last lane is loaded.
func (m *Machine) LoadLane(lane int, ffs, ext []sim.Value) {
	if len(ffs) != len(m.stateV) || len(ext) != len(m.extV) {
		panic(fmt.Sprintf("simc: LoadLane shape mismatch: %d/%d FFs, %d/%d nets",
			len(ffs), len(m.stateV), len(ext), len(m.extV)))
	}
	bit := uint64(1) << uint(lane)
	for i, v := range ffs {
		setLaneBit(m.stateV, m.stateX, i, bit, v)
	}
	for i, v := range ext {
		setLaneBit(m.extV, m.extX, i, bit, v)
	}
}

func setLaneBit(valP, xP []uint64, i int, bit uint64, v sim.Value) {
	valP[i] &^= bit
	xP[i] &^= bit
	switch v {
	case sim.V1:
		valP[i] |= bit
	case sim.VX:
		xP[i] |= bit
	}
}

// DriveInput drives one input/external net with the same value in all
// lanes (the broadcast trace-application path).
func (m *Machine) DriveInput(id netlist.NetID, v sim.Value) {
	m.extV[id], m.extX[id] = 0, 0
	switch v {
	case sim.V1:
		m.extV[id] = ^uint64(0)
	case sim.VX:
		m.extX[id] = ^uint64(0)
	}
}

// SetExt sets one external/input net in one lane (the per-lane
// peripheral commit path).
func (m *Machine) SetExt(lane int, id netlist.NetID, v sim.Value) {
	setLaneBit(m.extV, m.extX, int(id), uint64(1)<<uint(lane), v)
}

// NetValue reads one net in one lane as a three-valued level.
func (m *Machine) NetValue(lane int, id netlist.NetID) sim.Value {
	bit := uint64(1) << uint(lane)
	if m.xP[id]&bit != 0 {
		return sim.VX
	}
	if m.valP[id]&bit != 0 {
		return sim.V1
	}
	return sim.V0
}

// NetPlanes returns a net's value and X planes (all 64 lanes at once;
// the word-parallel monitor path).
func (m *Machine) NetPlanes(id netlist.NetID) (val, x uint64) {
	return m.valP[id], m.xP[id]
}

// FFValue reads one flip-flop's state in one lane.
func (m *Machine) FFValue(lane int, id netlist.FFID) sim.Value {
	bit := uint64(1) << uint(lane)
	if m.stateX[id]&bit != 0 {
		return sim.VX
	}
	if m.stateV[id]&bit != 0 {
		return sim.V1
	}
	return sim.V0
}

// seal builds the patched op stream and allocates the value planes.
func (m *Machine) seal() {
	ops, slots := patchOps(m.p, m.netPatches, m.pinPatches, m.bridgeNets)
	m.ops = ops
	m.valP = make([]uint64, slots)
	m.xP = make([]uint64, slots)
	m.sealed = true
}

// maxBridgeIter mirrors the serial interpreter's fixpoint bound.
const maxBridgeIter = 8

// Eval settles the combinational network in every lane from current
// state, inputs and forces, honoring armed bridges: the same drive-
// value fixpoint as sim.Eval, iterated per lane, with lanes that still
// oscillate after maxBridgeIter declared X on their bridged nets.
// Lanes with no armed bridge settle in the first pass and are
// untouched by the extra iterations (the pass is idempotent).
func (m *Machine) Eval() {
	if !m.sealed {
		m.seal()
	}
	for i := range m.ovAny {
		m.ovAny[i], m.ovV[i], m.ovX[i] = 0, 0, 0
	}
	m.evalPass()
	armedAny := uint64(0)
	for i := range m.bridges {
		armedAny |= m.bridges[i].armed
	}
	if armedAny == 0 {
		return
	}
	unstable := uint64(0)
	for iter := 0; iter < maxBridgeIter; iter++ {
		changed := uint64(0)
		for i := range m.bridges {
			e := &m.bridges[i]
			if e.armed == 0 {
				continue
			}
			var rv, rx uint64
			av, ax := m.driveV[e.a], m.driveX[e.a]
			bv, bx := m.driveV[e.b], m.driveX[e.b]
			if e.wand {
				rv = av & bv
				rx = (ax | bx) & (av | ax) & (bv | bx)
			} else {
				rv = av | bv
				rx = (ax | bx) &^ rv
			}
			changed |= m.ovSet(e.a, e.armed, rv, rx)
			changed |= m.ovSet(e.b, e.armed, rv, rx)
		}
		if changed == 0 {
			return
		}
		unstable = changed
		m.evalPass()
	}
	// Lanes still changing on the last iteration oscillate through the
	// bridge; their bridged nets become X, like the serial interpreter.
	for i := range m.bridges {
		e := &m.bridges[i]
		am := e.armed & unstable
		if am == 0 {
			continue
		}
		m.ovForceX(e.a, am)
		m.ovForceX(e.b, am)
	}
	m.evalPass()
}

// ovSet merges a bridge resolution into a bridge-net's overlay for the
// armed lanes, returning the lanes whose overlay changed (or was newly
// established — the serial loop counts first-time assignment as a
// change too).
func (m *Machine) ovSet(bn int32, am, rv, rx uint64) uint64 {
	newly := am &^ m.ovAny[bn]
	diff := am & m.ovAny[bn] & ((m.ovV[bn] ^ rv) | (m.ovX[bn] ^ rx))
	m.ovAny[bn] |= am
	m.ovV[bn] = m.ovV[bn]&^am | rv&am
	m.ovX[bn] = m.ovX[bn]&^am | rx&am
	return newly | diff
}

func (m *Machine) ovForceX(bn int32, lanes uint64) {
	m.ovAny[bn] |= lanes
	m.ovV[bn] &^= lanes
	m.ovX[bn] |= lanes
}

// evalPass runs the source load phase and one pass over the op stream.
func (m *Machine) evalPass() {
	p := m.p
	n := p.n
	valP, xP := m.valP, m.xP
	if n.Const0 != netlist.InvalidNet {
		valP[n.Const0], xP[n.Const0] = 0, 0
	}
	if n.Const1 != netlist.InvalidNet {
		valP[n.Const1], xP[n.Const1] = ^uint64(0), 0
	}
	for _, id := range p.portNets {
		valP[id], xP[id] = m.extV[id], m.extX[id]
	}
	for i, q := range p.ffQ {
		valP[q], xP[q] = m.stateV[i], m.stateX[i]
	}
	ops := m.ops
	for i := range ops {
		o := &ops[i]
		switch o.code {
		case opBUF:
			valP[o.out], xP[o.out] = valP[o.a], xP[o.a]
		case opNOT:
			av, ax := valP[o.a], xP[o.a]
			valP[o.out], xP[o.out] = ^av&^ax, ax
		case opAND2:
			av, ax := valP[o.a], xP[o.a]
			bv, bx := valP[o.b], xP[o.b]
			valP[o.out] = av & bv
			xP[o.out] = (ax | bx) & (av | ax) & (bv | bx)
		case opNAND2:
			av, ax := valP[o.a], xP[o.a]
			bv, bx := valP[o.b], xP[o.b]
			v := av & bv
			x := (ax | bx) & (av | ax) & (bv | bx)
			valP[o.out], xP[o.out] = ^v&^x, x
		case opOR2:
			av, ax := valP[o.a], xP[o.a]
			bv, bx := valP[o.b], xP[o.b]
			v := av | bv
			valP[o.out] = v
			xP[o.out] = (ax | bx) &^ v
		case opNOR2:
			av, ax := valP[o.a], xP[o.a]
			bv, bx := valP[o.b], xP[o.b]
			v := av | bv
			x := (ax | bx) &^ v
			valP[o.out], xP[o.out] = ^v&^x, x
		case opXOR2:
			av, ax := valP[o.a], xP[o.a]
			bv, bx := valP[o.b], xP[o.b]
			x := ax | bx
			valP[o.out], xP[o.out] = (av^bv)&^x, x
		case opXNOR2:
			av, ax := valP[o.a], xP[o.a]
			bv, bx := valP[o.b], xP[o.b]
			x := ax | bx
			valP[o.out], xP[o.out] = ^(av^bv)&^x, x
		case opMUX2:
			sv, sx := valP[o.a], xP[o.a]
			bv, bx := valP[o.b], xP[o.b]
			cv, cx := valP[o.c], xP[o.c]
			agree := ^(bx | cx) &^ (bv ^ cv)
			valP[o.out] = ^sx&(sv&cv|^sv&bv) | sx&agree&bv
			xP[o.out] = ^sx&(sv&cx|^sv&bx) | sx&^agree
		case opFORCE:
			any := m.fAny[o.b]
			valP[o.out] = valP[o.a]&^any | m.fVal[o.b]
			xP[o.out] = xP[o.a]&^any | m.fX[o.b]
		case opBRIDGE:
			m.driveV[o.b], m.driveX[o.b] = valP[o.a], xP[o.a]
			any := m.ovAny[o.b]
			valP[o.a] = valP[o.a]&^any | m.ovV[o.b]
			xP[o.a] = xP[o.a]&^any | m.ovX[o.b]
		}
	}
}

// Step applies one positive clock edge in every lane: flip-flops
// sample the settled pre-edge values (with the same unknown-enable
// semantics as sim.Step), the optional tick callback runs for
// peripheral sampling/commit while pre-edge values are still live,
// state commits and the network re-settles.
func (m *Machine) Step(tick func()) {
	if !m.sealed {
		m.seal()
	}
	p := m.p
	for i := range p.ffQ {
		dv, dx := m.valP[p.ffD[i]], m.xP[p.ffD[i]]
		sv, sx := m.stateV[i], m.stateX[i]
		if en := p.ffEn[i]; en >= 0 {
			ev, ex := m.valP[en], m.xP[en]
			load1 := ev &^ ex
			load0 := ^ev &^ ex
			agree := ^(dx | sx) &^ (dv ^ sv)
			m.nextV[i] = load1&dv | load0&sv | ex&agree&sv
			m.nextX[i] = load1&dx | load0&sx | ex&^agree
		} else {
			m.nextV[i], m.nextX[i] = dv, dx
		}
	}
	if tick != nil {
		tick()
	}
	copy(m.stateV, m.nextV)
	copy(m.stateX, m.nextX)
	m.Eval()
}
