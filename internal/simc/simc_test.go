package simc_test

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/netlist"
	"repro/internal/randckt"
	"repro/internal/sim"
	"repro/internal/simc"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// laneScenario is one lane's fault life: a fault, its injection cycle
// and an optional removal delay (0 = permanent).
type laneScenario struct {
	active bool
	f      faults.Fault
	cycle  int
	dur    int
}

// TestDifferentialRandomCircuits is the fuzz oracle for the compiled
// kernel: random circuits spanning fan-in arities and FF counts,
// simulated cycle-by-cycle by the serial three-valued interpreter and
// by one Machine lane each, under per-lane fault scenarios covering
// net/pin stuck-ats, delay-X glitches, FF flips and bridges, with
// sporadic X drives on the inputs. Every gate output and every FF
// state bit — including X-ness — must match on every cycle.
func TestDifferentialRandomCircuits(t *testing.T) {
	cfgs := []randckt.Config{
		{Inputs: 6, Gates: 30, FFs: 0, Outputs: 3, MaxArity: 2},
		{Inputs: 6, Gates: 40, FFs: 6, Outputs: 4, MaxArity: 3},
		{Inputs: 8, Gates: 60, FFs: 8, Outputs: 4, MaxArity: 4},
		{Inputs: 4, Gates: 25, FFs: 3, Outputs: 2, MaxArity: 5},
	}
	for ci, cfg := range cfgs {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("cfg%d_seed%d", ci, seed), func(t *testing.T) {
				diffOneCircuit(t, cfg, seed)
			})
		}
	}
}

func diffOneCircuit(t *testing.T, cfg randckt.Config, seed uint64) {
	n := randckt.Generate(cfg, seed)
	prog, err := simc.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	m := simc.NewMachine(prog)
	rng := xrand.New(seed * 977)

	const lanes = 64
	const cycles = 45

	randNet := func() netlist.NetID { return netlist.NetID(rng.Intn(len(n.Nets))) }
	scen := make([]laneScenario, lanes)
	netRefs := make([]simc.ForceRef, lanes)
	pinRefs := make([]simc.ForceRef, lanes)
	bridgeRefs := make([]simc.BridgeRef, lanes)
	sims := make([]*sim.Simulator, lanes)
	for lane := 0; lane < lanes; lane++ {
		sims[lane], err = sim.New(n)
		if err != nil {
			t.Fatal(err)
		}
		sc := &scen[lane]
		sc.cycle = rng.Intn(cycles - 5)
		if rng.Intn(2) == 0 {
			sc.dur = 1 + rng.Intn(6)
		}
		sc.active = true
		switch lane % 6 {
		case 0: // golden lane
			sc.active = false
		case 1:
			sc.f = faults.NetSA(randNet(), rng.Bool())
			netRefs[lane] = m.AddNetForce(sc.f.Net)
		case 2:
			g := &n.Gates[rng.Intn(len(n.Gates))]
			sc.f = faults.PinSA(g.ID, rng.Intn(len(g.Inputs)), rng.Bool())
			pinRefs[lane], err = m.AddPinForce(sc.f.Gate, sc.f.Pin)
			if err != nil {
				t.Fatal(err)
			}
		case 3:
			sc.f = faults.NetDelay(randNet())
			sc.dur = 1 + rng.Intn(4)
			netRefs[lane] = m.AddNetForce(sc.f.Net)
		case 4:
			if len(n.FFs) == 0 {
				sc.f = faults.NetSA(randNet(), rng.Bool())
				netRefs[lane] = m.AddNetForce(sc.f.Net)
				sc.dur = 0
			} else {
				sc.f = faults.FFFlip(netlist.FFID(rng.Intn(len(n.FFs))))
				sc.dur = 0
			}
		case 5:
			a, b := randNet(), randNet()
			for b == a {
				b = randNet()
			}
			sc.f = faults.NetBridge(a, b, rng.Bool())
			bridgeRefs[lane] = m.AddBridge(a, b, sc.f.Kind == faults.BridgeAND)
		}
	}
	for lane := 0; lane < lanes; lane++ {
		sn := sims[lane].Snapshot()
		m.LoadLane(lane, sn.FFValues(), sn.ExtValues())
	}
	m.Eval()
	compareLanes(t, n, m, sims, -1)

	inPort, _ := n.FindInput("in")
	for c := 0; c < cycles; c++ {
		word := rng.Bits(cfg.Inputs)
		xbit := -1
		if rng.Intn(4) == 0 {
			xbit = rng.Intn(cfg.Inputs)
		}
		for lane := 0; lane < lanes; lane++ {
			sims[lane].SetInput("in", word)
			if xbit >= 0 {
				sims[lane].SetInputBit("in", xbit, sim.VX)
			}
		}
		for bit, id := range inPort.Nets {
			v := sim.FromBool(word>>uint(bit)&1 == 1)
			if bit == xbit {
				v = sim.VX
			}
			m.DriveInput(id, v)
		}
		for lane := 0; lane < lanes; lane++ {
			sims[lane].Eval()
			sims[lane].Step()
		}
		m.Eval()
		m.Step(nil)

		dirty := false
		for lane := 0; lane < lanes; lane++ {
			sc := &scen[lane]
			if !sc.active {
				continue
			}
			bit := uint64(1) << uint(lane)
			if c == sc.cycle {
				sc.f.Apply(sims[lane])
				applyToMachine(m, sc.f, bit, netRefs[lane], pinRefs[lane], bridgeRefs[lane])
				dirty = true
			}
			if sc.dur > 0 && c == sc.cycle+sc.dur {
				sc.f.Remove(sims[lane])
				removeFromMachine(m, sc.f, bit, netRefs[lane], pinRefs[lane], bridgeRefs[lane])
				dirty = true
			}
		}
		if dirty {
			m.Eval()
		}
		compareLanes(t, n, m, sims, c)
		if t.Failed() {
			return
		}
	}
}

func applyToMachine(m *simc.Machine, f faults.Fault, lanes uint64, netRef, pinRef simc.ForceRef, bridgeRef simc.BridgeRef) {
	switch f.Kind {
	case faults.SA0, faults.SA1:
		v := sim.FromBool(f.Kind == faults.SA1)
		if f.Site == faults.SitePin {
			m.SetForce(pinRef, lanes, v)
		} else {
			m.SetForce(netRef, lanes, v)
		}
	case faults.DelayX:
		m.SetForce(netRef, lanes, sim.VX)
	case faults.Flip:
		m.FlipFF(f.FF, lanes)
	case faults.BridgeAND, faults.BridgeOR:
		m.ArmBridge(bridgeRef, lanes)
	}
}

func removeFromMachine(m *simc.Machine, f faults.Fault, lanes uint64, netRef, pinRef simc.ForceRef, bridgeRef simc.BridgeRef) {
	switch f.Kind {
	case faults.SA0, faults.SA1:
		if f.Site == faults.SitePin {
			m.ClearForce(pinRef, lanes)
		} else {
			m.ClearForce(netRef, lanes)
		}
	case faults.DelayX:
		m.ClearForce(netRef, lanes)
	case faults.BridgeAND, faults.BridgeOR:
		m.DisarmBridge(bridgeRef, lanes)
	}
}

func compareLanes(t *testing.T, n *netlist.Netlist, m *simc.Machine, sims []*sim.Simulator, cycle int) {
	t.Helper()
	for lane := range sims {
		s := sims[lane]
		for gi := range n.Gates {
			id := n.Gates[gi].Output
			if got, want := m.NetValue(lane, id), s.Net(id); got != want {
				t.Errorf("cycle %d lane %d: net %d (%s) = %v, serial %v",
					cycle, lane, id, n.NetName(id), got, want)
				return
			}
		}
		for fi := range n.FFs {
			id := netlist.FFID(fi)
			if got, want := m.FFValue(lane, id), s.FFState(id); got != want {
				t.Errorf("cycle %d lane %d: FF %d (%s) = %v, serial %v",
					cycle, lane, id, n.FFs[fi].Name, got, want)
				return
			}
		}
	}
}

// TestDifferentialEnableFF covers the enabled-FF step formula the
// random circuits cannot reach (randckt registers are always-enabled),
// including the unknown-enable case: state holds only when D agrees
// with a known state, else becomes X.
func TestDifferentialEnableFF(t *testing.T) {
	n := netlist.New("enff")
	d := n.AddInput("d", 2)
	en := n.AddInput("en", 1)[0]
	inv := n.AddGate(netlist.NOT, "G", d[1])
	_, q0 := n.AddFF("r0", "R", d[0], en, false)
	_, q1 := n.AddFF("r1", "R", inv, en, true)
	x := n.AddGate(netlist.XOR, "G", q0, q1)
	n.AddOutput("out", []netlist.NetID{x})
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	prog, err := simc.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	m := simc.NewMachine(prog)
	s, err := sim.New(n)
	if err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	for lane := 0; lane < 1; lane++ {
		m.LoadLane(lane, sn.FFValues(), sn.ExtValues())
	}
	m.Eval()

	rng := xrand.New(42)
	dPort, _ := n.FindInput("d")
	for c := 0; c < 60; c++ {
		dw := rng.Bits(2)
		ev := sim.FromBool(rng.Bool())
		switch rng.Intn(3) {
		case 0:
			ev = sim.VX
		}
		s.SetInput("d", dw)
		if rng.Intn(3) == 0 {
			s.SetInputBit("d", 0, sim.VX)
			m.DriveInput(dPort.Nets[0], sim.VX)
		} else {
			m.DriveInput(dPort.Nets[0], sim.FromBool(dw&1 == 1))
		}
		m.DriveInput(dPort.Nets[1], sim.FromBool(dw>>1&1 == 1))
		s.SetInputBit("en", 0, ev)
		m.DriveInput(en, ev)

		s.Eval()
		s.Step()
		m.Eval()
		m.Step(nil)
		for fi := range n.FFs {
			id := netlist.FFID(fi)
			if got, want := m.FFValue(0, id), s.FFState(id); got != want {
				t.Fatalf("cycle %d: FF %d = %v, serial %v", c, fi, got, want)
			}
		}
		if got, want := m.NetValue(0, x), s.Net(x); got != want {
			t.Fatalf("cycle %d: out = %v, serial %v", c, got, want)
		}
	}
}

// TestBinMachineMatchesSerial drives the binary kernel and the serial
// interpreter with the same binary workload and no faults; every lane
// must reproduce the serial run bit-for-bit.
func TestBinMachineMatchesSerial(t *testing.T) {
	cfg := randckt.Default()
	n := randckt.Generate(cfg, 9)
	prog, err := simc.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	bm := simc.NewBinMachine(prog)
	bm.ResetState()
	s, err := sim.New(n)
	if err != nil {
		t.Fatal(err)
	}
	// Serial FFs reset through Reset(); ext starts X, so step once with
	// driven inputs before comparing (binary machines have no X plane).
	rng := xrand.New(3)
	tr := workload.Random(rng, []string{"in"}, map[string]int{"in": cfg.Inputs}, 30)
	inPort, _ := n.FindInput("in")
	for c := 0; c < tr.Cycles(); c++ {
		tr.ApplyTo(s, c)
		word := tr.Vecs[c][0]
		for bit, id := range inPort.Nets {
			w := uint64(0)
			if word>>uint(bit)&1 == 1 {
				w = ^uint64(0)
			}
			bm.DriveInput(id, w)
		}
		s.Eval()
		bm.Eval()
		for gi := range n.Gates {
			id := n.Gates[gi].Output
			want := s.Net(id)
			if want == sim.VX {
				continue // uninitialized state cone; binary lanes have no X
			}
			got := bm.Val(id)
			if got != 0 && got != ^uint64(0) {
				t.Fatalf("cycle %d net %d: lanes disagree: %#x", c, id, got)
			}
			if (got&1 == 1) != (want == sim.V1) {
				t.Fatalf("cycle %d net %d: bin %v, serial %v", c, id, got&1, want)
			}
		}
		s.Step()
		bm.Step()
	}
}
