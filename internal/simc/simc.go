// Package simc compiles a netlist into a flat word-parallel bytecode
// program and evaluates it with a tight interpreter loop. Each of the
// 64 bit-lanes of a machine word is an independent simulation, so one
// pass over the program advances 64 experiments at once.
//
// The package provides one compiler and two interpreters over the same
// program:
//
//   - Machine evaluates full three-valued (0/1/X) logic over two planes
//     per net — a value plane and an X-mask plane — and is the kernel
//     behind the batched injection campaigns in internal/inject. It is
//     differentially tested against the serial internal/sim oracle.
//   - BinMachine evaluates pure binary logic over a single plane and is
//     the kernel behind the PPSFP fault simulator in internal/faultsim.
//
// Why X needs a second plane: a single uint64 per net can encode two
// logic levels, not three. The encoding here keeps `val AND x == 0` as
// an invariant — a lane whose X bit is set has its value bit forced to
// zero — so Kleene semantics reduce to short branch-free mask formulas
// (e.g. AND2: x_out = (ax|bx) & (av|ax) & (bv|bx): the output is
// unknown only if some input is unknown and no known input is 0).
//
// Faults attach through per-batch op patching: registering a force or
// bridge point splices a FORCE/BRIDGE op into the instruction stream
// right after the target net's driver (or ahead of the program for
// source nets), and rewires pin forces through scratch slots. The base
// program stays branch-free — an unforced net costs zero extra work,
// and a registered-but-unarmed force (all-zero lane mask) is a cheap
// identity op.
package simc

import (
	"fmt"

	"repro/internal/netlist"
)

type opcode uint8

// Opcodes of the compiled program. All gate ops are 1- or 2-input;
// wider gates are decomposed into chains through scratch slots at
// compile time (Kleene and binary AND/OR/XOR are associative, so the
// chain is exact). MUX2 keeps its 3 operands: a=select, b=input when
// select is 0, c=input when select is 1.
const (
	opBUF opcode = iota
	opNOT
	opAND2
	opOR2
	opNAND2
	opNOR2
	opXOR2
	opXNOR2
	opMUX2
	// opFORCE: out = a overridden by force slot b (per-lane masks).
	opFORCE
	// opBRIDGE: capture slot a's driven planes into bridge-net b, then
	// apply bridge-net b's overlay to slot a (three-valued Machine only).
	opBRIDGE
)

// op is one bytecode instruction: an opcode, an output slot and up to
// three operand slots (b doubles as the force-slot / bridge-net index
// for opFORCE / opBRIDGE).
type op struct {
	code    opcode
	out     int32
	a, b, c int32
}

// pinSite locates where one gate input pin is consumed in the program:
// the op index and which operand field (0=a, 1=b, 2=c) reads it.
type pinSite struct {
	opIdx   int32
	operand uint8
}

func pinKeyOf(g netlist.GateID, pin int) uint64 {
	return uint64(uint32(g))<<16 | uint64(uint16(pin))
}

// Program is a compiled netlist: a levelized, branch-free op stream
// over net-indexed slots. Programs are immutable once compiled and
// safe to share across machines and goroutines.
type Program struct {
	n    *netlist.Netlist
	ops  []op
	nets int32 // slots [0, nets) are netlist nets
	// slots is the total slot count including decomposition scratch.
	slots int32

	// driverOp maps each gate-driven net to the index of the op that
	// finally writes it; -1 marks source nets (inputs, externals, FF
	// outputs, constants) and undriven nets.
	driverOp []int32
	// pinSites maps (gate, pin) onto the consuming operand.
	pinSites map[uint64]pinSite

	// Source tables for the per-pass load phase.
	portNets []int32 // input + external port nets, flattened
	ffQ      []int32
	ffD      []int32
	ffEn     []int32 // -1 = always enabled
}

// Netlist returns the netlist the program was compiled from.
func (p *Program) Netlist() *netlist.Netlist { return p.n }

// Ops returns the instruction count (for diagnostics and tests).
func (p *Program) Ops() int { return len(p.ops) }

// Compile levelizes the netlist and emits its bytecode program.
func Compile(n *netlist.Netlist) (*Program, error) {
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	p := &Program{
		n:        n,
		nets:     int32(len(n.Nets)),
		slots:    int32(len(n.Nets)),
		driverOp: make([]int32, len(n.Nets)),
		pinSites: make(map[uint64]pinSite, 4*len(n.Gates)),
		ops:      make([]op, 0, len(n.Gates)+len(n.Gates)/4),
	}
	for i := range p.driverOp {
		p.driverOp[i] = -1
	}
	for _, gid := range order {
		if err := p.emitGate(&n.Gates[gid]); err != nil {
			return nil, err
		}
	}
	for _, port := range n.Inputs {
		for _, id := range port.Nets {
			p.portNets = append(p.portNets, int32(id))
		}
	}
	for _, port := range n.Externals {
		for _, id := range port.Nets {
			p.portNets = append(p.portNets, int32(id))
		}
	}
	p.ffQ = make([]int32, len(n.FFs))
	p.ffD = make([]int32, len(n.FFs))
	p.ffEn = make([]int32, len(n.FFs))
	for i := range n.FFs {
		ff := &n.FFs[i]
		p.ffQ[i] = int32(ff.Q)
		p.ffD[i] = int32(ff.D)
		p.ffEn[i] = int32(ff.Enable) // InvalidNet is -1
	}
	return p, nil
}

// emitGate decomposes one gate into 1-/2-input ops, recording the pin
// consumption sites for pin-fault patching.
func (p *Program) emitGate(g *netlist.Gate) error {
	k := len(g.Inputs)
	if k < 1 {
		return fmt.Errorf("simc: gate %d (%v) has no inputs", g.ID, g.Type)
	}
	emit := func(o op) int32 {
		p.ops = append(p.ops, o)
		return int32(len(p.ops) - 1)
	}
	setPin := func(pin int, idx int32, operand uint8) {
		p.pinSites[pinKeyOf(g.ID, pin)] = pinSite{opIdx: idx, operand: operand}
	}
	out := int32(g.Output)
	var chain, last opcode
	switch g.Type {
	case netlist.BUF:
		chain, last = opBUF, opBUF
	case netlist.NOT:
		chain, last = opBUF, opNOT
	case netlist.AND:
		chain, last = opAND2, opAND2
	case netlist.NAND:
		chain, last = opAND2, opNAND2
	case netlist.OR:
		chain, last = opOR2, opOR2
	case netlist.NOR:
		chain, last = opOR2, opNOR2
	case netlist.XOR:
		chain, last = opXOR2, opXOR2
	case netlist.XNOR:
		chain, last = opXOR2, opXNOR2
	case netlist.MUX2:
		if k != 3 {
			return fmt.Errorf("simc: MUX2 gate %d has %d inputs, want 3", g.ID, k)
		}
		idx := emit(op{code: opMUX2, out: out,
			a: int32(g.Inputs[0]), b: int32(g.Inputs[1]), c: int32(g.Inputs[2])})
		setPin(0, idx, 0)
		setPin(1, idx, 1)
		setPin(2, idx, 2)
		p.driverOp[g.Output] = idx
		return nil
	default:
		return fmt.Errorf("simc: unknown gate type %v", g.Type)
	}
	if g.Type == netlist.BUF || g.Type == netlist.NOT || k == 1 {
		// A 1-input AND/OR/XOR is a buffer; NAND/NOR/XNOR an inverter.
		code := opBUF
		if last == opNAND2 || last == opNOR2 || last == opXNOR2 || last == opNOT {
			code = opNOT
		}
		idx := emit(op{code: code, out: out, a: int32(g.Inputs[0])})
		setPin(0, idx, 0)
		p.driverOp[g.Output] = idx
		return nil
	}
	acc := int32(g.Inputs[0])
	for i := 1; i < k; i++ {
		code, dst := chain, p.slots
		if i == k-1 {
			code, dst = last, out
		} else {
			p.slots++
		}
		idx := emit(op{code: code, out: dst, a: acc, b: int32(g.Inputs[i])})
		if i == 1 {
			setPin(0, idx, 0)
		}
		setPin(i, idx, 1)
		acc = dst
	}
	p.driverOp[g.Output] = int32(len(p.ops) - 1)
	return nil
}

// netPatch and pinPatch record registered fault attachment points in
// registration order.
type netPatch struct {
	net int32
	ref int32
}

type pinPatch struct {
	site pinSite
	ref  int32
}

// patchOps splices FORCE and BRIDGE ops into a copy of the base
// program: after each patched net's driver op (or ahead of the program
// for source nets, which load before any op runs), with a net's force
// applied before its bridge capture — the same order the serial
// interpreter uses. Pin forces allocate a scratch slot, interpose a
// FORCE op and rewire the consuming operand. Returns the patched
// stream and the total slot count.
func patchOps(p *Program, nets []netPatch, pins []pinPatch, bridgeNets []int32) ([]op, int32) {
	var prefix []op
	after := make(map[int32][]op)
	addNetOp(p, &prefix, after, nets, bridgeNets)
	before := make(map[int32][]pinPatch)
	for _, pp := range pins {
		before[pp.site.opIdx] = append(before[pp.site.opIdx], pp)
	}
	slots := p.slots
	out := make([]op, 0, len(p.ops)+len(prefix)+len(nets)+len(pins)+len(bridgeNets))
	out = append(out, prefix...)
	for i := range p.ops {
		o := p.ops[i]
		if pb, ok := before[int32(i)]; ok {
			for _, ins := range pb {
				src := operandOf(&o, ins.site.operand)
				out = append(out, op{code: opFORCE, out: slots, a: src, b: ins.ref})
				setOperand(&o, ins.site.operand, slots)
				slots++
			}
		}
		out = append(out, o)
		if pa, ok := after[int32(i)]; ok {
			out = append(out, pa...)
		}
	}
	return out, slots
}

// addNetOp distributes the per-net FORCE then BRIDGE ops to the prefix
// (source nets) or the after-driver insertion lists.
func addNetOp(p *Program, prefix *[]op, after map[int32][]op, nets []netPatch, bridgeNets []int32) {
	place := func(net int32, o op) {
		if d := p.driverOp[net]; d >= 0 {
			after[d] = append(after[d], o)
		} else {
			*prefix = append(*prefix, o)
		}
	}
	for _, np := range nets {
		place(np.net, op{code: opFORCE, out: np.net, a: np.net, b: np.ref})
	}
	for bi, net := range bridgeNets {
		place(net, op{code: opBRIDGE, out: net, a: net, b: int32(bi)})
	}
}

func operandOf(o *op, operand uint8) int32 {
	switch operand {
	case 0:
		return o.a
	case 1:
		return o.b
	default:
		return o.c
	}
}

func setOperand(o *op, operand uint8, slot int32) {
	switch operand {
	case 0:
		o.a = slot
	case 1:
		o.b = slot
	default:
		o.c = slot
	}
}
