package mission

import (
	"strings"
	"testing"

	"repro/internal/fit"
	"repro/internal/fmea"
	"repro/internal/iec61508"
	"repro/internal/inject"
	"repro/internal/memsys"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
	"repro/internal/zones"
)

// twoZone builds a DUT with a heavy-rate naked register and a light-rate
// protected one, plus a worksheet reflecting that.
func twoZone(t *testing.T) (*inject.Target, *inject.Golden, *fmea.Worksheet, *zones.Analysis) {
	t.Helper()
	m := rtl.NewModule("mz")
	d := m.Input("d", 4)
	rp := m.RegNext("r_prot", d, 0)
	pp := m.RegNext("r_par", rtl.Bus{m.Parity(d)}, 0)
	alarm := m.XorBit(m.Parity(rp), pp[0])
	m.Output("out_p", rp)
	m.Output("alarm_par", rtl.Bus{alarm})
	rn := m.RegNext("r_naked", d, 0)
	m.Output("out_n", rn)
	n := m.MustFinish()
	a, err := zones.Extract(n, zones.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	target := &inject.Target{
		Analysis:    a,
		NewInstance: func() (*sim.Simulator, error) { return sim.New(n) },
	}
	tr := workload.NewTrace("d")
	rng := xrand.New(2)
	for c := 0; c < 20; c++ {
		tr.Add(map[string]uint64{"d": rng.Bits(4)})
	}
	g, err := target.RunGolden(tr)
	if err != nil {
		t.Fatal(err)
	}
	zp, _ := a.ZoneByName("r_prot")
	zn, _ := a.ZoneByName("r_naked")
	w := fmea.New("mz")
	w.AddRow(zp.ID, "r_prot", fmea.Spec{
		Mode: iec61508.FMTransient, Lambda: fit.Contribution{Transient: 10},
		S: 0.2, Freq: fmea.F1, Lifetime: 1,
		DDF: fmea.DDF{HWTransient: 0.99}, TechHW: iec61508.TechRedundantChecker,
	})
	w.AddRow(zn.ID, "r_naked", fmea.Spec{
		Mode: iec61508.FMTransient, Lambda: fit.Contribution{Transient: 90},
		S: 0.2, Freq: fmea.F1, Lifetime: 1,
	})
	return target, g, w, a
}

func TestMissionSamplingFollowsRates(t *testing.T) {
	target, g, w, _ := twoZone(t)
	res, err := Run(target, g, w, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Missions != 200 || res.Safe+res.DangerDet+res.DangerUndet != 200 {
		t.Fatalf("counts don't add up: %+v", res)
	}
	// The naked zone carries 90% of the rate and none of its dangerous
	// failures are detected, so undetected-dangerous must dominate the
	// dangerous outcomes.
	if res.DangerUndet <= res.DangerDet {
		t.Errorf("rate weighting broken: undetected %d <= detected %d",
			res.DangerUndet, res.DangerDet)
	}
	if res.LambdaTotal != 100 {
		t.Errorf("λ_total = %v, want 100", res.LambdaTotal)
	}
	// Interval sanity.
	if !(res.SFFLow <= res.SFFEmpirical && res.SFFEmpirical <= res.SFFHigh) {
		t.Errorf("CI malformed: %+v", res)
	}
	if !strings.Contains(res.String(), "SFF_emp") {
		t.Error("String() malformed")
	}
}

func TestMissionDeterministic(t *testing.T) {
	target, g, w, _ := twoZone(t)
	a, _ := Run(target, g, w, 60, 5)
	b, _ := Run(target, g, w, 60, 5)
	if a != b {
		t.Error("same seed, different results")
	}
	// (Different seeds may legitimately land on the same outcome counts
	// at this sample size, so only same-seed reproducibility is asserted.)
}

func TestMissionEmptyWorksheet(t *testing.T) {
	target, g, _, _ := twoZone(t)
	if _, err := Run(target, g, fmea.New("empty"), 10, 1); err == nil {
		t.Error("empty worksheet accepted")
	}
}

// TestMissionAgreesWithWorksheetOnV2 is the headline check: the
// empirical SFF interval of the final memory sub-system must contain —
// or sit above — the analytical SFF (the sheet is conservative).
func TestMissionAgreesWithWorksheetOnV2(t *testing.T) {
	if testing.Short() {
		t.Skip("mission Monte Carlo is slow")
	}
	cfg := memsys.V2Config()
	cfg.AddrWidth = 6
	d, err := memsys.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	w := d.Worksheet(a, fit.Default())
	target := d.InjectionTargetSeeded(a, d.SeedFaults())
	g, err := target.RunGolden(d.ValidationWorkload(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(target, g, w, 150, 11)
	if err != nil {
		t.Fatal(err)
	}
	analytic := w.Totals().SFF()
	t.Logf("v2: analytic SFF %.4f, empirical %s", analytic, res)
	if res.SFFLow > 1 || res.SFFHigh < analytic-0.05 {
		t.Errorf("empirical SFF %.4f [%.4f, %.4f] far below analytic %.4f",
			res.SFFEmpirical, res.SFFLow, res.SFFHigh, analytic)
	}
}
