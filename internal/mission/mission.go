// Package mission validates the FMEA's bottom line empirically: a
// Monte Carlo mission simulation where single faults arrive with
// probabilities proportional to the worksheet's physical failure rates
// (importance sampling over the — astronomically rare — per-mission
// fault event), are injected into live gate-level simulations, and the
// observed outcome mix yields an *empirical* safe failure fraction with
// a confidence interval to set against the analytical SFF.
//
// This differs from the Section 5 campaign in one essential way: the
// campaign samples zones uniformly (coverage-oriented), while the
// mission sampler weights every zone by its λ contribution — a zone
// with 10× the failure rate receives 10× the events, so the outcome mix
// estimates the fleet-level rates directly.
package mission

import (
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/fmea"
	"repro/internal/inject"
	"repro/internal/xrand"
	"repro/internal/zones"
)

// Result is the Monte Carlo estimate.
type Result struct {
	Missions int
	// Outcome counts over sampled single-fault missions.
	Safe        int // silent or detected-safe
	DangerDet   int
	DangerUndet int
	// LambdaTotal is the worksheet's λS+λD in FIT.
	LambdaTotal float64
	// SFFEmpirical = (safe + detected-dangerous) fraction; Low/High give
	// the 95% normal-approximation interval.
	SFFEmpirical float64
	SFFLow       float64
	SFFHigh      float64
	// LambdaDUEmpirical is λ_total × P(dangerous-undetected), in FIT.
	LambdaDUEmpirical float64
}

// String renders the estimate.
func (r Result) String() string {
	return fmt.Sprintf("missions=%d SFF_emp=%.4f [%.4f, %.4f] λDU_emp=%.4f FIT",
		r.Missions, r.SFFEmpirical, r.SFFLow, r.SFFHigh, r.LambdaDUEmpirical)
}

// event is one sampleable fault class with its rate weight.
type event struct {
	zone      int
	transient bool
	weight    float64
}

// Run samples `missions` single-fault missions. Transient events flip a
// random state bit of the zone (or pulse a boundary net for peripheral
// and I/O zones — a read-path upset approximation); permanent events
// stick a random zone net. Arrival instants are uniform over the
// workload horizon, as for a homogeneous Poisson process.
func Run(target *inject.Target, g *inject.Golden, w *fmea.Worksheet, missions int, seed uint64) (Result, error) {
	a := target.Analysis
	var events []event
	var total float64
	for zi := range a.Zones {
		m := w.ZoneMetrics(zi)
		if m.Total() == 0 {
			continue
		}
		// Split the zone's effective rate into transient and permanent
		// parts by re-walking its rows.
		var trans, perm float64
		for _, row := range w.Rows {
			if row.Zone != zi {
				continue
			}
			usage := row.Freq.Usage()
			trans += row.Lambda.Transient * usage * row.Lifetime
			perm += row.Lambda.Permanent * usage
		}
		if trans > 0 {
			events = append(events, event{zone: zi, transient: true, weight: trans})
		}
		if perm > 0 {
			events = append(events, event{zone: zi, transient: false, weight: perm})
		}
		total += trans + perm
	}
	if len(events) == 0 {
		return Result{}, fmt.Errorf("mission: worksheet carries no rates")
	}

	rng := xrand.New(seed)
	pick := func() event {
		x := rng.Float64() * total
		for _, e := range events {
			x -= e.weight
			if x <= 0 {
				return e
			}
		}
		return events[len(events)-1]
	}

	res := Result{Missions: missions, LambdaTotal: total}
	horizon := g.Trace.Cycles()
	for m := 0; m < missions; m++ {
		e := pick()
		inj, ok := buildInjection(a, e, rng, horizon)
		if !ok {
			// Zone without injectable sites (e.g. rate-only row): count
			// conservatively as dangerous undetected.
			res.DangerUndet++
			continue
		}
		out, err := target.RunOne(g, inj)
		if err != nil {
			return Result{}, err
		}
		switch out.Outcome {
		case inject.Silent, inject.DetectedSafe:
			res.Safe++
		case inject.DangerousDetected:
			res.DangerDet++
		default:
			res.DangerUndet++
		}
	}
	p := float64(res.Safe+res.DangerDet) / float64(missions)
	res.SFFEmpirical = p
	sigma := math.Sqrt(p * (1 - p) / float64(missions))
	res.SFFLow = math.Max(0, p-1.96*sigma)
	res.SFFHigh = math.Min(1, p+1.96*sigma)
	res.LambdaDUEmpirical = total * float64(res.DangerUndet) / float64(missions)
	return res, nil
}

// buildInjection maps a sampled event onto a concrete injection.
func buildInjection(a *zones.Analysis, e event, rng *xrand.RNG, horizon int) (inject.Injection, bool) {
	z := &a.Zones[e.zone]
	cycle := rng.Intn(maxInt(1, horizon-1))
	if e.transient {
		if len(z.FFs) > 0 {
			ff := z.FFs[rng.Intn(len(z.FFs))]
			return inject.Injection{
				Zone: e.zone, Fault: faults.FFFlip(ff), Cycle: cycle,
				Mode: "mission transient",
			}, true
		}
		nets := a.EffectNets(e.zone)
		if len(nets) == 0 {
			return inject.Injection{}, false
		}
		return inject.Injection{
			Zone: e.zone, Fault: faults.NetSA(nets[rng.Intn(len(nets))], rng.Bool()),
			Cycle: cycle, Duration: 1, Mode: "mission transient (boundary)",
		}, true
	}
	nets := a.EffectNets(e.zone)
	if len(nets) == 0 {
		return inject.Injection{}, false
	}
	return inject.Injection{
		Zone: e.zone, Fault: faults.NetSA(nets[rng.Intn(len(nets))], rng.Bool()),
		Cycle: cycle, Mode: "mission permanent",
	}, true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
