package dist_test

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/inject"
	"repro/internal/telemetry"
)

// runScripted drives one coordinator over the wire with a scripted
// per-lease latency schedule — the first lease is a straggler, every
// later lease is fast — and returns the granted lease bounds in grant
// order plus the merged report bytes. The fake clock makes the
// observed durations (and therefore the whole sizing sequence) a pure
// function of the script.
func runScripted(t *testing.T, c campaign, adaptive bool, tel *telemetry.Campaign) ([]string, []byte) {
	t.Helper()
	clk := newFakeClock()
	coord, err := dist.New(dist.Config{
		Plan:        c.plan,
		RangeSize:   16,
		LeaseTTL:    time.Hour,
		MaxAttempts: 5,
		BackoffBase: time.Nanosecond,
		Clock:       clk.Now,
		Telemetry:   tel,
		Adaptive:    adaptive,
		TargetLease: 100 * time.Millisecond,
		MinRange:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go coord.Serve(server)
	wc := dist.NewConn(client)
	if err := wc.Write(helloFor("scripted", c.plan)); err != nil {
		t.Fatal(err)
	}

	var grants []string
	for i := 0; ; i++ {
		m, err := wc.Read()
		if err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
		if m.T == dist.MsgFin {
			break
		}
		if m.T != dist.MsgLease {
			t.Fatalf("lease %d: got %q, want a lease", i, m.T)
		}
		grants = append(grants, fmt.Sprintf("[%d,%d)", m.Lo, m.Hi))
		// The straggler: 100ms per row on the first lease. Everything
		// after runs at 0.5ms per row.
		d := time.Duration(m.Hi-m.Lo) * 500 * time.Microsecond
		if i == 0 {
			d = time.Duration(m.Hi-m.Lo) * 100 * time.Millisecond
		}
		clk.Advance(d)
		ck, err := c.target.RunRange(c.golden, c.plan, 2, m.Lo, m.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if err := wc.Write(&dist.Msg{
			T: dist.MsgResult, Lease: m.Lease,
			Ckpt: inject.EncodeCheckpoint(ck, c.plan),
		}); err != nil {
			t.Fatal(err)
		}
	}
	<-coord.Done()
	ck, err := coord.Result()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.target.AssembleReport(c.plan, ck)
	if err != nil {
		t.Fatal(err)
	}
	return grants, renderReport(rep, c)
}

// width parses the row count out of a "[lo,hi)" grant.
func width(t *testing.T, grant string) int {
	t.Helper()
	var lo, hi int
	if _, err := fmt.Sscanf(grant, "[%d,%d)", &lo, &hi); err != nil {
		t.Fatalf("bad grant %q: %v", grant, err)
	}
	return hi - lo
}

// TestAdaptiveShrinksUnderStraggler: after one straggler lease blows
// the tail estimate past TargetLease/MinRange, every subsequent lease
// must be split down to MinRange — bounding how much work the next
// slow lease can strand — while the merged report stays byte-identical
// to the serial reference (splits preserve the sorted, disjoint,
// plan-covering range invariant the in-order merge rests on).
func TestAdaptiveShrinksUnderStraggler(t *testing.T) {
	c := buildCampaign(t, "v2")
	refBytes := renderReport(serialReference(t, c), c)

	grants, got := runScripted(t, c, true, nil)
	if len(grants) < 3 {
		t.Fatalf("campaign finished in %d leases; plan too small to exercise splitting", len(grants))
	}
	if w := width(t, grants[0]); w != 16 {
		t.Fatalf("first lease %s has %d rows, want the fixed pre-observation size 16", grants[0], w)
	}
	for i, g := range grants[1:] {
		if w := width(t, g); w > 2 {
			t.Fatalf("post-straggler lease %d (%s) has %d rows, want <= MinRange 2", i+1, g, w)
		}
	}
	if !bytes.Equal(got, refBytes) {
		t.Fatal("adaptive report bytes differ from the serial reference")
	}
}

// TestAdaptiveDeterministicAndNeutral: with the same completion order
// the sizing sequence must replay exactly (same grants, same bytes),
// and turning Adaptive off over the same script — different lease
// schedule entirely — must still merge to the same report bytes.
func TestAdaptiveDeterministicAndNeutral(t *testing.T) {
	c := buildCampaign(t, "v2")

	g1, b1 := runScripted(t, c, true, nil)
	g2, b2 := runScripted(t, c, true, nil)
	if fmt.Sprint(g1) != fmt.Sprint(g2) {
		t.Fatalf("lease sizing sequence is not deterministic:\nrun 1: %v\nrun 2: %v", g1, g2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("adaptive report bytes differ between identical runs")
	}

	gOff, bOff := runScripted(t, c, false, nil)
	for i, g := range gOff {
		if w := width(t, g); w > 16 {
			t.Fatalf("fixed-size lease %d (%s) wider than RangeSize", i, g)
		}
	}
	if len(gOff) >= len(g1) {
		t.Fatalf("adaptive sizing issued %d leases vs %d fixed — splitting never engaged", len(g1), len(gOff))
	}
	if !bytes.Equal(b1, bOff) {
		t.Fatal("report bytes differ between adaptive on and off")
	}
}

// TestAdaptiveHistogramsAlwaysLive: the range-duration and range-rows
// histograms feed /metrics and cmd/tracer's straggler report, so they
// must populate from live-lease completions even with Adaptive off.
func TestAdaptiveHistogramsAlwaysLive(t *testing.T) {
	c := buildCampaign(t, "v2")
	tel := telemetry.NewCampaign(nil, nil)
	grants, _ := runScripted(t, c, false, tel)

	reg := tel.Registry.Snapshot()
	for _, name := range []string{"range_duration_ms", "range_rows"} {
		h, ok := reg.Histograms[name]
		if !ok {
			t.Fatalf("histogram %s not registered", name)
		}
		if h.Count != int64(len(grants)) {
			t.Fatalf("%s count = %d, want one observation per live lease (%d)", name, h.Count, len(grants))
		}
	}
	if h := reg.Histograms["range_rows"]; h.Sum != int64(len(c.plan)) {
		t.Fatalf("range_rows sum = %d, want plan length %d", h.Sum, len(c.plan))
	}
}
