package dist_test

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/inject"
	"repro/internal/telemetry"
)

// runScripted drives one coordinator over the wire with a scripted
// per-lease latency schedule — the first lease is a straggler, every
// later lease is fast — and returns the granted lease bounds in grant
// order plus the merged report bytes. The fake clock makes the
// observed durations (and therefore the whole sizing sequence) a pure
// function of the script.
func runScripted(t *testing.T, c campaign, adaptive bool, tel *telemetry.Campaign) ([]string, []byte) {
	t.Helper()
	clk := newFakeClock()
	coord, err := dist.New(dist.Config{
		Plan:        c.plan,
		RangeSize:   16,
		LeaseTTL:    time.Hour,
		MaxAttempts: 5,
		BackoffBase: time.Nanosecond,
		Clock:       clk.Now,
		Telemetry:   tel,
		Adaptive:    adaptive,
		TargetLease: 100 * time.Millisecond,
		MinRange:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go coord.Serve(server)
	wc := dist.NewConn(client)
	if err := wc.Write(helloFor("scripted", c.plan)); err != nil {
		t.Fatal(err)
	}

	var grants []string
	for i := 0; ; i++ {
		m, err := wc.Read()
		if err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
		if m.T == dist.MsgFin {
			break
		}
		if m.T != dist.MsgLease {
			t.Fatalf("lease %d: got %q, want a lease", i, m.T)
		}
		grants = append(grants, fmt.Sprintf("[%d,%d)", m.Lo, m.Hi))
		// The straggler: 100ms per row on the first lease. Everything
		// after runs at 0.5ms per row.
		d := time.Duration(m.Hi-m.Lo) * 500 * time.Microsecond
		if i == 0 {
			d = time.Duration(m.Hi-m.Lo) * 100 * time.Millisecond
		}
		clk.Advance(d)
		ck, err := c.target.RunRange(c.golden, c.plan, 2, m.Lo, m.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if err := wc.Write(&dist.Msg{
			T: dist.MsgResult, Lease: m.Lease,
			Ckpt: inject.EncodeCheckpoint(ck, c.plan),
		}); err != nil {
			t.Fatal(err)
		}
	}
	<-coord.Done()
	ck, err := coord.Result()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.target.AssembleReport(c.plan, ck)
	if err != nil {
		t.Fatal(err)
	}
	return grants, renderReport(rep, c)
}

// width parses the row count out of a "[lo,hi)" grant.
func width(t *testing.T, grant string) int {
	t.Helper()
	var lo, hi int
	if _, err := fmt.Sscanf(grant, "[%d,%d)", &lo, &hi); err != nil {
		t.Fatalf("bad grant %q: %v", grant, err)
	}
	return hi - lo
}

// TestAdaptiveShrinksUnderStraggler: after one straggler lease blows
// the tail estimate past TargetLease/MinRange, every subsequent lease
// must be split down to MinRange — bounding how much work the next
// slow lease can strand — while the merged report stays byte-identical
// to the serial reference (splits preserve the sorted, disjoint,
// plan-covering range invariant the in-order merge rests on).
func TestAdaptiveShrinksUnderStraggler(t *testing.T) {
	c := buildCampaign(t, "v2")
	refBytes := renderReport(serialReference(t, c), c)

	grants, got := runScripted(t, c, true, nil)
	if len(grants) < 3 {
		t.Fatalf("campaign finished in %d leases; plan too small to exercise splitting", len(grants))
	}
	if w := width(t, grants[0]); w != 16 {
		t.Fatalf("first lease %s has %d rows, want the fixed pre-observation size 16", grants[0], w)
	}
	for i, g := range grants[1:] {
		if w := width(t, g); w > 2 {
			t.Fatalf("post-straggler lease %d (%s) has %d rows, want <= MinRange 2", i+1, g, w)
		}
	}
	if !bytes.Equal(got, refBytes) {
		t.Fatal("adaptive report bytes differ from the serial reference")
	}
}

// TestAdaptiveDeterministicAndNeutral: with the same completion order
// the sizing sequence must replay exactly (same grants, same bytes),
// and turning Adaptive off over the same script — different lease
// schedule entirely — must still merge to the same report bytes.
func TestAdaptiveDeterministicAndNeutral(t *testing.T) {
	c := buildCampaign(t, "v2")

	g1, b1 := runScripted(t, c, true, nil)
	g2, b2 := runScripted(t, c, true, nil)
	if fmt.Sprint(g1) != fmt.Sprint(g2) {
		t.Fatalf("lease sizing sequence is not deterministic:\nrun 1: %v\nrun 2: %v", g1, g2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("adaptive report bytes differ between identical runs")
	}

	gOff, bOff := runScripted(t, c, false, nil)
	for i, g := range gOff {
		if w := width(t, g); w > 16 {
			t.Fatalf("fixed-size lease %d (%s) wider than RangeSize", i, g)
		}
	}
	if len(gOff) >= len(g1) {
		t.Fatalf("adaptive sizing issued %d leases vs %d fixed — splitting never engaged", len(g1), len(gOff))
	}
	if !bytes.Equal(b1, bOff) {
		t.Fatal("report bytes differ between adaptive on and off")
	}
}

// TestAdaptiveLateResultAfterSplitIsStaleEcho: a lease expires on wide
// bounds, the range is requeued and adaptively split at re-issue, the
// narrow range completes — and only then does the revoked lease's
// result arrive, covering the original wider bounds. That checkpoint
// spans different rows than any current range, so it must be dropped as
// a stale echo, not byte-compared against the narrow winner and
// declared a determinism violation that kills the campaign.
func TestAdaptiveLateResultAfterSplitIsStaleEcho(t *testing.T) {
	c := buildCampaign(t, "v2")
	refBytes := renderReport(serialReference(t, c), c)
	clk := newFakeClock()
	coord, err := dist.New(dist.Config{
		Plan:        c.plan,
		RangeSize:   16,
		LeaseTTL:    time.Minute,
		MaxAttempts: 10,
		BackoffBase: time.Millisecond,
		Clock:       clk.Now,
		Adaptive:    true,
		TargetLease: 100 * time.Millisecond,
		MinRange:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go coord.Serve(server)
	wc := dist.NewConn(client)
	if err := wc.Write(helloFor("latecomer", c.plan)); err != nil {
		t.Fatal(err)
	}
	lease1, err := wc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if lease1.Lo != 0 || lease1.Hi != 16 {
		t.Fatalf("first lease [%d,%d), want the full first range [0,16)", lease1.Lo, lease1.Hi)
	}

	// Expire lease1. The worker is idle, so the scheduler hands it the
	// second range while [0,16) sits in backoff.
	clk.Advance(2 * time.Minute)
	coord.Tick()
	lease2, err := wc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if lease2.T != dist.MsgLease || lease2.Lo != 16 {
		t.Fatalf("expected a lease on the second range, got %q [%d,%d)", lease2.T, lease2.Lo, lease2.Hi)
	}

	// Complete lease2 as a straggler — 100ms/row pushes the tail
	// estimate to where desiredRows == MinRange, so the requeued [0,16)
	// is split at re-issue.
	clk.Advance(time.Duration(lease2.Hi-lease2.Lo) * 100 * time.Millisecond)
	ck2, err := c.target.RunRange(c.golden, c.plan, 2, lease2.Lo, lease2.Hi)
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Write(&dist.Msg{
		T: dist.MsgResult, Lease: lease2.Lease,
		Ckpt: inject.EncodeCheckpoint(ck2, c.plan),
	}); err != nil {
		t.Fatal(err)
	}
	lease3, err := wc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if lease3.Lo != 0 || lease3.Hi >= 16 {
		t.Fatalf("expected a split re-issue of [0,16), got [%d,%d)", lease3.Lo, lease3.Hi)
	}

	// The narrow range completes first...
	clk.Advance(time.Millisecond)
	ck3, err := c.target.RunRange(c.golden, c.plan, 2, lease3.Lo, lease3.Hi)
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Write(&dist.Msg{
		T: dist.MsgResult, Lease: lease3.Lease,
		Ckpt: inject.EncodeCheckpoint(ck3, c.plan),
	}); err != nil {
		t.Fatal(err)
	}
	next, err := wc.Read()
	if err != nil {
		t.Fatal(err)
	}

	// ...and only now does the revoked lease deliver its result over
	// the original, pre-split bounds.
	ck1, err := c.target.RunRange(c.golden, c.plan, 2, lease1.Lo, lease1.Hi)
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Write(&dist.Msg{
		T: dist.MsgResult, Lease: lease1.Lease,
		Ckpt: inject.EncodeCheckpoint(ck1, c.plan),
	}); err != nil {
		t.Fatal(err)
	}

	// Drain the rest of the campaign, completing every lease offered.
	for next.T != dist.MsgFin {
		if next.T != dist.MsgLease {
			t.Fatalf("got %q, want a lease or fin", next.T)
		}
		clk.Advance(time.Millisecond)
		ck, err := c.target.RunRange(c.golden, c.plan, 2, next.Lo, next.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if err := wc.Write(&dist.Msg{
			T: dist.MsgResult, Lease: next.Lease,
			Ckpt: inject.EncodeCheckpoint(ck, c.plan),
		}); err != nil {
			t.Fatal(err)
		}
		if next, err = wc.Read(); err != nil {
			t.Fatal(err)
		}
	}
	<-coord.Done()
	if err := coord.Err(); err != nil {
		t.Fatalf("late pre-split result failed the campaign: %v", err)
	}
	ck, err := coord.Result()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.target.AssembleReport(c.plan, ck)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderReport(rep, c), refBytes) {
		t.Fatal("report bytes differ from the serial reference after a stale pre-split echo")
	}
}

// TestAdaptiveHistogramsAlwaysLive: the range-duration and range-rows
// histograms feed /metrics and cmd/tracer's straggler report, so they
// must populate from live-lease completions even with Adaptive off.
func TestAdaptiveHistogramsAlwaysLive(t *testing.T) {
	c := buildCampaign(t, "v2")
	tel := telemetry.NewCampaign(nil, nil)
	grants, _ := runScripted(t, c, false, tel)

	reg := tel.Registry.Snapshot()
	for _, name := range []string{"range_duration_ms", "range_rows"} {
		h, ok := reg.Histograms[name]
		if !ok {
			t.Fatalf("histogram %s not registered", name)
		}
		if h.Count != int64(len(grants)) {
			t.Fatalf("%s count = %d, want one observation per live lease (%d)", name, h.Count, len(grants))
		}
	}
	if h := reg.Histograms["range_rows"]; h.Sum != int64(len(c.plan)) {
		t.Fatalf("range_rows sum = %d, want plan length %d", h.Sum, len(c.plan))
	}
}
