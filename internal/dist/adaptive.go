package dist

import "time"

// Latency-driven adaptive lease sizing.
//
// The coordinator watches how long live leases take per plan row and,
// when Config.Adaptive is on, splits oversized pending ranges at issue
// time so one lease carries roughly Config.TargetLease of work. Two
// estimators run over the completed-lease stream:
//
//   - ewmaRow: a plain EWMA of per-row latency — the fleet's typical
//     speed.
//   - tailRow: a fast-up / slow-decay envelope — it jumps to any
//     per-row latency above it immediately and decays toward the EWMA
//     otherwise. Sizing divides TargetLease by the tail, so one
//     straggler shrinks subsequent leases at once (bounding how much
//     work the next slow lease can strand), while recovery is gradual.
//
// Everything here mutates only scheduling state under the coordinator
// lock and reads time exclusively through Config.Clock, so the sizing
// sequence is a deterministic function of the lease completion order —
// and since splits keep ranges disjoint, sorted and plan-covering,
// Result()'s in-order merge (and therefore the report bytes) is
// provably unaffected. The neutrality matrix pins this.

const (
	// adaptiveAlpha is the EWMA weight of the newest observation.
	adaptiveAlpha = 0.25
	// adaptiveTailDecay pulls the tail envelope toward the EWMA when a
	// lease comes in under it (slow recovery vs instant growth).
	adaptiveTailDecay = 0.125
)

// observeLeaseLocked folds one live-lease completion (rows rows in d)
// into the latency estimators and the telemetry histograms. Called for
// worker and local leases alike, whether or not Adaptive is on — the
// histograms back /metrics and cmd/tracer's straggler report even when
// sizing is fixed.
func (c *Coordinator) observeLeaseLocked(rows int, d time.Duration) {
	c.cfg.Telemetry.RangeDone(rows, d)
	if rows <= 0 || d < 0 {
		return
	}
	perRow := float64(d) / float64(rows)
	if c.nObs == 0 {
		c.ewmaRow = perRow
		c.tailRow = perRow
	} else {
		c.ewmaRow += adaptiveAlpha * (perRow - c.ewmaRow)
		if perRow > c.tailRow {
			c.tailRow = perRow
		} else {
			c.tailRow += adaptiveTailDecay * (c.ewmaRow - c.tailRow)
		}
	}
	c.nObs++
}

// desiredRowsLocked returns the row count adaptive sizing wants for
// the next lease: TargetLease divided by the tail per-row latency,
// clamped to [MinRange, RangeSize]. Before any observation (or with
// Adaptive off) it returns RangeSize — the fixed pre-split size.
func (c *Coordinator) desiredRowsLocked() int {
	if !c.cfg.Adaptive || c.nObs == 0 || c.tailRow <= 0 {
		return c.cfg.RangeSize
	}
	rows := int(float64(c.cfg.TargetLease) / c.tailRow)
	if rows < c.cfg.MinRange {
		rows = c.cfg.MinRange
	}
	if rows > c.cfg.RangeSize {
		rows = c.cfg.RangeSize
	}
	return rows
}

// splitForIssueLocked prepares ranges[ri] for issue: when adaptive
// sizing wants fewer rows than the range holds, the range is split in
// place — ranges[ri] keeps [lo, lo+rows) and a new pending range
// [lo+rows, hi) is inserted right after it, inheriting the attempt
// count, backoff stamp and last error (the remainder rode along on
// every failed attempt, so it does not get a fresh budget). The slice
// stays sorted by lo with disjoint ranges covering the plan, which is
// the invariant Result()'s in-order merge rests on. Returns the range
// to lease.
func (c *Coordinator) splitForIssueLocked(ri int) *planRange {
	r := c.ranges[ri]
	rows := c.desiredRowsLocked()
	if r.hi-r.lo <= rows {
		return r
	}
	rest := &planRange{
		lo:        r.lo + rows,
		hi:        r.hi,
		attempts:  r.attempts,
		notBefore: r.notBefore,
		lastErr:   r.lastErr,
	}
	r.hi = rest.lo
	c.ranges = append(c.ranges, nil)
	copy(c.ranges[ri+2:], c.ranges[ri+1:])
	c.ranges[ri+1] = rest
	c.remaining++
	c.logf("adaptive: split range at %d: [%d,%d) + [%d,%d) (tail %.3gms/row)",
		rest.lo, r.lo, r.hi, rest.lo, rest.hi, c.tailRow/1e6)
	return r
}
