// Package dist implements distributed injection campaigns: a
// coordinator that leases disjoint plan-index ranges to worker
// processes, and a worker loop that runs the supervised campaign
// engine (inject.RunRange) over each leased range and streams the
// completed partial state back as CRC-checked checkpoint records.
//
// The transport is a line-delimited JSON protocol over any
// io.ReadWriteCloser — a TCP connection for remote workers, a
// stdin/stdout pipe pair for subprocess workers. Robustness is the
// point of the layer: leases carry TTLs refreshed by heartbeats, dead
// or wedged workers are detected and their leases revoked and
// re-issued with capped exponential backoff, execution is
// at-least-once (duplicate range results are verified byte-identical,
// never double-counted), ranges that keep killing workers are
// quarantined with conservative λDU accounting, and the coordinator
// degrades gracefully down to local-only execution when every worker
// vanishes. The determinism contract survives all of it: the merged
// report is byte-identical to a single-process serial run at any
// cluster size, any kill point and any lease schedule, because the
// interchange format is the canonical checkpoint encoding and the
// final merge is the same in-order merge the in-process runner uses.
//
// The package never samples the wall clock: every timestamp flows
// through an injected clock (it is part of the lintdeterminism linted
// set), so lease scheduling is testable with a fake clock and the
// merge path is a pure function of the collected records.
package dist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"

	"encoding/json"
)

// ProtocolVersion is the wire protocol version. A hello with a
// different version is rejected before any lease is issued.
const ProtocolVersion = 1

// maxLineBytes caps one protocol line. Result messages carry a
// base64-encoded checkpoint for one leased range (~100 bytes per plan
// row), so even pathological ranges stay far below this; anything
// larger is a corrupt or hostile peer.
const maxLineBytes = 64 << 20

// Message kinds.
const (
	// MsgHello is the worker's opening message: protocol version,
	// worker name and the (plan hash, plan length) fingerprint the
	// coordinator validates before leasing — a worker built from a
	// different design, seed or plan shape is turned away up front.
	MsgHello = "hello"
	// MsgLease grants one plan-index range [Lo, Hi) to a worker, with
	// the TTL its heartbeats must keep refreshed.
	MsgLease = "lease"
	// MsgHeartbeat keeps a lease alive while its range is running.
	MsgHeartbeat = "heartbeat"
	// MsgResult returns one completed range as canonical checkpoint
	// bytes (EncodeCheckpoint over the range's records).
	MsgResult = "result"
	// MsgFail reports that the worker could not complete its lease.
	MsgFail = "fail"
	// MsgFin tells a worker the campaign is complete; the worker exits
	// cleanly.
	MsgFin = "fin"
	// MsgError is a terminal coordinator-side rejection (bad hello,
	// campaign failure); the worker exits with an error.
	MsgError = "error"
)

// Msg is one protocol message; T selects the kind and the other
// fields are kind-specific (see the Msg* constants).
type Msg struct {
	T string `json:"t"`

	// Hello fields.
	V        int    `json:"v,omitempty"`
	Worker   string `json:"worker,omitempty"`
	PlanHash string `json:"plan_hash,omitempty"`
	PlanLen  int    `json:"plan_len,omitempty"`

	// Lease routing: the lease id (issued by the coordinator, echoed
	// by heartbeat/result/fail) and the range bounds.
	Lease int64 `json:"lease,omitempty"`
	Lo    int   `json:"lo,omitempty"`
	Hi    int   `json:"hi,omitempty"`
	TTLMs int64 `json:"ttl_ms,omitempty"`

	// Trace context on a lease (optional; additive in protocol v1 —
	// untraced peers ignore unknown JSON fields): the campaign trace id
	// in hex and the coordinator's lease span id. A traced worker
	// adopts the trace and parents its lease span under Span, so the
	// per-process span journals merge into one fleet-wide trace.
	Trace string `json:"trace,omitempty"`
	Span  uint64 `json:"span,omitempty"`

	// Result payload: canonical checkpoint bytes (JSON base64).
	Ckpt []byte `json:"ckpt,omitempty"`

	// Error text for fail/error.
	Err string `json:"err,omitempty"`
}

// Conn frames Msgs as JSON lines over a stream. Writes are serialized
// (the worker's heartbeater and result sender share one connection);
// reads are single-consumer.
type Conn struct {
	rw io.ReadWriteCloser
	sc *bufio.Scanner

	wmu sync.Mutex
	w   *bufio.Writer
}

// NewConn wraps a byte stream in the line-JSON framing.
func NewConn(rw io.ReadWriteCloser) *Conn {
	sc := bufio.NewScanner(rw)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	return &Conn{rw: rw, sc: sc, w: bufio.NewWriter(rw)}
}

// Read returns the next message, or an error on EOF, framing overflow
// or malformed JSON.
func (c *Conn) Read() (*Msg, error) {
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, fmt.Errorf("dist: read: %w", err)
		}
		return nil, io.EOF
	}
	var m Msg
	if err := json.Unmarshal(c.sc.Bytes(), &m); err != nil {
		return nil, fmt.Errorf("dist: bad message: %w", err)
	}
	if m.T == "" {
		return nil, errors.New("dist: bad message: missing kind")
	}
	return &m, nil
}

// Write sends one message as a JSON line and flushes it.
func (c *Conn) Write(m *Msg) error {
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: encode: %w", err)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.w.Write(b); err != nil {
		return fmt.Errorf("dist: write: %w", err)
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("dist: write: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("dist: write: %w", err)
	}
	return nil
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.rw.Close() }
