package dist

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/inject"
	"repro/internal/telemetry"
)

// ErrKilled is returned by RunWorker when the OnLease hook aborts the
// worker mid-campaign — the in-process stand-in for kill -9 in crash
// tests. The connection is dropped without a goodbye, exactly like a
// killed process.
var ErrKilled = errors.New("dist: worker killed by test hook")

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// Name identifies the worker in coordinator logs.
	Name string
	// Target/Golden/Plan are the worker's locally-built campaign; the
	// plan fingerprint is validated against the coordinator's at hello.
	Target *inject.Target
	Golden *inject.Golden
	Plan   []inject.Injection
	// Workers is the goroutine shard count inside one leased range
	// (<= 0: 1).
	Workers int
	// Heartbeat is the keep-alive cadence while a lease runs
	// (<= 0: 2s). Must be well under the coordinator's lease TTL.
	Heartbeat time.Duration
	// OnLease, when set, is consulted before running each granted
	// lease (count is 1-based across the worker's lifetime); returning
	// false kills the worker abruptly. Test hook only.
	OnLease func(count, lo, hi int) bool
	// Telemetry is the worker's hub (nil = off). With a Tracer
	// attached, each lease runs under a worker-lease span parented —
	// via the trace context on the lease message — under the
	// coordinator's lease span, and the range's experiment spans nest
	// under it, merging the fleet's journals into one trace.
	Telemetry *telemetry.Campaign
	// Logf receives scheduling events (nil = silent). Out-of-band.
	Logf func(format string, args ...any)
}

// RunWorker speaks the worker side of the protocol over rw: hello,
// then lease → run → result until the coordinator says fin. Each lease
// runs through the full supervised engine (inject.RunRange), so
// watchdogs, retries, per-experiment quarantine, lanes and collapse
// all apply within the range; a heartbeat goroutine keeps the lease
// alive for as long as the range takes. Returns nil on a clean fin.
func RunWorker(rw io.ReadWriteCloser, cfg WorkerConfig) error {
	conn := NewConn(rw)
	defer conn.Close()
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 2 * time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	err := conn.Write(&Msg{
		T:        MsgHello,
		V:        ProtocolVersion,
		Worker:   cfg.Name,
		PlanHash: fmt.Sprintf("%016x", inject.PlanHash(cfg.Plan)),
		PlanLen:  len(cfg.Plan),
	})
	if err != nil {
		return fmt.Errorf("dist: worker: hello: %w", err)
	}

	leases := 0
	for {
		m, err := conn.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return errors.New("dist: worker: coordinator closed connection")
			}
			return err
		}
		switch m.T {
		case MsgLease:
			leases++
			if cfg.OnLease != nil && !cfg.OnLease(leases, m.Lo, m.Hi) {
				return ErrKilled
			}
			logf("lease %d: running range [%d,%d)", m.Lease, m.Lo, m.Hi)
			// Open the worker-lease span under the coordinator's lease
			// span (rparent over the wire) and make it the ambient
			// trace root so the range's experiment spans nest inside.
			tel := cfg.Telemetry
			lease, lo, hi := m.Lease, m.Lo, m.Hi
			lsp := tel.StartRemoteSpan("worker-lease", m.Trace, m.Span, func(e *telemetry.Enc) {
				e.Int("lease", lease)
				e.Int("lo", int64(lo))
				e.Int("hi", int64(hi))
			})
			prevRoot := tel.TraceRoot()
			tel.SetTraceRoot(lsp)
			stop := startHeartbeats(conn, m.Lease, cfg.Heartbeat)
			ck, runErr := cfg.Target.RunRange(cfg.Golden, cfg.Plan, cfg.Workers, m.Lo, m.Hi)
			stop()
			tel.SetTraceRoot(prevRoot)
			if runErr != nil {
				lsp.EndOutcome("failed")
				logf("lease %d: range [%d,%d) failed: %v", m.Lease, m.Lo, m.Hi, runErr)
				if werr := conn.Write(&Msg{T: MsgFail, Lease: m.Lease, Err: runErr.Error()}); werr != nil {
					return werr
				}
				continue
			}
			lsp.EndOutcome("done")
			logf("lease %d: range [%d,%d) complete", m.Lease, m.Lo, m.Hi)
			werr := conn.Write(&Msg{
				T:     MsgResult,
				Lease: m.Lease,
				Ckpt:  inject.EncodeCheckpoint(ck, cfg.Plan),
			})
			if werr != nil {
				return werr
			}
		case MsgFin:
			logf("campaign complete after %d lease(s)", leases)
			return nil
		case MsgError:
			return fmt.Errorf("dist: worker: coordinator error: %s", m.Err)
		default:
			// Unknown kinds are ignored for forward compatibility.
		}
	}
}

// startHeartbeats keeps one lease alive until the returned stop
// function is called. Write errors end the heartbeater quietly — the
// main loop will surface the broken connection.
func startHeartbeats(conn *Conn, lease int64, every time.Duration) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if conn.Write(&Msg{T: MsgHeartbeat, Lease: lease}) != nil {
					return
				}
			case <-stop:
				return
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}
