package dist

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/inject"
	"repro/internal/telemetry"
)

// Config parameterizes a Coordinator. Plan and Clock are required;
// everything else has a usable default.
type Config struct {
	// Plan is the full campaign plan. Workers must present the same
	// (PlanHash, len) fingerprint or they are rejected at hello.
	Plan []inject.Injection
	// RangeSize is the number of plan rows per lease (<= 0: 32).
	RangeSize int
	// LeaseTTL is how long a lease survives without a heartbeat
	// (<= 0: 15s).
	LeaseTTL time.Duration
	// MaxAttempts caps lease attempts per range before the range is
	// quarantined (<= 0: 5).
	MaxAttempts int
	// BackoffBase/BackoffCap shape the re-issue delay after a failed
	// attempt: base << (attempt-1), capped (<= 0: 250ms / 10s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Clock supplies every timestamp the coordinator uses. Required:
	// the package never samples the wall clock itself, so lease
	// scheduling is fully testable with a fake clock.
	Clock func() time.Time
	// Adaptive enables latency-driven lease sizing (off by default):
	// the coordinator tracks an EWMA and a fast-up/slow-down tail of
	// per-row lease latency over completed leases and splits oversized
	// pending ranges at issue time so one lease targets ~TargetLease of
	// work. Scheduling only — ranges stay disjoint, plan-ordered and
	// merge-identical, so the report bytes cannot change (asserted by
	// the neutrality matrix).
	Adaptive bool
	// TargetLease is the wall-clock amount of work adaptive sizing aims
	// to put under one lease (<= 0: LeaseTTL/4).
	TargetLease time.Duration
	// MinRange floors adaptive range sizes so pathological tails cannot
	// shatter the plan into single-row leases (<= 0: 4).
	MinRange int
	// Telemetry receives lease/worker counters (nil = off).
	Telemetry *telemetry.Campaign
	// LocalRunner, when set, lets the coordinator execute a range in
	// process — the graceful-degradation path used by Tick whenever a
	// range is runnable and no live worker exists to lease it to. It
	// must return the range's completed partial state (inject.RunRange
	// in cmd/campaignd; any deterministic stand-in under test).
	LocalRunner func(lo, hi int) (*inject.Checkpoint, error)
	// Logf receives human-readable scheduling events (nil = silent).
	// Out-of-band: report bytes never depend on it.
	Logf func(format string, args ...any)
}

type rangeStatus int

const (
	rangePending rangeStatus = iota
	rangeLeased
	rangeDone
	rangeQuarantined
)

// planRange is the coordinator's bookkeeping for one disjoint plan
// slice [lo, hi).
type planRange struct {
	lo, hi    int
	status    rangeStatus
	attempts  int       // lease attempts consumed (failed or expired)
	notBefore time.Time // earliest re-issue time (backoff)
	lastErr   string
	lease     int64     // active lease id while leased
	worker    int64     // worker holding the lease (0 = local runner)
	deadline  time.Time // lease expiry, refreshed by heartbeats
	result    []byte    // canonical checkpoint bytes once done

	issuedAt time.Time      // when the live lease was granted
	span     telemetry.Span // the live lease's span (cleared on end)
}

// leaseRef records which range a lease was issued on and the bounds it
// covered at issue time. Live leases always match their range's current
// bounds (only pending ranges are ever split); a mismatch therefore
// identifies a message from a revoked lease whose range has since been
// narrowed.
type leaseRef struct {
	r      *planRange
	lo, hi int
}

// workerConn is one connected worker. Messages to it go through a
// buffered outbox drained by a writer goroutine, so the coordinator
// never blocks on a slow peer while holding its lock.
type workerConn struct {
	id   int64
	name string
	conn *Conn
	out  chan *Msg
	gone bool
}

// Coordinator owns the lease table for one distributed campaign. Use
// New, feed it connections via Serve (one goroutine per connection),
// drive time via Tick, wait on Done, collect with Result.
type Coordinator struct {
	cfg      Config
	planHash string

	mu     sync.Mutex
	ranges []*planRange
	// leaseRange maps every lease ever issued to its range, including
	// revoked ones — a late result from a revoked lease must still
	// resolve so it can be byte-verified against the winning attempt
	// instead of silently dropped. It holds the *planRange itself, not
	// an index: adaptive splitting inserts ranges mid-slice, so indices
	// are not stable across a lease's lifetime. Each entry also
	// snapshots the bounds the lease was issued over: a revoked lease's
	// range can be adaptively split (narrowed) before its late result
	// arrives, and a checkpoint covering the original wider bounds must
	// not be byte-compared against a result for the narrower ones.
	leaseRange map[int64]leaseRef
	workers    []*workerConn
	nextWorker int64
	nextLease  int64
	remaining  int // ranges not yet done/quarantined
	failed     error
	finished   bool
	localBusy  bool

	// Adaptive lease sizing state (see adaptive.go): per-row latency
	// EWMA, the fast-up/slow-decay tail estimate, and the number of
	// live-lease completions observed. Pure functions of the lease
	// completion order, so a fake clock makes sizing fully
	// deterministic.
	ewmaRow float64
	tailRow float64
	nObs    int

	done chan struct{}
}

// New builds a coordinator over cfg.Plan. The campaign is complete
// when every range is done or quarantined; an empty plan completes
// immediately.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Clock == nil {
		return nil, errors.New("dist: Config.Clock is required")
	}
	if cfg.RangeSize <= 0 {
		cfg.RangeSize = 32
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 250 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 10 * time.Second
	}
	if cfg.TargetLease <= 0 {
		cfg.TargetLease = cfg.LeaseTTL / 4
	}
	if cfg.MinRange <= 0 {
		cfg.MinRange = 4
	}
	if cfg.MinRange > cfg.RangeSize {
		cfg.MinRange = cfg.RangeSize
	}
	c := &Coordinator{
		cfg:        cfg,
		planHash:   fmt.Sprintf("%016x", inject.PlanHash(cfg.Plan)),
		leaseRange: map[int64]leaseRef{},
		done:       make(chan struct{}),
	}
	for lo := 0; lo < len(cfg.Plan); lo += cfg.RangeSize {
		hi := lo + cfg.RangeSize
		if hi > len(cfg.Plan) {
			hi = len(cfg.Plan)
		}
		c.ranges = append(c.ranges, &planRange{lo: lo, hi: hi})
	}
	c.remaining = len(c.ranges)
	if c.remaining == 0 {
		c.finished = true
		close(c.done)
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Done is closed when every range is done or quarantined, or the
// campaign failed terminally.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Err returns the terminal campaign error, if any.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// Serve runs the protocol for one worker connection until it
// disconnects or the campaign ends. Call it in its own goroutine per
// accepted connection; it closes rw before returning.
func (c *Coordinator) Serve(rw io.ReadWriteCloser) error {
	conn := NewConn(rw)
	defer conn.Close()

	hello, err := conn.Read()
	if err != nil {
		return fmt.Errorf("dist: coordinator: hello: %w", err)
	}
	if hello.T != MsgHello {
		conn.Write(&Msg{T: MsgError, Err: "expected hello"})
		return errors.New("dist: coordinator: peer did not hello")
	}
	if hello.V != ProtocolVersion {
		conn.Write(&Msg{T: MsgError, Err: fmt.Sprintf("protocol version %d, want %d", hello.V, ProtocolVersion)})
		return fmt.Errorf("dist: coordinator: worker %q speaks protocol %d", hello.Worker, hello.V)
	}
	if hello.PlanHash != c.planHash || hello.PlanLen != len(c.cfg.Plan) {
		conn.Write(&Msg{T: MsgError, Err: fmt.Sprintf(
			"plan mismatch: worker has %s/%d, coordinator has %s/%d",
			hello.PlanHash, hello.PlanLen, c.planHash, len(c.cfg.Plan))})
		return fmt.Errorf("dist: coordinator: worker %q plan mismatch", hello.Worker)
	}

	w := &workerConn{name: hello.Worker, conn: conn, out: make(chan *Msg, 16)}

	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		conn.Write(&Msg{T: MsgFin})
		return nil
	}
	c.nextWorker++
	w.id = c.nextWorker
	c.workers = append(c.workers, w)
	c.cfg.Telemetry.WorkerJoined()
	c.logf("worker %q joined (#%d)", w.name, w.id)
	c.assignLocked(w, c.cfg.Clock())
	c.mu.Unlock()

	// Writer goroutine: drains the outbox so lease grants never block
	// the coordinator lock on a slow peer.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for m := range w.out {
			if err := conn.Write(m); err != nil {
				return
			}
		}
	}()

	var readErr error
	for {
		m, err := conn.Read()
		if err != nil {
			readErr = err
			break
		}
		switch m.T {
		case MsgHeartbeat:
			c.heartbeat(m.Lease)
		case MsgResult:
			c.result(w, m)
		case MsgFail:
			c.fail(w, m)
		default:
			readErr = fmt.Errorf("dist: coordinator: unexpected %q from worker %q", m.T, w.name)
		}
		if readErr != nil {
			break
		}
	}

	c.disconnect(w)
	close(w.out)
	<-writerDone
	if errors.Is(readErr, io.EOF) {
		return nil
	}
	return readErr
}

// send enqueues m for w; a full outbox marks the worker gone (it has
// stopped draining — the disconnect path will reclaim its lease).
func (c *Coordinator) sendLocked(w *workerConn, m *Msg) {
	if w.gone {
		return
	}
	select {
	case w.out <- m:
	default:
		w.gone = true
	}
}

// assignLocked hands the next runnable range to w, if any. Idle
// workers are retried on every Tick, so "nothing runnable right now"
// (all leased, or all backing off) is not a terminal state.
func (c *Coordinator) assignLocked(w *workerConn, now time.Time) {
	if c.finished || w.gone {
		return
	}
	ri := c.runnableLocked(now)
	if ri < 0 {
		return
	}
	r := c.splitForIssueLocked(ri)
	c.nextLease++
	r.status = rangeLeased
	r.lease = c.nextLease
	r.worker = w.id
	r.deadline = now.Add(c.cfg.LeaseTTL)
	r.issuedAt = now
	c.leaseRange[r.lease] = leaseRef{r: r, lo: r.lo, hi: r.hi}
	c.cfg.Telemetry.LeaseIssued()
	c.startLeaseSpanLocked(r, w.id)
	c.logf("lease %d: range [%d,%d) -> worker %q (attempt %d)", r.lease, r.lo, r.hi, w.name, r.attempts+1)
	m := &Msg{
		T:     MsgLease,
		Lease: r.lease,
		Lo:    r.lo,
		Hi:    r.hi,
		TTLMs: c.cfg.LeaseTTL.Milliseconds(),
		Span:  r.span.ID(),
	}
	m.Trace, _ = c.cfg.Telemetry.TraceContext()
	c.sendLocked(w, m)
}

// startLeaseSpanLocked opens the lease's span (no-op without a
// tracer), recording the lease id, bounds, holder and attempt number.
func (c *Coordinator) startLeaseSpanLocked(r *planRange, worker int64) {
	if _, ok := c.cfg.Telemetry.TraceContext(); !ok {
		return
	}
	lease, lo, hi, attempt := r.lease, r.lo, r.hi, r.attempts+1
	r.span = c.cfg.Telemetry.StartSpanAttrs("lease", func(e *telemetry.Enc) {
		e.Int("lease", lease)
		e.Int("lo", int64(lo))
		e.Int("hi", int64(hi))
		e.Int("worker", worker)
		e.Int("attempt", int64(attempt))
	})
}

// endLeaseSpanLocked closes the range's live lease span exactly once:
// the span is cleared so a later completion of the same range (a
// duplicate, or a revoke racing a result) cannot double-close it.
func (c *Coordinator) endLeaseSpanLocked(r *planRange, outcome string) {
	if r.span.Valid() {
		r.span.EndOutcome(outcome)
		r.span = telemetry.Span{}
	}
}

// runnableLocked returns the lowest-index pending range whose backoff
// has elapsed, or -1.
func (c *Coordinator) runnableLocked(now time.Time) int {
	for i, r := range c.ranges {
		if r.status == rangePending && !now.Before(r.notBefore) {
			return i
		}
	}
	return -1
}

// idleLocked reports whether w holds no lease.
func (c *Coordinator) idleLocked(w *workerConn) bool {
	for _, r := range c.ranges {
		if r.status == rangeLeased && r.worker == w.id {
			return false
		}
	}
	return true
}

func (c *Coordinator) liveWorkersLocked() int {
	n := 0
	for _, w := range c.workers {
		if !w.gone {
			n++
		}
	}
	return n
}

// heartbeat extends the deadline of a still-current lease. Heartbeats
// for revoked or completed leases are stale echoes and ignored.
func (c *Coordinator) heartbeat(lease int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ref, ok := c.leaseRange[lease]
	if !ok {
		return
	}
	if r := ref.r; r.status == rangeLeased && r.lease == lease {
		r.deadline = c.cfg.Clock().Add(c.cfg.LeaseTTL)
	}
}

// result ingests one completed range from a worker: decode, validate
// exact coverage of the leased bounds, then either complete the range
// or — if another attempt already completed it — verify the duplicate
// is byte-identical. A divergent duplicate is a determinism violation
// and fails the whole campaign: silently picking one of two different
// answers would forfeit the bit-identical merge contract.
func (c *Coordinator) result(w *workerConn, m *Msg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ref, ok := c.leaseRange[m.Lease]
	if !ok {
		return // lease id we never issued: bogus peer, drop
	}
	r := ref.r
	if ref.lo != r.lo || ref.hi != r.hi {
		// The lease was issued over bounds an adaptive split has since
		// narrowed, so this is a late echo from a revoked attempt whose
		// checkpoint covers a different row span than any current range
		// — it cannot be byte-verified against the winning attempt, and
		// it is not a determinism violation. Drop it; every row of the
		// old bounds completes under the post-split leases.
		c.logf("stale result for revoked lease %d over pre-split bounds [%d,%d) ignored (range now [%d,%d))",
			m.Lease, ref.lo, ref.hi, r.lo, r.hi)
		c.assignLocked(w, c.cfg.Clock())
		return
	}
	switch r.status {
	case rangeDone:
		// At-least-once execution: a revoked-then-re-issued lease can
		// complete twice. Duplicates must agree byte-for-byte.
		if !bytes.Equal(m.Ckpt, r.result) {
			c.failLocked(fmt.Errorf(
				"dist: determinism violation: range [%d,%d) produced two different results (leases %d and %d)",
				r.lo, r.hi, r.lease, m.Lease))
			return
		}
		c.logf("duplicate result for range [%d,%d) verified identical", r.lo, r.hi)
	case rangeQuarantined:
		// Quarantine is final: once rows were written off as
		// dangerous-undetected, a racing late success may not rewrite
		// the accounting.
		c.logf("late result for quarantined range [%d,%d) ignored", r.lo, r.hi)
	default: // leased (current or superseded lease) or pending after a revoke
		if err := c.validateResultLocked(r, m.Ckpt); err != nil {
			c.logf("worker %q returned bad result for range [%d,%d): %v", w.name, r.lo, r.hi, err)
			if r.status == rangeLeased && r.lease == m.Lease {
				c.cfg.Telemetry.WorkerRetry()
				c.endLeaseSpanLocked(r, "failed")
				c.requeueLocked(r, err.Error())
			}
			c.assignLocked(w, c.cfg.Clock())
			return
		}
		// Latency is only meaningful when the completing lease is the
		// live one — a late result from a revoked lease measures a
		// worker that already blew its TTL, not current fleet speed.
		// Span attribution follows the same split: an open span here
		// belongs to the live lease, and when a revoked lease's late
		// result wins the race, the live worker is still running — its
		// span ends "superseded", not "done".
		if r.status == rangeLeased && r.lease == m.Lease {
			c.observeLeaseLocked(r.hi-r.lo, c.cfg.Clock().Sub(r.issuedAt))
			c.endLeaseSpanLocked(r, "done")
		} else {
			c.endLeaseSpanLocked(r, "superseded")
		}
		r.status = rangeDone
		r.result = m.Ckpt
		r.lastErr = ""
		c.remaining--
		c.logf("range [%d,%d) done (%d remaining)", r.lo, r.hi, c.remaining)
	}
	if c.remaining == 0 {
		c.finishLocked()
		return
	}
	c.assignLocked(w, c.cfg.Clock())
}

// validateResultLocked checks that ckpt decodes against the plan and
// covers exactly [r.lo, r.hi): every plan index present once, none
// outside the bounds. DecodeCheckpoint already enforces CRCs, plan
// identity, ordering and uniqueness.
func (c *Coordinator) validateResultLocked(r *planRange, ckpt []byte) error {
	ck, err := inject.DecodeCheckpoint(ckpt, c.cfg.Plan)
	if err != nil {
		return err
	}
	covered := 0
	for _, res := range ck.Results {
		if res.PlanIndex < r.lo || res.PlanIndex >= r.hi {
			return fmt.Errorf("dist: result index %d outside leased range [%d,%d)", res.PlanIndex, r.lo, r.hi)
		}
		covered++
	}
	for _, q := range ck.Quarantined {
		if q.PlanIndex < r.lo || q.PlanIndex >= r.hi {
			return fmt.Errorf("dist: quarantine index %d outside leased range [%d,%d)", q.PlanIndex, r.lo, r.hi)
		}
		covered++
	}
	if covered != r.hi-r.lo {
		return fmt.Errorf("dist: result covers %d of %d rows in range [%d,%d)", covered, r.hi-r.lo, r.lo, r.hi)
	}
	return nil
}

// fail ingests a worker's explicit failure report for its lease.
func (c *Coordinator) fail(w *workerConn, m *Msg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ref, ok := c.leaseRange[m.Lease]
	if !ok {
		return
	}
	r := ref.r
	if r.status != rangeLeased || r.lease != m.Lease {
		return // stale failure report for a lease already revoked
	}
	c.logf("worker %q failed lease %d on range [%d,%d): %s", w.name, m.Lease, r.lo, r.hi, m.Err)
	c.cfg.Telemetry.WorkerRetry()
	c.endLeaseSpanLocked(r, "failed")
	c.requeueLocked(r, m.Err)
	c.assignLocked(w, c.cfg.Clock())
}

// disconnect reclaims whatever w was holding. Losing a worker is the
// same event as a failed lease: attempt consumed, backoff, re-issue.
func (c *Coordinator) disconnect(w *workerConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.id == 0 {
		return
	}
	for i, ww := range c.workers {
		if ww.id == w.id {
			c.workers = append(c.workers[:i], c.workers[i+1:]...)
			break
		}
	}
	c.cfg.Telemetry.WorkerLeft()
	c.logf("worker %q left", w.name)
	for _, r := range c.ranges {
		if r.status == rangeLeased && r.worker == w.id {
			c.cfg.Telemetry.WorkerRetry()
			c.endLeaseSpanLocked(r, "failed")
			c.requeueLocked(r, "worker disconnected")
		}
	}
	c.reassignIdleLocked(c.cfg.Clock())
}

// requeueLocked returns range ri to the pending queue after a failed
// attempt, applying capped exponential backoff — or quarantines it
// once the attempt budget is spent. Quarantine is conservative λDU
// accounting, not data loss: Result synthesizes a dangerous-undetected
// quarantine record for every row of the range, mirroring the per-
// experiment semantics of the supervised runner.
func (c *Coordinator) requeueLocked(r *planRange, errText string) {
	c.endLeaseSpanLocked(r, "failed") // no-op when the caller already closed it
	r.attempts++
	r.lastErr = errText
	r.lease = 0
	r.worker = 0
	if r.attempts >= c.cfg.MaxAttempts {
		r.status = rangeQuarantined
		c.remaining--
		c.cfg.Telemetry.RangeQuarantined()
		c.logf("range [%d,%d) quarantined after %d attempts: %s", r.lo, r.hi, r.attempts, errText)
		if c.remaining == 0 {
			c.finishLocked()
		}
		return
	}
	r.status = rangePending
	backoff := c.cfg.BackoffBase << (r.attempts - 1)
	if backoff > c.cfg.BackoffCap || backoff <= 0 {
		backoff = c.cfg.BackoffCap
	}
	r.notBefore = c.cfg.Clock().Add(backoff)
}

// reassignIdleLocked offers runnable ranges to every idle worker.
func (c *Coordinator) reassignIdleLocked(now time.Time) {
	for _, w := range c.workers {
		if !w.gone && c.idleLocked(w) {
			c.assignLocked(w, now)
		}
	}
}

// Tick advances lease bookkeeping: expire TTL-lapsed leases, re-offer
// runnable ranges to idle workers, and — when no live worker exists —
// run runnable ranges locally through cfg.LocalRunner (graceful
// degradation down to coordinator-only execution). Call it
// periodically; the cadence bounds dead-worker detection latency.
func (c *Coordinator) Tick() {
	now := c.cfg.Clock()

	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		return
	}
	for _, r := range c.ranges {
		if r.status == rangeLeased && r.worker != 0 && now.After(r.deadline) {
			c.cfg.Telemetry.LeaseExpired()
			c.cfg.Telemetry.WorkerRetry()
			c.logf("lease %d on range [%d,%d) expired (worker #%d silent past TTL)", r.lease, r.lo, r.hi, r.worker)
			c.endLeaseSpanLocked(r, "expired")
			c.requeueLocked(r, "lease expired: no heartbeat within TTL")
		}
	}
	if !c.finished {
		c.reassignIdleLocked(now)
	}
	c.mu.Unlock()

	c.runLocal()
}

// runLocal executes runnable ranges in process while no live worker
// can take them. The range runs outside the coordinator lock; its
// completion flows through the same validation and duplicate checks
// as a worker result.
func (c *Coordinator) runLocal() {
	if c.cfg.LocalRunner == nil {
		return
	}
	for {
		now := c.cfg.Clock()
		c.mu.Lock()
		if c.finished || c.localBusy || c.liveWorkersLocked() > 0 {
			c.mu.Unlock()
			return
		}
		ri := c.runnableLocked(now)
		if ri < 0 {
			c.mu.Unlock()
			return
		}
		// Hold the range by pointer across the unlock: adaptive splits
		// can insert ranges mid-slice while the local runner is out, so
		// slice indices are not stable (the pointer is).
		r := c.splitForIssueLocked(ri)
		c.nextLease++
		lease := c.nextLease
		r.status = rangeLeased
		r.lease = lease
		r.worker = 0 // local leases have no TTL: the runner is us
		r.issuedAt = now
		c.leaseRange[lease] = leaseRef{r: r, lo: r.lo, hi: r.hi}
		c.localBusy = true
		lo, hi := r.lo, r.hi
		c.cfg.Telemetry.LeaseIssued()
		c.startLeaseSpanLocked(r, 0)
		c.logf("lease %d: range [%d,%d) -> local runner (no live workers)", lease, lo, hi)
		c.mu.Unlock()

		ck, err := c.cfg.LocalRunner(lo, hi)

		c.mu.Lock()
		c.localBusy = false
		if c.finished {
			c.mu.Unlock()
			return
		}
		switch {
		case err != nil:
			if r.status == rangeLeased && r.lease == lease {
				c.cfg.Telemetry.WorkerRetry()
				c.endLeaseSpanLocked(r, "failed")
				c.requeueLocked(r, "local: "+err.Error())
			}
		case r.status == rangeDone:
			// A late worker result completed the range while we ran it
			// locally: verify ours is byte-identical, as for any
			// duplicate.
			if !bytes.Equal(inject.EncodeCheckpoint(ck, c.cfg.Plan), r.result) {
				c.failLocked(fmt.Errorf(
					"dist: determinism violation: range [%d,%d) produced two different results (local lease %d)",
					lo, hi, lease))
			}
		case r.status == rangeQuarantined:
			// Quarantine is final; see result().
		default:
			enc := inject.EncodeCheckpoint(ck, c.cfg.Plan)
			if verr := c.validateResultLocked(r, enc); verr != nil {
				c.cfg.Telemetry.WorkerRetry()
				c.endLeaseSpanLocked(r, "failed")
				c.requeueLocked(r, "local: "+verr.Error())
			} else {
				if r.status == rangeLeased && r.lease == lease {
					c.observeLeaseLocked(hi-lo, c.cfg.Clock().Sub(r.issuedAt))
					c.endLeaseSpanLocked(r, "done")
				} else {
					c.endLeaseSpanLocked(r, "superseded")
				}
				r.status = rangeDone
				r.result = enc
				r.lastErr = ""
				c.remaining--
				c.logf("range [%d,%d) done locally (%d remaining)", lo, hi, c.remaining)
				if c.remaining == 0 {
					c.finishLocked()
				}
			}
		}
		c.mu.Unlock()
	}
}

// finishLocked completes the campaign: tell every worker to exit
// cleanly and release Done waiters.
func (c *Coordinator) finishLocked() {
	if c.finished {
		return
	}
	c.finished = true
	for _, w := range c.workers {
		c.sendLocked(w, &Msg{T: MsgFin})
	}
	close(c.done)
}

// failLocked ends the campaign with a terminal error.
func (c *Coordinator) failLocked(err error) {
	if c.finished {
		return
	}
	c.failed = err
	c.finished = true
	c.logf("campaign failed: %v", err)
	for _, w := range c.workers {
		c.sendLocked(w, &Msg{T: MsgError, Err: err.Error()})
	}
	close(c.done)
}

// Fail ends the campaign with a terminal error (e.g. the process is
// shutting down).
func (c *Coordinator) Fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failLocked(err)
}

// Result assembles the merged campaign state after Done. Ranges are
// concatenated in plan order — each range's records are already
// index-sorted (the canonical checkpoint encoding guarantees it), so
// the merged checkpoint is exactly what a single-process run would
// have snapshotted. Quarantined ranges contribute one conservative
// dangerous-undetected quarantine record per plan row.
func (c *Coordinator) Result() (*inject.Checkpoint, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.finished {
		return nil, errors.New("dist: campaign still running")
	}
	if c.failed != nil {
		return nil, c.failed
	}
	merged := &inject.Checkpoint{}
	for _, r := range c.ranges {
		switch r.status {
		case rangeDone:
			ck, err := inject.DecodeCheckpoint(r.result, c.cfg.Plan)
			if err != nil {
				return nil, fmt.Errorf("dist: stored result for range [%d,%d) corrupt: %w", r.lo, r.hi, err)
			}
			merged.Results = append(merged.Results, ck.Results...)
			merged.Quarantined = append(merged.Quarantined, ck.Quarantined...)
		case rangeQuarantined:
			for i := r.lo; i < r.hi; i++ {
				merged.Quarantined = append(merged.Quarantined, inject.Quarantined{
					PlanIndex: i,
					Injection: c.cfg.Plan[i],
					Attempts:  r.attempts,
					Err:       "range quarantined: " + r.lastErr,
				})
			}
		default:
			return nil, fmt.Errorf("dist: range [%d,%d) neither done nor quarantined", r.lo, r.hi)
		}
	}
	return merged, nil
}

// Quarantined reports how many ranges ended quarantined.
func (c *Coordinator) Quarantined() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.ranges {
		if r.status == rangeQuarantined {
			n++
		}
	}
	return n
}
