package dist

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/inject"
	"repro/internal/telemetry"
)

// Config parameterizes a Coordinator. Plan and Clock are required;
// everything else has a usable default.
type Config struct {
	// Plan is the full campaign plan. Workers must present the same
	// (PlanHash, len) fingerprint or they are rejected at hello.
	Plan []inject.Injection
	// RangeSize is the number of plan rows per lease (<= 0: 32).
	RangeSize int
	// LeaseTTL is how long a lease survives without a heartbeat
	// (<= 0: 15s).
	LeaseTTL time.Duration
	// MaxAttempts caps lease attempts per range before the range is
	// quarantined (<= 0: 5).
	MaxAttempts int
	// BackoffBase/BackoffCap shape the re-issue delay after a failed
	// attempt: base << (attempt-1), capped (<= 0: 250ms / 10s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Clock supplies every timestamp the coordinator uses. Required:
	// the package never samples the wall clock itself, so lease
	// scheduling is fully testable with a fake clock.
	Clock func() time.Time
	// Telemetry receives lease/worker counters (nil = off).
	Telemetry *telemetry.Campaign
	// LocalRunner, when set, lets the coordinator execute a range in
	// process — the graceful-degradation path used by Tick whenever a
	// range is runnable and no live worker exists to lease it to. It
	// must return the range's completed partial state (inject.RunRange
	// in cmd/campaignd; any deterministic stand-in under test).
	LocalRunner func(lo, hi int) (*inject.Checkpoint, error)
	// Logf receives human-readable scheduling events (nil = silent).
	// Out-of-band: report bytes never depend on it.
	Logf func(format string, args ...any)
}

type rangeStatus int

const (
	rangePending rangeStatus = iota
	rangeLeased
	rangeDone
	rangeQuarantined
)

// planRange is the coordinator's bookkeeping for one disjoint plan
// slice [lo, hi).
type planRange struct {
	lo, hi    int
	status    rangeStatus
	attempts  int       // lease attempts consumed (failed or expired)
	notBefore time.Time // earliest re-issue time (backoff)
	lastErr   string
	lease     int64     // active lease id while leased
	worker    int64     // worker holding the lease (0 = local runner)
	deadline  time.Time // lease expiry, refreshed by heartbeats
	result    []byte    // canonical checkpoint bytes once done
}

// workerConn is one connected worker. Messages to it go through a
// buffered outbox drained by a writer goroutine, so the coordinator
// never blocks on a slow peer while holding its lock.
type workerConn struct {
	id   int64
	name string
	conn *Conn
	out  chan *Msg
	gone bool
}

// Coordinator owns the lease table for one distributed campaign. Use
// New, feed it connections via Serve (one goroutine per connection),
// drive time via Tick, wait on Done, collect with Result.
type Coordinator struct {
	cfg      Config
	planHash string

	mu     sync.Mutex
	ranges []*planRange
	// leaseRange maps every lease ever issued to its range, including
	// revoked ones — a late result from a revoked lease must still
	// resolve so it can be byte-verified against the winning attempt
	// instead of silently dropped.
	leaseRange map[int64]int
	workers    []*workerConn
	nextWorker int64
	nextLease  int64
	remaining  int // ranges not yet done/quarantined
	failed     error
	finished   bool
	localBusy  bool

	done chan struct{}
}

// New builds a coordinator over cfg.Plan. The campaign is complete
// when every range is done or quarantined; an empty plan completes
// immediately.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Clock == nil {
		return nil, errors.New("dist: Config.Clock is required")
	}
	if cfg.RangeSize <= 0 {
		cfg.RangeSize = 32
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 250 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 10 * time.Second
	}
	c := &Coordinator{
		cfg:        cfg,
		planHash:   fmt.Sprintf("%016x", inject.PlanHash(cfg.Plan)),
		leaseRange: map[int64]int{},
		done:       make(chan struct{}),
	}
	for lo := 0; lo < len(cfg.Plan); lo += cfg.RangeSize {
		hi := lo + cfg.RangeSize
		if hi > len(cfg.Plan) {
			hi = len(cfg.Plan)
		}
		c.ranges = append(c.ranges, &planRange{lo: lo, hi: hi})
	}
	c.remaining = len(c.ranges)
	if c.remaining == 0 {
		c.finished = true
		close(c.done)
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Done is closed when every range is done or quarantined, or the
// campaign failed terminally.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Err returns the terminal campaign error, if any.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// Serve runs the protocol for one worker connection until it
// disconnects or the campaign ends. Call it in its own goroutine per
// accepted connection; it closes rw before returning.
func (c *Coordinator) Serve(rw io.ReadWriteCloser) error {
	conn := NewConn(rw)
	defer conn.Close()

	hello, err := conn.Read()
	if err != nil {
		return fmt.Errorf("dist: coordinator: hello: %w", err)
	}
	if hello.T != MsgHello {
		conn.Write(&Msg{T: MsgError, Err: "expected hello"})
		return errors.New("dist: coordinator: peer did not hello")
	}
	if hello.V != ProtocolVersion {
		conn.Write(&Msg{T: MsgError, Err: fmt.Sprintf("protocol version %d, want %d", hello.V, ProtocolVersion)})
		return fmt.Errorf("dist: coordinator: worker %q speaks protocol %d", hello.Worker, hello.V)
	}
	if hello.PlanHash != c.planHash || hello.PlanLen != len(c.cfg.Plan) {
		conn.Write(&Msg{T: MsgError, Err: fmt.Sprintf(
			"plan mismatch: worker has %s/%d, coordinator has %s/%d",
			hello.PlanHash, hello.PlanLen, c.planHash, len(c.cfg.Plan))})
		return fmt.Errorf("dist: coordinator: worker %q plan mismatch", hello.Worker)
	}

	w := &workerConn{name: hello.Worker, conn: conn, out: make(chan *Msg, 16)}

	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		conn.Write(&Msg{T: MsgFin})
		return nil
	}
	c.nextWorker++
	w.id = c.nextWorker
	c.workers = append(c.workers, w)
	c.cfg.Telemetry.WorkerJoined()
	c.logf("worker %q joined (#%d)", w.name, w.id)
	c.assignLocked(w, c.cfg.Clock())
	c.mu.Unlock()

	// Writer goroutine: drains the outbox so lease grants never block
	// the coordinator lock on a slow peer.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for m := range w.out {
			if err := conn.Write(m); err != nil {
				return
			}
		}
	}()

	var readErr error
	for {
		m, err := conn.Read()
		if err != nil {
			readErr = err
			break
		}
		switch m.T {
		case MsgHeartbeat:
			c.heartbeat(m.Lease)
		case MsgResult:
			c.result(w, m)
		case MsgFail:
			c.fail(w, m)
		default:
			readErr = fmt.Errorf("dist: coordinator: unexpected %q from worker %q", m.T, w.name)
		}
		if readErr != nil {
			break
		}
	}

	c.disconnect(w)
	close(w.out)
	<-writerDone
	if errors.Is(readErr, io.EOF) {
		return nil
	}
	return readErr
}

// send enqueues m for w; a full outbox marks the worker gone (it has
// stopped draining — the disconnect path will reclaim its lease).
func (c *Coordinator) sendLocked(w *workerConn, m *Msg) {
	if w.gone {
		return
	}
	select {
	case w.out <- m:
	default:
		w.gone = true
	}
}

// assignLocked hands the next runnable range to w, if any. Idle
// workers are retried on every Tick, so "nothing runnable right now"
// (all leased, or all backing off) is not a terminal state.
func (c *Coordinator) assignLocked(w *workerConn, now time.Time) {
	if c.finished || w.gone {
		return
	}
	ri := c.runnableLocked(now)
	if ri < 0 {
		return
	}
	r := c.ranges[ri]
	c.nextLease++
	r.status = rangeLeased
	r.lease = c.nextLease
	r.worker = w.id
	r.deadline = now.Add(c.cfg.LeaseTTL)
	c.leaseRange[r.lease] = ri
	c.cfg.Telemetry.LeaseIssued()
	c.logf("lease %d: range [%d,%d) -> worker %q (attempt %d)", r.lease, r.lo, r.hi, w.name, r.attempts+1)
	c.sendLocked(w, &Msg{
		T:     MsgLease,
		Lease: r.lease,
		Lo:    r.lo,
		Hi:    r.hi,
		TTLMs: c.cfg.LeaseTTL.Milliseconds(),
	})
}

// runnableLocked returns the lowest-index pending range whose backoff
// has elapsed, or -1.
func (c *Coordinator) runnableLocked(now time.Time) int {
	for i, r := range c.ranges {
		if r.status == rangePending && !now.Before(r.notBefore) {
			return i
		}
	}
	return -1
}

// idleLocked reports whether w holds no lease.
func (c *Coordinator) idleLocked(w *workerConn) bool {
	for _, r := range c.ranges {
		if r.status == rangeLeased && r.worker == w.id {
			return false
		}
	}
	return true
}

func (c *Coordinator) liveWorkersLocked() int {
	n := 0
	for _, w := range c.workers {
		if !w.gone {
			n++
		}
	}
	return n
}

// heartbeat extends the deadline of a still-current lease. Heartbeats
// for revoked or completed leases are stale echoes and ignored.
func (c *Coordinator) heartbeat(lease int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ri, ok := c.leaseRange[lease]
	if !ok {
		return
	}
	r := c.ranges[ri]
	if r.status == rangeLeased && r.lease == lease {
		r.deadline = c.cfg.Clock().Add(c.cfg.LeaseTTL)
	}
}

// result ingests one completed range from a worker: decode, validate
// exact coverage of the leased bounds, then either complete the range
// or — if another attempt already completed it — verify the duplicate
// is byte-identical. A divergent duplicate is a determinism violation
// and fails the whole campaign: silently picking one of two different
// answers would forfeit the bit-identical merge contract.
func (c *Coordinator) result(w *workerConn, m *Msg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ri, ok := c.leaseRange[m.Lease]
	if !ok {
		return // lease id we never issued: bogus peer, drop
	}
	r := c.ranges[ri]
	switch r.status {
	case rangeDone:
		// At-least-once execution: a revoked-then-re-issued lease can
		// complete twice. Duplicates must agree byte-for-byte.
		if !bytes.Equal(m.Ckpt, r.result) {
			c.failLocked(fmt.Errorf(
				"dist: determinism violation: range [%d,%d) produced two different results (leases %d and %d)",
				r.lo, r.hi, r.lease, m.Lease))
			return
		}
		c.logf("duplicate result for range [%d,%d) verified identical", r.lo, r.hi)
	case rangeQuarantined:
		// Quarantine is final: once rows were written off as
		// dangerous-undetected, a racing late success may not rewrite
		// the accounting.
		c.logf("late result for quarantined range [%d,%d) ignored", r.lo, r.hi)
	default: // leased (current or superseded lease) or pending after a revoke
		if err := c.validateResultLocked(r, m.Ckpt); err != nil {
			c.logf("worker %q returned bad result for range [%d,%d): %v", w.name, r.lo, r.hi, err)
			if r.status == rangeLeased && r.lease == m.Lease {
				c.cfg.Telemetry.WorkerRetry()
				c.requeueLocked(ri, err.Error())
			}
			c.assignLocked(w, c.cfg.Clock())
			return
		}
		r.status = rangeDone
		r.result = m.Ckpt
		r.lastErr = ""
		c.remaining--
		c.logf("range [%d,%d) done (%d remaining)", r.lo, r.hi, c.remaining)
	}
	if c.remaining == 0 {
		c.finishLocked()
		return
	}
	c.assignLocked(w, c.cfg.Clock())
}

// validateResultLocked checks that ckpt decodes against the plan and
// covers exactly [r.lo, r.hi): every plan index present once, none
// outside the bounds. DecodeCheckpoint already enforces CRCs, plan
// identity, ordering and uniqueness.
func (c *Coordinator) validateResultLocked(r *planRange, ckpt []byte) error {
	ck, err := inject.DecodeCheckpoint(ckpt, c.cfg.Plan)
	if err != nil {
		return err
	}
	covered := 0
	for _, res := range ck.Results {
		if res.PlanIndex < r.lo || res.PlanIndex >= r.hi {
			return fmt.Errorf("dist: result index %d outside leased range [%d,%d)", res.PlanIndex, r.lo, r.hi)
		}
		covered++
	}
	for _, q := range ck.Quarantined {
		if q.PlanIndex < r.lo || q.PlanIndex >= r.hi {
			return fmt.Errorf("dist: quarantine index %d outside leased range [%d,%d)", q.PlanIndex, r.lo, r.hi)
		}
		covered++
	}
	if covered != r.hi-r.lo {
		return fmt.Errorf("dist: result covers %d of %d rows in range [%d,%d)", covered, r.hi-r.lo, r.lo, r.hi)
	}
	return nil
}

// fail ingests a worker's explicit failure report for its lease.
func (c *Coordinator) fail(w *workerConn, m *Msg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ri, ok := c.leaseRange[m.Lease]
	if !ok {
		return
	}
	r := c.ranges[ri]
	if r.status != rangeLeased || r.lease != m.Lease {
		return // stale failure report for a lease already revoked
	}
	c.logf("worker %q failed lease %d on range [%d,%d): %s", w.name, m.Lease, r.lo, r.hi, m.Err)
	c.cfg.Telemetry.WorkerRetry()
	c.requeueLocked(ri, m.Err)
	c.assignLocked(w, c.cfg.Clock())
}

// disconnect reclaims whatever w was holding. Losing a worker is the
// same event as a failed lease: attempt consumed, backoff, re-issue.
func (c *Coordinator) disconnect(w *workerConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.id == 0 {
		return
	}
	for i, ww := range c.workers {
		if ww.id == w.id {
			c.workers = append(c.workers[:i], c.workers[i+1:]...)
			break
		}
	}
	c.cfg.Telemetry.WorkerLeft()
	c.logf("worker %q left", w.name)
	for ri, r := range c.ranges {
		if r.status == rangeLeased && r.worker == w.id {
			c.cfg.Telemetry.WorkerRetry()
			c.requeueLocked(ri, "worker disconnected")
		}
	}
	c.reassignIdleLocked(c.cfg.Clock())
}

// requeueLocked returns range ri to the pending queue after a failed
// attempt, applying capped exponential backoff — or quarantines it
// once the attempt budget is spent. Quarantine is conservative λDU
// accounting, not data loss: Result synthesizes a dangerous-undetected
// quarantine record for every row of the range, mirroring the per-
// experiment semantics of the supervised runner.
func (c *Coordinator) requeueLocked(ri int, errText string) {
	r := c.ranges[ri]
	r.attempts++
	r.lastErr = errText
	r.lease = 0
	r.worker = 0
	if r.attempts >= c.cfg.MaxAttempts {
		r.status = rangeQuarantined
		c.remaining--
		c.cfg.Telemetry.RangeQuarantined()
		c.logf("range [%d,%d) quarantined after %d attempts: %s", r.lo, r.hi, r.attempts, errText)
		if c.remaining == 0 {
			c.finishLocked()
		}
		return
	}
	r.status = rangePending
	backoff := c.cfg.BackoffBase << (r.attempts - 1)
	if backoff > c.cfg.BackoffCap || backoff <= 0 {
		backoff = c.cfg.BackoffCap
	}
	r.notBefore = c.cfg.Clock().Add(backoff)
}

// reassignIdleLocked offers runnable ranges to every idle worker.
func (c *Coordinator) reassignIdleLocked(now time.Time) {
	for _, w := range c.workers {
		if !w.gone && c.idleLocked(w) {
			c.assignLocked(w, now)
		}
	}
}

// Tick advances lease bookkeeping: expire TTL-lapsed leases, re-offer
// runnable ranges to idle workers, and — when no live worker exists —
// run runnable ranges locally through cfg.LocalRunner (graceful
// degradation down to coordinator-only execution). Call it
// periodically; the cadence bounds dead-worker detection latency.
func (c *Coordinator) Tick() {
	now := c.cfg.Clock()

	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		return
	}
	for ri, r := range c.ranges {
		if r.status == rangeLeased && r.worker != 0 && now.After(r.deadline) {
			c.cfg.Telemetry.LeaseExpired()
			c.cfg.Telemetry.WorkerRetry()
			c.logf("lease %d on range [%d,%d) expired (worker #%d silent past TTL)", r.lease, r.lo, r.hi, r.worker)
			c.requeueLocked(ri, "lease expired: no heartbeat within TTL")
		}
	}
	if !c.finished {
		c.reassignIdleLocked(now)
	}
	c.mu.Unlock()

	c.runLocal()
}

// runLocal executes runnable ranges in process while no live worker
// can take them. The range runs outside the coordinator lock; its
// completion flows through the same validation and duplicate checks
// as a worker result.
func (c *Coordinator) runLocal() {
	if c.cfg.LocalRunner == nil {
		return
	}
	for {
		now := c.cfg.Clock()
		c.mu.Lock()
		if c.finished || c.localBusy || c.liveWorkersLocked() > 0 {
			c.mu.Unlock()
			return
		}
		ri := c.runnableLocked(now)
		if ri < 0 {
			c.mu.Unlock()
			return
		}
		r := c.ranges[ri]
		c.nextLease++
		lease := c.nextLease
		r.status = rangeLeased
		r.lease = lease
		r.worker = 0 // local leases have no TTL: the runner is us
		c.leaseRange[lease] = ri
		c.localBusy = true
		lo, hi := r.lo, r.hi
		c.cfg.Telemetry.LeaseIssued()
		c.logf("lease %d: range [%d,%d) -> local runner (no live workers)", lease, lo, hi)
		c.mu.Unlock()

		ck, err := c.cfg.LocalRunner(lo, hi)

		c.mu.Lock()
		c.localBusy = false
		if c.finished {
			c.mu.Unlock()
			return
		}
		rr := c.ranges[ri]
		switch {
		case err != nil:
			if rr.status == rangeLeased && rr.lease == lease {
				c.cfg.Telemetry.WorkerRetry()
				c.requeueLocked(ri, "local: "+err.Error())
			}
		case rr.status == rangeDone:
			// A late worker result completed the range while we ran it
			// locally: verify ours is byte-identical, as for any
			// duplicate.
			if !bytes.Equal(inject.EncodeCheckpoint(ck, c.cfg.Plan), rr.result) {
				c.failLocked(fmt.Errorf(
					"dist: determinism violation: range [%d,%d) produced two different results (local lease %d)",
					lo, hi, lease))
			}
		case rr.status == rangeQuarantined:
			// Quarantine is final; see result().
		default:
			enc := inject.EncodeCheckpoint(ck, c.cfg.Plan)
			if verr := c.validateResultLocked(rr, enc); verr != nil {
				c.cfg.Telemetry.WorkerRetry()
				c.requeueLocked(ri, "local: "+verr.Error())
			} else {
				rr.status = rangeDone
				rr.result = enc
				rr.lastErr = ""
				c.remaining--
				c.logf("range [%d,%d) done locally (%d remaining)", lo, hi, c.remaining)
				if c.remaining == 0 {
					c.finishLocked()
				}
			}
		}
		c.mu.Unlock()
	}
}

// finishLocked completes the campaign: tell every worker to exit
// cleanly and release Done waiters.
func (c *Coordinator) finishLocked() {
	if c.finished {
		return
	}
	c.finished = true
	for _, w := range c.workers {
		c.sendLocked(w, &Msg{T: MsgFin})
	}
	close(c.done)
}

// failLocked ends the campaign with a terminal error.
func (c *Coordinator) failLocked(err error) {
	if c.finished {
		return
	}
	c.failed = err
	c.finished = true
	c.logf("campaign failed: %v", err)
	for _, w := range c.workers {
		c.sendLocked(w, &Msg{T: MsgError, Err: err.Error()})
	}
	close(c.done)
}

// Fail ends the campaign with a terminal error (e.g. the process is
// shutting down).
func (c *Coordinator) Fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failLocked(err)
}

// Result assembles the merged campaign state after Done. Ranges are
// concatenated in plan order — each range's records are already
// index-sorted (the canonical checkpoint encoding guarantees it), so
// the merged checkpoint is exactly what a single-process run would
// have snapshotted. Quarantined ranges contribute one conservative
// dangerous-undetected quarantine record per plan row.
func (c *Coordinator) Result() (*inject.Checkpoint, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.finished {
		return nil, errors.New("dist: campaign still running")
	}
	if c.failed != nil {
		return nil, c.failed
	}
	merged := &inject.Checkpoint{}
	for _, r := range c.ranges {
		switch r.status {
		case rangeDone:
			ck, err := inject.DecodeCheckpoint(r.result, c.cfg.Plan)
			if err != nil {
				return nil, fmt.Errorf("dist: stored result for range [%d,%d) corrupt: %w", r.lo, r.hi, err)
			}
			merged.Results = append(merged.Results, ck.Results...)
			merged.Quarantined = append(merged.Quarantined, ck.Quarantined...)
		case rangeQuarantined:
			for i := r.lo; i < r.hi; i++ {
				merged.Quarantined = append(merged.Quarantined, inject.Quarantined{
					PlanIndex: i,
					Injection: c.cfg.Plan[i],
					Attempts:  r.attempts,
					Err:       "range quarantined: " + r.lastErr,
				})
			}
		default:
			return nil, fmt.Errorf("dist: range [%d,%d) neither done nor quarantined", r.lo, r.hi)
		}
	}
	return merged, nil
}

// Quarantined reports how many ranges ended quarantined.
func (c *Coordinator) Quarantined() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.ranges {
		if r.status == rangeQuarantined {
			n++
		}
	}
	return n
}
