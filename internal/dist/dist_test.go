package dist_test

import (
	"bytes"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/fit"
	"repro/internal/fmea"
	"repro/internal/frcpu"
	"repro/internal/inject"
	"repro/internal/telemetry"
	"repro/internal/zones"
)

// fakeClock is the injected time source for every coordinator under
// test: each sample advances one microsecond (strictly monotonic
// ordering without wall time), and tests jump it forward to trigger
// TTL and backoff transitions deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(time.Microsecond)
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

// campaign bundles one built campaign plus everything the canonical
// report needs.
type campaign struct {
	target    *inject.Target
	golden    *inject.Golden
	plan      []inject.Injection
	analysis  *zones.Analysis
	worksheet *fmea.Worksheet
}

// buildCampaign constructs a reduced campaign for one of the three
// case studies. The v1/v2 designs go through dist.Spec — the exact
// code path cmd/campaignd and worker processes share — and the
// lockstep CPU is built directly (it has no Spec encoding; in-process
// tests don't need one).
func buildCampaign(t testing.TB, kind string) campaign {
	t.Helper()
	switch kind {
	case "v1", "v2":
		c, err := dist.Spec{
			Design: kind, AddrWidth: 6, Words: 2,
			Transient: 1, Permanent: 1, Wide: 4, Seed: 5,
		}.Build()
		if err != nil {
			t.Fatal(err)
		}
		return campaign{
			target: c.Target, golden: c.Golden, plan: sample(c.Plan),
			analysis: c.Analysis, worksheet: c.Worksheet,
		}
	case "lockstep":
		d, err := frcpu.Build(frcpu.LockstepConfig())
		if err != nil {
			t.Fatal(err)
		}
		a, err := d.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		target := d.InjectionTarget(a)
		g, err := target.RunGolden(d.Workload(120))
		if err != nil {
			t.Fatal(err)
		}
		plan := inject.BuildPlan(a, g, inject.PlanConfig{TransientPerZone: 1, PermanentPerZone: 1, Seed: 3})
		return campaign{
			target: target, golden: g, plan: sample(plan),
			analysis: a, worksheet: d.Worksheet(a, fit.Default()),
		}
	default:
		t.Fatalf("unknown campaign kind %q", kind)
		return campaign{}
	}
}

// sample strides the plan down so each matrix cell stays quick while
// still spanning many zones and experiment classes.
func sample(plan []inject.Injection) []inject.Injection {
	var out []inject.Injection
	for i := 0; i < len(plan); i += 3 {
		out = append(out, plan[i])
	}
	return out
}

// serialReference runs the campaign through the single-process serial
// engine — the byte-identity reference every distributed topology must
// reproduce.
func serialReference(t testing.TB, c campaign) *inject.Report {
	t.Helper()
	tgt := *c.target
	tgt.Workers = 1
	rep, err := tgt.Run(c.golden, c.plan)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// renderReport captures the canonical report bytes.
func renderReport(rep *inject.Report, c campaign) []byte {
	var buf bytes.Buffer
	rep.WriteText(&buf, c.analysis, c.worksheet, 0.35)
	return buf.Bytes()
}

// distOpts selects one cell of the topology matrix.
type distOpts struct {
	workers   int  // connected worker processes
	killLease int  // kill worker 0 when granted its killLease-th lease (0 = never)
	lanes     int  // simulation lanes inside each worker
	collapse  bool // static pre-pass inside each worker
	local     bool // coordinator local-fallback runner enabled
	traced    bool // span journals on coordinator and every worker
	adaptive  bool // latency-driven lease splitting (aggressive target)
	rangeSize int
	tel       *telemetry.Campaign
}

// tracedHub builds a telemetry hub with a Tracer journaling into buf —
// the in-process stand-in for one traced process in the fleet.
func tracedHub(proc string, trace uint64, buf *bytes.Buffer) *telemetry.Campaign {
	tel := telemetry.NewCampaign(nil, nil)
	tel.Tracer = telemetry.NewTracer(telemetry.NewJournal(buf, nil), proc, trace)
	return tel
}

// runDistributed executes the campaign through a real coordinator and
// in-process workers speaking the full wire protocol over net.Pipe,
// and returns the merged report.
func runDistributed(t *testing.T, c campaign, o distOpts) *inject.Report {
	t.Helper()
	clk := newFakeClock()
	tel := o.tel
	var (
		coordSpans   bytes.Buffer
		coordJournal *telemetry.Journal
		coordRoot    telemetry.Span
	)
	if o.traced {
		if tel == nil {
			tel = telemetry.NewCampaign(nil, nil)
		}
		coordJournal = telemetry.NewJournal(&coordSpans, nil)
		tel.Tracer = telemetry.NewTracer(coordJournal, "coordinator", telemetry.TraceID("matrix"))
		coordRoot = tel.StartSpan("dist-campaign")
		tel.SetTraceRoot(coordRoot)
	}
	cfg := dist.Config{
		Plan:        c.plan,
		RangeSize:   o.rangeSize,
		LeaseTTL:    time.Hour, // disconnects drive recovery here, not TTLs
		MaxAttempts: 10,
		BackoffBase: time.Nanosecond, // one clock micro-step clears it
		BackoffCap:  time.Microsecond,
		Clock:       clk.Now,
		Telemetry:   tel,
	}
	if o.adaptive {
		cfg.Adaptive = true
		// The fake clock moves in microsecond steps, so a microsecond
		// target keeps the splitter engaged for the whole campaign.
		cfg.TargetLease = time.Microsecond
		cfg.MinRange = 2
	}
	if o.local {
		lt := *c.target
		lt.Lanes = o.lanes
		lt.Collapse = o.collapse
		cfg.LocalRunner = func(lo, hi int) (*inject.Checkpoint, error) {
			return lt.RunRange(c.golden, c.plan, 2, lo, hi)
		}
	}
	coord, err := dist.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < o.workers; i++ {
		server, client := net.Pipe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			coord.Serve(server)
		}()
		wt := *c.target
		wt.Lanes = o.lanes
		wt.Collapse = o.collapse
		wcfg := dist.WorkerConfig{
			Name:      fmt.Sprintf("w%d", i),
			Target:    &wt,
			Golden:    c.golden,
			Plan:      c.plan,
			Workers:   2,
			Heartbeat: 50 * time.Millisecond,
		}
		if o.traced {
			// One hub per worker process, shared between the protocol
			// loop and the injection target so experiment spans nest
			// under the worker-lease span. The trace id arrives on the
			// wire, so the local tracer starts with zero.
			wtel := tracedHub(wcfg.Name, 0, &bytes.Buffer{})
			wt.Telemetry = wtel
			wcfg.Telemetry = wtel
		}
		if o.killLease > 0 && i == 0 {
			kill := o.killLease
			wcfg.OnLease = func(count, lo, hi int) bool { return count < kill }
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			dist.RunWorker(client, wcfg)
		}()
	}

	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		for {
			select {
			case <-coord.Done():
				return
			default:
				coord.Tick()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	select {
	case <-coord.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("distributed campaign did not complete")
	}
	<-tickDone
	wg.Wait()

	ck, err := coord.Result()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.target.AssembleReport(c.plan, ck)
	if err != nil {
		t.Fatal(err)
	}
	if o.traced {
		tel.PhaseDone()
		coordRoot.End()
		coordJournal.Close()
		if coordSpans.Len() == 0 {
			t.Fatal("traced run produced an empty coordinator span journal")
		}
	}
	return rep
}

// TestDistNeutralityMatrix is the acceptance bar one level up: the
// distributed merge must be byte-identical to the single-process
// serial run across cluster sizes, kill schedules, case studies, lane
// widths and collapse — including degradation to coordinator-only
// local execution when every worker dies.
func TestDistNeutralityMatrix(t *testing.T) {
	cells := []struct {
		name      string
		kind      string
		workers   int
		killLease int
		lanes     int
		collapse  bool
		local     bool
		traced    bool
		adaptive  bool
	}{
		{"v2/1worker", "v2", 1, 0, 1, false, false, false, false},
		{"v2/2workers-kill", "v2", 2, 2, 1, false, false, false, false},
		{"v2/4workers-lanes64-collapse", "v2", 4, 0, 64, true, false, false, false},
		{"v2/2workers-kill-lanes64", "v2", 2, 2, 64, false, false, false, false},
		{"v2/all-workers-die-local-fallback", "v2", 1, 1, 1, false, true, false, false},
		{"v1/2workers-collapse", "v1", 2, 0, 1, true, false, false, false},
		{"v1/2workers-kill-local", "v1", 2, 1, 64, false, true, false, false},
		{"lockstep/2workers-lanes64-collapse", "lockstep", 2, 0, 64, true, false, false, false},
		{"lockstep/2workers-kill", "lockstep", 2, 2, 1, false, false, false, false},
		// Tracing and adaptive sizing are knobs like lanes and collapse:
		// the merged bytes must not notice them, alone or combined, in
		// calm fleets or through a worker kill.
		{"v2/1worker-traced", "v2", 1, 0, 1, false, false, true, false},
		{"v2/4workers-lanes64-traced-adaptive", "v2", 4, 0, 64, false, false, true, true},
		{"v2/2workers-kill-adaptive", "v2", 2, 2, 1, false, false, false, true},
		{"v1/2workers-kill-traced-adaptive", "v1", 2, 2, 1, false, false, true, true},
		{"lockstep/4workers-lanes64-traced-adaptive", "lockstep", 4, 0, 64, true, false, true, true},
	}

	campaigns := map[string]campaign{}
	refs := map[string]*inject.Report{}
	refBytes := map[string][]byte{}
	for _, kind := range []string{"v1", "v2", "lockstep"} {
		c := buildCampaign(t, kind)
		campaigns[kind] = c
		refs[kind] = serialReference(t, c)
		refBytes[kind] = renderReport(refs[kind], c)
	}

	for _, cell := range cells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			c := campaigns[cell.kind]
			rep := runDistributed(t, c, distOpts{
				workers:   cell.workers,
				killLease: cell.killLease,
				lanes:     cell.lanes,
				collapse:  cell.collapse,
				local:     cell.local,
				traced:    cell.traced,
				adaptive:  cell.adaptive,
				rangeSize: 7, // prime: ranges straddle zone and class boundaries
			})
			if !reflect.DeepEqual(refs[cell.kind], rep) {
				t.Fatal("distributed report differs structurally from the serial reference")
			}
			if got := renderReport(rep, c); !bytes.Equal(got, refBytes[cell.kind]) {
				t.Fatalf("distributed report bytes differ from the serial reference:\n--- serial\n%s\n--- distributed\n%s",
					refBytes[cell.kind], got)
			}
		})
	}
}

// TestDistTelemetryCounters pins the non-vacuity of the distributed
// scheduling counters: a campaign with a worker kill must move
// leases_issued and worker_retries, the workers_active gauge must
// return to zero, and the counters must surface through the /progress
// snapshot payload and its rendered line.
func TestDistTelemetryCounters(t *testing.T) {
	c := buildCampaign(t, "v2")
	ref := serialReference(t, c)
	tel := telemetry.NewCampaign(nil, nil)
	rep := runDistributed(t, c, distOpts{
		workers: 2, killLease: 2, lanes: 1, rangeSize: 7, tel: tel,
	})
	if !reflect.DeepEqual(ref, rep) {
		t.Fatal("telemetry run diverged from the serial reference")
	}
	snap := tel.Snapshot()
	if snap.LeasesIssued == 0 {
		t.Error("leases_issued stayed zero across a distributed campaign")
	}
	if snap.WorkerRetries == 0 {
		t.Error("worker_retries stayed zero across a worker kill")
	}
	if snap.WorkersActive != 0 {
		t.Errorf("workers_active = %d after campaign end, want 0", snap.WorkersActive)
	}
	if snap.RangesQuarantined != 0 {
		t.Errorf("ranges_quarantined = %d on a clean campaign, want 0", snap.RangesQuarantined)
	}
	line := snap.Line()
	if !strings.Contains(line, fmt.Sprintf("leases %d", snap.LeasesIssued)) {
		t.Errorf("progress line does not surface lease counters: %s", line)
	}
}

// helloFor builds the handshake message for a plan.
func helloFor(name string, plan []inject.Injection) *dist.Msg {
	return &dist.Msg{
		T:        dist.MsgHello,
		V:        dist.ProtocolVersion,
		Worker:   name,
		PlanHash: fmt.Sprintf("%016x", inject.PlanHash(plan)),
		PlanLen:  len(plan),
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestLeaseExpiryFallsBackToLocal: a worker that takes a lease and
// goes silent must lose it at the TTL (leases_expired moves), and once
// the dead worker disconnects the coordinator must finish the whole
// campaign through the local runner — byte-identical to the serial
// reference.
func TestLeaseExpiryFallsBackToLocal(t *testing.T) {
	c := buildCampaign(t, "v2")
	ref := serialReference(t, c)
	clk := newFakeClock()
	tel := telemetry.NewCampaign(nil, nil)
	lt := *c.target
	coord, err := dist.New(dist.Config{
		Plan:        c.plan,
		RangeSize:   16,
		LeaseTTL:    time.Minute,
		MaxAttempts: 5,
		BackoffBase: time.Millisecond,
		Clock:       clk.Now,
		Telemetry:   tel,
		LocalRunner: func(lo, hi int) (*inject.Checkpoint, error) {
			return lt.RunRange(c.golden, c.plan, 2, lo, hi)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	server, client := net.Pipe()
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		coord.Serve(server)
	}()
	wc := dist.NewConn(client)
	if err := wc.Write(helloFor("silent", c.plan)); err != nil {
		t.Fatal(err)
	}
	lease, err := wc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if lease.T != dist.MsgLease {
		t.Fatalf("got %q after hello, want a lease", lease.T)
	}

	// Never heartbeat; jump past the TTL and let the scheduler notice.
	clk.Advance(2 * time.Minute)
	coord.Tick()
	if got := tel.Snapshot().LeasesExpired; got != 1 {
		t.Fatalf("leases_expired = %d after TTL lapse, want 1", got)
	}

	// The dead worker drops off; with no live workers left the
	// coordinator must degrade to local-only execution.
	client.Close()
	<-serveDone
	deadline := time.Now().Add(120 * time.Second)
	for {
		select {
		case <-coord.Done():
		default:
			if time.Now().After(deadline) {
				t.Fatal("coordinator did not finish locally")
			}
			clk.Advance(10 * time.Millisecond) // clear re-issue backoff
			coord.Tick()
			continue
		}
		break
	}

	ck, err := coord.Result()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.target.AssembleReport(c.plan, ck)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, rep) {
		t.Fatal("local-fallback report differs from the serial reference")
	}
	if got := renderReport(rep, c); !bytes.Equal(got, renderReport(ref, c)) {
		t.Fatal("local-fallback report bytes differ from the serial reference")
	}
	if got := tel.Snapshot().WorkersActive; got != 0 {
		t.Fatalf("workers_active = %d after disconnect, want 0", got)
	}
}

// TestFailingRangeQuarantinedWithBackoff: a range whose worker fails
// every attempt is re-issued with backoff gating each retry and
// quarantined at MaxAttempts, with every plan row conservatively
// recorded dangerous-undetected — the PR 3 semantics lifted to ranges.
func TestFailingRangeQuarantinedWithBackoff(t *testing.T) {
	c := buildCampaign(t, "v2")
	clk := newFakeClock()
	tel := telemetry.NewCampaign(nil, nil)
	coord, err := dist.New(dist.Config{
		Plan:        c.plan,
		RangeSize:   len(c.plan), // one range: the whole campaign poisons
		LeaseTTL:    time.Hour,
		MaxAttempts: 3,
		BackoffBase: 100 * time.Millisecond,
		BackoffCap:  10 * time.Second,
		Clock:       clk.Now,
		Telemetry:   tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go coord.Serve(server)
	wc := dist.NewConn(client)
	if err := wc.Write(helloFor("flaky", c.plan)); err != nil {
		t.Fatal(err)
	}

	retries := func() int64 { return tel.Snapshot().WorkerRetries }
	for attempt := 1; attempt <= 3; attempt++ {
		m, err := wc.Read()
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if m.T != dist.MsgLease {
			t.Fatalf("attempt %d: got %q, want a lease", attempt, m.T)
		}
		if err := wc.Write(&dist.Msg{T: dist.MsgFail, Lease: m.Lease, Err: "synthetic failure"}); err != nil {
			t.Fatal(err)
		}
		want := int64(attempt)
		waitFor(t, "retry counter", func() bool { return retries() == want })
		if attempt == 3 {
			break
		}
		// Backoff gates the re-issue: a scheduler pass before the
		// backoff elapses must not grant a new lease.
		coord.Tick()
		if got := tel.Snapshot().LeasesIssued; got != int64(attempt) {
			t.Fatalf("lease re-issued before backoff elapsed (leases_issued = %d)", got)
		}
		clk.Advance(time.Second)
		coord.Tick()
	}

	// Third failure exhausts the attempt budget: quarantine + fin.
	fin, err := wc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if fin.T != dist.MsgFin {
		t.Fatalf("got %q after quarantine, want fin", fin.T)
	}
	<-coord.Done()
	if got := tel.Snapshot().RangesQuarantined; got != 1 {
		t.Fatalf("ranges_quarantined = %d, want 1", got)
	}

	ck, err := coord.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Results) != 0 || len(ck.Quarantined) != len(c.plan) {
		t.Fatalf("merged state has %d results + %d quarantined, want 0 + %d",
			len(ck.Results), len(ck.Quarantined), len(c.plan))
	}
	for i, q := range ck.Quarantined {
		if q.PlanIndex != i || q.Injection != c.plan[i] {
			t.Fatalf("quarantine record %d misindexed", i)
		}
		if q.Attempts != 3 || !strings.Contains(q.Err, "range quarantined") {
			t.Fatalf("quarantine record %d: attempts=%d err=%q", i, q.Attempts, q.Err)
		}
	}
	rep, err := c.target.AssembleReport(c.plan, ck)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != len(c.plan) || !rep.Degraded() {
		t.Fatal("assembled report does not carry the conservative quarantine accounting")
	}
}

// TestDuplicateDivergenceFailsCampaign: at-least-once execution is
// only safe because duplicate completions of a range are verified
// byte-identical; a divergent duplicate is a determinism violation and
// must fail the whole campaign rather than silently picking a winner.
func TestDuplicateDivergenceFailsCampaign(t *testing.T) {
	c := buildCampaign(t, "v2")
	clk := newFakeClock()
	half := (len(c.plan) + 1) / 2
	coord, err := dist.New(dist.Config{
		Plan:        c.plan,
		RangeSize:   half, // two ranges: campaign stays open past r0
		LeaseTTL:    time.Minute,
		MaxAttempts: 10,
		BackoffBase: time.Millisecond,
		Clock:       clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go coord.Serve(server)
	wc := dist.NewConn(client)
	if err := wc.Write(helloFor("twofaced", c.plan)); err != nil {
		t.Fatal(err)
	}
	lease1, err := wc.Read()
	if err != nil {
		t.Fatal(err)
	}

	// Lose the first lease to a TTL expiry; the scheduler hands the
	// idle worker the second range while the first sits in backoff.
	clk.Advance(2 * time.Minute)
	coord.Tick()
	lease2, err := wc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if lease2.T != dist.MsgLease || lease2.Lo != lease1.Hi {
		t.Fatalf("expected a lease on the second range, got %q [%d,%d)", lease2.T, lease2.Lo, lease2.Hi)
	}

	// The expired lease now delivers — a correct, validated result for
	// the first range, absorbed under at-least-once semantics.
	good, err := c.target.RunRange(c.golden, c.plan, 2, lease1.Lo, lease1.Hi)
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Write(&dist.Msg{
		T: dist.MsgResult, Lease: lease1.Lease,
		Ckpt: inject.EncodeCheckpoint(good, c.plan),
	}); err != nil {
		t.Fatal(err)
	}

	// A retransmit of the same range then arrives with different bytes.
	diverged := &inject.Checkpoint{
		Results:     append([]inject.IndexedResult(nil), good.Results...),
		Quarantined: good.Quarantined,
	}
	diverged.Results[0].Result.FirstDevCycle++
	if err := wc.Write(&dist.Msg{
		T: dist.MsgResult, Lease: lease1.Lease,
		Ckpt: inject.EncodeCheckpoint(diverged, c.plan),
	}); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "campaign failure", func() bool { return coord.Err() != nil })
	if !strings.Contains(coord.Err().Error(), "determinism violation") {
		t.Fatalf("campaign error = %v, want a determinism violation", coord.Err())
	}
	<-coord.Done()
	if _, err := coord.Result(); err == nil {
		t.Fatal("Result succeeded on a failed campaign")
	}
}

// TestDuplicateIdenticalAccepted: the benign at-least-once case — the
// same range completing twice with identical bytes — must be absorbed
// without double-counting and without failing anything.
func TestDuplicateIdenticalAccepted(t *testing.T) {
	c := buildCampaign(t, "v2")
	clk := newFakeClock()
	coord, err := dist.New(dist.Config{
		Plan:        c.plan,
		RangeSize:   len(c.plan),
		LeaseTTL:    time.Minute,
		MaxAttempts: 10,
		BackoffBase: time.Millisecond,
		Clock:       clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go coord.Serve(server)
	wc := dist.NewConn(client)
	if err := wc.Write(helloFor("echo", c.plan)); err != nil {
		t.Fatal(err)
	}
	lease1, err := wc.Read()
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	coord.Tick()
	clk.Advance(time.Second)
	coord.Tick()
	lease2, err := wc.Read()
	if err != nil {
		t.Fatal(err)
	}

	good, err := c.target.RunRange(c.golden, c.plan, 2, lease1.Lo, lease1.Hi)
	if err != nil {
		t.Fatal(err)
	}
	enc := inject.EncodeCheckpoint(good, c.plan)
	for _, lease := range []int64{lease1.Lease, lease2.Lease} {
		if err := wc.Write(&dist.Msg{T: dist.MsgResult, Lease: lease, Ckpt: enc}); err != nil {
			t.Fatal(err)
		}
	}
	// First result completes the only range; fin follows. The
	// duplicate is verified and dropped without reopening anything.
	fin, err := wc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if fin.T != dist.MsgFin {
		t.Fatalf("got %q, want fin", fin.T)
	}
	<-coord.Done()
	if err := coord.Err(); err != nil {
		t.Fatalf("identical duplicate failed the campaign: %v", err)
	}
	ck, err := coord.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Results)+len(ck.Quarantined) != len(c.plan) {
		t.Fatalf("merged state covers %d rows, want %d (no double-counting)",
			len(ck.Results)+len(ck.Quarantined), len(c.plan))
	}
}

// TestHelloValidation: a worker with a different plan fingerprint or
// protocol version must be rejected before any lease is issued.
func TestHelloValidation(t *testing.T) {
	c := buildCampaign(t, "v2")
	clk := newFakeClock()
	for _, tc := range []struct {
		name  string
		hello *dist.Msg
	}{
		{"plan mismatch", &dist.Msg{
			T: dist.MsgHello, V: dist.ProtocolVersion, Worker: "alien",
			PlanHash: "deadbeefdeadbeef", PlanLen: len(c.plan),
		}},
		{"plan length mismatch", func() *dist.Msg {
			m := helloFor("short", c.plan)
			m.PlanLen--
			return m
		}()},
		{"protocol version", func() *dist.Msg {
			m := helloFor("old", c.plan)
			m.V = dist.ProtocolVersion + 1
			return m
		}()},
		{"not a hello", &dist.Msg{T: dist.MsgHeartbeat}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			coord, err := dist.New(dist.Config{Plan: c.plan, Clock: clk.Now})
			if err != nil {
				t.Fatal(err)
			}
			server, client := net.Pipe()
			go coord.Serve(server)
			wc := dist.NewConn(client)
			if err := wc.Write(tc.hello); err != nil {
				t.Fatal(err)
			}
			m, err := wc.Read()
			if err != nil {
				t.Fatal(err)
			}
			if m.T != dist.MsgError {
				t.Fatalf("got %q, want an error rejection", m.T)
			}
		})
	}
}

// TestEmptyPlanCompletesImmediately: zero ranges means the campaign is
// born finished, and late workers get fin at hello.
func TestEmptyPlanCompletesImmediately(t *testing.T) {
	clk := newFakeClock()
	coord, err := dist.New(dist.Config{Plan: nil, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("empty campaign not finished at construction")
	}
	ck, err := coord.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Results) != 0 || len(ck.Quarantined) != 0 {
		t.Fatal("empty campaign produced records")
	}
	server, client := net.Pipe()
	go coord.Serve(server)
	wc := dist.NewConn(client)
	if err := wc.Write(helloFor("late", nil)); err != nil {
		t.Fatal(err)
	}
	m, err := wc.Read()
	if err != nil {
		t.Fatal(err)
	}
	if m.T != dist.MsgFin {
		t.Fatalf("late worker got %q, want fin", m.T)
	}
}

// TestSpecKey: the cheap content-address identity of a campaign. It
// must cover every campaign-defining field, exclude the process-local
// warmstart knob, and stay bit-stable (the serve daemon's result cache
// and any on-disk index key off these strings).
func TestSpecKey(t *testing.T) {
	base := dist.Spec{Design: "v2", AddrWidth: 8, Words: 8,
		Transient: 1, Permanent: 1, Wide: 16, Seed: 1}
	if got, want := base.Key(), "v2/a8/w8/t1/p1/g16/s1"; got != want {
		t.Fatalf("Key() = %q, want %q (the rendering is a persistence contract)", got, want)
	}
	warm := base
	warm.Warmstart = 512
	if warm.Key() != base.Key() {
		t.Fatal("warmstart must not alter the campaign key")
	}
	if warm.TraceID() != base.TraceID() {
		t.Fatal("warmstart must not alter the campaign trace id")
	}
	seen := map[string]bool{base.Key(): true}
	for _, mutate := range []func(*dist.Spec){
		func(s *dist.Spec) { s.Design = "v1" },
		func(s *dist.Spec) { s.AddrWidth = 6 },
		func(s *dist.Spec) { s.Words = 4 },
		func(s *dist.Spec) { s.Transient = 2 },
		func(s *dist.Spec) { s.Permanent = 2 },
		func(s *dist.Spec) { s.Wide = 4 },
		func(s *dist.Spec) { s.Seed = 2 },
	} {
		sp := base
		mutate(&sp)
		if seen[sp.Key()] {
			t.Fatalf("key %q collides with another campaign", sp.Key())
		}
		seen[sp.Key()] = true
	}
}
