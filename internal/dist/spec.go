package dist

import (
	"fmt"
	"strconv"

	"repro/internal/fit"
	"repro/internal/fmea"
	"repro/internal/inject"
	"repro/internal/memsys"
	"repro/internal/telemetry"
	"repro/internal/workload"
	"repro/internal/zones"
)

// Spec pins the campaign inputs every process in a distributed run
// must agree on. Coordinator and workers each call Build locally —
// nothing heavyweight crosses the wire — and the resulting plan
// fingerprint (hash + length) is validated at hello, so a worker built
// from different parameters is turned away before it can contribute a
// single record.
type Spec struct {
	// Design selects the implementation: "v1" or "v2".
	Design string
	// AddrWidth and Words shape the memory and its March workload.
	AddrWidth int
	Words     int
	// Transient/Permanent are per-zone experiment counts; Wide is the
	// global wide-fault experiment count.
	Transient int
	Permanent int
	Wide      int
	// Seed drives plan construction (WidePlan uses Seed+1, matching
	// cmd/injector).
	Seed uint64
	// Warmstart is the golden snapshot cadence in cycles (0 = cold
	// start). A local throughput knob: it is applied before the golden
	// run but does not alter the plan fingerprint or any result byte,
	// so processes in one campaign may disagree on it.
	Warmstart int
}

// TraceID derives the campaign-scoped trace id every process in one
// distributed run agrees on: a pure function of the campaign-defining
// spec fields, so coordinator and workers label their span journals
// with the same trace before the first lease carries it over the wire.
// Warmstart is excluded — like the plan fingerprint, the trace
// identifies the campaign, and warm start is a process-local knob.
func (sp Spec) TraceID() uint64 {
	return telemetry.TraceID("dist", sp.Design,
		strconv.Itoa(sp.AddrWidth), strconv.Itoa(sp.Words),
		strconv.Itoa(sp.Transient), strconv.Itoa(sp.Permanent),
		strconv.Itoa(sp.Wide), strconv.FormatUint(sp.Seed, 10))
}

// Key renders the campaign-defining spec fields as one canonical
// string — the cheap pre-build identity of a campaign. The plan
// fingerprint validated at hello is derived from the *built* plan and
// costs a golden run; Key costs a Sprintf, which is what a
// content-addressed result cache (internal/serve) wants to consult
// before deciding whether to build anything at all. Warmstart is
// excluded for the same reason it is excluded from TraceID: it is a
// process-local throughput knob that never alters a result byte.
func (sp Spec) Key() string {
	return fmt.Sprintf("%s/a%d/w%d/t%d/p%d/g%d/s%d",
		sp.Design, sp.AddrWidth, sp.Words, sp.Transient, sp.Permanent, sp.Wide, sp.Seed)
}

// Campaign is a fully built campaign: everything a coordinator needs
// to merge and render, and everything a worker needs to run leases.
type Campaign struct {
	Name      string
	Design    *memsys.Design
	Analysis  *zones.Analysis
	Target    *inject.Target
	Golden    *inject.Golden
	Trace     *workload.Trace
	Plan      []inject.Injection
	Worksheet *fmea.Worksheet
}

// Build constructs the campaign: design, zone analysis, injection
// target, golden run, plan and worksheet — the same sequence as
// cmd/injector, so a Spec-built plan hashes identically to the
// single-process campaign with the same flags.
func (sp Spec) Build() (*Campaign, error) {
	var cfg memsys.Config
	switch sp.Design {
	case "v1":
		cfg = memsys.V1Config()
	case "v2":
		cfg = memsys.V2Config()
	default:
		return nil, fmt.Errorf("dist: unknown design %q (want v1 or v2)", sp.Design)
	}
	cfg.AddrWidth = sp.AddrWidth
	d, err := memsys.Build(cfg)
	if err != nil {
		return nil, err
	}
	a, err := d.Analyze()
	if err != nil {
		return nil, err
	}
	target := d.InjectionTargetSeeded(a, d.SeedFaults())
	target.SnapshotEvery = sp.Warmstart
	tr := d.ValidationWorkload(sp.Words, sp.Seed)
	g, err := target.RunGolden(tr)
	if err != nil {
		return nil, err
	}
	plan := inject.BuildPlan(a, g, inject.PlanConfig{
		TransientPerZone: sp.Transient,
		PermanentPerZone: sp.Permanent,
		Seed:             sp.Seed,
	})
	plan = append(plan, inject.WidePlan(a, g, sp.Wide, sp.Seed+1)...)
	return &Campaign{
		Name:      cfg.Name,
		Design:    d,
		Analysis:  a,
		Target:    target,
		Golden:    g,
		Trace:     tr,
		Plan:      plan,
		Worksheet: d.Worksheet(a, fit.Default()),
	}, nil
}
