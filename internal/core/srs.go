package core

import (
	"fmt"
	"strings"

	"repro/internal/iec61508"
	"repro/internal/report"
)

// SRS renders the Safety Requirements Specification extract IEC 61508
// asks for (Section 2 of the paper: "the release of a Safety
// Requirements Specification (SRS) including a detailed FMEA of the
// system or sub-system"): the safety function, its integrity target,
// the failure-mode analysis summary, the claimed diagnostic techniques
// with their norm-granted maxima, and the validation evidence.
func (as *Assessment) SRS() string {
	var b strings.Builder
	w := as.Worksheet
	m := as.Metrics

	fmt.Fprintf(&b, "SAFETY REQUIREMENTS SPECIFICATION (extract) — %s\n", as.Name)
	fmt.Fprintf(&b, "%s\n\n", strings.Repeat("=", 60))

	fmt.Fprintf(&b, "1. SAFETY FUNCTION\n")
	fmt.Fprintf(&b, "   Deliver uncorrupted data words to the safety application and\n")
	fmt.Fprintf(&b, "   annunciate any dangerous memory-subsystem failure via the alarm\n")
	fmt.Fprintf(&b, "   interface within one access cycle.\n\n")

	fmt.Fprintf(&b, "2. SAFETY INTEGRITY TARGET\n")
	fmt.Fprintf(&b, "   Target: %v at hardware fault tolerance %d (type B component).\n",
		as.TargetSIL, 0)
	band, achievable := iec61508.RequiredSFF(as.TargetSIL, 0)
	if achievable {
		fmt.Fprintf(&b, "   Required safe failure fraction band: %v (>= %.2f).\n\n",
			band, band.MinSFFValue())
	}

	fmt.Fprintf(&b, "3. FAILURE MODES AND EFFECTS ANALYSIS\n")
	fmt.Fprintf(&b, "   %s\n", as.Analysis.Summary())
	fmt.Fprintf(&b, "   Worksheet rows: %d (zone x failure mode, per IEC 61508-2 Annex A\n", len(w.Rows))
	fmt.Fprintf(&b, "   catalogs for variable memories and digital logic).\n")
	fmt.Fprintf(&b, "   Totals: λS=%.4f, λD=%.4f, λDD=%.4f, λDU=%.4f FIT\n",
		m.LambdaS, m.LambdaD, m.LambdaDD, m.LambdaDU)
	fmt.Fprintf(&b, "   DC=%s  SFF=%s  ->  claimable %v\n\n",
		report.Pct(m.DC()), report.Pct(m.SFF()), as.SIL)

	fmt.Fprintf(&b, "4. CLAIMED DIAGNOSTIC TECHNIQUES (with norm maxima)\n")
	techs := map[iec61508.Technique]bool{}
	for i := range w.Rows {
		for _, tq := range []iec61508.Technique{w.Rows[i].TechHW, w.Rows[i].TechSW} {
			if tq != "" && tq != iec61508.TechNone {
				techs[tq] = true
			}
		}
	}
	for _, tq := range iec61508.Techniques() {
		if techs[tq] {
			lvl, _ := iec61508.DCLevelOf(tq)
			fmt.Fprintf(&b, "   - %-45s max DC %s (%s)\n", tq, report.Pct(iec61508.MaxDC(tq)), lvl)
		}
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "5. MOST CRITICAL ELEMENTS (by undetected dangerous rate)\n")
	for i, zr := range w.Ranking() {
		if i >= 5 {
			break
		}
		fmt.Fprintf(&b, "   %d. %-30s λDU=%.4f FIT\n", i+1, zr.ZoneName, zr.Metrics.LambdaDU)
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "6. ASSUMPTION SENSITIVITY\n")
	fmt.Fprintf(&b, "   SFF remains within [%s, %s] across the Section 4 span battery\n",
		report.Pct(as.Sensitivity.MinSFF), report.Pct(as.Sensitivity.MaxSFF))
	fmt.Fprintf(&b, "   (elementary rates x/÷2, S ±20%%, frequency classes ±1).\n\n")

	fmt.Fprintf(&b, "7. VALIDATION EVIDENCE\n")
	if v := as.Validation; v != nil {
		fmt.Fprintf(&b, "   - workload completeness: %s\n", verdict(v.Complete))
		fmt.Fprintf(&b, "   - injection campaign: %d zone-failure experiments, coverage items\n",
			len(v.Report.Results))
		fmt.Fprintf(&b, "     SENS %s / OBSE %s / DIAG %s\n",
			report.Pct(v.Report.Coverage.SensFrac()),
			report.Pct(v.Report.Coverage.ObseFrac()),
			report.Pct(v.Report.Coverage.DiagFrac()))
		fmt.Fprintf(&b, "   - estimate cross-check: %s of zones in line (one-sided)\n",
			report.Pct(v.PassFraction))
		fmt.Fprintf(&b, "   - effects tables consistent: %s\n", verdict(v.EffectsOK))
		fmt.Fprintf(&b, "   - workload toggle efficiency: %s (adjusted)\n", report.Pct(v.ToggleAdj))
	} else {
		fmt.Fprintf(&b, "   - analytical only; fault-injection validation not yet run\n")
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "8. VERDICT\n")
	fmt.Fprintf(&b, "   %v claimed vs %v target: %s\n", as.SIL, as.TargetSIL, verdict(as.TargetMet))
	return b.String()
}
