package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/iec61508"
	"repro/internal/inject"
	"repro/internal/memsys"
)

// flowDUT builds a flow-ready DUT. addrWidth 8 is the calibrated
// full-size memory (for metric assertions); 6 keeps injection campaigns
// fast (the SFF calibration shifts with the logic/memory ratio).
func flowDUT(t *testing.T, v2 bool, addrWidth int) *memsys.FlowDUT {
	t.Helper()
	var cfg memsys.Config
	if v2 {
		cfg = memsys.V2Config()
	} else {
		cfg = memsys.V1Config()
	}
	cfg.AddrWidth = addrWidth
	d, err := memsys.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := memsys.NewFlowDUT(d)
	f.ValidationWords = 4
	return f
}

func TestFlowWithoutValidation(t *testing.T) {
	opts := DefaultOptions()
	opts.RunValidation = false
	as, err := Run(flowDUT(t, true, 8), opts)
	if err != nil {
		t.Fatal(err)
	}
	if as.Validation != nil {
		t.Error("validation present despite RunValidation=false")
	}
	if as.SIL != iec61508.SIL3 || !as.TargetMet {
		t.Errorf("v2 flow SIL = %v targetMet=%v", as.SIL, as.TargetMet)
	}
	if as.Metrics.SFF() < 0.99 {
		t.Errorf("v2 SFF = %v", as.Metrics.SFF())
	}
	rep := as.Report()
	for _, want := range []string{"Safety assessment", "SFF", "PASS", "criticality"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFlowV1FailsTarget(t *testing.T) {
	opts := DefaultOptions()
	opts.RunValidation = false
	as, err := Run(flowDUT(t, false, 8), opts)
	if err != nil {
		t.Fatal(err)
	}
	if as.TargetMet {
		t.Error("v1 must fail the SIL3 target")
	}
	if !strings.Contains(as.Report(), "FAIL") {
		t.Error("report should show FAIL verdict")
	}
}

func TestFullFlowWithValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation flow is slow")
	}
	opts := DefaultOptions()
	opts.Plan = inject.PlanConfig{TransientPerZone: 1, PermanentPerZone: 1, Seed: 1}
	opts.WideFaults = 4
	opts.ToggleThreshold = 0.95
	opts.Tolerance = 0.6
	as, err := Run(flowDUT(t, true, 6), opts)
	if err != nil {
		t.Fatal(err)
	}
	v := as.Validation
	if v == nil {
		t.Fatal("no validation result")
	}
	if !v.Complete {
		t.Errorf("workload incomplete: %v", v.InactiveZones)
	}
	if v.Report == nil || len(v.Report.Results) == 0 {
		t.Fatal("no injection results")
	}
	if v.WideReport == nil || len(v.WideReport.Results) != 8 { // both polarities per site
		t.Error("wide report missing")
	}
	if !v.ToggleOK {
		t.Errorf("toggle: raw %.4f adj %.4f", v.ToggleRaw, v.ToggleAdj)
	}
	if v.PassFraction < 0.7 {
		for _, r := range v.Rows {
			if !r.Within {
				t.Logf("over-claimed: %s estS=%.2f measS=%.2f estDDF=%.2f measDDF=%.2f",
					r.Name, r.EstS, r.MeasS, r.EstDDF, r.MeasDDF)
			}
		}
		t.Errorf("validation pass fraction = %.2f", v.PassFraction)
	}
	rep := as.Report()
	for _, want := range []string{"Validation", "campaign coverage", "toggle"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestSRSDocument(t *testing.T) {
	opts := DefaultOptions()
	opts.RunValidation = false
	as, err := Run(flowDUT(t, true, 8), opts)
	if err != nil {
		t.Fatal(err)
	}
	srs := as.SRS()
	for _, want := range []string{
		"SAFETY REQUIREMENTS SPECIFICATION",
		"SAFETY FUNCTION",
		"SAFETY INTEGRITY TARGET",
		"FAILURE MODES AND EFFECTS ANALYSIS",
		"CLAIMED DIAGNOSTIC TECHNIQUES",
		"RAM monitoring with Hamming code",
		"MOST CRITICAL ELEMENTS",
		"VALIDATION EVIDENCE",
		"analytical only",
		"VERDICT",
		"PASS",
	} {
		if !strings.Contains(srs, want) {
			t.Errorf("SRS missing %q", want)
		}
	}
}

// TestDRCPreflightEmbedded asserts the static DRC runs as part of the
// flow by default, its summary lands in the report, and SkipDRC removes
// it — the contract cmd/certify's conditional-grade logic depends on.
func TestDRCPreflightEmbedded(t *testing.T) {
	opts := DefaultOptions()
	opts.RunValidation = false
	as, err := Run(flowDUT(t, true, 8), opts)
	if err != nil {
		t.Fatal(err)
	}
	if as.DRC == nil {
		t.Fatal("assessment has no DRC result")
	}
	if !as.DRCClean() {
		t.Fatalf("v2 DRC pre-flight not clean:\n%s", as.DRC.Render())
	}
	if len(as.DRC.Ran) == 0 {
		t.Fatal("DRC ran no rules")
	}
	rep := as.Report()
	for _, want := range []string{"Static DRC pre-flight", as.DRC.Summary()} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}

	opts.SkipDRC = true
	as, err = Run(flowDUT(t, true, 8), opts)
	if err != nil {
		t.Fatal(err)
	}
	if as.DRC != nil {
		t.Error("DRC present despite SkipDRC")
	}
	if !as.DRCClean() {
		t.Error("DRCClean must be vacuously true when skipped")
	}
	if strings.Contains(as.Report(), "Static DRC pre-flight") {
		t.Error("report renders a DRC section for a skipped pre-flight")
	}
}

// TestDegradedCampaignConditional: when the validation campaign runs
// under a watchdog budget that aborts experiments, the assessment must
// surface the degradation — CampaignHealthy false, conservative counts
// in Validation, and a CONDITIONAL call-out in the rendered report —
// rather than silently grading on partial evidence.
func TestDegradedCampaignConditional(t *testing.T) {
	if testing.Short() {
		t.Skip("validation flow is slow")
	}
	opts := DefaultOptions()
	opts.Plan = inject.PlanConfig{TransientPerZone: 1, PermanentPerZone: 1, Seed: 1}
	opts.WideFaults = 2
	opts.Tolerance = 0.6
	opts.Supervision.CycleBudget = 2 // far below any injection cycle
	as, err := Run(flowDUT(t, true, 6), opts)
	if err != nil {
		t.Fatal(err)
	}
	v := as.Validation
	if v == nil {
		t.Fatal("no validation result")
	}
	if !v.Degraded || v.AbortedExps == 0 {
		t.Fatalf("degraded=%v abortedExps=%d, want a degraded campaign", v.Degraded, v.AbortedExps)
	}
	if as.CampaignHealthy() {
		t.Fatal("CampaignHealthy must be false for a degraded campaign")
	}
	rep := as.Report()
	for _, want := range []string{"degraded campaign", "CONDITIONAL"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}

	// Without supervision the same flow is healthy.
	opts.Supervision = inject.Supervision{}
	as, err = Run(flowDUT(t, true, 6), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !as.CampaignHealthy() {
		t.Fatal("unsupervised flow reported an unhealthy campaign")
	}
	if strings.Contains(as.Report(), "degraded campaign") {
		t.Error("healthy report renders the degraded call-out")
	}
}

// TestRunCanceledContext: a canceled Options.Ctx stops the flow at the
// next stage boundary with an error wrapping context.Canceled and no
// partial assessment — the cooperative-cancellation surface the serve
// daemon's DELETE /jobs/{id} rides on.
func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.RunValidation = false
	opts.Ctx = ctx
	as, err := Run(flowDUT(t, true, 6), opts)
	if as != nil {
		t.Fatal("canceled run returned a partial assessment")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("err %q does not name the cancellation", err)
	}

	// A live context is inert: same flow, same result as no context.
	opts.Ctx = context.Background()
	as, err = Run(flowDUT(t, true, 6), opts)
	if err != nil || as == nil {
		t.Fatalf("live ctx: err %v", err)
	}
}
