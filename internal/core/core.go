// Package core orchestrates the paper's methodology end to end — the
// TÜV-approved flow to assess and validate the Safe Failure Fraction of
// a SoC in adherence to IEC 61508:
//
//  1. extract sensible zones and observation points from the netlist;
//  2. fill the FMEA worksheet (rates, S/F/ζ factors, clamped DDF claims)
//     and compute λS/λD/λDD/λDU, DC, SFF and the claimable SIL;
//  3. span the assumptions (sensitivity);
//  4. validate by fault injection: workload completeness, exhaustive
//     zone-failure injection, coverage items, measured-vs-estimated
//     S/DDF cross-check, effects-table consistency, wide/global fault
//     experiments, and workload toggle efficiency.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/drc"
	"repro/internal/fit"
	"repro/internal/fmea"
	"repro/internal/iec61508"
	"repro/internal/inject"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/workload"
	"repro/internal/zones"
)

// DUT is a design pluggable into the flow.
type DUT interface {
	DesignName() string
	// Analyze extracts the sensible zones.
	Analyze() (*zones.Analysis, error)
	// Worksheet fills the FMEA spreadsheet for the design.
	Worksheet(*zones.Analysis, fit.Rates) *fmea.Worksheet
	// Target wires the design into the fault injector.
	Target(*zones.Analysis) *inject.Target
	// ValidationTrace is the injection-campaign workload.
	ValidationTrace() *workload.Trace
	// CoverageTrace is the (usually richer) workload used for the
	// toggle-efficiency measurement.
	CoverageTrace() *workload.Trace
}

// Options tune the flow.
type Options struct {
	Rates     fit.Rates
	HFT       int
	TargetSIL iec61508.SIL
	// Sensitivity span factor for the assumption battery.
	Span float64
	// SkipDRC disables the mandatory static DRC pre-flight (tests only;
	// a certification run always checks the triple before grading).
	SkipDRC bool
	// DRC tunes the pre-flight rule thresholds and selection.
	DRC drc.Config
	// Validation controls.
	RunValidation   bool
	Plan            inject.PlanConfig
	WideFaults      int
	Tolerance       float64 // est-vs-measured acceptance band
	ToggleThreshold float64 // workload-efficiency threshold (0.99)
	// Supervision is the campaign fault-tolerance policy (watchdogs,
	// retry/quarantine, checkpoint/resume) applied to the injection
	// target. The zero value is fail-fast: any experiment failure
	// aborts the flow, as before.
	Supervision inject.Supervision
	// Workers/Lanes/Collapse are the engine throughput knobs threaded
	// onto the injection target (goroutine sharding, word-parallel
	// lanes, static collapse). All three are byte-neutral: the report
	// is bit-identical at any setting, so services may tune them per
	// deployment without voiding certification identity.
	Workers  int
	Lanes    int
	Collapse bool
	// Ctx cancels an in-flight assessment: the flow checks it between
	// phases and the injection campaigns poll it cooperatively
	// (Supervision.Interrupt), so an abandoned job stops within about
	// one experiment instead of running to completion. nil means
	// background — never cancelled.
	Ctx context.Context
	// Telemetry is the observability hub threaded through the flow
	// (phase transitions, campaign lifecycle events, metrics). nil
	// disables the layer; the assessment is byte-identical either way.
	Telemetry *telemetry.Campaign
}

// DefaultOptions mirrors the paper's defaults: SIL3 target at HFT 0,
// 99 % toggle threshold.
func DefaultOptions() Options {
	return Options{
		Rates:           fit.Default(),
		HFT:             0,
		TargetSIL:       iec61508.SIL3,
		Span:            2,
		DRC:             drc.DefaultConfig(),
		RunValidation:   true,
		Plan:            inject.DefaultPlanConfig(),
		WideFaults:      16,
		Tolerance:       0.35,
		ToggleThreshold: 0.99,
	}
}

// Validation is the fault-injection half of an assessment.
type Validation struct {
	Complete      bool
	InactiveZones []string
	Report        *inject.Report
	WideReport    *inject.Report
	Rows          []inject.ValidationRow
	PassFraction  float64
	Effects       []inject.EffectCheck
	EffectsOK     bool
	ToggleRaw     float64
	ToggleAdj     float64
	ToggleOK      bool
	// Degraded reports a campaign that completed without a verdict on
	// every experiment (quarantined or watchdog-aborted rows, counted
	// below across the zone and wide campaigns). The measured
	// fractions are then conservative lower bounds and every grade in
	// the report is CONDITIONAL.
	Degraded    bool
	Quarantined int
	AbortedExps int
}

// Assessment is the flow's output: the safety case for one design.
type Assessment struct {
	Name      string
	Analysis  *zones.Analysis
	Worksheet *fmea.Worksheet
	// DRC is the static pre-flight result (nil when Options.SkipDRC).
	// Error-level findings do not abort the flow — the assessor wants
	// the full picture — but the report marks every grade conditional.
	DRC         *drc.Result
	Metrics     fmea.Metrics
	SIL         iec61508.SIL
	TargetSIL   iec61508.SIL
	TargetMet   bool
	Sensitivity fmea.Sensitivity
	Validation  *Validation
}

// DRCClean reports whether the pre-flight ran and found no error-level
// violations (vacuously true when skipped).
func (as *Assessment) DRCClean() bool {
	return as.DRC == nil || as.DRC.Clean()
}

// CampaignHealthy reports whether the validation campaign (when run)
// delivered a verdict on every planned experiment. A degraded campaign
// makes the assessment CONDITIONAL, like an unclean DRC pre-flight.
func (as *Assessment) CampaignHealthy() bool {
	return as.Validation == nil || !as.Validation.Degraded
}

// Run executes the flow over a DUT. When Options.Ctx is set and is
// cancelled mid-flight, Run returns an error wrapping the context's
// error (context.Canceled / DeadlineExceeded) and never a partial
// assessment.
func Run(dut DUT, opts Options) (*Assessment, error) {
	tel := opts.Telemetry
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	canceled := func(stage string) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: %s: %w", stage, err)
		}
		return nil
	}
	// With tracing live, the whole assessment runs under one span so
	// the per-phase spans (and everything below them) nest under it;
	// the previous trace root — the CLI's campaign span — is restored
	// on the way out.
	if asp := tel.StartSpan("assessment"); asp.Valid() {
		prev := tel.TraceRoot()
		tel.SetTraceRoot(asp)
		defer func() {
			tel.PhaseDone()
			tel.SetTraceRoot(prev)
			asp.End()
		}()
	}
	if err := canceled("zone extraction"); err != nil {
		return nil, err
	}
	tel.Phase("zone-extraction")
	a, err := dut.Analyze()
	if err != nil {
		return nil, fmt.Errorf("core: zone extraction: %w", err)
	}
	tel.Phase("worksheet")
	w := dut.Worksheet(a, opts.Rates)
	m := w.Totals()
	as := &Assessment{
		Name:        dut.DesignName(),
		Analysis:    a,
		Worksheet:   w,
		Metrics:     m,
		SIL:         iec61508.MaxSIL(m.SFF(), opts.HFT, true),
		TargetSIL:   opts.TargetSIL,
		Sensitivity: w.SpanAssumptions(opts.Span),
	}
	as.TargetMet = as.SIL >= opts.TargetSIL
	if !opts.SkipDRC {
		tel.Phase("drc-preflight")
		as.DRC, err = drc.Run(drc.Input{
			Netlist: a.N, Analysis: a, Worksheet: w, Rates: &opts.Rates,
		}, opts.DRC)
		if err != nil {
			return nil, fmt.Errorf("core: DRC pre-flight: %w", err)
		}
	}
	if !opts.RunValidation {
		return as, nil
	}

	target := dut.Target(a)
	target.Supervision = opts.Supervision
	target.Telemetry = tel
	target.Workers = opts.Workers
	target.Lanes = opts.Lanes
	target.Collapse = opts.Collapse
	// Thread the context into the campaign engine: the injection loops
	// poll the channel cooperatively, so one ctx cancel stops golden
	// run, zone campaign and wide campaign alike.
	if opts.Ctx != nil && target.Supervision.Interrupt == nil {
		target.Supervision.Interrupt = opts.Ctx.Done()
	}
	if err := canceled("golden run"); err != nil {
		return nil, err
	}
	tel.Phase("golden-run")
	golden, err := target.RunGolden(dut.ValidationTrace())
	if err != nil {
		return nil, ctxErr(ctx, fmt.Errorf("core: golden run: %w", err))
	}
	v := &Validation{}
	var inactive []int
	v.Complete, inactive = golden.CompletenessOK()
	for _, zi := range inactive {
		v.InactiveZones = append(v.InactiveZones, a.Zones[zi].Name)
	}
	plan := inject.BuildPlan(a, golden, opts.Plan)
	if err := canceled("injection campaign"); err != nil {
		return nil, err
	}
	tel.Phase("zone-campaign")
	v.Report, err = target.Run(golden, plan)
	if err != nil {
		return nil, ctxErr(ctx, fmt.Errorf("core: injection campaign: %w", err))
	}
	if opts.WideFaults > 0 {
		widePlan := inject.WidePlan(a, golden, opts.WideFaults, opts.Plan.Seed+1)
		if err := canceled("wide/global campaign"); err != nil {
			return nil, err
		}
		tel.Phase("wide-campaign")
		v.WideReport, err = target.Run(golden, widePlan)
		if err != nil {
			return nil, ctxErr(ctx, fmt.Errorf("core: wide/global campaign: %w", err))
		}
	}
	for _, rep := range []*inject.Report{v.Report, v.WideReport} {
		if rep == nil {
			continue
		}
		v.Quarantined += len(rep.Quarantined)
		v.AbortedExps += rep.AbortedCount()
	}
	v.Degraded = v.Quarantined > 0 || v.AbortedExps > 0
	v.Rows = v.Report.ValidateWorksheet(a, w, opts.Tolerance)
	v.PassFraction = inject.PassFraction(v.Rows)
	v.Effects = v.Report.CheckEffects(a)
	v.EffectsOK = true
	for _, ec := range v.Effects {
		if !ec.Consistent {
			v.EffectsOK = false
		}
	}
	if err := canceled("toggle measurement"); err != nil {
		return nil, err
	}
	tel.Phase("toggle-coverage")
	toggleRep, err := target.ToggleCoverage(dut.CoverageTrace())
	if err != nil {
		return nil, fmt.Errorf("core: toggle measurement: %w", err)
	}
	v.ToggleRaw = toggleRep.Coverage()
	v.ToggleAdj, _ = target.AdjustedToggle(toggleRep)
	v.ToggleOK = v.ToggleAdj >= opts.ToggleThreshold
	as.Validation = v
	return as, nil
}

// Report renders the assessment as a certification-style text document.
func (as *Assessment) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Safety assessment: %s ===\n\n", as.Name)
	fmt.Fprintf(&b, "%s\n\n", as.Analysis.Summary())

	t := report.NewTable("IEC 61508 metrics",
		"λS [FIT]", "λD [FIT]", "λDD [FIT]", "λDU [FIT]", "DC", "SFF", "SIL (HFT0)")
	t.AddRow(as.Metrics.LambdaS, as.Metrics.LambdaD, as.Metrics.LambdaDD,
		as.Metrics.LambdaDU, as.Metrics.DC(), as.Metrics.SFF(), as.SIL.String())
	b.WriteString(t.Render())
	pfh := iec61508.PFH(as.Metrics.LambdaDU)
	fmt.Fprintf(&b, "\nContinuous-mode PFH from λDU: %.3g /h (grades %v by the PFH table)\n",
		pfh, iec61508.SILFromPFH(pfh))
	fmt.Fprintf(&b, "Target %v: %s\n", as.TargetSIL, verdict(as.TargetMet))
	fmt.Fprintf(&b, "Sensitivity: SFF in [%.4f, %.4f] (spread %.4f) across %d spans\n",
		as.Sensitivity.MinSFF, as.Sensitivity.MaxSFF, as.Sensitivity.Spread(), len(as.Sensitivity.Cases))

	if as.DRC != nil {
		fmt.Fprintf(&b, "\n--- Static DRC pre-flight ---\n")
		fmt.Fprintf(&b, "findings: %s: %s\n", as.DRC.Summary(), verdict(as.DRC.Clean()))
		if !as.DRC.Clean() {
			fmt.Fprintf(&b, "!! the SIL grade above is CONDITIONAL: the design triple has error-level DRC violations\n")
			for i := range as.DRC.Findings {
				f := &as.DRC.Findings[i]
				if f.Severity == drc.Error {
					fmt.Fprintf(&b, "  [%s] %s: %s\n", f.Rule, f.Loc, f.Message)
				}
			}
		}
	}

	rt := report.NewTable("\nTop criticality ranking (by λDU)", "#", "zone", "λDU [FIT]", "share")
	for i, zr := range as.Worksheet.Ranking() {
		if i >= 10 {
			break
		}
		rt.AddRow(i+1, zr.ZoneName, zr.Metrics.LambdaDU, report.Pct(zr.ShareDU))
	}
	b.WriteString(rt.Render())

	if v := as.Validation; v != nil {
		fmt.Fprintf(&b, "\n--- Validation (fault injection) ---\n")
		fmt.Fprintf(&b, "workload completeness: %s", verdict(v.Complete))
		if len(v.InactiveZones) > 0 {
			fmt.Fprintf(&b, " (untriggered: %v)", v.InactiveZones)
		}
		b.WriteByte('\n')
		cov := v.Report.Coverage
		fmt.Fprintf(&b, "campaign coverage: SENS %s, OBSE %s, DIAG %s, %d mismatches\n",
			report.Pct(cov.SensFrac()), report.Pct(cov.ObseFrac()), report.Pct(cov.DiagFrac()), cov.Mismatches)
		if v.Degraded {
			fmt.Fprintf(&b, "!! degraded campaign: %d quarantined, %d watchdog-aborted experiment(s) —\n", v.Quarantined, v.AbortedExps)
			fmt.Fprintf(&b, "!! affected rows counted as dangerous undetected; the SIL grade above is CONDITIONAL\n")
		}
		fmt.Fprintf(&b, "estimate cross-check: %s of zones within tolerance: %s\n",
			report.Pct(v.PassFraction), verdict(v.PassFraction >= 0.9))
		fmt.Fprintf(&b, "effects tables consistent with main/secondary analysis: %s\n", verdict(v.EffectsOK))
		fmt.Fprintf(&b, "workload toggle efficiency: raw %s, adjusted %s: %s\n",
			report.Pct(v.ToggleRaw), report.Pct(v.ToggleAdj), verdict(v.ToggleOK))
		if v.WideReport != nil {
			fmt.Fprintf(&b, "wide/global experiments: %d run, %d with multi-point effects\n",
				len(v.WideReport.Results), multiEffect(v.WideReport))
		}
	}
	return b.String()
}

// ctxErr folds a cooperative campaign interrupt back onto its cause:
// when the context is cancelled, the caller should see the context's
// error (wrapped, so errors.Is(err, context.Canceled) holds) rather
// than the engine-internal interrupt sentinel.
func ctxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil && errors.Is(err, inject.ErrCampaignInterrupted) {
		return fmt.Errorf("%v: %w", err, cerr)
	}
	return err
}

func verdict(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

func multiEffect(r *inject.Report) int {
	n := 0
	for _, res := range r.Results {
		if len(res.Deviated) >= 2 {
			n++
		}
	}
	return n
}
