// Package report renders experiment results as aligned text tables —
// the rows and series the paper's tables would show.
package report

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table is a simple aligned-columns text table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render produces the aligned text form.
func (t *Table) Render() string {
	width := utf8.RuneCountInString
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = width(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && width(cell) > widths[i] {
				widths[i] = width(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-width(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a ratio as a percentage string.
func Pct(v float64) string {
	return fmt.Sprintf("%.2f%%", 100*v)
}
