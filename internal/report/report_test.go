package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Results", "name", "value", "ratio")
	tb.AddRow("alpha", 42, 0.123456)
	tb.AddRow("a-much-longer-name", 7, 1.0)
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Results" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[3], "0.1235") {
		t.Errorf("float formatting: %q", lines[3])
	}
	// Columns aligned: "value" header starts at same offset as 42.
	hIdx := strings.Index(lines[1], "value")
	rIdx := strings.Index(lines[4], "7")
	if hIdx < 0 || rIdx < 0 || rIdx < hIdx {
		t.Errorf("alignment broken:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	out := tb.Render()
	if strings.HasPrefix(out, "\n") {
		t.Error("leading newline with empty title")
	}
	if !strings.HasPrefix(out, "a") {
		t.Errorf("header missing: %q", out)
	}
}

func TestPct(t *testing.T) {
	if Pct(0.9938) != "99.38%" {
		t.Errorf("Pct = %q", Pct(0.9938))
	}
	if Pct(1) != "100.00%" {
		t.Errorf("Pct(1) = %q", Pct(1))
	}
}
