package randckt

import "testing"

func TestGenerateValidAndDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a := Generate(Default(), seed)
		b := Generate(Default(), seed)
		if a.String() != b.String() {
			t.Fatalf("seed %d nondeterministic: %s vs %s", seed, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d invalid: %v", seed, err)
		}
		if len(a.Gates) == 0 || len(a.FFs) == 0 {
			t.Fatalf("seed %d degenerate: %s", seed, a)
		}
	}
}

func TestGenerateRespectsConfig(t *testing.T) {
	cfg := Config{Inputs: 3, Gates: 10, FFs: 2, Outputs: 2, MaxArity: 4}
	n := Generate(cfg, 7)
	if len(n.Gates) != 10 || len(n.FFs) != 2 {
		t.Errorf("generated %d gates %d FFs", len(n.Gates), len(n.FFs))
	}
	in, _ := n.FindInput("in")
	out, _ := n.FindOutput("out")
	if len(in.Nets) != 3 || len(out.Nets) != 2 {
		t.Error("port widths wrong")
	}
	for i := range n.Gates {
		if len(n.Gates[i].Inputs) > 4 {
			t.Error("arity bound violated")
		}
	}
}
