// Package randckt generates random synchronous circuits for
// property-based and differential testing: random gate DAGs with
// registers, all ports wired, guaranteed acyclic and validated.
package randckt

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/xrand"
)

// Config bounds the generated circuit.
type Config struct {
	Inputs   int // primary input bits
	Gates    int
	FFs      int
	Outputs  int // primary output bits
	MaxArity int // for variadic gates (>= 2)
}

// Default is a small but structurally rich circuit.
func Default() Config {
	return Config{Inputs: 6, Gates: 40, FFs: 6, Outputs: 4, MaxArity: 3}
}

// Generate builds a random circuit. Same seed, same circuit.
func Generate(cfg Config, seed uint64) *netlist.Netlist {
	if cfg.MaxArity < 2 {
		cfg.MaxArity = 2
	}
	rng := xrand.New(seed)
	n := netlist.New(fmt.Sprintf("rand-%d", seed))

	var pool []netlist.NetID
	pool = append(pool, n.AddInput("in", cfg.Inputs)...)

	// Registers first (Q nets join the pool; D bound later so registers
	// can sample any gate, giving feedback through state).
	type pendingFF struct{ id netlist.FFID }
	ffs := make([]pendingFF, cfg.FFs)
	for i := range ffs {
		id, q := n.AddFF(fmt.Sprintf("r[%d]", i), "R", pool[rng.Intn(len(pool))], netlist.InvalidNet, rng.Bool())
		ffs[i] = pendingFF{id: id}
		pool = append(pool, q)
	}

	types := []netlist.GateType{
		netlist.BUF, netlist.NOT, netlist.AND, netlist.OR,
		netlist.NAND, netlist.NOR, netlist.XOR, netlist.XNOR, netlist.MUX2,
	}
	for g := 0; g < cfg.Gates; g++ {
		t := types[rng.Intn(len(types))]
		arity := t.Arity()
		if arity < 0 {
			arity = 2 + rng.Intn(cfg.MaxArity-1)
		}
		ins := make([]netlist.NetID, arity)
		for i := range ins {
			ins[i] = pool[rng.Intn(len(pool))]
		}
		out := n.AddGate(t, "G", ins...)
		pool = append(pool, out)
	}

	// Rebind FF D inputs anywhere in the final pool (cannot create
	// combinational cycles: only FF Q breaks paths).
	for _, ff := range ffs {
		n.SetFFD(ff.id, pool[rng.Intn(len(pool))])
	}

	// Outputs sample the most recent cone tips to keep logic live.
	outs := make([]netlist.NetID, cfg.Outputs)
	for i := range outs {
		outs[i] = pool[len(pool)-1-rng.Intn(minInt(len(pool), cfg.Gates))]
	}
	n.AddOutput("out", outs)
	if err := n.Validate(); err != nil {
		panic(fmt.Sprintf("randckt: generated invalid circuit: %v", err))
	}
	return n
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
