// Package ahb is a transaction-level AMBA AHB-lite bus functional model
// with a multilayer interconnect: masters issue transfers carrying the
// protection attributes (privileged/user, data/opcode) the MCE's
// distributed MPU discriminates, slaves answer with OKAY or ERROR, and
// the multilayer matrix routes by address map with per-slave round-robin
// arbitration — the "AHB multilayer bus" of the paper's Fig. 5.
package ahb

import (
	"fmt"
	"sort"
)

// Resp is the AHB response code.
type Resp uint8

// OKAY and ERROR responses (RETRY/SPLIT are full-AHB only).
const (
	RespOKAY Resp = iota
	RespERROR
)

func (r Resp) String() string {
	if r == RespOKAY {
		return "OKAY"
	}
	return "ERROR"
}

// Prot carries the HPROT attributes the MPU checks.
type Prot struct {
	Privileged bool // HPROT[1]
	DataAccess bool // HPROT[0]: data (true) vs opcode fetch
}

// Transfer is one AHB-lite transfer (single beat; bursts are issued as
// beat sequences by the master layer).
type Transfer struct {
	Master int
	Addr   uint64
	Write  bool
	Data   uint64 // write data
	Size   int    // bytes: 1, 2, 4
	Prot   Prot
}

// Result is the slave's answer.
type Result struct {
	Resp  Resp
	Data  uint64 // read data
	Waits int    // wait states consumed
}

// Slave is anything that can terminate an AHB transfer.
type Slave interface {
	Access(t Transfer) Result
}

// SlaveFunc adapts a function to the Slave interface.
type SlaveFunc func(t Transfer) Result

// Access calls f(t).
func (f SlaveFunc) Access(t Transfer) Result { return f(t) }

// Region maps an address window [Base, Base+Size) to a slave. The slave
// sees addresses relative to Base.
type Region struct {
	Name  string
	Base  uint64
	Size  uint64
	Slave Slave
}

// Matrix is a multilayer AHB interconnect.
type Matrix struct {
	regions []Region
	// lastGrant implements per-slave round-robin among masters.
	lastGrant map[int]int
	// stats
	transfers map[string]int
	errors    int
}

// NewMatrix returns an empty interconnect.
func NewMatrix() *Matrix {
	return &Matrix{lastGrant: make(map[int]int), transfers: make(map[string]int)}
}

// Map attaches a slave at an address window. Overlapping windows are
// rejected.
func (m *Matrix) Map(name string, base, size uint64, s Slave) error {
	if size == 0 {
		return fmt.Errorf("ahb: region %q has zero size", name)
	}
	for _, r := range m.regions {
		if base < r.Base+r.Size && r.Base < base+size {
			return fmt.Errorf("ahb: region %q overlaps %q", name, r.Name)
		}
	}
	m.regions = append(m.regions, Region{Name: name, Base: base, Size: size, Slave: s})
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Base < m.regions[j].Base })
	return nil
}

// decode finds the region containing addr.
func (m *Matrix) decode(addr uint64) (int, bool) {
	for i := range m.regions {
		r := &m.regions[i]
		if addr >= r.Base && addr-r.Base < r.Size {
			return i, true
		}
	}
	return -1, false
}

// Issue routes one transfer through the matrix. Unmapped addresses get
// the default-slave ERROR response.
func (m *Matrix) Issue(t Transfer) Result {
	ri, ok := m.decode(t.Addr)
	if !ok {
		m.errors++
		return Result{Resp: RespERROR}
	}
	r := &m.regions[ri]
	m.lastGrant[ri] = t.Master
	m.transfers[r.Name]++
	rel := t
	rel.Addr = t.Addr - r.Base
	res := r.Slave.Access(rel)
	if res.Resp == RespERROR {
		m.errors++
	}
	return res
}

// IssueAll arbitrates a set of same-cycle transfers: transfers to
// different slaves proceed in parallel (multilayer); contending masters
// on one slave are serialized round-robin starting after the last
// granted master. Results are returned in input order, with Waits
// reflecting arbitration delay.
func (m *Matrix) IssueAll(ts []Transfer) []Result {
	results := make([]Result, len(ts))
	bySlave := map[int][]int{}
	for i, t := range ts {
		ri, ok := m.decode(t.Addr)
		if !ok {
			m.errors++
			results[i] = Result{Resp: RespERROR}
			continue
		}
		bySlave[ri] = append(bySlave[ri], i)
	}
	for ri, idxs := range bySlave {
		// Round-robin: rotate so the master after lastGrant goes first.
		last := m.lastGrant[ri]
		sort.SliceStable(idxs, func(a, b int) bool {
			pa := rotOrder(ts[idxs[a]].Master, last)
			pb := rotOrder(ts[idxs[b]].Master, last)
			return pa < pb
		})
		for wait, i := range idxs {
			res := m.Issue(ts[i])
			res.Waits += wait
			results[i] = res
		}
	}
	return results
}

func rotOrder(master, last int) int {
	d := master - last
	if d <= 0 {
		d += 1 << 16
	}
	return d
}

// Errors returns the number of ERROR responses routed so far.
func (m *Matrix) Errors() int { return m.errors }

// TransferCount returns per-region transfer counts.
func (m *Matrix) TransferCount(region string) int { return m.transfers[region] }

// RAMSlave is a simple word-addressed behavioral RAM slave (size in
// 32-bit words) for interconnect tests and examples.
type RAMSlave struct {
	words []uint32
}

// NewRAMSlave allocates a RAM slave.
func NewRAMSlave(words int) *RAMSlave {
	return &RAMSlave{words: make([]uint32, words)}
}

// Access implements Slave with word addressing (addr>>2).
func (r *RAMSlave) Access(t Transfer) Result {
	w := t.Addr >> 2
	if w >= uint64(len(r.words)) {
		return Result{Resp: RespERROR}
	}
	if t.Write {
		r.words[w] = uint32(t.Data)
		return Result{Resp: RespOKAY}
	}
	return Result{Resp: RespOKAY, Data: uint64(r.words[w])}
}
