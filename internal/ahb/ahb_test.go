package ahb

import "testing"

func TestMapOverlapRejected(t *testing.T) {
	m := NewMatrix()
	if err := m.Map("a", 0x0000, 0x100, NewRAMSlave(64)); err != nil {
		t.Fatal(err)
	}
	if err := m.Map("b", 0x80, 0x100, NewRAMSlave(64)); err == nil {
		t.Error("overlap accepted")
	}
	if err := m.Map("c", 0x100, 0x100, NewRAMSlave(64)); err != nil {
		t.Errorf("adjacent region rejected: %v", err)
	}
	if err := m.Map("z", 0x400, 0, nil); err == nil {
		t.Error("zero-size region accepted")
	}
}

func TestIssueRoutesAndRelativizes(t *testing.T) {
	m := NewMatrix()
	ram := NewRAMSlave(16)
	if err := m.Map("ram", 0x1000, 0x40, ram); err != nil {
		t.Fatal(err)
	}
	res := m.Issue(Transfer{Addr: 0x1008, Write: true, Data: 0xAB, Size: 4})
	if res.Resp != RespOKAY {
		t.Fatalf("write resp = %v", res.Resp)
	}
	res = m.Issue(Transfer{Addr: 0x1008, Size: 4})
	if res.Resp != RespOKAY || res.Data != 0xAB {
		t.Errorf("read = %+v", res)
	}
	if ram.words[2] != 0xAB {
		t.Error("relative addressing wrong")
	}
	if m.TransferCount("ram") != 2 {
		t.Errorf("transfer count = %d", m.TransferCount("ram"))
	}
}

func TestUnmappedAddressErrors(t *testing.T) {
	m := NewMatrix()
	m.Map("ram", 0, 0x40, NewRAMSlave(16))
	res := m.Issue(Transfer{Addr: 0x9999})
	if res.Resp != RespERROR {
		t.Error("unmapped address did not ERROR")
	}
	if m.Errors() != 1 {
		t.Errorf("Errors = %d", m.Errors())
	}
	if RespOKAY.String() != "OKAY" || RespERROR.String() != "ERROR" {
		t.Error("Resp strings")
	}
}

func TestRAMSlaveBounds(t *testing.T) {
	ram := NewRAMSlave(4)
	if res := ram.Access(Transfer{Addr: 16}); res.Resp != RespERROR {
		t.Error("out-of-range read did not ERROR")
	}
}

func TestSlaveFunc(t *testing.T) {
	m := NewMatrix()
	m.Map("echo", 0, 16, SlaveFunc(func(tr Transfer) Result {
		return Result{Resp: RespOKAY, Data: tr.Addr * 2}
	}))
	if res := m.Issue(Transfer{Addr: 5}); res.Data != 10 {
		t.Errorf("SlaveFunc data = %d", res.Data)
	}
}

func TestMultilayerParallelAndArbitration(t *testing.T) {
	m := NewMatrix()
	m.Map("ram0", 0x0000, 0x100, NewRAMSlave(64))
	m.Map("ram1", 0x1000, 0x100, NewRAMSlave(64))

	// Different slaves: no wait states.
	rs := m.IssueAll([]Transfer{
		{Master: 0, Addr: 0x0000, Write: true, Data: 1},
		{Master: 1, Addr: 0x1000, Write: true, Data: 2},
	})
	if rs[0].Waits != 0 || rs[1].Waits != 0 {
		t.Errorf("parallel transfers got waits: %+v", rs)
	}

	// Same slave: one master waits.
	rs = m.IssueAll([]Transfer{
		{Master: 0, Addr: 0x0004, Write: true, Data: 3},
		{Master: 1, Addr: 0x0008, Write: true, Data: 4},
	})
	if rs[0].Waits+rs[1].Waits != 1 {
		t.Errorf("contention waits = %d+%d, want total 1", rs[0].Waits, rs[1].Waits)
	}
	// Round-robin rotates after the last *served* master: the master
	// serialized last in this batch yields priority next batch.
	lastServed := 0
	if rs[1].Waits > rs[0].Waits {
		lastServed = 1
	}
	rs = m.IssueAll([]Transfer{
		{Master: 0, Addr: 0x000C},
		{Master: 1, Addr: 0x0010},
	})
	first := 0
	if rs[1].Waits == 0 {
		first = 1
	}
	if first == lastServed {
		t.Errorf("round-robin did not rotate: last-served master %d won again", lastServed)
	}

	// Unmapped inside a batch.
	rs = m.IssueAll([]Transfer{{Master: 0, Addr: 0xFFFF0000}})
	if rs[0].Resp != RespERROR {
		t.Error("unmapped batch transfer did not ERROR")
	}
}

func TestProtAttributesPassThrough(t *testing.T) {
	var seen Transfer
	m := NewMatrix()
	m.Map("spy", 0, 16, SlaveFunc(func(tr Transfer) Result {
		seen = tr
		return Result{}
	}))
	m.Issue(Transfer{Addr: 3, Prot: Prot{Privileged: true, DataAccess: true}, Size: 2})
	if !seen.Prot.Privileged || !seen.Prot.DataAccess || seen.Size != 2 {
		t.Errorf("attributes lost: %+v", seen)
	}
}
