// Package statfault is a static fault-analysis engine over the
// levelized netlist. It derives three families of proofs without
// running a single simulation cycle:
//
//   - Cone-of-influence reachability: for every net, which monitor
//     groups (the OBSE/DIAG observation points, and each sensible
//     zone's SENS effect-net set) lie in its forward cone. A fault
//     whose cone contains no monitor is statically unobservable — its
//     campaign verdict is Silent by construction.
//   - Constant propagation over tied nets: nets proven to hold a fixed
//     binary value in every fault-free run (Kleene-sound: a controlling
//     constant pins a gate's output even when sibling inputs are
//     unknown; a flip-flop is constant when its D cone is constant at
//     the reset value). A stuck-at fault forcing a net to its proven
//     constant is untestable — the faulty machine is the golden
//     machine.
//   - Structural fault collapsing: equivalence classes over (net,
//     polarity) stuck-at atoms under the campaign-exact rules (input
//     stuck-ats on buffers/inverters/wires collapse onto their driver
//     when the stem is invisible to every monitor), plus classic
//     dominance edges for the audit report.
//
// The equivalence relation here is deliberately stricter than the
// classic detectability-preserving collapse in faults.Universe: two
// atoms are merged only when forcing either one yields the *same value
// trajectory on every monitored net in every cycle*, so a campaign may
// simulate one representative and copy its full result row — outcome,
// SENS flag, deviation list and first-deviation cycle — onto every
// class member without changing a byte of the report.
package statfault

import (
	"errors"

	"repro/internal/netlist"
	"repro/internal/zones"
)

// constant-propagation lattice: unknown (not proven) or proven 0/1.
const (
	constUnknown uint8 = iota
	const0
	const1
)

// Analysis holds the static proofs for one netlist. Construct with New
// (campaign monitors: observation points plus per-zone SENS groups) or
// ForMonitors (explicit functional/diagnostic net lists, the faultsim
// shape). All queries are read-only and safe for concurrent use.
type Analysis struct {
	n   *netlist.Netlist
	fan []int

	// groups: group 0 is the union of all observation-point nets;
	// groups 1..len(zones) are each zone's SENS effect nets (only when
	// built via New). reach is a per-net bitset of reachable groups,
	// flattened to words uint64 words per net.
	groups int
	words  int
	reach  []uint64

	// monitored marks nets whose value some monitor or peripheral can
	// see directly; such nets are never collapsed away as stems.
	monitored []bool

	constVal []uint8

	// parent is the union-find forest over stuck-at atoms, atom =
	// 2*net + polarity. The root of a class is its smallest atom.
	parent []int32

	// forward adjacency, cached for cone walks.
	gateReaders [][]netlist.GateID
	ffReaders   [][]netlist.FFID
	perif       []perifEdge
}

// New builds the static analysis for a campaign target: monitor group 0
// is the union of all observation points (functional and diagnostic),
// and group 1+z is zone z's SENS effect-net set. The stem-invisibility
// side condition additionally protects every zone seed, kept
// (peripheral-sampled) net, primary input and external net.
func New(a *zones.Analysis) (*Analysis, error) {
	if a == nil || a.N == nil {
		return nil, errors.New("statfault: nil zone analysis")
	}
	n := a.N
	groups := make([][]netlist.NetID, 1+len(a.Zones))
	for _, o := range a.Obs {
		groups[0] = append(groups[0], o.Nets...)
	}
	for z := range a.Zones {
		groups[1+z] = append(groups[1+z], a.EffectNets(z)...)
	}
	monitored := make([]bool, len(n.Nets))
	markMon := func(ids []netlist.NetID) {
		for _, id := range ids {
			if id >= 0 && int(id) < len(monitored) {
				monitored[id] = true
			}
		}
	}
	for _, o := range a.Obs {
		markMon(o.Nets)
	}
	for z := range a.Zones {
		markMon(a.Zones[z].Seeds)
		markMon(a.Zones[z].Outputs)
	}
	markMon(n.Kept())
	for _, p := range n.Inputs {
		markMon(p.Nets)
	}
	for _, p := range n.Externals {
		markMon(p.Nets)
	}
	return build(n, groups, monitored, perifEdges(a))
}

// ForMonitors builds the analysis for an explicit monitor pair, the
// shape faultsim uses: group 0 is funcObs ∪ diagObs. Stem invisibility
// only needs to protect those nets (faultsim designs carry no
// peripherals), plus primary outputs.
func ForMonitors(n *netlist.Netlist, funcObs, diagObs []netlist.NetID) (*Analysis, error) {
	if n == nil {
		return nil, errors.New("statfault: nil netlist")
	}
	var g0 []netlist.NetID
	g0 = append(g0, funcObs...)
	g0 = append(g0, diagObs...)
	monitored := make([]bool, len(n.Nets))
	for _, id := range g0 {
		if id >= 0 && int(id) < len(monitored) {
			monitored[id] = true
		}
	}
	for _, p := range n.Outputs {
		for _, id := range p.Nets {
			monitored[id] = true
		}
	}
	for _, id := range n.Kept() {
		monitored[id] = true
	}
	return build(n, [][]netlist.NetID{g0}, monitored, nil)
}

// perifEdge is one conservative dataflow edge through a behavioral
// peripheral: a value sampled on Seed can re-emerge on any of the
// peripheral zone's output (external) nets.
type perifEdge struct {
	seeds []netlist.NetID
	outs  []netlist.NetID
}

func perifEdges(a *zones.Analysis) []perifEdge {
	var edges []perifEdge
	for z := range a.Zones {
		if a.Zones[z].Kind != zones.Peripheral {
			continue
		}
		if len(a.Zones[z].Seeds) == 0 || len(a.Zones[z].Outputs) == 0 {
			continue
		}
		edges = append(edges, perifEdge{seeds: a.Zones[z].Seeds, outs: a.Zones[z].Outputs})
	}
	return edges
}

func build(n *netlist.Netlist, groups [][]netlist.NetID, monitored []bool, perif []perifEdge) (*Analysis, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		n:           n,
		fan:         n.FanoutCounts(),
		groups:      len(groups),
		words:       (len(groups) + 63) / 64,
		monitored:   monitored,
		gateReaders: n.GateReaders(),
		ffReaders:   n.FFReaders(),
		perif:       perif,
	}
	a.reach = make([]uint64, len(n.Nets)*a.words)
	for gi, nets := range groups {
		for _, id := range nets {
			if id < 0 || int(id) >= len(n.Nets) {
				continue
			}
			a.reach[int(id)*a.words+gi/64] |= 1 << uint(gi%64)
		}
	}
	a.propagateReach(order, perif)
	a.propagateConst(order)
	a.collapse(order)
	return a, nil
}

// propagateReach computes, per net, the set of monitor groups in its
// forward cone, by pushing group bits backward from monitors to the
// nets that feed them: through gate inputs, flip-flop D/Enable pins
// (state carries a deviation across the edge) and peripheral
// seed→output edges. The reverse-topological inner sweep settles the
// combinational part in one pass; the outer loop iterates to a
// fixpoint across sequential and peripheral cycles.
func (a *Analysis) propagateReach(order []netlist.GateID, perif []perifEdge) {
	n := a.n
	w := a.words
	orInto := func(dst, src netlist.NetID) bool {
		if dst < 0 || src < 0 {
			return false
		}
		changed := false
		for k := 0; k < w; k++ {
			nv := a.reach[int(dst)*w+k] | a.reach[int(src)*w+k]
			if nv != a.reach[int(dst)*w+k] {
				a.reach[int(dst)*w+k] = nv
				changed = true
			}
		}
		return changed
	}
	for {
		changed := false
		for i := len(order) - 1; i >= 0; i-- {
			g := &n.Gates[order[i]]
			for _, in := range g.Inputs {
				if orInto(in, g.Output) {
					changed = true
				}
			}
		}
		for i := range n.FFs {
			ff := &n.FFs[i]
			if orInto(ff.D, ff.Q) {
				changed = true
			}
			if ff.Enable != netlist.InvalidNet && orInto(ff.Enable, ff.Q) {
				changed = true
			}
		}
		for _, e := range perif {
			for _, out := range e.outs {
				for _, seed := range e.seeds {
					if orInto(seed, out) {
						changed = true
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// propagateConst proves nets constant in every fault-free run. The
// rules mirror the simulator's Kleene evaluation exactly — a gate
// output is proven only when the simulator could never produce a
// different value — and a flip-flop output is constant v only when it
// resets to v and its D cone is proven constant v (then every load
// re-loads v and every hold keeps it, whatever the enable does).
// Primary inputs and peripheral-driven nets are never constant. The
// fixpoint iterates because FF proofs feed combinational proofs and
// vice versa.
func (a *Analysis) propagateConst(order []netlist.GateID) {
	n := a.n
	a.constVal = make([]uint8, len(n.Nets))
	if n.Const0 != netlist.InvalidNet {
		a.constVal[n.Const0] = const0
	}
	if n.Const1 != netlist.InvalidNet {
		a.constVal[n.Const1] = const1
	}
	cv := func(id netlist.NetID) uint8 { return a.constVal[id] }
	for {
		changed := false
		set := func(id netlist.NetID, v uint8) {
			if v != constUnknown && a.constVal[id] == constUnknown {
				a.constVal[id] = v
				changed = true
			}
		}
		for _, gid := range order {
			g := &n.Gates[gid]
			set(g.Output, constGate(g, cv))
		}
		for i := range n.FFs {
			ff := &n.FFs[i]
			d := cv(ff.D)
			if d == const0 && !ff.ResetVal {
				set(ff.Q, const0)
			}
			if d == const1 && ff.ResetVal {
				set(ff.Q, const1)
			}
		}
		if !changed {
			return
		}
	}
}

// constGate returns the proven-constant value of a gate output given
// the proofs on its inputs, or constUnknown.
func constGate(g *netlist.Gate, cv func(netlist.NetID) uint8) uint8 {
	inv := func(v uint8) uint8 {
		switch v {
		case const0:
			return const1
		case const1:
			return const0
		}
		return constUnknown
	}
	switch g.Type {
	case netlist.BUF:
		return cv(g.Inputs[0])
	case netlist.NOT:
		return inv(cv(g.Inputs[0]))
	case netlist.AND, netlist.NAND:
		acc := const1
		for _, in := range g.Inputs {
			switch cv(in) {
			case const0:
				acc = const0
			case constUnknown:
				if acc != const0 {
					acc = constUnknown
				}
			}
			if acc == const0 {
				break
			}
		}
		if g.Type == netlist.NAND {
			return inv(acc)
		}
		return acc
	case netlist.OR, netlist.NOR:
		acc := const0
		for _, in := range g.Inputs {
			switch cv(in) {
			case const1:
				acc = const1
			case constUnknown:
				if acc != const1 {
					acc = constUnknown
				}
			}
			if acc == const1 {
				break
			}
		}
		if g.Type == netlist.NOR {
			return inv(acc)
		}
		return acc
	case netlist.XOR, netlist.XNOR:
		acc := const0
		for _, in := range g.Inputs {
			v := cv(in)
			if v == constUnknown {
				return constUnknown
			}
			if v == const1 {
				acc = inv(acc)
			}
		}
		if g.Type == netlist.XNOR {
			return inv(acc)
		}
		return acc
	case netlist.MUX2:
		sel := cv(g.Inputs[0])
		va, vb := cv(g.Inputs[1]), cv(g.Inputs[2])
		switch sel {
		case const0:
			return va
		case const1:
			return vb
		default:
			// Unknown select: the simulator still yields a defined value
			// when both data inputs agree and are non-X.
			if va != constUnknown && va == vb {
				return va
			}
			return constUnknown
		}
	}
	return constUnknown
}

// ReachesObs reports whether any observation point (functional or
// diagnostic) lies in the forward cone of the net. A fault confined to
// a net where this is false can never change the OBSE/DIAG verdict.
func (a *Analysis) ReachesObs(net netlist.NetID) bool {
	return a.reachesGroup(net, 0)
}

// ReachesZoneEffect reports whether zone z's SENS effect-net set lies
// in the forward cone of the net (only meaningful for analyses built
// with New; ForMonitors has no zone groups and returns false).
func (a *Analysis) ReachesZoneEffect(net netlist.NetID, z int) bool {
	return a.reachesGroup(net, 1+z)
}

func (a *Analysis) reachesGroup(net netlist.NetID, gi int) bool {
	if net < 0 || int(net) >= len(a.n.Nets) || gi < 0 || gi >= a.groups {
		return false
	}
	return a.reach[int(net)*a.words+gi/64]&(1<<uint(gi%64)) != 0
}

// ConstNet reports the proven fault-free constant value of a net.
func (a *Analysis) ConstNet(net netlist.NetID) (v bool, ok bool) {
	if net < 0 || int(net) >= len(a.constVal) {
		return false, false
	}
	switch a.constVal[net] {
	case const0:
		return false, true
	case const1:
		return true, true
	}
	return false, false
}

// Monitored reports whether a monitor (observation point, SENS group,
// peripheral or port) can see the net's value directly.
func (a *Analysis) Monitored(net netlist.NetID) bool {
	return net >= 0 && int(net) < len(a.monitored) && a.monitored[net]
}

// Netlist returns the analyzed netlist.
func (a *Analysis) Netlist() *netlist.Netlist { return a.n }

// ConeNets returns the number of nets in the forward cone of influence
// of the net (itself included): every net a deviation starting there
// could ever touch, combinationally, through flip-flops or through
// peripheral dataflow. Cone size is the scheduling weight of a fault
// site — small cones settle fast, huge cones gate everything.
func (a *Analysis) ConeNets(net netlist.NetID) int {
	n := a.n
	if net < 0 || int(net) >= len(n.Nets) {
		return 0
	}
	seen := make([]bool, len(n.Nets))
	queue := []netlist.NetID{net}
	seen[net] = true
	count := 0
	push := func(id netlist.NetID) {
		if id >= 0 && int(id) < len(seen) && !seen[id] {
			seen[id] = true
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		count++
		for _, gid := range a.gateReaders[id] {
			push(n.Gates[gid].Output)
		}
		for _, fid := range a.ffReaders[id] {
			push(n.FFs[fid].Q)
		}
		for _, e := range a.perif {
			for _, seed := range e.seeds {
				if seed == id {
					for _, out := range e.outs {
						push(out)
					}
					break
				}
			}
		}
	}
	return count
}
