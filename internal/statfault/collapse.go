package statfault

import (
	"sort"

	"repro/internal/netlist"
)

// Atom identifies one stuck-at fault atom: 2*net + polarity (polarity 1
// is stuck-at-1). Atoms are the nodes of the collapse union-find; the
// class representative is always the smallest atom in the class.
type Atom int32

// AtomOf builds the atom for a net stuck-at fault.
func AtomOf(net netlist.NetID, v bool) Atom {
	p := Atom(0)
	if v {
		p = 1
	}
	return Atom(2*int32(net)) + p
}

// Net returns the atom's fault site and polarity.
func (at Atom) Net() (netlist.NetID, bool) {
	return netlist.NetID(at / 2), at%2 == 1
}

// collapse builds the campaign-exact equivalence classes. A gate input
// stem may be merged with the gate output only when the merge is
// trajectory-exact: forcing the stem and forcing the output produce the
// same settled value on every net except the stem itself, and nothing
// can see the stem (single reader, no monitor, no peripheral, no port).
// Under that side condition the classic controlling-value rules apply:
//
//	BUF  in-SA-v ≡ out-SA-v        NOT  in-SA-v ≡ out-SA-!v
//	AND  in-SA-0 ≡ out-SA-0        NAND in-SA-0 ≡ out-SA-1
//	OR   in-SA-1 ≡ out-SA-1        NOR  in-SA-1 ≡ out-SA-0
//
// (A controlling value pins the output in Kleene logic even when
// sibling inputs are X, so the rules hold cycle-exactly, not just for
// binary vectors.)
func (a *Analysis) collapse(order []netlist.GateID) {
	n := a.n
	a.parent = make([]int32, 2*len(n.Nets))
	for i := range a.parent {
		a.parent[i] = int32(i)
	}
	for _, gid := range order {
		g := &n.Gates[gid]
		o := g.Output
		for _, in := range g.Inputs {
			if !a.stemInvisible(in) {
				continue
			}
			switch g.Type {
			case netlist.BUF:
				a.union(AtomOf(in, false), AtomOf(o, false))
				a.union(AtomOf(in, true), AtomOf(o, true))
			case netlist.NOT:
				a.union(AtomOf(in, false), AtomOf(o, true))
				a.union(AtomOf(in, true), AtomOf(o, false))
			case netlist.AND:
				a.union(AtomOf(in, false), AtomOf(o, false))
			case netlist.NAND:
				a.union(AtomOf(in, false), AtomOf(o, true))
			case netlist.OR:
				a.union(AtomOf(in, true), AtomOf(o, true))
			case netlist.NOR:
				a.union(AtomOf(in, true), AtomOf(o, false))
			}
		}
	}
}

// stemInvisible reports whether a net's own value is provably invisible
// once its single consumer is accounted for: exactly one fanout (the
// consuming gate) and no monitor, port or peripheral reads it.
func (a *Analysis) stemInvisible(in netlist.NetID) bool {
	if in < 0 || int(in) >= len(a.fan) {
		return false
	}
	return a.fan[in] == 1 && !a.monitored[in]
}

func (a *Analysis) find(at Atom) Atom {
	x := int32(at)
	for a.parent[x] != x {
		a.parent[x] = a.parent[a.parent[x]]
		x = a.parent[x]
	}
	return Atom(x)
}

// union merges two classes; the smaller atom index becomes (stays) the
// root, which keeps representatives deterministic.
func (a *Analysis) union(x, y Atom) {
	rx, ry := a.find(x), a.find(y)
	if rx == ry {
		return
	}
	if rx > ry {
		rx, ry = ry, rx
	}
	a.parent[ry] = int32(rx)
}

// Canon returns the canonical representative of a net stuck-at atom.
// Two stuck-at faults with the same canonical atom are campaign-exact
// equivalents: their simulations agree on every monitored net in every
// cycle.
func (a *Analysis) Canon(net netlist.NetID, v bool) Atom {
	if net < 0 || int(net) >= len(a.n.Nets) {
		return AtomOf(net, v)
	}
	return a.find(AtomOf(net, v))
}

// PinAtom maps a pin stuck-at fault onto a net atom when the pin fault
// is trajectory-exact equivalent to a net fault. Unlike the stem rules
// this needs no side condition: forcing a controlling value on one pin
// changes nothing but the gate output (the input net itself keeps its
// fault-free value), which is exactly what forcing the output does.
// Returns ok=false when the pin value is non-controlling (AND pin
// SA-1 and friends are not expressible as a single net force) or the
// pin is out of range.
func (a *Analysis) PinAtom(gid netlist.GateID, pin int, v bool) (Atom, bool) {
	if gid < 0 || int(gid) >= len(a.n.Gates) {
		return 0, false
	}
	g := &a.n.Gates[gid]
	if pin < 0 || pin >= len(g.Inputs) {
		return 0, false
	}
	o := g.Output
	switch g.Type {
	case netlist.BUF:
		return a.Canon(o, v), true
	case netlist.NOT:
		return a.Canon(o, !v), true
	case netlist.AND:
		if !v {
			return a.Canon(o, false), true
		}
	case netlist.NAND:
		if !v {
			return a.Canon(o, true), true
		}
	case netlist.OR:
		if v {
			return a.Canon(o, true), true
		}
	case netlist.NOR:
		if v {
			return a.Canon(o, false), true
		}
	}
	return 0, false
}

// Class is one non-singleton equivalence class: the representative atom
// and every member, both sorted ascending (the representative is
// Members[0]).
type Class struct {
	Rep     Atom
	Members []Atom
}

// Classes enumerates the non-singleton equivalence classes in
// deterministic order (ascending representative).
func (a *Analysis) Classes() []Class {
	byRep := map[Atom][]Atom{}
	for i := range a.parent {
		at := Atom(i)
		if r := a.find(at); r != at {
			byRep[r] = append(byRep[r], at)
		}
	}
	var out []Class
	for r, members := range byRep { //det:order sorted below
		// The root is the smallest atom and members were collected in
		// ascending atom order, so prepending keeps the list sorted.
		out = append(out, Class{Rep: r, Members: append([]Atom{r}, members...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rep < out[j].Rep }) //det:order one class per representative atom
	return out
}

// DomEdge is one classic dominance edge at net granularity: every test
// that detects Dominated also detects Dominator, so grading Dominated
// bounds Dominator from below. Dominance does not preserve full result
// rows — the campaign never prunes with it — but the audit report
// lists the edges so an assessor can check the conservative direction.
type DomEdge struct {
	Dominated Atom
	Dominator Atom
}

// Dominance enumerates the net-level dominance edges (gate output over
// each single-fanout input, for the non-controlling polarity):
//
//	AND  out-SA-1 dom in-SA-1      NAND out-SA-0 dom in-SA-1
//	OR   out-SA-0 dom in-SA-0      NOR  out-SA-1 dom in-SA-0
//
// Edges are reported only where the input is a true stem (fanout 1) so
// the pin fault and the net fault coincide. Deterministic order:
// ascending (Dominated, Dominator).
func (a *Analysis) Dominance() []DomEdge {
	n := a.n
	var out []DomEdge
	for gi := range n.Gates {
		g := &n.Gates[gi]
		o := g.Output
		for _, in := range g.Inputs {
			if in < 0 || int(in) >= len(a.fan) || a.fan[in] != 1 {
				continue
			}
			switch g.Type {
			case netlist.AND:
				out = append(out, DomEdge{AtomOf(in, true), AtomOf(o, true)})
			case netlist.NAND:
				out = append(out, DomEdge{AtomOf(in, true), AtomOf(o, false)})
			case netlist.OR:
				out = append(out, DomEdge{AtomOf(in, false), AtomOf(o, false)})
			case netlist.NOR:
				out = append(out, DomEdge{AtomOf(in, false), AtomOf(o, true)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dominated != out[j].Dominated {
			return out[i].Dominated < out[j].Dominated
		}
		return out[i].Dominator < out[j].Dominator
	})
	return out
}
