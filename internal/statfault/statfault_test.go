package statfault

import (
	"reflect"
	"testing"

	"repro/internal/netlist"
)

// chainCkt builds in → AND(a,b) → x → NOT → y, with y the observed
// output and a dangling INV off net a that feeds nothing observed.
func chainCkt(t *testing.T) (n *netlist.Netlist, a, b, x, y, stray netlist.NetID) {
	t.Helper()
	n = netlist.New("chain")
	a = n.AddInput("a", 1)[0]
	b = n.AddInput("b", 1)[0]
	x = n.AddGate(netlist.AND, "", a, b)
	y = n.AddGate(netlist.NOT, "", x)
	stray = n.AddGate(netlist.NOT, "", a)
	n.AddOutput("out", []netlist.NetID{y})
	return
}

func TestReachability(t *testing.T) {
	n, a, b, x, y, stray := chainCkt(t)
	sf, err := ForMonitors(n, []netlist.NetID{y}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []netlist.NetID{a, b, x, y} {
		if !sf.ReachesObs(id) {
			t.Errorf("net %d should reach the observation point", id)
		}
	}
	if sf.ReachesObs(stray) {
		t.Error("dangling inverter output must not reach the observation point")
	}
	if sf.ReachesObs(netlist.InvalidNet) {
		t.Error("invalid net must not reach anything")
	}
}

func TestReachabilityThroughFF(t *testing.T) {
	n := netlist.New("ff")
	d := n.AddInput("d", 1)[0]
	en := n.AddInput("en", 1)[0]
	_, q := n.AddFF("r", "", d, en, false)
	out := n.AddGate(netlist.BUF, "", q)
	n.AddOutput("out", []netlist.NetID{out})
	sf, err := ForMonitors(n, []netlist.NetID{out}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []netlist.NetID{d, en, q, out} {
		if !sf.ReachesObs(id) {
			t.Errorf("net %d should reach through the flip-flop (D and Enable both carry deviations)", id)
		}
	}
}

func TestConstPropagation(t *testing.T) {
	n := netlist.New("const")
	in := n.AddInput("in", 1)[0]
	c0 := n.ConstNet(false)
	c1 := n.ConstNet(true)
	andK := n.AddGate(netlist.AND, "", in, c0)    // const 0: controlling input
	orK := n.AddGate(netlist.OR, "", in, c1)      // const 1
	notK := n.AddGate(netlist.NOT, "", andK)      // const 1
	xorK := n.AddGate(netlist.XOR, "", c1, c1)    // const 0
	muxK := n.AddGate(netlist.MUX2, "", in, c1, c1) // X-select but both ways agree
	free := n.AddGate(netlist.AND, "", in, c1)    // not constant
	_, q0 := n.AddFF("q0", "", andK, netlist.InvalidNet, false) // D const0, resets 0
	_, q1 := n.AddFF("q1", "", andK, netlist.InvalidNet, true)  // D const0, resets 1: transient
	n.AddOutput("out", []netlist.NetID{orK, notK, xorK, muxK, free, q0, q1})
	sf, err := ForMonitors(n, []netlist.NetID{free}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantConst := map[netlist.NetID]bool{andK: false, orK: true, notK: true, xorK: false, muxK: true, q0: false}
	for id, want := range wantConst { //det:order test-local assertion loop
		v, ok := sf.ConstNet(id)
		if !ok || v != want {
			t.Errorf("net %d: ConstNet = (%v,%v), want (%v,true)", id, v, ok, want)
		}
	}
	for _, id := range []netlist.NetID{in, free, q1} {
		if _, ok := sf.ConstNet(id); ok {
			t.Errorf("net %d must not be proven constant", id)
		}
	}
}

func TestCollapseRules(t *testing.T) {
	n := netlist.New("col")
	a := n.AddInput("a", 1)[0]
	b := n.AddInput("b", 1)[0]
	x := n.AddGate(netlist.AND, "", a, b) // x: single fanout, invisible stem
	y := n.AddGate(netlist.NOT, "", x)
	z := n.AddGate(netlist.BUF, "", y)
	n.AddOutput("out", []netlist.NetID{z})
	sf, err := ForMonitors(n, []netlist.NetID{z}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// NOT: in-SA-v ≡ out-SA-!v; BUF: in-SA-v ≡ out-SA-v. The chain
	// x-SA-0 ≡ y-SA-1 ≡ z-SA-1 must land on one canonical atom.
	if sf.Canon(x, false) != sf.Canon(y, true) || sf.Canon(y, true) != sf.Canon(z, true) {
		t.Error("x-SA-0 / y-SA-1 / z-SA-1 must share a canonical atom through NOT and BUF")
	}
	if sf.Canon(x, true) != sf.Canon(z, false) {
		t.Error("x-SA-1 / z-SA-0 must share a canonical atom")
	}
	// AND controlling rule: a-SA-0 ≡ x-SA-0. Under ForMonitors nothing
	// but the AND gate reads a (fanout 1, not an observation point), so
	// the input stem is a legal merge; the campaign-side New() analysis
	// additionally protects port nets and would keep these apart.
	if sf.Canon(a, false) != sf.Canon(x, false) {
		t.Error("invisible input stem a-SA-0 should collapse onto x-SA-0 under ForMonitors")
	}
	if sf.Canon(a, true) == sf.Canon(x, true) {
		t.Error("AND in-SA-1 is non-controlling and must not merge with out-SA-1")
	}
	if sf.Canon(x, false) == sf.Canon(x, true) {
		t.Error("opposite polarities must never merge")
	}
}

func TestCollapseRespectsMonitors(t *testing.T) {
	n := netlist.New("mon")
	a := n.AddInput("a", 1)[0]
	x := n.AddGate(netlist.BUF, "", a)
	y := n.AddGate(netlist.NOT, "", x)
	n.AddOutput("out", []netlist.NetID{y})
	// x observed directly: the stem is visible, no merge through NOT.
	sf, err := ForMonitors(n, []netlist.NetID{y, x}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sf.Canon(x, false) == sf.Canon(y, true) {
		t.Error("an observed stem must not collapse onto its reader's output")
	}
	if !sf.Monitored(x) {
		t.Error("x is an observation point and must be monitored")
	}
}

func TestPinAtom(t *testing.T) {
	n := netlist.New("pin")
	a := n.AddInput("a", 1)[0]
	b := n.AddInput("b", 1)[0]
	x := n.AddGate(netlist.AND, "", a, b)
	y := n.AddGate(netlist.NOT, "", x)
	n.AddOutput("out", []netlist.NetID{y})
	sf, err := ForMonitors(n, []netlist.NetID{y}, nil)
	if err != nil {
		t.Fatal(err)
	}
	andID, notID := n.Gates[0].ID, n.Gates[1].ID
	// AND pin SA-0 ≡ output SA-0 (controlling), regardless of stem
	// visibility — the pin force never touches the input net itself.
	if at, ok := sf.PinAtom(andID, 0, false); !ok || at != sf.Canon(x, false) {
		t.Errorf("AND pin SA-0: got (%v,%v), want the x-SA-0 atom", at, ok)
	}
	// AND pin SA-1 is non-controlling: no single-net equivalent.
	if _, ok := sf.PinAtom(andID, 0, true); ok {
		t.Error("AND pin SA-1 must not map onto a net atom")
	}
	if at, ok := sf.PinAtom(notID, 0, true); !ok || at != sf.Canon(y, false) {
		t.Errorf("NOT pin SA-1: got (%v,%v), want the y-SA-0 atom", at, ok)
	}
	if _, ok := sf.PinAtom(andID, 5, false); ok {
		t.Error("out-of-range pin must not map")
	}
	if _, ok := sf.PinAtom(netlist.GateID(99), 0, false); ok {
		t.Error("out-of-range gate must not map")
	}
}

func TestClassesAndDominanceDeterministic(t *testing.T) {
	build := func() *Analysis {
		n := netlist.New("det")
		a := n.AddInput("a", 1)[0]
		b := n.AddInput("b", 1)[0]
		x := n.AddGate(netlist.AND, "", a, b)
		y := n.AddGate(netlist.NOT, "", x)
		z := n.AddGate(netlist.OR, "", y, b)
		n.AddOutput("out", []netlist.NetID{z})
		sf, err := ForMonitors(n, []netlist.NetID{z}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sf
	}
	s1, s2 := build(), build()
	c1, c2 := s1.Classes(), s2.Classes()
	if len(c1) == 0 {
		t.Fatal("vacuous: no equivalence classes on the chain circuit")
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Error("Classes() is not deterministic across identical builds")
	}
	for _, c := range c1 {
		if len(c.Members) < 2 {
			t.Errorf("class %v has %d members; non-singleton classes only", c.Rep, len(c.Members))
		}
		if c.Members[0] != c.Rep {
			t.Errorf("class %v: Members[0] = %v, want the representative first", c.Rep, c.Members[0])
		}
		for i := 1; i < len(c.Members); i++ {
			if c.Members[i] <= c.Members[i-1] {
				t.Errorf("class %v members not strictly ascending: %v", c.Rep, c.Members)
			}
		}
	}
	d1, d2 := s1.Dominance(), s2.Dominance()
	if len(d1) == 0 {
		t.Fatal("vacuous: no dominance edges on the chain circuit")
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Error("Dominance() is not deterministic across identical builds")
	}
}

func TestConeNets(t *testing.T) {
	n, a, _, x, y, stray := chainCkt(t)
	sf, err := ForMonitors(n, []netlist.NetID{y}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sf.ConeNets(y); got != 1 {
		t.Errorf("ConeNets(y) = %d, want 1 (itself)", got)
	}
	if got := sf.ConeNets(x); got != 2 {
		t.Errorf("ConeNets(x) = %d, want 2 (x, y)", got)
	}
	// a feeds the AND and the stray inverter: {a, x, y, stray}.
	if got := sf.ConeNets(a); got != 4 {
		t.Errorf("ConeNets(a) = %d, want 4", got)
	}
	if got := sf.ConeNets(stray); got != 1 {
		t.Errorf("ConeNets(stray) = %d, want 1", got)
	}
}

func TestAtomRoundTrip(t *testing.T) {
	for _, id := range []netlist.NetID{0, 1, 77} {
		for _, v := range []bool{false, true} {
			net, pol := AtomOf(id, v).Net()
			if net != id || pol != v {
				t.Fatalf("AtomOf(%d,%v) round-trips to (%d,%v)", id, v, net, pol)
			}
		}
	}
}
