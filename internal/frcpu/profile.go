package frcpu

import (
	"strings"

	"repro/internal/fit"
	"repro/internal/fmea"
	"repro/internal/iec61508"
	"repro/internal/inject"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/zones"
)

// Analyze extracts the sensible zones of the processing unit.
func (d *Design) Analyze() (*zones.Analysis, error) {
	cfg := zones.DefaultConfig()
	cfg.SubBlockMinGates = 20
	return zones.Extract(d.N, cfg)
}

// Worksheet fills the FMEA for the processing unit against the
// IEC 61508 processing-unit failure-mode catalog: register/flag
// corruption, wrong coding (decode cone), wrong execution (ALU/control
// cones). With lockstep, everything inside the duplicated cores is
// claimed at the norm's "high" level for hardware comparison; the
// comparator and its alarm register remain uncovered (single point).
func (d *Design) Worksheet(a *zones.Analysis, rates fit.Rates) *fmea.Worksheet {
	lock := d.Cfg.Lockstep
	return fmea.FromAnalysis(a, rates, func(z *zones.Zone, defaults []fmea.Spec) []fmea.Spec {
		inCore := strings.HasPrefix(z.Block, "CPU_A") || strings.HasPrefix(z.Block, "CPU_B")
		for i := range defaults {
			sp := &defaults[i]
			sp.S = 0.35 // a CPU consumes nearly all of its state
			sp.Freq = fmea.F1
			if sp.Mode == iec61508.FMTransient {
				sp.Lifetime = 0.8
			}
			// Re-map generic modes onto the processing-unit catalog.
			switch sp.Mode {
			case iec61508.FMRegisterStuck:
				// keep: DC fault model on internal registers
			case iec61508.FMStuckAtLogic:
				sp.Mode = iec61508.FMWrongExecution
			case iec61508.FMTransient:
				// keep: soft errors in sequential state
			}
			if lock && inCore {
				sp.DDF = fmea.DDF{HWTransient: 0.99, HWPermanent: 0.99}
				sp.TechHW = iec61508.TechLockstep
				sp.Note = "inside lockstep sphere"
			} else if lock {
				sp.Note = "outside lockstep sphere (comparator/alarm)"
			}
		}
		return defaults
	})
}

// Workload returns a free-running trace (run held high) of the given
// length; the program itself is the stimulus.
func (d *Design) Workload(cycles int) *workload.Trace {
	tr := workload.NewTrace("run")
	tr.Add(map[string]uint64{"run": 1})
	tr.AddIdle(cycles - 1)
	return tr
}

// InjectionTarget adapts the design to the fault injector.
func (d *Design) InjectionTarget(a *zones.Analysis) *inject.Target {
	return &inject.Target{
		Analysis: a,
		NewInstance: func() (*sim.Simulator, error) {
			return sim.New(d.N)
		},
	}
}

// FlowDUT adapts the processing unit to the core assessment flow.
type FlowDUT struct {
	D      *Design
	Cycles int
}

// NewFlowDUT wraps a design with flow defaults.
func NewFlowDUT(d *Design) *FlowDUT { return &FlowDUT{D: d, Cycles: 150} }

// DesignName implements core.DUT.
func (f *FlowDUT) DesignName() string { return f.D.Cfg.Name }

// Analyze implements core.DUT.
func (f *FlowDUT) Analyze() (*zones.Analysis, error) { return f.D.Analyze() }

// Worksheet implements core.DUT.
func (f *FlowDUT) Worksheet(a *zones.Analysis, rates fit.Rates) *fmea.Worksheet {
	return f.D.Worksheet(a, rates)
}

// Target implements core.DUT.
func (f *FlowDUT) Target(a *zones.Analysis) *inject.Target { return f.D.InjectionTarget(a) }

// ValidationTrace implements core.DUT.
func (f *FlowDUT) ValidationTrace() *workload.Trace { return f.D.Workload(f.Cycles) }

// CoverageTrace implements core.DUT. The program is the stimulus; toggle
// coverage is bounded by what the baked ROM exercises.
func (f *FlowDUT) CoverageTrace() *workload.Trace { return f.D.Workload(2 * f.Cycles) }
