package frcpu

import (
	"testing"

	"repro/internal/fit"
	"repro/internal/inject"
	"repro/internal/netlist"
	"repro/internal/xrand"
)

// TestCoreMatchesReference runs the gate-level core against the golden
// interpreter cycle by cycle for the demo program.
func TestCoreMatchesReference(t *testing.T) {
	d, err := Build(PlainConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	ref := RefState{}
	prog := d.Cfg.Program
	for cycle := 0; cycle < 200; cycle++ {
		StepRef(&ref, prog)
		s.Step()
		pc, _ := s.ReadOutput("pc")
		out, _ := s.ReadOutput("out")
		strobe, _ := s.ReadOutput("strobe")
		if byte(pc) != ref.PC || byte(out) != ref.Out || (strobe == 1) != ref.Strobe {
			t.Fatalf("cycle %d: gate pc=%d out=%#x strobe=%d, ref pc=%d out=%#x strobe=%v",
				cycle, pc, out, strobe, ref.PC, ref.Out, ref.Strobe)
		}
	}
}

// TestCoreRandomPrograms cross-checks gate-level vs interpreter on
// random programs (jumps constrained to stay interesting).
func TestCoreRandomPrograms(t *testing.T) {
	rng := xrand.New(404)
	for trial := 0; trial < 10; trial++ {
		var prog Program
		for i := range prog {
			op := rng.Intn(11)
			prog[i] = Instr(op, rng.Intn(16))
		}
		cfg := PlainConfig()
		cfg.Program = prog
		cfg.Name = "frcpu-rand"
		d, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := d.NewSimulator()
		if err != nil {
			t.Fatal(err)
		}
		ref := RefState{}
		for cycle := 0; cycle < 100; cycle++ {
			StepRef(&ref, prog)
			s.Step()
			pc, _ := s.ReadOutput("pc")
			out, _ := s.ReadOutput("out")
			if byte(pc) != ref.PC || byte(out) != ref.Out {
				t.Fatalf("trial %d cycle %d: gate pc=%d out=%#x, ref pc=%d out=%#x",
					trial, cycle, pc, out, ref.PC, ref.Out)
			}
		}
	}
}

func TestRunGateHoldsCore(t *testing.T) {
	d, _ := Build(PlainConfig())
	s, _ := d.NewSimulator()
	s.SetInput("run", 0)
	s.Eval()
	s.Run(10)
	if pc, _ := s.ReadOutput("pc"); pc != 0 {
		t.Errorf("pc advanced with run=0: %d", pc)
	}
}

func TestLockstepQuietFaultFree(t *testing.T) {
	d, err := Build(LockstepConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := d.NewSimulator()
	for i := 0; i < 100; i++ {
		s.Step()
		if v, _ := s.ReadOutput("alarm_lockstep"); v != 0 {
			t.Fatalf("lockstep alarm fired fault-free at cycle %d", i)
		}
	}
}

func TestLockstepCatchesCoreFault(t *testing.T) {
	d, _ := Build(LockstepConfig())
	s, _ := d.NewSimulator()
	s.Run(5)
	// Flip a state bit in core A only.
	var accFF int = -1
	for i := range d.N.FFs {
		if d.N.FFs[i].Name == "CPU_A/acc[0]" {
			accFF = i
		}
	}
	if accFF < 0 {
		t.Fatal("no CPU_A/acc[0] FF")
	}
	s.FlipFF(netlist.FFID(accFF))
	s.Eval()
	s.Run(3)
	if v, _ := s.ReadOutput("alarm_lockstep"); v != 1 {
		t.Error("lockstep missed an accumulator flip")
	}
}

// TestFMEALockstepBeatsPlain reproduces the methodology on the second
// case study: lockstep lifts SFF decisively.
func TestFMEALockstepBeatsPlain(t *testing.T) {
	rates := fit.Default()
	sffFor := func(cfg Config) float64 {
		d, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, err := d.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		return d.Worksheet(a, rates).Totals().SFF()
	}
	plain := sffFor(PlainConfig())
	lock := sffFor(LockstepConfig())
	if lock <= plain {
		t.Fatalf("lockstep SFF %.4f <= plain %.4f", lock, plain)
	}
	if plain > 0.80 {
		t.Errorf("plain CPU SFF %.4f suspiciously high (no diagnostics claimed)", plain)
	}
	if lock < 0.95 {
		t.Errorf("lockstep SFF %.4f suspiciously low", lock)
	}
	t.Logf("SFF: plain %.4f, lockstep %.4f", plain, lock)
}

// TestInjectionLockstepDDF runs a reduced campaign on both arrangements:
// the measured detected-dangerous fraction must separate them sharply.
func TestInjectionLockstepDDF(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	ddfFor := func(cfg Config) float64 {
		d, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, err := d.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		target := d.InjectionTarget(a)
		g, err := target.RunGolden(d.Workload(120))
		if err != nil {
			t.Fatal(err)
		}
		plan := inject.BuildPlan(a, g, inject.PlanConfig{TransientPerZone: 2, PermanentPerZone: 1, Seed: 3})
		rep, err := target.Run(g, plan)
		if err != nil {
			t.Fatal(err)
		}
		det, dang := 0, 0
		for _, zm := range rep.ZoneMeasures(a) {
			det += zm.DangerDet
			dang += zm.DangerDet + zm.DangerUndet
		}
		if dang == 0 {
			return 1
		}
		return float64(det) / float64(dang)
	}
	plain := ddfFor(PlainConfig())
	lock := ddfFor(LockstepConfig())
	if lock <= plain {
		t.Errorf("measured DDF: lockstep %.3f <= plain %.3f", lock, plain)
	}
	t.Logf("measured DDF: plain %.3f, lockstep %.3f", plain, lock)
}
