// Package frcpu is the second case study: a small processing unit in
// the direction the paper's conclusion points to ("the complete
// analysis of fault-robust microcontrollers for automotive
// applications"). It implements an 8-bit accumulator core gate-level
// and, optionally, a dual-core lockstep arrangement with a hardware
// comparator — the processing-unit counterpart of the memory
// sub-system's SEC-DED, assessed with the same FMEA flow against the
// IEC 61508 processing-unit failure-mode catalog.
package frcpu

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/rtl"
	"repro/internal/sim"
)

// ISA: 8-bit instructions, high nibble opcode, low nibble operand.
const (
	OpNOP  = 0x0
	OpLDI  = 0x1 // acc = imm
	OpADD  = 0x2 // acc += imm
	OpXORI = 0x3 // acc ^= imm
	OpSTA  = 0x4 // reg[imm&3] = acc
	OpLDA  = 0x5 // acc = reg[imm&3]
	OpJMP  = 0x6 // pc = imm
	OpJNZ  = 0x7 // if acc != 0: pc = imm
	OpOUT  = 0x8 // out = acc (strobed)
	OpSHL  = 0x9 // acc <<= 1
	OpNOT  = 0xA // acc = ^acc
)

// Program is the 16-instruction ROM image.
type Program [16]byte

// Instr assembles one instruction.
func Instr(op, imm int) byte { return byte(op<<4 | imm&0x0F) }

// DemoProgram is the default workload: a counting/accumulate loop that
// exercises the ALU, the register file, both jumps and the output port.
func DemoProgram() Program {
	return Program{
		Instr(OpLDI, 5),  // 0: acc = 5
		Instr(OpSTA, 0),  // 1: r0 = 5
		Instr(OpADD, 3),  // 2: acc = 8
		Instr(OpXORI, 9), // 3: acc = 1
		Instr(OpSTA, 1),  // 4: r1 = 1
		Instr(OpOUT, 0),  // 5: out = 1
		Instr(OpLDA, 0),  // 6: acc = 5
		Instr(OpSHL, 0),  // 7: acc = 10
		Instr(OpNOT, 0),  // 8: acc = 0xF5
		Instr(OpOUT, 0),  // 9: out = 0xF5
		Instr(OpADD, 11), // 10: acc = 0x00 (wraps)
		Instr(OpJNZ, 5),  // 11: not taken (acc == 0)
		Instr(OpLDA, 1),  // 12: acc = 1
		Instr(OpOUT, 0),  // 13: out = 1
		Instr(OpJMP, 0),  // 14: loop forever
		Instr(OpNOP, 0),  // 15
	}
}

// Config selects the protection arrangement.
type Config struct {
	Name     string
	Program  Program
	Lockstep bool // second core + hardware comparator
}

// PlainConfig is the unprotected single core.
func PlainConfig() Config {
	return Config{Name: "frcpu-plain", Program: DemoProgram()}
}

// LockstepConfig is the dual-core lockstep arrangement.
func LockstepConfig() Config {
	return Config{Name: "frcpu-lockstep", Program: DemoProgram(), Lockstep: true}
}

// Design is a built processing unit.
type Design struct {
	Cfg Config
	N   *netlist.Netlist
}

// coreOut are the nets one core exposes for comparison/observation.
type coreOut struct {
	out    rtl.Bus
	strobe netlist.NetID
	pc     rtl.Bus
	acc    rtl.Bus
}

// Build elaborates the design.
func Build(cfg Config) (*Design, error) {
	m := rtl.NewModule(cfg.Name)
	// A run input gates the whole pipeline (gives the DUT one primary
	// input so workloads can hold it in reset-like idle).
	run := m.Input("run", 1)[0]

	a := buildCore(m, "CPU_A", cfg.Program, run)
	m.Output("out", a.out)
	m.Output("strobe", rtl.Bus{a.strobe})
	m.Output("pc", a.pc)

	if cfg.Lockstep {
		b := buildCore(m, "CPU_B", cfg.Program, run)
		m.PushBlock("LOCKSTEP")
		mismatch := m.OrBit(
			m.OrBit(m.Ne(a.out, b.out), m.XorBit(a.strobe, b.strobe)),
			m.OrBit(m.Ne(a.pc, b.pc), m.Ne(a.acc, b.acc)))
		// Sticky alarm: a lockstep divergence latches until reset.
		fail := m.NewReg("lockstep_fail", 1, 0)
		fail.SetD(rtl.Bus{m.OrBit(fail.Q[0], mismatch)})
		m.PopBlock()
		m.Output("alarm_lockstep", fail.Q)
	}
	n, err := m.Finish()
	if err != nil {
		return nil, err
	}
	return &Design{Cfg: cfg, N: n}, nil
}

// buildCore elaborates one accumulator core under the given block.
func buildCore(m *rtl.Module, block string, prog Program, run netlist.NetID) coreOut {
	m.PushBlock(block)
	defer m.PopBlock()

	pc := m.NewReg("pc", 4, 0)
	acc := m.NewReg("acc", 8, 0)
	outReg := m.NewReg("out", 8, 0)
	strobe := m.NewReg("strobe", 1, 0)
	regs := make([]*rtl.Reg, 4)
	for i := range regs {
		regs[i] = m.NewReg(fmt.Sprintf("r%d", i), 8, 0)
	}

	// Instruction ROM: one-hot PC select over the baked program bits.
	m.PushBlock("ROM")
	pcSel := m.Decode(pc.Q)
	instr := make(rtl.Bus, 8)
	for bit := 0; bit < 8; bit++ {
		var taps rtl.Bus
		for addr := 0; addr < 16; addr++ {
			if prog[addr]>>uint(bit)&1 == 1 {
				taps = append(taps, pcSel[addr])
			}
		}
		if len(taps) == 0 {
			instr[bit] = m.Low()
		} else {
			instr[bit] = m.ReduceOr(taps)
		}
	}
	m.PopBlock()

	imm := instr.Slice(0, 4)
	opcode := instr.Slice(4, 8)
	m.PushBlock("DECODE")
	ops := m.Decode(opcode)
	m.PopBlock()

	immExt := rtl.Concat(imm, m.Const(4, 0))

	m.PushBlock("ALU")
	sum, _ := m.Add(acc.Q, immExt)
	xored := m.Xor(acc.Q, immExt)
	shifted := rtl.Concat(rtl.Bus{m.Low()}, acc.Q.Slice(0, 7))
	inverted := m.Not(acc.Q)
	m.PopBlock()

	// Register file read mux.
	m.PushBlock("REGFILE")
	regSel := m.Decode(imm.Slice(0, 2))
	regRead := make(rtl.Bus, 8)
	for bit := 0; bit < 8; bit++ {
		var taps rtl.Bus
		for r := 0; r < 4; r++ {
			taps = append(taps, m.AndBit(regSel[r], regs[r].Q[bit]))
		}
		regRead[bit] = m.ReduceOr(taps)
	}
	for r := 0; r < 4; r++ {
		regs[r].SetD(acc.Q)
		regs[r].SetEnable(m.AndBit(run, m.AndBit(ops[OpSTA], regSel[r])))
	}
	m.PopBlock()

	// Accumulator next-state mux chain.
	m.PushBlock("CTRL")
	accNext := immExt
	accNext = m.Mux(ops[OpADD], accNext, sum)
	accNext = m.Mux(ops[OpXORI], accNext, xored)
	accNext = m.Mux(ops[OpLDA], accNext, regRead)
	accNext = m.Mux(ops[OpSHL], accNext, shifted)
	accNext = m.Mux(ops[OpNOT], accNext, inverted)
	accWrite := m.OrBit(ops[OpLDI],
		m.OrBit(ops[OpADD],
			m.OrBit(ops[OpXORI],
				m.OrBit(ops[OpLDA],
					m.OrBit(ops[OpSHL], ops[OpNOT])))))
	acc.SetD(accNext)
	acc.SetEnable(m.AndBit(run, accWrite))

	// PC next: taken jumps load imm, everything else increments.
	nz := m.ReduceOr(acc.Q)
	taken := m.OrBit(ops[OpJMP], m.AndBit(ops[OpJNZ], nz))
	pcInc, _ := m.Inc(pc.Q)
	pc.SetD(m.Mux(taken, pcInc, imm))
	pc.SetEnable(run)

	outReg.SetD(acc.Q)
	outReg.SetEnable(m.AndBit(run, ops[OpOUT]))
	strobe.SetD(rtl.Bus{m.AndBit(run, ops[OpOUT])})
	m.PopBlock()

	return coreOut{out: outReg.Q, strobe: strobe.Q[0], pc: pc.Q, acc: acc.Q}
}

// RefState is the golden interpreter state.
type RefState struct {
	PC   byte
	Acc  byte
	Regs [4]byte
	Out  byte
	// Strobe is true during the cycle following an OUT.
	Strobe bool
}

// StepRef advances the golden interpreter by one instruction, matching
// the gate-level core cycle for cycle (when run is held high).
func StepRef(st *RefState, prog Program) {
	in := prog[st.PC&0x0F]
	op := in >> 4
	imm := in & 0x0F
	st.Strobe = false
	nextPC := (st.PC + 1) & 0x0F
	switch op {
	case OpLDI:
		st.Acc = imm
	case OpADD:
		st.Acc += imm
	case OpXORI:
		st.Acc ^= imm
	case OpSTA:
		st.Regs[imm&3] = st.Acc
	case OpLDA:
		st.Acc = st.Regs[imm&3]
	case OpJMP:
		nextPC = imm
	case OpJNZ:
		if st.Acc != 0 {
			nextPC = imm
		}
	case OpOUT:
		st.Out = st.Acc
		st.Strobe = true
	case OpSHL:
		st.Acc <<= 1
	case OpNOT:
		st.Acc = ^st.Acc
	}
	st.PC = nextPC
}

// NewSimulator returns a simulator with run asserted.
func (d *Design) NewSimulator() (*sim.Simulator, error) {
	s, err := sim.New(d.N)
	if err != nil {
		return nil, err
	}
	s.SetInput("run", 1)
	s.Eval()
	return s, nil
}
